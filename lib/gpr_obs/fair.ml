let jain xs =
  List.iter
    (fun x ->
      if x < 0.0 then invalid_arg "Fair.jain: negative share")
    xs;
  let n = List.length xs in
  let sum = List.fold_left ( +. ) 0.0 xs in
  let sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  (* Jain's index proper is only defined over a non-empty allocation
     with at least one positive share; its range is [1/n, 1].  An empty
     or all-zero allocation (nobody got anything — e.g. every tenant
     starved) must not read as perfect fairness, so it maps to the
     out-of-band sentinel 0.0. *)
  if n = 0 || sq = 0.0 then 0.0
  else sum *. sum /. (float_of_int n *. sq)

let degenerate f = f = 0.0
