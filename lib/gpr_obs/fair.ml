let jain xs =
  List.iter
    (fun x ->
      if x < 0.0 then invalid_arg "Fair.jain: negative share")
    xs;
  let n = List.length xs in
  let sum = List.fold_left ( +. ) 0.0 xs in
  let sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if n = 0 || sq = 0.0 then 1.0
  else sum *. sum /. (float_of_int n *. sq)
