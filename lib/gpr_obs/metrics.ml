type counter = int Atomic.t

type histogram = {
  h_bounds : int array; (* sorted inclusive upper bounds *)
  h_counts : int Atomic.t array; (* length = bounds + 1 (overflow) *)
  h_sum : int Atomic.t;
  h_total : int Atomic.t;
}

type cell = C of counter | H of histogram

let recording = Atomic.make false
let set_enabled b = Atomic.set recording b
let enabled () = Atomic.get recording

(* Registration is rare and cold; a single mutex keeps the table
   consistent across domains.  The cells themselves are atomics, so
   the hot recording path never takes the lock. *)
let lock = Mutex.create ()
let table : (string, cell) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some (C c) -> c
      | Some (H _) ->
        invalid_arg
          (Printf.sprintf "Metrics.counter: %S is a histogram" name)
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add table name (C c);
        c)

let default_buckets = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let histogram ?(buckets = default_buckets) name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some (H h) -> h
      | Some (C _) ->
        invalid_arg
          (Printf.sprintf "Metrics.histogram: %S is a counter" name)
      | None ->
        let bounds = Array.of_list (List.sort_uniq compare buckets) in
        let h =
          {
            h_bounds = bounds;
            h_counts =
              Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0;
            h_total = Atomic.make 0;
          }
        in
        Hashtbl.add table name (H h);
        h)

let add c n = if Atomic.get recording && n <> 0 then ignore (Atomic.fetch_and_add c n)
let incr c = add c 1
let value c = Atomic.get c

let bucket_index h v =
  let n = Array.length h.h_bounds in
  let rec go i = if i >= n then n else if v <= h.h_bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if Atomic.get recording then begin
    ignore (Atomic.fetch_and_add h.h_counts.(bucket_index h v) 1);
    ignore (Atomic.fetch_and_add h.h_sum v);
    ignore (Atomic.fetch_and_add h.h_total 1)
  end

type entry =
  | Counter of { name : string; count : int }
  | Histogram of {
      name : string;
      sum : int;
      total : int;
      buckets : (int option * int) list;
    }

let snapshot () =
  let cells =
    with_lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  in
  cells
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, cell) ->
         match cell with
         | C c -> Counter { name; count = Atomic.get c }
         | H h ->
           let buckets =
             Array.to_list
               (Array.mapi
                  (fun i c ->
                    let bound =
                      if i < Array.length h.h_bounds then Some h.h_bounds.(i)
                      else None
                    in
                    (bound, Atomic.get c))
                  h.h_counts)
           in
           Histogram
             {
               name;
               sum = Atomic.get h.h_sum;
               total = Atomic.get h.h_total;
               buckets;
             })

let reset () =
  let cells =
    with_lock (fun () -> Hashtbl.fold (fun _ v acc -> v :: acc) table [])
  in
  List.iter
    (function
      | C c -> Atomic.set c 0
      | H h ->
        Array.iter (fun c -> Atomic.set c 0) h.h_counts;
        Atomic.set h.h_sum 0;
        Atomic.set h.h_total 0)
    cells

let to_json () =
  Json.Arr
    (List.map
       (function
         | Counter { name; count } ->
           Json.Obj [ ("name", Json.Str name); ("value", Json.Int count) ]
         | Histogram { name; sum; total; buckets } ->
           Json.Obj
             [
               ("name", Json.Str name);
               ("sum", Json.Int sum);
               ("count", Json.Int total);
               ( "buckets",
                 Json.Arr
                   (List.map
                      (fun (bound, c) ->
                        Json.Obj
                          [
                            ( "le",
                              match bound with
                              | Some b -> Json.Int b
                              | None -> Json.Null );
                            ("count", Json.Int c);
                          ])
                      buckets) );
             ])
       (snapshot ()))
