type cause =
  | Scoreboard
  | No_free_cu
  | Bank_conflict
  | Spill_port
  | Barrier
  | Empty

let all = [ Scoreboard; No_free_cu; Bank_conflict; Spill_port; Barrier; Empty ]

let name = function
  | Scoreboard -> "scoreboard"
  | No_free_cu -> "no-free-cu"
  | Bank_conflict -> "bank-conflict"
  | Spill_port -> "spill-port"
  | Barrier -> "barrier"
  | Empty -> "empty"

let short_name = function
  | Scoreboard -> "sb"
  | No_free_cu -> "cu"
  | Bank_conflict -> "bank"
  | Spill_port -> "spill"
  | Barrier -> "bar"
  | Empty -> "idle"

type breakdown = {
  bd_issued : int;
  bd_stalls : (cause * int) list;
}

let empty = { bd_issued = 0; bd_stalls = List.map (fun c -> (c, 0)) all }

let get bd c =
  match List.assoc_opt c bd.bd_stalls with Some n -> n | None -> 0

let add a b =
  {
    bd_issued = a.bd_issued + b.bd_issued;
    bd_stalls = List.map (fun c -> (c, get a c + get b c)) all;
  }

let total_slots bd =
  List.fold_left (fun acc (_, n) -> acc + n) bd.bd_issued bd.bd_stalls

let pct_string bd =
  let total = total_slots bd in
  let pct n = if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total in
  String.concat "/"
    (List.map (fun c -> Printf.sprintf "%.1f" (pct (get bd c))) all)

let to_json bd =
  Json.Obj
    [
      ("issued", Json.Int bd.bd_issued);
      ("total_slots", Json.Int (total_slots bd));
      ( "stalls",
        Json.Obj (List.map (fun c -> (name c, Json.Int (get bd c))) all) );
    ]
