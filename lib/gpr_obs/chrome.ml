type t = {
  lock : Mutex.t;
  max_events : int;
  mutable events : Json.t list; (* reversed *)
  mutable n_events : int;
  mutable metadata : Json.t list; (* reversed; not capped *)
  mutable n_dropped : int;
  epoch : float; (* wall-clock origin, seconds *)
}

let create ?(max_events = 200_000) () =
  {
    lock = Mutex.create ();
    max_events;
    events = [];
    n_events = 0;
    metadata = [];
    n_dropped = 0;
    epoch = Unix.gettimeofday ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t ev =
  locked t (fun () ->
      if t.n_events >= t.max_events then t.n_dropped <- t.n_dropped + 1
      else begin
        t.events <- ev :: t.events;
        t.n_events <- t.n_events + 1
      end)

let base ~name ~cat ~pid ~tid ~ts_us ~ph =
  [
    ("name", Json.Str name);
    ("cat", Json.Str cat);
    ("ph", Json.Str ph);
    ("pid", Json.Int pid);
    ("tid", Json.Int tid);
    ("ts", Json.Float ts_us);
  ]

let with_args args fields =
  match args with [] -> fields | _ -> fields @ [ ("args", Json.Obj args) ]

let complete t ~name ?(cat = "gpr") ?(pid = 0) ?(tid = 0) ~ts_us ~dur_us
    ?(args = []) () =
  push t
    (Json.Obj
       (with_args args
          (base ~name ~cat ~pid ~tid ~ts_us ~ph:"X"
          @ [ ("dur", Json.Float dur_us) ])))

let instant t ~name ?(cat = "gpr") ?(pid = 0) ?(tid = 0) ~ts_us ?(args = []) ()
    =
  push t
    (Json.Obj
       (with_args args
          (base ~name ~cat ~pid ~tid ~ts_us ~ph:"i" @ [ ("s", Json.Str "t") ])))

let metadata_event t ~name ~pid ~tid ~label =
  let ev =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str label) ]);
      ]
  in
  locked t (fun () -> t.metadata <- ev :: t.metadata)

let name_process t ~pid label =
  metadata_event t ~name:"process_name" ~pid ~tid:0 ~label

let name_thread t ~pid ~tid label =
  metadata_event t ~name:"thread_name" ~pid ~tid ~label

let num_events t = locked t (fun () -> t.n_events)
let dropped t = locked t (fun () -> t.n_dropped)
let now_us t = (Unix.gettimeofday () -. t.epoch) *. 1e6

let to_json t =
  locked t (fun () ->
      Json.Obj
        [
          ( "traceEvents",
            Json.Arr (List.rev_append t.events (List.rev t.metadata)) );
          ("displayTimeUnit", Json.Str "ms");
        ])

let write_file t path = Json.write_file path (to_json t)

(* The sink is process-wide mutable state; an atomic keeps readers on
   pool worker domains well-defined. *)
let global_sink : t option Atomic.t = Atomic.make None
let set_sink s = Atomic.set global_sink s
let sink () = Atomic.get global_sink
