(** Chrome trace-event collector.

    Produces the legacy Trace Event JSON format
    ([{"traceEvents": [...]}]) understood by [chrome://tracing] and
    Perfetto.  Timestamps are in microseconds; the simulator maps one
    simulated cycle to 1 µs, while wall-clock producers (the engine
    pool) use {!now_us}.

    The collector is mutex-guarded so pool workers can append
    concurrently, and bounded: past [max_events] further events are
    dropped (counted in {!dropped}) rather than exhausting memory. *)

type t

(** [create ?max_events ()] makes an empty collector.  [max_events]
    defaults to 200_000 ordinary events; metadata events (process /
    thread names) are not counted against the cap. *)
val create : ?max_events:int -> unit -> t

(** Complete ("ph":"X") span. *)
val complete :
  t ->
  name:string ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ts_us:float ->
  dur_us:float ->
  ?args:(string * Json.t) list ->
  unit ->
  unit

(** Instant ("ph":"i", thread-scoped) mark. *)
val instant :
  t ->
  name:string ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ts_us:float ->
  ?args:(string * Json.t) list ->
  unit ->
  unit

(** Metadata events labelling the pid/tid lanes in the viewer. *)
val name_process : t -> pid:int -> string -> unit

val name_thread : t -> pid:int -> tid:int -> string -> unit

(** Ordinary (non-metadata) events recorded so far. *)
val num_events : t -> int

(** Events discarded because the cap was reached. *)
val dropped : t -> int

(** Microseconds since the collector was created (wall clock). *)
val now_us : t -> float

val to_json : t -> Json.t

(** [write_file t path] writes the trace document plus newline. *)
val write_file : t -> string -> unit

(** Optional process-wide sink, for producers (the engine pool) that
    have no channel to thread a collector through call sites. *)
val set_sink : t option -> unit

val sink : unit -> t option
