(** Minimal JSON tree: emission with correct string escaping, plus a
    strict parser used to validate the files we emit (bench artifacts,
    Chrome traces).  Deliberately tiny — not a general-purpose JSON
    library, just enough for the repo's artifacts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [escape s] is [s] with JSON string escapes applied (no quotes). *)
val escape : string -> string

val to_buffer : Buffer.t -> t -> unit

(** Compact rendering (no insignificant whitespace). *)
val to_string : t -> string

(** [to_channel oc t] writes the compact rendering to [oc]. *)
val to_channel : out_channel -> t -> unit

(** [write_file path t] writes the rendering plus a trailing newline. *)
val write_file : string -> t -> unit

(** Strict parse of a complete JSON document (trailing garbage is an
    error).  Numbers with no fraction/exponent that fit in [int]
    become [Int]; everything else becomes [Float]. *)
val parse : string -> (t, string) result

val parse_file : string -> (t, string) result

(** [member k t] is the value bound to key [k] when [t] is an object. *)
val member : string -> t -> t option
