(** Minimal JSON tree: emission with correct string escaping, plus a
    strict parser used to validate the files we emit (bench artifacts,
    Chrome traces).  Deliberately tiny — not a general-purpose JSON
    library, just enough for the repo's artifacts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [escape s] is [s] with JSON string escapes applied (no quotes). *)
val escape : string -> string

(** [number f] is [Float f] when [f] is finite and [Null] otherwise —
    the explicit spelling for producers whose non-finite values mean
    "no measurement".  Emitting [Float nan]/[Float infinity] directly
    is a programming error and raises at render time. *)
val number : float -> t

val to_buffer : Buffer.t -> t -> unit
(** @raise Invalid_argument on a non-finite [Float] — NaN/inf have no
    JSON encoding; use {!number} (or [Null]) for optional values. *)

(** Compact rendering (no insignificant whitespace).
    @raise Invalid_argument on a non-finite [Float]. *)
val to_string : t -> string

(** [to_channel oc t] writes the compact rendering to [oc].
    @raise Invalid_argument on a non-finite [Float]. *)
val to_channel : out_channel -> t -> unit

(** [write_file path t] writes the rendering plus a trailing newline.
    The document is rendered (and any non-finite [Float] rejected)
    before the file is opened, so a rejected document never clobbers an
    existing artifact.
    @raise Invalid_argument on a non-finite [Float]. *)
val write_file : string -> t -> unit

(** Strict parse of a complete JSON document (trailing garbage is an
    error).  Numbers with no fraction/exponent that fit in [int]
    become [Int]; everything else becomes [Float]. *)
val parse : string -> (t, string) result

val parse_file : string -> (t, string) result

(** [member k t] is the value bound to key [k] when [t] is an object. *)
val member : string -> t -> t option
