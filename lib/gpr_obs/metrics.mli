(** Process-wide metrics registry: named monotonic counters and
    fixed-bucket histograms.

    Designed for the hot paths of the simulator and the executor:

    - {b zero-cost when disabled} — recording is a single atomic read
      of the enable flag (the default is disabled, so library users
      that never call {!set_enabled} pay almost nothing);
    - {b Domain-safe} — cells are [Atomic.t], so workers of the
      [gpr_engine] pool can record concurrently without losing
      updates; registration is mutex-guarded and idempotent (the same
      name always yields the same cell).

    Metric names are dotted paths, e.g. ["sim.stall.scoreboard"]. *)

type counter
type histogram

(** Enable/disable recording process-wide.  Registration and reads
    work regardless; only {!add}/{!incr}/{!observe} are gated. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [counter name] registers (or retrieves) the counter [name].
    @raise Invalid_argument if [name] is registered as a histogram. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** [histogram ~buckets name] registers (or retrieves) a histogram
    with the given inclusive upper bounds (sorted ascending); an
    implicit overflow bucket catches the rest.  [buckets] is only
    consulted on first registration.
    @raise Invalid_argument if [name] is registered as a counter. *)
val histogram : ?buckets:int list -> string -> histogram

val observe : histogram -> int -> unit

type entry =
  | Counter of { name : string; count : int }
  | Histogram of {
      name : string;
      sum : int;
      total : int;
      buckets : (int option * int) list;
          (** (inclusive upper bound, count); [None] = overflow. *)
    }

(** All registered metrics, sorted by name. *)
val snapshot : unit -> entry list

(** Zero every cell (registrations are kept). *)
val reset : unit -> unit

(** Snapshot rendered as a JSON array of objects. *)
val to_json : unit -> Json.t
