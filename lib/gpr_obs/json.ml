type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  escape_to buf s;
  Buffer.contents buf

let number f = if Float.is_finite f then Float f else Null

let float_repr f =
  if Float.is_nan f || Float.abs f = infinity then
    (* NaN/inf are not representable in JSON.  Refusing at emission
       (rather than silently writing "null" or a bare "nan" token)
       surfaces the bug at the producer, where the stack still names
       it, instead of downstream at the json_check gate.  Producers
       that genuinely mean "no value" build [Null] — see {!number}. *)
    invalid_arg
      (Printf.sprintf "Gpr_obs.Json: non-finite float %h has no JSON encoding"
         f)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips a double. *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s

let rec to_buffer buf t =
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf "\":";
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

let to_channel oc t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.output_buffer oc buf

let write_file path t =
  (* Render before opening: if the document is rejected (non-finite
     float), an existing artifact at [path] must survive untouched. *)
  let s = to_string t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc s;
      output_char oc '\n')

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* Encode the code point as UTF-8; surrogate pairs in the
             input are kept as two separate 3-byte sequences, which is
             fine for validation purposes. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail "bad escape");
        go ()
      end
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
