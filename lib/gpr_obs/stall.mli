(** Issue-slot stall taxonomy shared by the simulator, the report
    tables and the bench artifacts.

    Every scheduler slot of every simulated cycle is attributed to
    exactly one of: an issued instruction, or one of these causes.
    The accounting identity
    [issued + sum-of-causes = cycles x schedulers]
    is enforced by [Sim.run ~check:true] and fuzzed by the
    [gpr check] observability stage. *)

type cause =
  | Scoreboard  (** operands pending (RAW / in-flight WAW) *)
  | No_free_cu  (** ready, but no collector unit was free *)
  | Bank_conflict
      (** ready, CUs exhausted while operand fetch was serialised by a
          register-bank conflict this cycle *)
  | Spill_port
      (** blocked on an in-flight access to a spilled register (the
          single-ported spill path) *)
  | Barrier  (** warp parked at a barrier, or a [Sync] op draining *)
  | Empty  (** no resident warp had anything left to issue *)

val all : cause list

(** Long name, e.g. ["bank-conflict"] — used in JSON artifacts. *)
val name : cause -> string

(** Column-width-friendly name, e.g. ["bank"] — used in tables. *)
val short_name : cause -> string

(** Issued-vs-stalled slot totals for one simulation (or a sum of
    simulations). *)
type breakdown = {
  bd_issued : int;
  bd_stalls : (cause * int) list;
}

val empty : breakdown

(** Pointwise sum. *)
val add : breakdown -> breakdown -> breakdown

val get : breakdown -> cause -> int

(** Issued + all stall slots. *)
val total_slots : breakdown -> int

(** Percentages of total slots in {!all} order, e.g.
    ["12.5/0.0/3.1/0.0/9.4/40.6"]. *)
val pct_string : breakdown -> string

val to_json : breakdown -> Json.t
