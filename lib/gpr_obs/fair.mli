(** Fairness indices for shared-resource accounting.

    Used by the concurrent-kernel simulator to summarise how evenly
    co-scheduled kernels shared the SM's issue slots. *)

val jain : float list -> float
(** Jain's fairness index: [(sum x)^2 / (n * sum x^2)].  Ranges from
    [1/n] (one party monopolised the resource) to [1.0] (perfectly
    even).  Conventions for degenerate inputs: an empty list or an
    all-zero allocation is perfectly fair ([1.0]); negative shares are
    rejected.

    @raise Invalid_argument on a negative share. *)
