(** Fairness indices for shared-resource accounting.

    Used by the concurrent-kernel simulator to summarise how evenly
    co-scheduled kernels shared the SM's issue slots. *)

val jain : float list -> float
(** Jain's fairness index: [(sum x)^2 / (n * sum x^2)].  Ranges from
    [1/n] (one party monopolised the resource) to [1.0] (perfectly
    even) whenever at least one share is positive.  An empty list or an
    all-zero allocation is degenerate — no resource was handed out at
    all, so no fairness can be claimed — and returns the out-of-band
    sentinel [0.0] (Jain's index proper never goes below [1/n]).
    Renderers should print such a value as "n/a" rather than as a
    score; see {!degenerate}.

    @raise Invalid_argument on a negative share. *)

val degenerate : float -> bool
(** [degenerate f] is true when [f] is the sentinel {!jain} returns for
    an empty or all-zero allocation. *)
