(* Permanent register-file fault model.

   Faults live in the per-thread static physical register space — the
   same space [Alloc.placement] reg0/reg1 indexes (kept < 64 so
   indirection entries stay within [Indirection.entry_bits]).  A
   register's bank is [reg mod banks], matching the timing model's
   mapping modulo the per-warp offset: the timing engines rotate a
   warp's registers across banks, so a dead *bank* is modelled there as
   a bank-level redirect rather than per-register.

   All three fault kinds are permanent (manufacturing or wear-out
   defects), so corrupting a value once at store time is equivalent to
   corrupting it at every read: the storage is write-once-read-many per
   dynamic definition and the defect never changes. *)

type t =
  | Stuck_bit of { reg : int; bit : int; value : bool }
      (* one bit of one 32-bit register column permanently reads [value] *)
  | Dead_bank of int (* every register on this bank reads 0 *)
  | Dead_entry of int (* one register reads 0 *)

let pp = function
  | Stuck_bit { reg; bit; value } ->
    Printf.sprintf "stuck r%d.b%d=%d" reg bit (if value then 1 else 0)
  | Dead_bank b -> Printf.sprintf "dead-bank %d" b
  | Dead_entry r -> Printf.sprintf "dead r%d" r

(* ------------------------------------------------------------------ *)
(* Seeded placement *)

(* Draw a stream of distinct faults.  Prefix-stable by construction:
   [place ~count:(k+1)] extends [place ~count:k] with one more fault,
   so a sweep over increasing fault counts injects a growing prefix of
   one fixed defect population. *)
let place ~seed ~count ~banks ~regs =
  if count < 0 then invalid_arg "Fault.place: negative count";
  if banks <= 0 || regs <= 0 then invalid_arg "Fault.place: empty register file";
  let rng = Gpr_util.Rng.create (0x6661756c lxor seed) in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let n = ref 0 in
  while !n < count do
    let f =
      (* Mostly single stuck bits (the common defect), occasionally a
         whole dead entry, rarely a dead bank. *)
      match Gpr_util.Rng.int rng 12 with
      | 0 -> Dead_bank (Gpr_util.Rng.int rng banks)
      | 1 | 2 -> Dead_entry (Gpr_util.Rng.int rng regs)
      | _ ->
        Stuck_bit
          {
            reg = Gpr_util.Rng.int rng regs;
            bit = Gpr_util.Rng.int rng 32;
            value = Gpr_util.Rng.bool rng;
          }
    in
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      acc := f :: !acc;
      incr n
    end
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Compiled form *)

type compiled = {
  c_banks : int;
  c_regs : int;
  c_dead_bank : bool array; (* per bank *)
  c_dead_reg : bool array; (* per register (entry dead or its bank dead) *)
  c_or : int array; (* per register: stuck-at-1 mask *)
  c_andn : int array; (* per register: stuck-at-0 mask (bits to clear) *)
  c_bad_slices : int array; (* per register: 8-bit mask of unusable slices *)
}

let compile ~banks ~regs faults =
  let c =
    {
      c_banks = banks;
      c_regs = regs;
      c_dead_bank = Array.make banks false;
      c_dead_reg = Array.make regs false;
      c_or = Array.make regs 0;
      c_andn = Array.make regs 0;
      c_bad_slices = Array.make regs 0;
    }
  in
  List.iter
    (fun f ->
      match f with
      | Dead_bank b ->
        let b = b mod banks in
        c.c_dead_bank.(b) <- true;
        for r = 0 to regs - 1 do
          if r mod banks = b then begin
            c.c_dead_reg.(r) <- true;
            c.c_bad_slices.(r) <- 0xff
          end
        done
      | Dead_entry r ->
        if r < regs then begin
          c.c_dead_reg.(r) <- true;
          c.c_bad_slices.(r) <- 0xff
        end
      | Stuck_bit { reg; bit; value } ->
        if reg < regs then begin
          let m = 1 lsl (bit land 31) in
          if value then c.c_or.(reg) <- c.c_or.(reg) lor m
          else c.c_andn.(reg) <- c.c_andn.(reg) lor m;
          c.c_bad_slices.(reg) <-
            c.c_bad_slices.(reg) lor (1 lsl ((bit land 31) / 4))
        end)
    faults;
  c

let none ~banks ~regs = compile ~banks ~regs []

let corrupt c ~reg img =
  if reg >= c.c_regs then img
  else if c.c_dead_reg.(reg) then 0
  else (img lor c.c_or.(reg)) land lnot c.c_andn.(reg) land 0xFFFFFFFF

let is_clean c ~reg =
  reg >= c.c_regs
  || ((not c.c_dead_reg.(reg)) && c.c_or.(reg) = 0 && c.c_andn.(reg) = 0)

let bad_slices c reg = if reg >= c.c_regs then 0 else c.c_bad_slices.(reg)
let dead_bank c b = c.c_dead_bank.(b mod c.c_banks)

(* Spare-column view for the timing model: accesses to a dead bank are
   served by the nearest healthy bank scanning upward, concentrating
   its traffic (and conflicts) there.  Identity when no bank is dead;
   degenerate all-dead files keep the identity map. *)
let bank_redirect c =
  let n = c.c_banks in
  Array.init n (fun b ->
      if not c.c_dead_bank.(b) then b
      else
        let rec scan k = (* at most n steps; fall back to b *)
          if k > n then b
          else
            let b' = (b + k) mod n in
            if c.c_dead_bank.(b') then scan (k + 1) else b'
        in
        scan 1)
