(** Permanent register-file fault model: stuck-at bits, dead banks and
    dead entries, with seeded deterministic placement.

    Faults are expressed in the per-thread static physical register
    space — the space {!Gpr_alloc.Alloc.placement} indexes (registers
    stay below 64 so indirection entries fit
    {!Indirection.entry_bits}).  A register's bank is [reg mod banks],
    the timing model's mapping modulo the per-warp offset.

    All kinds are permanent defects, so corrupting a stored image once
    is equivalent to corrupting every read of it: register storage is
    write-once-read-many per dynamic definition. *)

type t =
  | Stuck_bit of { reg : int; bit : int; value : bool }
      (** One bit of one 32-bit register column permanently reads
          [value]. *)
  | Dead_bank of int  (** Every register on this bank reads 0. *)
  | Dead_entry of int  (** One register reads 0. *)

val pp : t -> string

val place : seed:int -> count:int -> banks:int -> regs:int -> t list
(** [place ~seed ~count ~banks ~regs] draws [count] distinct faults
    over a [regs]-register, [banks]-bank file.  Deterministic in
    [seed], and prefix-stable: [place ~count:(k+1)] extends
    [place ~count:k] by exactly one fault, so a sweep over increasing
    counts injects a growing prefix of one fixed defect population.
    Mix: mostly stuck bits, some dead entries, rare dead banks. *)

(** Compiled fault set, for fast application at access time. *)
type compiled

val compile : banks:int -> regs:int -> t list -> compiled
val none : banks:int -> regs:int -> compiled
(** [none ~banks ~regs] is [compile ~banks ~regs []]. *)

val corrupt : compiled -> reg:int -> int -> int
(** [corrupt c ~reg img] is the 32-bit image actually read back from
    physical register [reg] whose cell holds [img]: 0 for a dead
    entry/bank, stuck bits forced otherwise.  Identity when [reg] is
    clean or out of the modelled window. *)

val is_clean : compiled -> reg:int -> bool
(** No fault touches this register. *)

val bad_slices : compiled -> int -> int
(** 8-bit mask of 4-bit slices of the given register that a fault makes
    unusable (dead → [0xff]; each stuck bit marks its slice). *)

val dead_bank : compiled -> int -> bool

val bank_redirect : compiled -> int array
(** Spare-column view for the timing model: a [banks]-long map sending
    each dead bank to the nearest healthy bank scanning upward (its
    traffic, and conflicts, concentrate there) and every healthy bank
    to itself.  The identity map when no bank is dead. *)
