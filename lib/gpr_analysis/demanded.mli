(** Backward demanded-bits analysis.

    For every integer virtual register, computes how many low bits any
    downstream observer can ever distinguish — stores, addresses,
    comparisons and branch predicates demand all 32; pure dataflow
    through add/mul/bitwise chains only demands as many low bits as
    the consumer itself demands (a [v & 0xff] consumer demands 8 bits
    of [v], a shift amount demands 5).

    Demand is contiguous from bit 0 by construction (a *width*, not an
    arbitrary mask): since the register file stores values
    low-bits-first and re-extends from the stored msb, a value may be
    truncated to its demanded width without perturbing any demanded
    bit of any transitive consumer, which is exactly the property the
    [gpr check] width-soundness stage replays dynamically.

    The analysis is flow-insensitive over original (non-SSA)
    variables: each variable's demand is the maximum over all its
    reads anywhere in the kernel, which over-approximates the
    flow-sensitive answer and is therefore sound.  A written-but-
    never-read variable ends up with demand 0. *)

open Gpr_isa.Types

val analyze : kernel -> int array
(** Demanded width (0–32) per virtual register id of the original
    (executable, non-SSA) kernel.  Entries for float and predicate
    registers are 32. *)
