(** Sparse e-SSA dataflow framework (generalizes {!Range}'s solver).

    The solver is functorized over an abstract {!DOMAIN}: the interval
    domain of {!Range}, the tri-state bitmask domain of {!Knownbits}
    and the stride/alignment domain of {!Congruence} all instantiate
    it.  The schedule is the CGO'13 one: strongly-connected components
    of the e-SSA dependence graph are solved dependencies-first;
    acyclic nodes are evaluated once, cyclic components run a short
    join phase, then widen to a post-fixpoint, then a bounded
    narrowing phase. *)

open Gpr_isa.Types

module type DOMAIN = sig
  type t

  val name : string
  (** Short identifier used in reports and benchmarks. *)

  val bot : t
  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound. *)

  val widen : t -> t -> t
  (** [widen old new_] must reach a post-fixpoint in finitely many
      steps along any ascending chain. *)

  val narrow : t -> t -> t
  (** [narrow old new_] may refine [old] towards [new_]; any result
      that over-approximates the least fixpoint is sound (returning
      [old] unchanged is always allowed). *)

  val top_of : dtype -> t
  (** Least informative element for a value of the given type. *)

  val of_range : dtype -> lo:int -> hi:int -> t
  (** Abstraction of the concrete set [{lo, ..., hi}] — used to seed
      special registers, parameter ranges and buffer-load results. *)

  val transfer : (int -> t) -> instr -> t
  (** [transfer lookup ins] abstractly evaluates the defining
      instruction [ins]; [lookup id] reads the current abstract value
      of e-SSA name [id].  Must be monotone in the looked-up values. *)

  val extra_deps : instr -> int list
  (** Dependence edges beyond register operands (e.g. π-node futures
      for the interval domain). *)
end

val sccs : n:int -> deps:(int -> int list) -> int list list
(** Tarjan's algorithm; components are emitted dependencies-first
    (reverse topological order of the condensation). *)

module Make (D : DOMAIN) : sig
  type result = {
    ssa_values : D.t array;  (** per e-SSA name *)
    var_values : D.t array;  (** per original variable (join of its
                                 tracked e-SSA versions); [D.bot] for
                                 untracked variables *)
    ty_of : dtype array;     (** per e-SSA name *)
    tracked : bool array;    (** per e-SSA name: integer-typed *)
  }

  val solve : Ssa.t -> launch:launch -> result
  (** [solve essa ~launch] runs the sparse solver on an (e-)SSA form
      kernel.  [launch] seeds the special registers. *)
end
