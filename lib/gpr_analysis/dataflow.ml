open Gpr_isa.Types

module type DOMAIN = sig
  type t

  val name : string
  val bot : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  val narrow : t -> t -> t
  val top_of : dtype -> t
  val of_range : dtype -> lo:int -> hi:int -> t
  val transfer : (int -> t) -> instr -> t
  val extra_deps : instr -> int list
end

let is_int_ty = function S32 | U32 -> true | F32 | Pred -> false

(* ------------------------------------------------------------------ *)
(* Tarjan SCC over the dependence graph *)

let sccs ~n ~deps =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) = -1 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (deps v);
    if lowlink.(v) = index.(v) then begin
      let rec popping acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else popping (w :: acc)
        | [] -> assert false
      in
      out := popping [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order of the
     condensation; with [deps] pointing from user to used, that is
     dependencies-first — exactly the evaluation order we need.  The
     accumulator prepends, so restore emission order. *)
  List.rev !out

(* ------------------------------------------------------------------ *)

module Make (D : DOMAIN) = struct
  type result = {
    ssa_values : D.t array;
    var_values : D.t array;
    ty_of : dtype array;
    tracked : bool array;
  }

  let solve (ssa : Ssa.t) ~launch =
    let k = ssa.Ssa.kernel in
    let n = k.k_num_vregs in
    let state = Array.make n D.bot in

    (* Definition map. *)
    let def = Array.make n None in
    Array.iter
      (fun blk ->
         Array.iter
           (fun ins ->
              match defs ins with
              | Some d -> def.(d.id) <- Some ins
              | None -> ())
           blk.instrs)
      k.k_blocks;

    (* Seeds: specials from launch geometry; names with no definition
       are entry-level (undef or special) and default to top of their
       type. *)
    let special_seed = Hashtbl.create 16 in
    List.iter
      (fun (id, s) ->
         let v =
           match s with
           | Tid_x -> D.of_range S32 ~lo:0 ~hi:(launch.ntid_x - 1)
           | Tid_y -> D.of_range S32 ~lo:0 ~hi:(launch.ntid_y - 1)
           | Ntid_x -> D.of_range S32 ~lo:launch.ntid_x ~hi:launch.ntid_x
           | Ntid_y -> D.of_range S32 ~lo:launch.ntid_y ~hi:launch.ntid_y
           | Ctaid_x -> D.of_range S32 ~lo:0 ~hi:(launch.nctaid_x - 1)
           | Ctaid_y -> D.of_range S32 ~lo:0 ~hi:(launch.nctaid_y - 1)
           | Nctaid_x -> D.of_range S32 ~lo:launch.nctaid_x ~hi:launch.nctaid_x
           | Nctaid_y -> D.of_range S32 ~lo:launch.nctaid_y ~hi:launch.nctaid_y
         in
         Hashtbl.replace special_seed id v)
      k.k_specials;

    (* Collect the set of int-typed nodes and their types. *)
    let ty_of = Array.make n S32 in
    let tracked = Array.make n false in
    let note (r : vreg) =
      if r.id < n then begin
        ty_of.(r.id) <- r.ty;
        tracked.(r.id) <- is_int_ty r.ty
      end
    in
    Array.iter
      (fun blk ->
         Array.iter
           (fun ins ->
              (match defs ins with Some d -> note d | None -> ());
              List.iter note (uses ins))
           blk.instrs)
      k.k_blocks;
    Hashtbl.iter
      (fun id _ -> ty_of.(id) <- S32; tracked.(id) <- true)
      special_seed;

    let lookup v = state.(v) in
    let eval v =
      match Hashtbl.find_opt special_seed v with
      | Some seed -> seed
      | None ->
        (match def.(v) with
         | None -> D.top_of ty_of.(v)  (* undef version *)
         | Some (Ld_param (d, i)) ->
           (match k.k_params.(i).p_range with
            | Some (lo, hi) when is_int_ty d.ty -> D.of_range d.ty ~lo ~hi
            | _ -> D.top_of d.ty)
         | Some ins -> D.transfer lookup ins)
    in

    (* Dependence edges: value -> values it reads (plus domain-specific
       extras such as π-node futures). *)
    let deps v =
      match def.(v) with
      | None -> []
      | Some ins ->
        let reg_deps =
          uses ins
          |> List.filter_map (fun (r : vreg) ->
              if is_int_ty r.ty && r.id < n then Some r.id else None)
        in
        reg_deps @ D.extra_deps ins
    in

    let components = sccs ~n ~deps in
    List.iter
      (fun comp ->
         match comp with
         | [ v ] when not (List.mem v (deps v)) ->
           if tracked.(v) then state.(v) <- eval v
         | _ ->
           let members = List.filter (fun v -> tracked.(v)) comp in
           (* Growth phase with widening. *)
           let changed = ref true in
           let rounds = ref 0 in
           while !changed && !rounds < 64 do
             changed := false;
             incr rounds;
             List.iter
               (fun v ->
                  let nv = eval v in
                  let wv =
                    if !rounds <= 2 then D.join state.(v) nv
                    else D.widen state.(v) nv
                  in
                  if not (D.equal wv state.(v)) then begin
                    state.(v) <- wv;
                    changed := true
                  end)
               members
           done;
           if !changed then
             (* The round cap fired before a post-fixpoint was reached
                (the domain's widening was not aggressive enough) —
                degrade the whole component to top rather than keep an
                under-approximation. *)
             List.iter (fun v -> state.(v) <- D.top_of ty_of.(v)) members
           else
             (* Narrowing phase (bounded). *)
             for _ = 1 to 4 do
               List.iter
                 (fun v ->
                    let nv = eval v in
                    state.(v) <- D.narrow state.(v) nv)
                 members
             done)
      components;

    (* Merge per original variable (Fig. 8d). *)
    let var_values = Array.make ssa.Ssa.num_orig D.bot in
    Array.iteri
      (fun ssa_id orig_id ->
         if tracked.(ssa_id) then
           var_values.(orig_id) <- D.join var_values.(orig_id) state.(ssa_id))
      ssa.Ssa.orig_of_ssa;

    { ssa_values = state; var_values; ty_of; tracked }
end
