(** Congruence (stride/alignment) abstract domain.

    [Cg {k; r}] denotes every value [v] with [v ≡ r (mod 2^k)]
    — e.g. [tid*4] is [Cg {k = 2; r = 0}].  Moduli are powers of two
    up to [2^31], so the relation is preserved by the executor's
    mod-2^32 wrap and by signed/unsigned reinterpretation.  The domain
    complements {!Knownbits}: it survives additions of unknown
    multiples where a bitmask alone would degrade. *)

open Gpr_isa.Types

type t =
  | Bot                       (** empty set *)
  | Cg of { k : int; r : int }
      (** [v ≡ r (mod 2^k)]; invariant [0 <= k <= 31],
          [0 <= r < 2^k]; [k = 0] is top *)

val top : t
val const : int -> t
val equal : t -> t -> bool
val is_bot : t -> bool

val join : t -> t -> t
val meet : t -> t -> t

val mem : int -> t -> bool
(** Membership of the 32-bit wrapped value. *)

val binop : dtype -> ibinop -> t -> t -> t
val unop : dtype -> iunop -> t -> t
val mad : t -> t -> t -> t

val known_low_bits : t -> (int * int) option
(** [known_low_bits t] is [Some (k, r)] when the low [k > 0] bits are
    exactly [r] — the reduced-product hook into {!Knownbits}. *)

val refine_interval : Gpr_util.Interval.t -> t -> Gpr_util.Interval.t
(** Tighten finite interval bounds inward to the nearest members of
    the congruence class. *)

val to_string : t -> string

module Domain : Dataflow.DOMAIN with type t = t
