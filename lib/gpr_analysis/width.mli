(** Reduced-product width authority.

    [analyze] runs the interval analysis ({!Range}), the known-bits
    and congruence forward domains (both over the same e-SSA form, via
    {!Dataflow.Make}) and the backward demanded-bits pass
    ({!Demanded}), then combines them: per original variable the
    storage width is the minimum of

    - the interval width ([Range.var_bits]),
    - the known-bits width, after meeting in the congruence class's
      exactly-known low bits,
    - the width of the interval tightened inward to the congruence
      class, and
    - the demanded width (floored at 1 bit),

    which is never wider than the interval-only answer (dominance) and
    strictly narrower whenever a bitwise mask, an alignment stride or
    a dead high part escapes the interval abstraction.  This is the
    single width source consumed by {!Gpr_core.Compress}, every
    backend scheme and the linter; the [gpr check] width stage
    dynamically validates all four ingredients. *)

open Gpr_isa.Types

type t = {
  range : Range.t;                 (** underlying interval results *)
  known : Knownbits.t array;
      (** per original variable, congruence low bits folded in;
          [Bot] for untracked (float/pred) variables *)
  cong : Congruence.t array;       (** per original variable *)
  demanded : int array;            (** per original variable, 0–32 *)
  var_bits : int array;            (** final product width, 1–32 *)
}

val analyze : kernel -> launch:launch -> t

val var_bitwidth : t -> int -> int
(** Product width (the authority). *)

val interval_bitwidth : t -> int -> int
(** Interval-only width, kept for old-vs-new deltas. *)

val demanded_width : t -> int -> int
val known_bits : t -> int -> Knownbits.t
val congruence : t -> int -> Congruence.t

val narrow_int_count : t -> kernel -> int
(** Number of integer variables with product width below 32 bits. *)

val interval_narrow_int_count : t -> kernel -> int
(** Same statistic under interval-only widths. *)
