open Gpr_isa.Types
module I = Gpr_util.Interval
module Bits = Gpr_util.Bits

type t =
  | Bot
  | Cg of { k : int; r : int }

(* Moduli are capped at 2^31 so residue arithmetic (including residue
   products) stays well inside OCaml's native int range. *)
let kmax = 31

let top = Cg { k = 0; r = 0 }

let make k r =
  let k = min k kmax in
  if k <= 0 then top else Cg { k; r = r land Bits.mask k }

let const c = make kmax c

let is_bot = function Bot -> true | _ -> false

let equal a b =
  match a, b with
  | Bot, Bot -> true
  | Cg a, Cg b -> a.k = b.k && a.r = b.r
  | _ -> false

let rec ntz x = if x land 1 = 1 then 0 else 1 + ntz (x lsr 1)

let join a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Cg a, Cg b ->
    let k = min a.k b.k in
    let d = (a.r lxor b.r) land Bits.mask k in
    let k = if d = 0 then k else min k (ntz d) in
    make k a.r

let meet a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Cg a', Cg b' ->
    let kmin = min a'.k b'.k in
    if (a'.r lxor b'.r) land Bits.mask kmin <> 0 then Bot
    else if a'.k >= b'.k then Cg a'
    else Cg b'

let mem v t =
  match t with
  | Bot -> false
  | Cg { k; r } -> (v land 0xffff_ffff) land Bits.mask k = r

(* ------------------------------------------------------------------ *)
(* Transfers.  Residues are of 32-bit wrapped patterns; since
   2^k | 2^32 the relation survives the executor's wrap and the
   signed/unsigned reinterpretation. *)

let add a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Cg a, Cg b -> let k = min a.k b.k in make k (a.r + b.r)

let sub a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Cg a, Cg b -> let k = min a.k b.k in make k (a.r - b.r)

(* 2-adic valuation of the whole congruence class. *)
let class_tz (c : t) =
  match c with
  | Bot -> kmax
  | Cg { k; r } -> if r = 0 then k else min k (ntz r)

let mul a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Cg a', Cg b' ->
    let k = min a'.k b'.k in
    let residue = make k (a'.r * b'.r) in
    let align = make (class_tz a + class_tz b) 0 in
    meet residue align

let bitwise f a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Cg a, Cg b -> let k = min a.k b.k in make k (f a.r b.r)

let bnot = function
  | Bot -> Bot
  | Cg { k; r } -> make k (lnot r)

let shl a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Cg a', Cg b' when b'.k >= 5 ->
    let c = b'.r land 31 in
    make (a'.k + c) (a'.r lsl c)
  | _, Cg _ ->
    (* Unknown amount: left shifts preserve divisibility. *)
    let t = class_tz a in
    if t > 0 then make t 0 else top

let shr a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Cg a', Cg b' when b'.k >= 5 ->
    (* Low bits of the result come from bits [c ..] of the source —
       known up to bit [a'.k], for logical and arithmetic shifts
       alike. *)
    let c = b'.r land 31 in
    if c = 0 then Cg a' else make (a'.k - c) (a'.r lsr c)
  | _ -> top

let binop _ty op a b =
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div | Rem -> (match a, b with Bot, _ | _, Bot -> Bot | _ -> top)
  | Min | Max ->
    (* min/max returns one of its operands. *)
    (match a, b with Bot, _ | _, Bot -> Bot | _ -> join a b)
  | And -> bitwise ( land ) a b
  | Or -> bitwise ( lor ) a b
  | Xor -> bitwise ( lxor ) a b
  | Shl -> shl a b
  | Shr -> shr a b

let unop _ty op a =
  match op with
  | Ineg -> sub (const 0) a
  | Inot -> bnot a
  | Iabs -> (match a with Bot -> Bot | _ -> top)

let mad a b c = add (mul a b) c

(* ------------------------------------------------------------------ *)

let known_low_bits = function
  | Bot | Cg { k = 0; _ } -> None
  | Cg { k; r } -> Some (k, r)

let emod x m = ((x mod m) + m) mod m

let refine_interval itv t =
  match itv, t with
  | I.Range (I.Finite lo, I.Finite hi), Cg { k; r }
    when k > 0 && lo >= -0x8000_0000 && hi <= 0xffff_ffff ->
    (* Within the 32-bit domain the Z-valued interval and the wrapped
       congruence class describe the same value, so bounds may be
       pulled inward to the nearest class members. *)
    let m = 1 lsl k in
    let lo' = lo + emod (r - lo) m in
    let hi' = hi - emod (hi - r) m in
    I.of_ints lo' hi'
  | _ -> itv

let to_string = function
  | Bot -> "bot"
  | Cg { k = 0; _ } -> "top"
  | Cg { k; r } -> Printf.sprintf "≡%d (mod 2^%d)" r k

(* ------------------------------------------------------------------ *)

let is_int_ty = function S32 | U32 -> true | F32 | Pred -> false

module Domain = struct
  type nonrec t = t

  let name = "congruence"
  let bot = Bot
  let equal = equal
  let join = join
  let widen a b = if equal (join a b) a then a else top
  let narrow a b = if equal a top then b else a
  let top_of (_ : dtype) = top

  let of_range (_ : dtype) ~lo ~hi = if lo = hi then const lo else top

  let extra_deps (_ : instr) = []

  let operand lookup = function
    | Reg (r : vreg) -> if is_int_ty r.ty then lookup r.id else top
    | Imm_i c -> const c
    | Imm_f _ -> top

  let transfer lookup ins =
    let op = operand lookup in
    match ins with
    | Ibin (o, d, a, b) -> binop d.ty o (op a) (op b)
    | Iun (o, d, a) -> unop d.ty o (op a)
    | Imad (_, a, b, c) -> mad (op a) (op b) (op c)
    | Selp (_, a, b, _) -> join (op a) (op b)
    | Mov (_, a) -> op a
    | Cvt (o, _, a) ->
      (match o with
       | S32_of_u32 | U32_of_s32 -> op a  (* pattern preserved *)
       | S32_of_f32 | U32_of_f32 | F32_of_s32 | F32_of_u32 -> top)
    | Ld (d, { abuf; _ }) ->
      (match abuf.buf_range with
       | Some (lo, hi) when lo = hi && is_int_ty d.ty -> const lo
       | _ -> top)
    | Ld_param _ -> top  (* solver resolves param ranges *)
    | Phi (_, ops) ->
      List.fold_left (fun acc (_, o) -> join acc (op o)) Bot ops
    | Pi (_, s, f) ->
      (* Only an exact equality filter refines a congruence. *)
      (match f.pf_lo, f.pf_hi with
       | Pb_const lo, Pb_const hi when lo = hi -> meet (lookup s.id) (const lo)
       | _ -> lookup s.id)
    | Setp _ | Fbin _ | Fun _ | Ffma _ | St _ | Bar -> top
end
