open Gpr_isa.Types
module I = Gpr_util.Interval

type t = {
  essa : Ssa.t;
  ssa_ranges : I.t array;
  var_ranges : I.t array;
  var_bits : int array;
}

let is_int_ty = function S32 | U32 -> true | F32 | Pred -> false

let top_of_ty = function
  | S32 -> I.i32
  | U32 -> I.u32
  | F32 | Pred -> I.top

(* Following Pereira et al., ranges live in Z: the analysis does not
   model two's-complement wrap-around (the original use case *detects*
   overflow instead).  Bounds may transiently exceed the 32-bit range
   during widening; the final bitwidth is capped at 32, so an
   "overflowing" variable simply stays uncompressed. *)
let clamp_ty (_ : dtype) itv = itv

(* ------------------------------------------------------------------ *)
(* Per-node evaluation *)

let eval_operand lookup = function
  | Reg (r : vreg) -> if is_int_ty r.ty then lookup r.id else I.top
  | Imm_i c -> I.of_const c
  | Imm_f _ -> I.top

let eval_ibin op a b =
  match op with
  | Add -> I.add a b
  | Sub -> I.sub a b
  | Mul -> I.mul a b
  | Div -> I.div a b
  | Rem -> I.rem a b
  | Min -> I.min_ a b
  | Max -> I.max_ a b
  | And -> I.band a b
  | Or -> I.bor a b
  | Xor -> I.bxor a b
  | Shl -> I.shl a b
  | Shr -> I.shr a b

let resolve_bound lookup ~is_lo = function
  | Pb_none -> if is_lo then I.Neg_inf else I.Pos_inf
  | Pb_const c -> I.Finite c
  | Pb_var (v, off) ->
    let itv = lookup v in
    (* A future: the bound of another variable, plus an offset. *)
    let b = if is_lo then I.lo itv else I.hi itv in
    (match b with
     | I.Finite x -> I.Finite (x + off)
     | inf -> inf)

let eval_filter lookup f =
  let lo = resolve_bound lookup ~is_lo:true f.pf_lo in
  let hi = resolve_bound lookup ~is_lo:false f.pf_hi in
  I.range lo hi

let eval_instr lookup ins =
  match ins with
  | Ibin (op, d, a, b) ->
    clamp_ty d.ty (eval_ibin op (eval_operand lookup a) (eval_operand lookup b))
  | Iun (op, d, a) ->
    let va = eval_operand lookup a in
    (match op with
     | Ineg -> clamp_ty d.ty (I.neg va)
     | Iabs -> clamp_ty d.ty (I.abs va)
     | Inot -> top_of_ty d.ty)
  | Imad (d, a, b, c) ->
    clamp_ty d.ty
      (I.add
         (I.mul (eval_operand lookup a) (eval_operand lookup b))
         (eval_operand lookup c))
  | Selp (d, a, b, _) ->
    clamp_ty d.ty (I.join (eval_operand lookup a) (eval_operand lookup b))
  | Mov (d, a) -> clamp_ty d.ty (eval_operand lookup a)
  | Cvt (op, d, a) ->
    (match op with
     | S32_of_u32 | U32_of_s32 ->
       let va = eval_operand lookup a in
       if I.subset va (top_of_ty d.ty) then va else top_of_ty d.ty
     | S32_of_f32 | U32_of_f32 -> top_of_ty d.ty
     | F32_of_s32 | F32_of_u32 -> I.top)
  | Ld (d, { abuf; _ }) ->
    (match abuf.buf_range with
     | Some (lo, hi) when is_int_ty d.ty -> I.of_ints lo hi
     | _ -> top_of_ty d.ty)
  | Ld_param (d, i) -> (
      (* Param ranges are resolved by the solver, which has access to
         the kernel's param table. *)
      ignore i;
      top_of_ty d.ty)
  | Phi (_, ops) ->
    List.fold_left (fun acc (_, op) -> I.join acc (eval_operand lookup op)) I.bot ops
  | Pi (_, s, f) -> I.meet (lookup s.id) (eval_filter lookup f)
  | Setp _ | Fbin _ | Fun _ | Ffma _ | St _ | Bar -> I.top

(* ------------------------------------------------------------------ *)
(* The interval instance of the generic sparse solver. *)

module Dom = struct
  type t = I.t

  let name = "interval"
  let bot = I.bot
  let equal = I.equal
  let join = I.join
  let widen = I.widen
  let narrow = I.narrow
  let top_of = top_of_ty
  let of_range (_ : dtype) ~lo ~hi = I.of_ints lo hi
  let transfer = eval_instr

  let extra_deps = function
    | Pi (_, _, f) ->
      (* π-node futures: the bound of another variable. *)
      let of_bound = function Pb_var (x, _) -> [ x ] | _ -> [] in
      of_bound f.pf_lo @ of_bound f.pf_hi
    | _ -> []
end

module Solver = Dataflow.Make (Dom)

(* ------------------------------------------------------------------ *)

let analyze kernel ~launch =
  let ssa = Essa.convert (Ssa.convert kernel) in
  let r = Solver.solve ssa ~launch in

  let var_bits = Array.make ssa.Ssa.num_orig 32 in
  Array.iteri
    (fun ssa_id orig_id ->
       if r.Solver.tracked.(ssa_id) then
         let itv = r.Solver.var_values.(orig_id) in
         let bits =
           match itv with
           | I.Bot -> 1  (* never live *)
           | I.Range (I.Finite lo, I.Finite hi) ->
             if r.Solver.ty_of.(ssa_id) = U32 && lo >= 0 then
               Gpr_util.Bits.bits_for_unsigned_range lo hi
             else Gpr_util.Bits.bits_for_signed_range lo hi
           | I.Range _ -> 32
         in
         var_bits.(orig_id) <- min 32 bits)
    ssa.Ssa.orig_of_ssa;

  { essa = ssa;
    ssa_ranges = r.Solver.ssa_values;
    var_ranges = r.Solver.var_values;
    var_bits }

let var_range t v = t.var_ranges.(v)
let var_bitwidth t v = t.var_bits.(v)

let narrow_int_count t kernel =
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            match defs ins with
            | Some (d : vreg)
              when is_int_ty d.ty && not (Hashtbl.mem seen d.id) ->
              Hashtbl.replace seen d.id ();
              if d.id < Array.length t.var_bits && t.var_bits.(d.id) < 32 then
                incr count
            | _ -> ())
         blk.instrs)
    kernel.k_blocks;
  !count
