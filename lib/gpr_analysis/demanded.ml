open Gpr_isa.Types

let is_int_ty = function S32 | U32 -> true | F32 | Pred -> false

let rec msb_index x = if x <= 1 then 0 else 1 + msb_index (x lsr 1)

let width_of_mask m = if m = 0 then 0 else msb_index (m land 0xffff_ffff) + 1

(* Low [m] bits set; [m] in 0..32. *)
let lowmask m = if m >= 32 then 0xffff_ffff else (1 lsl m) - 1

let analyze (kernel : kernel) =
  let n = kernel.k_num_vregs in
  let dem = Array.make n 0 in
  let ty_of = Array.make n S32 in
  let note (r : vreg) = if r.id < n then ty_of.(r.id) <- r.ty in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            (match defs ins with Some d -> note d | None -> ());
            List.iter note (uses ins))
         blk.instrs;
       List.iter note (term_uses blk.term))
    kernel.k_blocks;

  let changed = ref true in
  let demand (r : vreg) m =
    let m = min 32 m in
    if r.id < n && m > dem.(r.id) then begin
      dem.(r.id) <- m;
      changed := true
    end
  in
  let dop o m = match o with Reg r -> demand r m | Imm_i _ | Imm_f _ -> () in
  let demand_all ins m = List.iter (fun r -> demand r m) (uses ins) in

  let propagate ins =
    match ins with
    | St ({ aindex; _ }, v) ->
      (* Outputs and addresses are fully observed. *)
      dop aindex 32;
      dop v 32
    | Ld (_, { aindex; _ }) -> dop aindex 32
    | Setp (_, _, _, a, b) ->
      (* A comparison can distinguish any bit. *)
      dop a 32;
      dop b 32
    | Ibin (op, d, a, b) ->
      let m = dem.(d.id) in
      (match op with
       | Add | Sub | Mul ->
         (* Carries propagate strictly upward: low m bits of the
            result depend only on low m bits of the inputs. *)
         dop a m;
         dop b m
       | And ->
         (match a, b with
          | _, Imm_i c -> dop a (width_of_mask (c land lowmask m))
          | Imm_i c, _ -> dop b (width_of_mask (c land lowmask m))
          | _ -> dop a m; dop b m)
       | Or ->
         (match a, b with
          | _, Imm_i c -> dop a (width_of_mask (lnot c land lowmask m))
          | Imm_i c, _ -> dop b (width_of_mask (lnot c land lowmask m))
          | _ -> dop a m; dop b m)
       | Xor -> dop a m; dop b m
       | Div | Rem | Min | Max ->
         (* Non-local in the bits: every input bit can flip low
            result bits. *)
         if m > 0 then begin dop a 32; dop b 32 end
       | Shl ->
         (match b with
          | Imm_i c -> dop a (max 0 (m - (c land 31)))
          | _ -> dop a m);
         (* The executor masks shift amounts to 5 bits. *)
         dop b (if m = 0 then 0 else 5)
       | Shr ->
         (match b with
          | Imm_i c -> if m > 0 then dop a (m + (c land 31))
          | _ -> if m > 0 then dop a 32);
         dop b (if m = 0 then 0 else 5))
    | Iun (op, d, a) ->
      let m = dem.(d.id) in
      (match op with
       | Ineg | Inot -> dop a m
       | Iabs -> if m > 0 then dop a 32)
    | Imad (d, a, b, c) ->
      let m = dem.(d.id) in
      dop a m; dop b m; dop c m
    | Selp (d, a, b, p) ->
      let m = dem.(d.id) in
      dop a m;
      dop b m;
      if m > 0 then demand p 32
    | Mov (d, a) -> dop a dem.(d.id)
    | Cvt (op, d, a) ->
      (match op with
       | S32_of_u32 | U32_of_s32 -> dop a dem.(d.id)  (* pattern preserved *)
       | S32_of_f32 | U32_of_f32 | F32_of_s32 | F32_of_u32 -> dop a 32)
    | Ld_param _ | Bar -> ()
    | Fbin _ | Fun _ | Ffma _ -> demand_all ins 32
    | Phi _ | Pi _ ->
      (* Not present in executable kernels; be conservative. *)
      demand_all ins 32
  in

  let sweeps = ref 0 in
  while !changed && !sweeps < 1024 do
    changed := false;
    incr sweeps;
    (* Reverse order converges quickly on forward-built kernels. *)
    for b = Array.length kernel.k_blocks - 1 downto 0 do
      let blk = kernel.k_blocks.(b) in
      List.iter (fun r -> demand r 32) (term_uses blk.term);
      for i = Array.length blk.instrs - 1 downto 0 do
        propagate blk.instrs.(i)
      done
    done
  done;
  if !changed then Array.fill dem 0 n 32  (* cap hit: give up soundly *)
  else
    (* Width narrowing only applies to integer registers. *)
    Array.iteri (fun i ty -> if not (is_int_ty ty) then dem.(i) <- 32) ty_of;
  dem
