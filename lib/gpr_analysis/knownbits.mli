(** Known-bits abstract domain (LLVM-style tri-state bitmask).

    An abstract value tracks, for each of the 32 bits of a value's
    two's-complement pattern, whether the bit is known-zero, known-one
    or unknown.  Unlike intervals the domain is exact for bitwise
    masks and shifts, and — because it abstracts bit *patterns* — it
    remains sound under 32-bit wrap-around, where the interval
    analysis must give up.

    Concretization: [Kb {ones; unk}] denotes every 32-bit pattern [p]
    with [p land (lnot unk) = ones]; signed and unsigned values share
    their pattern. *)

open Gpr_isa.Types

type t =
  | Bot                            (** empty set *)
  | Kb of { ones : int; unk : int }
      (** invariant: [ones land unk = 0], both within 32 bits *)

val top : t
val const : int -> t
(** Singleton (the 32-bit pattern of the given value). *)

val equal : t -> t -> bool
val is_bot : t -> bool

val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t
val narrow : t -> t -> t

val of_range : lo:int -> hi:int -> t
(** Common-prefix abstraction of all values in [[lo, hi]]. *)

val of_low_bits : int -> int -> t
(** [of_low_bits k r]: low [k] bits are exactly [r], the rest unknown
    — the image of a {!Congruence} class. *)

val mem : int -> t -> bool
(** [mem v t]: does the 32-bit pattern of [v] lie in the
    concretization? *)

val binop : dtype -> ibinop -> t -> t -> t
(** Abstract transfer of an integer binary op, mirroring the
    executor's wrap semantics (shift amounts masked to 5 bits,
    [Shr] logical for [U32] and arithmetic otherwise). *)

val unop : dtype -> iunop -> t -> t
val mad : t -> t -> t -> t

val width : dtype -> t -> int
(** Required storage width in bits (1–32): unsigned magnitude for
    [U32], two's-complement signed width otherwise.  [Bot] -> 1. *)

val to_string : t -> string
(** 32-character MSB-first rendering, e.g. ["000...0101?"];
    ["bot"] for {!Bot}. *)

module Domain : Dataflow.DOMAIN with type t = t
(** Instance plugged into {!Dataflow.Make}. *)
