open Gpr_isa.Types
module I = Gpr_util.Interval
module Bits = Gpr_util.Bits

type t = {
  range : Range.t;
  known : Knownbits.t array;
  cong : Congruence.t array;
  demanded : int array;
  var_bits : int array;
}

let is_int_ty = function S32 | U32 -> true | F32 | Pred -> false

module Kb_solver = Dataflow.Make (Knownbits.Domain)
module Cg_solver = Dataflow.Make (Congruence.Domain)

(* Same width convention as [Range.analyze]'s final pass. *)
let bits_of_interval ty itv =
  match itv with
  | I.Bot -> 1
  | I.Range (I.Finite lo, I.Finite hi) ->
    min 32
      (if ty = U32 && lo >= 0 then Bits.bits_for_unsigned_range lo hi
       else Bits.bits_for_signed_range lo hi)
  | I.Range _ -> 32

let analyze kernel ~launch =
  let range = Range.analyze kernel ~launch in
  let essa = range.Range.essa in
  let kb = Kb_solver.solve essa ~launch in
  let cg = Cg_solver.solve essa ~launch in
  let demanded = Demanded.analyze kernel in
  let n = essa.Ssa.num_orig in

  let orig_ty = Array.make n S32 in
  let orig_tracked = Array.make n false in
  Array.iteri
    (fun ssa_id orig_id ->
       if kb.Kb_solver.tracked.(ssa_id) then begin
         orig_tracked.(orig_id) <- true;
         orig_ty.(orig_id) <- kb.Kb_solver.ty_of.(ssa_id)
       end)
    essa.Ssa.orig_of_ssa;

  let known = Array.make n Knownbits.Bot in
  let cong = Array.make n Congruence.Bot in
  let var_bits = Array.make n 32 in
  for v = 0 to n - 1 do
    if orig_tracked.(v) then begin
      let ty = orig_ty.(v) in
      let cgv = cg.Cg_solver.var_values.(v) in
      (* Reduced product: a congruence class pins its low bits
         exactly, which the bitmask domain can consume directly. *)
      let kbv =
        match Congruence.known_low_bits cgv with
        | Some (k, r) ->
          Knownbits.meet kb.Kb_solver.var_values.(v) (Knownbits.of_low_bits k r)
        | None -> kb.Kb_solver.var_values.(v)
      in
      known.(v) <- kbv;
      cong.(v) <- cgv;
      let w_interval = range.Range.var_bits.(v) in
      let w_known = Knownbits.width ty kbv in
      let w_strided =
        bits_of_interval ty
          (Congruence.refine_interval (Range.var_range range v) cgv)
      in
      let w_demanded = max 1 demanded.(v) in
      var_bits.(v) <-
        max 1 (min (min w_interval w_known) (min w_strided w_demanded))
    end
  done;
  { range; known; cong; demanded; var_bits }

let var_bitwidth t v = t.var_bits.(v)
let interval_bitwidth t v = t.range.Range.var_bits.(v)
let demanded_width t v = t.demanded.(v)
let known_bits t v = t.known.(v)
let congruence t v = t.cong.(v)

let count_narrow bits kernel =
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            match defs ins with
            | Some (d : vreg)
              when is_int_ty d.ty && not (Hashtbl.mem seen d.id) ->
              Hashtbl.replace seen d.id ();
              if d.id < Array.length bits && bits.(d.id) < 32 then incr count
            | _ -> ())
         blk.instrs)
    kernel.k_blocks;
  !count

let narrow_int_count t kernel = count_narrow t.var_bits kernel
let interval_narrow_int_count t kernel = count_narrow t.range.Range.var_bits kernel
