open Gpr_isa.Types
module Bits = Gpr_util.Bits

type t =
  | Bot
  | Kb of { ones : int; unk : int }

let m32 = 0xffff_ffff
let b31 = 0x8000_0000

let top = Kb { ones = 0; unk = m32 }
let const c = Kb { ones = c land m32; unk = 0 }

let is_bot = function Bot -> true | _ -> false

let equal a b =
  match a, b with
  | Bot, Bot -> true
  | Kb a, Kb b -> a.ones = b.ones && a.unk = b.unk
  | _ -> false

(* Known-zero mask of a non-bottom value. *)
let zeros o u = m32 land lnot (o lor u)

let join a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Kb a, Kb b ->
    let ones = a.ones land b.ones in
    let unk = (a.unk lor b.unk lor (a.ones lxor b.ones)) land m32 in
    Kb { ones = ones land lnot unk; unk }

let meet a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a, Kb b ->
    (* Conflict: a bit known-one on one side and known-zero on the other. *)
    if (a.ones lxor b.ones) land lnot a.unk land lnot b.unk <> 0 then Bot
    else Kb { ones = a.ones lor b.ones; unk = a.unk land b.unk }

let widen a b = if equal (join a b) a then a else top

let narrow a b =
  match a, b with
  | Bot, _ -> Bot
  | _, Bot -> a
  | Kb a, Kb b ->
    (* Refine only bits [a] does not know; keep its own knowledge. *)
    Kb { ones = a.ones lor (a.unk land b.ones); unk = a.unk land b.unk }

let rec msb_index x = if x <= 1 then 0 else 1 + msb_index (x lsr 1)

let of_range ~lo ~hi =
  if lo > hi then Bot
  else if hi - lo >= 0x1_0000_0000 then top
  else
    let pl = lo land m32 and ph = hi land m32 in
    if pl > ph then top  (* sign crossing: no common pattern prefix *)
    else if pl = ph then const pl
    else
      let unk = (1 lsl (msb_index (pl lxor ph) + 1)) - 1 in
      Kb { ones = pl land lnot unk land m32; unk }

let of_low_bits k r =
  if k <= 0 then top
  else
    let m = Bits.mask (min k 32) in
    Kb { ones = r land m; unk = m32 land lnot m }

let mem v t =
  match t with
  | Bot -> false
  | Kb { ones; unk } -> (v land m32) land lnot unk land m32 = ones

(* ------------------------------------------------------------------ *)
(* Transfer functions.  All operate on 32-bit patterns, so they stay
   sound under the executor's mod-2^32 wrap. *)

let band a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a, Kb b ->
    let ones = a.ones land b.ones in
    let z = zeros a.ones a.unk lor zeros b.ones b.unk in
    Kb { ones; unk = m32 land lnot z land lnot ones }

let bor a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a, Kb b ->
    let ones = a.ones lor b.ones in
    let z = zeros a.ones a.unk land zeros b.ones b.unk in
    Kb { ones; unk = m32 land lnot z land lnot ones }

let bxor a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a, Kb b ->
    let known = m32 land lnot a.unk land lnot b.unk in
    Kb { ones = (a.ones lxor b.ones) land known; unk = m32 land lnot known }

let bnot = function
  | Bot -> Bot
  | Kb { ones; unk } -> Kb { ones = zeros ones unk; unk }

(* Number of trailing bits known to be zero. *)
let trailing_known_zeros = function
  | Bot -> 32
  | Kb { ones; unk } ->
    let may = ones lor unk in
    let rec go i = if i >= 32 || (may lsr i) land 1 = 1 then i else go (i + 1) in
    go 0

let min_pat = function Bot -> 0 | Kb { ones; _ } -> ones
let max_pat = function Bot -> 0 | Kb { ones; unk } -> ones lor unk

(* Ripple-carry addition of two abstract patterns plus a constant
   carry-in; each sum bit is known when both operand bits and the
   incoming carry are, and the carry can re-synchronize when two of
   the three addends of a column are known equal. *)
let addlike ~carry0 a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a, Kb b ->
    let ones = ref 0 and unk = ref 0 in
    let carry = ref (Some carry0) in
    for i = 0 to 31 do
      let xa = if (a.unk lsr i) land 1 = 0 then Some ((a.ones lsr i) land 1) else None in
      let xb = if (b.unk lsr i) land 1 = 0 then Some ((b.ones lsr i) land 1) else None in
      (match xa, xb, !carry with
       | Some x, Some y, Some c ->
         let s = x + y + c in
         if s land 1 = 1 then ones := !ones lor (1 lsl i);
         carry := Some (s lsr 1)
       | _ ->
         unk := !unk lor (1 lsl i);
         (* majority(x, y, c): determined when two inputs are known equal *)
         carry :=
           (match xa, xb, !carry with
            | Some x, Some y, _ when x = y -> Some x
            | Some x, _, Some c when x = c -> Some x
            | _, Some y, Some c when y = c -> Some y
            | _ -> None))
    done;
    Kb { ones = !ones; unk = !unk }

let add a b =
  let r = addlike ~carry0:0 a b in
  (* No-wrap refinement: when the maximal patterns cannot overflow
     32 bits, the sum's pattern range gives a common prefix. *)
  match a, b with
  | Kb _, Kb _ when max_pat a + max_pat b <= m32 ->
    meet r (of_range ~lo:(min_pat a + min_pat b) ~hi:(max_pat a + max_pat b))
  | _ -> r

let sub a b = addlike ~carry0:1 a (bnot b)

let mul a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a', Kb b' when a'.unk = 0 && b'.unk = 0 -> const (a'.ones * b'.ones)
  | _ ->
    let tz = min 32 (trailing_known_zeros a + trailing_known_zeros b) in
    let base =
      if tz >= 32 then const 0
      else Kb { ones = 0; unk = m32 land lnot (Bits.mask tz) }
    in
    let maxa = max_pat a and maxb = max_pat b in
    if maxb = 0 || maxa <= m32 / maxb then
      meet base (of_range ~lo:(min_pat a * min_pat b) ~hi:(maxa * maxb))
    else base

let shl a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a', Kb b' ->
    if b'.unk land 31 = 0 then
      let c = b'.ones land 31 in
      Kb { ones = (a'.ones lsl c) land m32; unk = (a'.unk lsl c) land m32 }
    else
      (* Unknown amount: left shifts preserve trailing zeros. *)
      let tz = trailing_known_zeros a in
      if tz >= 32 then const 0
      else Kb { ones = 0; unk = m32 land lnot (Bits.mask tz) }

let lshr a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a', Kb b' ->
    if b'.unk land 31 = 0 then
      let c = b'.ones land 31 in
      Kb { ones = a'.ones lsr c; unk = a'.unk lsr c }
    else
      (* Unknown amount: right shifts preserve leading zeros. *)
      let maxp = max_pat a in
      if maxp = 0 then const 0
      else Kb { ones = 0; unk = (1 lsl (msb_index maxp + 1)) - 1 }

let ashr a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Kb a', Kb b' ->
    let sign_zero = (a'.ones lor a'.unk) land b31 = 0 in
    let sign_one = a'.ones land b31 <> 0 in
    if b'.unk land 31 = 0 then
      let c = b'.ones land 31 in
      if c = 0 then Kb a'
      else
        let high = m32 land lnot (m32 lsr c) in
        if sign_zero then Kb { ones = a'.ones lsr c; unk = a'.unk lsr c }
        else if sign_one then
          Kb { ones = (a'.ones lsr c) lor high; unk = a'.unk lsr c }
        else Kb { ones = a'.ones lsr c; unk = (a'.unk lsr c) lor high }
    else if sign_zero then lshr a top
    else top

let binop ty op a b =
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div | Rem -> (match a, b with Bot, _ | _, Bot -> Bot | _ -> top)
  | Min | Max ->
    (* min/max returns one of its operands. *)
    (match a, b with Bot, _ | _, Bot -> Bot | _ -> join a b)
  | And -> band a b
  | Or -> bor a b
  | Xor -> bxor a b
  | Shl -> shl a b
  | Shr -> if ty = U32 then lshr a b else ashr a b

let unop _ty op a =
  match op with
  | Ineg -> sub (const 0) a
  | Inot -> bnot a
  | Iabs -> (match a with Bot -> Bot | _ -> top)

let mad a b c = add (mul a b) c

(* ------------------------------------------------------------------ *)

let width ty t =
  match t with
  | Bot -> 1
  | Kb { ones; unk } ->
    let bits =
      match ty with
      | U32 -> Bits.bits_for_unsigned (ones lor unk)
      | _ ->
        (* Extremal sign-extended patterns: for the minimum set the
           sign bit whenever possible and clear unknown low bits; for
           the maximum the converse. *)
        let smin_pat = (ones land lnot b31) lor ((ones lor unk) land b31) in
        let smax_pat = ((ones lor unk) land lnot b31) lor (ones land b31) in
        let smin = Bits.sign_extend ~width:32 smin_pat in
        let smax = Bits.sign_extend ~width:32 smax_pat in
        Bits.bits_for_signed_range (min smin smax) (max smin smax)
    in
    max 1 (min 32 bits)

let to_string = function
  | Bot -> "bot"
  | Kb { ones; unk } ->
    String.init 32 (fun i ->
        let bit = 31 - i in
        if (unk lsr bit) land 1 = 1 then '?'
        else if (ones lsr bit) land 1 = 1 then '1'
        else '0')

(* ------------------------------------------------------------------ *)

let is_int_ty = function S32 | U32 -> true | F32 | Pred -> false

module Domain = struct
  type nonrec t = t

  let name = "knownbits"
  let bot = Bot
  let equal = equal
  let join = join
  let widen = widen
  let narrow = narrow
  let top_of (_ : dtype) = top
  let of_range (_ : dtype) ~lo ~hi = of_range ~lo ~hi
  let extra_deps (_ : instr) = []

  let operand lookup = function
    | Reg (r : vreg) -> if is_int_ty r.ty then lookup r.id else top
    | Imm_i c -> const c
    | Imm_f _ -> top

  (* π-filter [lo, hi] as a pattern prefix; missing or symbolic bounds
     default to the type's extremes. *)
  let filter_value ty f =
    let lo =
      match f.pf_lo with
      | Pb_const c -> c
      | Pb_none | Pb_var _ -> if ty = U32 then 0 else -0x8000_0000
    in
    let hi =
      match f.pf_hi with
      | Pb_const c -> c
      | Pb_none | Pb_var _ -> if ty = U32 then m32 else 0x7fff_ffff
    in
    of_range ty ~lo ~hi

  let transfer lookup ins =
    let op = operand lookup in
    match ins with
    | Ibin (o, d, a, b) -> binop d.ty o (op a) (op b)
    | Iun (o, d, a) -> unop d.ty o (op a)
    | Imad (_, a, b, c) -> mad (op a) (op b) (op c)
    | Selp (_, a, b, _) -> join (op a) (op b)
    | Mov (_, a) -> op a
    | Cvt (o, _, a) ->
      (match o with
       | S32_of_u32 | U32_of_s32 -> op a  (* pattern preserved *)
       | S32_of_f32 | U32_of_f32 | F32_of_s32 | F32_of_u32 -> top)
    | Ld (d, { abuf; _ }) ->
      (match abuf.buf_range with
       | Some (lo, hi) when is_int_ty d.ty -> of_range d.ty ~lo ~hi
       | _ -> top)
    | Ld_param _ -> top  (* solver resolves param ranges *)
    | Phi (_, ops) ->
      List.fold_left (fun acc (_, o) -> join acc (op o)) Bot ops
    | Pi (d, s, f) -> meet (lookup s.id) (filter_value d.ty f)
    | Setp _ | Fbin _ | Fun _ | Ffma _ | St _ | Bar -> top
end
