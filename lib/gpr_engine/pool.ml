type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable cell : 'a state;
}

type shared = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
}

type t = {
  n_jobs : int;
  shared : shared option;  (* None: serial, run tasks inline *)
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "GPR_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n > 0 -> n
     | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.n_jobs

let rec worker sh =
  Mutex.lock sh.mutex;
  while Queue.is_empty sh.queue && not sh.stop do
    Condition.wait sh.nonempty sh.mutex
  done;
  if Queue.is_empty sh.queue then Mutex.unlock sh.mutex (* stop, drained *)
  else begin
    let job = Queue.pop sh.queue in
    Mutex.unlock sh.mutex;
    job ();
    worker sh
  end

let create ~jobs =
  let jobs = max 1 jobs in
  if jobs = 1 then { n_jobs = 1; shared = None; domains = [] }
  else begin
    let sh =
      { mutex = Mutex.create (); nonempty = Condition.create ();
        queue = Queue.create (); stop = false }
    in
    let domains =
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker sh))
    in
    { n_jobs = jobs; shared = Some sh; domains }
  end

let fresh_future () =
  { fm = Mutex.create (); fc = Condition.create (); cell = Pending }

let m_tasks = Gpr_obs.Metrics.counter "pool.tasks"

let run_into fut f =
  (* When a Chrome sink is installed, each task becomes a complete
     span on the executing domain's lane (wall-clock µs). *)
  let sink = Gpr_obs.Chrome.sink () in
  let start = match sink with Some ch -> Gpr_obs.Chrome.now_us ch | None -> 0. in
  Gpr_obs.Metrics.incr m_tasks;
  let r =
    match f () with
    | v -> Done v
    | exception e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  (match sink with
   | Some ch ->
     Gpr_obs.Chrome.complete ch ~name:"pool task" ~cat:"engine" ~pid:2
       ~tid:(Domain.self () :> int)
       ~ts_us:start
       ~dur_us:(Gpr_obs.Chrome.now_us ch -. start)
       ()
   | None -> ());
  Mutex.lock fut.fm;
  fut.cell <- r;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let submit t f =
  let fut = fresh_future () in
  (match t.shared with
   | None -> run_into fut f
   | Some sh ->
     Mutex.lock sh.mutex;
     if sh.stop then begin
       Mutex.unlock sh.mutex;
       invalid_arg "Pool.submit: pool is shut down"
     end;
     Queue.push (fun () -> run_into fut f) sh.queue;
     Condition.signal sh.nonempty;
     Mutex.unlock sh.mutex);
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.cell with
    | Pending -> Condition.wait fut.fc fut.fm; wait ()
    | Done v -> Mutex.unlock fut.fm; v
    | Failed (e, bt) ->
      Mutex.unlock fut.fm;
      Printexc.raise_with_backtrace e bt
  in
  wait ()

let map_list t f xs =
  List.map await (List.map (fun x -> submit t (fun () -> f x)) xs)

let iter_list t f xs = ignore (map_list t f xs)

let shutdown t =
  match t.shared with
  | None -> ()
  | Some sh ->
    Mutex.lock sh.mutex;
    sh.stop <- true;
    Condition.broadcast sh.nonempty;
    Mutex.unlock sh.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  match f t with
  | v -> shutdown t; v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    shutdown t;
    Printexc.raise_with_backtrace e bt
