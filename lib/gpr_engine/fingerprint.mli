(** Canonical content fingerprints for memoisation and the on-disk
    result store.

    The pre-existing memo tables in {!Gpr_core} were keyed by workload
    {e name}, which is unsound for dynamically built kernels: two
    distinct kernels sharing a name would return each other's results.
    A fingerprint is an MD5 digest over the {e content} that actually
    determines a result:

    - the kernel in its canonical {!Gpr_isa.Pp} textual form;
    - the launch geometry, parameter values and shared-buffer layout;
    - the initial contents of every input/output buffer;
    - the architecture configuration (for simulation results);
    - the quality threshold (for tuner results);
    - {!version}, a library stamp bumped whenever the pipeline's
      semantics change, which also invalidates on-disk entries written
      by older code. *)

type t = private string
(** Hex MD5 digest (32 characters), safe for use in file names. *)

val to_hex : t -> string
val equal : t -> t -> bool

val version : string
(** Library version stamp mixed into every fingerprint.  Bump on any
    change that affects analysis, tuning, allocation, input generation
    or simulation results. *)

val of_strings : string list -> t
(** Digest of the length-prefixed concatenation (unambiguous: no two
    distinct string lists collide by concatenation). *)

val kernel : Gpr_isa.Types.kernel -> t
(** Canonical textual form of the kernel. *)

val launch : Gpr_isa.Types.launch -> t

val config : Gpr_arch.Config.t -> t
(** Architecture configuration (all fields). *)

val threshold : Gpr_quality.Quality.threshold -> t

val scheme : id:string -> version:int -> t
(** A register-file backend's identity (its stable id and version).
    Mixed into every simulation memo key so two schemes — or two
    versions of one scheme — can never share a cache entry. *)

val workload : Gpr_workloads.Workload.t -> t
(** Everything that determines the static framework's result for a
    workload: kernel text, launch, parameter values, shared layout,
    output spec, quality metric and a digest of the freshly generated
    input data.  The workload {e name} is included only as a debugging
    aid; two same-named workloads with different bodies get different
    fingerprints (the staleness bug this module exists to fix). *)

val combine : t list -> t
