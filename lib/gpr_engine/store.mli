(** Optional on-disk result cache, content-addressed by {!Fingerprint}.

    One file per entry, named [<kind>-<fingerprint>.bin] inside the
    store directory.  Each file carries a three-line header (magic, then
    [Fingerprint.version] / [Sys.ocaml_version], then the payload
    digest) followed by a [Marshal]
    blob.  Robustness rules:

    - writes go to a unique temporary file in the same directory and
      are published with [Sys.rename], so readers never observe a
      partial entry and concurrent writers of the same key are safe
      (last rename wins; both wrote identical content);
    - any read failure — missing file, truncated blob, corrupt bytes,
      header or version mismatch — silently degrades to a miss and the
      value is recomputed;
    - values must be closure-free (Marshal is used without
      [Closures]); attempting to store a closure raises, so gpr_core
      persists workload-independent records only.

    Hit/miss counters are mutex-guarded so worker domains can share one
    store. *)

type t

val create : ?max_entries:int -> ?max_bytes:int -> dir:string -> unit -> t
(** Creates [dir] (and missing parents) on first use.

    When either cap is given the store is bounded: a hit bumps the
    entry's file mtime (LRU recency), and after every {!add} entries are
    evicted oldest-mtime-first until at most [max_entries] files totalling
    at most [max_bytes] remain.  The newest entry is never evicted, so a
    value larger than [max_bytes] still caches.  Unbounded stores (the
    default) keep the previous syscall-free read path.
    @raise Invalid_argument if a cap is < 1. *)

val dir : t -> string

val find : t -> kind:string -> key:Fingerprint.t -> 'a option
(** [None] on any miss or unreadable entry.  The type ['a] is trusted:
    callers must pair each [kind] with exactly one stored type. *)

val add : t -> kind:string -> key:Fingerprint.t -> 'a -> unit
(** Atomic publish; I/O errors (full disk, unwritable dir) are
    swallowed — the store is an accelerator, never a correctness
    dependency. *)

val memoize : t option -> kind:string -> key:Fingerprint.t -> (unit -> 'a) -> 'a
(** [memoize store ~kind ~key f]: disk lookup, else [f ()] then
    {!add}.  [None] just runs [f]. *)

val hits : t -> int
val misses : t -> int
(** Counters over {!find}/{!memoize} calls ({!add}-only paths do not
    count).  A warm rerun of the same pipeline reports all hits. *)

val evictions : t -> int
(** Entries removed by cap enforcement in this process (always 0 for
    unbounded stores). *)
