type t = {
  dir : string;
  m : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable tmp_counter : int;
}

let magic = "gpr-store"
let version_line = Fingerprint.version ^ ";ocaml-" ^ Sys.ocaml_version

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Unix.mkdir dir 0o755 with
     | Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let create ~dir =
  mkdir_p dir;
  { dir; m = Mutex.create (); hits = 0; misses = 0; tmp_counter = 0 }

let dir t = t.dir

let hits t = Mutex.lock t.m; let h = t.hits in Mutex.unlock t.m; h
let misses t = Mutex.lock t.m; let m = t.misses in Mutex.unlock t.m; m

let path t ~kind ~key =
  Filename.concat t.dir (kind ^ "-" ^ Fingerprint.to_hex key ^ ".bin")

let m_hits = Gpr_obs.Metrics.counter "store.hits"
let m_misses = Gpr_obs.Metrics.counter "store.misses"

let count_hit t =
  Gpr_obs.Metrics.incr m_hits;
  Mutex.lock t.m; t.hits <- t.hits + 1; Mutex.unlock t.m

let count_miss t =
  Gpr_obs.Metrics.incr m_misses;
  Mutex.lock t.m; t.misses <- t.misses + 1; Mutex.unlock t.m

let read_entry file =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
    let r =
      (* Any malformed entry — wrong magic, stale version, truncated
         file or corrupt payload — degrades to a miss.  Marshal alone
         cannot detect flipped bytes in flat data (e.g. float arrays),
         so the payload is guarded by its own digest. *)
      match
        let m = input_line ic in
        let v = input_line ic in
        let dg = input_line ic in
        if m <> magic || v <> version_line then None
        else begin
          let len = in_channel_length ic - pos_in ic in
          let payload = really_input_string ic len in
          if Digest.to_hex (Digest.string payload) <> dg then None
          else Some (Marshal.from_string payload 0)
        end
      with
      | r -> r
      | exception (End_of_file | Failure _ | Sys_error _
                  | Invalid_argument _) -> None
    in
    close_in_noerr ic;
    r

let find t ~kind ~key =
  match read_entry (path t ~kind ~key) with
  | Some v -> count_hit t; Some v
  | None -> count_miss t; None

let fresh_tmp t =
  Mutex.lock t.m;
  t.tmp_counter <- t.tmp_counter + 1;
  let n = t.tmp_counter in
  Mutex.unlock t.m;
  Filename.concat t.dir
    (Printf.sprintf ".tmp-%d-%d.bin" (Unix.getpid ()) n)

let add t ~kind ~key v =
  let tmp = fresh_tmp t in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
    (match
       let payload = Marshal.to_string v [] in
       output_string oc magic; output_char oc '\n';
       output_string oc version_line; output_char oc '\n';
       output_string oc (Digest.to_hex (Digest.string payload));
       output_char oc '\n';
       output_string oc payload;
       close_out oc;
       Sys.rename tmp (path t ~kind ~key)
     with
     | () -> ()
     | exception Sys_error _ ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ()))

let memoize store ~kind ~key f =
  match store with
  | None -> f ()
  | Some t ->
    (match find t ~kind ~key with
     | Some v -> v
     | None ->
       let v = f () in
       add t ~kind ~key v;
       v)
