type t = {
  dir : string;
  max_entries : int option;
  max_bytes : int option;
  m : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable tmp_counter : int;
}

let magic = "gpr-store"
let version_line = Fingerprint.version ^ ";ocaml-" ^ Sys.ocaml_version

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Unix.mkdir dir 0o755 with
     | Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let create ?max_entries ?max_bytes ~dir () =
  (match max_entries with
   | Some n when n < 1 -> invalid_arg "Store.create: max_entries < 1"
   | _ -> ());
  (match max_bytes with
   | Some n when n < 1 -> invalid_arg "Store.create: max_bytes < 1"
   | _ -> ());
  mkdir_p dir;
  { dir; max_entries; max_bytes; m = Mutex.create ();
    hits = 0; misses = 0; evictions = 0; tmp_counter = 0 }

let dir t = t.dir

let hits t = Mutex.lock t.m; let h = t.hits in Mutex.unlock t.m; h
let misses t = Mutex.lock t.m; let m = t.misses in Mutex.unlock t.m; m
let evictions t = Mutex.lock t.m; let e = t.evictions in Mutex.unlock t.m; e

let path t ~kind ~key =
  Filename.concat t.dir (kind ^ "-" ^ Fingerprint.to_hex key ^ ".bin")

let m_hits = Gpr_obs.Metrics.counter "store.hits"
let m_misses = Gpr_obs.Metrics.counter "store.misses"
let m_evictions = Gpr_obs.Metrics.counter "store.evictions"

let count_hit t =
  Gpr_obs.Metrics.incr m_hits;
  Mutex.lock t.m; t.hits <- t.hits + 1; Mutex.unlock t.m

let count_miss t =
  Gpr_obs.Metrics.incr m_misses;
  Mutex.lock t.m; t.misses <- t.misses + 1; Mutex.unlock t.m

let bounded t = t.max_entries <> None || t.max_bytes <> None

(* LRU recency is tracked through entry mtimes: a hit bumps the file's
   mtime to now, so the oldest mtime is the least recently used entry.
   Only done for bounded stores — unbounded ones keep the read path
   syscall-free. *)
let touch file =
  try Unix.utimes file 0.0 0.0 with Unix.Unix_error _ -> ()

let is_entry name =
  Filename.check_suffix name ".bin"
  && not (String.length name >= 4 && String.sub name 0 4 = ".tmp")

(* Evict oldest-first until both caps hold.  The newest entry is never
   evicted, so a single value larger than [max_bytes] still caches (the
   store accelerates repeats; dropping what was just written would turn
   the cap into a correctness cliff).  Runs under the store mutex so
   concurrent adders in this process don't double-evict; concurrent
   processes may both scan, but unlink of a missing file is ignored. *)
let enforce_caps t =
  if bounded t then begin
    let entries =
      match Sys.readdir t.dir with
      | exception Sys_error _ -> [||]
      | names ->
        Array.to_list names
        |> List.filter_map (fun name ->
            if not (is_entry name) then None
            else
              let file = Filename.concat t.dir name in
              match Unix.stat file with
              | exception Unix.Unix_error _ -> None
              | st when st.Unix.st_kind = Unix.S_REG ->
                Some (file, st.Unix.st_mtime, st.Unix.st_size)
              | _ -> None)
        |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
        |> Array.of_list
    in
    let n = Array.length entries in
    let total = Array.fold_left (fun a (_, _, sz) -> a + sz) 0 entries in
    let over i left bytes =
      i < n - 1  (* keep the newest entry *)
      && ((match t.max_entries with Some c -> left > c | None -> false)
          || (match t.max_bytes with Some c -> bytes > c | None -> false))
    in
    Mutex.lock t.m;
    let i = ref 0 and left = ref n and bytes = ref total in
    while over !i !left !bytes do
      let file, _, sz = entries.(!i) in
      (match Unix.unlink file with
       | () -> t.evictions <- t.evictions + 1;
         Gpr_obs.Metrics.incr m_evictions
       | exception Unix.Unix_error _ -> ());
      left := !left - 1;
      bytes := !bytes - sz;
      incr i
    done;
    Mutex.unlock t.m
  end

let read_entry file =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
    let r =
      (* Any malformed entry — wrong magic, stale version, truncated
         file or corrupt payload — degrades to a miss.  Marshal alone
         cannot detect flipped bytes in flat data (e.g. float arrays),
         so the payload is guarded by its own digest. *)
      match
        let m = input_line ic in
        let v = input_line ic in
        let dg = input_line ic in
        if m <> magic || v <> version_line then None
        else begin
          let len = in_channel_length ic - pos_in ic in
          let payload = really_input_string ic len in
          if Digest.to_hex (Digest.string payload) <> dg then None
          else Some (Marshal.from_string payload 0)
        end
      with
      | r -> r
      | exception (End_of_file | Failure _ | Sys_error _
                  | Invalid_argument _) -> None
    in
    close_in_noerr ic;
    r

let find t ~kind ~key =
  let file = path t ~kind ~key in
  match read_entry file with
  | Some v ->
    if bounded t then touch file;
    count_hit t; Some v
  | None -> count_miss t; None

let fresh_tmp t =
  Mutex.lock t.m;
  t.tmp_counter <- t.tmp_counter + 1;
  let n = t.tmp_counter in
  Mutex.unlock t.m;
  Filename.concat t.dir
    (Printf.sprintf ".tmp-%d-%d.bin" (Unix.getpid ()) n)

let add t ~kind ~key v =
  let tmp = fresh_tmp t in
  (match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
    (match
       let payload = Marshal.to_string v [] in
       output_string oc magic; output_char oc '\n';
       output_string oc version_line; output_char oc '\n';
       output_string oc (Digest.to_hex (Digest.string payload));
       output_char oc '\n';
       output_string oc payload;
       close_out oc;
       Sys.rename tmp (path t ~kind ~key)
     with
     | () -> ()
     | exception Sys_error _ ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ())));
  enforce_caps t

let memoize store ~kind ~key f =
  match store with
  | None -> f ()
  | Some t ->
    (match find t ~kind ~key with
     | Some v -> v
     | None ->
       let v = f () in
       add t ~kind ~key v;
       v)
