type t = string

let to_hex t = t
let equal = String.equal

(* Bump whenever analysis, tuning, allocation, input generation or
   simulation semantics change: every fingerprint (and therefore every
   on-disk store entry) is invalidated at once.
   2: simulation memo keys carry the backend scheme id+version; entries
   written before schemes existed are ambiguous and must not be
   reused.
   3: [Sim.stats] grew the per-slot stall-attribution fields; cached
   Marshal payloads with the old record layout must not be read back
   (they would deserialise into the wrong shape).
   4: integer widths now come from the [Gpr_analysis.Width] reduced
   product (known-bits × congruence × demanded-bits on top of the
   intervals) and [Compress]'s stored record carries the full width
   analysis; both the widths and the record layout changed.
   5: concurrent-kernel simulation — memo keys may now name a kernel
   set plus a dispatch policy ("coloc" entries marshal the
   [Sim_multi.result] layout), and the admission demand is computed
   through [Backend.demand]; pre-coloc entries must not alias.
   6: energy reports join the memoised payloads ("energy" entries
   marshal the [Gpr_area.Energy.report] layout) and [Fair.jain] now
   returns the 0.0 sentinel for an all-zero allocation, changing the
   fairness field of stored coloc results; pre-energy entries must not
   be read back. *)
let version = "gpr-engine/6"

let of_strings parts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf version;
  List.iter
    (fun s ->
       Buffer.add_string buf (string_of_int (String.length s));
       Buffer.add_char buf ':';
       Buffer.add_string buf s)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let combine ts = of_strings ("combine" :: ts)

let kernel k = of_strings [ "kernel"; Gpr_isa.Pp.kernel_to_string k ]

let launch (l : Gpr_isa.Types.launch) =
  of_strings
    [ "launch";
      Printf.sprintf "%d,%d,%d,%d" l.ntid_x l.ntid_y l.nctaid_x l.nctaid_y ]

(* The configuration is a record of scalars and one enum; Marshal of
   immediate data is canonical within a compiler version, and the store
   header additionally pins [Sys.ocaml_version]. *)
let config (c : Gpr_arch.Config.t) =
  of_strings [ "config"; Digest.string (Marshal.to_string c []) ]

let threshold th =
  of_strings [ "threshold"; Gpr_quality.Quality.threshold_name th ]

let scheme ~id ~version =
  of_strings [ "scheme"; id; string_of_int version ]

let pvalue = function
  | Gpr_exec.Exec.P_int i -> Printf.sprintf "i%d" i
  | Gpr_exec.Exec.P_float f -> Printf.sprintf "f%Lx" (Int64.bits_of_float f)

let storage_digest (bindings : (string * Gpr_exec.Exec.storage) list) =
  Digest.string (Marshal.to_string bindings [])

let output_spec = function
  | Gpr_workloads.Workload.Out_floats n -> "floats:" ^ n
  | Gpr_workloads.Workload.Out_image (n, w, h) ->
    Printf.sprintf "image:%s:%dx%d" n w h
  | Gpr_workloads.Workload.Out_ints n -> "ints:" ^ n

let workload (w : Gpr_workloads.Workload.t) =
  of_strings
    ([ "workload"; w.name;
       Gpr_isa.Pp.kernel_to_string w.kernel;
       Printf.sprintf "%d,%d,%d,%d" w.launch.ntid_x w.launch.ntid_y
         w.launch.nctaid_x w.launch.nctaid_y ]
     @ Array.to_list (Array.map pvalue w.params)
     @ List.map (fun (n, sz) -> Printf.sprintf "shared:%s:%d" n sz) w.shared
     @ [ Printf.sprintf "extra-shared:%d" w.extra_shared_bytes;
         output_spec w.output;
         Gpr_quality.Quality.metric_name w.metric;
         storage_digest (w.data ()) ])
