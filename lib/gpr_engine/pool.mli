(** Fixed-size domain pool with typed futures.

    The evaluation pipeline is embarrassingly parallel — 11 kernels ×
    6 configurations, each an independent analyze→tune→allocate→simulate
    chain — so the pool is deliberately simple: a mutex/condition work
    queue served by [jobs - 1] worker domains (the submitting domain is
    counted as a worker slot but only ever blocks in {!await}).

    Determinism contract: {!map_list} submits in list order and awaits
    in list order, so its result is {e identical} to [List.map] — only
    wall-clock time differs.  Tasks must be pure or must confine shared
    mutation to their own synchronised structures (the gpr_core memo
    tables are mutex-guarded for exactly this reason).

    Restrictions: tasks must not {!submit} to, or {!await} futures of,
    the pool that runs them — worker domains never service the queue
    while blocked, so nested waits can deadlock.  Fan-out happens at
    one level, from the orchestrating domain. *)

type t

val default_jobs : unit -> int
(** Parallelism to use when the caller does not specify one: the
    [GPR_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains.  With
    [jobs <= 1] no domain is spawned and every task runs inline at
    {!submit} time — the serial reference behaviour. *)

val jobs : t -> int
(** The [jobs] value the pool was created with (at least 1). *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exception). *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  Exceptions raised by the task are captured with
    their backtrace and re-raised by {!await} in the awaiting domain. *)

val await : 'a future -> 'a

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Submit [f x] for every element, await in order.  Equal to
    [List.map f] for deterministic [f], whatever the parallelism. *)

val iter_list : t -> ('a -> unit) -> 'a list -> unit

val shutdown : t -> unit
(** Drain the queue, stop the workers and join their domains.
    Idempotent.  Futures already submitted are still completed. *)
