(* Per-bank static/dynamic register-file energy, a GREENER-style
   power-gating estimate (arXiv:1709.04697) and the energy-delay
   product.

   The model is deliberately relative, not absolute: the constants
   below are representative 40 nm-class per-access and per-KB-leakage
   figures, and every scheme is scored with the same constants, so only
   the *ratios* between schemes carry meaning (like the transistor
   counts in {!Area}).

   Dynamic energy scales with how much of a 1024-bit register row an
   access actually toggles: a conventional file always pays the full
   row, a slice-compressed file only the occupied 4-bit slice columns
   (plus its indirection-table and converter overheads, and a full
   extra row per double fetch).  Static energy scales with the
   non-gated fraction of the file's capacity over the run: GREENER
   gates registers the compile-time liveness proves dead, which the
   slice schemes can piggyback on their static placement tables. *)

type params = {
  p_row_read_pj : float;  (* full 1024-bit row read *)
  p_row_write_pj : float;
  p_table_pj : float;     (* one indirection-table lookup *)
  p_convert_pj : float;   (* one float pack/unpack conversion *)
  p_spill_pj : float;     (* one shared-memory spill round-trip *)
  p_leak_pj_per_kb_cycle : float; (* leakage per KB of un-gated capacity *)
}

let default_params =
  {
    p_row_read_pj = 20.0;
    p_row_write_pj = 22.0;
    p_table_pj = 0.8;
    p_convert_pj = 1.1;
    p_spill_pj = 55.0;
    p_leak_pj_per_kb_cycle = 0.08;
  }

type report = {
  e_scheme : string;
  e_reads : int;           (* warp-level operand fetches (incl. doubles) *)
  e_writes : int;          (* warp-level destination writebacks *)
  e_row_fraction : float;  (* mean fraction of a row an access toggles *)
  e_gated_fraction : float;(* share of RF capacity power-gated (GREENER) *)
  e_dynamic_nj : float;
  e_static_nj : float;
  e_total_nj : float;
  e_cycles : int;
  e_edp : float;           (* total energy (nJ) x cycles *)
}

let clamp01 f = Float.max 0.0 (Float.min 1.0 f)

let estimate ?(params = default_params) (cfg : Gpr_arch.Config.t) ~scheme
    ~reads ~writes ~table_reads ~conversions ~spill_accesses ~avg_slices
    ~gating ~resident_warps ~pressure ~cycles () =
  let row_fraction =
    clamp01 (avg_slices /. float_of_int Gpr_arch.Config.slices_per_register)
  in
  let dynamic_pj =
    (float_of_int reads *. row_fraction *. params.p_row_read_pj)
    +. (float_of_int writes *. row_fraction *. params.p_row_write_pj)
    +. (float_of_int table_reads *. params.p_table_pj)
    +. (float_of_int conversions *. params.p_convert_pj)
    +. (float_of_int spill_accesses *. params.p_spill_pj)
  in
  (* Allocated share of the SM's register capacity over the run. *)
  let used_fraction =
    clamp01
      (float_of_int (pressure * cfg.warp_size * resident_warps)
      /. float_of_int (max 1 cfg.registers_per_sm))
  in
  let gated_fraction =
    match gating with
    | None -> 0.0 (* no gating hardware: the whole file leaks *)
    | Some live_share ->
      (* GREENER: unallocated registers gate for the whole run;
         allocated ones gate outside their live intervals. *)
      clamp01 (1.0 -. (used_fraction *. clamp01 live_share))
  in
  let capacity_kb = float_of_int (cfg.registers_per_sm * 4) /. 1024.0 in
  let static_pj =
    capacity_kb
    *. (1.0 -. gated_fraction)
    *. params.p_leak_pj_per_kb_cycle
    *. float_of_int cycles
  in
  let dynamic_nj = dynamic_pj /. 1000.0 in
  let static_nj = static_pj /. 1000.0 in
  let total_nj = dynamic_nj +. static_nj in
  {
    e_scheme = scheme;
    e_reads = reads;
    e_writes = writes;
    e_row_fraction = row_fraction;
    e_gated_fraction = gated_fraction;
    e_dynamic_nj = dynamic_nj;
    e_static_nj = static_nj;
    e_total_nj = total_nj;
    e_cycles = cycles;
    e_edp = total_nj *. float_of_int cycles;
  }
