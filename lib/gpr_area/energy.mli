(** Per-bank static/dynamic register-file energy, with a GREENER-style
    (arXiv:1709.04697) liveness power-gating estimate and the
    energy-delay product.

    Like {!Area}, the model is relative: every scheme is scored with
    the same representative constants, so only ratios between schemes
    are meaningful.  The module depends on nothing above [gpr_arch]; it
    takes plain access counters, which {!Gpr_core.Simulate} derives
    from the trace and the timing statistics. *)

type params = {
  p_row_read_pj : float;  (** full 1024-bit row read *)
  p_row_write_pj : float;
  p_table_pj : float;  (** one indirection-table lookup *)
  p_convert_pj : float;  (** one float pack/unpack conversion *)
  p_spill_pj : float;  (** one shared-memory spill round trip *)
  p_leak_pj_per_kb_cycle : float;
      (** leakage per KB of un-gated capacity per cycle *)
}

val default_params : params

type report = {
  e_scheme : string;
  e_reads : int;  (** warp-level operand fetches, double fetches included *)
  e_writes : int;  (** warp-level destination writebacks *)
  e_row_fraction : float;
      (** mean fraction of a register row an access toggles (1.0 for the
          conventional file, occupied-slices/8 under compression) *)
  e_gated_fraction : float;
      (** share of the file's capacity power-gated over the run — 0 when
          the scheme carries no gating hardware *)
  e_dynamic_nj : float;
  e_static_nj : float;
  e_total_nj : float;
  e_cycles : int;
  e_edp : float;  (** total energy (nJ) × cycles *)
}

val estimate :
  ?params:params ->
  Gpr_arch.Config.t ->
  scheme:string ->
  reads:int ->
  writes:int ->
  table_reads:int ->
  conversions:int ->
  spill_accesses:int ->
  avg_slices:float ->
  gating:float option ->
  resident_warps:int ->
  pressure:int ->
  cycles:int ->
  unit ->
  report
(** [gating] is [None] for a scheme with no power gating (the whole
    file leaks for the whole run) and [Some live_share] for a
    GREENER-gated file, where [live_share] is the average fraction of
    an allocated register's lifetime it is actually live (from
    {!Gpr_analysis.Liveness}): unallocated capacity gates for the whole
    run, allocated capacity outside its live intervals.  [avg_slices]
    is the mean number of occupied 4-bit slices per accessed register;
    [resident_warps] and [pressure] size the allocated share of the
    file. *)
