type limiter = Registers | Shared_memory | Warp_slots | Block_slots

type result = {
  blocks_per_sm : int;
  warps_per_sm : int;
  occupancy : float;
  limiter : limiter;
  registers_used : int;
}

let limiter_to_string = function
  | Registers -> "registers"
  | Shared_memory -> "shared memory"
  | Warp_slots -> "warp slots"
  | Block_slots -> "block slots"

type demand = {
  d_regs_per_thread : int;
  d_shared_bytes_per_block : int;
}

let compute (cfg : Config.t) ~regs_per_thread ~warps_per_block
    ~shared_bytes_per_block =
  if warps_per_block <= 0 then invalid_arg "Occupancy.compute: no warps";
  let regs_per_block =
    Config.registers_per_block cfg ~regs_per_thread ~warps_per_block
  in
  let by_regs =
    if regs_per_block = 0 then max_int
    else cfg.registers_per_sm / regs_per_block
  in
  let by_shared =
    (* A kernel with no shared memory is never shared-memory limited. *)
    if shared_bytes_per_block = 0 then max_int
    else cfg.shared_mem_bytes / shared_bytes_per_block
  in
  let by_warps = cfg.max_warps / warps_per_block in
  let by_blocks = cfg.max_blocks in
  let candidates =
    [ (by_regs, Registers); (by_shared, Shared_memory);
      (by_warps, Warp_slots); (by_blocks, Block_slots) ]
  in
  let blocks, limiter =
    List.fold_left
      (fun (b, l) (b', l') -> if b' < b then (b', l') else (b, l))
      (max_int, Block_slots) candidates
  in
  if blocks <= 0 then
    invalid_arg
      (Printf.sprintf
         "Occupancy.compute: one block exceeds SM resources (%s)"
         (limiter_to_string limiter));
  let warps = blocks * warps_per_block in
  {
    blocks_per_sm = blocks;
    warps_per_sm = warps;
    occupancy = float_of_int warps /. float_of_int cfg.max_warps;
    limiter;
    registers_used = blocks * regs_per_block;
  }

let of_demand cfg d ~warps_per_block =
  compute cfg ~regs_per_thread:d.d_regs_per_thread ~warps_per_block
    ~shared_bytes_per_block:d.d_shared_bytes_per_block

(* ------------------------------------------------------------------ *)
(* Combined-demand admission for the concurrent-kernel dispatcher. *)

type usage = {
  u_registers : int;
  u_shared_bytes : int;
  u_warps : int;
  u_blocks : int;
}

let no_usage = { u_registers = 0; u_shared_bytes = 0; u_warps = 0; u_blocks = 0 }

let block_usage (cfg : Config.t) d ~warps_per_block =
  if warps_per_block <= 0 then invalid_arg "Occupancy.block_usage: no warps";
  {
    u_registers =
      Config.registers_per_block cfg ~regs_per_thread:d.d_regs_per_thread
        ~warps_per_block;
    u_shared_bytes = d.d_shared_bytes_per_block;
    u_warps = warps_per_block;
    u_blocks = 1;
  }

let add_usage a b =
  {
    u_registers = a.u_registers + b.u_registers;
    u_shared_bytes = a.u_shared_bytes + b.u_shared_bytes;
    u_warps = a.u_warps + b.u_warps;
    u_blocks = a.u_blocks + b.u_blocks;
  }

let fits (cfg : Config.t) resident candidate =
  resident.u_registers + candidate.u_registers <= cfg.registers_per_sm
  && resident.u_shared_bytes + candidate.u_shared_bytes
     <= cfg.shared_mem_bytes
  && resident.u_warps + candidate.u_warps <= cfg.max_warps
  && resident.u_blocks + candidate.u_blocks <= cfg.max_blocks
