(** Occupancy calculation (Sec. 2 / Sec. 6.1).

    A kernel's resident blocks per SM are bounded by four resources:
    registers, shared memory, the maximum warp count and the maximum
    block count.  Occupancy is the ratio of active warps to
    [max_warps]. *)

type limiter = Registers | Shared_memory | Warp_slots | Block_slots

type result = {
  blocks_per_sm : int;
  warps_per_sm : int;
  occupancy : float;          (** active warps / max warps *)
  limiter : limiter;          (** the binding constraint *)
  registers_used : int;       (** per SM *)
}

val limiter_to_string : limiter -> string

val compute :
  Config.t ->
  regs_per_thread:int ->
  warps_per_block:int ->
  shared_bytes_per_block:int ->
  result
(** @raise Invalid_argument if a single block exceeds an SM resource. *)

type demand = {
  d_regs_per_thread : int;
  d_shared_bytes_per_block : int;
      (** includes any shared memory the register-file scheme itself
          consumes (e.g. spill slots), on top of the kernel's own *)
}

val of_demand : Config.t -> demand -> warps_per_block:int -> result
(** Occupancy from a backend-supplied resource demand: both the
    register and the shared-memory limits come from the scheme, so a
    scheme that trades registers for shared memory is charged for both
    sides of the trade.  Same result (and exceptions) as {!compute}. *)
