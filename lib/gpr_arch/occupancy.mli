(** Occupancy calculation (Sec. 2 / Sec. 6.1).

    A kernel's resident blocks per SM are bounded by four resources:
    registers, shared memory, the maximum warp count and the maximum
    block count.  Occupancy is the ratio of active warps to
    [max_warps]. *)

type limiter = Registers | Shared_memory | Warp_slots | Block_slots

type result = {
  blocks_per_sm : int;
  warps_per_sm : int;
  occupancy : float;          (** active warps / max warps *)
  limiter : limiter;          (** the binding constraint *)
  registers_used : int;       (** per SM *)
}

val limiter_to_string : limiter -> string

val compute :
  Config.t ->
  regs_per_thread:int ->
  warps_per_block:int ->
  shared_bytes_per_block:int ->
  result
(** @raise Invalid_argument if a single block exceeds an SM resource. *)

type demand = {
  d_regs_per_thread : int;
  d_shared_bytes_per_block : int;
      (** includes any shared memory the register-file scheme itself
          consumes (e.g. spill slots), on top of the kernel's own *)
}

val of_demand : Config.t -> demand -> warps_per_block:int -> result
(** Occupancy from a backend-supplied resource demand: both the
    register and the shared-memory limits come from the scheme, so a
    scheme that trades registers for shared memory is charged for both
    sides of the trade.  Same result (and exceptions) as {!compute}. *)

(** {2 Combined-demand admission}

    The concurrent-kernel dispatcher ({!Gpr_sim.Sim_multi}) admits
    blocks from {e different} kernels onto one SM.  Admission is over
    the combined footprint: the sum of every resident block's
    register, shared-memory (including scheme spill bytes), warp-slot
    and block-slot usage must stay within the SM limits.  A single
    kernel admitted greedily through {!fits} reaches exactly
    {!compute}'s [blocks_per_sm] — the two views agree by
    construction. *)

type usage = {
  u_registers : int;     (** physical registers claimed *)
  u_shared_bytes : int;
  u_warps : int;
  u_blocks : int;
}

val no_usage : usage

val block_usage : Config.t -> demand -> warps_per_block:int -> usage
(** Footprint of one resident block of a kernel with the given demand
    (registers at warp granularity, as in {!Config.registers_per_block}).
    @raise Invalid_argument if [warps_per_block <= 0]. *)

val add_usage : usage -> usage -> usage
(** Component-wise sum. *)

val fits : Config.t -> usage -> usage -> bool
(** [fits cfg resident candidate]: can a block with footprint
    [candidate] join an SM already carrying [resident] without
    exceeding any of the four limits? *)
