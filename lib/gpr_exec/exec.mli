(** Functional SIMT executor.

    Executes a kernel warp-by-warp in lockstep with an IPDOM
    reconvergence stack (the mechanism of the paper's baseline GPU,
    Sec. 3.1), mutating bound global buffers.  It serves three roles:

    - producing reference outputs for the quality metrics;
    - re-running kernels under per-site float quantisation for the
      precision tuner ({!Gpr_precision});
    - emitting dynamic warp traces for the timing simulator
      ({!Gpr_sim}).

    Deterministic: blocks run in linear CTA order, warps round-robin at
    barrier granularity. *)

open Gpr_isa.Types

type storage =
  | I_data of int array    (** S32/U32 elements *)
  | F_data of float array  (** F32 elements *)

type binding =
  | Buf_data of storage  (** backing store for a global/texture buffer *)
  | Buf_shared of int    (** element count of a per-block shared buffer *)

type pvalue = P_int of int | P_float of float

type config = {
  quantize : (int -> float -> float) option;
      (** [quantize pc v]: applied to every F32 value defined by the
          static instruction [pc] — the hook the precision tuner uses to
          simulate reduced-precision register storage *)
  collect_trace : bool;
  on_write : (int -> vreg -> pvalue -> pvalue) option;
      (** [on_write pc dst v]: intercepts every register write (integer
          and float, after [quantize]) and may replace the stored value.
          {!Gpr_check} uses it both to validate written values against
          the static analysis (raising on a violation) and to round-trip
          values through the packed register-file datapath.  Not applied
          to the special-register seeding, which happens before any
          instruction executes.  Must preserve the value's kind. *)
  max_steps : int option;
      (** Abort ([Failure]) once this many dynamic thread instructions
          have executed — a watchdog for fuzzed kernels that the
          shrinker may have turned into infinite loops. *)
  on_monitor : (Trace.monitor_event -> unit) option;
      (** Receives the events of the dynamic barrier/race monitor when
          {!run} is called with [~check:true].  When unset, the first
          event aborts the run with [Failure]. *)
}

val default_config : config

val bindings_for :
  kernel ->
  data:(string * storage) list ->
  ?shared:(string * int) list ->
  unit ->
  binding array
(** Build the per-buffer binding array by buffer name.
    @raise Invalid_argument on missing/mistyped bindings. *)

val run :
  ?check:bool ->
  kernel ->
  launch:launch ->
  params:pvalue array ->
  bindings:binding array ->
  config ->
  Trace.t option
(** Executes the kernel, mutating the arrays inside [bindings].
    Returns a trace when [collect_trace] is set.

    [check] (default false) arms the dynamic barrier/race monitor: a
    warp reaching [Bar] with lanes missing, or two distinct threads
    touching the same shared element between barriers with at least one
    write, produces a {!Trace.monitor_event} (delivered to
    [config.on_monitor], or raised as [Failure] when no handler is
    set).  The monitor is the runtime counterpart of the [Gpr_lint]
    divergence and race passes.
    @raise Failure on out-of-bounds accesses or binding mismatches. *)

val static_pc : kernel -> block:int -> idx:int -> int
(** The unique static instruction id used by traces and the quantise
    hook. *)

val float_def_sites : kernel -> (int * vreg) list
(** All static instructions defining an F32 register, as
    [(pc, destination)] — the tuning points of the precision framework. *)

val count_static_instrs : kernel -> int
