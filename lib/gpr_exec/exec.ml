open Gpr_isa.Types

type storage = I_data of int array | F_data of float array
type binding = Buf_data of storage | Buf_shared of int
type pvalue = P_int of int | P_float of float

type config = {
  quantize : (int -> float -> float) option;
  collect_trace : bool;
  on_write : (int -> vreg -> pvalue -> pvalue) option;
  max_steps : int option;
  on_monitor : (Trace.monitor_event -> unit) option;
}

let default_config =
  { quantize = None; collect_trace = false; on_write = None; max_steps = None;
    on_monitor = None }

(* ------------------------------------------------------------------ *)
(* 32-bit semantics helpers *)

let wrap_s32 x =
  let y = x land 0xffff_ffff in
  if y >= 0x8000_0000 then y - 0x1_0000_0000 else y

let wrap_u32 x = x land 0xffff_ffff

let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let ftoi_trunc x =
  if Float.is_nan x then 0
  else if x >= 2147483647.0 then 2147483647
  else if x <= -2147483648.0 then -2147483648
  else int_of_float (Float.trunc x)

let ftou_trunc x =
  if Float.is_nan x then 0
  else if x >= 4294967295.0 then 4294967295
  else if x <= 0.0 then 0
  else int_of_float (Float.trunc x)

(* ------------------------------------------------------------------ *)
(* Static instruction numbering *)

(* Memoised per kernel (physical identity): [static_pc] is called from
   hot per-value hooks, and recomputing the O(instructions) walk on
   every call dominated profiles.  A short bounded association list is
   enough — callers work on a handful of kernels at a time.  The cache
   is domain-local so worker domains of the execution engine never
   contend (or race) on it; each domain warms its own copy. *)
let pc_cache_key : (kernel * (int array * int)) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let pc_cache_limit = 8

let pc_bases kernel =
  let pc_cache = Domain.DLS.get pc_cache_key in
  match List.assq_opt kernel !pc_cache with
  | Some r -> r
  | None ->
    let n = Array.length kernel.k_blocks in
    let bases = Array.make n 0 in
    let acc = ref 0 in
    for b = 0 to n - 1 do
      bases.(b) <- !acc;
      acc := !acc + Array.length kernel.k_blocks.(b).instrs
    done;
    let r = (bases, !acc) in
    let kept =
      if List.length !pc_cache >= pc_cache_limit then
        List.filteri (fun i _ -> i < pc_cache_limit - 1) !pc_cache
      else !pc_cache
    in
    pc_cache := (kernel, r) :: kept;
    r

let static_pc kernel ~block ~idx = fst (pc_bases kernel) |> fun b -> b.(block) + idx

let count_static_instrs kernel = snd (pc_bases kernel)

let float_def_sites kernel =
  let bases, _ = pc_bases kernel in
  let out = ref [] in
  Array.iter
    (fun blk ->
       Array.iteri
         (fun i ins ->
            match defs ins with
            | Some d when d.ty = F32 ->
              out := (bases.(blk.label) + i, d) :: !out
            | _ -> ())
         blk.instrs)
    kernel.k_blocks;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Bindings *)

let bindings_for kernel ~data ?(shared = []) () =
  Array.map
    (fun buf ->
       match buf.buf_space with
       | Global | Texture ->
         (match List.assoc_opt buf.buf_name data with
          | Some (I_data _ as s) when buf.buf_elem <> F32 -> Buf_data s
          | Some (F_data _ as s) when buf.buf_elem = F32 -> Buf_data s
          | Some _ ->
            invalid_arg
              (Printf.sprintf "bindings_for: type mismatch for buffer %s"
                 buf.buf_name)
          | None ->
            invalid_arg
              (Printf.sprintf "bindings_for: missing data for buffer %s"
                 buf.buf_name))
       | Shared ->
         (match List.assoc_opt buf.buf_name shared with
          | Some n -> Buf_shared n
          | None ->
            invalid_arg
              (Printf.sprintf "bindings_for: missing shared size for %s"
                 buf.buf_name))
       | Param -> invalid_arg "bindings_for: param buffers are not supported")
    kernel.k_buffers

(* ------------------------------------------------------------------ *)
(* Warp state *)

type frame = {
  rpc : int;  (* reconvergence block, -1 = none *)
  mutable blk : int;
  mutable idx : int;
  mutable mask : int;
}

type warp = {
  wid : int;
  valid : int;           (* lanes that started (last warp may be partial) *)
  regs_i : int array;    (* vreg r, lane l at r*32 + l *)
  regs_f : float array;
  mutable stack : frame list;
  mutable exited : int;
}

type status = Barrier | Finished

(* ------------------------------------------------------------------ *)

let m_runs = Gpr_obs.Metrics.counter "exec.runs"
let m_thread_instrs = Gpr_obs.Metrics.counter "exec.thread_instructions"

let run ?(check = false) kernel ~launch ~params ~bindings config =
  let nvr = kernel.k_num_vregs in
  (* Dynamic barrier/race monitor (the runtime counterpart of the static
     [Gpr_lint] passes).  Events go to [on_monitor] when set, otherwise
     they abort the run. *)
  let monitor_emit ev =
    match config.on_monitor with
    | Some h -> h ev
    | None ->
      failwith (kernel.k_name ^ ": " ^ Trace.monitor_event_to_string ev)
  in
  let pc_base, _ = pc_bases kernel in
  let cfg = Gpr_isa.Cfg.of_kernel kernel in
  let post = Gpr_analysis.Dominance.compute_post cfg in
  let ipdom = Array.init (Array.length kernel.k_blocks)
      (fun b -> match Gpr_analysis.Dominance.ipdom post b with
         | Some r -> r
         | None -> -1)
  in
  let nbuf = Array.length kernel.k_buffers in
  if Array.length bindings <> nbuf then
    failwith "Exec.run: binding count mismatch";
  (* Distinct byte-address bases per global/texture buffer, for the
     cache model.  Shared buffers get small per-space bases. *)
  let buf_base = Array.make nbuf 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i buf ->
       match buf.buf_space with
       | Global | Texture ->
         buf_base.(i) <- !acc;
         let len =
           match bindings.(i) with
           | Buf_data (I_data a) -> Array.length a
           | Buf_data (F_data a) -> Array.length a
           | Buf_shared _ -> failwith "Exec.run: shared binding for global"
         in
         acc := !acc + ((len * 4 + 127) / 128 * 128) + 128
       | Shared ->
         (match bindings.(i) with
          | Buf_shared _ -> ()
          | Buf_data _ -> failwith "Exec.run: global binding for shared")
       | Param -> ())
    kernel.k_buffers;
  let shared_base = Array.make nbuf 0 in
  let sacc = ref 0 in
  Array.iteri
    (fun i buf ->
       if buf.buf_space = Shared then begin
         shared_base.(i) <- !sacc;
         match bindings.(i) with
         | Buf_shared n -> sacc := !sacc + (n * 4)
         | Buf_data _ -> ()
       end)
    kernel.k_buffers;

  let tpb = threads_per_block launch in
  let warps_per_block = (tpb + 31) / 32 in
  let nblocks = num_blocks launch in

  let trace_buf = ref [] in
  let trace_count = ref 0 in
  let thread_instrs = ref 0 in
  (* Branch terminators are not traced and do not count towards the
     reported instruction totals, but they must still drain the step
     budget: a shrink-mutated kernel can contain a loop of empty blocks
     whose only work is the back-edge, and without this charge such a
     kernel would spin forever. *)
  let branch_steps = ref 0 in
  let quantize = config.quantize in
  let on_write = config.on_write in

  (* Per-block execution. *)
  let run_block block_id =
    let bx = block_id mod launch.nctaid_x in
    let by = block_id / launch.nctaid_x in
    (* Shared memory instances for this block. *)
    let shared =
      Array.mapi
        (fun i buf ->
           match bindings.(i) with
           | Buf_shared n ->
             if buf.buf_elem = F32 then Some (F_data (Array.make n 0.0))
             else Some (I_data (Array.make n 0))
           | Buf_data _ -> None)
        kernel.k_buffers
    in
    let storage_of i =
      match kernel.k_buffers.(i).buf_space with
      | Global | Texture ->
        (match bindings.(i) with
         | Buf_data s -> s
         | Buf_shared _ -> assert false)
      | Shared ->
        (match shared.(i) with Some s -> s | None -> assert false)
      | Param -> assert false
    in

    let make_warp wid =
      let valid = ref 0 in
      for lane = 0 to 31 do
        if (wid * 32) + lane < tpb then valid := !valid lor (1 lsl lane)
      done;
      let w =
        {
          wid;
          valid = !valid;
          regs_i = Array.make (nvr * 32) 0;
          regs_f = Array.make (nvr * 32) 0.0;
          stack = [ { rpc = -1; blk = 0; idx = 0; mask = !valid } ];
          exited = 0;
        }
      in
      (* Seed the special registers of every valid lane. *)
      for lane = 0 to 31 do
        let t = (wid * 32) + lane in
        if t < tpb then begin
          let tx = t mod launch.ntid_x and ty = t / launch.ntid_x in
          List.iter
            (fun (vid, s) ->
               let v =
                 match s with
                 | Tid_x -> tx
                 | Tid_y -> ty
                 | Ntid_x -> launch.ntid_x
                 | Ntid_y -> launch.ntid_y
                 | Ctaid_x -> bx
                 | Ctaid_y -> by
                 | Nctaid_x -> launch.nctaid_x
                 | Nctaid_y -> launch.nctaid_y
               in
               w.regs_i.((vid * 32) + lane) <- v)
            kernel.k_specials
        end
      done;
      w
    in
    let warps = Array.init warps_per_block make_warp in

    (* Shared-race monitor state: per shared element, the last writer and
       up to two distinct readers of the current barrier interval
       (-1 = none, -2 = multiple distinct writers, already reported). *)
    let race =
      if not check then [||]
      else
        Array.mapi
          (fun i _ ->
             match bindings.(i) with
             | Buf_shared n ->
               Some (Array.make n (-1), Array.make n (-1), Array.make n (-1))
             | Buf_data _ -> None)
          kernel.k_buffers
    in
    let race_reset () =
      Array.iter
        (function
          | Some (wr, r1, r2) ->
            Array.fill wr 0 (Array.length wr) (-1);
            Array.fill r1 0 (Array.length r1) (-1);
            Array.fill r2 0 (Array.length r2) (-1)
          | None -> ())
        race
    in
    let race_event buf_idx idx kind ~thread ~other pc =
      monitor_emit
        (Trace.Shared_race
           { block_id; buffer = kernel.k_buffers.(buf_idx).buf_name;
             index = idx; kind; thread; other; pc })
    in
    let monitor_read buf_idx idx t pc =
      if check then
        match race.(buf_idx) with
        | None -> ()
        | Some (wr, r1, r2) ->
          if wr.(idx) >= 0 && wr.(idx) <> t then
            race_event buf_idx idx Trace.Read_write ~thread:t ~other:wr.(idx) pc;
          if r1.(idx) = -1 then r1.(idx) <- t
          else if r1.(idx) <> t && r2.(idx) = -1 then r2.(idx) <- t
    in
    let monitor_write buf_idx idx t pc =
      if check then
        match race.(buf_idx) with
        | None -> ()
        | Some (wr, r1, r2) ->
          if wr.(idx) >= 0 && wr.(idx) <> t then begin
            race_event buf_idx idx Trace.Write_write ~thread:t ~other:wr.(idx) pc;
            wr.(idx) <- -2
          end
          else if wr.(idx) = -1 then wr.(idx) <- t;
          if r1.(idx) >= 0 && r1.(idx) <> t then
            race_event buf_idx idx Trace.Read_write ~thread:t ~other:r1.(idx) pc
          else if r2.(idx) >= 0 && r2.(idx) <> t then
            race_event buf_idx idx Trace.Read_write ~thread:t ~other:r2.(idx) pc
    in

    (* Per-lane operand evaluation. *)
    let geti w (r : vreg) lane = w.regs_i.((r.id * 32) + lane) in
    let getf w (r : vreg) lane = w.regs_f.((r.id * 32) + lane) in
    let eval_i w op lane =
      match op with
      | Reg r -> geti w r lane
      | Imm_i c -> c
      | Imm_f _ -> failwith "Exec: float immediate in integer context"
    in
    let eval_f w op lane =
      match op with
      | Reg r -> getf w r lane
      | Imm_f c -> f32 c
      | Imm_i c -> failwith (Printf.sprintf "Exec: int immediate %d in float context" c)
    in
    let seti w (r : vreg) lane v pc =
      let v =
        match on_write with
        | None -> v
        | Some h ->
          (match h pc r (P_int v) with
           | P_int v' -> v'
           | P_float _ -> failwith "Exec: on_write changed an int to a float")
      in
      w.regs_i.((r.id * 32) + lane) <- v
    in
    let setf w (r : vreg) lane v pc =
      let v =
        match quantize with None -> v | Some q -> q pc v
      in
      let v =
        match on_write with
        | None -> v
        | Some h ->
          (match h pc r (P_float v) with
           | P_float v' -> v'
           | P_int _ -> failwith "Exec: on_write changed a float to an int")
      in
      w.regs_f.((r.id * 32) + lane) <- v
    in

    let emit_trace w pc ins mask mem =
      if config.collect_trace then begin
        let srcs =
          uses ins
          |> List.filter_map (fun (r : vreg) ->
              if r.ty = Pred then None else Some r.id)
        in
        let dst, dst_float =
          match defs ins with
          | Some d when d.ty <> Pred -> (Some d.id, d.ty = F32)
          | _ -> (None, false)
        in
        let item =
          {
            Trace.t_warp = w.wid;
            t_block_id = block_id;
            t_pc = pc;
            t_unit = unit_class_of ins;
            t_srcs = srcs;
            t_dst = dst;
            t_dst_float = dst_float;
            t_active = Gpr_util.Bits.popcount mask;
            t_mem = mem;
          }
        in
        trace_buf := item :: !trace_buf;
        incr trace_count
      end;
      thread_instrs := !thread_instrs + Gpr_util.Bits.popcount mask;
      match config.max_steps with
      | Some budget when !thread_instrs + !branch_steps > budget ->
        failwith
          (Printf.sprintf "%s: step budget of %d thread instructions exceeded"
             kernel.k_name budget)
      | _ -> ()
    in

    let charge_branch mask =
      branch_steps := !branch_steps + Gpr_util.Bits.popcount mask;
      match config.max_steps with
      | Some budget when !thread_instrs + !branch_steps > budget ->
        failwith
          (Printf.sprintf "%s: step budget of %d thread instructions exceeded"
             kernel.k_name budget)
      | _ -> ()
    in

    let mem_read buf_idx w idx_op mask (d : vreg) pc ins =
      let s = storage_of buf_idx in
      let buf = kernel.k_buffers.(buf_idx) in
      let addrs = ref [] in
      for lane = 31 downto 0 do
        if mask land (1 lsl lane) <> 0 then begin
          let idx = eval_i w idx_op lane in
          let len =
            match s with I_data a -> Array.length a | F_data a -> Array.length a
          in
          if idx < 0 || idx >= len then
            failwith
              (Printf.sprintf "%s: ld %s[%d] out of bounds (len %d)"
                 kernel.k_name buf.buf_name idx len);
          monitor_read buf_idx idx ((w.wid * 32) + lane) pc;
          (match s, d.ty with
           | I_data a, (S32 | U32) -> seti w d lane a.(idx) pc
           | F_data a, F32 -> setf w d lane a.(idx) pc
           | I_data _, _ | F_data _, _ ->
             failwith (kernel.k_name ^ ": load type mismatch"));
          let base =
            if buf.buf_space = Shared then shared_base.(buf_idx)
            else buf_base.(buf_idx)
          in
          addrs := (base + (idx * 4)) :: !addrs
        end
      done;
      emit_trace w pc ins mask
        (Some { Trace.m_space = buf.buf_space;
                m_addresses = Array.of_list !addrs })
    in

    let mem_write buf_idx w idx_op value_op mask pc ins =
      let s = storage_of buf_idx in
      let buf = kernel.k_buffers.(buf_idx) in
      if buf.buf_space = Texture then
        failwith (kernel.k_name ^ ": store to read-only texture space");
      let addrs = ref [] in
      for lane = 31 downto 0 do
        if mask land (1 lsl lane) <> 0 then begin
          let idx = eval_i w idx_op lane in
          let len =
            match s with I_data a -> Array.length a | F_data a -> Array.length a
          in
          if idx < 0 || idx >= len then
            failwith
              (Printf.sprintf "%s: st %s[%d] out of bounds (len %d)"
                 kernel.k_name buf.buf_name idx len);
          monitor_write buf_idx idx ((w.wid * 32) + lane) pc;
          (match s with
           | I_data a -> a.(idx) <- eval_i w value_op lane
           | F_data a -> a.(idx) <- eval_f w value_op lane);
          let base =
            if buf.buf_space = Shared then shared_base.(buf_idx)
            else buf_base.(buf_idx)
          in
          addrs := (base + (idx * 4)) :: !addrs
        end
      done;
      emit_trace w pc ins mask
        (Some { Trace.m_space = buf.buf_space;
                m_addresses = Array.of_list !addrs })
    in

    let exec_instr w ins mask pc =
      match ins with
      | Ibin (op, d, a, b) ->
        let wrap = if d.ty = U32 then wrap_u32 else wrap_s32 in
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then begin
            let x = eval_i w a lane and y = eval_i w b lane in
            let v =
              match op with
              | Add -> x + y
              | Sub -> x - y
              | Mul -> x * y
              | Div -> if y = 0 then 0 else x / y
              | Rem -> if y = 0 then x else x mod y
              | Min -> min x y
              | Max -> max x y
              | And -> x land y
              | Or -> x lor y
              | Xor -> x lxor y
              | Shl -> x lsl (y land 31)
              | Shr ->
                if d.ty = U32 then wrap_u32 x lsr (y land 31)
                else x asr (y land 31)
            in
            seti w d lane (wrap v) pc
          end
        done;
        emit_trace w pc ins mask None
      | Iun (op, d, a) ->
        let wrap = if d.ty = U32 then wrap_u32 else wrap_s32 in
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then begin
            let x = eval_i w a lane in
            let v =
              match op with
              | Ineg -> -x
              | Inot -> lnot x
              | Iabs -> abs x
            in
            seti w d lane (wrap v) pc
          end
        done;
        emit_trace w pc ins mask None
      | Imad (d, a, b, c) ->
        let wrap = if d.ty = U32 then wrap_u32 else wrap_s32 in
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then
            seti w d lane
              (wrap ((eval_i w a lane * eval_i w b lane) + eval_i w c lane))
              pc
        done;
        emit_trace w pc ins mask None
      | Fbin (op, d, a, b) ->
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then begin
            let x = eval_f w a lane and y = eval_f w b lane in
            let v =
              match op with
              | Fadd -> x +. y
              | Fsub -> x -. y
              | Fmul -> x *. y
              | Fdiv -> x /. y
              | Fmin -> Float.min x y
              | Fmax -> Float.max x y
            in
            setf w d lane (f32 v) pc
          end
        done;
        emit_trace w pc ins mask None
      | Fun (op, d, a) ->
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then begin
            let x = eval_f w a lane in
            let v =
              match op with
              | Fneg -> -.x
              | Fabs -> Float.abs x
              | Ffloor -> Float.floor x
              | Fsqrt -> sqrt x
              | Frsqrt -> 1.0 /. sqrt x
              | Frcp -> 1.0 /. x
              | Fsin -> sin x
              | Fcos -> cos x
              | Fex2 -> Float.exp2 x
              | Flg2 -> Float.log2 x
            in
            setf w d lane (f32 v) pc
          end
        done;
        emit_trace w pc ins mask None
      | Ffma (d, a, b, c) ->
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then
            setf w d lane
              (f32 ((eval_f w a lane *. eval_f w b lane) +. eval_f w c lane))
              pc
        done;
        emit_trace w pc ins mask None
      | Setp (op, ty, p, a, b) ->
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then begin
            let c =
              if ty = F32 then
                compare (eval_f w a lane) (eval_f w b lane)
              else if ty = U32 then
                compare (wrap_u32 (eval_i w a lane)) (wrap_u32 (eval_i w b lane))
              else compare (eval_i w a lane) (eval_i w b lane)
            in
            let v =
              match op with
              | Eq -> c = 0
              | Ne -> c <> 0
              | Lt -> c < 0
              | Le -> c <= 0
              | Gt -> c > 0
              | Ge -> c >= 0
            in
            seti w p lane (if v then 1 else 0) pc
          end
        done;
        emit_trace w pc ins mask None
      | Selp (d, a, b, p) ->
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then begin
            let c = geti w p lane <> 0 in
            if d.ty = F32 then
              setf w d lane (if c then eval_f w a lane else eval_f w b lane) pc
            else
              seti w d lane (if c then eval_i w a lane else eval_i w b lane) pc
          end
        done;
        emit_trace w pc ins mask None
      | Mov (d, a) ->
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then
            if d.ty = F32 then setf w d lane (eval_f w a lane) pc
            else seti w d lane (eval_i w a lane) pc
        done;
        emit_trace w pc ins mask None
      | Cvt (op, d, a) ->
        for lane = 0 to 31 do
          if mask land (1 lsl lane) <> 0 then
            match op with
            | F32_of_s32 -> setf w d lane (f32 (float_of_int (eval_i w a lane))) pc
            | F32_of_u32 ->
              setf w d lane (f32 (float_of_int (wrap_u32 (eval_i w a lane)))) pc
            | S32_of_f32 -> seti w d lane (wrap_s32 (ftoi_trunc (eval_f w a lane))) pc
            | U32_of_f32 -> seti w d lane (ftou_trunc (eval_f w a lane)) pc
            | S32_of_u32 -> seti w d lane (wrap_s32 (eval_i w a lane)) pc
            | U32_of_s32 -> seti w d lane (wrap_u32 (eval_i w a lane)) pc
        done;
        emit_trace w pc ins mask None
      | Ld (d, { abuf; aindex }) -> mem_read abuf.buf_id w aindex mask d pc ins
      | St ({ abuf; aindex }, v) -> mem_write abuf.buf_id w aindex v mask pc ins
      | Ld_param (d, i) ->
        (match params.(i), d.ty with
         | P_int v, (S32 | U32) ->
           for lane = 0 to 31 do
             if mask land (1 lsl lane) <> 0 then seti w d lane v pc
           done
         | P_float v, F32 ->
           for lane = 0 to 31 do
             if mask land (1 lsl lane) <> 0 then setf w d lane (f32 v) pc
           done
         | _ -> failwith (kernel.k_name ^ ": param type mismatch"));
        emit_trace w pc ins mask None
      | Bar -> emit_trace w pc ins mask None
      | Phi _ | Pi _ ->
        failwith (kernel.k_name ^ ": SSA-only instruction in executable kernel")
    in

    (* Run one warp until barrier or completion. *)
    let step_warp w : status =
      let result = ref Finished in
      let running = ref true in
      while !running do
        match w.stack with
        | [] ->
          running := false;
          result := Finished
        | fr :: rest ->
          fr.mask <- fr.mask land lnot w.exited;
          if fr.mask = 0 then w.stack <- rest
          else if fr.idx = 0 && fr.blk = fr.rpc then w.stack <- rest
          else begin
            let blk = kernel.k_blocks.(fr.blk) in
            if fr.idx < Array.length blk.instrs then begin
              let ins = blk.instrs.(fr.idx) in
              let pc = pc_base.(fr.blk) + fr.idx in
              exec_instr w ins fr.mask pc;
              fr.idx <- fr.idx + 1;
              if ins = Bar then begin
                if check && fr.mask <> w.valid then
                  monitor_emit
                    (Trace.Divergent_barrier
                       { block_id; warp = w.wid; pc; mask = fr.mask;
                         expected = w.valid });
                running := false;
                result := Barrier
              end
            end
            else
              match blk.term with
              | Ret ->
                w.exited <- w.exited lor fr.mask;
                w.stack <- rest
              | Br l ->
                charge_branch fr.mask;
                fr.blk <- l;
                fr.idx <- 0
              | Cbr (p, t, f) ->
                charge_branch fr.mask;
                let mt = ref 0 in
                for lane = 0 to 31 do
                  if fr.mask land (1 lsl lane) <> 0 && geti w p lane <> 0 then
                    mt := !mt lor (1 lsl lane)
                done;
                let mt = !mt in
                let mf = fr.mask land lnot mt in
                if mf = 0 then begin fr.blk <- t; fr.idx <- 0 end
                else if mt = 0 then begin fr.blk <- f; fr.idx <- 0 end
                else begin
                  let r = ipdom.(fr.blk) in
                  let side rpc blk mask = { rpc; blk; idx = 0; mask } in
                  if r >= 0 then begin
                    fr.blk <- r;
                    fr.idx <- 0;
                    w.stack <- side r t mt :: side r f mf :: w.stack
                  end
                  else begin
                    (* Both sides exit before meeting: no reconvergence. *)
                    w.stack <- side (-1) t mt :: side (-1) f mf :: rest
                  end
                end
          end
      done;
      !result

    in
    (* Barrier-synchronised round-robin over the block's warps. *)
    let finished = Array.make warps_per_block false in
    let remaining = ref warps_per_block in
    while !remaining > 0 do
      for wid = 0 to warps_per_block - 1 do
        if not finished.(wid) then
          match step_warp warps.(wid) with
          | Barrier -> ()
          | Finished ->
            finished.(wid) <- true;
            decr remaining
      done;
      (* Every unfinished warp just ran up to its next barrier, so a
         scheduler pass boundary is a barrier-interval boundary: clear
         the race-monitor access records. *)
      if check then race_reset ()
    done
  in

  for block_id = 0 to nblocks - 1 do
    run_block block_id
  done;

  Gpr_obs.Metrics.incr m_runs;
  Gpr_obs.Metrics.add m_thread_instrs !thread_instrs;

  if config.collect_trace then
    Some
      {
        Trace.items = Array.of_list (List.rev !trace_buf);
        warps_per_block;
        num_blocks = nblocks;
        thread_instructions = !thread_instrs;
      }
  else None
