(** Dynamic warp-instruction traces.

    The functional executor ({!Exec}) emits one record per executed warp
    instruction; the timing simulator ({!Gpr_sim}) replays them through
    the pipeline model.  Records reference *virtual* registers — the
    simulator maps them to physical registers through the allocation
    produced by {!Gpr_alloc}. *)

open Gpr_isa.Types

type mem_access = {
  m_space : space;
  m_addresses : int array;
      (** byte address per active lane, in lane order (length = number of
          active lanes) *)
}

type item = {
  t_warp : int;        (** warp id within its block *)
  t_block_id : int;    (** linear CTA index *)
  t_pc : int;          (** static instruction id (unique per site) *)
  t_unit : unit_class;
  t_srcs : int list;   (** virtual registers read (non-predicate) *)
  t_dst : int option;  (** virtual register written (non-predicate) *)
  t_dst_float : bool;  (** written register is F32 (may need conversion) *)
  t_active : int;      (** active-lane count *)
  t_mem : mem_access option;
}

type t = {
  items : item array;          (** program order per warp, interleaved *)
  warps_per_block : int;
  num_blocks : int;
  thread_instructions : int;   (** total dynamic thread instructions *)
}

let warp_items t ~block_id ~warp =
  Array.to_list t.items
  |> List.filter (fun i -> i.t_block_id = block_id && i.t_warp = warp)

let num_warp_instructions t = Array.length t.items

(* ------------------------------------------------------------------ *)
(* Dynamic barrier/race monitor events (emitted by [Exec.run ~check:true]).

   The monitor is the runtime counterpart of the static divergence and
   race passes in [Gpr_lint]: a [Divergent_barrier] fires when a warp
   reaches [Bar] with lanes missing (branch divergence or a divergent
   early exit), a [Shared_race] when two distinct threads of a CTA
   touch the same shared element between two barriers with at least
   one write. *)

type race_kind = Write_write | Read_write

type monitor_event =
  | Divergent_barrier of {
      block_id : int;
      warp : int;
      pc : int;
      mask : int;
      expected : int;
    }
  | Shared_race of {
      block_id : int;
      buffer : string;
      index : int;
      kind : race_kind;
      thread : int;
      other : int;
      pc : int;
    }

let race_kind_to_string = function
  | Write_write -> "write-write"
  | Read_write -> "read-write"

let monitor_event_to_string = function
  | Divergent_barrier { block_id; warp; pc; mask; expected } ->
    Printf.sprintf
      "divergent barrier: block %d warp %d reached bar.sync at pc %d with \
       mask %#x (expected %#x)"
      block_id warp pc mask expected
  | Shared_race { block_id; buffer; index; kind; thread; other; pc } ->
    Printf.sprintf
      "shared-memory %s race: block %d threads %d and %d both touch %s[%d] \
       in the same barrier interval (pc %d)"
      (race_kind_to_string kind) block_id thread other buffer index pc
