(** Dynamic warp-instruction traces.

    The functional executor ({!Exec}) emits one record per executed warp
    instruction; the timing simulator ({!Gpr_sim}) replays them through
    the pipeline model.  Records reference *virtual* registers — the
    simulator maps them to physical registers through the allocation
    produced by {!Gpr_alloc}.

    The module also declares the events of the dynamic barrier/race
    monitor ({!Exec.run} with [~check:true]) — the runtime counterpart
    of the static divergence and shared-memory race passes in
    [Gpr_lint]. *)

open Gpr_isa.Types

type mem_access = {
  m_space : space;
  m_addresses : int array;
      (** byte address per active lane, in lane order (length = number of
          active lanes) *)
}

type item = {
  t_warp : int;        (** warp id within its block *)
  t_block_id : int;    (** linear CTA index *)
  t_pc : int;          (** static instruction id (unique per site) *)
  t_unit : unit_class;
  t_srcs : int list;   (** virtual registers read (non-predicate) *)
  t_dst : int option;  (** virtual register written (non-predicate) *)
  t_dst_float : bool;  (** written register is F32 (may need conversion) *)
  t_active : int;      (** active-lane count *)
  t_mem : mem_access option;
}

type t = {
  items : item array;          (** program order per warp, interleaved *)
  warps_per_block : int;
  num_blocks : int;
  thread_instructions : int;   (** total dynamic thread instructions *)
}

val warp_items : t -> block_id:int -> warp:int -> item list
val num_warp_instructions : t -> int

(** {1 Dynamic monitor events} *)

type race_kind = Write_write | Read_write

type monitor_event =
  | Divergent_barrier of {
      block_id : int;   (** linear CTA index *)
      warp : int;       (** warp id within the block *)
      pc : int;         (** static id of the [Bar] instruction *)
      mask : int;       (** active-lane mask at the barrier *)
      expected : int;   (** the warp's full valid-lane mask *)
    }
      (** A warp reached [Bar] with lanes missing: branch divergence or a
          divergent early exit left part of the warp inactive. *)
  | Shared_race of {
      block_id : int;
      buffer : string;  (** shared buffer name *)
      index : int;      (** element index within the buffer *)
      kind : race_kind;
      thread : int;     (** thread making the access that exposed the race *)
      other : int;      (** conflicting thread recorded earlier this interval *)
      pc : int;         (** static id of the exposing access *)
    }
      (** Two distinct threads of a CTA touched the same shared element in
          the same barrier interval, at least one of them writing. *)

val race_kind_to_string : race_kind -> string
val monitor_event_to_string : monitor_event -> string
