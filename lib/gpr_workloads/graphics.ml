(** The four graphics kernels of Table 4 (group 1, SSIM metric):
    Deferred and SSAO are standard real-time rendering passes; Elevated
    and Pathtracer re-implement the two Shadertoy kernels — a
    ray-marched value-noise terrain and a small path tracer.

    All render a [dim]×[dim] luminance image with 256 threads per block
    (8 warps, matching Table 4). *)

open Gpr_isa
open Gpr_isa.Types
open Builder
module Q = Gpr_quality.Quality

(* Texture-consuming passes render 64x64 so their G-buffer working sets
   exceed the L1/texture caches, as the originals' full-resolution
   buffers do; the procedural kernels render 32x32 (their cost is pure
   compute, so resolution only scales runtime). *)
let tex_dim = 96
let tex_pixels = tex_dim * tex_dim
let tex_launch = launch_1d ~block:256 ~grid:(tex_pixels / 256)
let dim = 32
let pixels = dim * dim
let launch = launch_1d ~block:256 ~grid:(pixels / 256)

(* ------------------------------------------------------------------ *)
(* SSAO: 8-sample screen-space ambient occlusion over a depth texture. *)

let ssao_kernel () =
  let b = create ~name:"ssao" in
  let depth = texture_buffer b F32 "depth" in
  let normal = texture_buffer b F32 "normal" in
  let ao = global_buffer b F32 "ao" in
  let gid, x, y = Glib.pixel_xy b ~width:tex_dim in
  let d0 = ld b depth ~$gid in
  let n0 = ld b normal ~$gid in
  let offsets =
    [ (1, 0, 0.14); (-1, 0, 0.14); (0, 1, 0.14); (0, -1, 0.14);
      (2, 1, 0.09); (-2, 1, 0.09); (2, -1, 0.09); (-2, -1, 0.09);
      (1, 2, 0.06); (-1, 2, 0.06); (1, -2, 0.06); (-1, -2, 0.06);
      (3, 3, 0.03); (-3, 3, 0.03); (3, -3, 0.03); (-3, -3, 0.03) ]
  in
  (* Phase 1: fetch all sixteen neighbour depths; they stay live while
     the occlusion terms are evaluated. *)
  let samples =
    List.map
      (fun (dx, dy, w) ->
         let xs = imin b ~$(imax b ~$(iadd b ~$x (ci dx)) (ci 0)) (ci (tex_dim - 1)) in
         let ys = imin b ~$(imax b ~$(iadd b ~$y (ci dy)) (ci 0)) (ci (tex_dim - 1)) in
         let idx = imad b ~$ys (ci tex_dim) ~$xs in
         (ld b depth ~$idx, w))
      offsets
  in
  (* Phase 2: every sample's occlusion contribution, all live before
     the weighted reduction. *)
  let contribs =
    List.map
      (fun (ds, w) ->
         let diff = fsub b ~$d0 ~$ds in
         let biased = fsub b ~$diff (cf 0.02) in
         let falloff = frcp b ~$(ffma b ~$biased (cf 4.0) (cf 1.0)) in
         (fmul b ~$(fmax b ~$biased (cf 0.0)) ~$falloff, w))
      samples
  in
  let occ =
    List.fold_left
      (fun acc (contrib, w) -> ffma b ~$contrib (cf w) ~$acc)
      (mov b F32 (cf 0.0)) contribs
  in
  (* Second statistics pass over the same samples (mean neighbourhood
     depth drives a range tint), so the fetched depths stay live through
     the whole occlusion evaluation. *)
  let avg =
    List.fold_left
      (fun acc (ds, _) -> fadd b ~$acc ~$ds)
      (mov b F32 (cf 0.0)) samples
  in
  let tint = ffma b ~$avg (cf (0.1 /. 16.0)) (cf 0.95) in
  let shaped =
    fmul b ~$(fmul b ~$occ ~$tint) ~$(ffma b ~$n0 (cf 0.5) (cf 0.75))
  in
  let result = Glib.clamp01 b ~$(fsub b (cf 1.0) ~$shaped) in
  st b ao ~$gid ~$result;
  finish b

let ssao : Workload.t =
  {
    name = "SSAO";
    group = 1;
    metric = Q.M_ssim;
    kernel = ssao_kernel ();
    launch = tex_launch;
    params = [||];
    data =
      (fun () ->
         [ ("depth", Gpr_exec.Exec.F_data (Inputs.qfloats ~seed:101 ~n:tex_pixels));
           ("normal", Gpr_exec.Exec.F_data (Inputs.qfloats ~seed:102 ~n:tex_pixels));
           ("ao", Gpr_exec.Exec.F_data (Inputs.zeros_f tex_pixels)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_image ("ao", tex_dim, tex_dim);
    paper_regs = 28;
  }

(* ------------------------------------------------------------------ *)
(* Deferred: G-buffer lighting with four point lights and Blinn-style
   specular highlights. *)

let deferred_kernel () =
  let b = create ~name:"deferred" in
  let nx = texture_buffer b F32 "nx" in
  let ny = texture_buffer b F32 "ny" in
  let nz = texture_buffer b F32 "nz" in
  let depth = texture_buffer b F32 "depth" in
  let albedo = texture_buffer b F32 "albedo" in
  let gmat = texture_buffer b S32 "gmat" in
  let out = global_buffer b F32 "shaded" in
  let gid, x, y = Glib.pixel_xy b ~width:tex_dim in
  let inv = 1.0 /. float_of_int tex_dim in
  let px =
    ffma b ~$(Builder.itof b ~$x) (cf inv) (cf (-0.5))
  in
  let py =
    ffma b ~$(Builder.itof b ~$y) (cf inv) (cf (-0.5))
  in
  let pz = ld b depth ~$gid in
  let nvx = ld b nx ~$gid and nvy = ld b ny ~$gid and nvz = ld b nz ~$gid in
  let nxn, nyn, nzn = Glib.normalize3 b (~$nvx, ~$nvy, ~$nvz) in
  (* Packed material word: bit 31 = emissive flag, bits 8..11 =
     specular level, bits 0..2 = material id — the original's G-buffer
     stores materials as a packed integer, not separate floats. *)
  let gm = ld b gmat ~$gid in
  let mid = iand b ~$gm (ci 7) in
  let spec_lvl = iand b ~$(ishr b ~$gm (ci 8)) (ci 15) in
  let emissive = ilt b ~$gm (ci 0) in
  let alb0 = ld b albedo ~$gid in
  let tint = ffma b ~$(itof b ~$mid) (cf 0.0625) (cf 0.55) in
  let alb = fmul b ~$alb0 ~$tint in
  (* View vector for Blinn-Phong half-vector speculars. *)
  let vx, vy, vz = Glib.normalize3 b (~$(fneg b ~$px), ~$(fneg b ~$py), ~$(fneg b ~$pz)) in
  (* Phase 1: evaluate every light's diffuse and specular partials; all
     sixteen stay live until the combine (the original shades all
     lights from the G-buffer in one pass). *)
  let light (lx, ly, lz) intensity =
    let dx = fsub b (cf lx) ~$px in
    let dy = fsub b (cf ly) ~$py in
    let dz = fsub b (cf lz) ~$pz in
    let d2 = Glib.dot3 b (~$dx, ~$dy, ~$dz) (~$dx, ~$dy, ~$dz) in
    let irt = frsqrt b ~$d2 in
    let lxh = fmul b ~$dx ~$irt
    and lyh = fmul b ~$dy ~$irt
    and lzh = fmul b ~$dz ~$irt in
    let ndl =
      fmax b ~$(Glib.dot3 b (~$nxn, ~$nyn, ~$nzn) (~$lxh, ~$lyh, ~$lzh))
        (cf 0.0)
    in
    (* Half vector between light and view. *)
    let hx, hy, hz =
      Glib.normalize3 b
        (~$(fadd b ~$lxh ~$vx), ~$(fadd b ~$lyh ~$vy), ~$(fadd b ~$lzh ~$vz))
    in
    let ndh =
      fmax b ~$(Glib.dot3 b (~$nxn, ~$nyn, ~$nzn) (~$hx, ~$hy, ~$hz)) (cf 1e-3)
    in
    let atten = frcp b ~$(ffma b ~$d2 (cf 4.0) (cf 1.0)) in
    let diff = fmul b ~$(fmul b ~$ndl ~$atten) (cf intensity) in
    (* ndh^16 via exp2/log2 *)
    let p16 = fex2 b ~$(fmul b ~$(flg2 b ~$ndh) (cf 16.0)) in
    let spec = fmul b ~$(fmul b ~$p16 ~$atten) (cf (0.3 *. intensity)) in
    (diff, spec)
  in
  let lights =
    [ ((0.4, 0.3, 0.2), 1.0); ((-0.4, -0.2, 0.4), 0.8);
      ((0.1, -0.4, 0.6), 0.6); ((-0.2, 0.4, 0.8), 0.5);
      ((0.6, -0.1, 0.9), 0.4); ((-0.6, 0.2, 0.3), 0.35);
      ((0.3, 0.6, 0.5), 0.3); ((-0.1, -0.6, 0.7), 0.25);
      ((0.7, 0.4, 0.1), 0.22); ((-0.7, -0.4, 0.8), 0.2);
      ((0.2, 0.7, 0.9), 0.18); ((-0.3, -0.7, 0.2), 0.15) ]
  in
  let partials = List.map (fun (pos, i) -> light pos i) lights in
  (* Phase 2: combine. *)
  let diffuse =
    List.fold_left (fun acc (d, _) -> fadd b ~$acc ~$d)
      (mov b F32 (cf 0.0)) partials
  in
  let specular =
    List.fold_left (fun acc (_, sp) -> fadd b ~$acc ~$sp)
      (mov b F32 (cf 0.0)) partials
  in
  let sscale = ffma b ~$(itof b ~$spec_lvl) (cf 0.0625) (cf 0.5) in
  let specular = fmul b ~$specular ~$sscale in
  let lum = ffma b ~$alb ~$(fadd b (cf 0.05) ~$diffuse) ~$specular in
  let glow = selp b F32 (cf 0.25) (cf 0.0) emissive in
  let lum = fadd b ~$lum ~$glow in
  st b out ~$gid ~$(Glib.clamp01 b ~$lum);
  finish b

let deferred : Workload.t =
  {
    name = "Deferred";
    group = 1;
    metric = Q.M_ssim;
    kernel = deferred_kernel ();
    launch = tex_launch;
    params = [||];
    data =
      (fun () ->
         [ ("nx", Gpr_exec.Exec.F_data (Inputs.qfloats_range ~seed:201 ~n:tex_pixels ~lo:(-1.0) ~hi:1.0));
           ("ny", Gpr_exec.Exec.F_data (Inputs.qfloats_range ~seed:202 ~n:tex_pixels ~lo:(-1.0) ~hi:1.0));
           ("nz", Gpr_exec.Exec.F_data (Inputs.qfloats_range ~seed:203 ~n:tex_pixels ~lo:0.1 ~hi:1.0));
           ("depth", Gpr_exec.Exec.F_data (Inputs.qfloats ~seed:204 ~n:tex_pixels));
           ("albedo", Gpr_exec.Exec.F_data (Inputs.qfloats ~seed:205 ~n:tex_pixels));
           ("gmat",
            Gpr_exec.Exec.I_data
              (let mid = Inputs.ints ~seed:206 ~n:tex_pixels ~bound:8 in
               let spec = Inputs.ints ~seed:207 ~n:tex_pixels ~bound:16 in
               let em = Inputs.ints ~seed:208 ~n:tex_pixels ~bound:2 in
               (* Stored sign-extended: bit 31 is the emissive flag. *)
               Array.init tex_pixels (fun i ->
                   (if em.(i) = 1 then -0x8000_0000 else 0)
                   + (spec.(i) lsl 8) + mid.(i))));
           ("shaded", Gpr_exec.Exec.F_data (Inputs.zeros_f tex_pixels)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_image ("shaded", tex_dim, tex_dim);
    paper_regs = 47;
  }

(* ------------------------------------------------------------------ *)
(* Elevated: ray-marched fractal landscape (value noise octaves),
   finite-difference normals, fog. *)

let terrain b ~x ~z =
  (* Four octaves, all evaluated before the weighted combine. *)
  let o1 = Glib.noise2 b ~x ~y:z in
  let x2 = ffma b x (cf 2.0) (cf 5.3) and z2 = ffma b z (cf 2.0) (cf 1.7) in
  let o2 = Glib.noise2 b ~x:~$x2 ~y:~$z2 in
  let x3 = ffma b x (cf 4.0) (cf 9.1) and z3 = ffma b z (cf 4.0) (cf 4.2) in
  let o3 = Glib.noise2 b ~x:~$x3 ~y:~$z3 in
  let x4 = ffma b x (cf 8.0) (cf 3.7) and z4 = ffma b z (cf 8.0) (cf 6.1) in
  let o4 = Glib.noise2 b ~x:~$x4 ~y:~$z4 in
  let h = ffma b ~$o1 (cf 0.55) (cf 0.0) in
  let h = ffma b ~$o2 (cf 0.25) ~$h in
  let h = ffma b ~$o3 (cf 0.10) ~$h in
  ffma b ~$o4 (cf 0.05) ~$h

let elevated_kernel () =
  let b = create ~name:"elevated" in
  let out = global_buffer b F32 "terrain_img" in
  let gid, x, y = Glib.pixel_xy b ~width:dim in
  let inv = 1.0 /. float_of_int dim in
  let ux = ffma b ~$(itof b ~$x) (cf inv) (cf (-0.5)) in
  let uy = ffma b ~$(itof b ~$y) (cf inv) (cf (-0.5)) in
  (* Ray from above the terrain, looking slightly down. *)
  let rdy0 = ffma b ~$uy (cf 0.6) (cf (-0.18)) in
  let rdx, rdy, rdz = Glib.normalize3 b (~$ux, ~$rdy0, cf 1.0) in
  let oy = 1.1 in
  (* Sky colour (cloud layer) is computed before the march and stays
     live across the whole loop, as in the original shader. *)
  let cloud =
    Glib.noise2 b ~x:~$(ffma b ~$rdx (cf 6.0) (cf 11.0))
      ~y:~$(ffma b ~$rdz (cf 6.0) (cf 7.0))
  in
  let cloud2 =
    Glib.noise2 b ~x:~$(ffma b ~$rdx (cf 13.0) (cf 3.0))
      ~y:~$(ffma b ~$rdz (cf 13.0) (cf 17.0))
  in
  let sky_tint = ffma b ~$cloud2 (cf 0.15) ~$(ffma b ~$cloud (cf 0.3) (cf 0.55)) in
  (* Loop-carried march state: position parameter, previous signed
     distance (for the final interpolation), closest approach (a cheap
     soft-shadow/AO proxy) — all live across the whole march, as in the
     original shader. *)
  let t = var b F32 "t" in
  let prev_d = var b F32 "prev_d" in
  let min_d = var b F32 "min_d" in
  let ao = var b F32 "ao" in
  assign b t (cf 0.4);
  assign b prev_d (cf 1.0);
  assign b min_d (cf 10.0);
  assign b ao (cf 0.0);
  for_ b ~lo:(ci 0) ~hi:(ci 12) (fun _ ->
      let px = fmul b ~$rdx ~$t in
      let py = ffma b ~$rdy ~$t (cf oy) in
      let pz = fmul b ~$rdz ~$t in
      let h = terrain b ~x:~$px ~z:~$pz in
      let d = fsub b ~$py ~$h in
      assign b min_d ~$(fmin b ~$min_d ~$(fmul b ~$d ~$(frcp b ~$t)));
      assign b ao ~$(ffma b ~$(fmax b ~$d (cf 0.0)) (cf 0.08) ~$ao);
      assign b prev_d ~$d;
      let step = fmax b ~$(fmul b ~$d (cf 0.55)) (cf 0.04) in
      assign b t ~$(fadd b ~$t ~$step));
  (* Interpolated hit refinement using the last two distances. *)
  let refine =
    fmul b ~$(fmax b ~$prev_d (cf 0.0)) (cf 0.3)
  in
  let t_hit = fsub b ~$t ~$refine in
  (* Shade at the refined position: four terrain evaluations for the
     finite-difference normal are all live together. *)
  let px = fmul b ~$rdx ~$t_hit in
  let pz = fmul b ~$rdz ~$t_hit in
  let py = ffma b ~$rdy ~$t_hit (cf oy) in
  let eps = 0.04 in
  let hx1 = terrain b ~x:~$(fadd b ~$px (cf eps)) ~z:~$pz in
  let hx0 = terrain b ~x:~$(fsub b ~$px (cf eps)) ~z:~$pz in
  let hz1 = terrain b ~x:~$px ~z:~$(fadd b ~$pz (cf eps)) in
  let hz0 = terrain b ~x:~$px ~z:~$(fsub b ~$pz (cf eps)) in
  let nx = fsub b ~$hx0 ~$hx1 in
  let nz = fsub b ~$hz0 ~$hz1 in
  let nxn, nyn, nzn = Glib.normalize3 b (~$nx, cf (2.0 *. eps), ~$nz) in
  let sun = Glib.dot3 b (~$nxn, ~$nyn, ~$nzn) (cf 0.57735, cf 0.57735, cf 0.57735) in
  let lit = fmax b ~$sun (cf 0.0) in
  (* Altitude-banded material (grass / rock / snow), slope-modulated. *)
  let altitude = Glib.clamp01 b ~$(fmul b ~$py (cf 1.4)) in
  let slope = Glib.clamp01 b ~$(fmul b ~$nyn ~$nyn) in
  let grass = 0.35 and rock = 0.55 and snow = 0.9 in
  let lo_band = Glib.mix b (cf grass) (cf rock) ~$altitude in
  let material = Glib.mix b ~$lo_band (cf snow) ~$(fmul b ~$altitude ~$slope) in
  let shadow = Glib.clamp01 b ~$(ffma b ~$min_d (cf 4.0) (cf 0.6)) in
  let ambient = Glib.clamp01 b ~$(fmul b ~$ao (cf 0.8)) in
  (* High-frequency detail bump modulating the direct term. *)
  let detail =
    Glib.noise2 b ~x:~$(fmul b ~$px (cf 9.0)) ~y:~$(fmul b ~$pz (cf 9.0))
  in
  let bump = ffma b ~$detail (cf 0.2) (cf 0.9) in
  let direct = fmul b ~$(fmul b ~$(fmul b ~$lit ~$shadow) ~$material) ~$bump in
  let indirect = fmul b ~$ambient (cf 0.25) in
  let fog = fex2 b ~$(fmul b ~$t_hit (cf (-0.55))) in
  let sky_base = fsub b (cf 1.0) ~$fog in
  let sky = fmul b ~$sky_base ~$sky_tint in
  let ground = fmul b ~$(fadd b ~$direct ~$indirect) ~$fog in
  let lum = ffma b ~$sky (cf 0.65) ~$ground in
  st b out ~$gid ~$(Glib.clamp01 b ~$lum);
  finish b

let elevated : Workload.t =
  {
    name = "Elevated";
    group = 1;
    metric = Q.M_ssim;
    kernel = elevated_kernel ();
    launch;
    params = [||];
    data =
      (fun () ->
         [ ("terrain_img", Gpr_exec.Exec.F_data (Inputs.zeros_f pixels)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_image ("terrain_img", dim, dim);
    paper_regs = 46;
  }

(* ------------------------------------------------------------------ *)
(* Pathtracer: one sample, two bounces over a plane and three spheres;
   per-thread integer xorshift-style RNG (kept 32-bit — the RNG state
   is genuinely incompressible, as in the original kernel). *)

type sphere = { cx : float; cy : float; cz : float; r : float; refl : float }

let scene =
  [ { cx = 0.0; cy = 1.0; cz = 3.0; r = 1.0; refl = 0.9 };
    { cx = 1.7; cy = 0.7; cz = 2.4; r = 0.7; refl = 0.55 };
    { cx = -1.5; cy = 0.6; cz = 3.5; r = 0.6; refl = 0.35 };
    { cx = 0.9; cy = 0.4; cz = 4.2; r = 0.4; refl = 0.7 };
    { cx = -0.7; cy = 0.3; cz = 2.0; r = 0.3; refl = 0.45 } ]

let pathtracer_kernel () =
  let b = create ~name:"pathtracer" in
  let out = global_buffer b F32 "radiance" in
  let gid, x, y = Glib.pixel_xy b ~width:dim in
  (* Integer RNG state (LCG); drives the bounce jitter. *)
  let seed = var b S32 "seed" in
  assign b seed ~$(imad b ~$gid (ci 747796405) (ci 2891336453));
  let next_rand () =
    assign b seed ~$(imad b ~$seed (ci 1103515245) (ci 12345));
    let bits = iand b ~$(ishr b ~$seed (ci 9)) (ci 0x7fffff) in
    fmul b ~$(itof b ~$bits) (cf (1.0 /. 8388608.0))
  in
  let inv = 1.0 /. float_of_int dim in
  let ux = ffma b ~$(itof b ~$x) (cf inv) (cf (-0.5)) in
  let uy = ffma b ~$(itof b ~$y) (cf inv) (cf (-0.3)) in
  (* Mutable ray state across bounces. *)
  let ox = var b F32 "ox" and oy = var b F32 "oy" and oz = var b F32 "oz" in
  let dx = var b F32 "dx" and dy = var b F32 "dy" and dz = var b F32 "dz" in
  let acc = var b F32 "acc" and thru = var b F32 "through" in
  assign b ox (cf 0.0); assign b oy (cf 1.0); assign b oz (cf (-1.2));
  let d0x, d0y, d0z = Glib.normalize3 b (~$ux, ~$uy, cf 1.0) in
  assign b dx ~$d0x; assign b dy ~$d0y; assign b dz ~$d0z;
  assign b acc (cf 0.0);
  assign b thru (cf 1.0);
  let big = 1e9 in
  let bounce () =
    (* Nearest hit over the plane y=0 and the three spheres. *)
    let tplane =
      (* t = -oy/dy when dy < 0, else big *)
      let t = fdiv b ~$(fneg b ~$oy) ~$dy in
      let valid = flt b ~$dy (cf (-1e-6)) in
      let tpos = fgt b ~$t (cf 1e-3) in
      selp b F32 ~$t (cf big) (pand b valid tpos)
    in
    (* All sphere tests evaluated before the nearest-hit selection:
       their candidate distances are live together. *)
    let candidates =
      List.map
        (fun s ->
           let ocx = fsub b ~$ox (cf s.cx) in
           let ocy = fsub b ~$oy (cf s.cy) in
           let ocz = fsub b ~$oz (cf s.cz) in
           let bq = Glib.dot3 b (~$ocx, ~$ocy, ~$ocz) (~$dx, ~$dy, ~$dz) in
           let cq =
             fsub b ~$(Glib.dot3 b (~$ocx, ~$ocy, ~$ocz) (~$ocx, ~$ocy, ~$ocz))
               (cf (s.r *. s.r))
           in
           let disc = fsub b ~$(fmul b ~$bq ~$bq) ~$cq in
           let sq = fsqrt b ~$(fmax b ~$disc (cf 0.0)) in
           let th = fsub b ~$(fneg b ~$bq) ~$sq in
           let hit = pand b (fgt b ~$disc (cf 0.0)) (fgt b ~$th (cf 1e-3)) in
           selp b F32 ~$th (cf big) hit)
        scene
    in
    let best_t = var b F32 "best_t" and best_id = var b S32 "best_id" in
    assign b best_t ~$tplane;
    assign b best_id (ci 0);
    List.iteri
      (fun i t ->
         let closer = flt b ~$t ~$best_t in
         assign b best_id ~$(selp b S32 (ci (i + 1)) ~$best_id closer);
         assign b best_t ~$(selp b F32 ~$t ~$best_t closer))
      candidates;
    (* Shade: sky on miss, Lambert + bounce on hit. *)
    let missed = fge b ~$best_t (cf (big *. 0.5)) in
    let skyv = ffma b ~$dy (cf 0.4) (cf 0.5) in
    if_ b missed
      (fun () ->
         assign b acc ~$(ffma b ~$thru ~$skyv ~$acc);
         assign b thru (cf 0.0))
      (fun () ->
         let hx = ffma b ~$dx ~$best_t ~$ox in
         let hy = ffma b ~$dy ~$best_t ~$oy in
         let hz = ffma b ~$dz ~$best_t ~$oz in
         (* Normal: plane -> (0,1,0); sphere i -> (h - c)/r.  Selp chains
            keyed on best_id. *)
         let nxv = var b F32 "nx" and nyv = var b F32 "ny" and nzv = var b F32 "nz" in
         let albv = var b F32 "alb" in
         assign b nxv (cf 0.0); assign b nyv (cf 1.0); assign b nzv (cf 0.0);
         (* checkerboard-ish plane albedo from position *)
         let cx = ffloor b ~$(fmul b ~$hx (cf 1.0)) in
         let cz = ffloor b ~$(fmul b ~$hz (cf 1.0)) in
         let par = Glib.fract b ~$(fmul b ~$(fadd b ~$cx ~$cz) (cf 0.5)) in
         assign b albv ~$(ffma b ~$par (cf 0.6) (cf 0.25));
         (* All candidate sphere normals are computed eagerly before
            the id-keyed selection, so they are live together. *)
         let normals =
           List.map
             (fun s ->
                let inv_r = 1.0 /. s.r in
                let snx = fmul b ~$(fsub b ~$hx (cf s.cx)) (cf inv_r) in
                let sny = fmul b ~$(fsub b ~$hy (cf s.cy)) (cf inv_r) in
                let snz = fmul b ~$(fsub b ~$hz (cf s.cz)) (cf inv_r) in
                (snx, sny, snz))
             scene
         in
         List.iteri
           (fun i ((snx, sny, snz), s) ->
              let is_i = ieq b ~$best_id (ci (i + 1)) in
              assign b nxv ~$(selp b F32 ~$snx ~$nxv is_i);
              assign b nyv ~$(selp b F32 ~$sny ~$nyv is_i);
              assign b nzv ~$(selp b F32 ~$snz ~$nzv is_i);
              assign b albv ~$(selp b F32 (cf s.refl) ~$albv is_i))
           (List.combine normals scene);
         let sun = Glib.dot3 b (~$nxv, ~$nyv, ~$nzv) (cf 0.5, cf 0.7, cf (-0.5)) in
         (* Shadow ray towards the sun: occlusion tests against every
            sphere stay live until combined. *)
         let sun_dir = (0.5, 0.7, -0.5) in
         let shadow =
           List.fold_left
             (fun acc s ->
                let (sdx, sdy, sdz) = sun_dir in
                let ocx = fsub b ~$hx (cf s.cx) in
                let ocy = fsub b ~$hy (cf s.cy) in
                let ocz = fsub b ~$hz (cf s.cz) in
                let bq =
                  Glib.dot3 b (~$ocx, ~$ocy, ~$ocz) (cf sdx, cf sdy, cf sdz)
                in
                let cq =
                  fsub b
                    ~$(Glib.dot3 b (~$ocx, ~$ocy, ~$ocz) (~$ocx, ~$ocy, ~$ocz))
                    (cf (s.r *. s.r))
                in
                let disc = fsub b ~$(fmul b ~$bq ~$bq) ~$cq in
                let th = fsub b ~$(fneg b ~$bq) ~$(fsqrt b ~$(fmax b ~$disc (cf 0.0))) in
                let blocked = pand b (fgt b ~$disc (cf 1e-4)) (fgt b ~$th (cf 1e-2)) in
                selp b F32 (cf 0.0) ~$acc blocked)
             (mov b F32 (cf 1.0)) scene
         in
         let direct = fmul b ~$(fmax b ~$sun (cf 0.0)) ~$shadow in
         assign b acc ~$(ffma b ~$(fmul b ~$thru ~$albv) ~$direct ~$acc);
         assign b thru ~$(fmul b ~$thru ~$(fmul b ~$albv (cf 0.5)));
         (* Diffuse bounce: jittered normal direction. *)
         let jx = ffma b ~$(next_rand ()) (cf 2.0) (cf (-1.0)) in
         let jy = ffma b ~$(next_rand ()) (cf 2.0) (cf (-1.0)) in
         let jz = ffma b ~$(next_rand ()) (cf 2.0) (cf (-1.0)) in
         let bx = ffma b ~$jx (cf 0.8) ~$nxv in
         let by = ffma b ~$jy (cf 0.8) ~$nyv in
         let bz = ffma b ~$jz (cf 0.8) ~$nzv in
         let ndx, ndy, ndz = Glib.normalize3 b (~$bx, ~$by, ~$bz) in
         assign b ox ~$(ffma b ~$nxv (cf 1e-3) ~$hx);
         assign b oy ~$(ffma b ~$nyv (cf 1e-3) ~$hy);
         assign b oz ~$(ffma b ~$nzv (cf 1e-3) ~$hz);
         assign b dx ~$ndx; assign b dy ~$ndy; assign b dz ~$ndz)
  in
  bounce ();
  bounce ();
  (* Final sky contribution for rays still alive. *)
  let skyv = ffma b ~$dy (cf 0.4) (cf 0.5) in
  assign b acc ~$(ffma b ~$thru ~$skyv ~$acc);
  st b out ~$gid ~$(Glib.clamp01 b ~$acc);
  finish b

let pathtracer : Workload.t =
  {
    name = "Pathtracer";
    group = 1;
    metric = Q.M_ssim;
    kernel = pathtracer_kernel ();
    launch;
    params = [||];
    data =
      (fun () ->
         [ ("radiance", Gpr_exec.Exec.F_data (Inputs.zeros_f pixels)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_image ("radiance", dim, dim);
    paper_regs = 50;
  }
