(** Small shader-math library over the kernel builder: the common
    subexpressions of the graphics workloads (Sec. 5.3 — Shadertoy-
    style kernels use fract/hash/value-noise/lerp idioms heavily). *)

open Gpr_isa
open Gpr_isa.Types

val fract : Builder.t -> operand -> vreg
val mix : Builder.t -> operand -> operand -> operand -> vreg
(** [mix a b t] = a + (b - a) * t *)

val clamp01 : Builder.t -> operand -> vreg
val smoothstep01 : Builder.t -> operand -> vreg
(** 3t² − 2t³ for t in [0,1]. *)

val hash11 : Builder.t -> operand -> vreg
(** fract(sin(x) · 43758.5453) — the classic shader float hash. *)

val hash_lattice : Builder.t -> operand -> vreg
(** Integer lattice hash: [(n ≪ 13) ⊕ n] fed through the cubic
    polynomial [h·(h²·15731 + 789221) + 1376312589] with 32-bit wrap,
    low 16 bits scaled into [0,1).  Matches the integer hashing of the
    original shaders that the float ports had approximated away. *)

val noise2 : Builder.t -> x:operand -> y:operand -> vreg
(** Value noise on the integer lattice with smooth interpolation;
    corners are hashed with {!hash_lattice}. *)

val dot3 :
  Builder.t ->
  operand * operand * operand ->
  operand * operand * operand ->
  vreg

val normalize3 :
  Builder.t ->
  operand * operand * operand ->
  vreg * vreg * vreg

val length3 : Builder.t -> operand * operand * operand -> vreg

val pixel_xy : Builder.t -> width:int -> vreg * vreg * vreg
(** [(gid, x, y)] for a 1-D launch over a [width]-wide image. *)
