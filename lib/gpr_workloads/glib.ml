open Gpr_isa
open Builder

let fract b v =
  let fl = ffloor b v in
  fsub b v ~$fl

let mix b a x t =
  let d = fsub b x a in
  ffma b ~$d t a

let clamp01 b v =
  let lo = fmax b v (cf 0.0) in
  fmin b ~$lo (cf 1.0)

let smoothstep01 b t =
  (* t * t * (3 - 2t) *)
  let t2 = fmul b t t in
  let m = ffma b (cf (-2.0)) t (cf 3.0) in
  fmul b ~$t2 ~$m

let hash11 b x =
  let s = fsin b x in
  let big = fmul b ~$s (cf 43758.5453) in
  fract b ~$big

let hash_lattice b n =
  (* n ← (n ≪ 13) ⊕ n; h ← n·(n²·15731 + 789221) + 1376312589, all
     wrapping mod 2³²; the low 16 bits are a uniform sample scaled
     into [0,1).  This is the classic integer lattice hash the
     float-hash ports replace. *)
  let sh = ishl b n (ci 13) in
  let h0 = ixor b ~$sh n in
  let hsq = imul b ~$h0 ~$h0 in
  let t = imad b ~$hsq (ci 15731) (ci 789221) in
  let r = imad b ~$h0 ~$t (ci 1376312589) in
  let low = iand b ~$r (ci 0xffff) in
  let f = itof b ~$low in
  fmul b ~$f (cf (1.0 /. 65536.0))

let noise2 b ~x ~y =
  let ix = ffloor b x and iy = ffloor b y in
  let fx = fsub b x ~$ix and fy = fsub b y ~$iy in
  let ux = smoothstep01 b ~$fx and uy = smoothstep01 b ~$fy in
  let xi = ftoi b ~$ix and yi = ftoi b ~$iy in
  let corner dx dy =
    let cx = iadd b ~$xi (ci dx) and cy = iadd b ~$yi (ci dy) in
    let n = imad b ~$cy (ci 57) ~$cx in
    hash_lattice b ~$n
  in
  let n00 = corner 0 0 and n10 = corner 1 0 in
  let n01 = corner 0 1 and n11 = corner 1 1 in
  let nx0 = mix b ~$n00 ~$n10 ~$ux in
  let nx1 = mix b ~$n01 ~$n11 ~$ux in
  mix b ~$nx0 ~$nx1 ~$uy

let dot3 b (ax, ay, az) (bx, by, bz) =
  let xy = fmul b ax bx in
  let xyz = ffma b ay by ~$xy in
  ffma b az bz ~$xyz

let length3 b v = fsqrt b ~$(dot3 b v v)

let normalize3 b (x, y, z) =
  let inv = frsqrt b ~$(dot3 b (x, y, z) (x, y, z)) in
  (fmul b x ~$inv, fmul b y ~$inv, fmul b z ~$inv)

let pixel_xy b ~width =
  let gid = global_thread_id_x b in
  let x = irem b ~$gid (ci width) in
  let y = idiv b ~$gid (ci width) in
  (gid, x, y)
