open Gpr_isa.Types
module Exec = Gpr_exec.Exec
module Q = Gpr_quality.Quality

type output_spec =
  | Out_floats of string
  | Out_image of string * int * int
  | Out_ints of string

type t = {
  name : string;
  group : int;
  metric : Q.metric;
  kernel : kernel;
  launch : launch;
  params : Exec.pvalue array;
  data : unit -> (string * Exec.storage) list;
  shared : (string * int) list;
  extra_shared_bytes : int;
  output : output_spec;
  paper_regs : int;
}

let warps_per_block t = (threads_per_block t.launch + 31) / 32

let shared_bytes_per_block t =
  List.fold_left (fun acc (_, n) -> acc + (n * 4)) t.extra_shared_bytes t.shared

let output_name t =
  match t.output with
  | Out_floats n | Out_image (n, _, _) | Out_ints n -> n

let run t ~quantize ~collect_trace =
  let data = t.data () in
  let bindings =
    Exec.bindings_for t.kernel ~data ~shared:t.shared ()
  in
  let config = { Exec.default_config with quantize; collect_trace } in
  let trace =
    Exec.run t.kernel ~launch:t.launch ~params:t.params ~bindings config
  in
  let out =
    match List.assoc_opt (output_name t) data with
    | Some (Exec.F_data a) -> Array.copy a
    | Some (Exec.I_data a) -> Array.map float_of_int a
    | None -> failwith (t.name ^ ": output buffer not bound")
  in
  (out, trace)

let reference t = fst (run t ~quantize:None ~collect_trace:false)

let run_quantized t ~quantize =
  fst (run t ~quantize:(Some quantize) ~collect_trace:false)

let score t ~out ~reference =
  match t.output with
  | Out_image (_, w, h) ->
    let img = Gpr_util.Image.of_array ~width:w ~height:h out in
    let ref_img = Gpr_util.Image.of_array ~width:w ~height:h reference in
    Q.S_ssim (Q.ssim img ~reference:ref_img)
  | Out_floats _ ->
    (match t.metric with
     | Q.M_binary ->
       Q.S_binary
         (Array.length out = Array.length reference
          && Array.for_all2 (fun a b -> a = b) out reference)
     | Q.M_deviation | Q.M_ssim ->
       Q.S_deviation_pct (Q.deviation_pct out ~reference))
  | Out_ints _ ->
    Q.S_binary
      (Array.length out = Array.length reference
       && Array.for_all2 (fun a b -> a = b) out reference)

let evaluate t ~reference ~quantize =
  let out = run_quantized t ~quantize in
  score t ~out ~reference

let trace t ~quantize =
  match snd (run t ~quantize ~collect_trace:true) with
  | Some tr -> tr
  | None -> assert false

let float_sites t = Exec.float_def_sites t.kernel
