open Gpr_isa.Types
module Bits = Gpr_util.Bits

type placement = {
  reg0 : int;
  mask0 : int;
  reg1 : int;
  mask1 : int;
  slices : int;
  bits : int;
  signed : bool;
  is_float : bool;
}

let is_split p = p.reg1 >= 0

type t = {
  pressure : int;
  placements : (int, placement) Hashtbl.t;
  num_arch_regs : int;
  peak_slices : int;
  split_count : int;
}

(* Growable pool of physical registers, each a free mask over 8 slices. *)
type pool = {
  mutable free : int array;  (* 8-bit masks; 0xff = empty register *)
  mutable nregs : int;
}

let pool_create () = { free = Array.make 64 0xff; nregs = 64 }

let pool_grow p =
  let free = Array.make (p.nregs * 2) 0xff in
  Array.blit p.free 0 free 0 p.nregs;
  p.free <- free;
  p.nregs <- p.nregs * 2

(* Lowest [n] set bits of [mask]. *)
let take_slices mask n =
  let taken = ref 0 and count = ref 0 in
  let bit = ref 0 in
  while !count < n && !bit < 8 do
    if mask land (1 lsl !bit) <> 0 then begin
      taken := !taken lor (1 lsl !bit);
      incr count
    end;
    incr bit
  done;
  assert (!count = n);
  !taken

let free_count mask = Bits.popcount mask

(* Allocation preference order (Sec. 4.3: splits exist to minimise
   fragmentation): first a hole in a partially-used register, then a
   split across the holes of two partially-used registers, and only
   then a fresh register. *)

(* Partially-used register with at least [n] free slices; first-fit. *)
let find_fit_partial p n =
  let rec go i =
    if i >= p.nregs then None
    else
      let f = free_count p.free.(i) in
      if f >= n && f < 8 then Some i else go (i + 1)
  in
  go 0

(* Fresh (fully-free) register. *)
let find_fresh p =
  let rec go i =
    if i >= p.nregs then None
    else if p.free.(i) = 0xff then Some i
    else go (i + 1)
  in
  go 0

(* Two distinct partially-used registers whose combined holes reach [n]:
   pick the fullest hole as the first half to minimise leftover
   fragmentation.  Returns (r0, take0, r1, take1). *)
let find_split p n =
  let best = ref (-1) and best_free = ref 0 in
  for i = 0 to p.nregs - 1 do
    let f = free_count p.free.(i) in
    if f > 0 && f < n && f > !best_free then begin
      best := i;
      best_free := f
    end
  done;
  if !best < 0 then None
  else
    let r0 = !best and take0 = !best_free in
    let rest = n - take0 in
    let rec go i =
      if i >= p.nregs then None
      else
        let f = free_count p.free.(i) in
        if i <> r0 && f >= rest && f < 8 then Some i else go (i + 1)
    in
    (match go 0 with
     | Some r1 -> Some (r0, take0, r1, rest)
     | None -> None)

let alloc_in p r n =
  let taken = take_slices p.free.(r) n in
  p.free.(r) <- p.free.(r) land lnot taken;
  taken

let registers_in_use p =
  let c = ref 0 in
  for i = 0 to p.nregs - 1 do
    if p.free.(i) <> 0xff then incr c
  done;
  !c

let slices_in_use p =
  let c = ref 0 in
  for i = 0 to p.nregs - 1 do
    c := !c + (8 - free_count p.free.(i))
  done;
  !c

let m_runs = Gpr_obs.Metrics.counter "alloc.runs"
let m_splits = Gpr_obs.Metrics.counter "alloc.splits"

let m_pressure =
  Gpr_obs.Metrics.histogram ~buckets:[ 4; 8; 12; 16; 20; 24; 28; 32; 48; 64 ]
    "alloc.pressure"

let run ?(allow_split = true) ?(exclude = fun _ -> false) kernel ~width_of =
  let live = Gpr_analysis.Liveness.compute kernel in
  let intervals = Gpr_analysis.Liveness.intervals live in
  (* Recover each variable's vreg record for typing. *)
  let vregs = Hashtbl.create 64 in
  let note (r : vreg) = Hashtbl.replace vregs r.id r in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            (match defs ins with Some d -> note d | None -> ());
            List.iter note (uses ins))
         blk.instrs)
    kernel.k_blocks;
  List.iter
    (fun (id, s) ->
       if not (Hashtbl.mem vregs id) then
         note { id; ty = S32; name = Gpr_isa.Builder.special_name s })
    kernel.k_specials;

  (* ---- Pass 1: architectural register naming. ----
     Variables with disjoint lifetimes share an architectural name
     (classic linear-scan reuse) so the kernel fits the 256-entry
     indirection table; names are typed so integer and float values
     never share an entry (the entry's signed/convert flags are
     static).  Each name's width is the maximum over its values. *)
  let var_name = Hashtbl.create 64 in       (* var -> arch name id *)
  let name_info = Hashtbl.create 64 in      (* name -> (ty, max bits) *)
  let free_names : (dtype, int list ref) Hashtbl.t = Hashtbl.create 4 in
  let next_name = ref 0 in
  let active = ref [] in                    (* (stop, name, ty) *)
  let release_names now =
    let dead, alive = List.partition (fun (stop, _, _) -> stop <= now) !active in
    List.iter
      (fun (_, name, ty) ->
         let pool =
           match Hashtbl.find_opt free_names ty with
           | Some l -> l
           | None ->
             let l = ref [] in
             Hashtbl.replace free_names ty l;
             l
         in
         pool := name :: !pool)
      dead;
    active := alive
  in
  List.iter
    (fun (var, start, stop) ->
       if not (exclude var) then begin
         release_names start;
         let r = Hashtbl.find vregs var in
         let bits = max 1 (min 32 (width_of r)) in
         let name =
           let pool =
             match Hashtbl.find_opt free_names r.ty with
             | Some l -> l
             | None ->
               let l = ref [] in
               Hashtbl.replace free_names r.ty l;
               l
           in
           match !pool with
           | n :: rest ->
             pool := rest;
             n
           | [] ->
             let n = !next_name in
             incr next_name;
             n
         in
         Hashtbl.replace var_name var name;
         (match Hashtbl.find_opt name_info name with
          | Some (ty, b) -> Hashtbl.replace name_info name (ty, max b bits)
          | None -> Hashtbl.replace name_info name (r.ty, bits));
         active := (stop, name, r.ty) :: !active
       end)
    intervals;

  (* ---- Pass 2: static slice packing of the architectural names. ----
     Placements are static for the whole kernel (the indirection table
     is configured once per kernel, Sec. 3.2), so slices are not reused
     over time; first-fit with an optional split over two registers. *)
  let pool = pool_create () in
  let name_placement = Hashtbl.create 64 in
  let split_count = ref 0 in
  let names =
    Hashtbl.fold (fun n info acc -> (n, info) :: acc) name_info []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ((ty : dtype), bits)) ->
       let slices = Bits.slices_of_bits bits in
       let whole reg =
         let mask = alloc_in pool reg slices in
         { reg0 = reg; mask0 = mask; reg1 = -1; mask1 = 0; slices; bits;
           signed = (ty = S32); is_float = (ty = F32) }
       in
       let rec place () =
         match find_fit_partial pool slices with
         | Some reg -> whole reg
         | None ->
           (match (if allow_split then find_split pool slices else None) with
            | Some (r0, n0, r1, n1) ->
              let m0 = alloc_in pool r0 n0 in
              let m1 = alloc_in pool r1 n1 in
              incr split_count;
              { reg0 = r0; mask0 = m0; reg1 = r1; mask1 = m1; slices; bits;
                signed = (ty = S32); is_float = (ty = F32) }
            | None ->
              (match find_fresh pool with
               | Some reg -> whole reg
               | None ->
                 pool_grow pool;
                 place ()))
       in
       Hashtbl.replace name_placement name (place ()))
    names;

  (* Per-variable view: a variable's placement is its name's. *)
  let placements = Hashtbl.create 64 in
  Hashtbl.iter
    (fun var name ->
       match Hashtbl.find_opt name_placement name with
       | Some p ->
         let r = Hashtbl.find vregs var in
         (* Keep the variable's own signedness for the read path. *)
         Hashtbl.replace placements var { p with signed = (r.ty = S32) }
       | None -> ())
    var_name;

  let t =
    {
      pressure = registers_in_use pool;
      placements;
      num_arch_regs = !next_name;
      peak_slices = slices_in_use pool;
      split_count = !split_count;
    }
  in
  Gpr_obs.Metrics.incr m_runs;
  Gpr_obs.Metrics.add m_splits t.split_count;
  Gpr_obs.Metrics.observe m_pressure t.pressure;
  t

let baseline kernel = run kernel ~width_of:(fun _ -> 32)

let fits_arch_table t =
  t.num_arch_regs <= Gpr_arch.Config.architectural_registers

let lookup t var = Hashtbl.find_opt t.placements var
