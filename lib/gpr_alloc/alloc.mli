(** Slice-granular register allocation (Sec. 4.3).

    Every (non-predicate) virtual register is an architectural register
    with a *static* placement: up to two physical registers and an
    8-bit slice mask in each (Fig. 2) — an operand may be split across
    two physical registers to limit fragmentation, exactly the r0/m0,
    r1/m1 layout of the paper's indirection table.

    Allocation is a linear scan over live-interval hulls: at each
    interval start the allocator first tries any physical register with
    enough free 4-bit slices, then a split across two partially-free
    registers, and only then opens a fresh physical register.  Slices
    return to the pool when the variable dies, so variables with
    disjoint lifetimes share slices while their table entries stay
    static.

    The reported {e register pressure} is the peak number of physical
    registers with at least one occupied slice — the quantity Fig. 9
    plots.  With every width forced to 32 bits this degenerates to the
    baseline one-register-per-value allocation. *)

type placement = {
  reg0 : int;
  mask0 : int;       (** 8-bit slice mask within [reg0] *)
  reg1 : int;        (** -1 when not split *)
  mask1 : int;
  slices : int;      (** total slices = popcount mask0 + popcount mask1 *)
  bits : int;        (** declared operand width, 1–32 *)
  signed : bool;     (** sign-extend on read (S32) *)
  is_float : bool;   (** needs the value converter when bits < 32 *)
}

val is_split : placement -> bool

type t = {
  pressure : int;             (** peak physical registers in use *)
  placements : (int, placement) Hashtbl.t;  (** virtual reg -> placement *)
  num_arch_regs : int;        (** architectural registers used (table entries) *)
  peak_slices : int;          (** peak occupied slices *)
  split_count : int;          (** placements split over two registers *)
}

val run :
  ?allow_split:bool ->
  ?exclude:(int -> bool) ->
  Gpr_isa.Types.kernel ->
  width_of:(Gpr_isa.Types.vreg -> int) ->
  t
(** [width_of] gives the static bitwidth of each variable (from the
    range analysis for integers and the precision tuner for floats);
    return 32 to keep a variable uncompressed.  [allow_split] (default
    true) enables the two-register placements of Sec. 4.3; disabling it
    quantifies the fragmentation those splits exist to avoid.
    [exclude] (default none) drops a virtual register from allocation
    entirely — it gets no architectural name, no placement and adds no
    pressure; spilling backends use this to keep cold live ranges out
    of the register file. *)

val baseline : Gpr_isa.Types.kernel -> t
(** All widths forced to 32 bits: the conventional register file. *)

val fits_arch_table : t -> bool
(** True when the kernel needs at most 256 architectural registers
    (the indirection-table capacity assumed in Sec. 3.2.2). *)

val lookup : t -> int -> placement option
