open Gpr_workloads
module Q = Gpr_quality.Quality
module P = Gpr_precision.Precision
module Sim = Gpr_sim.Sim
module Fp = Gpr_engine.Fingerprint
module Store = Gpr_engine.Store

(* Both tables are keyed by content fingerprint (workload ⊕ arch config
   ⊕ variant), never by workload name, and are mutex-guarded so engine
   worker domains can share them.  Computation runs outside the lock:
   racing domains may duplicate work but store identical values.
   Traces are memoised in memory only (they are large and cheap
   relative to the tuner); [Sim.stats] records are additionally
   persisted to the optional on-disk store, so a warm run never
   re-executes a kernel or the timing model. *)
let trace_cache : (string, Gpr_exec.Trace.t) Hashtbl.t = Hashtbl.create 32
let stats_cache : (string, Sim.stats) Hashtbl.t = Hashtbl.create 32
let cache_mutex = Mutex.create ()

let store : Store.t option ref = ref None
let set_store s = store := s

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset trace_cache;
  Hashtbl.reset stats_cache;
  Mutex.unlock cache_mutex

let cfg = Gpr_arch.Config.fermi_gtx480
let cfg_fp = lazy (Fp.to_hex (Fp.config cfg))

let find_cached tbl key =
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock cache_mutex;
  r

let put_cached tbl key v =
  Mutex.lock cache_mutex;
  Hashtbl.replace tbl key v;
  Mutex.unlock cache_mutex

let trace_for (c : Compress.t) quantize_key quantize =
  let key = Fp.to_hex c.fingerprint ^ "/" ^ quantize_key in
  match find_cached trace_cache key with
  | Some t -> t
  | None ->
    let t = Workload.trace c.w ~quantize in
    put_cached trace_cache key t;
    t

let trace_plain (c : Compress.t) = trace_for c "plain" None

let trace_quantized (c : Compress.t) threshold =
  let data = Compress.threshold_data c threshold in
  trace_for c
    ("quant-" ^ Q.threshold_name threshold)
    (Some (P.quantizer data.assignment))

(* Stats are cheap to recompute only when the trace is warm; on a cold
   store-backed run we want to skip the kernel re-execution too, so the
   disk lookup happens before the trace is (lazily) built. *)
let stats_for (c : Compress.t) variant compute =
  let key =
    Printf.sprintf "%s/%s/%s" (Fp.to_hex c.fingerprint) (Lazy.force cfg_fp)
      variant
  in
  match find_cached stats_cache key with
  | Some s -> s
  | None ->
    let fp = Fp.of_strings [ "stats"; key ] in
    let s = Store.memoize !store ~kind:"stats" ~key:fp compute in
    put_cached stats_cache key s;
    s

let baseline (c : Compress.t) =
  stats_for c "baseline" (fun () ->
      let trace = trace_for c "plain" None in
      let occ = Compress.occupancy c c.baseline in
      Sim.run cfg ~trace ~alloc:c.baseline ~blocks_per_sm:occ.blocks_per_sm
        ~mode:Sim.Baseline)

let proposed ?(writeback_delay = 3) (c : Compress.t) threshold =
  let variant =
    Printf.sprintf "proposed/%s/wb%d" (Q.threshold_name threshold)
      writeback_delay
  in
  stats_for c variant (fun () ->
      let data = Compress.threshold_data c threshold in
      let trace =
        trace_for c
          ("quant-" ^ Q.threshold_name threshold)
          (Some (P.quantizer data.assignment))
      in
      let occ = Compress.occupancy c data.alloc_both in
      Sim.run cfg ~trace ~alloc:data.alloc_both
        ~blocks_per_sm:occ.blocks_per_sm
        ~mode:(Sim.Proposed { writeback_delay }))

let artificial (c : Compress.t) threshold =
  let variant =
    Printf.sprintf "artificial/%s" (Q.threshold_name threshold)
  in
  stats_for c variant (fun () ->
      let data = Compress.threshold_data c threshold in
      let trace = trace_for c "plain" None in
      let occ = Compress.occupancy c data.alloc_both in
      Sim.run cfg ~trace ~alloc:c.baseline ~blocks_per_sm:occ.blocks_per_sm
        ~mode:Sim.Baseline)
