open Gpr_workloads
module Q = Gpr_quality.Quality
module P = Gpr_precision.Precision
module Sim = Gpr_sim.Sim
module Fp = Gpr_engine.Fingerprint
module Store = Gpr_engine.Store

(* Both tables are keyed by content fingerprint (workload ⊕ arch config
   ⊕ variant), never by workload name, and are mutex-guarded so engine
   worker domains can share them.  Computation runs outside the lock:
   racing domains may duplicate work but store identical values.
   Traces are memoised in memory only (they are large and cheap
   relative to the tuner); [Sim.stats] records are additionally
   persisted to the optional on-disk store, so a warm run never
   re-executes a kernel or the timing model. *)
let trace_cache : (string, Gpr_exec.Trace.t) Hashtbl.t = Hashtbl.create 32
let stats_cache : (string, Sim.stats) Hashtbl.t = Hashtbl.create 32

let coloc_cache : (string, Gpr_sim.Sim_multi.result) Hashtbl.t =
  Hashtbl.create 8

let energy_cache : (string, Gpr_area.Energy.report) Hashtbl.t =
  Hashtbl.create 16

let cache_mutex = Mutex.create ()

let store : Store.t option ref = ref None
let set_store s = store := s

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset trace_cache;
  Hashtbl.reset stats_cache;
  Hashtbl.reset coloc_cache;
  Hashtbl.reset energy_cache;
  Mutex.unlock cache_mutex

let cfg = Gpr_arch.Config.fermi_gtx480
let cfg_fp = lazy (Fp.to_hex (Fp.config cfg))

let find_cached tbl key =
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock cache_mutex;
  r

let put_cached tbl key v =
  Mutex.lock cache_mutex;
  Hashtbl.replace tbl key v;
  Mutex.unlock cache_mutex

let trace_for (c : Compress.t) quantize_key quantize =
  let key = Fp.to_hex c.fingerprint ^ "/" ^ quantize_key in
  match find_cached trace_cache key with
  | Some t -> t
  | None ->
    let t = Workload.trace c.w ~quantize in
    put_cached trace_cache key t;
    t

let trace_plain (c : Compress.t) = trace_for c "plain" None

let trace_quantized (c : Compress.t) threshold =
  let data = Compress.threshold_data c threshold in
  trace_for c
    ("quant-" ^ Q.threshold_name threshold)
    (Some (P.quantizer data.assignment))

(* Stats are cheap to recompute only when the trace is warm; on a cold
   store-backed run we want to skip the kernel re-execution too, so the
   disk lookup happens before the trace is (lazily) built. *)
let stats_for (c : Compress.t) variant compute =
  let key =
    Printf.sprintf "%s/%s/%s" (Fp.to_hex c.fingerprint) (Lazy.force cfg_fp)
      variant
  in
  match find_cached stats_cache key with
  | Some s -> s
  | None ->
    let fp = Fp.of_strings [ "stats"; key ] in
    let s = Store.memoize !store ~kind:"stats" ~key:fp compute in
    put_cached stats_cache key s;
    s

(* Every simulation memo key names the register-file scheme (id +
   version, via [Fingerprint.scheme]) whose organisation it models:
   two backends must never share a cache entry for the same workload.
   The classic entry points are slice-scheme configurations (baseline
   is the slice pipeline's reference point). *)
let scheme_key (s : Gpr_backend.Backend.t) =
  Fp.to_hex (Gpr_backend.Backend.fingerprint s)

let baseline (c : Compress.t) =
  let variant =
    "baseline/" ^ scheme_key (module Gpr_backend.Backend_baseline)
  in
  stats_for c variant (fun () ->
      let trace = trace_for c "plain" None in
      let occ = Compress.occupancy c c.baseline in
      Sim.run cfg ~trace ~alloc:c.baseline ~blocks_per_sm:occ.blocks_per_sm
        ~mode:Sim.Baseline)

let proposed ?(writeback_delay = 3) (c : Compress.t) threshold =
  let variant =
    Printf.sprintf "proposed/%s/%s/wb%d"
      (scheme_key (module Gpr_backend.Backend_slice))
      (Q.threshold_name threshold) writeback_delay
  in
  stats_for c variant (fun () ->
      let data = Compress.threshold_data c threshold in
      let trace =
        trace_for c
          ("quant-" ^ Q.threshold_name threshold)
          (Some (P.quantizer data.assignment))
      in
      let occ = Compress.occupancy c data.alloc_both in
      Sim.run cfg ~trace ~alloc:data.alloc_both
        ~blocks_per_sm:occ.blocks_per_sm
        ~mode:(Sim.Proposed { writeback_delay }))

let artificial (c : Compress.t) threshold =
  let variant =
    Printf.sprintf "artificial/%s/%s"
      (scheme_key (module Gpr_backend.Backend_slice))
      (Q.threshold_name threshold)
  in
  stats_for c variant (fun () ->
      let data = Compress.threshold_data c threshold in
      let trace = trace_for c "plain" None in
      let occ = Compress.occupancy c data.alloc_both in
      Sim.run cfg ~trace ~alloc:c.baseline ~blocks_per_sm:occ.blocks_per_sm
        ~mode:Sim.Baseline)

(* ------------------------------------------------------------------ *)
(* Generic scheme entry points: any registered backend through the same
   trace/occupancy/simulate plumbing the classic entries use. *)

let backend_resources (b : Gpr_backend.Backend.t) (c : Compress.t) threshold =
  let module S = (val b : Gpr_backend.Backend.Scheme) in
  let precision =
    if S.needs_precision then
      Some (Compress.threshold_data c threshold).Compress.assignment
    else None
  in
  S.analyze ~kernel:c.w.kernel ~width:c.width ~precision

let backend_occupancy (c : Compress.t) (res : Gpr_backend.Backend.resources) =
  Gpr_backend.Backend.occupancy cfg res
    ~warps_per_block:(Workload.warps_per_block c.w)
    ~shared_bytes_per_block:(Workload.shared_bytes_per_block c.w)

let backend ?writeback_delay (b : Gpr_backend.Backend.t) (c : Compress.t)
    threshold =
  let module S = (val b : Gpr_backend.Backend.Scheme) in
  let variant =
    Printf.sprintf "backend/%s/%s/wb%s" (scheme_key b)
      (Q.threshold_name threshold)
      (match writeback_delay with None -> "-" | Some d -> string_of_int d)
  in
  stats_for c variant (fun () ->
      let res = backend_resources b c threshold in
      let trace =
        if S.needs_precision then trace_quantized c threshold
        else trace_plain c
      in
      let occ = backend_occupancy c res in
      Sim.run cfg ~trace ~alloc:res.Gpr_backend.Backend.alloc
        ~blocks_per_sm:occ.Gpr_arch.Occupancy.blocks_per_sm
        ~mode:(Gpr_backend.Backend.sim_mode ?writeback_delay b res))

(* ------------------------------------------------------------------ *)
(* Energy: derived from the memoised trace and timing stats, then
   itself memoised ("energy" entries; the engine fingerprint bump to
   /6 covers the new payload kind). *)

let backend_energy ?writeback_delay (b : Gpr_backend.Backend.t)
    (c : Compress.t) threshold =
  let module S = (val b : Gpr_backend.Backend.Scheme) in
  let key =
    Printf.sprintf "energy/%s/%s/%s/%s/wb%s"
      (Fp.to_hex c.fingerprint) (Lazy.force cfg_fp) (scheme_key b)
      (Q.threshold_name threshold)
      (match writeback_delay with None -> "-" | Some d -> string_of_int d)
  in
  match find_cached energy_cache key with
  | Some r -> r
  | None ->
    let compute () =
      let stats = backend ?writeback_delay b c threshold in
      let res = backend_resources b c threshold in
      let trace =
        if S.needs_precision then trace_quantized c threshold
        else trace_plain c
      in
      (* Warp-level access counts from the functional trace; the extra
         row fetch of every split (double-fetch) placement comes from
         the timing stats. *)
      let reads = ref 0 and writes = ref 0 in
      Array.iter
        (fun (it : Gpr_exec.Trace.item) ->
          reads := !reads + List.length it.t_srcs;
          if it.t_dst <> None then incr writes)
        trace.Gpr_exec.Trace.items;
      let reads = !reads + stats.Sim.double_fetches in
      let alloc = res.Gpr_backend.Backend.alloc in
      (* Mean occupied slices per distinct storage atom (8 when nothing
         is compressed, i.e. the conventional file). *)
      let atoms = Hashtbl.create 32 in
      Hashtbl.iter
        (fun _ (p : Gpr_alloc.Alloc.placement) ->
          Hashtbl.replace atoms (p.reg0, p.mask0, p.reg1, p.mask1) p.slices)
        alloc.Gpr_alloc.Alloc.placements;
      let avg_slices =
        if Hashtbl.length atoms = 0 then
          float_of_int Gpr_arch.Config.slices_per_register
        else
          float_of_int (Hashtbl.fold (fun _ s acc -> acc + s) atoms 0)
          /. float_of_int (Hashtbl.length atoms)
      in
      (* GREENER gating rides the static placement table, which the
         conventional file does not have: its gating input is the mean
         live share of an allocated register's program span, from the
         compile-time liveness. *)
      let gating =
        if Gpr_backend.Backend.id b = "baseline" then None
        else
          let live = Gpr_analysis.Liveness.compute c.w.Workload.kernel in
          let ivs = Gpr_analysis.Liveness.intervals live in
          let points = max 1 (Gpr_analysis.Liveness.num_points live) in
          let span =
            List.fold_left
              (fun acc (_, s, e) -> acc + (e - s + 1))
              0 ivs
          in
          Some
            (float_of_int span
            /. float_of_int (points * max 1 (List.length ivs)))
      in
      let occ = backend_occupancy c res in
      Gpr_area.Energy.estimate cfg ~scheme:(Gpr_backend.Backend.id b)
        ~reads ~writes:!writes
        ~table_reads:(if S.cost.Gpr_backend.Backend.uses_indirection
                      then reads else 0)
        ~conversions:stats.Sim.conversions
        ~spill_accesses:(stats.Sim.spill_loads + stats.Sim.spill_stores)
        ~avg_slices ~gating
        ~resident_warps:occ.Gpr_arch.Occupancy.warps_per_sm
        ~pressure:alloc.Gpr_alloc.Alloc.pressure
        ~cycles:stats.Sim.cycles ()
    in
    let fp = Fp.of_strings [ "energy"; key ] in
    let r = Store.memoize !store ~kind:"energy" ~key:fp compute in
    put_cached energy_cache key r;
    r

(* ------------------------------------------------------------------ *)
(* Concurrent-kernel co-scheduling: one SM hosting a kernel *set*
   under a dispatch policy. *)

module Multi = Gpr_sim.Sim_multi

(* A kernel's seat at the co-scheduled SM: its scheme trace and
   allocation, the admission demand the scheme reports (the same demand
   its isolated occupancy is computed from), and a fixed block budget of
   [waves] waves at its isolated occupancy — so the co-scheduled run
   replays exactly the workload of [waves] isolated waves. *)
let colocate_tenant ?writeback_delay ~waves (b : Gpr_backend.Backend.t)
    (c : Compress.t) threshold =
  let module S = (val b : Gpr_backend.Backend.Scheme) in
  let res = backend_resources b c threshold in
  let trace =
    if S.needs_precision then trace_quantized c threshold else trace_plain c
  in
  let occ = backend_occupancy c res in
  let wpb = Workload.warps_per_block c.Compress.w in
  let demand =
    Gpr_backend.Backend.demand cfg res ~warps_per_block:wpb
      ~shared_bytes_per_block:(Workload.shared_bytes_per_block c.Compress.w)
  in
  {
    Multi.t_label = c.Compress.w.Workload.name;
    t_trace = trace;
    t_alloc = res.Gpr_backend.Backend.alloc;
    t_mode = Gpr_backend.Backend.sim_mode ?writeback_delay b res;
    t_demand = demand;
    t_blocks = max 1 (waves * occ.Gpr_arch.Occupancy.blocks_per_sm);
  }

let colocate ?writeback_delay ?(waves = 6) ?(policy = Multi.fifo) ?check
    (b : Gpr_backend.Backend.t) (cs : Compress.t list) threshold =
  let module P = (val policy : Multi.POLICY) in
  (* The memo key names the kernel *set* in order (dispatch is
     submission-order sensitive), the scheme, the policy, the wave count
     and the writeback override, on top of the architecture. *)
  let key =
    Printf.sprintf "coloc/%s/%s/%s/%s/w%d/wb%s"
      (String.concat "+"
         (List.map (fun (c : Compress.t) -> Fp.to_hex c.fingerprint) cs))
      (Lazy.force cfg_fp) (scheme_key b) P.id waves
      (match writeback_delay with None -> "-" | Some d -> string_of_int d)
  in
  match (check, find_cached coloc_cache key) with
  | None, Some r | Some false, Some r -> r
  | _ ->
    let compute () =
      let tenants =
        List.map
          (fun c -> colocate_tenant ?writeback_delay ~waves b c threshold)
          cs
      in
      Multi.run ?check ~policy cfg tenants
    in
    (* Self-checking runs always execute (the point is the oracle, not
       the answer) and are not persisted. *)
    let r =
      match check with
      | Some true -> compute ()
      | _ ->
        let fp = Fp.of_strings [ "coloc"; key ] in
        Store.memoize !store ~kind:"coloc" ~key:fp compute
    in
    put_cached coloc_cache key r;
    r

(* Profiling deliberately bypasses the stats memo: a trace can only be
   recorded by actually running the timing model.  The run is
   self-checking so a profile doubles as an attribution audit; the
   functional trace memo still applies. *)
let profile_backend ?writeback_delay ~profile (b : Gpr_backend.Backend.t)
    (c : Compress.t) threshold =
  let module S = (val b : Gpr_backend.Backend.Scheme) in
  let res = backend_resources b c threshold in
  let trace =
    if S.needs_precision then trace_quantized c threshold else trace_plain c
  in
  let occ = backend_occupancy c res in
  Sim.run ~check:true ~profile cfg ~trace ~alloc:res.Gpr_backend.Backend.alloc
    ~blocks_per_sm:occ.Gpr_arch.Occupancy.blocks_per_sm
    ~mode:(Gpr_backend.Backend.sim_mode ?writeback_delay b res)
