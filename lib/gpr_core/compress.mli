(** The end-to-end static framework of Fig. 7: range analysis for
    integers, precision tuning for floats, slice-granular register
    allocation, and the resulting occupancy — everything up to (but not
    including) timing simulation, for one kernel. *)

open Gpr_workloads

type per_threshold = {
  assignment : Gpr_precision.Precision.assignment;
  achieved_score : Gpr_quality.Quality.score;
      (** quality of the final tuned configuration on the sample input *)
  alloc_float_only : Gpr_alloc.Alloc.t;
  alloc_both : Gpr_alloc.Alloc.t;
}

type t = {
  w : Workload.t;
  fingerprint : Gpr_engine.Fingerprint.t;
      (** content fingerprint of [w] — the memo/store key *)
  reference : float array;
  width : Gpr_analysis.Width.t;
      (** the width authority: intervals × known-bits × congruence ×
          demanded-bits reduced product *)
  range : Gpr_analysis.Range.t;
      (** [width.range] — kept as a field for interval-only consumers
          (ablations, reports) *)
  baseline : Gpr_alloc.Alloc.t;   (** original (32-bit) allocation *)
  int_only : Gpr_alloc.Alloc.t;
  perfect : per_threshold;
  high : per_threshold;
}

val analyze : Workload.t -> t
(** Runs the full static framework.  Expensive (the tuner re-executes
    the kernel many times); results are memoised by content
    fingerprint ({!Gpr_engine.Fingerprint.workload}) in a domain-safe
    table, and persisted to the {!Gpr_engine.Store} configured with
    {!set_store} (when any). *)

val fingerprint : Workload.t -> Gpr_engine.Fingerprint.t
(** The memo key [analyze] uses. *)

val set_store : Gpr_engine.Store.t option -> unit
(** Attach (or detach) an on-disk result store.  Warm runs then skip
    the precision tuner entirely. *)

val clear_cache : unit -> unit
(** Clears the in-memory memo table only, never the on-disk store. *)

val threshold_data : t -> Gpr_quality.Quality.threshold -> per_threshold

val occupancy :
  t -> Gpr_alloc.Alloc.t -> Gpr_arch.Occupancy.result
(** Occupancy on the Fermi configuration at the allocation's register
    pressure and the workload's block geometry. *)

val width_fn :
  narrow_ints:bool ->
  narrow_floats:Gpr_precision.Precision.assignment option ->
  width:Gpr_analysis.Width.t ->
  Gpr_isa.Types.vreg -> int
(** The per-variable width function handed to the allocator.  Integer
    widths come from the {!Gpr_analysis.Width} reduced product. *)
