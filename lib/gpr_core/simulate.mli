(** Timing-simulation wrappers over {!Gpr_sim.Sim} for the three
    configurations the paper compares:

    - {e baseline}: conventional 32-bit register file at the original
      occupancy;
    - {e proposed}: the indirection-table register file at the
      compressed occupancy (with configurable writeback delay,
      Sec. 6.3);
    - {e artificial}: the Table 1 control — the baseline register file
      with occupancy artificially raised to the compressed level, i.e.
      the upper bound an ideally free compression scheme could reach.

    Traces and simulation results are memoised per (kernel fingerprint,
    architecture fingerprint, variant) in domain-safe tables; stats are
    additionally persisted to the optional on-disk store, so a warm run
    re-executes neither the kernel nor the timing model. *)

val baseline : Compress.t -> Gpr_sim.Sim.stats

val proposed :
  ?writeback_delay:int ->
  Compress.t ->
  Gpr_quality.Quality.threshold ->
  Gpr_sim.Sim.stats

val artificial : Compress.t -> Gpr_quality.Quality.threshold -> Gpr_sim.Sim.stats

val backend_resources :
  Gpr_backend.Backend.t ->
  Compress.t ->
  Gpr_quality.Quality.threshold ->
  Gpr_backend.Backend.resources
(** Run a scheme's [analyze] over the workload's precomputed range and
    (when the scheme wants one) precision assignment at the given
    threshold. *)

val backend_occupancy :
  Compress.t -> Gpr_backend.Backend.resources -> Gpr_arch.Occupancy.result
(** Occupancy with both limits (registers, shared memory including
    spill slots) taken from the scheme's resources. *)

val backend :
  ?writeback_delay:int ->
  Gpr_backend.Backend.t ->
  Compress.t ->
  Gpr_quality.Quality.threshold ->
  Gpr_sim.Sim.stats
(** Simulate the workload under any registered scheme: the quantised
    trace when the scheme consumes precision, the plain trace
    otherwise; occupancy and simulator mode from the scheme's
    resources and cost model.  Memoised like the classic entries, with
    the scheme's id+version in the key — [backend] on [Backend_slice]
    reproduces [proposed] exactly. *)

val backend_energy :
  ?writeback_delay:int ->
  Gpr_backend.Backend.t ->
  Compress.t ->
  Gpr_quality.Quality.threshold ->
  Gpr_area.Energy.report
(** Register-file energy and energy-delay product of the workload under
    a scheme ({!Gpr_area.Energy}): warp-level access counts from the
    memoised functional trace, cycles/double-fetches/conversions/spill
    traffic from the memoised timing stats, mean occupied slices from
    the scheme's allocation, and the GREENER gating input (mean live
    share of an allocated register's program span) from
    {!Gpr_analysis.Liveness} — the conventional file gets no gating.
    Memoised like the stats entries ("energy" payloads; engine
    fingerprint /6). *)

val colocate :
  ?writeback_delay:int ->
  ?waves:int ->
  ?policy:(module Gpr_sim.Sim_multi.POLICY) ->
  ?check:bool ->
  Gpr_backend.Backend.t ->
  Compress.t list ->
  Gpr_quality.Quality.threshold ->
  Gpr_sim.Sim_multi.result
(** Co-schedule a kernel set on one SM under the given scheme and
    dispatch policy ({!Gpr_sim.Sim_multi}).  Each kernel contributes
    [waves] waves of blocks at its {e isolated} occupancy, with the
    admission demand taken from {!Gpr_backend.Backend.demand} — so the
    co-scheduled run replays exactly the workload of the kernels'
    isolated runs, and co-residency gains come only from packing.
    Memoised like the stats entries, keyed by the ordered kernel-set
    fingerprints + scheme + policy + waves; [?check:true] runs the
    self-checking oracle and is never served from (or written to) the
    memo. *)

val profile_backend :
  ?writeback_delay:int ->
  profile:Gpr_obs.Chrome.t ->
  Gpr_backend.Backend.t ->
  Compress.t ->
  Gpr_quality.Quality.threshold ->
  Gpr_sim.Sim.stats
(** Like {!backend}, but always runs the timing model (never served
    from the stats memo — a Chrome trace can only come from a real
    run), with [~check:true] and the profile collector threaded into
    {!Gpr_sim.Sim.run}. *)

val clear_cache : unit -> unit
(** Clears the in-memory memo tables only, never the on-disk store. *)

val set_store : Gpr_engine.Store.t option -> unit
(** Attach (or detach) an on-disk store for simulation stats. *)

val trace_plain : Compress.t -> Gpr_exec.Trace.t
(** Unquantised trace (memoised) — used by ablation sweeps. *)

val trace_quantized :
  Compress.t -> Gpr_quality.Quality.threshold -> Gpr_exec.Trace.t
