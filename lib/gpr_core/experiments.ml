open Gpr_workloads
module Q = Gpr_quality.Quality
module Tab = Gpr_util.Tab
module Stats = Gpr_util.Stats
module Occ = Gpr_arch.Occupancy

let cfg = Gpr_arch.Config.fermi_gtx480

let analyze name =
  match Registry.by_name name with
  | Some w -> Compress.analyze w
  | None -> failwith ("unknown workload " ^ name)

(* ------------------------------------------------------------------ *)
(* Execution engine.  Every data function fans its independent
   per-(kernel, configuration) jobs out over the configured pool;
   [Pool.map_list] preserves list order, so serial and parallel runs
   produce bit-identical tables.  With no pool (or [jobs = 1]) the
   helpers degrade to [List.map]. *)

module Pool = Gpr_engine.Pool

let pool : Pool.t option ref = ref None

let use_pool p = pool := p

let pmap f xs =
  match !pool with
  | Some p when Pool.jobs p > 1 -> Pool.map_list p f xs
  | _ -> List.map f xs

(* Run the static framework on every kernel, in parallel, before any
   per-configuration fan-out: per-(kernel, config) jobs all start with
   [Compress.analyze] and would otherwise duplicate the expensive tuner
   run for a kernel whose analysis is not memoised yet. *)
let analyzed_all () = pmap Compress.analyze Registry.all

(* ------------------------------------------------------------------ *)
(* Table 1: motivation (IMGVF, perfect quality). *)

type table1 = {
  t1_pressure_orig : int;
  t1_pressure_int : int;
  t1_pressure_float : int;
  t1_pressure_both : int;
  t1_occupancy_orig : float;
  t1_occupancy_both : float;
  t1_ipc_orig : float;
  t1_ipc_proposed : float;
  t1_ipc_artificial : float;
}

let table1_data () =
  let c = analyze "IMGVF" in
  let occ_orig = Compress.occupancy c c.baseline in
  let occ_both = Compress.occupancy c c.perfect.alloc_both in
  let base = Simulate.baseline c in
  let prop = Simulate.proposed c Q.Perfect in
  let art = Simulate.artificial c Q.Perfect in
  {
    t1_pressure_orig = c.baseline.pressure;
    t1_pressure_int = c.int_only.pressure;
    t1_pressure_float = c.perfect.alloc_float_only.pressure;
    t1_pressure_both = c.perfect.alloc_both.pressure;
    t1_occupancy_orig = occ_orig.occupancy;
    t1_occupancy_both = occ_both.occupancy;
    t1_ipc_orig = base.gpu_ipc;
    t1_ipc_proposed = prop.gpu_ipc;
    t1_ipc_artificial = art.gpu_ipc;
  }

let print_table1 () =
  Tab.section "Table 1: IMGVF register pressure, occupancy and IPC (perfect quality)";
  let d = table1_data () in
  let pct x = Tab.pct (100.0 *. x) in
  Tab.print
    ~header:[ "Configuration"; "Register Pressure"; "Occupancy"; "IPC" ]
    [
      [ "Original"; string_of_int d.t1_pressure_orig;
        pct d.t1_occupancy_orig; Tab.fp ~digits:0 d.t1_ipc_orig ];
      [ "Narrow integers"; string_of_int d.t1_pressure_int; "-"; "-" ];
      [ "Narrow floats"; string_of_int d.t1_pressure_float; "-"; "-" ];
      [ "Narrow integers + floats"; string_of_int d.t1_pressure_both;
        pct d.t1_occupancy_both; Tab.fp ~digits:0 d.t1_ipc_proposed ];
      [ "Artificial occupancy increase"; string_of_int d.t1_pressure_orig;
        pct d.t1_occupancy_both; Tab.fp ~digits:0 d.t1_ipc_artificial ];
    ];
  Printf.printf
    "(paper: 52 / 46 / 36 / 29 registers; occupancy 21%% -> 62.5%%; IPC 196 -> 352, artificial 377)\n"

(* ------------------------------------------------------------------ *)
(* Table 2: configuration dump. *)

let print_table2 () =
  Tab.section "Table 2: GPU parameters";
  Tab.print
    ~header:[ "Parameter"; "Value" ]
    [
      [ "Clock Frequency"; Printf.sprintf "%d MHz" cfg.clock_mhz ];
      [ "SMs"; string_of_int cfg.num_sms ];
      [ "Scheduling Policy";
        (match cfg.scheduler with
         | Gpr_arch.Config.Gto -> "Greedy then oldest"
         | Gpr_arch.Config.Lrr -> "Loose round robin") ];
      [ "L2 cache"; Printf.sprintf "%d KB" (cfg.l2_bytes / 1024) ];
      [ "Warp Schedulers / SM"; string_of_int cfg.warp_schedulers ];
      [ "Max Warps / SM"; string_of_int cfg.max_warps ];
      [ "Registers / SM"; string_of_int cfg.registers_per_sm ];
      [ "Register Banks"; string_of_int cfg.register_banks ];
      [ "Register Bank Width"; Printf.sprintf "%d bits" cfg.register_bank_width_bits ];
      [ "Entries / Bank"; string_of_int cfg.entries_per_bank ];
      [ "Operand Collectors"; string_of_int cfg.operand_collectors ];
      [ "L1 cache"; Printf.sprintf "%d KB" (cfg.l1_bytes / 1024) ];
      [ "Shared memory"; Printf.sprintf "%d KB" (cfg.shared_mem_bytes / 1024) ];
    ]

let print_table3 () =
  Tab.section "Table 3: reduced-precision floating-point formats";
  let fmts = Gpr_fp.Format_.all in
  Tab.print
    ~header:("Bits, Total" :: List.map (fun f -> string_of_int f.Gpr_fp.Format_.total_bits) fmts)
    [
      "Exponent bits" :: List.map (fun f -> string_of_int f.Gpr_fp.Format_.exp_bits) fmts;
      "Mantissa bits" :: List.map (fun f -> string_of_int f.Gpr_fp.Format_.man_bits) fmts;
    ];
  print_endline "(all configurations also include a sign bit)"

(* ------------------------------------------------------------------ *)
(* Table 4: kernel summary. *)

type table4_row = {
  t4_name : string;
  t4_metric : string;
  t4_paper_regs : int;
  t4_measured_regs : int;
  t4_warps_per_block : int;
  t4_group : int;
}

let table4_data () =
  pmap
    (fun (w : Workload.t) ->
       let c = Compress.analyze w in
       {
         t4_name = w.name;
         t4_metric = Q.metric_name w.metric;
         t4_paper_regs = w.paper_regs;
         t4_measured_regs = c.baseline.pressure;
         t4_warps_per_block = Workload.warps_per_block w;
         t4_group = w.group;
       })
    Registry.all

let print_table4 () =
  Tab.section "Table 4: evaluated kernels";
  Tab.print
    ~header:[ "Name"; "Quality metric"; "Regs/thread (paper)";
              "Regs/thread (measured)"; "Warps per block"; "Group" ]
    (List.map
       (fun r ->
          [ r.t4_name; r.t4_metric; string_of_int r.t4_paper_regs;
            string_of_int r.t4_measured_regs;
            string_of_int r.t4_warps_per_block; string_of_int r.t4_group ])
       (table4_data ()))

(* ------------------------------------------------------------------ *)
(* Figure 8: the range-analysis worked example. *)

let print_fig8 () =
  Tab.section "Figure 8: static range analysis worked example";
  let open Gpr_isa in
  let open Gpr_isa.Types in
  let b = Builder.create ~name:"fig8" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let k = var b S32 "k" and i = var b S32 "i" and j = var b S32 "j" in
  assign b k (ci 0);
  while_ b (fun () -> ilt b ~$k (ci 50))
    (fun () ->
       assign b i (ci 0);
       assign b j ~$k;
       while_ b (fun () -> ilt b ~$i ~$j)
         (fun () ->
            st b out (ci 0) ~$k;
            assign b i ~$(iadd b ~$i (ci 1)));
       assign b k ~$(iadd b ~$k (ci 1)));
  st b out (ci 1) ~$k;
  let kernel = finish b in
  let t = Gpr_analysis.Range.analyze kernel ~launch:(launch_1d ~block:32 ~grid:1) in
  let row (name, (v : vreg)) =
    [ name;
      Gpr_util.Interval.to_string (Gpr_analysis.Range.var_range t v.id);
      string_of_int (Gpr_analysis.Range.var_bitwidth t v.id) ]
  in
  Tab.print ~header:[ "Variable"; "Range"; "Bits (signed)" ]
    (List.map row [ ("k", k); ("i", i); ("j", j) ]);
  print_endline "(paper: k=[0,50], i=[0,50], j=[0,49], 6 bits unsigned)"

(* ------------------------------------------------------------------ *)
(* Width report: the bit-precise reduced product (known-bits x
   congruence x demanded-bits) against intervals alone, per kernel. *)

type width_row = {
  wr_name : string;
  wr_int_vars : int;         (* integer variables in the kernel *)
  wr_interval_narrow : int;  (* narrow (< 32 bit) under intervals *)
  wr_product_narrow : int;   (* narrow under the reduced product *)
  wr_bits_saved : int;       (* sum of per-variable width reductions *)
}

let width_report_data () =
  let module Wd = Gpr_analysis.Width in
  let open Gpr_isa.Types in
  pmap
    (fun (w : Workload.t) ->
       let wt = Wd.analyze w.kernel ~launch:w.launch in
       let int_vars = ref 0 and saved = ref 0 in
       let seen = Hashtbl.create 64 in
       Array.iter
         (fun blk ->
            Array.iter
              (fun ins ->
                 match defs ins with
                 | Some (d : vreg)
                   when (d.ty = S32 || d.ty = U32)
                        && not (Hashtbl.mem seen d.id) ->
                   Hashtbl.replace seen d.id ();
                   incr int_vars;
                   if d.id < Array.length wt.Wd.var_bits then
                     saved :=
                       !saved
                       + (Wd.interval_bitwidth wt d.id
                          - Wd.var_bitwidth wt d.id)
                 | _ -> ())
              blk.instrs)
         w.kernel.k_blocks;
       {
         wr_name = w.name;
         wr_int_vars = !int_vars;
         wr_interval_narrow = Wd.interval_narrow_int_count wt w.kernel;
         wr_product_narrow = Wd.narrow_int_count wt w.kernel;
         wr_bits_saved = !saved;
       })
    Registry.all

let print_width_report () =
  Tab.section
    "Width report: narrow integers, intervals vs bit-precise product";
  let rows = width_report_data () in
  Tab.print
    ~header:[ "Kernel"; "Int vars"; "Narrow (intervals)";
              "Narrow (product)"; "Delta"; "Bits saved" ]
    (List.map
       (fun r ->
          [ r.wr_name; string_of_int r.wr_int_vars;
            string_of_int r.wr_interval_narrow;
            string_of_int r.wr_product_narrow;
            string_of_int (r.wr_product_narrow - r.wr_interval_narrow);
            string_of_int r.wr_bits_saved ])
       rows);
  print_endline
    "(product widths are the storage authority; the delta is what\n\
    \ known-bits, congruence and demanded-bits buy beyond Fig. 8's\n\
    \ interval analysis)"

(* ------------------------------------------------------------------ *)
(* Figure 9: register pressure under the six configurations. *)

type fig9_row = {
  f9_name : string;
  f9_original : int;
  f9_int_only : int;
  f9_float_perfect : int;
  f9_float_high : int;
  f9_both_perfect : int;
  f9_both_high : int;
}

let fig9_data () =
  pmap
    (fun (w : Workload.t) ->
       let c = Compress.analyze w in
       {
         f9_name = w.name;
         f9_original = c.baseline.pressure;
         f9_int_only = c.int_only.pressure;
         f9_float_perfect = c.perfect.alloc_float_only.pressure;
         f9_float_high = c.high.alloc_float_only.pressure;
         f9_both_perfect = c.perfect.alloc_both.pressure;
         f9_both_high = c.high.alloc_both.pressure;
       })
    Registry.all

let print_fig9 () =
  Tab.section "Figure 9: register pressure (registers per thread)";
  Tab.print
    ~header:[ "Kernel"; "Original"; "Narrow ints"; "Floats (perfect)";
              "Floats (high)"; "Ints+floats (perfect)"; "Ints+floats (high)" ]
    (List.map
       (fun r ->
          [ r.f9_name; string_of_int r.f9_original; string_of_int r.f9_int_only;
            string_of_int r.f9_float_perfect; string_of_int r.f9_float_high;
            string_of_int r.f9_both_perfect; string_of_int r.f9_both_high ])
       (fig9_data ()))

(* ------------------------------------------------------------------ *)
(* Figure 10: occupancy (active thread blocks per SM). *)

type fig10_row = {
  f10_name : string;
  f10_blocks_orig : int;
  f10_blocks_perfect : int;
  f10_blocks_high : int;
  f10_limiter_high : string;
}

let fig10_data () =
  pmap
    (fun (w : Workload.t) ->
       let c = Compress.analyze w in
       let occ alloc = Compress.occupancy c alloc in
       let o = occ c.baseline in
       let p = occ c.perfect.alloc_both in
       let h = occ c.high.alloc_both in
       {
         f10_name = w.name;
         f10_blocks_orig = o.Occ.blocks_per_sm;
         f10_blocks_perfect = p.Occ.blocks_per_sm;
         f10_blocks_high = h.Occ.blocks_per_sm;
         f10_limiter_high = Occ.limiter_to_string h.Occ.limiter;
       })
    Registry.all

let print_fig10 () =
  Tab.section "Figure 10: active thread blocks per SM";
  Tab.print
    ~header:[ "Kernel"; "Original"; "Indirection (perfect)";
              "Indirection (high)"; "Limiter (high)" ]
    (List.map
       (fun r ->
          [ r.f10_name; string_of_int r.f10_blocks_orig;
            string_of_int r.f10_blocks_perfect;
            string_of_int r.f10_blocks_high; r.f10_limiter_high ])
       (fig10_data ()))

(* ------------------------------------------------------------------ *)
(* Figure 11: IPC increase. *)

type fig11_row = {
  f11_name : string;
  f11_ipc_base : float;
  f11_ipc_perfect : float;
  f11_ipc_high : float;
  f11_incr_perfect_pct : float;
  f11_incr_high_pct : float;
}

(* Per-(kernel, configuration) fan-out: the three simulated
   configurations of each kernel use three different traces (plain,
   quantised-perfect, quantised-high), so they parallelise without
   duplicating any memoised work once the analyses are warm. *)
let fig11_data () =
  let cs = analyzed_all () in
  let ipcs =
    pmap
      (fun (c, which) ->
         match which with
         | `Base -> (Simulate.baseline c).Gpr_sim.Sim.gpu_ipc
         | `Perfect -> (Simulate.proposed c Q.Perfect).Gpr_sim.Sim.gpu_ipc
         | `High -> (Simulate.proposed c Q.High).Gpr_sim.Sim.gpu_ipc)
      (List.concat_map
         (fun c -> [ (c, `Base); (c, `Perfect); (c, `High) ])
         cs)
  in
  let rec rows cs ipcs =
    match cs, ipcs with
    | [], [] -> []
    | c :: cs', base :: p :: h :: ipcs' ->
      let incr x = 100.0 *. ((x /. base) -. 1.0) in
      {
        f11_name = c.Compress.w.name;
        f11_ipc_base = base;
        f11_ipc_perfect = p;
        f11_ipc_high = h;
        f11_incr_perfect_pct = incr p;
        f11_incr_high_pct = incr h;
      }
      :: rows cs' ipcs'
    | _ -> assert false
  in
  rows cs ipcs

let fig11_geomeans rows =
  ( Stats.geomean_ratio (List.map (fun r -> r.f11_incr_perfect_pct) rows),
    Stats.geomean_ratio (List.map (fun r -> r.f11_incr_high_pct) rows) )

let print_fig11 () =
  Tab.section "Figure 11: IPC increase over the baseline register file";
  let rows = fig11_data () in
  Tab.print
    ~header:[ "Kernel"; "IPC base"; "IPC perfect"; "IPC high";
              "Increase (perfect)"; "Increase (high)" ]
    (List.map
       (fun r ->
          [ r.f11_name; Tab.fp ~digits:1 r.f11_ipc_base;
            Tab.fp ~digits:1 r.f11_ipc_perfect; Tab.fp ~digits:1 r.f11_ipc_high;
            Tab.pct r.f11_incr_perfect_pct; Tab.pct r.f11_incr_high_pct ])
       rows);
  let gp, gh = fig11_geomeans rows in
  Printf.printf "Geometric mean: %s (perfect), %s (high)   [paper: 15.75%%, 18.6%%]\n"
    (Tab.pct gp) (Tab.pct gh)

(* ------------------------------------------------------------------ *)
(* Figure 12: writeback-delay sensitivity. *)

type fig12_row = { f12_name : string; f12_ipc_by_delay : (int * float) list }

let fig12_delays = [ 0; 2; 4; 8 ]

let fig12_data () =
  let cs = analyzed_all () in
  (* Warm the quantised trace of each kernel once, in parallel, so the
     per-(kernel, delay) jobs below re-simulate without re-executing. *)
  let _ = pmap (fun c -> ignore (Simulate.trace_quantized c Q.High)) cs in
  let ipcs =
    pmap
      (fun (c, d) ->
         (Simulate.proposed ~writeback_delay:d c Q.High).Gpr_sim.Sim.gpu_ipc)
      (List.concat_map (fun c -> List.map (fun d -> (c, d)) fig12_delays) cs)
  in
  let n = List.length fig12_delays in
  List.mapi
    (fun i c ->
       let mine =
         List.filteri (fun j _ -> j / n = i) ipcs
         |> List.map2 (fun d ipc -> (d, ipc)) fig12_delays
       in
       { f12_name = c.Compress.w.name; f12_ipc_by_delay = mine })
    cs

let print_fig12 () =
  Tab.section "Figure 12: IPC vs writeback delay (high quality)";
  Tab.print
    ~header:("Kernel" :: List.map (fun d -> Printf.sprintf "%d cycles" d) fig12_delays)
    (List.map
       (fun r ->
          r.f12_name
          :: List.map (fun (_, ipc) -> Tab.fp ~digits:1 ipc) r.f12_ipc_by_delay)
       (fig12_data ()))

(* ------------------------------------------------------------------ *)
(* Backend comparison: any set of registered register-file schemes on
   any registry subset.  Schemes that consume a precision assignment
   (slice) use the high quality threshold. *)

type backend_row = {
  b_kernel : string;
  b_backend : string;
  b_regs : int;
  b_spill_bytes : int;
  b_blocks : int;
  b_occupancy : float;
  b_ipc : float;
  b_ipc_vs_baseline_pct : float;
  b_stalls : Gpr_obs.Stall.breakdown;
}

let backend_comparison ?names (backends : Gpr_backend.Backend.t list) =
  let ws =
    match names with
    | None -> Registry.all
    | Some ns ->
      List.map
        (fun n ->
           match Registry.by_name n with
           | Some w -> w
           | None -> failwith ("unknown workload " ^ n))
        ns
  in
  let cs = pmap Compress.analyze ws in
  (* Baseline IPC first (also fanned out): every row reports its IPC
     change against the conventional register file. *)
  let bases = pmap (fun c -> (Simulate.baseline c).Gpr_sim.Sim.gpu_ipc) cs in
  let pairs =
    List.concat_map
      (fun (c, base) -> List.map (fun b -> (c, base, b)) backends)
      (List.combine cs bases)
  in
  pmap
    (fun ((c : Compress.t), base, b) ->
       let res = Simulate.backend_resources b c Q.High in
       let occ = Simulate.backend_occupancy c res in
       let st = Simulate.backend b c Q.High in
       {
         b_kernel = c.w.name;
         b_backend = Gpr_backend.Backend.id b;
         b_regs = res.Gpr_backend.Backend.alloc.Gpr_alloc.Alloc.pressure;
         b_spill_bytes = Gpr_backend.Backend.spill_bytes_per_thread res;
         b_blocks = occ.Occ.blocks_per_sm;
         b_occupancy = occ.Occ.occupancy;
         b_ipc = st.Gpr_sim.Sim.gpu_ipc;
         b_ipc_vs_baseline_pct =
           100.0 *. ((st.Gpr_sim.Sim.gpu_ipc /. base) -. 1.0);
         b_stalls = Gpr_sim.Sim.breakdown st;
       })
    pairs

let stall_header =
  "Stall% "
  ^ String.concat "/" (List.map Gpr_obs.Stall.short_name Gpr_obs.Stall.all)

let print_backend_comparison ?names backends =
  Tab.section "Backend comparison: occupancy and IPC per register-file scheme";
  Tab.print
    ~header:[ "Kernel"; "Backend"; "Regs/thread"; "Spill B/thread";
              "Blocks/SM"; "Occupancy"; "IPC"; "IPC vs baseline";
              "Issue%"; stall_header ]
    (List.map
       (fun r ->
          let total = Gpr_obs.Stall.total_slots r.b_stalls in
          let issue_pct =
            if total = 0 then 0.0
            else 100.0 *. float_of_int r.b_stalls.Gpr_obs.Stall.bd_issued
                 /. float_of_int total
          in
          [ r.b_kernel; r.b_backend; string_of_int r.b_regs;
            string_of_int r.b_spill_bytes; string_of_int r.b_blocks;
            Tab.pct (100.0 *. r.b_occupancy); Tab.fp ~digits:1 r.b_ipc;
            Tab.pct r.b_ipc_vs_baseline_pct;
            Tab.fp ~digits:1 issue_pct;
            Gpr_obs.Stall.pct_string r.b_stalls ])
       (backend_comparison ?names backends));
  print_endline
    "(schemes that consume a precision assignment use the high threshold;\n\
    \ stall columns attribute every scheduler issue slot: issued + stalls\n\
    \ = cycles x schedulers)"

(* ------------------------------------------------------------------ *)
(* Sec. 6.4 / 6.5 / 7. *)

let print_breakdown (b : Gpr_area.Area.breakdown) =
  Tab.print
    ~header:[ "Structure"; "Transistors" ]
    [
      [ "Value extractors"; string_of_int b.value_extractors ];
      [ "Value converters"; string_of_int b.value_converters ];
      [ "Indirection tables (x2)"; string_of_int b.indirection_tables ];
      [ "Value truncators"; string_of_int b.value_truncators ];
      [ "Collector-unit extensions"; string_of_int b.cu_extensions ];
      [ "Total per SM"; string_of_int b.total_per_sm ];
      [ "Total chip"; string_of_int b.total_chip ];
      [ "Fraction of chip budget"; Tab.pct ~digits:2 (100.0 *. b.fraction_of_chip) ];
    ]

let print_area () =
  Tab.section "Sec. 6.4: area overhead (Fermi GTX 480)";
  print_breakdown Gpr_area.Area.fermi;
  print_endline
    "(paper: ~1.8M per SM, ~27M total, under 1% of the 3.1B-transistor chip)"

let print_power () =
  Tab.section "Sec. 6.5: power overhead";
  let p = Gpr_area.Area.power Gpr_area.Area.fermi in
  Printf.printf
    "Static power overhead tracks area: %s of chip.\n\
     Worst-case dynamic factor on a register read (double fetch): %.1fx.\n\
     Comparison point, doubling the register file (2x bitline length): %.1fx per read.\n\
     Double fetches only occur on split operands, which the compiler controls.\n"
    (Tab.pct ~digits:2 (100.0 *. p.static_overhead_fraction))
    p.double_fetch_read_energy_factor
    p.doubled_regfile_read_energy_factor

let print_volta () =
  Tab.section "Sec. 7: scaling to Volta V100";
  print_breakdown Gpr_area.Area.volta;
  print_endline
    "(paper: ~1.4M per processing block, 5.6M per SM, ~470M total, just over 2%)"

(* ------------------------------------------------------------------ *)
(* Ablations: design choices the paper calls out, swept on a three-
   kernel subset (one latency-bound, one memory-bound, one shared-
   memory/barrier-bound). *)

let ablation_kernels = [ "Hotspot"; "CFD"; "IMGVF" ]

let print_ablation_scheduler () =
  Tab.section "Ablation: warp scheduler policy (GTO vs LRR, baseline RF)";
  let rows =
    pmap
      (fun name ->
         let c = analyze name in
         let trace = Simulate.trace_plain c in
         let occ = Compress.occupancy c c.baseline in
         let ipc sched =
           (Gpr_sim.Sim.run { cfg with scheduler = sched } ~trace
              ~alloc:c.baseline ~blocks_per_sm:occ.Occ.blocks_per_sm
              ~mode:Gpr_sim.Sim.Baseline).gpu_ipc
         in
         let gto = ipc Gpr_arch.Config.Gto and lrr = ipc Gpr_arch.Config.Lrr in
         [ name; Tab.fp ~digits:1 gto; Tab.fp ~digits:1 lrr;
           Tab.pct (100.0 *. ((gto /. lrr) -. 1.0)) ])
      ablation_kernels
  in
  Tab.print ~header:[ "Kernel"; "GTO IPC"; "LRR IPC"; "GTO vs LRR" ] rows

let print_ablation_banks () =
  Tab.section
    "Ablation: register/indirection bank count (proposed RF, high quality)";
  let rows =
    pmap
      (fun name ->
         let c = analyze name in
         let data = Compress.threshold_data c Gpr_quality.Quality.High in
         let trace = Simulate.trace_quantized c Gpr_quality.Quality.High in
         let occ = Compress.occupancy c data.Compress.alloc_both in
         let ipc banks =
           (Gpr_sim.Sim.run { cfg with register_banks = banks } ~trace
              ~alloc:data.Compress.alloc_both
              ~blocks_per_sm:occ.Occ.blocks_per_sm
              ~mode:(Gpr_sim.Sim.Proposed { writeback_delay = 3 })).gpu_ipc
         in
         name :: List.map (fun b -> Tab.fp ~digits:1 (ipc b)) [ 4; 8; 16; 32 ])
      ablation_kernels
  in
  Tab.print ~header:[ "Kernel"; "4 banks"; "8 banks"; "16 banks"; "32 banks" ]
    rows

let print_ablation_split () =
  Tab.section
    "Ablation: split placements (fragmentation vs double fetches, high quality)";
  let rows =
    pmap
      (fun name ->
         let c = analyze name in
         let data = Compress.threshold_data c Gpr_quality.Quality.High in
         let w = Option.get (Registry.by_name name) in
         let width =
           Gpr_backend.Backend_slice.width_fn ~narrow_ints:true
             ~narrow_floats:(Some data.Compress.assignment) ~width:c.width
         in
         let no_split =
           Gpr_alloc.Alloc.run ~allow_split:false w.kernel ~width_of:width
         in
         [ name;
           string_of_int data.Compress.alloc_both.pressure;
           string_of_int data.Compress.alloc_both.split_count;
           string_of_int no_split.pressure ])
      ablation_kernels
  in
  Tab.print
    ~header:[ "Kernel"; "Pressure (split ok)"; "Splits used";
              "Pressure (no split)" ]
    rows

let print_volta_sim () =
  Tab.section "Sec. 7 extension: proposed register file on Volta V100";
  let vcfg = Gpr_arch.Config.volta_v100 in
  let rows =
    pmap
      (fun name ->
         let c = analyze name in
         let w = Option.get (Registry.by_name name) in
         let data = Compress.threshold_data c Gpr_quality.Quality.High in
         let occ alloc =
           Gpr_backend.Backend.occupancy vcfg
             (Gpr_backend.Backend.plain_resources alloc)
             ~warps_per_block:(Workload.warps_per_block w)
             ~shared_bytes_per_block:(Workload.shared_bytes_per_block w)
         in
         let ob = occ c.baseline and op = occ data.Compress.alloc_both in
         let base =
           (Gpr_sim.Sim.run vcfg ~trace:(Simulate.trace_plain c)
              ~alloc:c.baseline ~blocks_per_sm:ob.Occ.blocks_per_sm
              ~mode:Gpr_sim.Sim.Baseline).gpu_ipc
         in
         let prop =
           (Gpr_sim.Sim.run vcfg
              ~trace:(Simulate.trace_quantized c Gpr_quality.Quality.High)
              ~alloc:data.Compress.alloc_both
              ~blocks_per_sm:op.Occ.blocks_per_sm
              ~mode:(Gpr_sim.Sim.Proposed { writeback_delay = 3 })).gpu_ipc
         in
         [ name; string_of_int ob.Occ.blocks_per_sm;
           string_of_int op.Occ.blocks_per_sm; Tab.fp ~digits:1 base;
           Tab.fp ~digits:1 prop;
           Tab.pct (100.0 *. ((prop /. base) -. 1.0)) ])
      ablation_kernels
  in
  Tab.print
    ~header:[ "Kernel"; "Blocks (base)"; "Blocks (prop)"; "IPC base";
              "IPC proposed"; "Change" ]
    rows;
  print_endline
    "(Volta's larger register file leaves more headroom, so gains shrink\n\
    \ relative to Fermi — consistent with the paper's Sec. 7 expectation\n\
    \ that register shortage persists but is milder per thread)"

(* ------------------------------------------------------------------ *)
(* Cross-scheme Pareto: IPC x area x energy x fault coverage.  One row
   per registered scheme, aggregated over the whole kernel registry, so
   the trade-off every backend buys is visible on a single line. *)

type pareto_row = {
  p_scheme : string;
  p_ipc_geomean_pct : float;
  p_area_fraction : float;
  p_energy_nj : float;
  p_edp : float;
  p_gated_pct : float;
  p_fault_absorbed : float option;
}

let pareto_data ?(fault_coverage = []) (backends : Gpr_backend.Backend.t list)
    =
  let cs = analyzed_all () in
  let bases = pmap (fun c -> (Simulate.baseline c).Gpr_sim.Sim.gpu_ipc) cs in
  let pairs =
    List.concat_map
      (fun b -> List.map (fun (c, base) -> (b, c, base)) (List.combine cs bases))
      backends
  in
  let cells =
    pmap
      (fun (b, c, base) ->
         let st = Simulate.backend b c Q.High in
         let e = Simulate.backend_energy b c Q.High in
         ( Gpr_backend.Backend.id b,
           100.0 *. ((st.Gpr_sim.Sim.gpu_ipc /. base) -. 1.0),
           e ))
      pairs
  in
  List.map
    (fun b ->
       let id = Gpr_backend.Backend.id b in
       let mine = List.filter (fun (i, _, _) -> i = id) cells in
       let es = List.map (fun (_, _, e) -> e) mine in
       let mean f = Stats.mean (List.map f es) in
       let module S = (val b : Gpr_backend.Backend.Scheme) in
       {
         p_scheme = id;
         p_ipc_geomean_pct =
           Stats.geomean_ratio (List.map (fun (_, p, _) -> p) mine);
         p_area_fraction = (S.area cfg).Gpr_backend.Backend.ar_fraction_of_chip;
         p_energy_nj = mean (fun e -> e.Gpr_area.Energy.e_total_nj);
         p_edp = mean (fun e -> e.Gpr_area.Energy.e_edp);
         p_gated_pct =
           100.0 *. mean (fun e -> e.Gpr_area.Energy.e_gated_fraction);
         p_fault_absorbed = List.assoc_opt id fault_coverage;
       })
    backends

let print_pareto ?fault_coverage backends =
  Tab.section
    "Cross-scheme Pareto: IPC x area x energy x fault coverage (geomean/mean \
     over the registry)";
  Tab.print
    ~header:[ "Scheme"; "IPC vs baseline"; "Area overhead"; "Energy (nJ)";
              "EDP (nJ*cyc)"; "Gated capacity"; "Faults absorbed" ]
    (List.map
       (fun r ->
          [ r.p_scheme;
            Tab.pct r.p_ipc_geomean_pct;
            Tab.pct ~digits:2 (100.0 *. r.p_area_fraction);
            Tab.fp ~digits:1 r.p_energy_nj;
            Tab.fp ~digits:0 r.p_edp;
            Tab.pct r.p_gated_pct;
            (match r.p_fault_absorbed with
             | Some n -> Tab.fp ~digits:1 n
             | None -> "-") ])
       (pareto_data ?fault_coverage backends));
  print_endline
    "(energy and EDP are relative-model figures -- only the ratios between\n\
    \ schemes carry meaning; faults absorbed come from `gpr check --faults`\n\
    \ and are omitted when the campaign was not run)"

let print_ablations () =
  print_ablation_scheduler ();
  print_ablation_banks ();
  print_ablation_split ();
  print_volta_sim ()

let print_all () =
  print_table2 ();
  print_table3 ();
  print_fig8 ();
  print_width_report ();
  print_table4 ();
  print_table1 ();
  print_fig9 ();
  print_fig10 ();
  print_fig11 ();
  print_fig12 ();
  print_area ();
  print_power ();
  print_volta ();
  print_ablations ()
