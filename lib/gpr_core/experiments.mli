(** One entry point per table and figure of the paper's evaluation.

    Each [*_data] function returns structured rows (used by the tests),
    and each [print_*] renders them in the paper's layout.  Everything
    is memoised through {!Compress} and {!Simulate}, so printing the
    full suite runs the static framework once per kernel.

    With {!use_pool}, every data function fans its independent
    per-(kernel, configuration) jobs out over the given
    {!Gpr_engine.Pool}.  Fan-out preserves row order and all printing
    stays in the calling domain, so serial and parallel runs produce
    bit-identical output. *)

val use_pool : Gpr_engine.Pool.t option -> unit
(** Set (or clear) the execution pool used by the data functions.
    [None], or a pool with [jobs = 1], means serial evaluation. *)

type table1 = {
  t1_pressure_orig : int;
  t1_pressure_int : int;
  t1_pressure_float : int;
  t1_pressure_both : int;
  t1_occupancy_orig : float;
  t1_occupancy_both : float;
  t1_ipc_orig : float;
  t1_ipc_proposed : float;
  t1_ipc_artificial : float;
}

val table1_data : unit -> table1
val print_table1 : unit -> unit

val print_table2 : unit -> unit
val print_table3 : unit -> unit

type table4_row = {
  t4_name : string;
  t4_metric : string;
  t4_paper_regs : int;
  t4_measured_regs : int;
  t4_warps_per_block : int;
  t4_group : int;
}

val table4_data : unit -> table4_row list
val print_table4 : unit -> unit

val print_fig8 : unit -> unit

type width_row = {
  wr_name : string;
  wr_int_vars : int;
  wr_interval_narrow : int;
  wr_product_narrow : int;
  wr_bits_saved : int;
}

val width_report_data : unit -> width_row list
(** Per registry kernel: integer-variable count, how many are narrow
    (< 32 bits) under intervals alone vs under the
    {!Gpr_analysis.Width} reduced product, and the total bits saved. *)

val print_width_report : unit -> unit
(** The range-analysis worked example. *)

type fig9_row = {
  f9_name : string;
  f9_original : int;
  f9_int_only : int;
  f9_float_perfect : int;
  f9_float_high : int;
  f9_both_perfect : int;
  f9_both_high : int;
}

val fig9_data : unit -> fig9_row list
val print_fig9 : unit -> unit

type fig10_row = {
  f10_name : string;
  f10_blocks_orig : int;
  f10_blocks_perfect : int;
  f10_blocks_high : int;
  f10_limiter_high : string;
}

val fig10_data : unit -> fig10_row list
val print_fig10 : unit -> unit

type fig11_row = {
  f11_name : string;
  f11_ipc_base : float;
  f11_ipc_perfect : float;
  f11_ipc_high : float;
  f11_incr_perfect_pct : float;
  f11_incr_high_pct : float;
}

val fig11_data : unit -> fig11_row list
val fig11_geomeans : fig11_row list -> float * float
val print_fig11 : unit -> unit

type fig12_row = { f12_name : string; f12_ipc_by_delay : (int * float) list }

val fig12_delays : int list
val fig12_data : unit -> fig12_row list
val print_fig12 : unit -> unit

type backend_row = {
  b_kernel : string;
  b_backend : string;
  b_regs : int;               (** register pressure under the scheme *)
  b_spill_bytes : int;        (** shared spill bytes per thread *)
  b_blocks : int;
  b_occupancy : float;
  b_ipc : float;
  b_ipc_vs_baseline_pct : float;
  b_stalls : Gpr_obs.Stall.breakdown;
      (** per-slot issue/stall attribution of the scheme's simulation *)
}

val backend_comparison :
  ?names:string list -> Gpr_backend.Backend.t list -> backend_row list
(** One row per (kernel, scheme), kernels outermost.  [names] restricts
    the kernel set (default: the whole registry); unknown names fail.
    Schemes that consume a precision assignment use the high
    threshold. *)

val print_backend_comparison :
  ?names:string list -> Gpr_backend.Backend.t list -> unit

type pareto_row = {
  p_scheme : string;
  p_ipc_geomean_pct : float;
      (** geomean IPC change vs the conventional file, over the registry *)
  p_area_fraction : float;  (** scheme hardware overhead, chip fraction *)
  p_energy_nj : float;      (** mean register-file energy per kernel run *)
  p_edp : float;            (** mean energy-delay product *)
  p_gated_pct : float;      (** mean GREENER-gated capacity share *)
  p_fault_absorbed : float option;
      (** mean faults absorbed before first corruption, when a
          fault-injection campaign ran *)
}

val pareto_data :
  ?fault_coverage:(string * float) list ->
  Gpr_backend.Backend.t list ->
  pareto_row list
(** One row per scheme: IPC aggregated with {!Gpr_util.Stats.geomean_ratio}
    over the whole kernel registry, energy figures averaged from
    {!Simulate.backend_energy} at the high threshold, area from the
    scheme's own estimate.  [fault_coverage] maps scheme ids to the
    mean absorbed-fault counts of a fault-injection campaign (typically
    from [gpr check --faults]); schemes without an entry render "-". *)

val print_pareto :
  ?fault_coverage:(string * float) list -> Gpr_backend.Backend.t list -> unit

val print_area : unit -> unit
(** Sec. 6.4 area overhead. *)

val print_power : unit -> unit
(** Sec. 6.5 power overhead. *)

val print_volta : unit -> unit
(** Sec. 7 Volta scaling. *)

val print_ablation_scheduler : unit -> unit
(** GTO vs LRR warp scheduling. *)

val print_ablation_banks : unit -> unit
(** Register/indirection bank-count sweep. *)

val print_ablation_split : unit -> unit
(** Split placements vs fragmentation. *)

val print_volta_sim : unit -> unit
(** The proposed register file simulated on the Volta configuration. *)

val print_ablations : unit -> unit

val print_all : unit -> unit
(** The full reproduction, in paper order, plus the ablations. *)
