open Gpr_workloads
module Q = Gpr_quality.Quality
module P = Gpr_precision.Precision
module Alloc = Gpr_alloc.Alloc

type per_threshold = {
  assignment : P.assignment;
  achieved_score : Q.score;
  alloc_float_only : Alloc.t;
  alloc_both : Alloc.t;
}

type t = {
  w : Workload.t;
  fingerprint : Gpr_engine.Fingerprint.t;
  reference : float array;
  width : Gpr_analysis.Width.t;
  range : Gpr_analysis.Range.t;
  baseline : Alloc.t;
  int_only : Alloc.t;
  perfect : per_threshold;
  high : per_threshold;
}

(* The width policy lives with the slice scheme in [Gpr_backend] now;
   this alias keeps the historical entry point for the ablation sweeps
   and external callers. *)
let width_fn = Gpr_backend.Backend_slice.width_fn

(* Tuning cost scales with the site count; large kernels get coarser
   groups and a bounded evaluation budget (both knobs of the original
   framework, Sec. 4.1). *)
let tuning_knobs sites =
  let n = List.length sites in
  let min_group = if n > 96 then 8 else if n > 48 then 4 else 1 in
  let budget = if n > 96 then 200 else 140 in
  (min_group, budget)

let tune_threshold (w : Workload.t) ~reference ~width threshold =
  let sites = Workload.float_sites w in
  let min_group, budget = tuning_knobs sites in
  let evaluate ~quantize = Workload.evaluate w ~reference ~quantize in
  let assignment =
    P.tune ~min_group ~budget ~sites ~evaluate ~threshold ()
  in
  let achieved_score =
    Workload.evaluate w ~reference ~quantize:(P.quantizer assignment)
  in
  let alloc_float_only =
    Alloc.run w.kernel
      ~width_of:(width_fn ~narrow_ints:false ~narrow_floats:(Some assignment) ~width)
  in
  let alloc_both =
    Alloc.run w.kernel
      ~width_of:(width_fn ~narrow_ints:true ~narrow_floats:(Some assignment) ~width)
  in
  { assignment; achieved_score; alloc_float_only; alloc_both }

(* Memoisation is keyed by content fingerprint, not by workload name:
   two distinct kernels sharing a name must not return each other's
   results (they used to — see the regression test in test_core).  The
   table is mutex-guarded so engine worker domains can share it; the
   expensive computation runs outside the lock, so two domains racing
   on the same fingerprint may both compute, but they store identical
   values (the whole pipeline is deterministic). *)
let cache : (string, t) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()

let store : Gpr_engine.Store.t option ref = ref None
let set_store s = store := s

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

let fingerprint (w : Workload.t) = Gpr_engine.Fingerprint.workload w

(* The workload record holds closures (its input generator), so the
   on-disk store persists only the computed, closure-free part. *)
type stored = {
  s_reference : float array;
  s_width : Gpr_analysis.Width.t;
  s_baseline : Alloc.t;
  s_int_only : Alloc.t;
  s_perfect : per_threshold;
  s_high : per_threshold;
}

let compute (w : Workload.t) =
  let reference = Workload.reference w in
  let width = Gpr_analysis.Width.analyze w.kernel ~launch:w.launch in
  let baseline = Alloc.baseline w.kernel in
  let int_only =
    Alloc.run w.kernel
      ~width_of:(width_fn ~narrow_ints:true ~narrow_floats:None ~width)
  in
  let perfect = tune_threshold w ~reference ~width Q.Perfect in
  let high = tune_threshold w ~reference ~width Q.High in
  { s_reference = reference; s_width = width; s_baseline = baseline;
    s_int_only = int_only; s_perfect = perfect; s_high = high }

let analyze (w : Workload.t) =
  let fp = fingerprint w in
  let key = Gpr_engine.Fingerprint.to_hex fp in
  Mutex.lock cache_mutex;
  let cached = Hashtbl.find_opt cache key in
  Mutex.unlock cache_mutex;
  match cached with
  | Some t -> t
  | None ->
    let s =
      Gpr_engine.Store.memoize !store ~kind:"analyze" ~key:fp (fun () ->
          compute w)
    in
    let t =
      { w; fingerprint = fp; reference = s.s_reference; width = s.s_width;
        range = s.s_width.Gpr_analysis.Width.range;
        baseline = s.s_baseline; int_only = s.s_int_only;
        perfect = s.s_perfect; high = s.s_high }
    in
    Mutex.lock cache_mutex;
    Hashtbl.replace cache key t;
    Mutex.unlock cache_mutex;
    t

let threshold_data t = function
  | Q.Perfect -> t.perfect
  | Q.High -> t.high

let occupancy t (alloc : Alloc.t) =
  Gpr_backend.Backend.occupancy Gpr_arch.Config.fermi_gtx480
    (Gpr_backend.Backend.plain_resources alloc)
    ~warps_per_block:(Workload.warps_per_block t.w)
    ~shared_bytes_per_block:(Workload.shared_bytes_per_block t.w)
