(** Load generator for the serve daemon ([gpr bench --serve]).

    Builds a deterministic mixed request stream (kernels x backends x
    verbs, with a configurable fraction of exact duplicates), replays
    it from [concurrency] closed-loop client connections (one domain
    each), and reports exact p50/p99 latency, throughput, reject and
    cache-hit rates plus the server's own [stats] snapshot, optionally
    written to BENCH_serve.json.

    Unless [attach] is set it spawns the daemon itself (re-executing
    the running binary with the [serve] verb), and at the end sends it
    SIGTERM and asserts the graceful-shutdown contract: exit status 0
    and the socket file removed. *)

type cfg = {
  socket : string;
  attach : bool;           (** use an already-running daemon at [socket] *)
  daemon_jobs : int;       (** spawned daemon: worker count *)
  queue_depth : int;       (** spawned daemon: admission-control depth *)
  deadline_ms : int;       (** per-request deadline in the stream *)
  cache_dir : string option;  (** forwarded to the spawned daemon *)
  requests : int;
  concurrency : int;
  duplicate_ratio : float; (** fraction of requests that repeat a hot key *)
  kernels : string list;
  backends : string list;
  verbs : string list;     (** drawn from plan/lint/estimate/profile *)
  seed : int;
  out : string option;     (** write BENCH_serve.json here *)
  verify : bool;
      (** recompute every distinct payload in-process through {!Work.run}
          and require byte-identical serve results *)
}

val default_cfg : cfg

type summary = {
  ok : int;
  rejected : int;            (** typed [overloaded] responses *)
  deadline_exceeded : int;
  errors : int;              (** transport or unexpected protocol errors *)
  error_samples : string list;
  wall_seconds : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  cache_hit_rate : float;
      (** (cache hits + coalesced) / keyed requests, from server stats *)
  verified : bool option;    (** None when [verify] is off *)
  shutdown_clean : bool option;  (** None when [attach] *)
  server_stats : Gpr_obs.Json.t;
}

val run : cfg -> (summary, string) result
(** Fails on setup problems (daemon did not come up, connect failures);
    per-request failures are counted in the summary instead. *)

val summary_to_json : cfg -> summary -> Gpr_obs.Json.t
