module J = Gpr_obs.Json
module P = Protocol
module Pool = Gpr_engine.Pool
module Metrics = Gpr_obs.Metrics

type config = {
  workers : int;
  queue_depth : int;
  default_deadline_ms : int;
  max_frame_bytes : int;
  store : Gpr_engine.Store.t option;
  debug_sleep : bool;
}

let default_config =
  {
    workers = 4;
    queue_depth = 64;
    default_deadline_ms = 30_000;
    max_frame_bytes = P.max_frame_default;
    store = None;
    debug_sleep = false;
  }

(* ---------------- metrics ---------------- *)

let m_received = Metrics.counter "serve.received"
let m_enqueued = Metrics.counter "serve.enqueued"
let m_completed = Metrics.counter "serve.completed"
let m_rejected = Metrics.counter "serve.rejected.overloaded"
let m_deadline = Metrics.counter "serve.deadline_exceeded"
let m_cache_hits = Metrics.counter "serve.cache.hits"
let m_coalesced = Metrics.counter "serve.coalesced"
let m_internal = Metrics.counter "serve.errors.internal"

let h_latency =
  Metrics.histogram
    ~buckets:
      [ 100; 300; 1_000; 3_000; 10_000; 30_000; 100_000; 300_000; 1_000_000;
        3_000_000 ]
    "serve.latency_us"

let h_qdepth =
  Metrics.histogram ~buckets:[ 0; 1; 2; 4; 8; 16; 32; 64; 128 ]
    "serve.queue.depth"

(* ---------------- state ---------------- *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  dec : P.decoder;
  outbuf : Buffer.t;
  mutable out_off : int;
  mutable closing : bool;  (* close once the output buffer drains *)
  mutable alive : bool;
}

type waiter = {
  w_cid : int;
  w_rid : int;
  w_deadline : float;  (* absolute, Unix.gettimeofday base *)
  w_arrival : float;
}

type entry = {
  e_key : string;
  e_work : Work.t;
  e_cacheable : bool;
  mutable e_waiters : waiter list;
}

type t = {
  cfg : config;
  pool : Pool.t;
  stop_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  adopt_m : Mutex.t;
  mutable adopt_fds : Unix.file_descr list;
  comp_m : Mutex.t;
  completions : (string * (J.t, P.error) result) Queue.t;
  mutable conns : conn list;
  mutable listen_fd : Unix.file_descr option;
  mutable socket_path : string option;
  queue : entry Queue.t;
  queued_keys : (string, entry) Hashtbl.t;
  inflight : (string, entry) Hashtbl.t;
  mutable inflight_n : int;
  cache : (string, J.t) Hashtbl.t;
  cache_order : string Queue.t;
  mutable next_cid : int;
  started : float;
  (* plain counters mirroring the metrics (metrics may be disabled) *)
  mutable n_received : int;
  mutable n_enqueued : int;
  mutable n_completed : int;
  mutable n_rejected : int;
  mutable n_deadline : int;
  mutable n_cache_hits : int;
  mutable n_coalesced : int;
  mutable n_internal : int;
  mutable n_protocol_errors : int;
}

let cache_cap = 4096

let create cfg =
  let cfg = { cfg with workers = max 1 cfg.workers } in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_w;
  Unix.set_nonblock wake_r;
  {
    cfg;
    (* +1: the IO domain holds the submitting slot and never runs work
       inline, so [workers] real worker domains serve the queue. *)
    pool = Pool.create ~jobs:(cfg.workers + 1);
    stop_flag = Atomic.make false;
    wake_r;
    wake_w;
    adopt_m = Mutex.create ();
    adopt_fds = [];
    comp_m = Mutex.create ();
    completions = Queue.create ();
    conns = [];
    listen_fd = None;
    socket_path = None;
    queue = Queue.create ();
    queued_keys = Hashtbl.create 64;
    inflight = Hashtbl.create 16;
    inflight_n = 0;
    cache = Hashtbl.create 256;
    cache_order = Queue.create ();
    next_cid = 0;
    started = Unix.gettimeofday ();
    n_received = 0;
    n_enqueued = 0;
    n_completed = 0;
    n_rejected = 0;
    n_deadline = 0;
    n_cache_hits = 0;
    n_coalesced = 0;
    n_internal = 0;
    n_protocol_errors = 0;
  }

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 'w') 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
    -> ()

let stop t =
  Atomic.set t.stop_flag true;
  wake t

let attach t fd =
  Mutex.lock t.adopt_m;
  t.adopt_fds <- fd :: t.adopt_fds;
  Mutex.unlock t.adopt_m;
  wake t

let install_signal_handlers t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop t));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t))

let received t = t.n_received
let completed t = t.n_completed
let rejected_overloaded t = t.n_rejected
let deadline_expired t = t.n_deadline
let cache_hits t = t.n_cache_hits
let coalesced t = t.n_coalesced

(* ---------------- connection output ---------------- *)

let conn_flushed c = c.out_off >= Buffer.length c.outbuf

let try_flush c =
  if c.alive && not (conn_flushed c) then begin
    let b = Buffer.to_bytes c.outbuf in
    let len = Bytes.length b - c.out_off in
    match Unix.write c.fd b c.out_off len with
    | n ->
      c.out_off <- c.out_off + n;
      if conn_flushed c then begin
        Buffer.clear c.outbuf;
        c.out_off <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> c.alive <- false
  end

let send_response t c (resp : P.response) =
  ignore t;
  if c.alive then begin
    Buffer.add_bytes c.outbuf
      (P.encode_frame (J.to_string (P.response_to_json resp)));
    try_flush c
  end

let find_conn t cid = List.find_opt (fun c -> c.alive && c.cid = cid) t.conns

let respond_err t c rid code msg =
  send_response t c
    { P.s_id = rid; s_result = Error { P.e_code = code; e_message = msg } }

let observe_latency w =
  Metrics.observe h_latency
    (int_of_float ((Unix.gettimeofday () -. w.w_arrival) *. 1e6))

let respond_waiter_ok t w payload =
  t.n_completed <- t.n_completed + 1;
  Metrics.incr m_completed;
  observe_latency w;
  match find_conn t w.w_cid with
  | None -> ()  (* client went away; nothing to deliver *)
  | Some c -> send_response t c { P.s_id = w.w_rid; s_result = Ok payload }

let respond_waiter_err t w (err : P.error) =
  (match err.P.e_code with
  | P.Deadline_exceeded ->
    t.n_deadline <- t.n_deadline + 1;
    Metrics.incr m_deadline
  | _ ->
    t.n_internal <- t.n_internal + 1;
    Metrics.incr m_internal);
  observe_latency w;
  match find_conn t w.w_cid with
  | None -> ()
  | Some c -> send_response t c { P.s_id = w.w_rid; s_result = Error err }

(* ---------------- response cache ---------------- *)

let cache_add t key payload =
  if not (Hashtbl.mem t.cache key) then begin
    if Hashtbl.length t.cache >= cache_cap then begin
      match Queue.take_opt t.cache_order with
      | Some old -> Hashtbl.remove t.cache old
      | None -> ()
    end;
    Hashtbl.replace t.cache key payload;
    Queue.add key t.cache_order
  end

(* ---------------- stats verb ---------------- *)

let round3 f = Float.round (f *. 1000.0) /. 1000.0

let stats_payload t =
  J.Obj
    [
      ("uptime_seconds", J.Float (round3 (Unix.gettimeofday () -. t.started)));
      ("workers", J.Int t.cfg.workers);
      ("queue_limit", J.Int t.cfg.queue_depth);
      ("queue_depth", J.Int (Queue.length t.queue));
      ("in_flight", J.Int t.inflight_n);
      ("connections", J.Int (List.length t.conns));
      ("received", J.Int t.n_received);
      ("enqueued", J.Int t.n_enqueued);
      ("completed", J.Int t.n_completed);
      ("cache_hits", J.Int t.n_cache_hits);
      ("coalesced", J.Int t.n_coalesced);
      ("rejected_overloaded", J.Int t.n_rejected);
      ("deadline_exceeded", J.Int t.n_deadline);
      ("internal_errors", J.Int t.n_internal);
      ("protocol_errors", J.Int t.n_protocol_errors);
      ("cache_entries", J.Int (Hashtbl.length t.cache));
      ( "store",
        match t.cfg.store with
        | None -> J.Null
        | Some s ->
          J.Obj
            [
              ("hits", J.Int (Gpr_engine.Store.hits s));
              ("misses", J.Int (Gpr_engine.Store.misses s));
            ] );
      ("metrics", Metrics.to_json ());
    ]

(* ---------------- request admission ---------------- *)

let handle_request t c (req : P.request) =
  t.n_received <- t.n_received + 1;
  Metrics.incr m_received;
  if req.P.q_verb = "stats" then
    send_response t c { P.s_id = req.P.q_id; s_result = Ok (stats_payload t) }
  else if Atomic.get t.stop_flag then
    respond_err t c req.P.q_id P.Shutting_down "daemon is draining"
  else if req.P.q_verb = "sleep" && not t.cfg.debug_sleep then
    respond_err t c req.P.q_id P.Bad_request
      "the sleep verb is disabled (start the server with debug_sleep)"
  else
    match Work.resolve req with
    | Error e -> respond_err t c req.P.q_id e.P.e_code e.P.e_message
    | Ok Work.Ping ->
      send_response t c
        { P.s_id = req.P.q_id; s_result = Ok (Work.run Work.Ping) }
    | Ok work ->
      let key =
        Work.key work ^ if req.P.q_tag = "" then "" else "#" ^ req.P.q_tag
      in
      let now = Unix.gettimeofday () in
      let deadline_ms =
        Option.value req.P.q_deadline_ms ~default:t.cfg.default_deadline_ms
      in
      let w =
        {
          w_cid = c.cid;
          w_rid = req.P.q_id;
          w_deadline = now +. (float_of_int deadline_ms /. 1000.0);
          w_arrival = now;
        }
      in
      let cacheable = Work.cacheable work in
      let cached = if cacheable then Hashtbl.find_opt t.cache key else None in
      (match cached with
      | Some payload ->
        t.n_cache_hits <- t.n_cache_hits + 1;
        Metrics.incr m_cache_hits;
        respond_waiter_ok t w payload
      | None -> (
        let join (e : entry) =
          e.e_waiters <- w :: e.e_waiters;
          t.n_coalesced <- t.n_coalesced + 1;
          Metrics.incr m_coalesced
        in
        match Hashtbl.find_opt t.inflight key with
        | Some e -> join e
        | None -> (
          match Hashtbl.find_opt t.queued_keys key with
          | Some e -> join e
          | None ->
            if Queue.length t.queue >= t.cfg.queue_depth then begin
              t.n_rejected <- t.n_rejected + 1;
              Metrics.incr m_rejected;
              respond_err t c req.P.q_id P.Overloaded
                (Printf.sprintf "request queue full (depth %d)"
                   t.cfg.queue_depth)
            end
            else begin
              let e =
                { e_key = key; e_work = work; e_cacheable = cacheable;
                  e_waiters = [ w ] }
              in
              Queue.add e t.queue;
              Hashtbl.replace t.queued_keys key e;
              t.n_enqueued <- t.n_enqueued + 1;
              Metrics.incr m_enqueued;
              Metrics.observe h_qdepth (Queue.length t.queue)
            end)))

let handle_frame t c frame =
  match J.parse frame with
  | Error e ->
    t.n_protocol_errors <- t.n_protocol_errors + 1;
    respond_err t c 0 P.Parse_error e
  | Ok j -> (
    match P.request_of_json j with
    | Error m ->
      t.n_protocol_errors <- t.n_protocol_errors + 1;
      let rid = match J.member "id" j with Some (J.Int n) when n > 0 -> n | _ -> 0 in
      respond_err t c rid P.Bad_request m
    | Ok req -> handle_request t c req)

(* ---------------- queue machinery ---------------- *)

let expire_entry_waiters t now (e : entry) =
  let live, dead =
    List.partition (fun w -> w.w_deadline >= now) e.e_waiters
  in
  if dead <> [] then begin
    List.iter
      (fun w ->
        respond_waiter_err t w
          { P.e_code = P.Deadline_exceeded;
            e_message = "deadline expired while queued" })
      dead;
    e.e_waiters <- live
  end

let expire_queue t =
  let now = Unix.gettimeofday () in
  let had_waiters = Queue.fold (fun acc e -> acc + List.length e.e_waiters) 0 t.queue in
  Queue.iter (expire_entry_waiters t now) t.queue;
  let still = Queue.fold (fun acc e -> acc + List.length e.e_waiters) 0 t.queue in
  if still < had_waiters then begin
    (* Drop entries whose waiters all expired. *)
    let keep =
      Queue.fold
        (fun acc e ->
          if e.e_waiters = [] then begin
            Hashtbl.remove t.queued_keys e.e_key;
            acc
          end
          else e :: acc)
        [] t.queue
    in
    Queue.clear t.queue;
    List.iter (fun e -> Queue.add e t.queue) (List.rev keep)
  end

let submit_entry t (e : entry) =
  Hashtbl.replace t.inflight e.e_key e;
  t.inflight_n <- t.inflight_n + 1;
  let deadline =
    List.fold_left (fun a w -> Float.max a w.w_deadline) neg_infinity
      e.e_waiters
  in
  let key = e.e_key and work = e.e_work in
  ignore
    (Pool.submit t.pool (fun () ->
         let check () =
           if Unix.gettimeofday () > deadline then raise Work.Deadline
         in
         let r =
           try Ok (Work.run ~check work) with
           | Work.Deadline ->
             Error
               { P.e_code = P.Deadline_exceeded;
                 e_message = "deadline expired mid-pipeline" }
           | exn ->
             Error { P.e_code = P.Internal; e_message = Printexc.to_string exn }
         in
         Mutex.lock t.comp_m;
         Queue.add (key, r) t.completions;
         Mutex.unlock t.comp_m;
         wake t))

let dispatch t =
  while t.inflight_n < t.cfg.workers && not (Queue.is_empty t.queue) do
    let e = Queue.pop t.queue in
    Hashtbl.remove t.queued_keys e.e_key;
    (* Deadline enforcement at dequeue: anyone already expired is
       answered here without costing a worker. *)
    expire_entry_waiters t (Unix.gettimeofday ()) e;
    if e.e_waiters <> [] then submit_entry t e
  done

let drain_completions t =
  let batch =
    Mutex.lock t.comp_m;
    let xs = List.of_seq (Queue.to_seq t.completions) in
    Queue.clear t.completions;
    Mutex.unlock t.comp_m;
    xs
  in
  List.iter
    (fun (key, r) ->
      match Hashtbl.find_opt t.inflight key with
      | None -> ()
      | Some e ->
        Hashtbl.remove t.inflight key;
        t.inflight_n <- t.inflight_n - 1;
        (match r with
        | Ok payload ->
          if e.e_cacheable then cache_add t key payload;
          List.iter (fun w -> respond_waiter_ok t w payload) e.e_waiters
        | Error err ->
          List.iter (fun w -> respond_waiter_err t w err) e.e_waiters))
    batch

(* ---------------- sockets ---------------- *)

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let open_listener t path =
  (if Sys.file_exists path then
     match (Unix.stat path).Unix.st_kind with
     | Unix.S_SOCK -> unlink_quiet path
     | _ ->
       invalid_arg
         (Printf.sprintf "gpr serve: %s exists and is not a socket" path));
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  t.listen_fd <- Some fd;
  t.socket_path <- Some path

let close_listener t =
  match t.listen_fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.listen_fd <- None;
    (match t.socket_path with
    | Some p -> unlink_quiet p
    | None -> ())

let new_conn t fd =
  Unix.set_nonblock fd;
  t.next_cid <- t.next_cid + 1;
  let c =
    {
      fd;
      cid = t.next_cid;
      dec = P.decoder ~max_bytes:t.cfg.max_frame_bytes;
      outbuf = Buffer.create 4096;
      out_off = 0;
      closing = false;
      alive = true;
    }
  in
  t.conns <- c :: t.conns

let adopt_pending t =
  let fds =
    Mutex.lock t.adopt_m;
    let fds = t.adopt_fds in
    t.adopt_fds <- [];
    Mutex.unlock t.adopt_m;
    fds
  in
  List.iter (new_conn t) (List.rev fds)

let accept_all t fd =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true fd with
    | cfd, _ -> new_conn t cfd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

let read_conn t c =
  let chunk = Bytes.create 8192 in
  let rec frames () =
    match P.next c.dec with
    | `Frame f ->
      handle_frame t c f;
      frames ()
    | `Await -> ()
    | `Oversized n ->
      (* The length prefix cannot be resynchronised; answer and close. *)
      t.n_protocol_errors <- t.n_protocol_errors + 1;
      respond_err t c 0 P.Oversized_frame
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
           t.cfg.max_frame_bytes);
      c.closing <- true
  in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> c.alive <- false
  | n ->
    P.feed c.dec chunk n;
    frames ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> c.alive <- false

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let prune_conns t =
  let close c =
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let keep, drop =
    List.partition
      (fun c -> c.alive && not (c.closing && conn_flushed c))
      t.conns
  in
  List.iter close drop;
  t.conns <- keep

(* ---------------- main loop ---------------- *)

let nearest_queue_deadline t =
  Queue.fold
    (fun acc e ->
      List.fold_left (fun a w -> Float.min a w.w_deadline) acc e.e_waiters)
    infinity t.queue

let drained t =
  Atomic.get t.stop_flag
  && Queue.is_empty t.queue && t.inflight_n = 0
  && (Mutex.lock t.comp_m;
      let e = Queue.is_empty t.completions in
      Mutex.unlock t.comp_m;
      e)
  && List.for_all (fun c -> (not c.alive) || conn_flushed c) t.conns

let rec loop t =
  adopt_pending t;
  drain_completions t;
  expire_queue t;
  dispatch t;
  if Atomic.get t.stop_flag then close_listener t;
  prune_conns t;
  if drained t then ()
  else begin
    let now = Unix.gettimeofday () in
    let timeout =
      let dl = nearest_queue_deadline t in
      if dl = infinity then 0.2 else Float.max 0.001 (Float.min 0.2 (dl -. now))
    in
    let rd =
      (t.wake_r :: Option.to_list t.listen_fd)
      @ List.filter_map
          (fun c -> if c.alive && not c.closing then Some c.fd else None)
          t.conns
    in
    let wr =
      List.filter_map
        (fun c -> if c.alive && not (conn_flushed c) then Some c.fd else None)
        t.conns
    in
    (match Unix.select rd wr [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rs, ws, _ ->
      List.iter
        (fun fd ->
          if fd = t.wake_r then drain_wake t
          else if Some fd = t.listen_fd then accept_all t fd
          else
            match List.find_opt (fun c -> c.fd = fd) t.conns with
            | Some c when c.alive -> read_conn t c
            | _ -> ())
        rs;
      List.iter
        (fun fd ->
          match List.find_opt (fun c -> c.fd = fd) t.conns with
          | Some c -> try_flush c
          | None -> ())
        ws);
    loop t
  end

let run ?socket t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match socket with Some path -> open_listener t path | None -> ());
  Fun.protect
    ~finally:(fun () ->
      close_listener t;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        t.conns;
      t.conns <- [];
      Pool.shutdown t.pool;
      (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
      try Unix.close t.wake_w with Unix.Unix_error _ -> ())
    (fun () -> loop t)
