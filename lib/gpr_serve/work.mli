(** Request verbs of the serve pipeline, resolved to concrete work items
    and executed.

    Every handler calls exactly the functions the one-shot CLI verbs
    call ({!Gpr_core.Compress.analyze}, {!Gpr_core.Simulate.baseline} /
    [backend_resources] / [backend_occupancy] / [backend],
    {!Gpr_lint.Lint.lint}) so a payload served by the daemon is
    byte-identical to what the same pipeline produces in-process — the
    [gpr bench --serve --verify] invariant.

    Work items are pure functions of their {!key}; the server uses the
    key both to coalesce duplicate in-flight requests and to cache
    completed payloads. *)

exception Deadline
(** Raised by the [check] hook between pipeline stages when the
    request's deadline has passed. *)

type t =
  | Ping
  | Sleep of int  (** milliseconds; load tests only, gated by the server *)
  | Plan_registry of Gpr_workloads.Workload.t
  | Plan_inline of Gpr_isa.Types.kernel * Gpr_isa.Types.launch
  | Lint_registry of Gpr_workloads.Workload.t
  | Lint_inline of Gpr_isa.Types.kernel * Gpr_isa.Types.launch
  | Estimate of Gpr_workloads.Workload.t * Gpr_backend.Backend.t
  | Profile of Gpr_workloads.Workload.t * Gpr_backend.Backend.t
  | Colocate of
      Gpr_workloads.Workload.t list
      * Gpr_backend.Backend.t
      * (module Gpr_sim.Sim_multi.POLICY)
      (** co-schedule a kernel set on one SM ({!Gpr_core.Simulate.colocate});
          the request names the set as a comma-separated ["kernel"]
          field and the dispatch policy as ["policy"] (default fifo) *)

val resolve : Protocol.request -> (t, Protocol.error) result
(** Map a request onto a work item.  Unknown kernel / backend names
    return the typed [unknown_kernel] / [unknown_backend] errors (with
    the same "try [gpr list]" guidance the CLI prints); an unknown
    colocate policy returns [bad_request] with the "try
    [--policy fifo|rr|binpack]" guidance; structural
    problems (missing kernel, unparseable inline source, estimate on an
    inline kernel) return [bad_request].  Never raises. *)

val key : t -> string
(** Stable coalescing/caching key: verb tag plus the content
    fingerprints of everything that determines the payload.  The
    request's [tag] field is appended by the server. *)

val cacheable : t -> bool
(** Whether a completed payload may be served to later requests with
    the same key ([Sleep] is not: it exists to occupy a worker). *)

val run : ?check:(unit -> unit) -> t -> Gpr_obs.Json.t
(** Execute the work item; [check] is called between pipeline stages
    and may raise {!Deadline}. *)

val buffer_len_of_workload :
  Gpr_workloads.Workload.t -> string -> int option
(** Buffer-length oracle handed to the linter — the same one the CLI's
    [gpr lint] builds. *)
