module J = Gpr_obs.Json
module P = Protocol
module Rng = Gpr_util.Rng
module Stats = Gpr_util.Stats

type cfg = {
  socket : string;
  attach : bool;
  daemon_jobs : int;
  queue_depth : int;
  deadline_ms : int;
  cache_dir : string option;
  requests : int;
  concurrency : int;
  duplicate_ratio : float;
  kernels : string list;
  backends : string list;
  verbs : string list;
  seed : int;
  out : string option;
  verify : bool;
}

let default_cfg =
  {
    socket = "";
    attach = false;
    daemon_jobs = 4;
    queue_depth = 64;
    deadline_ms = 30_000;
    cache_dir = None;
    requests = 1000;
    concurrency = 8;
    duplicate_ratio = 0.8;
    kernels = [ "Hotspot"; "DWT2D" ];
    backends = [ "baseline"; "slice"; "spill" ];
    verbs = [ "estimate"; "plan"; "lint"; "profile" ];
    seed = 1;
    out = None;
    verify = false;
  }

type summary = {
  ok : int;
  rejected : int;
  deadline_exceeded : int;
  errors : int;
  error_samples : string list;
  wall_seconds : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  cache_hit_rate : float;
  verified : bool option;
  shutdown_clean : bool option;
  server_stats : J.t;
}

(* ---------------- request stream ---------------- *)

(* A template is a request sans id/tag; duplicates share a template and
   an empty tag (one hot key), unique requests get a per-index tag so
   they can never be served from the response cache. *)
let templates cfg =
  List.concat_map
    (fun verb ->
      match verb with
      | "estimate" | "profile" ->
        List.concat_map
          (fun k ->
            List.map
              (fun b -> P.request ~id:1 ~kernel:k ~backend:b verb)
              cfg.backends)
          cfg.kernels
      | "plan" | "lint" ->
        List.map (fun k -> P.request ~id:1 ~kernel:k verb) cfg.kernels
      | other -> invalid_arg ("gpr bench --serve: unsupported verb " ^ other))
    cfg.verbs

let stream cfg =
  let ts = Array.of_list (templates cfg) in
  if Array.length ts = 0 then
    invalid_arg "gpr bench --serve: empty kernel/backend/verb mix";
  let rng = Rng.create (if cfg.seed = 0 then 1 else cfg.seed) in
  List.init cfg.requests (fun i ->
      let t = ts.(Rng.int rng (Array.length ts)) in
      let tag =
        if Rng.uniform rng < cfg.duplicate_ratio then ""
        else Printf.sprintf "u%d" i
      in
      { t with P.q_id = i + 1; q_tag = tag;
               q_deadline_ms = Some cfg.deadline_ms })

(* ---------------- per-client replay ---------------- *)

type client_result = {
  mutable c_ok : int;
  mutable c_rejected : int;
  mutable c_deadline : int;
  mutable c_errors : int;
  mutable c_error_samples : string list;
  mutable c_latencies_ms : float list;
  c_payloads : (string, string) Hashtbl.t;
      (* key -> first payload seen; duplicates must match byte for byte *)
  mutable c_mismatch : string option;
}

let request_key (r : P.request) =
  (* Mirrors the server's keying: Work.key of the resolved work plus the
     tag.  Resolution cannot fail here: templates only name registry
     kernels and registered backends. *)
  match Work.resolve r with
  | Ok w -> Work.key w ^ (if r.P.q_tag = "" then "" else "#" ^ r.P.q_tag)
  | Error e -> invalid_arg ("gpr bench --serve: " ^ e.P.e_message)

let run_client ~socket ~timeout_s reqs =
  let res =
    {
      c_ok = 0;
      c_rejected = 0;
      c_deadline = 0;
      c_errors = 0;
      c_error_samples = [];
      c_latencies_ms = [];
      c_payloads = Hashtbl.create 64;
      c_mismatch = None;
    }
  in
  let fail msg =
    res.c_errors <- res.c_errors + 1;
    if List.length res.c_error_samples < 5 then
      res.c_error_samples <- msg :: res.c_error_samples
  in
  match Client.connect ~retries:250 socket with
  | Error m ->
    fail m;
    res
  | Ok cl ->
    List.iter
      (fun (req : P.request) ->
        let t0 = Unix.gettimeofday () in
        match Client.call ~timeout_s cl req with
        | Error m -> fail (Printf.sprintf "id %d: %s" req.P.q_id m)
        | Ok resp ->
          let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
          if resp.P.s_id <> req.P.q_id then
            fail
              (Printf.sprintf "id mismatch: sent %d, got %d" req.P.q_id
                 resp.P.s_id)
          else (
            res.c_latencies_ms <- dt :: res.c_latencies_ms;
            match resp.P.s_result with
            | Ok payload ->
              res.c_ok <- res.c_ok + 1;
              let key = request_key req in
              let bytes = J.to_string payload in
              (match Hashtbl.find_opt res.c_payloads key with
              | None -> Hashtbl.replace res.c_payloads key bytes
              | Some prev ->
                if prev <> bytes && res.c_mismatch = None then
                  res.c_mismatch <-
                    Some
                      (Printf.sprintf
                         "duplicate responses for %s differ (%d vs %d bytes)"
                         key (String.length prev) (String.length bytes)))
            | Error { P.e_code = P.Overloaded; _ } ->
              res.c_rejected <- res.c_rejected + 1
            | Error { P.e_code = P.Deadline_exceeded; _ } ->
              res.c_deadline <- res.c_deadline + 1
            | Error e ->
              fail
                (Printf.sprintf "id %d: %s: %s" req.P.q_id
                   (P.code_to_string e.P.e_code)
                   e.P.e_message)))
      reqs;
    Client.close cl;
    res

(* ---------------- daemon lifecycle ---------------- *)

let spawn_daemon cfg =
  let args =
    [
      "serve"; "--socket"; cfg.socket;
      "-j"; string_of_int cfg.daemon_jobs;
      "--queue-depth"; string_of_int cfg.queue_depth;
      "--default-deadline-ms"; string_of_int cfg.deadline_ms;
    ]
    @ match cfg.cache_dir with None -> [] | Some d -> [ "--cache-dir"; d ]
  in
  let argv = Array.of_list (Sys.executable_name :: args) in
  (* The daemon's stdout goes to our stderr so the bench's stdout stays
     a clean summary. *)
  Unix.create_process Sys.executable_name argv Unix.stdin Unix.stderr
    Unix.stderr

let terminate_daemon cfg pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        false
      end
      else begin
        Unix.sleepf 0.02;
        wait ()
      end
    | _, Unix.WEXITED 0 -> true
    | _, _ -> false
    | exception Unix.Unix_error _ -> false
  in
  let exited_clean = wait () in
  exited_clean && not (Sys.file_exists cfg.socket)

(* ---------------- verification ---------------- *)

(* Byte-identical to the one-shot pipeline: recompute every distinct
   payload in-process through the same Work.run the daemon uses. *)
let verify_payloads payloads =
  let bad = ref None in
  Hashtbl.iter
    (fun key (req, bytes) ->
      if !bad = None then
        match Work.resolve req with
        | Error e -> bad := Some (key ^ ": " ^ e.P.e_message)
        | Ok w ->
          let local = J.to_string (Work.run w) in
          if local <> bytes then
            bad :=
              Some
                (Printf.sprintf
                   "%s: served payload differs from one-shot pipeline (%d vs \
                    %d bytes)"
                   key (String.length local) (String.length bytes)))
    payloads;
  !bad

(* ---------------- summary ---------------- *)

let member_int name j ~default =
  match J.member name j with Some (J.Int n) -> n | _ -> default

let summary_to_json cfg s =
  let r3 f = J.Float (Float.round (f *. 1000.0) /. 1000.0) in
  J.Obj
    [
      ("requests", J.Int cfg.requests);
      ("concurrency", J.Int cfg.concurrency);
      ("duplicate_ratio", J.Float cfg.duplicate_ratio);
      ("deadline_ms", J.Int cfg.deadline_ms);
      ("queue_depth", J.Int cfg.queue_depth);
      ("daemon_jobs", J.Int cfg.daemon_jobs);
      ("kernels", J.Arr (List.map (fun k -> J.Str k) cfg.kernels));
      ("backends", J.Arr (List.map (fun b -> J.Str b) cfg.backends));
      ("verbs", J.Arr (List.map (fun v -> J.Str v) cfg.verbs));
      ("ok", J.Int s.ok);
      ("rejected", J.Int s.rejected);
      ("deadline_exceeded", J.Int s.deadline_exceeded);
      ("errors", J.Int s.errors);
      ("wall_seconds", r3 s.wall_seconds);
      ("throughput_rps", r3 s.throughput_rps);
      ( "latency_ms",
        J.Obj
          [
            ("p50", r3 s.p50_ms);
            ("p90", r3 s.p90_ms);
            ("p99", r3 s.p99_ms);
            ("mean", r3 s.mean_ms);
            ("max", r3 s.max_ms);
          ] );
      ("cache_hit_rate", r3 s.cache_hit_rate);
      ( "verified",
        match s.verified with None -> J.Null | Some b -> J.Bool b );
      ( "shutdown_clean",
        match s.shutdown_clean with None -> J.Null | Some b -> J.Bool b );
      ("server", s.server_stats);
    ]

let run cfg =
  if cfg.requests <= 0 || cfg.concurrency <= 0 then
    Error "requests and concurrency must be positive"
  else begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let reqs = stream cfg in
    let daemon = if cfg.attach then None else Some (spawn_daemon cfg) in
    (* Probe until the daemon answers a ping. *)
    let ready =
      match Client.connect ~retries:500 cfg.socket with
      | Error m -> Error m
      | Ok cl -> (
        match Client.call ~timeout_s:10.0 cl (P.request ~id:1 "ping") with
        | Ok { P.s_result = Ok _; _ } ->
          Client.close cl;
          Ok ()
        | Ok { P.s_result = Error e; _ } ->
          Client.close cl;
          Error ("daemon ping failed: " ^ e.P.e_message)
        | Error m ->
          Client.close cl;
          Error ("daemon ping failed: " ^ m))
    in
    match ready with
    | Error m ->
      Option.iter (fun pid -> ignore (terminate_daemon cfg pid)) daemon;
      Error m
    | Ok () ->
      (* Shard round-robin so every client sees the duplicate mix. *)
      let shards = Array.make cfg.concurrency [] in
      List.iteri
        (fun i r -> shards.(i mod cfg.concurrency) <- r :: shards.(i mod cfg.concurrency))
        reqs;
      Array.iteri (fun i l -> shards.(i) <- List.rev l) shards;
      let timeout_s =
        Float.max 30.0 (float_of_int cfg.deadline_ms /. 1000.0 *. 4.0)
      in
      let t0 = Unix.gettimeofday () in
      let domains =
        Array.map
          (fun shard ->
            Domain.spawn (fun () ->
                run_client ~socket:cfg.socket ~timeout_s shard))
          shards
      in
      let results = Array.map Domain.join domains in
      let wall = Unix.gettimeofday () -. t0 in
      (* Server-side stats snapshot before shutdown. *)
      let server_stats =
        match Client.connect ~retries:10 cfg.socket with
        | Error _ -> J.Null
        | Ok cl ->
          let s =
            match
              Client.call ~timeout_s:10.0 cl (P.request ~id:999_999 "stats")
            with
            | Ok { P.s_result = Ok j; _ } -> j
            | _ -> J.Null
          in
          Client.close cl;
          s
      in
      let shutdown_clean =
        Option.map (fun pid -> terminate_daemon cfg pid) daemon
      in
      (* Merge. *)
      let sum f = Array.fold_left (fun a r -> a + f r) 0 results in
      let ok = sum (fun r -> r.c_ok) in
      let rejected = sum (fun r -> r.c_rejected) in
      let deadline = sum (fun r -> r.c_deadline) in
      let errors = sum (fun r -> r.c_errors) in
      let error_samples =
        Array.to_list results
        |> List.concat_map (fun r -> List.rev r.c_error_samples)
      in
      let errors, error_samples =
        let mism =
          Array.to_list results |> List.filter_map (fun r -> r.c_mismatch)
        in
        (errors + List.length mism, error_samples @ mism)
      in
      let lats =
        Array.to_list results |> List.concat_map (fun r -> r.c_latencies_ms)
      in
      let pc p = if lats = [] then 0.0 else Stats.percentile lats p in
      (* Cross-client payload consistency + distinct payloads for
         verification. *)
      let merged = Hashtbl.create 64 in
      let req_by_key = Hashtbl.create 64 in
      List.iter
        (fun (r : P.request) ->
          let key = request_key r in
          if not (Hashtbl.mem req_by_key key) then
            Hashtbl.replace req_by_key key r)
        reqs;
      let cross_mismatch = ref None in
      Array.iter
        (fun r ->
          Hashtbl.iter
            (fun key bytes ->
              match Hashtbl.find_opt merged key with
              | None -> Hashtbl.replace merged key bytes
              | Some prev ->
                if prev <> bytes && !cross_mismatch = None then
                  cross_mismatch :=
                    Some ("clients saw different payloads for " ^ key))
            r.c_payloads)
        results;
      let errors, error_samples =
        match !cross_mismatch with
        | None -> (errors, error_samples)
        | Some m -> (errors + 1, error_samples @ [ m ])
      in
      let verified =
        if not cfg.verify then None
        else begin
          let to_check = Hashtbl.create 64 in
          Hashtbl.iter
            (fun key bytes ->
              match Hashtbl.find_opt req_by_key key with
              | Some req -> Hashtbl.replace to_check key (req, bytes)
              | None -> ())
            merged;
          match verify_payloads to_check with
          | None -> Some true
          | Some m ->
            prerr_endline ("[gpr bench --serve: verify failed: " ^ m ^ "]");
            Some false
        end
      in
      let hit_rate =
        let hits = member_int "cache_hits" server_stats ~default:0 in
        let coal = member_int "coalesced" server_stats ~default:0 in
        let enq = member_int "enqueued" server_stats ~default:0 in
        let keyed = hits + coal + enq in
        if keyed = 0 then 0.0
        else float_of_int (hits + coal) /. float_of_int keyed
      in
      let s =
        {
          ok;
          rejected;
          deadline_exceeded = deadline;
          errors;
          error_samples =
            (let rec take n = function
               | [] -> []
               | _ when n = 0 -> []
               | x :: tl -> x :: take (n - 1) tl
             in
             take 8 error_samples);
          wall_seconds = wall;
          throughput_rps =
            (if wall > 0.0 then float_of_int (List.length lats) /. wall
             else 0.0);
          p50_ms = pc 50.0;
          p90_ms = pc 90.0;
          p99_ms = pc 99.0;
          mean_ms = (if lats = [] then 0.0 else Stats.mean lats);
          max_ms = (if lats = [] then 0.0 else snd (Stats.min_max lats));
          cache_hit_rate = hit_rate;
          verified;
          shutdown_clean;
          server_stats;
        }
      in
      Option.iter (fun path -> J.write_file path (summary_to_json cfg s)) cfg.out;
      Ok s
  end
