(** The [gpr serve] daemon core.

    One IO domain multiplexes every connection with [Unix.select];
    request verbs run on a {!Gpr_engine.Pool} worker fleet.  The layers,
    in admission order:

    - {b response cache} — completed payloads, keyed by {!Work.key}
      (plus the request tag); a hit answers without touching the queue;
    - {b coalescing} — a request whose key is already queued or
      in flight joins that computation as an extra waiter instead of
      enqueueing a duplicate;
    - {b admission control} — a bounded request queue; past
      [queue_depth] distinct work items the request is rejected with
      the typed [overloaded] error;
    - {b deadlines} — every request carries an absolute deadline
      (default [default_deadline_ms]); it is enforced when the item is
      dequeued for a worker, checked between pipeline stages inside the
      worker, and expired items are answered [deadline_exceeded]
      straight from the queue;
    - {b graceful shutdown} — {!stop} (or SIGTERM via
      {!install_signal_handlers}) closes the listener, answers new
      requests with [shutting_down], lets queued and in-flight work
      finish or deadline out, flushes every connection and returns.

    Latency histograms, queue-depth and accept/reject/coalesce totals
    are mirrored into {!Gpr_obs.Metrics}; the [stats] verb snapshots
    them without going through the queue. *)

type config = {
  workers : int;             (** worker domains (>= 1) *)
  queue_depth : int;         (** bound on queued distinct work items *)
  default_deadline_ms : int;
  max_frame_bytes : int;
  store : Gpr_engine.Store.t option;
      (** shared on-disk result cache for the analysis pipeline *)
  debug_sleep : bool;        (** accept the [sleep] verb (load tests) *)
}

val default_config : config
(** 4 workers, depth 64, 30_000 ms deadline, 1 MiB frames, no store,
    [sleep] disabled. *)

type t

val create : config -> t
(** Spawns the worker pool ([workers] real domains; the IO domain never
    executes work inline). *)

val attach : t -> Unix.file_descr -> unit
(** Adopt a pre-connected stream socket (e.g. one end of a
    [socketpair]) as a client connection.  Thread-safe; wakes a running
    {!run} loop. *)

val stop : t -> unit
(** Begin graceful shutdown.  Safe from a signal handler or another
    domain. *)

val run : ?socket:string -> t -> unit
(** Serve until {!stop}: binds and listens on [socket] when given
    (removing any stale socket file first, and unlinking it on exit),
    plus whatever connections {!attach} adds.  Returns once drained.
    The worker pool is shut down; [t] cannot be reused. *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT trigger {!stop}; SIGPIPE is ignored. *)

(* Introspection used by the CLI's post-run summary and the tests. *)
val received : t -> int
val completed : t -> int
val rejected_overloaded : t -> int
val deadline_expired : t -> int
val cache_hits : t -> int
val coalesced : t -> int
