module J = Gpr_obs.Json
module W = Gpr_workloads.Workload
module Registry = Gpr_workloads.Registry
module Q = Gpr_quality.Quality
module Compress = Gpr_core.Compress
module Simulate = Gpr_core.Simulate
module Backend = Gpr_backend.Backend
module P = Protocol

exception Deadline

type t =
  | Ping
  | Sleep of int
  | Plan_registry of W.t
  | Plan_inline of Gpr_isa.Types.kernel * Gpr_isa.Types.launch
  | Lint_registry of W.t
  | Lint_inline of Gpr_isa.Types.kernel * Gpr_isa.Types.launch
  | Estimate of W.t * Backend.t
  | Profile of W.t * Backend.t
  | Colocate of W.t list * Backend.t * (module Gpr_sim.Sim_multi.POLICY)

let err code fmt =
  Printf.ksprintf (fun m -> Error { P.e_code = code; P.e_message = m }) fmt

(* The serve path must never raise on a bad name: these are the typed
   twins of the CLI's "try `gpr list`" exit-1 messages. *)
let resolve_kernel name =
  match Registry.by_name name with
  | Some w -> Ok w
  | None ->
    err P.Unknown_kernel "unknown kernel %s, try `gpr list` (available: %s)"
      name
      (String.concat ", " Registry.names)

let resolve_backend name =
  match Gpr_backend.Registry.find name with
  | Some b -> Ok b
  | None ->
    err P.Unknown_backend "unknown backend %s (available: %s)" name
      (String.concat ", " Gpr_backend.Registry.names)

let resolve_policy name =
  match Gpr_sim.Sim_multi.find_policy name with
  | Some p -> Ok p
  | None ->
    err P.Bad_request
      "unknown policy %s, try `--policy fifo|rr|binpack` (available: %s)" name
      (String.concat ", " Gpr_sim.Sim_multi.policy_names)

let resolve_inline ~source ~block ~grid =
  if block <= 0 || grid <= 0 then
    err P.Bad_request "block and grid must be positive (got %d, %d)" block grid
  else
    match Gpr_isa.Parser.parse source with
    | Ok kernel -> Ok (kernel, Gpr_isa.Types.launch_1d ~block ~grid)
    | Error e -> err P.Bad_request "inline source does not parse: %s" e

let resolve (r : P.request) =
  let target ~registry ~inline =
    match (r.P.q_kernel, r.P.q_source) with
    | Some name, None -> Result.map registry (resolve_kernel name)
    | None, Some source ->
      Result.map inline
        (resolve_inline ~source ~block:r.P.q_block ~grid:r.P.q_grid)
    | Some _, Some _ ->
      err P.Bad_request "give either \"kernel\" or \"source\", not both"
    | None, None ->
      err P.Bad_request "verb %s needs a \"kernel\" name or inline \"source\""
        r.P.q_verb
  in
  let registry_and_backend mk =
    match r.P.q_kernel with
    | None ->
      if r.P.q_source <> None then
        err P.Bad_request
          "verb %s simulates generated input data and therefore needs a \
           registry kernel, not inline source"
          r.P.q_verb
      else err P.Bad_request "verb %s needs a \"kernel\" name" r.P.q_verb
    | Some name ->
      Result.bind (resolve_kernel name) (fun w ->
          Result.map (mk w)
            (resolve_backend (Option.value r.P.q_backend ~default:"slice")))
  in
  match r.P.q_verb with
  | "ping" -> Ok Ping
  | "sleep" ->
    if r.P.q_sleep_ms < 0 || r.P.q_sleep_ms > 60_000 then
      err P.Bad_request "sleep_ms out of range"
    else Ok (Sleep r.P.q_sleep_ms)
  | "plan" ->
    target
      ~registry:(fun w -> Plan_registry w)
      ~inline:(fun (k, l) -> Plan_inline (k, l))
  | "lint" ->
    target
      ~registry:(fun w -> Lint_registry w)
      ~inline:(fun (k, l) -> Lint_inline (k, l))
  | "estimate" -> registry_and_backend (fun w b -> Estimate (w, b))
  | "profile" -> registry_and_backend (fun w b -> Profile (w, b))
  | "colocate" -> (
    match r.P.q_kernel with
    | None ->
      err P.Bad_request
        "verb colocate needs a comma-separated \"kernel\" set of registry \
         names"
    | Some names -> (
      let names =
        String.split_on_char ',' names
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      match names with
      | [] -> err P.Bad_request "verb colocate: empty kernel set"
      | _ ->
        let rec resolve_all = function
          | [] -> Ok []
          | n :: rest ->
            Result.bind (resolve_kernel n) (fun w ->
                Result.map (fun ws -> w :: ws) (resolve_all rest))
        in
        Result.bind (resolve_all names) (fun ws ->
            Result.bind
              (resolve_backend (Option.value r.P.q_backend ~default:"slice"))
              (fun b ->
                Result.map
                  (fun p -> Colocate (ws, b, p))
                  (resolve_policy
                     (Option.value r.P.q_policy ~default:"fifo"))))))
  | v -> err P.Bad_request "unknown verb %s" v

(* Registry workloads are a fixed static set, so within one process the
   name identifies the content and the key stays O(1) to build; inline
   kernels are keyed by content fingerprint. *)
let backend_tag b =
  let module S = (val b : Backend.Scheme) in
  Printf.sprintf "%s/%d" S.id S.version

let key = function
  | Ping -> "ping"
  | Sleep n -> Printf.sprintf "sleep:%d" n
  | Plan_registry w -> "plan:reg:" ^ w.W.name
  | Plan_inline (k, l) ->
    Printf.sprintf "plan:inline:%s:%s"
      (Gpr_engine.Fingerprint.to_hex (Gpr_engine.Fingerprint.kernel k))
      (Gpr_engine.Fingerprint.to_hex (Gpr_engine.Fingerprint.launch l))
  | Lint_registry w -> "lint:reg:" ^ w.W.name
  | Lint_inline (k, l) ->
    Printf.sprintf "lint:inline:%s:%s"
      (Gpr_engine.Fingerprint.to_hex (Gpr_engine.Fingerprint.kernel k))
      (Gpr_engine.Fingerprint.to_hex (Gpr_engine.Fingerprint.launch l))
  | Estimate (w, b) -> Printf.sprintf "estimate:%s:%s" w.W.name (backend_tag b)
  | Profile (w, b) -> Printf.sprintf "profile:%s:%s" w.W.name (backend_tag b)
  | Colocate (ws, b, p) ->
    let module PM = (val p : Gpr_sim.Sim_multi.POLICY) in
    Printf.sprintf "colocate:%s:%s:%s"
      (String.concat "+" (List.map (fun (w : W.t) -> w.W.name) ws))
      (backend_tag b) PM.id

let cacheable = function
  | Ping | Sleep _ -> false
  | Plan_registry _ | Plan_inline _ | Lint_registry _ | Lint_inline _
  | Estimate _ | Profile _ | Colocate _ -> true

(* ---------------- handlers ---------------- *)

let buffer_len_of_workload (w : W.t) =
  let data = w.W.data () in
  fun name ->
    match List.assoc_opt name w.W.shared with
    | Some n -> Some n
    | None -> (
      match List.assoc_opt name data with
      | Some (Gpr_exec.Exec.I_data a) -> Some (Array.length a)
      | Some (Gpr_exec.Exec.F_data a) -> Some (Array.length a)
      | None -> None)

let run_sleep ~check ms =
  let until = Unix.gettimeofday () +. (float_of_int ms /. 1000.0) in
  let rec nap () =
    check ();
    let left = until -. Unix.gettimeofday () in
    if left > 0.0 then begin
      Unix.sleepf (Float.min left 0.01);
      nap ()
    end
  in
  nap ();
  J.Obj [ ("slept_ms", J.Int ms) ]

(* Mirrors `gpr pressure`: the six static configurations plus the
   occupancy line. *)
let run_plan_registry ~check (w : W.t) =
  let c = Compress.analyze w in
  check ();
  let cfg name (a : Gpr_alloc.Alloc.t) quality =
    J.Obj
      ([ ("config", J.Str name); ("regs_per_thread", J.Int a.Gpr_alloc.Alloc.pressure) ]
      @
      match quality with
      | None -> []
      | Some s -> [ ("quality", J.Str (Q.score_to_string s)) ])
  in
  let occ a = (Compress.occupancy c a).Gpr_arch.Occupancy.blocks_per_sm in
  J.Obj
    [
      ("kernel", J.Str w.W.name);
      ( "configs",
        J.Arr
          [
            cfg "original" c.Compress.baseline None;
            cfg "narrow-ints" c.Compress.int_only None;
            cfg "floats-perfect" c.Compress.perfect.Compress.alloc_float_only
              (Some c.Compress.perfect.Compress.achieved_score);
            cfg "floats-high" c.Compress.high.Compress.alloc_float_only
              (Some c.Compress.high.Compress.achieved_score);
            cfg "both-perfect" c.Compress.perfect.Compress.alloc_both
              (Some c.Compress.perfect.Compress.achieved_score);
            cfg "both-high" c.Compress.high.Compress.alloc_both
              (Some c.Compress.high.Compress.achieved_score);
          ] );
      ( "blocks_per_sm",
        J.Obj
          [
            ("original", J.Int (occ c.Compress.baseline));
            ("perfect", J.Int (occ c.Compress.perfect.Compress.alloc_both));
            ("high", J.Int (occ c.Compress.high.Compress.alloc_both));
          ] );
    ]

(* Mirrors `gpr analyze`: the static integer framework only (inline
   kernels carry no input data, so the float tuner cannot run). *)
let run_plan_inline ~check kernel launch =
  let width = Gpr_analysis.Width.analyze kernel ~launch in
  check ();
  let baseline = Gpr_alloc.Alloc.baseline kernel in
  let packed =
    Gpr_alloc.Alloc.run kernel
      ~width_of:
        (Compress.width_fn ~narrow_ints:true ~narrow_floats:None ~width)
  in
  check ();
  J.Obj
    [
      ("kernel", J.Str kernel.Gpr_isa.Types.k_name);
      ("instructions", J.Int (Gpr_isa.Pp.instr_count kernel));
      ("blocks", J.Int (Array.length kernel.Gpr_isa.Types.k_blocks));
      ("pressure_original", J.Int baseline.Gpr_alloc.Alloc.pressure);
      ("pressure_narrow_ints", J.Int packed.Gpr_alloc.Alloc.pressure);
      ( "narrow_int_vars",
        J.Int (Gpr_analysis.Width.narrow_int_count width kernel) );
      ( "narrow_int_vars_interval",
        J.Int (Gpr_analysis.Width.interval_narrow_int_count width kernel) );
    ]

let diags_payload kernel diags =
  let module D = Gpr_lint.Diag in
  let name = kernel.Gpr_isa.Types.k_name in
  let arr =
    match J.parse (D.list_to_json ~kernel_name:name diags) with
    | Ok j -> j
    | Error _ -> J.Arr []  (* unreachable: we emitted it *)
  in
  J.Obj
    [
      ("kernel", J.Str name);
      ("errors", J.Int (D.count D.Error diags));
      ("warnings", J.Int (D.count D.Warning diags));
      ("info", J.Int (D.count D.Info diags));
      ("diagnostics", arr);
    ]

let run_lint_registry ~check (w : W.t) =
  let diags =
    Gpr_lint.Lint.lint ~buffer_len:(buffer_len_of_workload w) w.W.kernel
      ~launch:w.W.launch
  in
  check ();
  diags_payload w.W.kernel diags

let run_lint_inline ~check kernel launch =
  let diags = Gpr_lint.Lint.lint kernel ~launch in
  check ();
  diags_payload kernel diags

(* Mirrors one row of `gpr report KERNEL --backend S`
   (Experiments.backend_comparison): same calls, same memo keys. *)
let estimate_parts ~check (w : W.t) b =
  let c = Compress.analyze w in
  check ();
  let base = (Simulate.baseline c).Gpr_sim.Sim.gpu_ipc in
  check ();
  let res = Simulate.backend_resources b c Q.High in
  let occ = Simulate.backend_occupancy c res in
  check ();
  let st = Simulate.backend b c Q.High in
  (base, res, occ, st)

let run_estimate ~check (w : W.t) b =
  let base, res, occ, st = estimate_parts ~check w b in
  J.Obj
    [
      ("kernel", J.Str w.W.name);
      ("backend", J.Str (Backend.id b));
      ( "regs_per_thread",
        J.Int res.Backend.alloc.Gpr_alloc.Alloc.pressure );
      ( "spill_bytes_per_thread",
        J.Int (Backend.spill_bytes_per_thread res) );
      ("blocks_per_sm", J.Int occ.Gpr_arch.Occupancy.blocks_per_sm);
      ("warps_per_sm", J.Int occ.Gpr_arch.Occupancy.warps_per_sm);
      ("occupancy", J.Float occ.Gpr_arch.Occupancy.occupancy);
      ( "limiter",
        J.Str
          (Gpr_arch.Occupancy.limiter_to_string occ.Gpr_arch.Occupancy.limiter)
      );
      ("cycles", J.Int st.Gpr_sim.Sim.cycles);
      ("ipc", J.Float st.Gpr_sim.Sim.gpu_ipc);
      ("ipc_baseline", J.Float base);
      ( "ipc_vs_baseline_pct",
        J.Float (100.0 *. ((st.Gpr_sim.Sim.gpu_ipc /. base) -. 1.0)) );
    ]

let run_profile ~check (w : W.t) b =
  let _, _, _, st = estimate_parts ~check w b in
  let bd = Gpr_sim.Sim.breakdown st in
  J.Obj
    [
      ("kernel", J.Str w.W.name);
      ("backend", J.Str (Backend.id b));
      ("cycles", J.Int st.Gpr_sim.Sim.cycles);
      ("ipc", J.Float st.Gpr_sim.Sim.gpu_ipc);
      ("issued_slots", J.Int st.Gpr_sim.Sim.issued_slots);
      ("total_slots", J.Int (Gpr_obs.Stall.total_slots bd));
      ("stalls", Gpr_obs.Stall.to_json bd);
      ("bank_conflicts", J.Int st.Gpr_sim.Sim.bank_conflicts);
      ("spill_loads", J.Int st.Gpr_sim.Sim.spill_loads);
      ("spill_stores", J.Int st.Gpr_sim.Sim.spill_stores);
    ]

(* Mirrors `gpr colocate` for the requested scheme only (the CLI's
   baseline comparison column is two requests away). *)
let run_colocate ~check ws b policy =
  let module M = Gpr_sim.Sim_multi in
  let cs =
    List.map
      (fun w ->
        let c = Compress.analyze w in
        check ();
        c)
      ws
  in
  let r = Simulate.colocate ~policy b cs Q.High in
  check ();
  J.Obj
    [
      ("kernels", J.Arr (List.map (fun (w : W.t) -> J.Str w.W.name) ws));
      ("backend", J.Str (Backend.id b));
      ("policy", J.Str r.M.r_policy);
      ( "tenants",
        J.Arr
          (Array.to_list
             (Array.map
                (fun (t : M.tenant_stats) ->
                  J.Obj
                    [
                      ("kernel", J.Str t.M.ts_label);
                      ("blocks_launched", J.Int t.M.ts_blocks_launched);
                      ("peak_resident", J.Int t.M.ts_peak_resident);
                      ("issued_slots", J.Int t.M.ts_issued_slots);
                      ("warp_instructions", J.Int t.M.ts_warp_instructions);
                      ("ipc", J.Float t.M.ts_ipc);
                      ("issue_share", J.Float t.M.ts_issue_share);
                    ])
                r.M.r_tenants)) );
      ("cycles", J.Int r.M.r_stats.Gpr_sim.Sim.cycles);
      ("ipc", J.Float r.M.r_stats.Gpr_sim.Sim.gpu_ipc);
      ("sm_ipc", J.Float r.M.r_stats.Gpr_sim.Sim.sm_ipc);
      ("peak_resident_blocks", J.Int r.M.r_peak_resident_blocks);
      ("peak_resident_warps", J.Int r.M.r_peak_resident_warps);
      ("co_resident_cycles", J.Int r.M.r_co_resident_cycles);
      ("admissions", J.Int r.M.r_admissions);
      (* Degenerate (all tenants starved) emits null, not a score. *)
      ( "fairness",
        if Gpr_obs.Fair.degenerate r.M.r_fairness then J.Null
        else J.Float r.M.r_fairness );
    ]

let run ?(check = fun () -> ()) = function
  | Ping -> J.Obj [ ("pong", J.Bool true) ]
  | Sleep ms -> run_sleep ~check ms
  | Plan_registry w -> run_plan_registry ~check w
  | Plan_inline (k, l) -> run_plan_inline ~check k l
  | Lint_registry w -> run_lint_registry ~check w
  | Lint_inline (k, l) -> run_lint_inline ~check k l
  | Estimate (w, b) -> run_estimate ~check w b
  | Profile (w, b) -> run_profile ~check w b
  | Colocate (ws, b, p) -> run_colocate ~check ws b p
