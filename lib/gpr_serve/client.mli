(** Blocking client for the [gpr serve] protocol: one stream socket,
    one outstanding request at a time (the load generator runs many
    clients for concurrency). *)

type t

val connect : ?retries:int -> string -> (t, string) result
(** Connect to a Unix socket path, retrying [retries] times at 20 ms
    intervals while the daemon comes up (default 0). *)

val of_fd : Unix.file_descr -> t
(** Wrap a pre-connected socket (e.g. a socketpair end). *)

val close : t -> unit

val send : t -> Protocol.request -> unit
val send_raw : t -> string -> unit
(** Send an arbitrary payload as one frame (malformed-input tests). *)

val recv :
  ?timeout_s:float -> t ->
  [ `Response of Protocol.response | `Eof | `Timeout | `Bad of string ]
(** Read the next response frame.  [`Bad] covers frames that are not
    valid responses (and oversized frames). *)

val call :
  ?timeout_s:float -> t -> Protocol.request ->
  (Protocol.response, string) result
(** {!send} then {!recv}, failing on EOF/timeout/garbage. *)
