module J = Gpr_obs.Json

type error_code =
  | Overloaded
  | Deadline_exceeded
  | Unknown_kernel
  | Unknown_backend
  | Bad_request
  | Parse_error
  | Oversized_frame
  | Shutting_down
  | Internal

let codes =
  [
    (Overloaded, "overloaded");
    (Deadline_exceeded, "deadline_exceeded");
    (Unknown_kernel, "unknown_kernel");
    (Unknown_backend, "unknown_backend");
    (Bad_request, "bad_request");
    (Parse_error, "parse_error");
    (Oversized_frame, "oversized_frame");
    (Shutting_down, "shutting_down");
    (Internal, "internal");
  ]

let code_to_string c = List.assoc c codes
let code_of_string s =
  List.find_map (fun (c, n) -> if n = s then Some c else None) codes

type error = { e_code : error_code; e_message : string }

type request = {
  q_id : int;
  q_verb : string;
  q_kernel : string option;
  q_source : string option;
  q_block : int;
  q_grid : int;
  q_backend : string option;
  q_policy : string option;
  q_deadline_ms : int option;
  q_sleep_ms : int;
  q_tag : string;
}

let request ?kernel ?source ?(block = 256) ?(grid = 16) ?backend ?policy
    ?deadline_ms ?(sleep_ms = 0) ?(tag = "") ~id verb =
  {
    q_id = id;
    q_verb = verb;
    q_kernel = kernel;
    q_source = source;
    q_block = block;
    q_grid = grid;
    q_backend = backend;
    q_policy = policy;
    q_deadline_ms = deadline_ms;
    q_sleep_ms = sleep_ms;
    q_tag = tag;
  }

type response = {
  s_id : int;
  s_result : (J.t, error) result;
}

let request_to_json r =
  let opt k = function None -> [] | Some v -> [ (k, J.Str v) ] in
  J.Obj
    ([ ("id", J.Int r.q_id); ("verb", J.Str r.q_verb) ]
    @ opt "kernel" r.q_kernel
    @ opt "source" r.q_source
    @ (if r.q_source <> None then
         [ ("block", J.Int r.q_block); ("grid", J.Int r.q_grid) ]
       else [])
    @ opt "backend" r.q_backend
    @ opt "policy" r.q_policy
    @ (match r.q_deadline_ms with
      | None -> []
      | Some d -> [ ("deadline_ms", J.Int d) ])
    @ (if r.q_sleep_ms > 0 then [ ("sleep_ms", J.Int r.q_sleep_ms) ] else [])
    @ if r.q_tag <> "" then [ ("tag", J.Str r.q_tag) ] else [])

let int_member k j =
  match J.member k j with
  | Some (J.Int n) -> Some n
  | _ -> None

let str_member k j =
  match J.member k j with
  | Some (J.Str s) -> Some s
  | _ -> None

let request_of_json j =
  match j with
  | J.Obj _ -> (
    match (int_member "id" j, str_member "verb" j) with
    | None, _ -> Error "missing or non-integer \"id\""
    | Some id, _ when id <= 0 -> Error "\"id\" must be positive"
    | _, None -> Error "missing or non-string \"verb\""
    | Some id, Some verb ->
      Ok
        {
          q_id = id;
          q_verb = verb;
          q_kernel = str_member "kernel" j;
          q_source = str_member "source" j;
          q_block = Option.value (int_member "block" j) ~default:256;
          q_grid = Option.value (int_member "grid" j) ~default:16;
          q_backend = str_member "backend" j;
          q_policy = str_member "policy" j;
          q_deadline_ms = int_member "deadline_ms" j;
          q_sleep_ms = Option.value (int_member "sleep_ms" j) ~default:0;
          q_tag = Option.value (str_member "tag" j) ~default:"";
        })
  | _ -> Error "request must be a JSON object"

let response_to_json r =
  match r.s_result with
  | Ok payload ->
    J.Obj [ ("id", J.Int r.s_id); ("ok", J.Bool true); ("result", payload) ]
  | Error e ->
    J.Obj
      [
        ("id", J.Int r.s_id);
        ("ok", J.Bool false);
        ( "error",
          J.Obj
            [
              ("code", J.Str (code_to_string e.e_code));
              ("message", J.Str e.e_message);
            ] );
      ]

let response_of_json j =
  match (int_member "id" j, J.member "ok" j) with
  | Some id, Some (J.Bool true) -> (
    match J.member "result" j with
    | Some payload -> Ok { s_id = id; s_result = Ok payload }
    | None -> Error "ok response without \"result\"")
  | Some id, Some (J.Bool false) -> (
    match J.member "error" j with
    | Some e -> (
      match (str_member "code" e, str_member "message" e) with
      | Some code, Some msg -> (
        match code_of_string code with
        | Some c -> Ok { s_id = id; s_result = Error { e_code = c; e_message = msg } }
        | None -> Error ("unknown error code " ^ code))
      | _ -> Error "error object missing code/message")
    | None -> Error "error response without \"error\"")
  | _ -> Error "response missing id/ok"

(* ---------------- framing ---------------- *)

let max_frame_default = 1 lsl 20

let encode_frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  b

type decoder = {
  max_bytes : int;
  buf : Buffer.t;
  mutable off : int;  (* consumed prefix of [buf] *)
  mutable dead : bool;
}

let decoder ~max_bytes = { max_bytes; buf = Buffer.create 4096; off = 0; dead = false }

let feed d bytes n = Buffer.add_subbytes d.buf bytes 0 n

let compact d =
  (* Drop the consumed prefix once it dominates the buffer. *)
  if d.off > 65536 && d.off * 2 > Buffer.length d.buf then begin
    let rest = Buffer.sub d.buf d.off (Buffer.length d.buf - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let next d =
  if d.dead then `Await
  else begin
    let avail = Buffer.length d.buf - d.off in
    if avail < 4 then `Await
    else begin
      let byte i = Char.code (Buffer.nth d.buf (d.off + i)) in
      let len =
        (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
      in
      if len > d.max_bytes then begin
        d.dead <- true;
        `Oversized len
      end
      else if avail < 4 + len then `Await
      else begin
        let frame = Buffer.sub d.buf (d.off + 4) len in
        d.off <- d.off + 4 + len;
        compact d;
        `Frame frame
      end
    end
  end

(* ---------------- blocking helpers ---------------- *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd payload =
  let b = encode_frame payload in
  write_all fd b 0 (Bytes.length b)

let read_frame ?timeout_s ~max_bytes fd =
  let deadline =
    Option.map (fun t -> Unix.gettimeofday () +. t) timeout_s
  in
  let d = decoder ~max_bytes in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match next d with
    | `Frame f -> `Frame f
    | `Oversized n -> `Oversized n
    | `Await -> (
      let timed_out =
        match deadline with
        | None -> false
        | Some dl ->
          let left = dl -. Unix.gettimeofday () in
          left <= 0.0
          ||
          (match Unix.select [ fd ] [] [] left with
           | [], _, _ -> true
           | _ -> false
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> false)
      in
      if timed_out then `Timeout
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> `Eof
        | n ->
          feed d chunk n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()
