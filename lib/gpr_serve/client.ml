module J = Gpr_obs.Json
module P = Protocol

type t = { fd : Unix.file_descr; mutable open_ : bool }

let of_fd fd = { fd; open_ = true }

let connect ?(retries = 0) path =
  let rec go n =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok (of_fd fd)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if n > 0 then begin
        Unix.sleepf 0.02;
        go (n - 1)
      end
      else
        Error
          (Printf.sprintf "connect %s: %s" path (Unix.error_message e))
  in
  go retries

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_raw t payload = P.write_frame t.fd payload

let send t req = send_raw t (J.to_string (P.request_to_json req))

let recv ?timeout_s t =
  match
    P.read_frame ?timeout_s ~max_bytes:P.max_frame_default t.fd
  with
  | `Eof -> `Eof
  | `Timeout -> `Timeout
  | `Oversized n -> `Bad (Printf.sprintf "oversized response frame (%d bytes)" n)
  | `Frame f -> (
    match J.parse f with
    | Error e -> `Bad ("response is not JSON: " ^ e)
    | Ok j -> (
      match P.response_of_json j with
      | Ok r -> `Response r
      | Error e -> `Bad e))

let call ?timeout_s t req =
  match send t req with
  | () -> (
    match recv ?timeout_s t with
    | `Response r -> Ok r
    | `Eof -> Error "connection closed by server"
    | `Timeout -> Error "timed out waiting for response"
    | `Bad m -> Error m)
  | exception Unix.Unix_error (e, _, _) ->
    Error ("send: " ^ Unix.error_message e)
