(** Wire protocol of the [gpr serve] daemon.

    Framing: every message — request or response — is one length-prefixed
    JSON document: a 4-byte big-endian unsigned payload length followed
    by that many bytes of JSON rendered by {!Gpr_obs.Json}.  A frame
    whose declared length exceeds the receiver's limit is rejected
    without buffering the payload ({!error_code.Oversized_frame}).

    Requests:
    {v
      {"id":1,"verb":"estimate","kernel":"Hotspot","backend":"slice",
       "deadline_ms":500}
      {"id":2,"verb":"plan","source":".entry ...","block":256,"grid":16}
      {"id":3,"verb":"stats"}
    v}

    Responses:
    {v
      {"id":1,"ok":true,"result":{...}}
      {"id":1,"ok":false,"error":{"code":"overloaded","message":"..."}}
    v}

    Every well-formed request receives exactly one response carrying the
    request's [id]; frame- or parse-level failures are answered with an
    error response with [id] 0 (the reserved id well-behaved clients
    never use). *)

(** Typed protocol errors.  [code] strings on the wire are the
    lower-snake-case names below. *)
type error_code =
  | Overloaded          (** admission control: request queue full *)
  | Deadline_exceeded   (** deadline passed while queued or mid-pipeline *)
  | Unknown_kernel      (** kernel name not in the workload registry *)
  | Unknown_backend     (** scheme name not in the backend registry *)
  | Bad_request         (** structurally valid JSON, invalid request *)
  | Parse_error         (** frame payload is not valid JSON *)
  | Oversized_frame     (** declared frame length above the limit *)
  | Shutting_down       (** daemon is draining after SIGTERM *)
  | Internal            (** unexpected exception in the pipeline *)

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

type error = { e_code : error_code; e_message : string }

type request = {
  q_id : int;                   (** client-chosen, echoed in the response; > 0 *)
  q_verb : string;              (** plan | lint | estimate | profile | colocate | stats | ping | sleep *)
  q_kernel : string option;     (** registry kernel name *)
  q_source : string option;     (** inline mini-PTX source (plan/lint) *)
  q_block : int;                (** inline launch: threads per block *)
  q_grid : int;                 (** inline launch: blocks *)
  q_backend : string option;    (** scheme name; default slice *)
  q_policy : string option;     (** dispatch policy (colocate); default fifo *)
  q_deadline_ms : int option;   (** per-request deadline; server default if absent *)
  q_sleep_ms : int;             (** sleep verb only (load tests) *)
  q_tag : string;               (** opaque salt mixed into the work key *)
}

val request : ?kernel:string -> ?source:string -> ?block:int -> ?grid:int ->
  ?backend:string -> ?policy:string -> ?deadline_ms:int -> ?sleep_ms:int ->
  ?tag:string -> id:int -> string -> request
(** [request ~id verb] with optional fields defaulted as on the wire. *)

type response = {
  s_id : int;
  s_result : (Gpr_obs.Json.t, error) result;
}

val request_to_json : request -> Gpr_obs.Json.t
val request_of_json : Gpr_obs.Json.t -> (request, string) result
val response_to_json : response -> Gpr_obs.Json.t
val response_of_json : Gpr_obs.Json.t -> (response, string) result

(* ---------------- framing ---------------- *)

val max_frame_default : int
(** 1 MiB. *)

val encode_frame : string -> Bytes.t
(** Length prefix + payload, ready to write. *)

type decoder
(** Incremental frame decoder over a byte stream. *)

val decoder : max_bytes:int -> decoder

val feed : decoder -> Bytes.t -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf]. *)

val next : decoder -> [ `Frame of string | `Await | `Oversized of int ]
(** Pop the next complete frame.  After [`Oversized] the stream is
    unrecoverable (the length prefix cannot be trusted); the caller
    should answer with {!error_code.Oversized_frame} and close. *)

(* ---------------- blocking helpers (client side) ---------------- *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking full write of one frame.  @raise Unix.Unix_error *)

val read_frame :
  ?timeout_s:float -> max_bytes:int -> Unix.file_descr ->
  [ `Frame of string | `Eof | `Timeout | `Oversized of int ]
(** Blocking read of one complete frame ([timeout_s] bounds the whole
    frame, not each byte). *)
