(* Concurrent-kernel SM timing model.

   This engine generalises [Sim_ref] — the reference list/Hashtbl
   machine — over a set of tenants (kernels), replacing the fixed
   [blocks_per_sm] slot array with a dispatcher that admits pending
   blocks under the combined limits of [Gpr_arch.Occupancy.fits].  The
   per-cycle pipeline (memory hierarchy, collector units, bank and
   indirection arbitration, value converter, GTO/LRR issue, stall
   classification, idle fast-forward) is a line-for-line port; the
   differential suite pins a singleton tenant set byte-identical to
   [Sim.run], so any drift from the single-kernel semantics is caught
   the same way [Sim] itself is pinned to [Sim_ref].

   Warp residency: warp ids are drawn from a sorted free pool of
   [max_warps] slots, a block taking the lowest ids available.  The id
   fixes the bank swizzle and the scheduler assignment, exactly as the
   slot-based id did in the single-kernel engines (for one tenant the
   pool degenerates to the same [slot * warps_per_block + w] layout,
   including across refills).  Scoreboards live per warp, collector
   operands name (warp, arch reg), and placements come from the warp's
   own tenant allocation, so co-resident kernels can never alias. *)

open Gpr_isa.Types
module Trace = Gpr_exec.Trace
module Alloc = Gpr_alloc.Alloc
module Occ = Gpr_arch.Occupancy

type tenant = {
  t_label : string;
  t_trace : Trace.t;
  t_alloc : Alloc.t;
  t_mode : Sim.regfile_mode;
  t_demand : Occ.demand;
  t_blocks : int;
}

type tenant_stats = {
  ts_label : string;
  ts_blocks_launched : int;
  ts_peak_resident : int;
  ts_issued_slots : int;
  ts_warp_instructions : int;
  ts_thread_instructions : int;
  ts_breakdown : Gpr_obs.Stall.breakdown;
  ts_ipc : float;
  ts_issue_share : float;
}

type result = {
  r_stats : Sim.stats;
  r_tenants : tenant_stats array;
  r_policy : string;
  r_peak_resident_blocks : int;
  r_peak_resident_warps : int;
  r_co_resident_cycles : int;
  r_admissions : int;
  r_fairness : float;
}

type pending = {
  p_tenant : int;
  p_arrival : int;
  p_regs : int;
  p_warps : int;
}

module type POLICY = sig
  val id : string
  val describe : string
  val pick : free_regs:int -> last:int -> pending list -> pending option
end

module Fifo : POLICY = struct
  let id = "fifo"
  let describe = "global submission order (backfills past blocked heads)"

  let pick ~free_regs:_ ~last:_ = function
    | [] -> None
    | cands ->
      Some
        (List.fold_left
           (fun a b -> if b.p_arrival < a.p_arrival then b else a)
           (List.hd cands) (List.tl cands))
end

module Rr : POLICY = struct
  let id = "rr"
  let describe = "round-robin over kernels with a fitting head"

  (* First candidate tenant strictly after [last], cyclically. *)
  let pick ~free_regs:_ ~last cands =
    match cands with
    | [] -> None
    | _ ->
      let key c =
        if c.p_tenant > last then c.p_tenant - last
        else c.p_tenant - last + 1_000_000
      in
      Some
        (List.fold_left
           (fun a b -> if key b < key a then b else a)
           (List.hd cands) (List.tl cands))
end

module Binpack : POLICY = struct
  let id = "binpack"
  let describe =
    "pressure-aware: the head whose register demand best fills the free \
     register headroom"

  let pick ~free_regs:_ ~last:_ cands =
    match cands with
    | [] -> None
    | _ ->
      (* Candidates all fit, so "best fills" = largest register
         footprint; ties resolve in submission order. *)
      Some
        (List.fold_left
           (fun a b ->
             if
               b.p_regs > a.p_regs
               || (b.p_regs = a.p_regs && b.p_arrival < a.p_arrival)
             then b
             else a)
           (List.hd cands) (List.tl cands))
end

let fifo : (module POLICY) = (module Fifo)
let rr : (module POLICY) = (module Rr)
let binpack : (module POLICY) = (module Binpack)
let policies = [ fifo; rr; binpack ]

let policy_names =
  List.map (fun (module P : POLICY) -> P.id) policies

let find_policy name =
  List.find_opt
    (fun (module P : POLICY) -> P.id = String.lowercase_ascii name)
    policies

(* ------------------------------------------------------------------ *)

type opnd_stage = S_loc | S_fetch | S_convert | S_done

type opnd = {
  o_arch : int;
  mutable o_stage : opnd_stage;
  mutable o_banks : int list;
  o_convert : bool;
}

type wctx = {
  w_items : Trace.item array;
  mutable w_ptr : int;
  w_tenant : int;
  w_rb : rblock;       (* owning resident block *)
  w_id : int;          (* resident warp slot (bank swizzle, scheduler) *)
  w_age : int;
  mutable w_barrier : bool;
  mutable w_bars_left : int;
  mutable w_outstanding : int;
  w_scoreboard : (int, int) Hashtbl.t;
}

and rblock = {
  rb_tenant : int;
  rb_ids : int list;   (* warp slots held, ascending *)
  mutable rb_warps : wctx list;
  mutable rb_live : bool;
}

type cu = {
  c_warp : wctx;
  c_item : Trace.item;
  mutable c_ops : opnd list;
  c_mem_latency : int;
  c_unit_busy : int;
  c_issue : int;
}

module Imap = Map.Make (Int)

type event = Retire of wctx * int option

let violated fmt =
  Printf.ksprintf (fun s -> raise (Sim.Invariant_violation s)) fmt

let unit_label = function
  | Spu -> "spu"
  | Sfu -> "sfu"
  | Ldst -> "ldst"
  | Sync -> "sync"

let cause_index : Gpr_obs.Stall.cause -> int = function
  | Scoreboard -> 0
  | No_free_cu -> 1
  | Bank_conflict -> 2
  | Spill_port -> 3
  | Barrier -> 4
  | Empty -> 5

let m_admissions = Gpr_obs.Metrics.counter "sim.coloc.admissions"
let m_policy (module P : POLICY) =
  Gpr_obs.Metrics.counter ("sim.coloc.policy." ^ P.id)

let run ?(check = false) ?profile ?(policy = fifo) (cfg : Gpr_arch.Config.t)
    (tenants : tenant list) =
  let module P = (val policy : POLICY) in
  let tn = Array.of_list tenants in
  let nt = Array.length tn in
  if nt = 0 then invalid_arg "Sim_multi.run: empty tenant set";
  let tn_delay =
    Array.map
      (fun t ->
        match t.t_mode with
        | Sim.Proposed { writeback_delay } -> writeback_delay
        | Sim.Baseline | Sim.Spill _ -> 0)
      tn
  in
  let tn_proposed =
    Array.map
      (fun t -> match t.t_mode with Sim.Proposed _ -> true | _ -> false)
      tn
  in
  let tn_spilled =
    Array.map
      (fun t ->
        match t.t_mode with
        | Sim.Spill { spilled; _ } -> fun r -> Hashtbl.mem spilled r
        | Sim.Baseline | Sim.Proposed _ -> fun _ -> false)
      tn
  in
  let tn_spill_lat =
    Array.map
      (fun t ->
        match t.t_mode with Sim.Spill { latency; _ } -> latency | _ -> 0)
      tn
  in
  let any_proposed = Array.exists Fun.id tn_proposed in
  let tn_wpb = Array.map (fun t -> t.t_trace.Trace.warps_per_block) tn in
  let tn_usage =
    Array.mapi
      (fun k t -> Occ.block_usage cfg t.t_demand ~warps_per_block:tn_wpb.(k))
      tn
  in
  let spill_free = ref 0 in
  let spill_loads = ref 0 and spill_stores = ref 0 in

  (* --- Per-tenant (block, warp) streams. --- *)
  let tn_streams =
    Array.map
      (fun t ->
        let streams = Hashtbl.create 256 in
        Array.iter
          (fun (it : Trace.item) ->
            let key = (it.Trace.t_block_id, it.Trace.t_warp) in
            let l = try Hashtbl.find streams key with Not_found -> ref [] in
            if not (Hashtbl.mem streams key) then Hashtbl.replace streams key l;
            l := it :: !l)
          t.t_trace.Trace.items;
        streams)
      tn
  in
  let stream_of k block warp =
    match Hashtbl.find_opt tn_streams.(k) (block, warp) with
    | Some l -> Array.of_list (List.rev !l)
    | None -> [||]
  in

  (* --- Cross-kernel pending queues, stamped in submission order
     (tenant-major: kernel 1's blocks before kernel 2's).  Each tenant
     feeds [t_blocks] blocks round-robin from its grid, exactly as the
     single-kernel feeder does. --- *)
  let queues =
    Array.map
      (fun t ->
        ref
          (List.init
             (max 1 t.t_blocks)
             (fun i -> i mod t.t_trace.Trace.num_blocks)))
      tn
  in
  let arrival_base = Array.make nt 0 in
  let _ =
    Array.fold_left
      (fun (k, off) t ->
        arrival_base.(k) <- off;
        (k + 1, off + max 1 t.t_blocks))
      (0, 0) tn
  in
  let consumed = Array.make nt 0 in

  (* --- Memory hierarchy (shared between tenants). --- *)
  let l1 = Cache.create ~capacity_bytes:cfg.l1_bytes ~line_bytes:cfg.l1_line_bytes ~assoc:4 in
  let tex = Cache.create ~capacity_bytes:cfg.tex_bytes ~line_bytes:cfg.l1_line_bytes ~assoc:4 in
  let l2 =
    Cache.create ~capacity_bytes:(cfg.l2_bytes / cfg.num_sms)
      ~line_bytes:cfg.l1_line_bytes ~assoc:8
  in
  let tex_accesses = ref 0 in
  let dram_free = ref 0 in
  let l2_free = ref 0 in

  let mem_latency now (it : Trace.item) =
    match it.Trace.t_mem with
    | None -> (cfg.spu_latency, 1)
    | Some m ->
      (match m.Trace.m_space with
       | Param -> (cfg.spu_latency * 2, 1)
       | Shared ->
         let counts = Array.make 32 0 in
         Array.iter
           (fun a ->
              let b = (a / 4) mod 32 in
              counts.(b) <- counts.(b) + 1)
           m.Trace.m_addresses;
         let factor = Array.fold_left max 1 counts in
         (cfg.shared_latency + factor - 1, factor)
       | Global | Texture ->
         let lines = Hashtbl.create 8 in
         Array.iter
           (fun a -> Hashtbl.replace lines (a / cfg.l1_line_bytes) ())
           m.Trace.m_addresses;
         let ntxn = max 1 (Hashtbl.length lines) in
         let worst = ref 0 in
         Hashtbl.iter
           (fun line () ->
              let addr = line * cfg.l1_line_bytes in
              let l1_hit =
                if m.Trace.m_space = Texture then begin
                  incr tex_accesses;
                  Cache.access tex addr
                end
                else Cache.access l1 addr
              in
              let lat =
                if l1_hit then cfg.l1_hit_latency
                else if Cache.access l2 addr then begin
                  l2_free := max !l2_free now + cfg.l2_line_interval;
                  (!l2_free - now) + cfg.l2_hit_latency
                end
                else begin
                  l2_free := max !l2_free now + cfg.l2_line_interval;
                  dram_free := max !dram_free now + cfg.dram_line_interval;
                  (!dram_free - now) + cfg.dram_latency
                end
              in
              worst := max !worst lat)
           lines;
         (!worst + ntxn - 1, ntxn))
  in

  (* --- Residency state. --- *)
  let age_counter = ref 0 in
  let active_warps : wctx list ref = ref [] in
  let resident : rblock list ref = ref [] in
  let used = ref Occ.no_usage in
  let free_ids = ref (List.init cfg.max_warps Fun.id) in
  let take_ids n =
    let rec go n acc ids =
      if n = 0 then (List.rev acc, ids)
      else
        match ids with
        | [] ->
          (* Unreachable: admission keeps [u_warps <= max_warps]. *)
          violated "warp-slot pool exhausted"
        | id :: rest -> go (n - 1) (id :: acc) rest
    in
    let taken, rest = go n [] !free_ids in
    free_ids := rest;
    taken
  in
  let release_ids ids = free_ids := List.merge compare ids !free_ids in
  let sub_usage (a : Occ.usage) (b : Occ.usage) =
    {
      Occ.u_registers = a.Occ.u_registers - b.Occ.u_registers;
      u_shared_bytes = a.Occ.u_shared_bytes - b.Occ.u_shared_bytes;
      u_warps = a.Occ.u_warps - b.Occ.u_warps;
      u_blocks = a.Occ.u_blocks - b.Occ.u_blocks;
    }
  in

  let warp_done w =
    w.w_ptr >= Array.length w.w_items && w.w_outstanding = 0
  in

  (* Stats. *)
  let double_fetches = ref 0 in
  let conversions = ref 0 in
  let issued_slots = ref 0 in
  let stall_scoreboard = ref 0 in
  let stall_no_cu = ref 0 in
  let stall_bank_conflict = ref 0 in
  let stall_spill_port = ref 0 in
  let stall_barrier = ref 0 in
  let stall_empty = ref 0 in
  let bank_conflicts = ref 0 in
  let bump cause n =
    match (cause : Gpr_obs.Stall.cause) with
    | Scoreboard -> stall_scoreboard := !stall_scoreboard + n
    | No_free_cu -> stall_no_cu := !stall_no_cu + n
    | Bank_conflict -> stall_bank_conflict := !stall_bank_conflict + n
    | Spill_port -> stall_spill_port := !stall_spill_port + n
    | Barrier -> stall_barrier := !stall_barrier + n
    | Empty -> stall_empty := !stall_empty + n
  in
  let idle_cycles = ref 0 in
  let issued_warp_instrs = ref 0 in
  let executed_threads = ref 0 in
  let issued_nonsync = ref 0 in
  let retired = ref 0 in

  (* Per-tenant attribution. *)
  let t_issued = Array.make nt 0 in
  let t_threads = Array.make nt 0 in
  let t_blocks_launched = Array.make nt 0 in
  let t_cur = Array.make nt 0 in
  let t_peak = Array.make nt 0 in
  let t_stalls = Array.make_matrix nt 6 0 in
  let tbump k cause n =
    t_stalls.(k).(cause_index cause) <- t_stalls.(k).(cause_index cause) + n
  in

  (* Co-residency accounting: time-weighted over the spans between
     residency changes. *)
  let cycle = ref 0 in
  let peak_blocks = ref 0 and peak_warps = ref 0 in
  let admissions = ref 0 in
  let co_cycles = ref 0 in
  let co_since = ref 0 in
  let was_co = ref false in
  let residency_changed () =
    let now = !cycle in
    if !was_co then co_cycles := !co_cycles + (now - !co_since);
    co_since := now;
    let seen = Array.make nt false in
    List.iter (fun rb -> seen.(rb.rb_tenant) <- true) !resident;
    let distinct = Array.fold_left (fun a b -> if b then a + 1 else a) 0 seen in
    was_co := distinct >= 2
  in

  let expected_per_tenant =
    if not check then Array.make nt 0
    else
      Array.init nt (fun k ->
          List.fold_left
            (fun acc b ->
              let per_block = ref 0 in
              for w = 0 to tn_wpb.(k) - 1 do
                per_block := !per_block + Array.length (stream_of k b w)
              done;
              acc + !per_block)
            0
            !(queues.(k)))
  in

  (match profile with
   | Some ch ->
     Array.iteri
       (fun k t ->
         Gpr_obs.Chrome.name_process ch ~pid:k
           (Printf.sprintf "kernel %s" t.t_label))
       tn;
     Gpr_obs.Chrome.name_process ch ~pid:nt "register-file banks";
     for b = 0 to cfg.register_banks - 1 do
       Gpr_obs.Chrome.name_thread ch ~pid:nt ~tid:b
         (Printf.sprintf "bank %d" b)
     done
   | None -> ());

  (* --- Dispatcher. --- *)
  let last_admit = ref (-1) in
  let launch_block k block_id =
    let wpb = tn_wpb.(k) in
    let ids = Array.of_list (take_ids wpb) in
    let rb =
      { rb_tenant = k; rb_ids = Array.to_list ids; rb_warps = []; rb_live = true }
    in
    let warps =
      List.init wpb (fun w ->
          incr age_counter;
          let items = stream_of k block_id w in
          let bars =
            Array.fold_left
              (fun acc (it : Trace.item) ->
                 if it.Trace.t_unit = Sync then acc + 1 else acc)
              0 items
          in
          {
            w_items = items;
            w_ptr = 0;
            w_tenant = k;
            w_rb = rb;
            w_id = ids.(w);
            w_age = !age_counter;
            w_barrier = false;
            w_bars_left = bars;
            w_outstanding = 0;
            w_scoreboard = Hashtbl.create 16;
          })
    in
    rb.rb_warps <- warps;
    resident := !resident @ [ rb ];
    active_warps := !active_warps @ warps;
    (match profile with
     | Some ch ->
       List.iter
         (fun w ->
           Gpr_obs.Chrome.name_thread ch ~pid:k ~tid:w.w_id
             (Printf.sprintf "warp %d" w.w_id))
         warps
     | None -> ());
    rb
  in
  let rec retire_block rb =
    rb.rb_live <- false;
    active_warps :=
      List.filter (fun w -> not (List.memq w rb.rb_warps)) !active_warps;
    resident := List.filter (fun r -> r != rb) !resident;
    release_ids rb.rb_ids;
    used := sub_usage !used tn_usage.(rb.rb_tenant);
    t_cur.(rb.rb_tenant) <- t_cur.(rb.rb_tenant) - 1;
    residency_changed ();
    dispatch ()

  and dispatch () =
    let cands =
      let acc = ref [] in
      for k = nt - 1 downto 0 do
        match !(queues.(k)) with
        | [] -> ()
        | _ :: _ when Occ.fits cfg !used tn_usage.(k) ->
          acc :=
            {
              p_tenant = k;
              p_arrival = arrival_base.(k) + consumed.(k);
              p_regs = tn_usage.(k).Occ.u_registers;
              p_warps = tn_wpb.(k);
            }
            :: !acc
        | _ :: _ -> ()
      done;
      !acc
    in
    match P.pick ~free_regs:(cfg.registers_per_sm - (!used).Occ.u_registers)
            ~last:!last_admit cands
    with
    | None ->
      if
        !resident = []
        && cands = []
        && Array.exists (fun q -> !q <> []) queues
      then
        invalid_arg
          "Sim_multi: a pending block exceeds SM resources even on an empty SM"
    | Some c ->
      let k = c.p_tenant in
      let block_id, rest =
        match !(queues.(k)) with
        | b :: rest -> (b, rest)
        | [] -> violated "dispatcher picked an empty queue"
      in
      queues.(k) := rest;
      consumed.(k) <- consumed.(k) + 1;
      last_admit := k;
      used := Occ.add_usage !used tn_usage.(k);
      let rb = launch_block k block_id in
      incr admissions;
      Gpr_obs.Metrics.incr m_admissions;
      Gpr_obs.Metrics.incr (m_policy policy);
      t_blocks_launched.(k) <- t_blocks_launched.(k) + 1;
      t_cur.(k) <- t_cur.(k) + 1;
      if t_cur.(k) > t_peak.(k) then t_peak.(k) <- t_cur.(k);
      if (!used).Occ.u_blocks > !peak_blocks then
        peak_blocks := (!used).Occ.u_blocks;
      if (!used).Occ.u_warps > !peak_warps then
        peak_warps := (!used).Occ.u_warps;
      residency_changed ();
      (* A block whose warps have empty streams retires immediately. *)
      if List.for_all warp_done rb.rb_warps then retire_block rb;
      dispatch ()
  in
  dispatch ();

  (* --- Pipeline state. --- *)
  let cus : cu option array = Array.make cfg.operand_collectors None in
  let events : event list Imap.t ref = ref Imap.empty in
  let schedule cycle ev =
    events :=
      Imap.update cycle
        (function None -> Some [ ev ] | Some l -> Some (ev :: l))
        !events
  in
  let wb_used : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let alloc_wb_slot earliest =
    let c = ref earliest in
    let rec go () =
      let used = try Hashtbl.find wb_used !c with Not_found -> 0 in
      if used < cfg.writeback_width then begin
        Hashtbl.replace wb_used !c (used + 1)
      end
      else begin
        incr c;
        go ()
      end
    in
    go ();
    !c
  in

  let placement_of k arch = Alloc.lookup tn.(k).t_alloc arch in
  let fetch_banks warp arch =
    match placement_of warp.w_tenant arch with
    | None -> [ (arch + warp.w_id) mod cfg.register_banks ]
    | Some p ->
      if tn_proposed.(warp.w_tenant) && Alloc.is_split p then
        [ (p.Alloc.reg0 + warp.w_id) mod cfg.register_banks;
          (p.Alloc.reg1 + warp.w_id) mod cfg.register_banks ]
      else [ (p.Alloc.reg0 + warp.w_id) mod cfg.register_banks ]
  in
  let needs_convert k arch =
    tn_proposed.(k)
    &&
    match placement_of k arch with
    | Some p -> p.Alloc.is_float && p.Alloc.slices < 8
    | None -> false
  in

  (* Exec units. *)
  let spu_free = [| 0; 0 |] in
  let sfu_free = ref 0 in
  let ldst_free = ref 0 in

  let finished () =
    Array.for_all (fun q -> !q = []) queues && !resident = []
  in

  let retire_block_if_done rb =
    if rb.rb_live && List.for_all warp_done rb.rb_warps then retire_block rb
  in

  (* GTO state per scheduler. *)
  let last_issued = Array.make cfg.warp_schedulers None in
  let rr_ptr = Array.make cfg.warp_schedulers 0 in
  (* [None] = issued; [Some (cause, tenant)] = stalled, with the blamed
     kernel (if any) kept for the fast-forward replay's attribution. *)
  let slot_cause : (Gpr_obs.Stall.cause * int option) option array =
    Array.make cfg.warp_schedulers None
  in

  let scoreboard_ready w (it : Trace.item) =
    let pending r = Hashtbl.mem w.w_scoreboard r in
    (not (List.exists pending it.Trace.t_srcs))
    && (match it.Trace.t_dst with Some d -> not (pending d) | None -> true)
  in

  let free_cu () =
    let rec go i =
      if i >= Array.length cus then None
      else match cus.(i) with None -> Some i | Some _ -> go (i + 1)
    in
    go 0
  in

  let can_issue w =
    (not w.w_barrier)
    && w.w_ptr < Array.length w.w_items
    &&
    let it = w.w_items.(w.w_ptr) in
    scoreboard_ready w it
    &&
    if it.Trace.t_unit = Sync then w.w_outstanding = 0
    else free_cu () <> None
  in
  let bank_conflict_cycle = ref false in

  (* Stall classification: identical to the single-kernel engines, but
     the blamed warp also names the kernel charged for the slot.
     [Empty] slots have no owner. *)
  let classify_stall mine : Gpr_obs.Stall.cause * int option =
    let candidates =
      List.filter
        (fun w -> w.w_barrier || w.w_ptr < Array.length w.w_items)
        mine
    in
    match candidates with
    | [] -> (Empty, None)
    | w0 :: rest ->
      let w =
        List.fold_left (fun a b -> if b.w_age < a.w_age then b else a) w0 rest
      in
      let owner = Some w.w_tenant in
      if w.w_barrier then (Barrier, owner)
      else begin
        let it = w.w_items.(w.w_ptr) in
        if not (scoreboard_ready w it) then begin
          let pending r = Hashtbl.mem w.w_scoreboard r in
          let is_spilled = tn_spilled.(w.w_tenant) in
          let blocked_on_spill =
            List.exists (fun r -> pending r && is_spilled r) it.Trace.t_srcs
            || (match it.Trace.t_dst with
               | Some d -> pending d && is_spilled d
               | None -> false)
          in
          if blocked_on_spill then (Spill_port, owner)
          else (Scoreboard, owner)
        end
        else if it.Trace.t_unit = Sync then (Barrier, owner)
        else if !bank_conflict_cycle then (Bank_conflict, owner)
        else (No_free_cu, owner)
      end
  in

  let do_issue w =
    let it = w.w_items.(w.w_ptr) in
    if check && not (scoreboard_ready w it) then
      violated "scoreboard: warp %d issued pc %d with a pending hazard"
        w.w_id it.Trace.t_pc;
    w.w_ptr <- w.w_ptr + 1;
    issued_warp_instrs := !issued_warp_instrs + 1;
    executed_threads := !executed_threads + it.Trace.t_active;
    t_issued.(w.w_tenant) <- t_issued.(w.w_tenant) + 1;
    t_threads.(w.w_tenant) <- t_threads.(w.w_tenant) + it.Trace.t_active;
    if it.Trace.t_unit = Sync then begin
      (match profile with
       | Some ch ->
         Gpr_obs.Chrome.instant ch ~name:"barrier" ~cat:"sync"
           ~pid:w.w_tenant ~tid:w.w_id ~ts_us:(float_of_int !cycle)
           ~args:[ ("pc", Gpr_obs.Json.Int it.Trace.t_pc) ] ()
       | None -> ());
      w.w_bars_left <- w.w_bars_left - 1;
      w.w_barrier <- true;
      let rb = w.w_rb in
      if not rb.rb_live then w.w_barrier <- false
      else begin
        let all_arrived =
          List.for_all
            (fun x -> x.w_barrier || x.w_bars_left = 0)
            rb.rb_warps
        in
        if all_arrived then
          List.iter (fun x -> x.w_barrier <- false) rb.rb_warps
      end
    end
    else begin
      incr issued_nonsync;
      let slot = Option.get (free_cu ()) in
      let srcs = List.sort_uniq compare it.Trace.t_srcs in
      let is_proposed = tn_proposed.(w.w_tenant) in
      let is_spilled = tn_spilled.(w.w_tenant) in
      let spill_latency = tn_spill_lat.(w.w_tenant) in
      let ops =
        List.map
          (fun arch ->
             let banks = fetch_banks w arch in
             if List.length banks > 1 then incr double_fetches;
             {
               o_arch = arch;
               o_stage = (if is_proposed then S_loc else S_fetch);
               o_banks = banks;
               o_convert = needs_convert w.w_tenant arch;
             })
          srcs
      in
      (match it.Trace.t_dst with
       | Some d ->
         Hashtbl.replace w.w_scoreboard d
           (1 + Option.value ~default:0 (Hashtbl.find_opt w.w_scoreboard d))
       | None -> ());
      w.w_outstanding <- w.w_outstanding + 1;
      let lat, busy =
        match it.Trace.t_unit with
        | Spu -> (cfg.spu_latency, 1)
        | Sfu -> (cfg.sfu_latency, 1)
        | Ldst -> mem_latency !cycle it
        | Sync -> (0, 1)
      in
      let lat =
        match List.length (List.filter is_spilled srcs) with
        | 0 -> lat
        | n ->
          spill_loads := !spill_loads + n;
          spill_free := max !spill_free !cycle + n;
          lat + spill_latency + (!spill_free - !cycle - 1)
      in
      cus.(slot) <-
        Some { c_warp = w; c_item = it; c_ops = ops; c_mem_latency = lat;
               c_unit_busy = busy; c_issue = !cycle }
    end
  in

  (* ---------------- main loop ---------------- *)
  let max_cycles = 200_000_000 in
  while (not (finished ())) && !cycle < max_cycles do
    let now = !cycle in
    let progress = ref false in

    (* 1. Retire events. *)
    (match Imap.find_opt now !events with
     | Some evs ->
       progress := true;
       List.iter
         (fun (Retire (w, dst)) ->
            (match dst with
             | Some d ->
               (match Hashtbl.find_opt w.w_scoreboard d with
                | Some 1 -> Hashtbl.remove w.w_scoreboard d
                | Some n -> Hashtbl.replace w.w_scoreboard d (n - 1)
                | None -> ())
             | None -> ());
            w.w_outstanding <- w.w_outstanding - 1;
            incr retired;
            if check && w.w_outstanding < 0 then
              violated "warp %d retired more instructions than it issued" w.w_id;
            if warp_done w then retire_block_if_done w.w_rb)
         evs;
       events := Imap.remove now !events
     | None -> ());
    Hashtbl.remove wb_used now;

    (* 2. Dispatch ready collector units to execution units. *)
    Array.iteri
      (fun i cu_opt ->
         match cu_opt with
         | Some cu when List.for_all (fun o -> o.o_stage = S_done) cu.c_ops ->
           let unit_ok =
             match cu.c_item.Trace.t_unit with
             | Spu ->
               if spu_free.(0) <= now then (spu_free.(0) <- now + 2; true)
               else if spu_free.(1) <= now then (spu_free.(1) <- now + 2; true)
               else false
             | Sfu ->
               if !sfu_free <= now then (sfu_free := now + 8; true) else false
             | Ldst ->
               if !ldst_free <= now then begin
                 ldst_free := now + max 2 cu.c_unit_busy;
                 true
               end
               else false
             | Sync -> true
           in
           if unit_ok then begin
             progress := true;
             let complete = now + cu.c_mem_latency in
             let k = cu.c_warp.w_tenant in
             let retire_cycle =
               match cu.c_item.Trace.t_dst with
               | Some d ->
                 let wb = alloc_wb_slot complete in
                 let spill_extra =
                   if tn_spilled.(k) d then begin
                     incr spill_stores;
                     spill_free := max !spill_free wb + 1;
                     tn_spill_lat.(k) + (!spill_free - wb - 1)
                   end
                   else 0
                 in
                 wb + tn_delay.(k) + spill_extra
               | None -> complete
             in
             let retire_cycle = max (now + 1) retire_cycle in
             schedule retire_cycle (Retire (cu.c_warp, cu.c_item.Trace.t_dst));
             (match profile with
              | Some ch ->
                Gpr_obs.Chrome.complete ch
                  ~name:(unit_label cu.c_item.Trace.t_unit)
                  ~cat:"issue" ~pid:k ~tid:cu.c_warp.w_id
                  ~ts_us:(float_of_int cu.c_issue)
                  ~dur_us:(float_of_int (max 1 (retire_cycle - cu.c_issue)))
                  ~args:
                    [
                      ("pc", Gpr_obs.Json.Int cu.c_item.Trace.t_pc);
                      ("active", Gpr_obs.Json.Int cu.c_item.Trace.t_active);
                    ]
                  ()
              | None -> ());
             cus.(i) <- None
           end
         | _ -> ())
      cus;

    (* 3. Value converter: up to 6 narrow-float operands per cycle. *)
    let vc_slots = ref 6 in
    Array.iter
      (fun cu_opt ->
         match cu_opt with
         | Some cu ->
           List.iter
             (fun o ->
                if o.o_stage = S_convert && !vc_slots > 0 then begin
                  decr vc_slots;
                  incr conversions;
                  o.o_stage <- S_done;
                  progress := true
                end)
             cu.c_ops
         | None -> ())
      cus;

    (* 4. Register-fetch arbitration. *)
    bank_conflict_cycle := false;
    let bank_used = Array.make cfg.register_banks false in
    Array.iter
      (fun cu_opt ->
         match cu_opt with
         | Some cu ->
           let granted = ref false in
           List.iter
             (fun o ->
                if (not !granted) && o.o_stage = S_fetch then
                  match o.o_banks with
                  | b :: rest when not bank_used.(b) ->
                    bank_used.(b) <- true;
                    granted := true;
                    progress := true;
                    o.o_banks <- rest;
                    if rest = [] then
                      o.o_stage <- (if o.o_convert then S_convert else S_done)
                  | b :: _ ->
                    bank_conflict_cycle := true;
                    incr bank_conflicts;
                    (match profile with
                     | Some ch ->
                       Gpr_obs.Chrome.instant ch ~name:"bank-conflict"
                         ~cat:"regfile" ~pid:nt ~tid:b
                         ~ts_us:(float_of_int now)
                         ~args:
                           [
                             ("warp", Gpr_obs.Json.Int cu.c_warp.w_id);
                             ("reg", Gpr_obs.Json.Int o.o_arch);
                           ]
                         ()
                     | None -> ())
                  | [] -> ())
             cu.c_ops
         | None -> ())
      cus;

    (* 5. Source indirection-table arbitration (proposed tenants only:
       only their operands ever sit in [S_loc]). *)
    if any_proposed then begin
      let tbl_used = Array.make cfg.register_banks false in
      Array.iter
        (fun cu_opt ->
           match cu_opt with
           | Some cu ->
             List.iter
               (fun o ->
                  if o.o_stage = S_loc then begin
                    let b = o.o_arch mod cfg.register_banks in
                    if not tbl_used.(b) then begin
                      tbl_used.(b) <- true;
                      o.o_stage <- S_fetch;
                      progress := true
                    end
                  end)
               cu.c_ops
           | None -> ())
        cus
    end;

    (* 6. Issue. *)
    for sched = 0 to cfg.warp_schedulers - 1 do
      let mine =
        List.filter (fun w -> w.w_id mod cfg.warp_schedulers = sched)
          !active_warps
      in
      let pick =
        match cfg.scheduler with
        | Gpr_arch.Config.Gto ->
          let greedy =
            match last_issued.(sched) with
            | Some w when List.memq w mine && can_issue w -> Some w
            | _ -> None
          in
          (match greedy with
           | Some w -> Some w
           | None ->
             List.filter can_issue mine
             |> List.sort (fun a b -> compare a.w_age b.w_age)
             |> function [] -> None | w :: _ -> Some w)
        | Gpr_arch.Config.Lrr ->
          let n = List.length mine in
          if n = 0 then None
          else begin
            let arr = Array.of_list mine in
            let start = rr_ptr.(sched) mod n in
            let rec go k =
              if k >= n then None
              else
                let w = arr.((start + k) mod n) in
                if can_issue w then begin
                  rr_ptr.(sched) <- start + k + 1;
                  Some w
                end
                else go (k + 1)
            in
            go 0
          end
      in
      match pick with
      | Some w ->
        progress := true;
        last_issued.(sched) <- Some w;
        slot_cause.(sched) <- None;
        incr issued_slots;
        do_issue w
      | None ->
        last_issued.(sched) <- None;
        let cause, owner = classify_stall mine in
        slot_cause.(sched) <- Some (cause, owner);
        bump cause 1;
        (match owner with Some k -> tbump k cause 1 | None -> ())
    done;

    if not !progress then begin
      incr idle_cycles;
      match Imap.min_binding_opt !events with
      | Some (c, _) when c > now + 1 ->
        idle_cycles := !idle_cycles + (c - now - 1);
        Array.iter
          (function
            | Some (cause, owner) ->
              bump cause (c - now - 1);
              (match owner with
               | Some k -> tbump k cause (c - now - 1)
               | None -> ())
            | None -> ())
          slot_cause;
        cycle := c
      | _ -> incr cycle
    end
    else incr cycle;

    if !cycle land 0xfff = 0 then
      List.iter retire_block_if_done !resident
  done;

  List.iter retire_block_if_done !resident;

  (* Close the co-residency span and pad the degenerate all-empty run,
     mirroring the single-kernel engines' one-cycle clamp. *)
  if !was_co then co_cycles := !co_cycles + (!cycle - !co_since);
  if !cycle = 0 then stall_empty := !stall_empty + cfg.warp_schedulers;

  if check then begin
    if not (finished ()) then
      violated "simulation hit the %d-cycle bailout without draining"
        max_cycles;
    let attributed =
      !issued_slots + !stall_scoreboard + !stall_no_cu
      + !stall_bank_conflict + !stall_spill_port + !stall_barrier
      + !stall_empty
    in
    let slots = max 1 !cycle * cfg.warp_schedulers in
    if attributed <> slots then
      violated
        "stall attribution: %d slots classified over %d cycles x %d \
         schedulers (= %d slots)"
        attributed (max 1 !cycle) cfg.warp_schedulers slots;
    if !issued_slots <> !issued_warp_instrs then
      violated "stall attribution: %d issued slots but %d warp instructions"
        !issued_slots !issued_warp_instrs;
    if !retired <> !issued_nonsync then
      violated "conservation: issued %d non-sync instructions but retired %d"
        !issued_nonsync !retired;
    if !executed_threads > 32 * !issued_warp_instrs then
      violated "executed %d thread instructions from %d warp issues"
        !executed_threads !issued_warp_instrs;
    (* Per-kernel identities: each tenant replays exactly the warp
       instructions of the blocks it was fed, and the per-kernel slot
       attribution tiles the aggregate (Empty slots are unowned). *)
    for k = 0 to nt - 1 do
      if t_issued.(k) <> expected_per_tenant.(k) then
        violated
          "conservation (%s): issued %d warp instructions, its blocks hold %d"
          tn.(k).t_label t_issued.(k) expected_per_tenant.(k)
    done;
    if Array.fold_left ( + ) 0 t_issued <> !issued_slots then
      violated "per-kernel issued slots do not sum to the aggregate";
    let owned = ref 0 in
    Array.iter (fun row -> Array.iter (fun n -> owned := !owned + n) row)
      t_stalls;
    let stalls_total =
      !stall_scoreboard + !stall_no_cu + !stall_bank_conflict
      + !stall_spill_port + !stall_barrier
    in
    if !owned <> stalls_total then
      violated
        "per-kernel stall attribution: %d owned slots but %d non-empty stalls"
        !owned stalls_total
  end;

  let cycles = max 1 !cycle in
  let sm_ipc = float_of_int !executed_threads /. float_of_int cycles in
  let stats : Sim.stats =
    {
      cycles;
      thread_instructions = !executed_threads;
      warp_instructions = !issued_warp_instrs;
      sm_ipc;
      gpu_ipc = sm_ipc *. float_of_int cfg.num_sms;
      issued_per_cycle =
        float_of_int !issued_warp_instrs /. float_of_int cycles;
      l1_hit_rate = Cache.hit_rate l1;
      tex_hit_rate = Cache.hit_rate tex;
      l2_hit_rate = Cache.hit_rate l2;
      tex_accesses = !tex_accesses;
      double_fetches = !double_fetches;
      conversions = !conversions;
      issued_slots = !issued_slots;
      stall_scoreboard = !stall_scoreboard;
      stall_no_cu = !stall_no_cu;
      stall_bank_conflict = !stall_bank_conflict;
      stall_spill_port = !stall_spill_port;
      stall_barrier = !stall_barrier;
      stall_empty = !stall_empty;
      bank_conflicts = !bank_conflicts;
      idle_cycles = !idle_cycles;
      spill_loads = !spill_loads;
      spill_stores = !spill_stores;
    }
  in
  let total_issued = !issued_slots in
  let tenants_stats =
    Array.init nt (fun k ->
        {
          ts_label = tn.(k).t_label;
          ts_blocks_launched = t_blocks_launched.(k);
          ts_peak_resident = t_peak.(k);
          ts_issued_slots = t_issued.(k);
          ts_warp_instructions = t_issued.(k);
          ts_thread_instructions = t_threads.(k);
          ts_breakdown =
            {
              Gpr_obs.Stall.bd_issued = t_issued.(k);
              bd_stalls =
                List.map
                  (fun c -> (c, t_stalls.(k).(cause_index c)))
                  Gpr_obs.Stall.all;
            };
          ts_ipc = float_of_int t_threads.(k) /. float_of_int cycles;
          ts_issue_share =
            (if total_issued = 0 then 0.0
             else float_of_int t_issued.(k) /. float_of_int total_issued);
        })
  in
  {
    r_stats = stats;
    r_tenants = tenants_stats;
    r_policy = P.id;
    r_peak_resident_blocks = !peak_blocks;
    r_peak_resident_warps = !peak_warps;
    r_co_resident_cycles = !co_cycles;
    r_admissions = !admissions;
    r_fairness =
      Gpr_obs.Fair.jain
        (Array.to_list (Array.map float_of_int t_issued));
  }
