(** Cycle-level model of one streaming multiprocessor (Sec. 3.1/3.2).

    Trace-driven: the functional executor's warp streams are replayed
    through a Fermi-style SM — dual GTO warp schedulers, a scoreboard
    (no forwarding, Sec. 6.3), a 16-bank register file behind an
    operand collector with 16 collector units and a throughput-
    oriented arbitrator, two SPUs, one SFU, one LD/ST unit with
    L1/texture/L2/DRAM hierarchy and shared-memory bank conflicts, and
    a 3-operand-wide writeback bus.

    The proposed register file adds: source/destination indirection-
    table lookups (banked, arbitrated), double fetches for operands
    split across two physical registers, value-converter slots
    (6/cycle) for narrow-float sources, and a configurable extra
    writeback delay (default 3 cycles, Sec. 3.2.8 — swept in Fig. 12).

    The SM simulates its round-robin share of the grid's blocks at the
    given occupancy; [gpu_ipc] scales to the full chip under the
    homogeneous-blocks assumption (all our workloads satisfy it). *)

type regfile_mode =
  | Baseline
  | Proposed of { writeback_delay : int }
  | Spill of { latency : int; spilled : (int, unit) Hashtbl.t }
      (** a conventional 32-bit file for the registers that stay, plus
          shared-memory spill slots for the keys of [spilled]: spilled
          sources refill before execution and spilled destinations
          write through after writeback, each paying [latency] cycles;
          spill accesses serialise at one per cycle *)

type stats = {
  cycles : int;
  thread_instructions : int;   (** executed on this SM *)
  warp_instructions : int;
  sm_ipc : float;              (** thread instructions / cycle, this SM *)
  gpu_ipc : float;             (** [sm_ipc * num_sms] — the whole-chip IPC
                                   under the homogeneous-blocks assumption *)
  issued_per_cycle : float;
  l1_hit_rate : float;
  tex_hit_rate : float;
  l2_hit_rate : float;
  tex_accesses : int;
  double_fetches : int;        (** operand fetches split over two registers *)
  conversions : int;           (** value-converter uses *)
  issued_slots : int;          (** scheduler slots that issued an instruction
                                   (equals [warp_instructions]) *)
  stall_scoreboard : int;      (** slots lost to pending operands *)
  stall_no_cu : int;           (** slots lost with no free collector unit *)
  stall_bank_conflict : int;   (** slots lost with CUs stuck behind a
                                   register-bank conflict this cycle *)
  stall_spill_port : int;      (** slots lost waiting on an in-flight spilled
                                   register access ([Spill] mode) *)
  stall_barrier : int;         (** slots lost to barrier waits / draining *)
  stall_empty : int;           (** slots with no work left to issue *)
  bank_conflicts : int;        (** operand-fetch cycles serialised behind a
                                   busy register bank *)
  idle_cycles : int;
  spill_loads : int;           (** spilled source refills ([Spill] mode) *)
  spill_stores : int;          (** spilled destination write-throughs *)
}

(** The six [stall_*] counters plus [issued_slots] as a
    {!Gpr_obs.Stall.breakdown}.  Every scheduler slot of every cycle is
    attributed exactly once, so
    [Gpr_obs.Stall.total_slots (breakdown s) = s.cycles * warp_schedulers]. *)
val breakdown : stats -> Gpr_obs.Stall.breakdown

exception Invariant_violation of string
(** Raised by {!run} when [~check:true] and a structural invariant of
    the pipeline model is broken (see below). *)

val run :
  ?check:bool ->
  ?waves:int ->
  ?faults:Gpr_regfile.Fault.t list ->
  ?profile:Gpr_obs.Chrome.t ->
  Gpr_arch.Config.t ->
  trace:Gpr_exec.Trace.t ->
  alloc:Gpr_alloc.Alloc.t ->
  blocks_per_sm:int ->
  mode:regfile_mode ->
  stats
(** [alloc] supplies placements: pass {!Gpr_alloc.Alloc.baseline}'s
    result for [Baseline] mode and the packed allocation for
    [Proposed]. [blocks_per_sm] comes from {!Gpr_arch.Occupancy}.
    [faults] (default none) injects permanent register-file defects
    into the timing model: any {!Gpr_regfile.Fault.Dead_bank} has its
    fetch traffic spare-column remapped onto the nearest healthy bank,
    concentrating conflicts there.  An empty fault list is
    bit-identical to a run without the parameter.
    [waves] (default 6) is the number of block waves fed through each
    resident slot; block traces are drawn round-robin from the grid.

    With [~check:true] (default false) the model audits itself and
    raises {!Invariant_violation} if any of these break:
    - the scoreboard never lets an instruction issue with a pending
      RAW/WAW hazard on its registers;
    - every issued non-sync instruction retires exactly once, and no
      warp retires more than it issued;
    - the issued warp-instruction count equals the total stream length
      of the blocks this SM was given;
    - executed thread instructions never exceed 32x warp issues;
    - every scheduler slot of every cycle is attributed exactly once:
      [issued_slots + sum of stall_* = cycles x warp_schedulers], and
      [issued_slots = warp_instructions];
    - the simulation drains rather than hitting the cycle bailout.

    With [~profile:(collector)] the run additionally emits Chrome
    trace events into the collector: one complete span per warp
    instruction (pid 0, tid = resident warp id, ts/dur in cycles as
    µs), instant marks for barriers and for register-bank conflicts
    (pid 1, tid = bank).  Profiling does not perturb the timing
    model. *)
