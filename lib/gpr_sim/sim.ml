(* Flat cycle-level SM engine.

   Same pipeline model as the original engine (preserved verbatim in
   [Sim_ref] as the differential oracle) but restructured around flat
   preallocated state so the steady-state cycle loop allocates nothing:

   - replay traces are packed once per run into per-(block, warp)
     int-array code streams (unit/pc/dst/active/mem-descriptor/srcs per
     instruction) with memory accesses pre-coalesced into line lists —
     the per-issue Hashtbl coalescing of the original engine runs once
     per static instruction instead of once per dynamic replay;
   - warp state (pointers, ages, barrier flags, outstanding counts) and
     the scoreboard are struct-of-arrays over resident-warp slots, with
     the scoreboard a dense [warps x registers] count array;
   - the operand collectors are struct-of-arrays with per-CU stage
     counters so dead stages are skipped in O(1);
   - retire events live in a grow-only binary min-heap keyed (cycle
     asc, insertion seq desc) — the descending seq tie-break reproduces
     the original engine's LIFO bucket order exactly, which matters
     when two blocks finish on the same cycle and compete for feeder
     blocks;
   - the writeback bus and the per-cycle bank/indirection-table claims
     use generation-stamped rings instead of per-cycle hash tables;
   - the idle fast-forward jumps straight to the next scheduled retire
     (scoreboard release / barrier release) while replaying each
     scheduler's frozen stall cause across the skipped cycles, so
     stall attribution stays exact.

   Byte-equality with [Sim_ref] on every stats field — including the
   Hashtbl-iteration order of coalesced cache lines, which the
   preprocessor captures by building the very same Hashtbl once — is
   enforced by the equivalence suite in test/test_sim.ml and fuzzed by
   `gpr check`'s obs stage. *)

open Gpr_isa.Types
module Trace = Gpr_exec.Trace
module Alloc = Gpr_alloc.Alloc

type regfile_mode =
  | Baseline
  | Proposed of { writeback_delay : int }
  | Spill of { latency : int; spilled : (int, unit) Hashtbl.t }

type stats = {
  cycles : int;
  thread_instructions : int;
  warp_instructions : int;
  sm_ipc : float;
  gpu_ipc : float;
  issued_per_cycle : float;
  l1_hit_rate : float;
  tex_hit_rate : float;
  l2_hit_rate : float;
  tex_accesses : int;
  double_fetches : int;
  conversions : int;
  issued_slots : int;
  stall_scoreboard : int;
  stall_no_cu : int;
  stall_bank_conflict : int;
  stall_spill_port : int;
  stall_barrier : int;
  stall_empty : int;
  bank_conflicts : int;
  idle_cycles : int;
  spill_loads : int;
  spill_stores : int;
}

let breakdown (s : stats) =
  {
    Gpr_obs.Stall.bd_issued = s.issued_slots;
    bd_stalls =
      [
        (Gpr_obs.Stall.Scoreboard, s.stall_scoreboard);
        (Gpr_obs.Stall.No_free_cu, s.stall_no_cu);
        (Gpr_obs.Stall.Bank_conflict, s.stall_bank_conflict);
        (Gpr_obs.Stall.Spill_port, s.stall_spill_port);
        (Gpr_obs.Stall.Barrier, s.stall_barrier);
        (Gpr_obs.Stall.Empty, s.stall_empty);
      ];
  }

(* Aggregate metrics (recorded only when Gpr_obs.Metrics is enabled). *)
let m_runs = Gpr_obs.Metrics.counter "sim.runs"
let m_cycles = Gpr_obs.Metrics.counter "sim.cycles"
let m_issued = Gpr_obs.Metrics.counter "sim.issued_slots"
let m_bank_conflicts = Gpr_obs.Metrics.counter "sim.bank_conflicts"
let m_spill_accesses = Gpr_obs.Metrics.counter "sim.spill_accesses"

let m_stall =
  List.map
    (fun c ->
      (c, Gpr_obs.Metrics.counter ("sim.stall." ^ Gpr_obs.Stall.name c)))
    Gpr_obs.Stall.all

exception Invariant_violation of string

let violated fmt = Printf.ksprintf (fun s -> raise (Invariant_violation s)) fmt

(* ------------------------------------------------------------------ *)
(* Packed-stream encoding.

   One instruction is [6 + nsrcs] words in its stream's code array:

     [o+0]  unit tag        (0 spu, 1 sfu, 2 ldst, 3 sync)
     [o+1]  pc
     [o+2]  destination register, or -1
     [o+3]  active-lane count
     [o+4]  memory-descriptor index, or -1
     [o+5]  number of (sorted, distinct) source registers
     [o+6…] source registers

   Memory descriptors (one per static Ldst-with-memory instruction)
   live in parallel flat arrays: kind (0 param, 1 shared, 2 global,
   3 texture), the shared bank-conflict factor, and for global/texture
   the pre-coalesced cache-line ids in the exact Hashtbl iteration
   order the reference engine visits them in. *)

let u_spu = 0
let u_sfu = 1
let u_ldst = 2
let u_sync = 3

let tag_of_unit = function
  | Spu -> u_spu
  | Sfu -> u_sfu
  | Ldst -> u_ldst
  | Sync -> u_sync

let unit_label = function
  | 0 -> "spu"
  | 1 -> "sfu"
  | 2 -> "ldst"
  | _ -> "sync"

(* Operand stages. *)
let s_loc = 0
let s_fetch = 1
let s_convert = 2
let s_done = 3

(* Stall causes as dense codes (c_issued marks an issued slot). *)
let c_scoreboard = 0
let c_no_cu = 1
let c_bank_conflict = 2
let c_spill_port = 3
let c_barrier = 4
let c_empty = 5
let c_issued = -1

(* Minimal growable int vector for the preprocessor. *)
module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let b = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let to_array v = Array.sub v.a 0 v.n
end

let run ?(check = false) ?(waves = 6) ?(faults = []) ?profile
    (cfg : Gpr_arch.Config.t) ~(trace : Trace.t) ~(alloc : Alloc.t)
    ~blocks_per_sm ~mode =
  let proposed_delay =
    match mode with
    | Baseline | Spill _ -> 0
    | Proposed { writeback_delay } -> writeback_delay
  in
  let is_proposed = match mode with Proposed _ -> true | _ -> false in
  let spilled_tbl, spill_latency =
    match mode with
    | Spill { latency; spilled } -> (Some spilled, latency)
    | Baseline | Proposed _ -> (None, 0)
  in

  (* ---------------- preprocessing: pack the trace ---------------- *)
  let wpb = trace.Trace.warps_per_block in
  let nblocks = trace.Trace.num_blocks in
  let nstreams = max 1 (nblocks * wpb) in
  let in_range (it : Trace.item) =
    it.t_block_id >= 0 && it.t_block_id < nblocks && it.t_warp >= 0
    && it.t_warp < wpb
  in
  (* Bucket item indices per (block, warp) stream, in trace order. *)
  let s_count = Array.make nstreams 0 in
  Array.iter
    (fun it ->
      if in_range it then
        let s = (it.Trace.t_block_id * wpb) + it.Trace.t_warp in
        s_count.(s) <- s_count.(s) + 1)
    trace.items;
  let s_items = Array.map (fun n -> Array.make n 0) s_count in
  let s_fill = Array.make nstreams 0 in
  Array.iteri
    (fun idx it ->
      if in_range it then begin
        let s = (it.Trace.t_block_id * wpb) + it.Trace.t_warp in
        s_items.(s).(s_fill.(s)) <- idx;
        s_fill.(s) <- s_fill.(s) + 1
      end)
    trace.items;
  (* Memory descriptors. *)
  let md_kind = Vec.create () in
  let md_factor = Vec.create () in
  let md_loff = Vec.create () in
  let md_lcnt = Vec.create () in
  let md_lines = Vec.create () in
  let encode_mem (m : Trace.mem_access) =
    let id = md_kind.Vec.n in
    (match m.m_space with
     | Param ->
       Vec.push md_kind 0;
       Vec.push md_factor 1;
       Vec.push md_loff 0;
       Vec.push md_lcnt 0
     | Shared ->
       let counts = Array.make 32 0 in
       Array.iter
         (fun a ->
           let b = a / 4 mod 32 in
           counts.(b) <- counts.(b) + 1)
         m.m_addresses;
       let factor = Array.fold_left max 1 counts in
       Vec.push md_kind 1;
       Vec.push md_factor factor;
       Vec.push md_loff 0;
       Vec.push md_lcnt 0
     | Global | Texture ->
       (* Coalesce into cache-line transactions through the very same
          Hashtbl the reference engine builds per dynamic issue, so the
          line visit order (which steers L2/DRAM queueing) is captured
          exactly. *)
       let lines = Hashtbl.create 8 in
       Array.iter
         (fun a -> Hashtbl.replace lines (a / cfg.l1_line_bytes) ())
         m.m_addresses;
       let off = md_lines.Vec.n in
       Hashtbl.iter (fun line () -> Vec.push md_lines line) lines;
       Vec.push md_kind (if m.m_space = Texture then 3 else 2);
       Vec.push md_factor 1;
       Vec.push md_loff off;
       Vec.push md_lcnt (Hashtbl.length lines));
    id
  in
  (* Encode every stream. *)
  let max_reg = ref (-1) in
  let max_srcs = ref 1 in
  let st_code = Array.make nstreams [||] in
  let st_off = Array.make nstreams [||] in
  let st_bars = Array.make nstreams 0 in
  let code_buf = Vec.create () in
  let off_buf = Vec.create () in
  for s = 0 to nstreams - 1 do
    code_buf.Vec.n <- 0;
    off_buf.Vec.n <- 0;
    let bars = ref 0 in
    Array.iter
      (fun idx ->
        let it = trace.items.(idx) in
        Vec.push off_buf code_buf.Vec.n;
        if it.t_unit = Sync then incr bars;
        let srcs = List.sort_uniq compare it.t_srcs in
        let ns = List.length srcs in
        if ns > !max_srcs then max_srcs := ns;
        let dst = match it.t_dst with Some d -> d | None -> -1 in
        if dst > !max_reg then max_reg := dst;
        let mem = match it.t_mem with Some m -> encode_mem m | None -> -1 in
        Vec.push code_buf (tag_of_unit it.t_unit);
        Vec.push code_buf it.t_pc;
        Vec.push code_buf dst;
        Vec.push code_buf it.t_active;
        Vec.push code_buf mem;
        Vec.push code_buf ns;
        List.iter
          (fun r ->
            if r > !max_reg then max_reg := r;
            Vec.push code_buf r)
          srcs)
      s_items.(s);
    Vec.push off_buf code_buf.Vec.n;
    st_code.(s) <- Vec.to_array code_buf;
    st_off.(s) <- Vec.to_array off_buf;
    st_bars.(s) <- !bars
  done;
  let s_len = s_count in
  let md_kind = Vec.to_array md_kind in
  let md_factor = Vec.to_array md_factor in
  let md_loff = Vec.to_array md_loff in
  let md_lcnt = Vec.to_array md_lcnt in
  let md_lines = Vec.to_array md_lines in

  (* Per-register precomputation (bank bases, split second banks,
     converter need, spill residence). *)
  let nreg = !max_reg + 1 in
  let rg_base0 = Array.make (max 1 nreg) 0 in
  let rg_base1 = Array.make (max 1 nreg) (-1) in
  let rg_convert = Array.make (max 1 nreg) false in
  let rg_spilled = Array.make (max 1 nreg) false in
  for r = 0 to nreg - 1 do
    (match Alloc.lookup alloc r with
     | None -> rg_base0.(r) <- r
     | Some p ->
       rg_base0.(r) <- p.reg0;
       if is_proposed && Alloc.is_split p then rg_base1.(r) <- p.reg1;
       if is_proposed && p.is_float && p.slices < 8 then
         rg_convert.(r) <- true);
    match spilled_tbl with
    | Some tbl -> rg_spilled.(r) <- Hashtbl.mem tbl r
    | None -> ()
  done;
  let spill_free = ref 0 in
  let spill_loads = ref 0 and spill_stores = ref 0 in

  (* --- This SM's workload: [waves] waves of resident blocks, drawing
     block traces round-robin from the measured grid (homogeneous
     grids, as in the reference engine). --- *)
  let nfeed = max 1 (waves * blocks_per_sm) in
  let feeder = Array.init nfeed (fun i -> i mod nblocks) in
  let fd_ptr = ref 0 in

  (* --- Memory hierarchy (identical model and state to Sim_ref). --- *)
  let l1 =
    Cache.create ~capacity_bytes:cfg.l1_bytes ~line_bytes:cfg.l1_line_bytes
      ~assoc:4
  in
  let tex =
    Cache.create ~capacity_bytes:cfg.tex_bytes ~line_bytes:cfg.l1_line_bytes
      ~assoc:4
  in
  let l2 =
    Cache.create
      ~capacity_bytes:(cfg.l2_bytes / cfg.num_sms)
      ~line_bytes:cfg.l1_line_bytes ~assoc:8
  in
  let tex_accesses = ref 0 in
  let dram_free = ref 0 in
  let l2_free = ref 0 in

  (* Latency and LD/ST-busy cycles for a memory descriptor, returned
     through [ml_lat]/[ml_busy] so the per-issue call allocates
     nothing. *)
  let ml_lat = ref 0 in
  let ml_busy = ref 0 in
  let rec mem_latency now md =
    if md < 0 then begin
      ml_lat := cfg.spu_latency;
      ml_busy := 1
    end
    else
      match md_kind.(md) with
      | 0 ->
        (* constant cache *)
        ml_lat := cfg.spu_latency * 2;
        ml_busy := 1
      | 1 ->
        let factor = md_factor.(md) in
        ml_lat := cfg.shared_latency + factor - 1;
        ml_busy := factor
      | kind ->
        let off = md_loff.(md) and cnt = md_lcnt.(md) in
        let ntxn = max 1 cnt in
        ml_lat := worst_line now kind off cnt 0 0 + ntxn - 1;
        ml_busy := ntxn
  and worst_line now kind off cnt i worst =
    if i >= cnt then worst
    else begin
      let line = md_lines.(off + i) in
      let addr = line * cfg.l1_line_bytes in
      let l1_hit =
        if kind = 3 then begin
          incr tex_accesses;
          Cache.access tex addr
        end
        else Cache.access l1 addr
      in
      let lat =
        if l1_hit then cfg.l1_hit_latency
        else if Cache.access l2 addr then begin
          l2_free := max !l2_free now + cfg.l2_line_interval;
          !l2_free - now + cfg.l2_hit_latency
        end
        else begin
          l2_free := max !l2_free now + cfg.l2_line_interval;
          dram_free := max !dram_free now + cfg.dram_line_interval;
          !dram_free - now + cfg.dram_latency
        end
      in
      worst_line now kind off cnt (i + 1) (if lat > worst then lat else worst)
    end
  in

  (* ---------------- resident warps: struct of arrays ---------------- *)
  let nw = blocks_per_sm * wpb in
  let wa_stream = Array.make (max 1 nw) 0 in
  let wa_ptr = Array.make (max 1 nw) 0 in
  let wa_len = Array.make (max 1 nw) 0 in
  let wa_age = Array.make (max 1 nw) 0 in
  let wa_bars = Array.make (max 1 nw) 0 in
  let wa_out = Array.make (max 1 nw) 0 in
  let wa_barrier = Array.make (max 1 nw) false in
  let wa_active = Array.make (max 1 nw) false in
  (* Dense scoreboard: pending-writer count per (warp slot, register). *)
  let sb = Array.make (max 1 (nw * nreg)) 0 in
  (* Decoded next instruction per warp slot — one contiguous row
     [unit; dst; nsrcs; srcs...] per warp (unit -1 = stream drained),
     refreshed only when the warp's pointer moves.  The issue and
     stall-classification walks touch just this row and the
     scoreboard, never the packed streams. *)
  let nx_stride = 3 + !max_srcs in
  let nx = Array.make (max 1 (nw * nx_stride)) (-1) in
  (* Cached scoreboard readiness of each warp's decoded next
     instruction.  A warp's readiness can only change when its pointer
     moves (decode), when its own issue bumps the destination's pending
     count, or when its own retire releases one — all three refresh the
     cache, so the scheduler scans read a single flag per warp. *)
  let wa_sbr = Array.make (max 1 nw) false in
  let rec sb_srcs_ok b base ns k =
    k >= ns || (sb.(base + nx.(b + 3 + k)) = 0 && sb_srcs_ok b base ns (k + 1))
  in
  let scoreboard_ready wi =
    let b = wi * nx_stride in
    let base = wi * nreg in
    sb_srcs_ok b base nx.(b + 2) 0
    &&
    let d = nx.(b + 1) in
    d < 0 || sb.(base + d) = 0
  in
  let decode_next wi =
    let b = wi * nx_stride in
    if wa_ptr.(wi) >= wa_len.(wi) then begin
      nx.(b) <- -1;
      wa_sbr.(wi) <- true
    end
    else begin
      let st = wa_stream.(wi) in
      let code = st_code.(st) in
      let o = st_off.(st).(wa_ptr.(wi)) in
      nx.(b) <- code.(o);
      nx.(b + 1) <- code.(o + 2);
      let ns = code.(o + 5) in
      nx.(b + 2) <- ns;
      for k = 0 to ns - 1 do
        nx.(b + 3 + k) <- code.(o + 6 + k)
      done;
      wa_sbr.(wi) <- scoreboard_ready wi
    end
  in
  let rb_present = Array.make blocks_per_sm false in
  let age_counter = ref 0 in

  (* Per-scheduler active-warp lists, kept in the reference engine's
     active_warps order (launch append, order-preserving removal). *)
  let nsched = cfg.warp_schedulers in
  (* Power-of-two fast paths for the hot modulo reductions ([mod] is an
     idiv; both GTX 480 and V100 have power-of-two scheduler and bank
     counts, so the generic path only runs for exotic custom configs). *)
  let sched_mask = if nsched land (nsched - 1) = 0 then nsched - 1 else -1 in
  let sched_of wi = if sched_mask >= 0 then wi land sched_mask else wi mod nsched in
  let nbanks = cfg.register_banks in
  let bank_mask = if nbanks land (nbanks - 1) = 0 then nbanks - 1 else -1 in
  let bank_of x = if bank_mask >= 0 then x land bank_mask else x mod nbanks in
  (* Dead register banks are spare-column remapped: their fetch traffic
     is served by the nearest healthy bank (identity map when no fault
     names a bank, so fault-free runs are bit-identical to before). *)
  let bank_redirect =
    Gpr_regfile.Fault.bank_redirect
      (Gpr_regfile.Fault.compile ~banks:nbanks ~regs:64 faults)
  in
  let rbank_of x = bank_redirect.(bank_of x) in
  (* Incremental issuable set, one bit per warp of the scheduler (bit
     [wi / nsched]): [m_ready] holds warps whose decoded next
     instruction is a non-sync unit with a clean scoreboard and no
     barrier; [m_sync] the same for bar.sync with no outstanding
     retires.  Refreshed at every event that can change a warp's
     issuability — decode, its own issue's scoreboard bump, its own
     retire, barrier park/release, launch and block removal — so the
     GTO pick reads [m_sync | m_ready] (the ready half gated on a free
     collector unit, the only cross-warp input) and visits exactly the
     issuable warps instead of scanning past stalled ones.  Configs
     with more warps per scheduler than bits fall back to the scan
     path; the age-sorted scan lists stay authoritative for stall
     classification either way. *)
  let use_mask = nw > 0 && (nw - 1) / nsched <= 61 in
  let m_ready = Array.make nsched 0 in
  let m_sync = Array.make nsched 0 in
  let w_bit = Array.init (max 1 nw) (fun wi -> 1 lsl (wi / nsched)) in
  let refresh_mask wi =
    if use_mask then begin
      let sd = sched_of wi in
      let bit = w_bit.(wi) in
      let u = nx.(wi * nx_stride) in
      if
        wa_active.(wi) && (not wa_barrier.(wi)) && wa_sbr.(wi) && u >= 0
      then
        if u = u_sync then begin
          m_ready.(sd) <- m_ready.(sd) land lnot bit;
          m_sync.(sd) <-
            (if wa_out.(wi) = 0 then m_sync.(sd) lor bit
             else m_sync.(sd) land lnot bit)
        end
        else begin
          m_ready.(sd) <- m_ready.(sd) lor bit;
          m_sync.(sd) <- m_sync.(sd) land lnot bit
        end
      else begin
        m_ready.(sd) <- m_ready.(sd) land lnot bit;
        m_sync.(sd) <- m_sync.(sd) land lnot bit
      end
    end
  in
  (* Trailing-zero count for single-bit masks (the extracted LSB). *)
  let ctz v =
    let v = ref v and n = ref 0 in
    if !v land 0xFFFFFFFF = 0 then begin v := !v lsr 32; n := !n + 32 end;
    if !v land 0xFFFF = 0 then begin v := !v lsr 16; n := !n + 16 end;
    if !v land 0xFF = 0 then begin v := !v lsr 8; n := !n + 8 end;
    if !v land 0xF = 0 then begin v := !v lsr 4; n := !n + 4 end;
    if !v land 0x3 = 0 then begin v := !v lsr 2; n := !n + 2 end;
    if !v land 0x1 = 0 then incr n;
    !n
  in
  let sched_clean = Array.make nsched false in
  (* Scan-prefix mark per scheduler: positions below it in [scan_w]
     hold warps known to be non-issuable (and non-drained) since the
     last walk, so the GTO scan resumes there.  Any event that could
     make an older warp issuable — a retire that frees it, a barrier
     release, collector units coming back from exhaustion, resident
     blocks changing — resets the mark to zero.  List appends
     (launches) land above the mark and need no reset. *)
  let scan_pfx = Array.make nsched 0 in
  let dirty_all () =
    Array.fill sched_clean 0 nsched false;
    Array.fill scan_pfx 0 nsched 0
  in
  let sched_w = Array.init nsched (fun _ -> Array.make (max 1 nw) 0) in
  let sched_n = Array.make nsched 0 in
  (* Scan lists for the issue/stall walks: same warps in the same
     (age-sorted) order, but drained warps — stream exhausted and not
     parked at a barrier — are pruned lazily during walks.  Such a warp
     can never issue again and is never a stall candidate, so dropping
     it is invisible to the reference semantics; the full [sched_w]
     lists stay authoritative for LRR round-robin indexing. *)
  let scan_w = Array.init nsched (fun _ -> Array.make (max 1 nw) 0) in
  let scan_n = Array.make nsched 0 in
  let sched_push wi =
    let sd = sched_of wi in
    sched_clean.(sd) <- false;
    sched_w.(sd).(sched_n.(sd)) <- wi;
    sched_n.(sd) <- sched_n.(sd) + 1;
    scan_w.(sd).(scan_n.(sd)) <- wi;
    scan_n.(sd) <- scan_n.(sd) + 1
  in
  let remove_block_warps slot =
    dirty_all ();
    for sd = 0 to nsched - 1 do
      let a = sched_w.(sd) in
      let n = sched_n.(sd) in
      let k = ref 0 in
      for i = 0 to n - 1 do
        let wi = a.(i) in
        if wi / wpb = slot then begin
          wa_active.(wi) <- false;
          refresh_mask wi
        end
        else begin
          a.(!k) <- wi;
          incr k
        end
      done;
      sched_n.(sd) <- !k;
      let a = scan_w.(sd) in
      let n = scan_n.(sd) in
      let k = ref 0 in
      for i = 0 to n - 1 do
        let wi = a.(i) in
        if wi / wpb <> slot then begin
          a.(!k) <- wi;
          incr k
        end
      done;
      scan_n.(sd) <- !k
    done
  in
  let drained wi = nx.(wi * nx_stride) < 0 && not wa_barrier.(wi) in

  let warp_done wi = wa_ptr.(wi) >= wa_len.(wi) && wa_out.(wi) = 0 in
  let rec warps_done base w =
    w >= wpb || (warp_done (base + w) && warps_done base (w + 1))
  in
  let block_done slot = warps_done (slot * wpb) 0 in
  let launch_block slot block_id =
    let base = slot * wpb in
    for w = 0 to wpb - 1 do
      incr age_counter;
      let wi = base + w in
      let s = (block_id * wpb) + w in
      wa_stream.(wi) <- s;
      wa_ptr.(wi) <- 0;
      wa_len.(wi) <- s_len.(s);
      wa_age.(wi) <- !age_counter;
      wa_bars.(wi) <- st_bars.(s);
      wa_out.(wi) <- 0;
      wa_barrier.(wi) <- false;
      wa_active.(wi) <- true;
      decode_next wi;
      refresh_mask wi
    done;
    (* Append in warp order, as the reference engine's
       [active_warps @ warps] does. *)
    for w = 0 to wpb - 1 do
      sched_push (base + w)
    done;
    rb_present.(slot) <- true
  in
  let rec try_launch slot =
    if !fd_ptr >= nfeed then rb_present.(slot) <- false
    else begin
      let b = feeder.(!fd_ptr) in
      incr fd_ptr;
      launch_block slot b;
      (* A block whose warps have empty streams retires immediately. *)
      if block_done slot then begin
        remove_block_warps slot;
        try_launch slot
      end
    end
  in
  for slot = 0 to blocks_per_sm - 1 do
    try_launch slot
  done;

  (match profile with
   | Some ch ->
     Gpr_obs.Chrome.name_process ch ~pid:0 "SM0 warps";
     Gpr_obs.Chrome.name_process ch ~pid:1 "register-file banks";
     for w = 0 to (blocks_per_sm * wpb) - 1 do
       Gpr_obs.Chrome.name_thread ch ~pid:0 ~tid:w
         (Printf.sprintf "warp %d" w)
     done;
     for b = 0 to cfg.register_banks - 1 do
       Gpr_obs.Chrome.name_thread ch ~pid:1 ~tid:b
         (Printf.sprintf "bank %d" b)
     done
   | None -> ());

  (* ---------------- collector units: struct of arrays ---------------- *)
  let ncu = cfg.operand_collectors in
  let max_ops = !max_srcs in
  let cu_busy = Array.make ncu false in
  let cu_free = ref ncu in
  let cu_warp = Array.make ncu 0 in
  let cu_unit = Array.make ncu 0 in
  let cu_pc = Array.make ncu 0 in
  let cu_active = Array.make ncu 0 in
  let cu_dst = Array.make ncu (-1) in
  let cu_lat = Array.make ncu 0 in
  let cu_busyc = Array.make ncu 0 in
  let cu_issued_at = Array.make ncu 0 in
  let cu_nops = Array.make ncu 0 in
  let cu_pending = Array.make ncu 0 in
  let cu_nfetch = Array.make ncu 0 in
  let cu_nloc = Array.make ncu 0 in
  (* Busy CUs whose operands are all collected, waiting on an exec
     unit.  Lets the dispatch stage skip cycles with nothing ready.
     [ncu_fetch]/[ncu_loc] count CUs with at least one operand in the
     corresponding stage, so the arbitration walks can stop as soon as
     every live CU has been visited. *)
  let n_ready = ref 0 in
  let ncu_fetch = ref 0 in
  let ncu_loc = ref 0 in
  (* Ready CUs as a bitmask (bit i = CU i ready), so dispatch visits
     exactly the ready slots in ascending index order — the order the
     reference engine's full scan dispatches in, which matters because
     it decides who wins the exec-unit and writeback-slot races.  Only
     usable while every CU index fits one OCaml int. *)
  let cu_mask_ok = ncu <= 62 in
  (* One mask per exec-unit class: dispatch iterates the OR of the
     classes that still have capacity this cycle, so the walk touches
     only genuinely dispatchable CUs while keeping global index
     order. *)
  let ready_spu = ref 0 in
  let ready_sfu = ref 0 in
  let ready_ldst = ref 0 in
  (* ctz via the classic mod-67 perfect hash (2 is a primitive root
     mod 67, so 2^k mod 67 is injective for k = 0..62). *)
  let ctz_tbl = Array.make 67 0 in
  for k = 0 to 62 do
    ctz_tbl.(1 lsl k mod 67) <- k
  done;
  (* [u] is passed explicitly because [do_issue] marks a fresh CU
     ready before it has stored the unit into [cu_unit]. *)
  let mark_ready i u =
    incr n_ready;
    if cu_mask_ok then begin
      let m =
        if u = u_spu then ready_spu
        else if u = u_sfu then ready_sfu
        else ready_ldst
      in
      m := !m lor (1 lsl i)
    end
  in
  let op_stage = Array.make (ncu * max_ops) s_done in
  let op_arch = Array.make (ncu * max_ops) 0 in
  let op_b0 = Array.make (ncu * max_ops) 0 in
  let op_b1 = Array.make (ncu * max_ops) (-1) in
  let op_bi = Array.make (ncu * max_ops) 0 in
  let op_nb = Array.make (ncu * max_ops) 0 in
  let op_conv = Array.make (ncu * max_ops) false in
  (* Population counters so empty pipeline stages cost O(1). *)
  let n_loc = ref 0 in
  let n_fetch = ref 0 in
  let n_conv = ref 0 in
  let rec lowest_free_cu i = if cu_busy.(i) then lowest_free_cu (i + 1) else i in

  (* ---------------- retire-event heap ----------------
     Min-heap on (cycle asc, seq desc): for events on the same cycle
     the most recently scheduled retires first, matching the reference
     engine's prepend-then-iterate bucket order. *)
  let ev_cyc = ref (Array.make 256 0) in
  let ev_seq = ref (Array.make 256 0) in
  let ev_wrp = ref (Array.make 256 0) in
  let ev_dst = ref (Array.make 256 0) in
  let ev_n = ref 0 in
  let ev_stamp = ref 0 in
  (* Scratch cursors for the heap sifts (hoisted: allocation-free). *)
  let ev_i = ref 0 in
  let ev_go = ref false in
  let ev_swap i j =
    let c = !ev_cyc and s = !ev_seq and w = !ev_wrp and d = !ev_dst in
    let t = c.(i) in c.(i) <- c.(j); c.(j) <- t;
    let t = s.(i) in s.(i) <- s.(j); s.(j) <- t;
    let t = w.(i) in w.(i) <- w.(j); w.(j) <- t;
    let t = d.(i) in d.(i) <- d.(j); d.(j) <- t
  in
  let ev_before i j =
    let c = !ev_cyc and s = !ev_seq in
    c.(i) < c.(j) || (c.(i) = c.(j) && s.(i) > s.(j))
  in
  let ev_push cycle warp dst =
    if !ev_n = Array.length !ev_cyc then begin
      let grow a =
        let b = Array.make (2 * !ev_n) 0 in
        Array.blit !a 0 b 0 !ev_n;
        a := b
      in
      grow ev_cyc; grow ev_seq; grow ev_wrp; grow ev_dst
    end;
    incr ev_stamp;
    let i = !ev_n in
    (!ev_cyc).(i) <- cycle;
    (!ev_seq).(i) <- !ev_stamp;
    (!ev_wrp).(i) <- warp;
    (!ev_dst).(i) <- dst;
    ev_n := !ev_n + 1;
    ev_i := i;
    ev_go := true;
    while !ev_go && !ev_i > 0 do
      let p = (!ev_i - 1) / 2 in
      if ev_before !ev_i p then begin
        ev_swap !ev_i p;
        ev_i := p
      end
      else ev_go := false
    done;
  in
  (* Out-parameters of [ev_pop], so a retire allocates nothing. *)
  let ev_pw = ref 0 in
  let ev_pd = ref 0 in
  let ev_pop () =
    ev_pw := (!ev_wrp).(0);
    ev_pd := (!ev_dst).(0);
    ev_n := !ev_n - 1;
    if !ev_n > 0 then begin
      ev_swap 0 !ev_n;
      ev_i := 0;
      ev_go := true;
      while !ev_go do
        let i = !ev_i in
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = if l < !ev_n && ev_before l i then l else i in
        let m = if r < !ev_n && ev_before r m then r else m in
        if m <> i then begin
          ev_swap i m;
          ev_i := m
        end
        else ev_go := false
      done
    end
  in

  (* ---------------- writeback-bus ring ----------------
     Slot [c land (size-1)] holds the bus usage of cycle [c]; the
     stored cycle tag makes stale (past) entries read as free, and the
     ring regrows whenever two live future bookings would collide. *)
  let wb_size = ref 2048 in
  let wb_cyc = ref (Array.make !wb_size (-1)) in
  let wb_cnt = ref (Array.make !wb_size 0) in
  let cycle = ref 0 in
  let rec wb_grow () =
    let osize = !wb_size and ocyc = !wb_cyc and ocnt = !wb_cnt in
    wb_size := 2 * osize;
    wb_cyc := Array.make !wb_size (-1);
    wb_cnt := Array.make !wb_size 0;
    let ok = ref true in
    for i = 0 to osize - 1 do
      if ocyc.(i) >= !cycle then begin
        let j = ocyc.(i) land (!wb_size - 1) in
        if (!wb_cyc).(j) >= !cycle then ok := false
        else begin
          (!wb_cyc).(j) <- ocyc.(i);
          (!wb_cnt).(j) <- ocnt.(i)
        end
      end
    done;
    if not !ok then begin
      wb_size := osize;
      wb_cyc := ocyc;
      wb_cnt := ocnt;
      wb_grow ()
    end
  in
  let rec alloc_wb_slot c =
    let i = c land (!wb_size - 1) in
    let cyc = !wb_cyc and cnt = !wb_cnt in
    if cyc.(i) = c then
      if cnt.(i) < cfg.writeback_width then begin
        cnt.(i) <- cnt.(i) + 1;
        c
      end
      else alloc_wb_slot (c + 1)
    else if cyc.(i) >= !cycle then begin
      (* live booking for a different in-flight cycle: ring too small *)
      wb_grow ();
      alloc_wb_slot c
    end
    else begin
      cyc.(i) <- c;
      cnt.(i) <- 1;
      c
    end
  in

  (* Generation-stamped per-cycle claims (register banks, indirection
     table banks). *)
  let bank_stamp = Array.make cfg.register_banks (-1) in
  let tbl_stamp = Array.make cfg.register_banks (-1) in

  (* Stats. *)
  let double_fetches = ref 0 in
  let conversions = ref 0 in
  let issued_slots = ref 0 in
  let stall_scoreboard = ref 0 in
  let stall_no_cu = ref 0 in
  let stall_bank_conflict = ref 0 in
  let stall_spill_port = ref 0 in
  let stall_barrier = ref 0 in
  let stall_empty = ref 0 in
  let bank_conflicts = ref 0 in
  let bump cause n =
    if cause = c_scoreboard then stall_scoreboard := !stall_scoreboard + n
    else if cause = c_no_cu then stall_no_cu := !stall_no_cu + n
    else if cause = c_bank_conflict then
      stall_bank_conflict := !stall_bank_conflict + n
    else if cause = c_spill_port then stall_spill_port := !stall_spill_port + n
    else if cause = c_barrier then stall_barrier := !stall_barrier + n
    else stall_empty := !stall_empty + n
  in
  let idle_cycles = ref 0 in
  let issued_warp_instrs = ref 0 in
  let executed_threads = ref 0 in
  let issued_nonsync = ref 0 in
  let retired = ref 0 in
  let expected_warp_instrs =
    if not check then 0
    else begin
      let acc = ref 0 in
      Array.iter
        (fun b ->
          for w = 0 to wpb - 1 do
            acc := !acc + s_len.((b * wpb) + w)
          done)
        feeder;
      !acc
    end
  in

  (* Exec units: next cycle each may accept work. *)
  let spu_free = [| 0; 0 |] in
  let sfu_free = ref 0 in
  let ldst_free = ref 0 in

  let finished () =
    !fd_ptr >= nfeed && Array.for_all not rb_present
  in
  let retire_block_if_done slot =
    if rb_present.(slot) && block_done slot then begin
      remove_block_warps slot;
      try_launch slot
    end
  in

  (* GTO/LRR state per scheduler; the recorded outcome of the current
     cycle per scheduler slot feeds the idle fast-forward. *)
  let last_idx = Array.make nsched (-1) in
  let last_age = Array.make nsched 0 in
  let rr_ptr = Array.make nsched 0 in
  let slot_cause = Array.make nsched c_issued in
  (* Stall memo: when a scheduler finds nothing issuable, that outcome
     (and its cause) can only change if one of its warps retires, a
     barrier is set or released, the resident-block population
     changes, or a collector unit frees up from exhaustion.  Until one
     of those events marks the scheduler dirty, the frozen cause is
     replayed without rescanning — only the bank-conflict-vs-no-CU
     leaf, which depends on this cycle's fetch arbitration, is
     recomputed. *)
  let memo_cause = Array.make nsched c_empty in
  let memo_bank = Array.make nsched false in
  (* Warp blamed by the memoized classification (-1 when the
     scheduler's warps have all drained).  A retire dirties the memo
     only if it could change the outcome: the retired warp became
     issuable, or it is the blamed warp (whose leaf cause reads its
     scoreboard).  Retires never change list membership or drained
     status, so any other warp's retire leaves both the no-pick
     verdict and the frozen cause intact. *)
  let memo_blame = Array.make nsched (-1) in
  (* Out-parameter of [classify_stall]: the warp it blamed. *)
  let classify_blame = ref (-1) in

  (* Register-fetch bank conflict seen this cycle (set by the operand
     arbitration stage, consumed by the stall classifier). *)
  let bank_conflict_cycle = ref false in

  let can_issue wi =
    (not wa_barrier.(wi))
    &&
    let u = nx.(wi * nx_stride) in
    u >= 0
    && (if u = u_sync then wa_out.(wi) = 0 else !cu_free > 0)
    && wa_sbr.(wi)
  in

  (* Why did this scheduler slot go unused?  Mirrors the reference
     engine: the oldest warp with work pending (or parked at a barrier)
     is blamed; warps that drained their stream never claim the slot. *)
  let rec spill_src_blocked b base ns k =
    k < ns
    && ((let r = nx.(b + 3 + k) in
         sb.(base + r) > 0 && rg_spilled.(r))
       || spill_src_blocked b base ns (k + 1))
  in
  (* Scratch cursors for the scheduler-list walks below (classify and
     the GTO scan never nest, so they can share them); hoisted so the
     walks allocate nothing. *)
  let scr_best = ref (-1) in
  let scr_k = ref 0 in
  let scr_j = ref 0 in
  let scr_flag = ref false in
  let scr_cnt = ref 0 in
  let scr_i = ref 0 in
  (* Per-cycle exec-unit capacity left (dispatch stage): 2 SPU halves,
     1 SFU, 1 LD/ST.  Once all are claimed no later ready CU can
     dispatch this cycle, so the walk stops early. *)
  let scr_spu = ref 0 in
  let scr_sfu = ref false in
  let scr_ldst = ref false in
  let classify_stall sd =
    (* Scheduler lists are age-sorted (ages come from a monotone
       counter at launch, appends happen in launch order, removals
       preserve order), so the first warp with work pending is the
       oldest — the one the reference engine's min-age fold blames.
       Drained warps encountered on the way are pruned for good. *)
    let a = scan_w.(sd) in
    let n = scan_n.(sd) in
    let best = scr_best and k = scr_k and j = scr_j in
    best := -1;
    k := 0;
    j := 0;
    while !best < 0 && !j < n do
      let wi = a.(!j) in
      if not (drained wi) then begin
        a.(!k) <- wi;
        incr k;
        best := wi
      end;
      incr j
    done;
    if !j < n then begin
      if !k < !j then Array.blit a !j a !k (n - !j);
      scan_n.(sd) <- !k + (n - !j)
    end
    else scan_n.(sd) <- !k;
    classify_blame := !best;
    if !best < 0 then c_empty
    else begin
      let wi = !best in
      if wa_barrier.(wi) then c_barrier
      else begin
        let b = wi * nx_stride in
        if not wa_sbr.(wi) then begin
          let base = wi * nreg in
          let d = nx.(b + 1) in
          let blocked_on_spill =
            spill_src_blocked b base nx.(b + 2) 0
            || (d >= 0 && sb.(base + d) > 0 && rg_spilled.(d))
          in
          if blocked_on_spill then c_spill_port else c_scoreboard
        end
        else if nx.(b) = u_sync then
          (* bar.sync waiting for the warp's own in-flight retires. *)
          c_barrier
        else if !bank_conflict_cycle then c_bank_conflict
        else c_no_cu
      end
    end
  in

  let do_issue wi =
    let s = wa_stream.(wi) in
    let code = st_code.(s) in
    let o = st_off.(s).(wa_ptr.(wi)) in
    let unit = code.(o) in
    let pc = code.(o + 1) in
    let dst = code.(o + 2) in
    let active = code.(o + 3) in
    let mem = code.(o + 4) in
    let ns = code.(o + 5) in
    if check && not (scoreboard_ready wi) then
      violated "scoreboard: warp %d issued pc %d with a pending hazard" wi pc;
    wa_ptr.(wi) <- wa_ptr.(wi) + 1;
    decode_next wi;
    issued_warp_instrs := !issued_warp_instrs + 1;
    executed_threads := !executed_threads + active;
    if unit = u_sync then begin
      (match profile with
       | Some ch ->
         Gpr_obs.Chrome.instant ch ~name:"barrier" ~cat:"sync" ~pid:0 ~tid:wi
           ~ts_us:(float_of_int !cycle)
           ~args:[ ("pc", Gpr_obs.Json.Int pc) ]
           ()
       | None -> ());
      (* Barrier: the warp waits until every block warp that still has a
         barrier ahead of it has arrived.  Warps whose threads all
         exited early (no Sync left) never block the others. *)
      dirty_all ();
      wa_bars.(wi) <- wa_bars.(wi) - 1;
      wa_barrier.(wi) <- true;
      let slot = wi / wpb in
      if not rb_present.(slot) then wa_barrier.(wi) <- false
      else begin
        let base = slot * wpb in
        let all_arrived = scr_flag in
        all_arrived := true;
        for w = 0 to wpb - 1 do
          let x = base + w in
          if not (wa_barrier.(x) || wa_bars.(x) = 0) then all_arrived := false
        done;
        if !all_arrived then
          for w = 0 to wpb - 1 do
            wa_barrier.(base + w) <- false
          done
      end;
      (* Park/release settled: re-derive the whole block's issuability
         (a release can wake warps on every scheduler). *)
      let base = (wi / wpb) * wpb in
      for w = 0 to wpb - 1 do
        refresh_mask (base + w)
      done
    end
    else begin
      incr issued_nonsync;
      let cu = lowest_free_cu 0 in
      cu_busy.(cu) <- true;
      decr cu_free;
      let ob = cu * max_ops in
      let spilled_srcs = scr_cnt in
      spilled_srcs := 0;
      for k = 0 to ns - 1 do
        let arch = code.(o + 6 + k) in
        let oi = ob + k in
        op_arch.(oi) <- arch;
        op_b0.(oi) <- rbank_of (rg_base0.(arch) + wi);
        let b1 = rg_base1.(arch) in
        if b1 >= 0 then begin
          op_b1.(oi) <- rbank_of (b1 + wi);
          op_nb.(oi) <- 2;
          incr double_fetches
        end
        else begin
          op_b1.(oi) <- -1;
          op_nb.(oi) <- 1
        end;
        op_bi.(oi) <- 0;
        op_conv.(oi) <- rg_convert.(arch);
        if is_proposed then begin
          op_stage.(oi) <- s_loc;
          incr n_loc
        end
        else begin
          op_stage.(oi) <- s_fetch;
          incr n_fetch
        end;
        if rg_spilled.(arch) then incr spilled_srcs
      done;
      cu_nops.(cu) <- ns;
      cu_pending.(cu) <- ns;
      cu_nfetch.(cu) <- (if is_proposed then 0 else ns);
      cu_nloc.(cu) <- (if is_proposed then ns else 0);
      if ns = 0 then mark_ready cu unit
      else if is_proposed then incr ncu_loc
      else incr ncu_fetch;
      if dst >= 0 then begin
        sb.((wi * nreg) + dst) <- sb.((wi * nreg) + dst) + 1;
        (* The bump can only take readiness away. *)
        if wa_sbr.(wi) then wa_sbr.(wi) <- scoreboard_ready wi
      end;
      wa_out.(wi) <- wa_out.(wi) + 1;
      if unit = u_spu then begin
        ml_lat := cfg.spu_latency;
        ml_busy := 1
      end
      else if unit = u_sfu then begin
        ml_lat := cfg.sfu_latency;
        ml_busy := 1
      end
      else mem_latency !cycle mem;
      let lat = !ml_lat and busy = !ml_busy in
      let lat =
        if !spilled_srcs = 0 then lat
        else begin
          let n = !spilled_srcs in
          spill_loads := !spill_loads + n;
          spill_free := max !spill_free !cycle + n;
          lat + spill_latency + (!spill_free - !cycle - 1)
        end
      in
      cu_warp.(cu) <- wi;
      cu_unit.(cu) <- unit;
      cu_pc.(cu) <- pc;
      cu_active.(cu) <- active;
      cu_dst.(cu) <- dst;
      cu_lat.(cu) <- lat;
      cu_busyc.(cu) <- busy;
      cu_issued_at.(cu) <- !cycle;
      (* Decode moved the pointer and the destination bump may have
         taken readiness away: one refresh covers both. *)
      refresh_mask wi
    end
  in

  (* ---------------- main loop ---------------- *)
  let max_cycles = 200_000_000 in
  let progress = ref false in
  while (not (finished ())) && !cycle < max_cycles do
    let now = !cycle in
    progress := false;

    (* 1. Retire events. *)
    while !ev_n > 0 && (!ev_cyc).(0) <= now do
      progress := true;
      ev_pop ();
      let wi = !ev_pw and d = !ev_pd in
      if d >= 0 then begin
        let i = (wi * nreg) + d in
        if sb.(i) > 0 then sb.(i) <- sb.(i) - 1;
        if not wa_sbr.(wi) then wa_sbr.(wi) <- scoreboard_ready wi
      end;
      wa_out.(wi) <- wa_out.(wi) - 1;
      refresh_mask wi;
      incr retired;
      (let sd = sched_of wi in
       if memo_blame.(sd) = wi || can_issue wi then begin
         sched_clean.(sd) <- false;
         scan_pfx.(sd) <- 0
       end);
      if check && wa_out.(wi) < 0 then
        violated "warp %d retired more instructions than it issued" wi;
      if warp_done wi then retire_block_if_done (wi / wpb)
    done;
    (* Forget the bus bookings of the cycle now being executed (the
       reference engine's [Hashtbl.remove wb_used now]): a booking
       chain can only revisit [now] via a zero-latency completion. *)
    let wbi = now land (!wb_size - 1) in
    if (!wb_cyc).(wbi) = now then (!wb_cyc).(wbi) <- -1;

    (* 2. Dispatch ready collector units to execution units. *)
    if !n_ready > 0 then begin
      scr_spu :=
        (if spu_free.(0) <= now then 1 else 0)
        + (if spu_free.(1) <= now then 1 else 0);
      scr_sfu := !sfu_free <= now;
      scr_ldst := !ldst_free <= now;
      let rem = scr_cnt and cur = scr_i in
      if cu_mask_ok then begin
        rem :=
          (if !scr_spu > 0 then !ready_spu else 0)
          lor (if !scr_sfu then !ready_sfu else 0)
          lor (if !scr_ldst then !ready_ldst else 0);
        cur := -1
      end
      else begin
        rem := !n_ready;
        cur := 0
      end;
      while
        (!scr_spu > 0 || !scr_sfu || !scr_ldst)
        && (if cu_mask_ok then !rem <> 0 else !rem > 0 && !cur < ncu)
      do
        let i =
          if cu_mask_ok then begin
            let lb = !rem land (- !rem) in
            rem := !rem - lb;
            ctz_tbl.(lb mod 67)
          end
          else begin
            let i = !cur in
            incr cur;
            i
          end
        in
        if cu_busy.(i) && cu_pending.(i) = 0 then begin
          (if not cu_mask_ok then decr rem);
          let unit = cu_unit.(i) in
          let unit_ok =
            (* Initiation intervals follow the Fermi datapath widths: a
               16-lane SPU needs two cycles per 32-thread warp, the
               4-lane SFU eight, and the LD/ST unit is busy for its
               transaction count (at least two cycles per warp). *)
            if unit = u_spu then
              if spu_free.(0) <= now then begin
                spu_free.(0) <- now + 2;
                decr scr_spu;
                if !scr_spu = 0 then rem := !rem land lnot !ready_spu;
                true
              end
              else if spu_free.(1) <= now then begin
                spu_free.(1) <- now + 2;
                decr scr_spu;
                if !scr_spu = 0 then rem := !rem land lnot !ready_spu;
                true
              end
              else false
            else if unit = u_sfu then
              if !sfu_free <= now then begin
                sfu_free := now + 8;
                scr_sfu := false;
                rem := !rem land lnot !ready_sfu;
                true
              end
              else false
            else if unit = u_ldst then
              if !ldst_free <= now then begin
                ldst_free := now + max 2 cu_busyc.(i);
                scr_ldst := false;
                rem := !rem land lnot !ready_ldst;
                true
              end
              else false
            else true
          in
          if unit_ok then begin
            progress := true;
            let complete = now + cu_lat.(i) in
            let dst = cu_dst.(i) in
            let retire_cycle =
              if dst >= 0 then begin
                let wb = alloc_wb_slot complete in
                let spill_extra =
                  if rg_spilled.(dst) then begin
                    incr spill_stores;
                    spill_free := max !spill_free wb + 1;
                    spill_latency + (!spill_free - wb - 1)
                  end
                  else 0
                in
                wb + proposed_delay + spill_extra
              end
              else complete
            in
            let retire_cycle = max (now + 1) retire_cycle in
            ev_push retire_cycle cu_warp.(i) dst;
            (match profile with
             | Some ch ->
               (* One span per warp instruction: issue -> retire. *)
               Gpr_obs.Chrome.complete ch ~name:(unit_label unit) ~cat:"issue"
                 ~pid:0 ~tid:cu_warp.(i)
                 ~ts_us:(float_of_int cu_issued_at.(i))
                 ~dur_us:
                   (float_of_int (max 1 (retire_cycle - cu_issued_at.(i))))
                 ~args:
                   [
                     ("pc", Gpr_obs.Json.Int cu_pc.(i));
                     ("active", Gpr_obs.Json.Int cu_active.(i));
                   ]
                 ()
             | None -> ());
            cu_busy.(i) <- false;
            if !cu_free = 0 then dirty_all ();
            incr cu_free;
            decr n_ready;
            (let m =
               if unit = u_spu then ready_spu
               else if unit = u_sfu then ready_sfu
               else ready_ldst
             in
             m := !m land lnot (1 lsl i))
          end
        end
      done
    end;

    (* 3. Value converter: up to 6 narrow-float operands per cycle. *)
    if !n_conv > 0 then begin
      let vc_slots = scr_cnt in
      vc_slots := 6;
      for i = 0 to ncu - 1 do
        if cu_busy.(i) then
          for k = 0 to cu_nops.(i) - 1 do
            let oi = (i * max_ops) + k in
            if op_stage.(oi) = s_convert && !vc_slots > 0 then begin
              decr vc_slots;
              incr conversions;
              op_stage.(oi) <- s_done;
              cu_pending.(i) <- cu_pending.(i) - 1;
              if cu_pending.(i) = 0 then mark_ready i cu_unit.(i);
              decr n_conv;
              progress := true
            end
          done
      done
    end;

    (* 4. Register-fetch arbitration: one operand per CU, one access per
       bank per cycle. *)
    bank_conflict_cycle := false;
    if !n_fetch > 0 then begin
      let rem = scr_cnt and cur = scr_i in
      rem := !ncu_fetch;
      cur := 0;
      while !rem > 0 && !cur < ncu do
        let i = !cur in
        incr cur;
        if cu_nfetch.(i) > 0 then begin
          decr rem;
          let granted = scr_flag in
          granted := false;
          for k = 0 to cu_nops.(i) - 1 do
            let oi = (i * max_ops) + k in
            if (not !granted) && op_stage.(oi) = s_fetch then begin
              let b = if op_bi.(oi) = 0 then op_b0.(oi) else op_b1.(oi) in
              if bank_stamp.(b) <> now then begin
                bank_stamp.(b) <- now;
                granted := true;
                progress := true;
                op_nb.(oi) <- op_nb.(oi) - 1;
                if op_nb.(oi) = 0 then begin
                  decr n_fetch;
                  cu_nfetch.(i) <- cu_nfetch.(i) - 1;
                  if cu_nfetch.(i) = 0 then decr ncu_fetch;
                  if op_conv.(oi) then begin
                    op_stage.(oi) <- s_convert;
                    incr n_conv
                  end
                  else begin
                    op_stage.(oi) <- s_done;
                    cu_pending.(i) <- cu_pending.(i) - 1;
                    if cu_pending.(i) = 0 then mark_ready i cu_unit.(i)
                  end
                end
                else op_bi.(oi) <- 1
              end
              else begin
                (* The operand's head bank was already taken this
                   cycle: fetch serialises behind the conflict. *)
                bank_conflict_cycle := true;
                incr bank_conflicts;
                match profile with
                | Some ch ->
                  Gpr_obs.Chrome.instant ch ~name:"bank-conflict"
                    ~cat:"regfile" ~pid:1 ~tid:b ~ts_us:(float_of_int now)
                    ~args:
                      [
                        ("warp", Gpr_obs.Json.Int cu_warp.(i));
                        ("reg", Gpr_obs.Json.Int op_arch.(oi));
                      ]
                    ()
                | None -> ()
              end
            end
          done
        end
      done
    end;

    (* 5. Source indirection-table arbitration (proposed only). *)
    if is_proposed && !n_loc > 0 then begin
      let rem = scr_cnt and cur = scr_i in
      rem := !ncu_loc;
      cur := 0;
      while !rem > 0 && !cur < ncu do
        let i = !cur in
        incr cur;
        if cu_nloc.(i) > 0 then begin
          decr rem;
          for k = 0 to cu_nops.(i) - 1 do
            let oi = (i * max_ops) + k in
            if op_stage.(oi) = s_loc then begin
              let b = bank_of op_arch.(oi) in
              if tbl_stamp.(b) <> now then begin
                tbl_stamp.(b) <- now;
                op_stage.(oi) <- s_fetch;
                decr n_loc;
                cu_nloc.(i) <- cu_nloc.(i) - 1;
                if cu_nloc.(i) = 0 then decr ncu_loc;
                incr n_fetch;
                if cu_nfetch.(i) = 0 then incr ncu_fetch;
                cu_nfetch.(i) <- cu_nfetch.(i) + 1;
                progress := true
              end
            end
          done
        end
      done
    end;

    (* 6. Issue: each scheduler picks one warp (GTO or LRR).  Every
       scheduler slot is attributed exactly once per cycle: to an
       issue, or to a stall cause recorded in [slot_cause] (kept so
       the idle fast-forward below can replay it for skipped
       cycles). *)
    for sd = 0 to nsched - 1 do
      if sched_clean.(sd) then begin
        (* Frozen stall: nothing relevant changed since this scheduler
           last scanned and found no issuable warp. *)
        let cause =
          if memo_bank.(sd) then
            if !bank_conflict_cycle then c_bank_conflict else c_no_cu
          else memo_cause.(sd)
        in
        slot_cause.(sd) <- cause;
        bump cause 1
      end
      else begin
      let pick =
        match cfg.scheduler with
        | Gpr_arch.Config.Gto ->
          (* Greedy: stick with the last warp; else oldest ready. *)
          let li = last_idx.(sd) in
          if
            li >= 0 && wa_active.(li) && wa_age.(li) = last_age.(sd)
            && can_issue li
          then li
          else if use_mask then begin
            (* Incremental issuable set: the scheduler's sync-ready
               warps plus (collector unit permitting) its ready warps,
               oldest age wins — exactly the oldest issuable warp the
               scan below would reach, without visiting stalled
               ones. *)
            let m =
              m_sync.(sd) lor (if !cu_free > 0 then m_ready.(sd) else 0)
            in
            if m = 0 then -1
            else begin
              let best = scr_best and k = scr_k in
              best := -1;
              k := max_int;
              let r = ref m in
              while !r <> 0 do
                let lsb = !r land - !r in
                r := !r lxor lsb;
                let wi = (ctz lsb * nsched) + sd in
                if wa_age.(wi) < !k then begin
                  k := wa_age.(wi);
                  best := wi
                end
              done;
              !best
            end
          end
          else begin
            (* Age-sorted list: the first issuable warp is the oldest
               issuable warp.  Drained warps are pruned on the way. *)
            let a = scan_w.(sd) in
            let n = scan_n.(sd) in
            let best = scr_best and k = scr_k and j = scr_j in
            best := -1;
            let p = scan_pfx.(sd) in
            let p = if p > n then n else p in
            k := p;
            j := p;
            while !best < 0 && !j < n do
              let wi = a.(!j) in
              if not (drained wi) then begin
                a.(!k) <- wi;
                incr k;
                if can_issue wi then best := wi
              end;
              incr j
            done;
            if !j < n then begin
              if !k < !j then Array.blit a !j a !k (n - !j);
              scan_n.(sd) <- !k + (n - !j)
            end
            else scan_n.(sd) <- !k;
            (* On a pick, everything before it is non-issuable; on a
               miss the memo takes over and the next walk (after a
               dirty event) restarts from the top. *)
            scan_pfx.(sd) <- (if !best >= 0 then !k - 1 else 0);
            !best
          end
        | Gpr_arch.Config.Lrr ->
          let n = sched_n.(sd) in
          if n = 0 then -1
          else begin
            let a = sched_w.(sd) in
            let start = rr_ptr.(sd) mod n in
            let rec go k =
              if k >= n then -1
              else
                let wi = a.((start + k) mod n) in
                if can_issue wi then begin
                  rr_ptr.(sd) <- start + k + 1;
                  wi
                end
                else go (k + 1)
            in
            go 0
          end
      in
      if pick >= 0 then begin
        progress := true;
        last_idx.(sd) <- pick;
        last_age.(sd) <- wa_age.(pick);
        slot_cause.(sd) <- c_issued;
        incr issued_slots;
        do_issue pick
      end
      else begin
        last_idx.(sd) <- -1;
        let cause = classify_stall sd in
        slot_cause.(sd) <- cause;
        bump cause 1;
        sched_clean.(sd) <- true;
        memo_cause.(sd) <- cause;
        memo_bank.(sd) <- cause = c_bank_conflict || cause = c_no_cu;
        memo_blame.(sd) <- !classify_blame
      end
      end
    done;

    (* Idle fast-forward: jump to the next scheduled event if nothing
       can change, replaying each scheduler's frozen stall cause once
       per skipped cycle so the slot accounting stays complete. *)
    if not !progress then begin
      incr idle_cycles;
      if !ev_n > 0 && (!ev_cyc).(0) > now + 1 then begin
        let c = (!ev_cyc).(0) in
        idle_cycles := !idle_cycles + (c - now - 1);
        Array.iter
          (fun cause -> if cause <> c_issued then bump cause (c - now - 1))
          slot_cause;
        cycle := c
      end
      else incr cycle
    end
    else incr cycle;

    (* Handle blocks whose warps never had work (defensive). *)
    if !cycle land 0xfff = 0 then
      for slot = 0 to blocks_per_sm - 1 do
        retire_block_if_done slot
      done
  done;

  (* Defensive final drain for empty-stream corner cases. *)
  for slot = 0 to blocks_per_sm - 1 do
    retire_block_if_done slot
  done;

  (* The loop may never run (all streams empty): [cycles] is clamped
     to 1 below, so pad the attribution with one all-empty cycle to
     keep the slot identity exact. *)
  if !cycle = 0 then stall_empty := !stall_empty + cfg.warp_schedulers;

  if check then begin
    if not (finished ()) then
      violated "simulation hit the %d-cycle bailout without draining"
        max_cycles;
    let attributed =
      !issued_slots + !stall_scoreboard + !stall_no_cu + !stall_bank_conflict
      + !stall_spill_port + !stall_barrier + !stall_empty
    in
    let slots = max 1 !cycle * cfg.warp_schedulers in
    if attributed <> slots then
      violated
        "stall attribution: %d slots classified over %d cycles x %d \
         schedulers (= %d slots)"
        attributed (max 1 !cycle) cfg.warp_schedulers slots;
    if !issued_slots <> !issued_warp_instrs then
      violated "stall attribution: %d issued slots but %d warp instructions"
        !issued_slots !issued_warp_instrs;
    if !retired <> !issued_nonsync then
      violated "conservation: issued %d non-sync instructions but retired %d"
        !issued_nonsync !retired;
    if !issued_warp_instrs <> expected_warp_instrs then
      violated "conservation: issued %d warp instructions, trace holds %d"
        !issued_warp_instrs expected_warp_instrs;
    if !executed_threads > 32 * !issued_warp_instrs then
      violated "executed %d thread instructions from %d warp issues"
        !executed_threads !issued_warp_instrs
  end;

  let cycles = max 1 !cycle in
  Gpr_obs.Metrics.incr m_runs;
  Gpr_obs.Metrics.add m_cycles cycles;
  Gpr_obs.Metrics.add m_issued !issued_slots;
  Gpr_obs.Metrics.add m_bank_conflicts !bank_conflicts;
  Gpr_obs.Metrics.add m_spill_accesses (!spill_loads + !spill_stores);
  List.iter
    (fun (cause, m) ->
      Gpr_obs.Metrics.add m
        (match (cause : Gpr_obs.Stall.cause) with
        | Scoreboard -> !stall_scoreboard
        | No_free_cu -> !stall_no_cu
        | Bank_conflict -> !stall_bank_conflict
        | Spill_port -> !stall_spill_port
        | Barrier -> !stall_barrier
        | Empty -> !stall_empty))
    m_stall;
  let sm_ipc = float_of_int !executed_threads /. float_of_int cycles in
  {
    cycles;
    thread_instructions = !executed_threads;
    warp_instructions = !issued_warp_instrs;
    sm_ipc;
    gpu_ipc = sm_ipc *. float_of_int cfg.num_sms;
    issued_per_cycle = float_of_int !issued_warp_instrs /. float_of_int cycles;
    l1_hit_rate = Cache.hit_rate l1;
    tex_hit_rate = Cache.hit_rate tex;
    l2_hit_rate = Cache.hit_rate l2;
    tex_accesses = !tex_accesses;
    double_fetches = !double_fetches;
    conversions = !conversions;
    issued_slots = !issued_slots;
    stall_scoreboard = !stall_scoreboard;
    stall_no_cu = !stall_no_cu;
    stall_bank_conflict = !stall_bank_conflict;
    stall_spill_port = !stall_spill_port;
    stall_barrier = !stall_barrier;
    stall_empty = !stall_empty;
    bank_conflicts = !bank_conflicts;
    idle_cycles = !idle_cycles;
    spill_loads = !spill_loads;
    spill_stores = !spill_stores;
  }
