(** Concurrent-kernel SM timing model.

    One SM hosts resident thread blocks from {e multiple kernels}
    simultaneously: each tenant carries its own trace, allocation and
    register-file mode, the block dispatcher refills freed capacity
    from the cross-kernel pending queues under the combined
    register + shared-memory (including spill-slot) limits of
    {!Gpr_arch.Occupancy.fits}, and every per-warp structure
    (scoreboard, collector operands, bank swizzles) is keyed by the
    warp's resident slot, so kernels never alias registers.

    The cycle model is exactly {!Sim_ref}'s — same memory hierarchy,
    collector/bank/writeback structure, GTO/LRR issue, stall taxonomy
    and idle fast-forward — generalised over tenants.  On a singleton
    tenant set whose [t_blocks] equals [waves * blocks_per_sm] and
    whose demand reproduces the kernel's occupancy, {!run} is
    byte-identical to {!Sim.run} (pinned by the differential suite in
    test/test_sim.ml and the fuzzer's coloc stage).

    The shared structures are genuinely shared between tenants: L1/tex/
    L2 caches, DRAM/L2 bandwidth, collector units, execution units, the
    writeback bus and the single spill port, so co-resident kernels
    interfere exactly where the hardware would make them. *)

type tenant = {
  t_label : string;  (** kernel name, for stats and Chrome lanes *)
  t_trace : Gpr_exec.Trace.t;
  t_alloc : Gpr_alloc.Alloc.t;
  t_mode : Sim.regfile_mode;
  t_demand : Gpr_arch.Occupancy.demand;
      (** per-block admission footprint as the scheme reports it
          (registers at {!Gpr_arch.Config.registers_per_block}
          granularity; shared bytes including scheme spill slots) *)
  t_blocks : int;
      (** blocks fed to this SM (the workload), drawn round-robin from
          the tenant's grid as in {!Sim.run} *)
}

(** Per-kernel share of the co-scheduled run. *)
type tenant_stats = {
  ts_label : string;
  ts_blocks_launched : int;
  ts_peak_resident : int;   (** most blocks of this kernel co-resident *)
  ts_issued_slots : int;
  ts_warp_instructions : int;
  ts_thread_instructions : int;
  ts_breakdown : Gpr_obs.Stall.breakdown;
      (** issue/stall slots attributed to this kernel's warps ([Empty]
          slots have no owner and stay aggregate-only) *)
  ts_ipc : float;           (** thread instructions / total cycles *)
  ts_issue_share : float;   (** fraction of all issued slots *)
}

type result = {
  r_stats : Sim.stats;  (** aggregate, same shape as a single-kernel run *)
  r_tenants : tenant_stats array;
  r_policy : string;
  r_peak_resident_blocks : int;  (** most blocks co-resident, any kernel *)
  r_peak_resident_warps : int;
  r_co_resident_cycles : int;
      (** cycles with blocks of >= 2 distinct kernels resident *)
  r_admissions : int;  (** blocks launched across all tenants *)
  r_fairness : float;
      (** Jain index over per-kernel issued-slot counts: 1 = perfectly
          even, 1/n = one kernel monopolised the SM *)
}

(** A pending head block the dispatcher could admit right now.
    Candidates handed to a policy all {e fit} the free resources and
    arrive in global submission order. *)
type pending = {
  p_tenant : int;
  p_arrival : int;  (** global submission stamp (tenant-major) *)
  p_regs : int;     (** register footprint of the block *)
  p_warps : int;
}

(** Block-dispatch policy: pick which fitting pending block fills the
    freed capacity.  [free_regs] is the SM's current register headroom;
    [last] is the tenant admitted most recently (-1 initially).
    Policies are stateless; returning [None] on a non-empty candidate
    list stalls dispatch until the next free-up. *)
module type POLICY = sig
  val id : string
  val describe : string
  val pick : free_regs:int -> last:int -> pending list -> pending option
end

val fifo : (module POLICY)
(** Global submission order (backfilling past heads that do not fit). *)

val rr : (module POLICY)
(** Round-robin over kernels with a fitting head. *)

val binpack : (module POLICY)
(** Pressure-aware: the fitting head whose register demand best fills
    the free register headroom; ties in submission order. *)

val policies : (module POLICY) list
val policy_names : string list
val find_policy : string -> (module POLICY) option

val run :
  ?check:bool ->
  ?profile:Gpr_obs.Chrome.t ->
  ?policy:(module POLICY) ->
  Gpr_arch.Config.t ->
  tenant list ->
  result
(** Co-schedule the tenant set on one SM until every fed block of every
    kernel has drained.  [check] additionally enforces the per-kernel
    and aggregate slot-attribution and conservation identities
    (raising {!Sim.Invariant_violation}).  [profile] records one Chrome
    lane (pid) per kernel plus a bank lane.  Default policy: {!fifo}.

    @raise Invalid_argument if the tenant list is empty or a single
    block of some kernel exceeds the SM resources outright. *)
