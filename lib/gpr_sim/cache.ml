type t = {
  line_bytes : int;
  line_shift : int;      (* log2 line_bytes when a power of two, else -1 *)
  set_mask : int;        (* num_sets - 1 when a power of two, else -1 *)
  num_sets : int;
  assoc : int;
  tags : int array;      (* set * assoc + way; -1 = invalid *)
  lru : int array;       (* last-use stamp per way *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity_bytes ~line_bytes ~assoc =
  let lines = max assoc (capacity_bytes / line_bytes) in
  let num_sets = max 1 (lines / assoc) in
  let line_shift =
    if line_bytes > 0 && line_bytes land (line_bytes - 1) = 0 then begin
      let s = ref 0 in
      while 1 lsl !s < line_bytes do
        incr s
      done;
      !s
    end
    else -1
  in
  {
    line_bytes;
    line_shift;
    set_mask =
      (if num_sets land (num_sets - 1) = 0 then num_sets - 1 else -1);
    num_sets;
    assoc;
    tags = Array.make (num_sets * assoc) (-1);
    lru = Array.make (num_sets * assoc) 0;
    stamp = 0;
    hits = 0;
    misses = 0;
  }

(* Top-level helpers (closed over nothing) so [access] allocates
   nothing: without flambda, a local closure with free variables is
   heap-allocated on every call. *)
let rec find_way tags base assoc line way =
  if way >= assoc then -1
  else if tags.(base + way) = line then way
  else find_way tags base assoc line (way + 1)

(* LRU victim: first minimum, as a strict-< scan. *)
let rec pick_victim lru base assoc way victim =
  if way >= assoc then victim
  else
    pick_victim lru base assoc (way + 1)
      (if lru.(base + way) < lru.(base + victim) then way else victim)

(* The simulators call this tens of times per modelled cycle, so it is
   kept allocation-free; the shift replaces the division on the
   (universal) power-of-two line size.  [lsr] only agrees with [/] on
   non-negative addresses, hence the guard. *)
let access t addr =
  let line =
    if t.line_shift >= 0 && addr >= 0 then addr lsr t.line_shift
    else addr / t.line_bytes
  in
  let set =
    (* [land] only agrees with [mod] for non-negative lines. *)
    if t.set_mask >= 0 && line >= 0 then line land t.set_mask
    else line mod t.num_sets
  in
  let assoc = t.assoc in
  let base = set * assoc in
  t.stamp <- t.stamp + 1;
  let way = find_way t.tags base assoc line 0 in
  if way >= 0 then begin
    t.lru.(base + way) <- t.stamp;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let victim = pick_victim t.lru base assoc 1 0 in
    t.tags.(base + victim) <- line;
    t.lru.(base + victim) <- t.stamp;
    false
  end

let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let line_bytes t = t.line_bytes
