(* Reference implementation of the SM timing model.

   This is the original list/Hashtbl/Map engine, kept verbatim as the
   differential oracle for the flat engine in [Sim]: every stats field
   the two produce must be byte-equal on every (trace, alloc,
   occupancy, mode, waves) input — the equivalence suite in
   test/test_sim.ml and the fuzzer's obs stage ([Diff.check_obs]) pin
   this.  It is deliberately not optimised; do not "fix" its
   performance, change both engines or neither.

   The only edits relative to the historical [Sim]: the public types
   are re-exported from [Sim] (so callers compare records directly),
   invariant violations raise [Sim.Invariant_violation], and the
   metrics registry is not touched (a reference run must not
   double-count sim.* counters). *)

open Gpr_isa.Types
module Trace = Gpr_exec.Trace
module Alloc = Gpr_alloc.Alloc

type regfile_mode = Sim.regfile_mode =
  | Baseline
  | Proposed of { writeback_delay : int }
  | Spill of { latency : int; spilled : (int, unit) Hashtbl.t }

type stats = Sim.stats = {
  cycles : int;
  thread_instructions : int;
  warp_instructions : int;
  sm_ipc : float;
  gpu_ipc : float;
  issued_per_cycle : float;
  l1_hit_rate : float;
  tex_hit_rate : float;
  l2_hit_rate : float;
  tex_accesses : int;
  double_fetches : int;
  conversions : int;
  issued_slots : int;
  stall_scoreboard : int;
  stall_no_cu : int;
  stall_bank_conflict : int;
  stall_spill_port : int;
  stall_barrier : int;
  stall_empty : int;
  bank_conflicts : int;
  idle_cycles : int;
  spill_loads : int;
  spill_stores : int;
}

(* ------------------------------------------------------------------ *)

type opnd_stage = S_loc | S_fetch | S_convert | S_done

type opnd = {
  o_arch : int;
  mutable o_stage : opnd_stage;
  mutable o_banks : int list;  (* remaining register-fetch banks *)
  o_convert : bool;
}

type wctx = {
  w_items : Trace.item array;
  mutable w_ptr : int;
  w_slot : int;        (* resident-block slot *)
  w_id : int;          (* resident warp index (bank swizzle, scheduler) *)
  w_age : int;
  mutable w_barrier : bool;
  mutable w_bars_left : int;    (* Sync items not yet issued *)
  mutable w_outstanding : int;  (* issued, not yet retired *)
  w_scoreboard : (int, int) Hashtbl.t;
}

type cu = {
  c_warp : wctx;
  c_item : Trace.item;
  mutable c_ops : opnd list;
  c_mem_latency : int;  (* precomputed for Ldst items, else unit latency *)
  c_unit_busy : int;    (* cycles the execution unit is occupied *)
  c_issue : int;        (* cycle the instruction was issued (profiling) *)
}

type rblock = { mutable rb_warps : wctx list }

module Imap = Map.Make (Int)

type event = Retire of wctx * int option

let violated fmt =
  Printf.ksprintf (fun s -> raise (Sim.Invariant_violation s)) fmt

let unit_label = function
  | Spu -> "spu"
  | Sfu -> "sfu"
  | Ldst -> "ldst"
  | Sync -> "sync"

let run ?(check = false) ?(waves = 6) ?(faults = []) ?profile
    (cfg : Gpr_arch.Config.t) ~(trace : Trace.t) ~(alloc : Alloc.t)
    ~blocks_per_sm ~mode =
  let proposed_delay =
    match mode with
    | Baseline | Spill _ -> 0
    | Proposed { writeback_delay } -> writeback_delay
  in
  let is_proposed = match mode with Proposed _ -> true | _ -> false in
  (* Spilling register files keep a subset of registers in shared
     memory: spilled sources refill before execution and spilled
     destinations write through after writeback, each paying the shared
     round trip; accesses serialise at one per cycle on the spill
     port. *)
  let is_spilled, spill_latency =
    match mode with
    | Spill { latency; spilled } ->
      ((fun r -> Hashtbl.mem spilled r), latency)
    | Baseline | Proposed _ -> ((fun _ -> false), 0)
  in
  let spill_free = ref 0 in
  let spill_loads = ref 0 and spill_stores = ref 0 in

  (* --- Partition the trace into per-(block, warp) streams. --- *)
  let streams = Hashtbl.create 256 in
  Array.iter
    (fun (it : Trace.item) ->
       let key = (it.t_block_id, it.t_warp) in
       let l = try Hashtbl.find streams key with Not_found -> ref [] in
       if not (Hashtbl.mem streams key) then Hashtbl.replace streams key l;
       l := it :: !l)
    trace.items;
  let stream_of block warp =
    match Hashtbl.find_opt streams (block, warp) with
    | Some l -> Array.of_list (List.rev !l)
    | None -> [||]
  in

  (* --- This SM's workload: [waves] waves of resident blocks, drawing
     block traces round-robin from the measured grid.  All benchmark
     grids are homogeneous across blocks, so this measures steady-state
     throughput at the configured occupancy without requiring the
     functional run to execute [waves * blocks_per_sm * num_sms]
     blocks. --- *)
  let my_blocks =
    List.init
      (max 1 (waves * blocks_per_sm))
      (fun i -> i mod trace.num_blocks)
  in
  let feeder = ref my_blocks in

  (* --- Memory hierarchy. --- *)
  let l1 = Cache.create ~capacity_bytes:cfg.l1_bytes ~line_bytes:cfg.l1_line_bytes ~assoc:4 in
  let tex = Cache.create ~capacity_bytes:cfg.tex_bytes ~line_bytes:cfg.l1_line_bytes ~assoc:4 in
  let l2 =
    Cache.create ~capacity_bytes:(cfg.l2_bytes / cfg.num_sms)
      ~line_bytes:cfg.l1_line_bytes ~assoc:8
  in
  let tex_accesses = ref 0 in
  (* Bandwidth model: DRAM and L2 serve one line every
     [dram_line_interval] / [l2_line_interval] cycles (the SM's share of
     chip bandwidth); requests queue behind the previous service. *)
  let dram_free = ref 0 in
  let l2_free = ref 0 in

  (* Returns (latency, ldst_busy_cycles): latency until the value is
     back, and how long the LD/ST unit is occupied issuing the access's
     transactions (coalesced transactions and shared-memory conflicts
     serialise at one per cycle, as in GPGPU-Sim). *)
  let mem_latency now (it : Trace.item) =
    match it.t_mem with
    | None -> (cfg.spu_latency, 1)
    | Some m ->
      (match m.m_space with
       | Param -> (cfg.spu_latency * 2, 1)  (* constant cache *)
       | Shared ->
         (* Bank-conflict serialisation over 32 word-banks. *)
         let counts = Array.make 32 0 in
         Array.iter
           (fun a ->
              let b = (a / 4) mod 32 in
              counts.(b) <- counts.(b) + 1)
           m.m_addresses;
         let factor = Array.fold_left max 1 counts in
         (cfg.shared_latency + factor - 1, factor)
       | Global | Texture ->
         (* Coalesce per-lane addresses into cache-line transactions. *)
         let lines = Hashtbl.create 8 in
         Array.iter
           (fun a -> Hashtbl.replace lines (a / cfg.l1_line_bytes) ())
           m.m_addresses;
         let ntxn = max 1 (Hashtbl.length lines) in
         let worst = ref 0 in
         Hashtbl.iter
           (fun line () ->
              let addr = line * cfg.l1_line_bytes in
              let l1_hit =
                if m.m_space = Texture then begin
                  incr tex_accesses;
                  Cache.access tex addr
                end
                else Cache.access l1 addr
              in
              let lat =
                if l1_hit then cfg.l1_hit_latency
                else if Cache.access l2 addr then begin
                  l2_free := max !l2_free now + cfg.l2_line_interval;
                  (!l2_free - now) + cfg.l2_hit_latency
                end
                else begin
                  l2_free := max !l2_free now + cfg.l2_line_interval;
                  dram_free := max !dram_free now + cfg.dram_line_interval;
                  (!dram_free - now) + cfg.dram_latency
                end
              in
              worst := max !worst lat)
           lines;
         (!worst + ntxn - 1, ntxn))
  in

  (* --- Resident blocks and warps. --- *)
  let warps_per_block = trace.warps_per_block in
  let age_counter = ref 0 in
  let active_warps : wctx list ref = ref [] in
  let rblocks = Array.make blocks_per_sm None in

  let warp_done w =
    w.w_ptr >= Array.length w.w_items && w.w_outstanding = 0
  in
  let launch_block slot block_id =
    let warps =
      List.init warps_per_block (fun w ->
          incr age_counter;
          let items = stream_of block_id w in
          let bars =
            Array.fold_left
              (fun acc (it : Trace.item) ->
                 if it.t_unit = Sync then acc + 1 else acc)
              0 items
          in
          {
            w_items = items;
            w_ptr = 0;
            w_slot = slot;
            w_id = (slot * warps_per_block) + w;
            w_age = !age_counter;
            w_barrier = false;
            w_bars_left = bars;
            w_outstanding = 0;
            w_scoreboard = Hashtbl.create 16;
          })
    in
    rblocks.(slot) <- Some { rb_warps = warps };
    active_warps := !active_warps @ warps
  in
  let rec try_launch slot =
    match !feeder with
    | [] -> rblocks.(slot) <- None
    | b :: rest ->
      feeder := rest;
      launch_block slot b;
      (* A block whose warps have empty streams retires immediately. *)
      (match rblocks.(slot) with
       | Some rb when List.for_all warp_done rb.rb_warps ->
         active_warps :=
           List.filter (fun w -> not (List.memq w rb.rb_warps)) !active_warps;
         try_launch slot
       | _ -> ())
  in
  for slot = 0 to blocks_per_sm - 1 do
    try_launch slot
  done;

  (match profile with
   | Some ch ->
     Gpr_obs.Chrome.name_process ch ~pid:0 "SM0 warps";
     Gpr_obs.Chrome.name_process ch ~pid:1 "register-file banks";
     for w = 0 to (blocks_per_sm * warps_per_block) - 1 do
       Gpr_obs.Chrome.name_thread ch ~pid:0 ~tid:w
         (Printf.sprintf "warp %d" w)
     done;
     for b = 0 to cfg.register_banks - 1 do
       Gpr_obs.Chrome.name_thread ch ~pid:1 ~tid:b
         (Printf.sprintf "bank %d" b)
     done
   | None -> ());

  (* --- Pipeline state. --- *)
  let cus : cu option array = Array.make cfg.operand_collectors None in
  let events : event list Imap.t ref = ref Imap.empty in
  let schedule cycle ev =
    events :=
      Imap.update cycle
        (function None -> Some [ ev ] | Some l -> Some (ev :: l))
        !events
  in
  (* Writeback bus usage per cycle. *)
  let wb_used : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let alloc_wb_slot earliest =
    let c = ref earliest in
    let rec go () =
      let used = try Hashtbl.find wb_used !c with Not_found -> 0 in
      if used < cfg.writeback_width then begin
        Hashtbl.replace wb_used !c (used + 1)
      end
      else begin
        incr c;
        go ()
      end
    in
    go ();
    !c
  in

  let placement_of arch = Alloc.lookup alloc arch in
  (* Spare-column remap for dead register banks, mirroring [Sim]'s
     redirect (identity when no fault names a bank). *)
  let bank_redirect =
    Gpr_regfile.Fault.bank_redirect
      (Gpr_regfile.Fault.compile ~banks:cfg.register_banks ~regs:64 faults)
  in
  let rbank x = bank_redirect.(x mod cfg.register_banks) in
  let fetch_banks warp arch =
    match placement_of arch with
    | None -> [ rbank (arch + warp.w_id) ]
    | Some p ->
      if is_proposed && Alloc.is_split p then
        [ rbank (p.reg0 + warp.w_id); rbank (p.reg1 + warp.w_id) ]
      else [ rbank (p.reg0 + warp.w_id) ]
  in
  let needs_convert arch =
    is_proposed
    &&
    match placement_of arch with
    | Some p -> p.is_float && p.slices < 8
    | None -> false
  in

  (* Stats. *)
  let double_fetches = ref 0 in
  let conversions = ref 0 in
  let issued_slots = ref 0 in
  let stall_scoreboard = ref 0 in
  let stall_no_cu = ref 0 in
  let stall_bank_conflict = ref 0 in
  let stall_spill_port = ref 0 in
  let stall_barrier = ref 0 in
  let stall_empty = ref 0 in
  let bank_conflicts = ref 0 in
  let bump cause n =
    match (cause : Gpr_obs.Stall.cause) with
    | Scoreboard -> stall_scoreboard := !stall_scoreboard + n
    | No_free_cu -> stall_no_cu := !stall_no_cu + n
    | Bank_conflict -> stall_bank_conflict := !stall_bank_conflict + n
    | Spill_port -> stall_spill_port := !stall_spill_port + n
    | Barrier -> stall_barrier := !stall_barrier + n
    | Empty -> stall_empty := !stall_empty + n
  in
  let idle_cycles = ref 0 in
  let issued_warp_instrs = ref 0 in
  let executed_threads = ref 0 in
  (* Invariant-check accounting ([check] mode): every non-barrier issue
     must eventually produce exactly one retire event, and the SM must
     replay exactly the warp instructions of the blocks it was fed. *)
  let issued_nonsync = ref 0 in
  let retired = ref 0 in
  let expected_warp_instrs =
    if not check then 0
    else
      List.fold_left
        (fun acc b ->
           let per_block = ref 0 in
           for w = 0 to trace.warps_per_block - 1 do
             per_block := !per_block + Array.length (stream_of b w)
           done;
           acc + !per_block)
        0 my_blocks
  in

  (* Exec units: next cycle each may accept work. *)
  let spu_free = [| 0; 0 |] in
  let sfu_free = ref 0 in
  let ldst_free = ref 0 in

  let cycle = ref 0 in
  let finished () =
    !feeder = []
    && Array.for_all (fun rb -> rb = None) rblocks
  in

  let retire_block_if_done slot =
    match rblocks.(slot) with
    | None -> ()
    | Some rb ->
      if List.for_all warp_done rb.rb_warps then begin
        active_warps :=
          List.filter (fun w -> not (List.memq w rb.rb_warps)) !active_warps;
        try_launch slot
      end
  in

  (* GTO state per scheduler. *)
  let last_issued = Array.make cfg.warp_schedulers None in
  let rr_ptr = Array.make cfg.warp_schedulers 0 in
  (* Per-scheduler outcome of the current cycle: [None] = issued,
     [Some cause] = stalled (consumed by the idle fast-forward). *)
  let slot_cause : Gpr_obs.Stall.cause option array =
    Array.make cfg.warp_schedulers None
  in

  let scoreboard_ready w (it : Trace.item) =
    let pending r = Hashtbl.mem w.w_scoreboard r in
    (not (List.exists pending it.t_srcs))
    && (match it.t_dst with Some d -> not (pending d) | None -> true)
  in

  let free_cu () =
    let rec go i =
      if i >= Array.length cus then None
      else match cus.(i) with None -> Some i | Some _ -> go (i + 1)
    in
    go 0
  in

  (* Can this warp issue its next instruction right now? *)
  let can_issue w =
    (not w.w_barrier)
    && w.w_ptr < Array.length w.w_items
    &&
    let it = w.w_items.(w.w_ptr) in
    scoreboard_ready w it
    &&
    (* bar.sync completes the warp's outstanding memory operations
       before synchronising. *)
    if it.t_unit = Sync then w.w_outstanding = 0 else free_cu () <> None
  in
  (* Register-fetch bank conflict seen this cycle (set by the operand
     arbitration stage, consumed by the stall classifier). *)
  let bank_conflict_cycle = ref false in

  (* Why did this scheduler slot go unused?  Called exactly once per
     scheduler per cycle when no warp could issue; together with the
     issued slots this classifies every slot of every cycle, so
     [issued + sum-of-causes = cycles x schedulers] holds.

     Warps that have drained their stream (possibly with retires still
     outstanding) have nothing left to issue and do not claim the
     slot; if only such warps (or none) remain, the slot is [Empty].
     Otherwise the oldest warp with work pending is blamed, mirroring
     the greedy-then-oldest pick order of the scheduler. *)
  let classify_stall mine : Gpr_obs.Stall.cause =
    let candidates =
      List.filter
        (fun w -> w.w_barrier || w.w_ptr < Array.length w.w_items)
        mine
    in
    match candidates with
    | [] -> Empty
    | w0 :: rest ->
      let w =
        List.fold_left (fun a b -> if b.w_age < a.w_age then b else a) w0 rest
      in
      if w.w_barrier then Barrier
      else begin
        let it = w.w_items.(w.w_ptr) in
        if not (scoreboard_ready w it) then begin
          let pending r = Hashtbl.mem w.w_scoreboard r in
          let blocked_on_spill =
            List.exists (fun r -> pending r && is_spilled r) it.t_srcs
            || (match it.t_dst with
               | Some d -> pending d && is_spilled d
               | None -> false)
          in
          if blocked_on_spill then Spill_port else Scoreboard
        end
        else if it.t_unit = Sync then
          (* bar.sync waiting for the warp's own in-flight retires. *)
          Barrier
        else if !bank_conflict_cycle then Bank_conflict
        else No_free_cu
      end
  in

  let do_issue w =
    let it = w.w_items.(w.w_ptr) in
    if check && not (scoreboard_ready w it) then
      violated "scoreboard: warp %d issued pc %d with a pending hazard"
        w.w_id it.t_pc;
    w.w_ptr <- w.w_ptr + 1;
    issued_warp_instrs := !issued_warp_instrs + 1;
    executed_threads := !executed_threads + it.t_active;
    if it.t_unit = Sync then begin
      (match profile with
       | Some ch ->
         Gpr_obs.Chrome.instant ch ~name:"barrier" ~cat:"sync" ~pid:0
           ~tid:w.w_id ~ts_us:(float_of_int !cycle)
           ~args:[ ("pc", Gpr_obs.Json.Int it.t_pc) ] ()
       | None -> ());
      (* Barrier: the warp waits until every block warp that still has a
         barrier ahead of it has arrived.  Warps whose threads all
         exited early (no Sync left) never block the others. *)
      w.w_bars_left <- w.w_bars_left - 1;
      w.w_barrier <- true;
      match rblocks.(w.w_slot) with
      | None -> w.w_barrier <- false
      | Some rb ->
        let all_arrived =
          List.for_all
            (fun x -> x.w_barrier || x.w_bars_left = 0)
            rb.rb_warps
        in
        if all_arrived then
          List.iter (fun x -> x.w_barrier <- false) rb.rb_warps
    end
    else begin
      incr issued_nonsync;
      let slot = Option.get (free_cu ()) in
      (* Distinct source architectural registers. *)
      let srcs = List.sort_uniq compare it.t_srcs in
      let ops =
        List.map
          (fun arch ->
             let banks = fetch_banks w arch in
             if List.length banks > 1 then incr double_fetches;
             {
               o_arch = arch;
               o_stage = (if is_proposed then S_loc else S_fetch);
               o_banks = banks;
               o_convert = needs_convert arch;
             })
          srcs
      in
      (match it.t_dst with
       | Some d ->
         Hashtbl.replace w.w_scoreboard d
           (1 + Option.value ~default:0 (Hashtbl.find_opt w.w_scoreboard d))
       | None -> ());
      w.w_outstanding <- w.w_outstanding + 1;
      let lat, busy =
        match it.t_unit with
        | Spu -> (cfg.spu_latency, 1)
        | Sfu -> (cfg.sfu_latency, 1)
        | Ldst -> mem_latency !cycle it
        | Sync -> (0, 1)
      in
      let lat =
        match List.length (List.filter is_spilled srcs) with
        | 0 -> lat
        | n ->
          spill_loads := !spill_loads + n;
          spill_free := max !spill_free !cycle + n;
          lat + spill_latency + (!spill_free - !cycle - 1)
      in
      cus.(slot) <-
        Some { c_warp = w; c_item = it; c_ops = ops; c_mem_latency = lat;
               c_unit_busy = busy; c_issue = !cycle }
    end
  in

  (* ---------------- main loop ---------------- *)
  let max_cycles = 200_000_000 in
  while (not (finished ())) && !cycle < max_cycles do
    let now = !cycle in
    let progress = ref false in

    (* 1. Retire events. *)
    (match Imap.find_opt now !events with
     | Some evs ->
       progress := true;
       List.iter
         (fun (Retire (w, dst)) ->
            (match dst with
             | Some d ->
               (match Hashtbl.find_opt w.w_scoreboard d with
                | Some 1 -> Hashtbl.remove w.w_scoreboard d
                | Some n -> Hashtbl.replace w.w_scoreboard d (n - 1)
                | None -> ())
             | None -> ());
            w.w_outstanding <- w.w_outstanding - 1;
            incr retired;
            if check && w.w_outstanding < 0 then
              violated "warp %d retired more instructions than it issued" w.w_id;
            if warp_done w then retire_block_if_done w.w_slot)
         evs;
       events := Imap.remove now !events
     | None -> ());
    Hashtbl.remove wb_used now;

    (* 2. Dispatch ready collector units to execution units. *)
    Array.iteri
      (fun i cu_opt ->
         match cu_opt with
         | Some cu when List.for_all (fun o -> o.o_stage = S_done) cu.c_ops ->
           let unit_ok =
             (* Initiation intervals follow the Fermi datapath widths: a
                16-lane SPU needs two cycles per 32-thread warp, the
                4-lane SFU eight, and the LD/ST unit is busy for its
                transaction count (at least two cycles per warp). *)
             match cu.c_item.t_unit with
             | Spu ->
               if spu_free.(0) <= now then (spu_free.(0) <- now + 2; true)
               else if spu_free.(1) <= now then (spu_free.(1) <- now + 2; true)
               else false
             | Sfu ->
               if !sfu_free <= now then (sfu_free := now + 8; true) else false
             | Ldst ->
               if !ldst_free <= now then begin
                 ldst_free := now + max 2 cu.c_unit_busy;
                 true
               end
               else false
             | Sync -> true
           in
           if unit_ok then begin
             progress := true;
             let complete = now + cu.c_mem_latency in
             let retire_cycle =
               match cu.c_item.t_dst with
               | Some d ->
                 let wb = alloc_wb_slot complete in
                 let spill_extra =
                   if is_spilled d then begin
                     incr spill_stores;
                     spill_free := max !spill_free wb + 1;
                     spill_latency + (!spill_free - wb - 1)
                   end
                   else 0
                 in
                 wb + proposed_delay + spill_extra
               | None -> complete
             in
             let retire_cycle = max (now + 1) retire_cycle in
             schedule retire_cycle (Retire (cu.c_warp, cu.c_item.t_dst));
             (match profile with
              | Some ch ->
                (* One span per warp instruction: issue -> retire. *)
                Gpr_obs.Chrome.complete ch
                  ~name:(unit_label cu.c_item.t_unit)
                  ~cat:"issue" ~pid:0 ~tid:cu.c_warp.w_id
                  ~ts_us:(float_of_int cu.c_issue)
                  ~dur_us:(float_of_int (max 1 (retire_cycle - cu.c_issue)))
                  ~args:
                    [
                      ("pc", Gpr_obs.Json.Int cu.c_item.t_pc);
                      ("active", Gpr_obs.Json.Int cu.c_item.t_active);
                    ]
                  ()
              | None -> ());
             cus.(i) <- None
           end
         | _ -> ())
      cus;

    (* 3. Value converter: up to 6 narrow-float operands per cycle. *)
    let vc_slots = ref 6 in
    Array.iter
      (fun cu_opt ->
         match cu_opt with
         | Some cu ->
           List.iter
             (fun o ->
                if o.o_stage = S_convert && !vc_slots > 0 then begin
                  decr vc_slots;
                  incr conversions;
                  o.o_stage <- S_done;
                  progress := true
                end)
             cu.c_ops
         | None -> ())
      cus;

    (* 4. Register-fetch arbitration: one operand per CU, one access per
       bank per cycle. *)
    bank_conflict_cycle := false;
    let bank_used = Array.make cfg.register_banks false in
    Array.iter
      (fun cu_opt ->
         match cu_opt with
         | Some cu ->
           let granted = ref false in
           List.iter
             (fun o ->
                if (not !granted) && o.o_stage = S_fetch then
                  match o.o_banks with
                  | b :: rest when not bank_used.(b) ->
                    bank_used.(b) <- true;
                    granted := true;
                    progress := true;
                    o.o_banks <- rest;
                    if rest = [] then
                      o.o_stage <- (if o.o_convert then S_convert else S_done)
                  | b :: _ ->
                    (* The operand's head bank was already taken this
                       cycle: fetch serialises behind the conflict. *)
                    bank_conflict_cycle := true;
                    incr bank_conflicts;
                    (match profile with
                     | Some ch ->
                       Gpr_obs.Chrome.instant ch ~name:"bank-conflict"
                         ~cat:"regfile" ~pid:1 ~tid:b
                         ~ts_us:(float_of_int now)
                         ~args:
                           [
                             ("warp", Gpr_obs.Json.Int cu.c_warp.w_id);
                             ("reg", Gpr_obs.Json.Int o.o_arch);
                           ]
                         ()
                     | None -> ())
                  | [] -> ())
             cu.c_ops
         | None -> ())
      cus;

    (* 5. Source indirection-table arbitration (proposed only). *)
    if is_proposed then begin
      let tbl_used = Array.make cfg.register_banks false in
      Array.iter
        (fun cu_opt ->
           match cu_opt with
           | Some cu ->
             List.iter
               (fun o ->
                  if o.o_stage = S_loc then begin
                    let b = o.o_arch mod cfg.register_banks in
                    if not tbl_used.(b) then begin
                      tbl_used.(b) <- true;
                      o.o_stage <- S_fetch;
                      progress := true
                    end
                  end)
               cu.c_ops
           | None -> ())
        cus
    end;

    (* 6. Issue: each scheduler picks one warp (GTO or LRR).  Every
       scheduler slot is attributed exactly once per cycle: to an
       issue, or to a stall cause recorded in [slot_cause] (kept so
       the idle fast-forward below can replay it for skipped
       cycles). *)
    for sched = 0 to cfg.warp_schedulers - 1 do
      let mine =
        List.filter (fun w -> w.w_id mod cfg.warp_schedulers = sched)
          !active_warps
      in
      let pick =
        match cfg.scheduler with
        | Gto ->
          (* Greedy: stick with the last warp; else oldest ready. *)
          let greedy =
            match last_issued.(sched) with
            | Some w when List.memq w mine && can_issue w -> Some w
            | _ -> None
          in
          (match greedy with
           | Some w -> Some w
           | None ->
             List.filter can_issue mine
             |> List.sort (fun a b -> compare a.w_age b.w_age)
             |> function [] -> None | w :: _ -> Some w)
        | Lrr ->
          let n = List.length mine in
          if n = 0 then None
          else begin
            let arr = Array.of_list mine in
            let start = rr_ptr.(sched) mod n in
            let rec go k =
              if k >= n then None
              else
                let w = arr.((start + k) mod n) in
                if can_issue w then begin
                  rr_ptr.(sched) <- start + k + 1;
                  Some w
                end
                else go (k + 1)
            in
            go 0
          end
      in
      match pick with
      | Some w ->
        progress := true;
        last_issued.(sched) <- Some w;
        slot_cause.(sched) <- None;
        incr issued_slots;
        do_issue w
      | None ->
        last_issued.(sched) <- None;
        let cause = classify_stall mine in
        slot_cause.(sched) <- Some cause;
        bump cause 1
    done;

    (* Also retire blocks whose warps had empty streams. *)
    if not !progress then begin
      incr idle_cycles;
      (* Jump to the next scheduled event if nothing can change. *)
      match Imap.min_binding_opt !events with
      | Some (c, _) when c > now + 1 ->
        idle_cycles := !idle_cycles + (c - now - 1);
        (* The skipped cycles are exact replays of this one (no
           retire, grant or issue happened, so the machine state is
           frozen): charge each scheduler its recorded stall cause
           once per skipped cycle to keep the slot accounting
           complete. *)
        Array.iter
          (function
            | Some cause -> bump cause (c - now - 1)
            | None -> ())
          slot_cause;
        cycle := c
      | _ -> incr cycle
    end
    else incr cycle;

    (* Handle blocks whose warps never had work (defensive). *)
    if !cycle land 0xfff = 0 then
      for slot = 0 to blocks_per_sm - 1 do
        retire_block_if_done slot
      done
  done;

  (* Defensive final drain for empty-stream corner cases. *)
  for slot = 0 to blocks_per_sm - 1 do
    retire_block_if_done slot
  done;

  (* The loop may never run (all streams empty): [cycles] is clamped
     to 1 below, so pad the attribution with one all-empty cycle to
     keep the slot identity exact. *)
  if !cycle = 0 then stall_empty := !stall_empty + cfg.warp_schedulers;

  if check then begin
    if not (finished ()) then
      violated "simulation hit the %d-cycle bailout without draining"
        max_cycles;
    let attributed =
      !issued_slots + !stall_scoreboard + !stall_no_cu
      + !stall_bank_conflict + !stall_spill_port + !stall_barrier
      + !stall_empty
    in
    let slots = max 1 !cycle * cfg.warp_schedulers in
    if attributed <> slots then
      violated
        "stall attribution: %d slots classified over %d cycles x %d \
         schedulers (= %d slots)"
        attributed (max 1 !cycle) cfg.warp_schedulers slots;
    if !issued_slots <> !issued_warp_instrs then
      violated "stall attribution: %d issued slots but %d warp instructions"
        !issued_slots !issued_warp_instrs;
    if !retired <> !issued_nonsync then
      violated "conservation: issued %d non-sync instructions but retired %d"
        !issued_nonsync !retired;
    if !issued_warp_instrs <> expected_warp_instrs then
      violated "conservation: issued %d warp instructions, trace holds %d"
        !issued_warp_instrs expected_warp_instrs;
    if !executed_threads > 32 * !issued_warp_instrs then
      violated "executed %d thread instructions from %d warp issues"
        !executed_threads !issued_warp_instrs
  end;

  let cycles = max 1 !cycle in
  let sm_ipc = float_of_int !executed_threads /. float_of_int cycles in
  {
    cycles;
    thread_instructions = !executed_threads;
    warp_instructions = !issued_warp_instrs;
    sm_ipc;
    gpu_ipc = sm_ipc *. float_of_int cfg.num_sms;
    issued_per_cycle = float_of_int !issued_warp_instrs /. float_of_int cycles;
    l1_hit_rate = Cache.hit_rate l1;
    tex_hit_rate = Cache.hit_rate tex;
    l2_hit_rate = Cache.hit_rate l2;
    tex_accesses = !tex_accesses;
    double_fetches = !double_fetches;
    conversions = !conversions;
    issued_slots = !issued_slots;
    stall_scoreboard = !stall_scoreboard;
    stall_no_cu = !stall_no_cu;
    stall_bank_conflict = !stall_bank_conflict;
    stall_spill_port = !stall_spill_port;
    stall_barrier = !stall_barrier;
    stall_empty = !stall_empty;
    bank_conflicts = !bank_conflicts;
    idle_cycles = !idle_cycles;
    spill_loads = !spill_loads;
    spill_stores = !spill_stores;
  }
