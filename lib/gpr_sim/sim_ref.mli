(** Reference cycle-level SM model — the differential oracle for {!Sim}.

    This is the original list/Hashtbl/Map engine, kept unoptimised and
    byte-for-byte faithful to the historical pipeline model.  The flat
    production engine ({!Sim.run}) must produce an identical
    {!Sim.stats} record on every input; the equivalence suite in
    [test/test_sim.ml] and the fuzzer's obs stage pin the two against
    each other over generated kernels, all three register-file modes,
    and multiple wave counts.

    Roughly 5–10x slower than {!Sim.run} — use it only as an oracle,
    never on a hot path.  Unlike {!Sim.run} it records nothing in the
    metrics registry, so an oracle run never double-counts the sim.*
    counters.  With [~check:true] it raises {!Sim.Invariant_violation}
    on the same structural invariants {!Sim.run} enforces. *)

val run :
  ?check:bool ->
  ?waves:int ->
  ?faults:Gpr_regfile.Fault.t list ->
  ?profile:Gpr_obs.Chrome.t ->
  Gpr_arch.Config.t ->
  trace:Gpr_exec.Trace.t ->
  alloc:Gpr_alloc.Alloc.t ->
  blocks_per_sm:int ->
  mode:Sim.regfile_mode ->
  Sim.stats
(** Same contract as {!Sim.run} (see its documentation for the model,
    the [check] invariants and the [profile] events). *)
