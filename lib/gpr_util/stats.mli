(** Small statistics helpers used when summarising benchmark results. *)

val mean : float list -> float
val geomean : float list -> float
(** Geometric mean; requires all elements > 0. *)

val geomean_ratio : float list -> float
(** Geometric mean of [1 + x/100] ratios, returned back as a percentage
    increase — the aggregation the paper uses for Figure 11. *)

val stddev : float list -> float
val min_max : float list -> float * float
val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 100]; linear interpolation.
    Out-of-range [p] clamps to the nearest extreme (p < 0 behaves as 0,
    p > 100 as 100); [nan] for an empty list or a [nan] percentile. *)
