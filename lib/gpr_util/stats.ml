let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

let geomean_ratio pcts =
  let ratios = List.map (fun p -> 1.0 +. (p /. 100.0)) pcts in
  (geomean ratios -. 1.0) *. 100.0

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. (n -. 1.0))

let min_max = function
  | [] -> (nan, nan)
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let percentile xs p =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    if n = 1 then a.(0)
    else if Float.is_nan p then nan
    else
      (* Clamp the interpolation rank into [0, n-1]: a percentile
         outside [0, 100] saturates at the extremes instead of
         indexing out of bounds. *)
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let rank = Float.max 0.0 (Float.min rank (float_of_int (n - 1))) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
