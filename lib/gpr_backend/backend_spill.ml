(* RegDem-style register demotion (Sakdhnagool et al.,
   arXiv:1907.02894): relieve register pressure by keeping hot
   (short-live-interval) values in the conventional 32-bit file and
   demoting cold live ranges to shared-memory spill slots.  Occupancy
   gained from the lower register pressure is traded against the shared
   memory the slots consume — both sides of the trade flow through
   [Backend.occupancy].

   Deviations from RegDem proper (documented in DESIGN.md): demotion is
   a whole-live-range decision ranked by interval length rather than a
   per-region compiler pass over PTX, special registers are never
   demoted (RegDem rematerialises them), and the demotion count is
   capped so one block always fits an SM. *)

module Alloc = Gpr_alloc.Alloc
module Liveness = Gpr_analysis.Liveness

let id = "spill"
let version = 1
let describe = "register demotion to shared-memory spill slots (RegDem-style)"
let needs_precision = false

(* At most this many demoted live ranges per kernel: 8 slots cost at
   most 32 bytes of shared memory per thread, so a block always fits
   the SM's shared-memory capacity. *)
let max_spilled = 8

(* Peak simultaneously-live demoted ranges = spill slots per thread
   after linear-scan slot reuse.  Intervals are half-open, so a range
   ending where another starts can reuse its slot (-1 before +1). *)
let slots_needed spilled_intervals =
  let events =
    List.concat_map
      (fun (_, start, stop) -> [ (start, 1); (stop, -1) ])
      spilled_intervals
    |> List.sort (fun (a, da) (b, db) ->
           if a <> b then compare a b else compare da db)
  in
  let peak = ref 0 and cur = ref 0 in
  List.iter
    (fun (_, d) ->
       cur := !cur + d;
       if !cur > !peak then peak := !cur)
    events;
  !peak

let analyze ~kernel ~width:_ ~precision:_ =
  let live = Liveness.compute kernel in
  let intervals = Liveness.intervals live in
  let special_ids =
    List.fold_left
      (fun acc (id, _) -> Liveness.Iset.add id acc)
      Liveness.Iset.empty kernel.Gpr_isa.Types.k_specials
  in
  (* Coldest first: longest live interval, var id as a deterministic
     tie break.  Special registers stay resident (cheap to keep, and
     RegDem rematerialises rather than spills them). *)
  let candidates =
    List.filter
      (fun (v, _, _) -> not (Liveness.Iset.mem v special_ids))
      intervals
    |> List.sort (fun (v, s, e) (v', s', e') ->
           let c = compare (e' - s') (e - s) in
           if c <> 0 then c else compare (v, s) (v', s'))
  in
  let baseline = Alloc.baseline kernel in
  (* Aim to shed about a quarter of the baseline pressure, never
     dropping below 4 resident registers: enough to move the occupancy
     needle without starving the hot set. *)
  let target = max 4 (baseline.Alloc.pressure - ((baseline.Alloc.pressure + 3) / 4)) in
  let alloc_excluding spilled =
    Alloc.run kernel
      ~exclude:(fun v -> Hashtbl.mem spilled v)
      ~width_of:(fun _ -> 32)
  in
  (* Demote one cold range at a time until pressure reaches the target
     (a range away from the pressure peak may not help; keep going —
     the next-coldest might). *)
  let spilled = Hashtbl.create 8 in
  let spilled_intervals = ref [] in
  let alloc = ref baseline in
  (try
     List.iteri
       (fun i ((v, _, _) as iv) ->
          if Hashtbl.length spilled >= max_spilled
             || !alloc.Alloc.pressure <= target
          then raise Exit;
          ignore i;
          Hashtbl.replace spilled v ();
          spilled_intervals := iv :: !spilled_intervals;
          alloc := alloc_excluding spilled)
       candidates
   with Exit -> ());
  if Hashtbl.length spilled = 0 then Backend.plain_resources baseline
  else
    {
      Backend.alloc = !alloc;
      spilled;
      spill_slots = slots_needed !spilled_intervals;
    }

let cost =
  {
    Backend.read_extra_latency = 0;
    writeback_delay = 0;
    (* Each demoted access pays a shared-memory round trip; 24 cycles
       is the Fermi shared latency the timing model also uses. *)
    spill_latency = 24;
    uses_indirection = false;
  }

let area (cfg : Gpr_arch.Config.t) =
  (* Per-lane spill address generation (base + slot adder) and a
     256-entry demotion map (slot id + valid bit).  The dominant cost —
     shared-memory capacity — is charged through [Backend.occupancy],
     not transistors. *)
  let adders = cfg.warp_size * 900 in
  let demotion_map = 256 * 10 * 6 in
  let per_sm = adders + demotion_map in
  {
    Backend.ar_scheme = id;
    ar_transistors_per_sm = per_sm;
    ar_fraction_of_chip =
      float_of_int (per_sm * cfg.num_sms) /. cfg.total_transistors;
    ar_notes =
      "spill address generation + demotion map; main cost is shared-memory \
       capacity, charged via occupancy";
  }
