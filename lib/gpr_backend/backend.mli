(** The pluggable register-file scheme contract.

    The paper's slice-compression pipeline used to be hardwired through
    [Compress] → [Alloc] → [Indirection]/[Datapath] → [Simulate].  A
    {!Scheme} packages everything the static framework needs to know
    about one register-file organisation:

    - a stable [id] and [version], mixed into every memo fingerprint so
      two schemes (or two versions of one scheme) never share a cache
      entry;
    - [analyze], the width/placement policy — from the kernel, its
      bit-precise width analysis ({!Gpr_analysis.Width}: intervals ×
      known-bits × congruence × demanded-bits) and an optional
      float-precision assignment to the {!resources} the scheme asks
      the SM for;
    - [cost], the per-access timing model the simulator applies;
    - [area], the hardware-overhead estimate.

    Schemes are first-class modules; {!Registry} maps the CLI's
    [--backend] names to them. *)

type resources = {
  alloc : Gpr_alloc.Alloc.t;
      (** placements for the registers that stay in the register file *)
  spilled : (int, unit) Hashtbl.t;
      (** virtual registers demoted to shared-memory spill slots; empty
          for register-only schemes *)
  spill_slots : int;
      (** peak simultaneously-live spill slots per thread (each one
          32-bit word of shared memory per thread) *)
}

type cost_model = {
  read_extra_latency : int;
      (** extra pipeline stages on a source read (indirection lookup) *)
  writeback_delay : int;
      (** default extra writeback latency (Sec. 3.2.8 for slice) *)
  spill_latency : int;
      (** shared round trip paid by each spilled access *)
  uses_indirection : bool;
      (** scheme reads through the indirection table (enables the
          table-arbitration, double-fetch and value-converter paths) *)
}

type area_report = {
  ar_scheme : string;
  ar_transistors_per_sm : int;
  ar_fraction_of_chip : float;
  ar_notes : string;
}

module type Scheme = sig
  val id : string
  (** Stable name: the CLI's [--backend] key and the fingerprint tag. *)

  val version : int
  (** Bump whenever [analyze] or [cost] semantics change; cached
      results of older versions are then never reused. *)

  val describe : string

  val needs_precision : bool
  (** Whether [analyze] consumes a float-precision assignment (and the
      simulation therefore replays the quantised trace). *)

  val analyze :
    kernel:Gpr_isa.Types.kernel ->
    width:Gpr_analysis.Width.t ->
    precision:Gpr_precision.Precision.assignment option ->
    resources

  val cost : cost_model
  val area : Gpr_arch.Config.t -> area_report
end

type t = (module Scheme)

val id : t -> string
val describe : t -> string

val fingerprint : t -> Gpr_engine.Fingerprint.t
(** [Fingerprint.scheme] over the scheme's id and version. *)

val no_spills : unit -> (int, unit) Hashtbl.t

val plain_resources : Gpr_alloc.Alloc.t -> resources
(** Resources of a register-only scheme: no spills. *)

val spill_bytes_per_thread : resources -> int

val sim_mode :
  ?writeback_delay:int -> t -> resources -> Gpr_sim.Sim.regfile_mode
(** The simulator mode a scheme's cost model maps to:
    indirection-table schemes run [Proposed] (at the cost model's
    writeback delay unless overridden), spilling schemes run [Spill],
    everything else runs [Baseline]. *)

val demand :
  Gpr_arch.Config.t ->
  resources ->
  warps_per_block:int ->
  shared_bytes_per_block:int ->
  Gpr_arch.Occupancy.demand
(** The per-block resource demand a scheme's resources impose: its
    register pressure, and the kernel's shared memory plus the spill
    slots' footprint (4 bytes per slot per thread).  This is the exact
    demand {!occupancy} computes from, and the admission footprint the
    concurrent-kernel dispatcher charges per resident block. *)

val occupancy :
  Gpr_arch.Config.t ->
  resources ->
  warps_per_block:int ->
  shared_bytes_per_block:int ->
  Gpr_arch.Occupancy.result
(** Occupancy with both limits taken from the scheme's resources: its
    register pressure, and the kernel's shared memory plus the spill
    slots' footprint (4 bytes per slot per thread). *)
