(* RRCD-style compression-enabled redirection (after "Reliability
   Enhancement of GPU Register Files with Compression", arXiv:2105.03859):
   the slice scheme's width analysis proves most values need only a few
   4-bit slices, so when a physical register cell is faulty the
   allocation can be *redirected* — repacked into the surviving healthy
   slices — instead of losing the kernel.  The indirection table the
   slice scheme already carries makes the remap free at access time:
   only the static table contents change.

   With no faults the scheme is exactly the slice allocation (and is
   registered that way); [with_faults] builds the fault-aware instance
   the injection campaign exercises. *)

module Width = Gpr_analysis.Width
module Alloc = Gpr_alloc.Alloc
module Fault = Gpr_regfile.Fault

let id = "rrcd"
let version = 1

let describe =
  "slice compression with fault-redirected placements (RRCD-style)"

let needs_precision = true

(* Indirection entries carry 6-bit physical register ids
   ([Indirection.entry_bits] must stay within 32 bits), so redirection
   packs into this fixed window. *)
let max_regs = 64

(* Repack an allocation's distinct storage atoms into the healthy
   slices of a faulty register file.  [check_alloc_static] guarantees
   distinct storage tuples are slice-disjoint (the table is static), so
   the atom is the unit of redirection: variables sharing a tuple keep
   sharing after the move.  Returns [(alloc', true)] on success —
   no placement touches a faulty slice — or [(alloc, false)] when the
   healthy capacity cannot hold the kernel (the width analysis could
   not prove it fits) and the original allocation is kept. *)
let redirect (alloc : Alloc.t) ~banks ~(faults : Fault.t list) =
  if faults = [] then (alloc, true)
  else begin
    let c = Fault.compile ~banks ~regs:max_regs faults in
    let atoms = Hashtbl.create 32 in
    Hashtbl.iter
      (fun _ (p : Alloc.placement) ->
        Hashtbl.replace atoms (p.reg0, p.mask0, p.reg1, p.mask1) p)
      alloc.placements;
    (* Deterministic repack order. *)
    let order =
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) atoms [])
    in
    let popc = Gpr_util.Bits.popcount in
    let free =
      Array.init max_regs (fun r -> 0xff land lnot (Fault.bad_slices c r))
    in
    let take r k =
      (* Lowest k free slices of r. *)
      let m = ref 0 and got = ref 0 in
      for s = 0 to 7 do
        if !got < k && free.(r) land (1 lsl s) <> 0 then begin
          m := !m lor (1 lsl s);
          incr got
        end
      done;
      free.(r) <- free.(r) land lnot !m;
      !m
    in
    let exception Unplaceable in
    match
      let mapping = Hashtbl.create 32 in
      List.iter
        (fun key ->
          let p = Hashtbl.find atoms key in
          let s = p.Alloc.slices in
          let rec find_single r =
            if r >= max_regs then None
            else if popc free.(r) >= s then Some r
            else find_single (r + 1)
          in
          let placed =
            match find_single 0 with
            | Some r ->
              let m = take r s in
              { p with reg0 = r; mask0 = m; reg1 = -1; mask1 = 0 }
            | None ->
              (* Split: sweep up fragmented capacity first, then cover
                 the remainder from one more register. *)
              let rec find_any r =
                if r >= max_regs then raise Unplaceable
                else if free.(r) > 0 then r
                else find_any (r + 1)
              in
              let ra = find_any 0 in
              let k = min (popc free.(ra)) (s - 1) in
              let rec find_rest r =
                if r >= max_regs then raise Unplaceable
                else if r <> ra && popc free.(r) >= s - k then r
                else find_rest (r + 1)
              in
              let rb = find_rest 0 in
              let ma = take ra k in
              let mb = take rb (s - k) in
              { p with reg0 = ra; mask0 = ma; reg1 = rb; mask1 = mb }
          in
          Hashtbl.replace mapping key placed)
        order;
      mapping
    with
    | exception Unplaceable -> (alloc, false)
    | mapping ->
      let placements = Hashtbl.create (Hashtbl.length alloc.placements) in
      Hashtbl.iter
        (fun v (p : Alloc.placement) ->
          Hashtbl.replace placements v
            (Hashtbl.find mapping (p.reg0, p.mask0, p.reg1, p.mask1)))
        alloc.placements;
      let used = Array.make max_regs false in
      let splits = ref 0 in
      Hashtbl.iter
        (fun _ (p : Alloc.placement) ->
          used.(p.reg0) <- true;
          if p.reg1 >= 0 then used.(p.reg1) <- true)
        mapping;
      Hashtbl.iter
        (fun _ (p : Alloc.placement) -> if p.reg1 >= 0 then incr splits)
        mapping;
      let pressure = Array.fold_left (fun a u -> if u then a + 1 else a) 0 used in
      ( {
          alloc with
          Alloc.placements;
          pressure;
          split_count = !splits;
        },
        true )
  end

let slice_alloc ~kernel ~width ~precision =
  Alloc.run kernel
    ~width_of:
      (Backend_slice.width_fn ~narrow_ints:true ~narrow_floats:precision
         ~width)

let analyze ~kernel ~width ~precision =
  Backend.plain_resources (slice_alloc ~kernel ~width ~precision)

(* Same datapath as the slice scheme: source indirection lookup plus
   the delayed compressing writeback. *)
let cost =
  {
    Backend.read_extra_latency = 1;
    writeback_delay = 3;
    spill_latency = 0;
    uses_indirection = true;
  }

let area (cfg : Gpr_arch.Config.t) =
  (* The slice hardware, plus the fault map the redirecting allocator
     consults: one valid bit per 4-bit slice of the physical file's
     64-register window per bank, at 6 transistors per SRAM-ish cell. *)
  let extractors_per_rf =
    if cfg.register_files_per_sm > 1 then
      Gpr_arch.Config.fermi_gtx480.register_banks / 2
    else cfg.register_banks
  in
  let b = Gpr_area.Area.for_config cfg ~extractors_per_rf in
  let fault_map = cfg.register_banks * max_regs * 8 * 6 in
  {
    Backend.ar_scheme = id;
    ar_transistors_per_sm = b.Gpr_area.Area.total_per_sm + fault_map;
    ar_fraction_of_chip =
      b.Gpr_area.Area.fraction_of_chip
      *. float_of_int (b.Gpr_area.Area.total_per_sm + fault_map)
      /. float_of_int (max 1 b.Gpr_area.Area.total_per_sm);
    ar_notes =
      "slice hardware (Sec. 6.4) plus a per-slice fault map for \
       redirected placement";
  }

(* The fault-aware instance: the slice allocation redirected around
   [faults].  Used by the injection campaign and the QCheck properties;
   the registered scheme is the fault-free instance above. *)
let with_faults ~banks (faults : Fault.t list) : Backend.t =
  (module struct
    let id = id
    let version = version
    let describe = describe
    let needs_precision = needs_precision

    let analyze ~kernel ~width ~precision =
      let alloc, _ok =
        redirect (slice_alloc ~kernel ~width ~precision) ~banks ~faults
      in
      Backend.plain_resources alloc

    let cost = cost
    let area = area
  end)
