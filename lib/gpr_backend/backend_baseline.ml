(* The conventional 32-bit register file: every value gets a full
   register, no indirection, no extra latency anywhere.  This is the
   reference organisation every other scheme is compared against. *)

let id = "baseline"
let version = 1
let describe = "conventional 32-bit register file"
let needs_precision = false

let analyze ~kernel ~width:_ ~precision:_ =
  Backend.plain_resources (Gpr_alloc.Alloc.baseline kernel)

let cost =
  {
    Backend.read_extra_latency = 0;
    writeback_delay = 0;
    spill_latency = 0;
    uses_indirection = false;
  }

let area _cfg =
  {
    Backend.ar_scheme = id;
    ar_transistors_per_sm = 0;
    ar_fraction_of_chip = 0.0;
    ar_notes = "reference organisation, no added hardware";
  }
