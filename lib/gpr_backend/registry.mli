(** Registered register-file schemes, in presentation order. *)

val all : Backend.t list

val names : string list

val find : string -> Backend.t option
(** Case-insensitive lookup by scheme id. *)

val find_exn : string -> Backend.t
(** @raise Invalid_argument naming the unknown backend and the
    available ids. *)
