module Alloc = Gpr_alloc.Alloc
module Config = Gpr_arch.Config
module Occupancy = Gpr_arch.Occupancy

type resources = {
  alloc : Alloc.t;
  spilled : (int, unit) Hashtbl.t;
  spill_slots : int;
}

type cost_model = {
  read_extra_latency : int;
  writeback_delay : int;
  spill_latency : int;
  uses_indirection : bool;
}

type area_report = {
  ar_scheme : string;
  ar_transistors_per_sm : int;
  ar_fraction_of_chip : float;
  ar_notes : string;
}

module type Scheme = sig
  val id : string
  val version : int
  val describe : string
  val needs_precision : bool

  val analyze :
    kernel:Gpr_isa.Types.kernel ->
    width:Gpr_analysis.Width.t ->
    precision:Gpr_precision.Precision.assignment option ->
    resources

  val cost : cost_model
  val area : Config.t -> area_report
end

type t = (module Scheme)

let id (module S : Scheme) = S.id
let describe (module S : Scheme) = S.describe

let fingerprint (module S : Scheme) =
  Gpr_engine.Fingerprint.scheme ~id:S.id ~version:S.version

let no_spills () : (int, unit) Hashtbl.t = Hashtbl.create 1

let plain_resources alloc = { alloc; spilled = no_spills (); spill_slots = 0 }

let spill_bytes_per_thread r = 4 * r.spill_slots

let sim_mode ?writeback_delay (module S : Scheme) (r : resources) =
  if S.cost.uses_indirection then
    Gpr_sim.Sim.Proposed
      {
        writeback_delay =
          Option.value writeback_delay ~default:S.cost.writeback_delay;
      }
  else if r.spill_slots > 0 then
    Gpr_sim.Sim.Spill { latency = S.cost.spill_latency; spilled = r.spilled }
  else Gpr_sim.Sim.Baseline

(* The scheme owns both sides of the occupancy trade: its register
   pressure and the shared memory its spill slots consume on top of the
   kernel's own usage (one 32-bit word per slot per thread). *)
let demand cfg (r : resources) ~warps_per_block ~shared_bytes_per_block =
  let spill_bytes =
    spill_bytes_per_thread r * cfg.Config.warp_size * warps_per_block
  in
  {
    Occupancy.d_regs_per_thread = max 1 r.alloc.Alloc.pressure;
    d_shared_bytes_per_block = shared_bytes_per_block + spill_bytes;
  }

let occupancy cfg (r : resources) ~warps_per_block ~shared_bytes_per_block =
  Occupancy.of_demand cfg
    (demand cfg r ~warps_per_block ~shared_bytes_per_block)
    ~warps_per_block
