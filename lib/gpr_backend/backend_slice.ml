(* The paper's scheme: statically proven narrow widths (range analysis
   for integers, the precision tuner for floats) packed at 4-bit slice
   granularity behind an indirection table (Secs. 3–4). *)

open Gpr_isa.Types
module P = Gpr_precision.Precision
module Width = Gpr_analysis.Width

let id = "slice"

(* v2: integer widths come from the reduced product of intervals,
   known bits, congruences and demanded bits ([Gpr_analysis.Width])
   instead of intervals alone — strictly narrower, never wider. *)
let version = 2

let describe = "slice-compressed register file (the paper's scheme)"
let needs_precision = true

(* The per-variable width policy, shared with the ablation sweeps (and
   re-exported by [Compress.width_fn] for compatibility). *)
let width_fn ~narrow_ints ~narrow_floats ~width (r : vreg) =
  match r.ty with
  | Pred -> 32  (* excluded from allocation by liveness anyway *)
  | F32 ->
    (match narrow_floats with
     | None -> 32
     | Some asg ->
       let bits = P.var_bits asg in
       (match Hashtbl.find_opt bits r.id with Some b -> b | None -> 32))
  | S32 | U32 ->
    if narrow_ints && r.id < Array.length width.Width.var_bits
    then Width.var_bitwidth width r.id
    else 32

let analyze ~kernel ~width ~precision =
  Backend.plain_resources
    (Gpr_alloc.Alloc.run kernel
       ~width_of:(width_fn ~narrow_ints:true ~narrow_floats:precision ~width))

let cost =
  {
    Backend.read_extra_latency = 1;  (* source indirection lookup *)
    writeback_delay = 3;             (* Sec. 3.2.8 default, swept in Fig. 12 *)
    spill_latency = 0;
    uses_indirection = true;
  }

let area (cfg : Gpr_arch.Config.t) =
  (* Sec. 6.4 counting rules: one extractor per bank on Fermi, half the
     Fermi extractor count per register file on Volta (one scheduler per
     processing block vs two per Fermi SM). *)
  let extractors_per_rf =
    if cfg.register_files_per_sm > 1 then
      Gpr_arch.Config.fermi_gtx480.register_banks / 2
    else cfg.register_banks
  in
  let b = Gpr_area.Area.for_config cfg ~extractors_per_rf in
  {
    Backend.ar_scheme = id;
    ar_transistors_per_sm = b.Gpr_area.Area.total_per_sm;
    ar_fraction_of_chip = b.Gpr_area.Area.fraction_of_chip;
    ar_notes =
      "value extractors/converters/truncators, indirection tables, CU \
       extensions (Sec. 6.4)";
  }
