(* Name → scheme mapping for the CLI's --backend flag and the fuzzer's
   per-backend oracle stages. *)

let all : Backend.t list =
  [ (module Backend_baseline); (module Backend_slice);
    (module Backend_rrcd); (module Backend_spill) ]

let names = List.map Backend.id all

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun s -> Backend.id s = name) all

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown backend %s (available: %s)" name
         (String.concat ", " names))
