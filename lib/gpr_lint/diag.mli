(** Diagnostics produced by the static kernel verifier ({!Lint}).

    Every diagnostic carries a stable code ([GLxyz]) so that tests, CI
    gates and downstream tooling can match on it without parsing the
    human-readable message.  The code space is partitioned by pass:

    - [GL1xx] — divergence / barrier safety
    - [GL2xx] — shared-memory races
    - [GL3xx] — compression soundness (slice masks vs proven ranges)
    - [GL4xx] — memory out-of-bounds
    - [GL5xx] — definite assignment / dead stores *)

open Gpr_isa.Types

type severity =
  | Error    (** a proven violation: the kernel is wrong or the
                 compression pipeline would mis-store a value *)
  | Warning  (** a possible violation the analysis cannot discharge *)
  | Info     (** advisory; never fails a build *)

(** Location of a diagnostic inside a kernel.  [l_block = -1] denotes a
    kernel-level diagnostic with no single program point (e.g. two
    allocator placements overlapping).  [l_instr = None] on a located
    diagnostic points at the block's terminator. *)
type loc = { l_block : int; l_instr : int option }

val kernel_loc : loc
val block_loc : int -> loc
val instr_loc : int -> int -> loc

type t = {
  d_code : string;      (** stable code, e.g. ["GL101"] *)
  d_severity : severity;
  d_pass : string;      (** name of the pass that produced it *)
  d_loc : loc;
  d_message : string;
}

val severity_to_string : severity -> string
val compare : t -> t -> int
(** Program order (kernel-level first), then code — the order reports
    are rendered in. *)

val count : severity -> t list -> int
val max_severity : t list -> severity option

val quote : kernel -> loc -> string option
(** The pretty-printed instruction (or terminator) at a location, for
    echoing in reports; [None] for kernel-level or out-of-range
    locations. *)

val to_string : kernel -> t -> string
(** One-line human rendering:
    [kernel:block.instr: severity GLxxx: message]. *)

val to_string_quoted : kernel -> t -> string
(** {!to_string} followed by an indented source quote when the location
    resolves to an instruction. *)

val to_json : kernel_name:string -> t -> string
(** One JSON object (no trailing newline) with fields [kernel], [code],
    [severity], [pass], [block], [instr], [message]. *)

val list_to_json : kernel_name:string -> t list -> string
(** JSON array of {!to_json} objects, sorted with {!compare}. *)
