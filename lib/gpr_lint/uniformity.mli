(** Uniformity / divergence analysis (lint pass foundation).

    Classifies every virtual register by how its value varies across the
    threads of a CTA, on the lattice

    {v Uniform  ⊑  TidAffine  ⊑  Divergent v}

    realised as an affine abstract value: [Affine (s, b)] denotes
    [s * tid.x + base] with [base ∈ b] the same for every thread (so
    [Affine (0, _)] is Uniform and a nonzero stride is TidAffine);
    [Divergent] is the top element.  The base interval travels with the
    stride so the race pass can decide whether two affine shared-memory
    accesses can collide across threads.

    Control divergence is propagated structurally: a conditional branch
    on a thread-divergent predicate marks every block between the branch
    and its immediate post-dominator as divergent (all reachable blocks
    when the branch has no post-dominator, e.g. a divergent early
    return), and any value defined inside a divergent block is demoted
    to [Divergent] — after reconvergence, threads that skipped the
    definition keep a different (stale) value.

    Sound for overflow-disciplined kernels: affine strides are tracked
    without modelling 32-bit wrap-around, matching the assumption of the
    range analysis that arithmetic does not overflow. *)

open Gpr_isa.Types

type av =
  | Bot                              (** no reachable definition *)
  | Affine of int * Gpr_util.Interval.t
      (** [s * tid.x + base], [base] uniform across the CTA's threads *)
  | Divergent

type t

val analyze : kernel -> launch:launch -> t

val value : t -> int -> av
(** Fixpoint abstract value of a vreg id ([Bot] if never defined). *)

val operand_value : t -> operand -> av
(** Abstract value of an operand; an undefined register reads as the
    executor's default 0. *)

val block_divergent : t -> int -> bool
(** Does the block execute under thread-divergent control flow? *)

val divergent_exit : t -> bool
(** Some reachable [Ret] executes under divergent control — threads
    leave the kernel early while others continue. *)

val join : av -> av -> av
val av_equal : av -> av -> bool

val is_uniform : av -> bool
(** Stride 0 (includes [Bot], which reads as the constant 0). *)

val is_divergent : av -> bool
val av_to_string : av -> string
