(** Diagnostics produced by the static kernel verifier ({!Lint}). *)

open Gpr_isa.Types
module Pp = Gpr_isa.Pp

type severity = Error | Warning | Info

type loc = { l_block : int; l_instr : int option }

let kernel_loc = { l_block = -1; l_instr = None }
let block_loc b = { l_block = b; l_instr = None }
let instr_loc b i = { l_block = b; l_instr = Some i }

type t = {
  d_code : string;
  d_severity : severity;
  d_pass : string;
  d_loc : loc;
  d_message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let la = a.d_loc and lb = b.d_loc in
  let c = Stdlib.compare la.l_block lb.l_block in
  if c <> 0 then c
  else
    (* instruction before terminator within a block *)
    let key l = match l.l_instr with Some i -> i | None -> max_int in
    let c = Stdlib.compare (key la) (key lb) in
    if c <> 0 then c else Stdlib.compare a.d_code b.d_code

let count sev ds = List.length (List.filter (fun d -> d.d_severity = sev) ds)

let max_severity = function
  | [] -> None
  | ds ->
    Some
      (List.fold_left
         (fun acc d ->
           if severity_rank d.d_severity < severity_rank acc then d.d_severity
           else acc)
         Info ds)

let quote kernel loc =
  if loc.l_block < 0 || loc.l_block >= Array.length kernel.k_blocks then None
  else
    let b = kernel.k_blocks.(loc.l_block) in
    match loc.l_instr with
    | None -> Some (Format.asprintf "%a" Pp.pp_terminator b.term)
    | Some i ->
      if i < 0 || i >= Array.length b.instrs then None
      else Some (Format.asprintf "%a" Pp.pp_instr b.instrs.(i))

let loc_to_string loc =
  if loc.l_block < 0 then "kernel"
  else
    match loc.l_instr with
    | None -> Printf.sprintf "B%d.term" loc.l_block
    | Some i -> Printf.sprintf "B%d.%d" loc.l_block i

let to_string kernel d =
  Printf.sprintf "%s:%s: %s %s: %s" kernel.k_name (loc_to_string d.d_loc)
    (severity_to_string d.d_severity)
    d.d_code d.d_message

let to_string_quoted kernel d =
  let base = to_string kernel d in
  match quote kernel d.d_loc with
  | None -> base
  | Some q -> base ^ "\n    | " ^ q

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ~kernel_name d =
  let instr =
    match d.d_loc.l_instr with Some i -> string_of_int i | None -> "null"
  in
  Printf.sprintf
    "{\"kernel\":\"%s\",\"code\":\"%s\",\"severity\":\"%s\",\"pass\":\"%s\",\"block\":%d,\"instr\":%s,\"message\":\"%s\"}"
    (json_escape kernel_name) (json_escape d.d_code)
    (severity_to_string d.d_severity)
    (json_escape d.d_pass) d.d_loc.l_block instr (json_escape d.d_message)

let list_to_json ~kernel_name ds =
  let ds = List.sort compare ds in
  "[" ^ String.concat "," (List.map (to_json ~kernel_name) ds) ^ "]"
