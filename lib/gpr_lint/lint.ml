(** Static kernel verifier — pass implementations.  See the interface
    for the pass/diagnostic-code catalogue. *)

open Gpr_isa.Types
module I = Gpr_util.Interval
module Bits = Gpr_util.Bits
module Cfg = Gpr_isa.Cfg
module Dominance = Gpr_analysis.Dominance
module Range = Gpr_analysis.Range
module Width = Gpr_analysis.Width
module KB = Gpr_analysis.Knownbits
module Liveness = Gpr_analysis.Liveness
module Alloc = Gpr_alloc.Alloc
module U = Uniformity

type ctx = {
  kernel : kernel;
  launch : launch;
  cfg : Cfg.t;
  rpo : int array;
  pdom : Dominance.post;
  width : Width.t;
  range : Range.t;
  uni : U.t;
  live : Liveness.t;
  alloc : Alloc.t;
  buffer_len : string -> int option;
}

let kernel_of ctx = ctx.kernel
let uniformity ctx = ctx.uni
let range_of ctx = ctx.range
let width_of ctx = ctx.width

let default_width width (r : vreg) =
  match r.ty with
  | Pred | F32 -> 32
  | S32 | U32 -> Width.var_bitwidth width r.id

let make_ctx ?(buffer_len = fun _ -> None) ?width_of ?alloc kernel ~launch =
  let cfg = Cfg.of_kernel kernel in
  let width = Width.analyze kernel ~launch in
  let width_of =
    match width_of with Some f -> f | None -> default_width width
  in
  let alloc =
    match alloc with Some a -> a | None -> Alloc.run kernel ~width_of
  in
  {
    kernel;
    launch;
    cfg;
    rpo = Cfg.reverse_postorder cfg;
    pdom = Dominance.compute_post cfg;
    width;
    range = width.Width.range;
    uni = U.analyze kernel ~launch;
    live = Liveness.compute kernel;
    alloc;
    buffer_len;
  }

let diag pass code severity loc fmt =
  Printf.ksprintf
    (fun d_message ->
      { Diag.d_code = code; d_severity = severity; d_pass = pass; d_loc = loc; d_message })
    fmt

let vname (r : vreg) = if r.name = "" then Printf.sprintf "%%r%d" r.id else "%" ^ r.name

(* ------------------------------------------------------------------ *)
(* Pass 1: divergence — report every thread-divergent branch.          *)

let divergence_pass ctx =
  let k = ctx.kernel in
  Array.to_list ctx.rpo
  |> List.filter_map (fun bi ->
         match k.k_blocks.(bi).term with
         | Cbr (p, t, f) when U.is_divergent (U.value ctx.uni p.id) ->
           Some
             (diag "divergence" "GL100" Diag.Info (Diag.block_loc bi)
                "conditional branch on thread-divergent predicate %s: blocks \
                 B%d..B%d execute per-lane until reconvergence"
                (vname p) (min t f) (max t f))
         | _ -> None)

(* ------------------------------------------------------------------ *)
(* Pass 2: barrier safety.                                             *)

let barrier_pass ctx =
  let k = ctx.kernel in
  let has_bar =
    Array.exists
      (fun bi -> Array.exists (( = ) Bar) k.k_blocks.(bi).instrs)
      ctx.rpo
  in
  let bar_diags =
    Array.to_list ctx.rpo
    |> List.concat_map (fun bi ->
           if not (U.block_divergent ctx.uni bi) then []
           else
             Array.to_list k.k_blocks.(bi).instrs
             |> List.mapi (fun i ins -> (i, ins))
             |> List.filter_map (fun (i, ins) ->
                    match ins with
                    | Bar ->
                      Some
                        (diag "barrier" "GL101" Diag.Error (Diag.instr_loc bi i)
                           "bar.sync executes under thread-divergent control \
                            flow: threads on the other path of the divergent \
                            branch never arrive, deadlocking the CTA")
                    | _ -> None))
  in
  let ret_diags =
    if not (has_bar && U.divergent_exit ctx.uni) then []
    else
      Array.to_list ctx.rpo
      |> List.filter_map (fun bi ->
             if U.block_divergent ctx.uni bi && k.k_blocks.(bi).term = Ret then
               Some
                 (diag "barrier" "GL102" Diag.Error (Diag.block_loc bi)
                    "thread-divergent ret in a kernel that synchronises: \
                     threads exiting here never reach a later bar.sync")
             else None)
  in
  bar_diags @ ret_diags

(* ------------------------------------------------------------------ *)
(* Pass 3: shared-memory races.                                        *)

(* Barrier phase of a program point: the number of [Bar] instructions
   executed before it, when that count is the same on every path. *)
type phase = Pconc of int | Pmany

let phase_join a b =
  match (a, b) with
  | Some (Pconc x), Some (Pconc y) -> Some (if x = y then Pconc x else Pmany)
  | Some Pmany, _ | _, Some Pmany -> Some Pmany
  | None, x | x, None -> x

let phase_add p n = match p with Pconc x -> Pconc (x + n) | Pmany -> Pmany
let may_same_phase a b =
  match (a, b) with Pconc x, Pconc y -> x = y | _ -> true

type access = {
  ac_block : int;
  ac_idx : int;
  ac_buf : string;
  ac_write : bool;
  ac_av : U.av;
  ac_value_const : bool;  (** store of one statically-known constant *)
  ac_phase : phase;
  ac_always : bool;  (** executed by every thread on every run *)
}

let singleton = function
  | I.Range (I.Finite a, I.Finite b) when a = b -> Some a
  | _ -> None

(* Is there a nonzero multiple [m] of [|s|] with [|m| <= kmax * |s|]
   inside the interval [d]?  Decides whether two same-stride affine
   accesses can collide across two distinct threads of the CTA. *)
let exists_multiple s kmax d =
  let s = abs s in
  if s = 0 || kmax <= 0 then false
  else
    match d with
    | I.Bot -> false
    | I.Range (lo, hi) ->
      let cap = kmax * s in
      let f_lo = match lo with I.Neg_inf -> -cap | I.Finite x -> x | I.Pos_inf -> cap + 1 in
      let f_hi = match hi with I.Pos_inf -> cap | I.Finite x -> x | I.Neg_inf -> -cap - 1 in
      let hit_pos lo hi =
        let lo = max lo s and hi = min hi cap in
        lo <= hi && hi / s * s >= lo
      in
      hit_pos f_lo f_hi || hit_pos (-f_hi) (-f_lo)

type verdict = V_none | V_possible | V_definite

(* Can accesses [a1] and [a2] (same buffer, possibly the same static
   instruction) touch the same element from two distinct threads?
   [alias_y]: a 2-D thread block, where distinct threads share tid.x. *)
let collide ~t_count ~alias_y a1 a2 =
  if t_count <= 1 then V_none
  else
    match (a1.ac_av, a2.ac_av) with
    | U.Affine (s1, b1), U.Affine (s2, b2)
      when (not (I.is_bot b1)) && not (I.is_bot b2) ->
      let d = I.sub b2 b1 in
      let definite = singleton b1 <> None && singleton b2 <> None in
      if s1 = s2 then
        if s1 = 0 || alias_y then
          if I.contains d 0 then if definite then V_definite else V_possible
          else if s1 <> 0 && exists_multiple s1 (t_count - 1) d then
            if definite then V_definite else V_possible
          else V_none
        else if exists_multiple s1 (t_count - 1) d then
          if definite then V_definite else V_possible
        else V_none
      else
        (* different strides: fall back to address-hull disjointness *)
        let hull s b =
          I.add (I.mul (I.of_const s) (I.of_ints 0 (t_count - 1))) b
        in
        if I.is_bot (I.meet (hull s1 b1) (hull s2 b2)) then V_none
        else V_possible
    | _ -> V_possible

let shared_race_pass ctx =
  let k = ctx.kernel in
  let nb = Array.length k.k_blocks in
  let t_count = threads_per_block ctx.launch in
  let alias_y = ctx.launch.ntid_y > 1 in
  (* blocks executed by every thread on every (terminating) run: they
     post-dominate the entry and are not control-divergent *)
  let always = Array.make nb false in
  let rec chain b =
    if b >= 0 && b < nb then begin
      always.(b) <- not (U.block_divergent ctx.uni b);
      match Dominance.ipdom ctx.pdom b with Some n -> chain n | None -> ()
    end
  in
  chain 0;
  (* barrier-phase dataflow *)
  let bars_in = Array.make nb 0 in
  Array.iter
    (fun bi ->
      bars_in.(bi) <-
        Array.fold_left
          (fun n ins -> if ins = Bar then n + 1 else n)
          0 k.k_blocks.(bi).instrs)
    ctx.rpo;
  let phase_in = Array.make nb None in
  phase_in.(0) <- Some (Pconc 0);
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun bi ->
        let from_preds =
          List.fold_left
            (fun acc p ->
              phase_join acc
                (Option.map (fun ph -> phase_add ph bars_in.(p)) phase_in.(p)))
            None (Cfg.preds ctx.cfg bi)
        in
        let merged = if bi = 0 then phase_join (Some (Pconc 0)) from_preds else from_preds in
        if merged <> phase_in.(bi) then begin
          phase_in.(bi) <- merged;
          changed := true
        end)
      ctx.rpo
  done;
  (* collect shared accesses *)
  let accesses = ref [] in
  Array.iter
    (fun bi ->
      let entry_phase =
        match phase_in.(bi) with Some p -> p | None -> Pmany
      in
      let bars_seen = ref 0 in
      Array.iteri
        (fun i ins ->
          let record ~write buf aindex value_const =
            if buf.buf_space = Shared then
              accesses :=
                {
                  ac_block = bi;
                  ac_idx = i;
                  ac_buf = buf.buf_name;
                  ac_write = write;
                  ac_av = U.operand_value ctx.uni aindex;
                  ac_value_const = value_const;
                  ac_phase = phase_add entry_phase !bars_seen;
                  ac_always = always.(bi);
                }
                :: !accesses
          in
          match ins with
          | Bar -> incr bars_seen
          | Ld (_, { abuf; aindex }) -> record ~write:false abuf aindex false
          | St ({ abuf; aindex }, v) ->
            let const =
              match U.operand_value ctx.uni v with
              | U.Affine (0, b) -> singleton b <> None
              | _ -> false
            in
            record ~write:true abuf aindex const
          | _ -> ())
        k.k_blocks.(bi).instrs)
    ctx.rpo;
  let acc = Array.of_list (List.rev !accesses) in
  let n = Array.length acc in
  let possible = Array.make n 0 in
  let diags = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a1 = acc.(i) and a2 = acc.(j) in
      if
        a1.ac_buf = a2.ac_buf
        && (a1.ac_write || a2.ac_write)
        && may_same_phase a1.ac_phase a2.ac_phase
      then begin
        let v = collide ~t_count ~alias_y a1 a2 in
        let v =
          (* a proven collision in conditionally-executed code may
             never happen at runtime: downgrade to possible *)
          if v = V_definite && not (a1.ac_always && a2.ac_always) then
            V_possible
          else v
        in
        match v with
        | V_none -> ()
        | V_definite ->
          let loc = Diag.instr_loc a1.ac_block a1.ac_idx in
          let other = Printf.sprintf "B%d.%d" a2.ac_block a2.ac_idx in
          if a1.ac_write && a2.ac_write then
            if i = j && U.is_uniform a1.ac_av && a1.ac_value_const then
              diags :=
                diag "shared-race" "GL204" Diag.Info loc
                  "benign broadcast: every thread stores the same constant \
                   to the same element of %s"
                  a1.ac_buf
                :: !diags
            else
              diags :=
                diag "shared-race" "GL201" Diag.Error loc
                  "write-write race on %s: two threads of a CTA provably \
                   store to the same element in the same barrier interval \
                   (conflicts with %s)"
                  a1.ac_buf other
                :: !diags
          else
            diags :=
              diag "shared-race" "GL202" Diag.Error loc
                "read-write race on %s: a thread provably reads an element \
                 another thread writes in the same barrier interval \
                 (conflicts with %s)"
                a1.ac_buf other
              :: !diags
        | V_possible ->
          possible.(i) <- possible.(i) + 1;
          if j <> i then possible.(j) <- possible.(j) + 1
      end
    done
  done;
  let warn =
    Array.to_list
      (Array.mapi
         (fun i a ->
           if possible.(i) = 0 then []
           else
             [
               diag "shared-race" "GL203" Diag.Warning
                 (Diag.instr_loc a.ac_block a.ac_idx)
                 "possible race on %s: this %s may touch an element another \
                  thread accesses in the same barrier interval (%d \
                  unresolved conflict%s)"
                 a.ac_buf
                 (if a.ac_write then "store" else "load")
                 possible.(i)
                 (if possible.(i) = 1 then "" else "s");
             ])
         acc)
    |> List.concat
  in
  !diags @ warn

(* ------------------------------------------------------------------ *)
(* Pass 4: compression soundness.                                      *)

(* First definition site of each vreg, for anchoring diagnostics. *)
let def_sites ctx =
  let sites = Hashtbl.create 64 in
  Array.iter
    (fun bi ->
      Array.iteri
        (fun i ins ->
          match defs ins with
          | Some d when not (Hashtbl.mem sites d.id) ->
            Hashtbl.add sites d.id (d, Diag.instr_loc bi i)
          | _ -> ())
        ctx.kernel.k_blocks.(bi).instrs)
    ctx.rpo;
  sites

let required_bits ctx (r : vreg) =
  (* The width authority: the reduced product of intervals, known
     bits, congruence and demanded bits.  Using intervals alone here
     would flag the narrower (but sound) product placements as
     corruption. *)
  if r.id < Array.length ctx.width.Width.var_bits then
    Width.var_bitwidth ctx.width r.id
  else 32

let placement_regs (p : Alloc.placement) =
  (p.reg0, p.mask0) :: (if p.reg1 >= 0 then [ (p.reg1, p.mask1) ] else [])

let placements_overlap a b =
  List.exists
    (fun (ra, ma) ->
      List.exists (fun (rb, mb) -> ra = rb && ma land mb <> 0) (placement_regs b))
    (placement_regs a)

let compression_pass ctx =
  let sites = def_sites ctx in
  let loc_of id =
    match Hashtbl.find_opt sites id with
    | Some (_, loc) -> loc
    | None -> Diag.kernel_loc
  in
  let name_of id =
    match Hashtbl.find_opt sites id with
    | Some (r, _) -> vname r
    | None -> Printf.sprintf "%%r%d" id
  in
  let diags = ref [] in
  let audited = ref [] in
  Hashtbl.iter
    (fun id (r, loc) ->
      match Alloc.lookup ctx.alloc id with
      | None -> ()
      | Some p ->
        audited := (id, p) :: !audited;
        let sl = Bits.popcount p.mask0 + Bits.popcount p.mask1 in
        if sl <> p.slices || Bits.slices_of_bits p.bits <> p.slices then
          diags :=
            diag "compression" "GL302" Diag.Error loc
              "malformed placement for %s: %d-bit operand, %d slice(s) \
               declared, masks %#x/%#x cover %d"
              (vname r) p.bits p.slices p.mask0 p.mask1 sl
            :: !diags;
        (match r.ty with
        | S32 | U32 ->
          let req = required_bits ctx r in
          if p.bits < req then
            diags :=
              diag "compression" "GL301" Diag.Error loc
                "slice mask for %s stores %d bit(s) but the width analysis \
                 (range %s) needs %d: compressed storage would corrupt the \
                 value"
                (vname r)
                p.bits
                (I.to_string (Range.var_range ctx.range r.id))
                req
              :: !diags
        | F32 | Pred -> ()))
    sites;
  (* Slice sharing is only sound between placements whose live intervals
     are disjoint — check every simultaneously-live pair. *)
  let ivals =
    Liveness.intervals ctx.live
    |> List.filter (fun (v, _, _) -> Alloc.lookup ctx.alloc v <> None)
    |> Array.of_list
  in
  let ni = Array.length ivals in
  for i = 0 to ni - 1 do
    let v1, s1, e1 = ivals.(i) in
    for j = i + 1 to ni - 1 do
      let v2, s2, e2 = ivals.(j) in
      if s2 >= e1 then ()
      else if s1 < e2 && s2 < e1 then
        match (Alloc.lookup ctx.alloc v1, Alloc.lookup ctx.alloc v2) with
        | Some p1, Some p2 when placements_overlap p1 p2 ->
          diags :=
            diag "compression" "GL303" Diag.Error (loc_of v1)
              "placements of %s and %s share register slices while both are \
               live"
              (name_of v1) (name_of v2)
            :: !diags
        | _ -> ()
    done
  done;
  !diags

(* ------------------------------------------------------------------ *)
(* Pass 5: out-of-bounds accesses.                                     *)

let bounds_pass ctx =
  let k = ctx.kernel in
  let index_interval = function
    | Imm_i c -> Some (I.of_const c)
    | Imm_f _ -> None
    | Reg r -> (
      match Range.var_range ctx.range r.id with I.Bot -> None | iv -> Some iv)
  in
  let check bi i (a : addr) what =
    match index_interval a.aindex with
    | None -> []
    | Some iv ->
      let loc = Diag.instr_loc bi i in
      let len = ctx.buffer_len a.abuf.buf_name in
      let definite_neg =
        match I.hi iv with I.Finite h -> h < 0 | _ -> false
      in
      let definite_high =
        match (len, I.lo iv) with
        | Some n, I.Finite l -> l >= n
        | _ -> false
      in
      if definite_neg || definite_high then
        [
          diag "bounds" "GL401" Diag.Error loc
            "%s of %s[%s] is always out of bounds%s" what a.abuf.buf_name
            (I.to_string iv)
            (match len with
            | Some n -> Printf.sprintf " (length %d)" n
            | None -> "");
        ]
      else
        let may_neg =
          match I.lo iv with I.Finite l -> l < 0 | I.Neg_inf -> true | _ -> false
        in
        let may_high =
          match (len, I.hi iv) with
          | Some n, I.Finite h -> h >= n
          | Some _, I.Pos_inf -> true
          | _ -> false
        in
        if may_neg || may_high then
          [
            diag "bounds" "GL402" Diag.Warning loc
              "%s of %s[%s] may be out of bounds%s" what a.abuf.buf_name
              (I.to_string iv)
              (match len with
              | Some n -> Printf.sprintf " (length %d)" n
              | None -> "");
          ]
        else []
  in
  Array.to_list ctx.rpo
  |> List.concat_map (fun bi ->
         Array.to_list k.k_blocks.(bi).instrs
         |> List.mapi (fun i ins -> (i, ins))
         |> List.concat_map (fun (i, ins) ->
                match ins with
                | Ld (_, a) -> check bi i a "load"
                | St (a, _) -> check bi i a "store"
                | _ -> []))

(* ------------------------------------------------------------------ *)
(* Pass 6: definite assignment and dead stores.                        *)

let defs_pass ctx =
  let k = ctx.kernel in
  let module S = Liveness.Iset in
  let nb = Array.length k.k_blocks in
  let entry_defs =
    List.fold_left (fun s (vid, _) -> S.add vid s) S.empty k.k_specials
  in
  let block_defs bi =
    Array.fold_left
      (fun s ins -> match defs ins with Some d -> S.add d.id s | None -> s)
      S.empty k.k_blocks.(bi).instrs
  in
  (* forward must-reach analysis: registers assigned on every path *)
  let out_ = Array.make nb None in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun bi ->
        let in_ =
          let preds = Cfg.preds ctx.cfg bi in
          let meet =
            List.fold_left
              (fun acc p ->
                match (acc, out_.(p)) with
                | None, x -> x
                | x, None -> x
                | Some a, Some b -> Some (S.inter a b))
              None preds
          in
          let preds_in = match meet with Some s -> s | None -> S.empty in
          if bi = 0 then S.union entry_defs preds_in
          else if List.length (Cfg.preds ctx.cfg bi) = 0 then S.empty
          else preds_in
        in
        let o = Some (S.union in_ (block_defs bi)) in
        if o <> out_.(bi) then begin
          out_.(bi) <- o;
          changed := true
        end)
      ctx.rpo
  done;
  let in_of bi =
    let preds = Cfg.preds ctx.cfg bi in
    let meet =
      List.fold_left
        (fun acc p ->
          match (acc, out_.(p)) with
          | None, x -> x
          | x, None -> x
          | Some a, Some b -> Some (S.inter a b))
        None preds
    in
    let preds_in = match meet with Some s -> s | None -> S.empty in
    if bi = 0 then S.union entry_defs preds_in else preds_in
  in
  let use_diags = ref [] in
  let reported = Hashtbl.create 16 in
  Array.iter
    (fun bi ->
      let cur = ref (in_of bi) in
      let flag loc (u : vreg) =
        if not (S.mem u.id !cur) && not (Hashtbl.mem reported (u.id, loc)) then begin
          Hashtbl.add reported (u.id, loc) ();
          use_diags :=
            diag "defs" "GL501" Diag.Warning loc
              "%s may be read before any assignment (it silently reads the \
               default value 0)"
              (vname u)
            :: !use_diags
        end
      in
      Array.iteri
        (fun i ins ->
          List.iter (flag (Diag.instr_loc bi i)) (uses ins);
          match defs ins with Some d -> cur := S.add d.id !cur | None -> ())
        k.k_blocks.(bi).instrs;
      List.iter (flag (Diag.block_loc bi)) (term_uses k.k_blocks.(bi).term))
    ctx.rpo;
  (* dead stores: backward within each block, seeded from liveness *)
  let dead_diags = ref [] in
  Array.iter
    (fun bi ->
      let blk = k.k_blocks.(bi) in
      let live = ref (Liveness.live_out ctx.live bi) in
      for i = Array.length blk.instrs - 1 downto 0 do
        let ins = blk.instrs.(i) in
        (match defs ins with
        | Some d when d.ty <> Pred ->
          if not (S.mem d.id !live) then
            dead_diags :=
              diag "defs" "GL502" Diag.Warning (Diag.instr_loc bi i)
                "dead store: the value written to %s is never used" (vname d)
              :: !dead_diags;
          live := S.remove d.id !live
        | _ -> ());
        List.iter
          (fun (u : vreg) -> if u.ty <> Pred then live := S.add u.id !live)
          (uses ins)
      done)
    ctx.rpo;
  !use_diags @ !dead_diags

(* ------------------------------------------------------------------ *)
(* bitwidth: advisory diagnostics straight from the bit-precise
   dataflow framework — known bits expose redundant masks, demanded
   bits expose dead high parts, and the executor's 5-bit shift-amount
   masking exposes meaningless shifts. *)

let bitwidth_pass ctx =
  let m32 = 0xffff_ffff in
  let diags = ref [] in
  let kb_of (r : vreg) =
    if r.id < Array.length ctx.width.Width.known then
      ctx.width.Width.known.(r.id)
    else KB.Bot
  in
  let dem_of (r : vreg) =
    if r.id < Array.length ctx.width.Width.demanded then
      ctx.width.Width.demanded.(r.id)
    else 32
  in
  let dead_high_reported = Hashtbl.create 16 in
  Array.iteri
    (fun bi blk ->
      Array.iteri
        (fun i ins ->
          let loc = Diag.instr_loc bi i in
          (match ins with
          | Ibin (And, _, a, b) ->
            let redundant reg c =
              match reg with
              | Reg r when r.ty = S32 || r.ty = U32 -> (
                match kb_of r with
                | KB.Kb { ones; unk } ->
                  let possible = (ones lor unk) land m32 in
                  if possible land lnot c land m32 = 0 then
                    diags :=
                      diag "bitwidth" "GL601" Diag.Info loc
                        "mask %#x on %s is redundant: every bit it clears is \
                         already known zero"
                        (c land m32) (vname r)
                      :: !diags
                | _ -> ())
              | _ -> ()
            in
            (match (a, b) with
            | ra, Imm_i c -> redundant ra c
            | Imm_i c, rb -> redundant rb c
            | _ -> ())
          | Ibin ((Shl | Shr), _, _, amt) ->
            let provably_oob =
              match amt with
              | Imm_i c -> c land 31 <> c
              | Reg r when r.ty = S32 || r.ty = U32 -> (
                match Range.var_range ctx.range r.id with
                | I.Bot -> false
                | iv -> (
                  match I.lo iv with I.Finite lo -> lo >= 32 | _ -> false))
              | Reg _ | Imm_f _ -> false
            in
            if provably_oob then
              diags :=
                diag "bitwidth" "GL603" Diag.Warning loc
                  "shift amount is provably >= 32; the datapath masks \
                   amounts to 5 bits, so this shifts by the amount mod 32"
                :: !diags
          | _ -> ());
          match defs ins with
          | Some d
            when (d.ty = S32 || d.ty = U32)
                 && not (Hashtbl.mem dead_high_reported d.id) ->
            let dem = dem_of d in
            if dem > 0 then begin
              let fwd =
                min
                  (Width.interval_bitwidth ctx.width d.id)
                  (KB.width d.ty (kb_of d))
              in
              if dem < fwd then begin
                Hashtbl.add dead_high_reported d.id ();
                diags :=
                  diag "bitwidth" "GL602" Diag.Info loc
                    "%s carries %d significant bit(s) but consumers only \
                     read the low %d: the high bits are dead"
                    (vname d) fwd dem
                  :: !diags
              end
            end
          | _ -> ())
        blk.instrs)
    ctx.kernel.k_blocks;
  List.rev !diags

(* ------------------------------------------------------------------ *)

type pass = {
  p_name : string;
  p_codes : string list;
  p_run : ctx -> Diag.t list;
}

let passes =
  [
    { p_name = "divergence"; p_codes = [ "GL100" ]; p_run = divergence_pass };
    { p_name = "barrier"; p_codes = [ "GL101"; "GL102" ]; p_run = barrier_pass };
    {
      p_name = "shared-race";
      p_codes = [ "GL201"; "GL202"; "GL203"; "GL204" ];
      p_run = shared_race_pass;
    };
    {
      p_name = "compression";
      p_codes = [ "GL301"; "GL302"; "GL303" ];
      p_run = compression_pass;
    };
    { p_name = "bounds"; p_codes = [ "GL401"; "GL402" ]; p_run = bounds_pass };
    { p_name = "defs"; p_codes = [ "GL501"; "GL502" ]; p_run = defs_pass };
    {
      p_name = "bitwidth";
      p_codes = [ "GL601"; "GL602"; "GL603" ];
      p_run = bitwidth_pass;
    };
  ]

let run ctx =
  List.concat_map (fun p -> p.p_run ctx) passes |> List.sort Diag.compare

let lint ?buffer_len kernel ~launch =
  run (make_ctx ?buffer_len kernel ~launch)

let monitor_clean ds =
  not
    (List.exists
       (fun d -> d.Diag.d_pass = "barrier" || d.Diag.d_pass = "shared-race")
       ds)
