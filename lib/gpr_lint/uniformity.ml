(** Uniformity / divergence analysis.  See the interface for the
    lattice; this file implements the optimistic fixpoint. *)

open Gpr_isa.Types
module I = Gpr_util.Interval
module Cfg = Gpr_isa.Cfg
module Dominance = Gpr_analysis.Dominance

type av = Bot | Affine of int * I.t | Divergent

type t = {
  values : av array;
  div_block : bool array;
  div_exit : bool;
}

let value t id = if id < Array.length t.values then t.values.(id) else Bot
let block_divergent t b = b >= 0 && b < Array.length t.div_block && t.div_block.(b)
let divergent_exit t = t.div_exit

let av_equal a b =
  match (a, b) with
  | Bot, Bot | Divergent, Divergent -> true
  | Affine (s1, b1), Affine (s2, b2) -> s1 = s2 && I.equal b1 b2
  | _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Divergent, _ | _, Divergent -> Divergent
  | Affine (s1, b1), Affine (s2, b2) ->
    if s1 = s2 then Affine (s1, I.join b1 b2) else Divergent

let is_uniform = function Bot | Affine (0, _) -> true | _ -> false
let is_divergent = function Divergent -> true | _ -> false

let av_to_string = function
  | Bot -> "bot"
  | Affine (0, b) -> Printf.sprintf "uniform%s" (I.to_string b)
  | Affine (s, b) -> Printf.sprintf "tid-affine(%d*tid + %s)" s (I.to_string b)
  | Divergent -> "divergent"

let singleton = function
  | I.Range (I.Finite a, I.Finite b) when a = b -> Some a
  | _ -> None

(* Guard against pathological strides: an |s| beyond the 32-bit range
   would alias through wrap-around, which the affine model ignores. *)
let affine s b = if abs s > 0xFFFFFFFF then Divergent else Affine (s, b)

let av_add a b =
  match (a, b) with
  | Divergent, _ | _, Divergent -> Divergent
  | Bot, x | x, Bot -> x
  | Affine (s1, b1), Affine (s2, b2) -> affine (s1 + s2) (I.add b1 b2)

let av_sub a b =
  match (a, b) with
  | Divergent, _ | _, Divergent -> Divergent
  | Bot, x | x, Bot -> x
  | Affine (s1, b1), Affine (s2, b2) -> affine (s1 - s2) (I.sub b1 b2)

let av_neg = function
  | Divergent -> Divergent
  | Bot -> Bot
  | Affine (s, b) -> Affine (-s, I.neg b)

let av_mul a b =
  match (a, b) with
  | Divergent, _ | _, Divergent -> Divergent
  | Bot, _ | _, Bot -> Bot
  | Affine (0, b1), Affine (0, b2) -> Affine (0, I.clamp_i32 (I.mul b1 b2))
  | Affine (s, b), Affine (0, c) | Affine (0, c), Affine (s, b) -> (
    match singleton c with
    | Some k -> affine (s * k) (I.mul b (I.of_const k))
    | None -> Divergent)
  | _ -> Divergent

(* Uniform-only fallback for operators with no affine transfer. *)
let av_uniform2 f a b =
  match (a, b) with
  | Affine (0, b1), Affine (0, b2) -> Affine (0, I.clamp_i32 (f b1 b2))
  | Bot, _ | _, Bot -> Bot
  | _ -> Divergent

let float_top = Affine (0, I.top)

let av_uniform_all avs = if List.for_all is_uniform avs then float_top else Divergent

let transfer_ibin op a b =
  match op with
  | Add -> av_add a b
  | Sub -> av_sub a b
  | Mul -> av_mul a b
  | Min -> (
    match (a, b) with
    | Affine (s1, b1), Affine (s2, b2) when s1 = s2 -> Affine (s1, I.min_ b1 b2)
    | Bot, _ | _, Bot -> Bot
    | _ -> Divergent)
  | Max -> (
    match (a, b) with
    | Affine (s1, b1), Affine (s2, b2) when s1 = s2 -> Affine (s1, I.max_ b1 b2)
    | Bot, _ | _, Bot -> Bot
    | _ -> Divergent)
  | Shl -> (
    match (a, b) with
    | Affine (s, ba), Affine (0, c) when s <> 0 -> (
      match singleton c with
      | Some k when k >= 0 && k < 32 -> affine (s lsl k) (I.shl ba (I.of_const k))
      | _ -> Divergent)
    | _ -> av_uniform2 I.shl a b)
  | Div -> av_uniform2 I.div a b
  | Rem -> av_uniform2 I.rem a b
  | And -> av_uniform2 I.band a b
  | Or -> av_uniform2 I.bor a b
  | Xor -> av_uniform2 I.bxor a b
  | Shr -> av_uniform2 I.shr a b

let transfer_iun op a =
  match op with
  | Ineg -> av_neg a
  | Inot -> av_sub (Affine (0, I.of_const (-1))) a
  | Iabs -> (
    match a with
    | Affine (0, b) -> Affine (0, I.abs b)
    | Bot -> Bot
    | _ -> Divergent)

let buffer_av (buf : buffer) =
  match (buf.buf_elem, buf.buf_range) with
  | (S32 | U32), Some (lo, hi) -> Affine (0, I.of_ints lo hi)
  | _ -> float_top

let param_av (p : param) =
  match (p.p_ty, p.p_range) with
  | (S32 | U32), Some (lo, hi) -> Affine (0, I.of_ints lo hi)
  | _ -> float_top

let special_av launch = function
  | Tid_x ->
    if launch.ntid_x = 1 then Affine (0, I.of_const 0) else Affine (1, I.of_const 0)
  | Tid_y -> if launch.ntid_y = 1 then Affine (0, I.of_const 0) else Divergent
  | Ntid_x -> Affine (0, I.of_const launch.ntid_x)
  | Ntid_y -> Affine (0, I.of_const launch.ntid_y)
  | Ctaid_x -> Affine (0, I.of_ints 0 (max 0 (launch.nctaid_x - 1)))
  | Ctaid_y -> Affine (0, I.of_ints 0 (max 0 (launch.nctaid_y - 1)))
  | Nctaid_x -> Affine (0, I.of_const launch.nctaid_x)
  | Nctaid_y -> Affine (0, I.of_const launch.nctaid_y)

let analyze kernel ~launch =
  let cfg = Cfg.of_kernel kernel in
  let rpo = Cfg.reverse_postorder cfg in
  let pdom = Dominance.compute_post cfg in
  let nb = Array.length kernel.k_blocks in
  let values = Array.make (max 1 kernel.k_num_vregs) Bot in
  let bumps = Array.make (max 1 kernel.k_num_vregs) 0 in
  let div_block = Array.make nb false in
  List.iter
    (fun (vid, s) ->
      if vid >= 0 && vid < Array.length values then
        values.(vid) <- special_av launch s)
    kernel.k_specials;
  (* An undefined register reads as the executor's default value 0. *)
  let reg_av (r : vreg) =
    match values.(r.id) with Bot -> Affine (0, I.of_const 0) | v -> v
  in
  let operand_av = function
    | Imm_i c -> Affine (0, I.of_const c)
    | Imm_f _ -> float_top
    | Reg r -> reg_av r
  in
  let transfer = function
    | Ibin (op, _, a, b) -> transfer_ibin op (operand_av a) (operand_av b)
    | Iun (op, _, a) -> transfer_iun op (operand_av a)
    | Imad (_, a, b, c) ->
      av_add (av_mul (operand_av a) (operand_av b)) (operand_av c)
    | Fbin (_, _, a, b) -> av_uniform_all [ operand_av a; operand_av b ]
    | Fun (_, _, a) -> av_uniform_all [ operand_av a ]
    | Ffma (_, a, b, c) ->
      av_uniform_all [ operand_av a; operand_av b; operand_av c ]
    | Setp (_, _, _, a, b) -> (
      (* same-stride affines compare uniformly: the tid terms cancel *)
      match (operand_av a, operand_av b) with
      | Affine (s1, _), Affine (s2, _) when s1 = s2 -> Affine (0, I.of_ints 0 1)
      | Bot, _ | _, Bot -> Affine (0, I.of_ints 0 1)
      | _ -> Divergent)
    | Selp (_, a, b, p) ->
      if is_divergent (reg_av p) then Divergent
      else join (operand_av a) (operand_av b)
    | Mov (_, a) -> operand_av a
    | Cvt ((S32_of_u32 | U32_of_s32), _, a) -> operand_av a
    | Cvt (_, _, a) -> av_uniform_all [ operand_av a ]
    | Ld (_, { abuf; aindex }) -> (
      (* Only read-only spaces yield uniform loads: a Global or Shared
         cell may have been written divergently earlier in the kernel. *)
      match abuf.buf_space with
      | Texture | Param when is_uniform (operand_av aindex) -> buffer_av abuf
      | _ -> Divergent)
    | Ld_param (_, i) ->
      if i >= 0 && i < Array.length kernel.k_params then
        param_av kernel.k_params.(i)
      else float_top
    | St _ | Bar -> Bot
    | Phi (_, ins) ->
      List.fold_left (fun acc (_, op) -> join acc (operand_av op)) Bot ins
    | Pi (_, s, _) -> reg_av s
  in
  (* Widening for loop-carried bases: a base interval that keeps growing
     under the same stride jumps to infinity after a few updates. *)
  let widen_av old nv =
    match (old, nv) with
    | Affine (s1, b1), Affine (s2, b2) when s1 = s2 -> Affine (s1, I.widen b1 b2)
    | _ -> nv
  in
  (* Mark the region influenced by a divergent branch at [x]: every
     block reachable from its successors without crossing the immediate
     post-dominator (everything reachable when there is none). *)
  let mark_region x =
    match kernel.k_blocks.(x).term with
    | Cbr (_, t, f) ->
      let stop = Dominance.ipdom pdom x in
      let changed = ref false in
      let seen = Array.make nb false in
      let rec go b =
        if b >= 0 && b < nb && (not seen.(b)) && Some b <> stop then begin
          seen.(b) <- true;
          if not div_block.(b) then begin
            div_block.(b) <- true;
            changed := true
          end;
          List.iter go (Cfg.succs cfg b)
        end
      in
      go t;
      go f;
      !changed
    | _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun x ->
        match kernel.k_blocks.(x).term with
        | Cbr (p, _, _) when is_divergent (reg_av p) ->
          if mark_region x then changed := true
        | _ -> ())
      rpo;
    Array.iter
      (fun bi ->
        let blk = kernel.k_blocks.(bi) in
        Array.iter
          (fun ins ->
            match defs ins with
            | None -> ()
            | Some d ->
              let v = transfer ins in
              let v = if div_block.(bi) then Divergent else v in
              let old = values.(d.id) in
              let nv = join old v in
              if not (av_equal nv old) then begin
                bumps.(d.id) <- bumps.(d.id) + 1;
                let nv = if bumps.(d.id) > 8 then widen_av old nv else nv in
                values.(d.id) <- nv;
                changed := true
              end)
          blk.instrs)
      rpo
  done;
  let div_exit =
    Array.exists
      (fun bi -> div_block.(bi) && kernel.k_blocks.(bi).term = Ret)
      rpo
  in
  { values; div_block; div_exit }

let operand_value t = function
  | Imm_i c -> Affine (0, I.of_const c)
  | Imm_f _ -> float_top
  | Reg r -> ( match value t r.id with Bot -> Affine (0, I.of_const 0) | v -> v)
