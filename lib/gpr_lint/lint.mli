(** Static kernel verifier: seven analysis passes over a
    {!Gpr_isa.Types.kernel}, producing {!Diag.t} diagnostics.

    The passes, in the order {!passes} lists them:

    + ["divergence"] — {!Uniformity} classification of every branch;
      [GL100] (info) for each conditional branch on a thread-divergent
      predicate.
    + ["barrier"] — [GL101] (error): a [Bar] executing under
      thread-divergent control flow; [GL102] (error): a thread-divergent
      [Ret] in a kernel that synchronises.
    + ["shared-race"] — affine analysis of [Shared] accesses between
      barriers.  [GL201]/[GL202] (error): provable write-write /
      read-write races; [GL203] (warning): possible race the analysis
      cannot discharge; [GL204] (info): benign broadcast (all threads
      store the same constant to the same element).
    + ["compression"] — the static restatement of the fuzzer's runtime
      storage-soundness oracle.  [GL301] (error): an allocator slice
      mask narrower than the interval proven by {!Gpr_analysis.Range};
      [GL302] (error): structurally malformed placement; [GL303]
      (error): two placements sharing a slice while simultaneously
      live.
    + ["bounds"] — [GL401] (error): an access whose index interval lies
      entirely outside the buffer; [GL402] (warning): an index that may
      be negative or may exceed a declared buffer length.
    + ["defs"] — [GL501] (warning): a register read on some path before
      any assignment (it silently reads the default 0); [GL502]
      (warning): a dead store — a defined value never used.
    + ["bitwidth"] — advisory findings from the bit-precise dataflow
      framework ({!Gpr_analysis.Width}).  [GL601] (info): an [And] with
      a constant mask that clears only bits already known zero by
      {!Gpr_analysis.Knownbits}; [GL602] (info): a definition whose
      demanded-bits width is strictly below its forward
      (interval × known-bits) width — the high bits are computed but
      never read; [GL603] (warning): a shift whose amount is provably
      [>= 32] — the datapath masks amounts to 5 bits, so the shift is
      by [amount mod 32].

    Soundness contract with the dynamic monitor ({!Gpr_exec.Exec.run}
    [~check:true]): if a kernel is {!monitor_clean}, executing it never
    produces a monitor event.  The fuzzer checks this parity on
    generated kernels. *)

open Gpr_isa.Types

type ctx
(** Precomputed analysis state shared by the passes: CFG, post-dominators,
    the {!Gpr_analysis.Width} reduced product (which embeds
    {!Gpr_analysis.Range}), {!Uniformity}, {!Gpr_analysis.Liveness} and
    the slice allocation under audit. *)

val make_ctx :
  ?buffer_len:(string -> int option) ->
  ?width_of:(vreg -> int) ->
  ?alloc:Gpr_alloc.Alloc.t ->
  kernel ->
  launch:launch ->
  ctx
(** [buffer_len] declares element counts for bound buffers (by name) so
    the bounds pass can check upper bounds; default: unknown.
    [width_of] overrides the bitwidth function fed to the allocator
    (default: {!Gpr_analysis.Width} reduced-product widths for
    integers, 32 for floats);
    [alloc] supplies an existing allocation to audit instead of running
    the allocator — both exist so tests can audit deliberately unsound
    configurations. *)

val kernel_of : ctx -> kernel
val uniformity : ctx -> Uniformity.t
val range_of : ctx -> Gpr_analysis.Range.t
val width_of : ctx -> Gpr_analysis.Width.t

type pass = {
  p_name : string;
  p_codes : string list;  (** diagnostic codes the pass can produce *)
  p_run : ctx -> Diag.t list;
}

val passes : pass list
(** The seven passes in canonical order. *)

val run : ctx -> Diag.t list
(** All passes, sorted with {!Diag.compare}. *)

val lint :
  ?buffer_len:(string -> int option) -> kernel -> launch:launch -> Diag.t list
(** [make_ctx] + [run] with default analyses. *)

val monitor_clean : Diag.t list -> bool
(** No diagnostic (of any severity) from the ["barrier"] or
    ["shared-race"] passes — the static precondition under which the
    dynamic barrier/race monitor is guaranteed silent. *)
