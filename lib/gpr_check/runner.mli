(** Fuzzing campaign driver: generate → check → shrink → report.

    Every seed runs four oracle stages in order: the exact differential
    mode, the reduced-precision mode, the timing-model replay, and the
    static/dynamic lint-soundness parity ({!Diff}).  The first failing
    stage is shrunk with a predicate that demands the same failure
    class, so the reported counterexample reproduces the original
    violation, not an artefact of shrinking. *)

type stage = Stage_exact | Stage_narrow | Stage_sim | Stage_lint

type report = {
  seed : int;
  stage : stage;
  failure : Diff.failure;
  original : Gpr_isa.Types.kernel;
  shrunk : Gpr_isa.Types.kernel;
}

type summary = {
  checked : int;      (** seeds fully checked *)
  reports : report list;  (** failures, oldest first *)
}

val stage_name : stage -> string

val run_seed : ?shrink:bool -> int -> report option
(** Check one seed; [shrink] (default true) minimises any
    counterexample before reporting. *)

val run :
  ?shrink:bool ->
  ?max_seconds:float ->
  ?progress:(int -> unit) ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** Check [count] consecutive seeds starting at [seed].  [max_seconds]
    bounds wall time (checked between seeds, or between chunks when
    parallel — for CI smoke runs); [progress] is called with each seed
    before its chunk runs.

    [jobs] (default 1) shards the seed space over a
    {!Gpr_engine.Pool}: each seed is an independent job with its own
    deterministic generator, and results are collected in seed order,
    so the summary is identical to a serial run — only wall clock
    changes. *)

val report_to_string : report -> string
(** Human-readable counterexample: failing stage, violation, the shrunk
    kernel annotated with its {!Gpr_lint.Lint} diagnostics, and the
    command line that reproduces it. *)
