(** Fuzzing campaign driver: generate → check → shrink → report.

    Every seed runs a sequence of oracle stages derived from the
    requested scheme list ([backends], default [["slice"]]).  The slice
    scheme expands to the six classic stages — exact differential,
    reduced-precision, width-analysis soundness
    ({!Diff.check_width}), timing-model replay, static/dynamic
    lint-soundness parity, and the stall-attribution identity
    ({!Diff}) — while any other registered scheme
    runs the generic plain-vs-backend oracles
    ({!Diff.check_backend} + {!Diff.check_sim_backend}).  Every scheme
    additionally runs the concurrent-kernel co-scheduling oracle
    ({!Diff.check_coloc}).  The first
    failing stage is shrunk with a predicate that demands the same
    failure class, so the reported counterexample reproduces the
    original violation, not an artefact of shrinking. *)

type stage =
  | Stage_exact
  | Stage_narrow
  | Stage_width
      (** {!Gpr_analysis.Width} reduced-product soundness: dominance,
          forward membership, demanded-bits storage ({!Diff.check_width}) *)
  | Stage_sim
  | Stage_lint
  | Stage_obs
      (** stall-attribution identity over the returned stats records
          ({!Diff.check_obs}) *)
  | Stage_backend of string
      (** generic scheme oracle for the named registry backend *)
  | Stage_coloc of string
      (** concurrent-kernel co-scheduling oracle under the named
          scheme ({!Diff.check_coloc}): singleton byte-identity vs
          {!Gpr_sim.Sim.run}, per-kernel replay identity vs the
          isolated runs, and the per-kernel + aggregate
          slot-attribution identities, under every dispatch policy *)

type report = {
  seed : int;
  stage : stage;
  failure : Diff.failure;
  original : Gpr_isa.Types.kernel;
  shrunk : Gpr_isa.Types.kernel;
}

type summary = {
  checked : int;      (** seeds fully checked *)
  reports : report list;  (** failures, oldest first *)
}

val stage_name : stage -> string

val run_seed : ?shrink:bool -> ?backends:string list -> int -> report option
(** Check one seed against the stages of the given scheme names
    (default [["slice"]]); [shrink] (default true) minimises any
    counterexample before reporting. *)

val run :
  ?shrink:bool ->
  ?backends:string list ->
  ?max_seconds:float ->
  ?progress:(int -> unit) ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** Check [count] consecutive seeds starting at [seed].  [backends]
    (default [["slice"]]) selects which schemes' oracle stages each
    seed runs; unknown names raise [Invalid_argument] before any seed
    is checked.  [max_seconds]
    bounds wall time (checked between seeds, or between chunks when
    parallel — for CI smoke runs); [progress] is called with each seed
    before its chunk runs.

    [jobs] (default 1) shards the seed space over a
    {!Gpr_engine.Pool}: each seed is an independent job with its own
    deterministic generator, and results are collected in seed order,
    so the summary is identical to a serial run — only wall clock
    changes. *)

val report_to_string : report -> string
(** Human-readable counterexample: failing stage, violation, the shrunk
    kernel annotated with its {!Gpr_lint.Lint} diagnostics, and the
    command line that reproduces it. *)
