(** Seeded random kernel generation for the differential oracle.

    Kernels come out of {!Gpr_isa.Builder}, so they are well-typed and
    CFG-valid by construction: arbitrary nests of diamonds, counted and
    while-style loops, early returns, predication through [selp],
    integer/float mixes, global loads and stores, and (optionally)
    shared-memory exchanges through a barrier.

    The generator is {e overflow-disciplined}: the range analysis
    ({!Gpr_analysis.Range}) deliberately works over the unbounded
    integers and does not model 32-bit wrap-around, so a kernel whose
    values wrap would make a sound analysis look unsound.  Every
    generated integer therefore carries a conservative interval
    estimate, operator choices are gated so results stay within
    [±2^30], unbounded values ([ftoi] results, loop carries) are
    clamped before arithmetic use, and input buffers/parameters honour
    their declared ranges.  Every generated value is stored to an
    output buffer so the differential oracle observes it. *)

open Gpr_isa.Types

type case = {
  seed : int;
  kernel : kernel;
  launch : launch;
  params : Gpr_exec.Exec.pvalue array;
  data : unit -> (string * Gpr_exec.Exec.storage) list;
      (** fresh, deterministic (per-seed identical) buffer contents *)
  shared : (string * int) list;  (** shared-buffer element counts *)
  float_level : vreg -> int;
      (** Table-3 level (0–6) per float register, for the
          reduced-precision oracle mode *)
}

val generate : ?size:int -> int -> case
(** [generate seed] builds a deterministic random case; [size]
    (default 24) is the top-level statement budget. *)

val random_cfg_kernel : Gpr_util.Rng.t -> int -> kernel
(** [n] empty blocks with random [Ret]/[Br]/[Cbr] terminators (the last
    block is forced to [Ret]) — instruction-free CFG soup for dominance
    and CFG-structure properties. *)

val random_straightline :
  Gpr_util.Rng.t -> n_nodes:int -> kernel * (vreg * int) list
(** Straight-line kernel of [n_nodes] growth-bounded integer operations
    over the global thread id, each stored to slot
    [gid * n_nodes + slot] of a buffer named ["out"].  Returns the
    tracked [(vreg, slot)] pairs.  Built for the range-soundness
    property: no operator can overflow 32 bits. *)
