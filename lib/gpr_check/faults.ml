(* Fault-injection campaign: how many permanent register-file defects
   does each scheme absorb before an output corrupts?

   Corruption ground truth is the differential oracle's: a scheme's
   fault-free packed run is byte-identical to the plain reference run
   (that is exactly what [Diff.check_backend] fuzzes), so the
   fault-free packed outputs stand in for the reference here, and a
   faulted run counts as corrupted the moment any output buffer
   deviates from them — or the faulted execution crashes outright (a
   corrupted index or loop bound is a corruption, not a tooling
   error).

   Faults are injected at the storage round-trip of every register
   write ([Datapath.store_*] images corrupted per [Fault.corrupt]
   before [Datapath.load_*]); permanent defects make write-time
   corruption equivalent to read-time corruption.  The per-scheme
   fault stream is shared and prefix-stable ([Fault.place]), so
   "absorbed k faults" means the same first k defects for every
   scheme:

   - baseline stores every value across all 8 slices of a register, so
     any defect in an allocated register's demanded bits corrupts;
   - slice only occupies the slices the width analysis proved
     necessary — defects in unoccupied slices of live registers are
     absorbed for free;
   - rrcd additionally *redirects* placements off the faulty slices
     ([Backend_rrcd.redirect]) whenever the healthy capacity still
     holds the kernel, so it absorbs everything short of capacity
     exhaustion;
   - spill keeps its spilled live ranges in shared memory, immune to
     register-file defects. *)

open Gpr_isa.Types
module E = Gpr_exec.Exec
module Width = Gpr_analysis.Width
module Alloc = Gpr_alloc.Alloc
module Ind = Gpr_regfile.Indirection
module Dp = Gpr_regfile.Datapath
module Fault = Gpr_regfile.Fault
module F = Gpr_fp.Format_
module Backend = Gpr_backend.Backend

(* Placements stay below 64 registers (6-bit indirection ids), so this
   window bounds where a fault can land *after* redirection ... *)
let max_regs = 64

(* ... while the defect population itself is drawn over the low window
   the small fuzz kernels actually occupy, so the sweep stresses the
   schemes instead of sprinkling faults over registers nobody uses. *)
let fault_window_regs = 16

let spill_roundtrip (d : vreg) iv =
  let low = iv land Gpr_util.Bits.mask 32 in
  match d.ty with
  | S32 -> Gpr_util.Bits.sign_extend ~width:32 low
  | U32 | F32 | Pred -> Gpr_util.Bits.zero_extend ~width:32 low

(* One faulted packed run: every write round-trips through the real
   indirection/datapath with the stored register images corrupted per
   the compiled fault set.  Returns the output buffers. *)
let run_case (res : Backend.resources) (case : Gen.case) comp =
  let kernel = case.kernel in
  let table = Ind.create res.Backend.alloc in
  let corrupt2 (p : Alloc.placement) r0 r1 =
    let r0 = Fault.corrupt comp ~reg:p.reg0 r0 in
    let r1 = if p.reg1 >= 0 then Fault.corrupt comp ~reg:p.reg1 r1 else r1 in
    (r0, r1)
  in
  let on_write _pc (d : vreg) v =
    match v with
    | E.P_int iv ->
      (match Ind.lookup table d.id with
       | Some p when not p.is_float ->
         let r0, r1 = Dp.store_int p iv in
         let r0, r1 = corrupt2 p r0 r1 in
         E.P_int (Dp.load_int p ~r0 ~r1)
       | Some _ -> v
       | None ->
         if Hashtbl.mem res.Backend.spilled d.id then
           E.P_int (spill_roundtrip d iv)
         else v)
    | E.P_float fv ->
      (match Ind.lookup table d.id with
       | Some p when p.is_float ->
         let r0, r1 = Dp.store_float p fv in
         let r0, r1 = corrupt2 p r0 r1 in
         E.P_float (Dp.load_float p ~r0 ~r1)
       | _ -> E.P_float (F.quantize F.f32 fv))
  in
  let data = case.data () in
  let bindings = E.bindings_for kernel ~data ~shared:case.shared () in
  ignore
    (E.run kernel ~launch:case.launch ~params:case.params ~bindings
       {
         E.default_config with
         on_write = Some on_write;
         max_steps = Some 2_000_000;
       });
  data

let float_bits_eq a b =
  Int32.bits_of_float a = Int32.bits_of_float b
  || (Float.is_nan a && Float.is_nan b)

let outputs_equal a b =
  List.for_all2
    (fun (_, x) (_, y) ->
      match (x, y) with
      | E.I_data u, E.I_data v -> u = v
      | E.F_data u, E.F_data v ->
        Array.length u = Array.length v
        && (let ok = ref true in
            Array.iteri
              (fun i e -> if not (float_bits_eq e v.(i)) then ok := false)
              u;
            !ok)
      | _ -> false)
    a b

type scheme_result = {
  fr_scheme : string;
  fr_cases : int;
  fr_max_faults : int;
  fr_first_corrupt : int option;
      (* smallest injected-fault count that corrupted any case *)
  fr_absorbed : int; (* faults absorbed before the first corruption *)
  fr_absorbed_mean : float;
      (* mean over cases of the per-case absorbed count — the
         population-level [fr_absorbed] is the minimum and collapses to
         the single unluckiest case, while the mean measures how much
         of the fuzz population a scheme actually shields *)
}

let scheme_resources ~banks name =
  let name = String.lowercase_ascii name in
  if name = "rrcd" then
    (* The fault-aware instance: re-redirect the slice allocation for
       every fault set of the sweep.  The base allocation per case is
       computed once. *)
    fun (case : Gen.case) ->
      let wt = Width.analyze case.kernel ~launch:case.launch in
      let base =
        Gpr_backend.Backend_rrcd.slice_alloc ~kernel:case.kernel ~width:wt
          ~precision:None
      in
      fun faults ->
        Backend.plain_resources
          (fst (Gpr_backend.Backend_rrcd.redirect base ~banks ~faults))
  else
    let b = Gpr_backend.Registry.find_exn name in
    let module S = (val b : Backend.Scheme) in
    fun (case : Gen.case) ->
      let wt = Width.analyze case.kernel ~launch:case.launch in
      let res = S.analyze ~kernel:case.kernel ~width:wt ~precision:None in
      fun _faults -> res

let run_scheme ?(seed = 1) ?(cases = 20) ?(max_faults = 12) ?progress ~banks
    name =
  let cs = List.init cases (fun i -> Gen.generate (seed + i)) in
  let prepared =
    let prep = scheme_resources ~banks name in
    List.map (fun case -> (case, prep case)) cs
  in
  (* Ground truth: the scheme's fault-free outputs (byte-identical to
     the plain reference by the differential oracle). *)
  let clean =
    List.map
      (fun ((case : Gen.case), resf) ->
        run_case (resf []) case (Fault.none ~banks ~regs:max_regs))
      prepared
  in
  (* Per-case first-corruption sweep, fault count outermost so the
     growing defect population is compiled once per count.  A case
     already corrupted at a smaller count stays corrupted ("first
     corruption" — cumulative permanent defects are not re-tested for
     accidental masking at larger counts). *)
  let items = Array.of_list (List.combine prepared clean) in
  let first = Array.make (Array.length items) None in
  let k = ref 1 in
  let all_corrupt () = Array.for_all Option.is_some first in
  while !k <= max_faults && not (all_corrupt ()) do
    let fs = Fault.place ~seed ~count:!k ~banks ~regs:fault_window_regs in
    let comp = Fault.compile ~banks ~regs:max_regs fs in
    let newly = ref 0 in
    Array.iteri
      (fun i (((case : Gen.case), resf), ref_out) ->
        if first.(i) = None then
          let bad =
            match run_case (resf fs) case comp with
            | out -> not (outputs_equal ref_out out)
            | exception _ -> true
          in
          if bad then begin
            first.(i) <- Some !k;
            incr newly
          end)
      items;
    (match progress with
    | Some f -> f ~scheme:name ~injected:!k ~corrupted:(!newly > 0)
    | None -> ());
    incr k
  done;
  let firsts = Array.to_list first in
  let population_first =
    List.filter_map Fun.id firsts
    |> function [] -> None | ks -> Some (List.fold_left min max_int ks)
  in
  let absorbed_of = function Some k -> k - 1 | None -> max_faults in
  {
    fr_scheme = String.lowercase_ascii name;
    fr_cases = cases;
    fr_max_faults = max_faults;
    fr_first_corrupt = population_first;
    fr_absorbed = absorbed_of population_first;
    fr_absorbed_mean =
      (if cases = 0 then 0.0
       else
         float_of_int
           (List.fold_left (fun acc f -> acc + absorbed_of f) 0 firsts)
         /. float_of_int cases);
  }

let run ?seed ?cases ?max_faults ?progress
    ?(cfg = Gpr_arch.Config.fermi_gtx480) ~backends () =
  List.map
    (fun name ->
      run_scheme ?seed ?cases ?max_faults ?progress
        ~banks:cfg.Gpr_arch.Config.register_banks name)
    backends
