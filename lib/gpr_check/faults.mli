(** Fault-injection campaign: sweep a growing, prefix-stable population
    of permanent register-file defects ({!Gpr_regfile.Fault.place})
    under each scheme and report how many it absorbs before the first
    output corruption.

    Corruption ground truth is the differential oracle's: a scheme's
    fault-free packed outputs are byte-identical to the plain reference
    (what {!Diff.check_backend} fuzzes), so a faulted run is corrupted
    the moment any output deviates from the fault-free packed run — or
    crashes outright.  Faults are applied to the stored register images
    at every write's datapath round-trip; for permanent defects this is
    equivalent to corrupting every read.

    The ["rrcd"] scheme is special-cased to its fault-aware instance:
    its slice allocation is re-redirected
    ({!Gpr_backend.Backend_rrcd.redirect}) for every fault set of the
    sweep, modelling firmware that knows the defect map. *)

type scheme_result = {
  fr_scheme : string;
  fr_cases : int;  (** fuzz cases per fault count *)
  fr_max_faults : int;  (** sweep ceiling *)
  fr_first_corrupt : int option;
      (** smallest injected-fault count that corrupted any case; [None]
          when the whole sweep stayed clean *)
  fr_absorbed : int;
      (** faults absorbed before the first corruption anywhere in the
          population ([fr_max_faults] when the sweep stayed clean) —
          the strict minimum over cases *)
  fr_absorbed_mean : float;
      (** mean over cases of the per-case absorbed count; unlike the
          minimum it does not collapse to the single unluckiest case,
          so it is the headline coverage figure *)
}

val run_scheme :
  ?seed:int ->
  ?cases:int ->
  ?max_faults:int ->
  ?progress:(scheme:string -> injected:int -> corrupted:bool -> unit) ->
  banks:int ->
  string ->
  scheme_result
(** Sweep one scheme (by registry id).  [seed] (default 1) fixes both
    the fuzz cases and the defect population; [cases] (default 20) fuzz
    cases are checked at every fault count up to [max_faults] (default
    12).  Each case is swept to its own first corruption; the sweep
    stops early once every case has corrupted. *)

val run :
  ?seed:int ->
  ?cases:int ->
  ?max_faults:int ->
  ?progress:(scheme:string -> injected:int -> corrupted:bool -> unit) ->
  ?cfg:Gpr_arch.Config.t ->
  backends:string list ->
  unit ->
  scheme_result list
(** {!run_scheme} over a scheme list, sharing the defect population
    (banks from [cfg], default Fermi GTX 480). *)
