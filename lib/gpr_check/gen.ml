open Gpr_isa.Types
module B = Gpr_isa.Builder
module Rng = Gpr_util.Rng
module I = Gpr_util.Interval
module E = Gpr_exec.Exec

type case = {
  seed : int;
  kernel : kernel;
  launch : launch;
  params : E.pvalue array;
  data : unit -> (string * E.storage) list;
  shared : (string * int) list;
  float_level : vreg -> int;
}

(* The range analysis works over Z (no 32-bit wrap model), so execution
   must never wrap: every pool value keeps a conservative interval
   estimate and operator picks are gated to stay inside ±2^30. *)
let safe = I.of_ints (-(1 lsl 30)) (1 lsl 30)

let in_n = 256 (* input-buffer length; power of two so indices mask cheaply *)

let generate ?(size = 24) seed =
  let rng = Rng.create (if seed = 0 then 0x600dcafe else seed) in
  let block = if Rng.bool rng then 32 else 64 in
  let grid = 1 + Rng.int rng 2 in
  let launch = launch_1d ~block ~grid in
  let nthreads = block * grid in
  let b = B.create ~name:(Printf.sprintf "fuzz%d" seed) in
  let open B in
  let in_i = global_buffer b S32 ~range:(0, 255) "in_i" in
  let in_f = global_buffer b F32 "in_f" in
  let out_i = global_buffer b S32 "out_i" in
  let out_f = global_buffer b F32 "out_f" in
  (* A kernel uses either barriers or early returns, never both: a
     thread that already returned must not be needed at a barrier. *)
  let use_shared = Rng.int rng 3 = 0 in
  let sh = if use_shared then Some (shared_buffer b S32 "sh") else None in
  let k_value = 1 + Rng.int rng 8 in
  let p_k = param_i32 b ~range:(1, 8) "k" in
  let p_scale = param_f32 b "scale" in
  let scale_value = Rng.range rng 0.5 2.0 in
  let gid = global_thread_id_x b in
  let tid = tid_x b in

  (* Value pools.  Only defs that dominate the current insertion point
     are pickable: scopes save/restore the pools around nested bodies,
     so a use can never observe the executor's default-zero register of
     a skipped definition (which would sit outside its static range). *)
  let ints =
    ref
      [
        (gid, I.of_ints 0 (nthreads - 1));
        (tid, I.of_ints 0 (block - 1));
        (p_k, I.of_ints 1 8);
      ]
  in
  let floats = ref [ p_scale ] in
  let preds = ref [] in
  let slot_i = ref 0 in
  let slot_f = ref 0 in

  let pick_int () = List.nth !ints (Rng.int rng (List.length !ints)) in
  let pick_float () = List.nth !floats (Rng.int rng (List.length !floats)) in

  (* Slot-major output layout: slot s of thread g lives at
     [s * nthreads + g], so buffer sizes follow the final slot count. *)
  let store_i (v : vreg) =
    let s = !slot_i in
    incr slot_i;
    let idx = iadd b (ci (s * nthreads)) ~$gid in
    st b out_i ~$idx ~$v
  in
  let store_f (v : vreg) =
    let s = !slot_f in
    incr slot_f;
    let idx = iadd b (ci (s * nthreads)) ~$gid in
    st b out_f ~$idx ~$v
  in
  let push_int v est =
    ints := (v, est) :: !ints;
    store_i v
  in
  let push_float v =
    floats := v :: !floats;
    store_f v
  in

  let clamp_to v lo hi =
    let v' = imax b ~$(imin b ~$v (ci hi)) (ci lo) in
    (v', I.of_ints lo hi)
  in

  let new_pred () =
    let icmp () =
      let a, _ = pick_int () and c, _ = pick_int () in
      match Rng.int rng 6 with
      | 0 -> ilt b ~$a ~$c
      | 1 -> ile b ~$a ~$c
      | 2 -> igt b ~$a ~$c
      | 3 -> ige b ~$a ~$c
      | 4 -> ieq b ~$a ~$c
      | _ -> ine b ~$a ~$c
    in
    let p =
      match Rng.int rng 4 with
      | 0 | 1 -> icmp ()
      | 2 ->
        let x = pick_float () and y = pick_float () in
        (match Rng.int rng 4 with
         | 0 -> flt b ~$x ~$y
         | 1 -> fle b ~$x ~$y
         | 2 -> fgt b ~$x ~$y
         | _ -> fge b ~$x ~$y)
      | _ ->
        (match !preds with
         | p :: q :: _ -> pand b p q
         | _ -> icmp ())
    in
    preds := p :: !preds;
    p
  in
  let get_pred () =
    match !preds with
    | [] -> new_pred ()
    | l -> List.nth l (Rng.int rng (List.length l))
  in

  let new_int () =
    let a, ia = pick_int () and c, ic = pick_int () in
    let k = 1 + Rng.int rng 9 in
    let s = k land 3 in
    let kk = I.of_const k in
    (* (estimate, emitter) pairs: the estimate is computed before any
       instruction is emitted so rejected candidates cost nothing. *)
    let candidates =
      [
        (I.add ia ic, fun () -> iadd b ~$a ~$c);
        (I.sub ia ic, fun () -> isub b ~$a ~$c);
        (I.mul ia kk, fun () -> imul b ~$a (ci k));
        (I.add (I.mul ia kk) ic, fun () -> imad b ~$a (ci k) ~$c);
        (I.min_ ia ic, fun () -> imin b ~$a ~$c);
        (I.max_ ia ic, fun () -> imax b ~$a ~$c);
        (I.of_ints 0 0xff, fun () -> iand b ~$a (ci 0xff));
        (I.shr ia (I.of_const s), fun () -> ishr b ~$a (ci s));
        ( (if I.subset ia (I.of_ints 0 (1 lsl 20)) then
             I.shl ia (I.of_const s)
           else I.top),
          fun () -> ishl b ~$a (ci s) );
        (I.of_ints (-(k - 1)) (k - 1), fun () -> irem b ~$a (ci k));
        (I.div ia kk, fun () -> idiv b ~$a (ci k));
        (I.neg ia, fun () -> ineg b ~$a);
        (I.abs ia, fun () -> iabs b ~$a);
        (I.sub (I.of_const (-1)) ia, fun () -> inot b ~$a);
        ( (if !preds = [] then I.top else I.join ia ic),
          fun () -> selp b S32 ~$a ~$c (get_pred ()) );
        (I.of_const k, fun () -> mov b S32 (ci k));
      ]
    in
    let arr = Array.of_list candidates in
    Rng.shuffle rng arr;
    let rec find i =
      if i >= Array.length arr then None
      else
        let est, emit = arr.(i) in
        if I.subset est safe && not (I.is_bot est) then Some (est, emit)
        else find (i + 1)
    in
    match find 0 with
    | Some (est, emit) -> push_int (emit ()) est
    | None ->
      (* Unreachable in practice (imin/imax always qualify), but keep a
         total fallback. *)
      let v, est = clamp_to a (-1024) 1024 in
      push_int v est
  in

  let new_float () =
    let x = pick_float () and y = pick_float () in
    let v =
      match Rng.int rng 14 with
      | 0 -> fadd b ~$x ~$y
      | 1 -> fsub b ~$x ~$y
      | 2 -> fmul b ~$x ~$y
      | 3 -> fmin b ~$x ~$y
      | 4 -> fmax b ~$x ~$y
      | 5 -> ffma b ~$x ~$y ~$(pick_float ())
      | 6 -> fneg b ~$x
      | 7 -> fabs b ~$x
      | 8 -> ffloor b ~$x
      | 9 -> fsqrt b ~$x
      | 10 -> fdiv b ~$x ~$y
      | 11 ->
        let a, _ = pick_int () in
        itof b ~$a
      | 12 -> fsin b ~$x
      | 13 ->
        let p = get_pred () in
        selp b F32 ~$x ~$y p
      | _ -> assert false
    in
    push_float v
  in

  let new_ftoi () =
    (* ftoi saturates at ±2^31 in the executor and the analysis cannot
       bound it, so clamp before the value joins the pool. *)
    let x = pick_float () in
    let v = ftoi b ~$x in
    let v', est = clamp_to v 0 255 in
    push_int v' est
  in

  let new_load_i () =
    let a, _ = pick_int () in
    let idx = iand b ~$a (ci (in_n - 1)) in
    let v = ld b in_i ~$idx in
    push_int v (I.of_ints 0 255)
  in
  let new_load_f () =
    let a, _ = pick_int () in
    let idx = iand b ~$a (ci (in_n - 1)) in
    push_float (ld b in_f ~$idx)
  in

  let shared_exchange () =
    match sh with
    | None -> new_int ()
    | Some sbuf ->
      (* Rotate a value one lane through shared memory: store, barrier,
         load the neighbour's slot.  Uniform control flow only. *)
      let v, est = pick_int () in
      st b sbuf ~$tid ~$v;
      bar b;
      let idx = irem b ~$(iadd b ~$tid (ci 1)) (ci block) in
      let u = ld b sbuf ~$idx in
      push_int u (I.join est (I.of_const 0))
  in

  let scoped f =
    let si = !ints and sf = !floats and sp = !preds in
    f ();
    ints := si;
    floats := sf;
    preds := sp
  in

  let rec stmts depth budget =
    for _ = 1 to budget do
      production depth
    done
  and production depth =
    let body_budget () = 1 + Rng.int rng 3 in
    match Rng.int rng 100 with
    | n when n < 28 -> new_int ()
    | n when n < 44 -> new_float ()
    | n when n < 50 -> ignore (new_pred ())
    | n when n < 56 -> new_load_i ()
    | n when n < 61 -> new_load_f ()
    | n when n < 66 -> new_ftoi ()
    | n when n < 76 ->
      if depth >= 2 then new_int ()
      else begin
        let p = get_pred () in
        if Rng.bool rng then
          if_then b p (fun () -> scoped (fun () -> stmts (depth + 1) (body_budget ())))
        else
          if_ b p
            (fun () -> scoped (fun () -> stmts (depth + 1) (body_budget ())))
            (fun () -> scoped (fun () -> stmts (depth + 1) (body_budget ())))
      end
    | n when n < 84 ->
      if depth >= 2 then new_float ()
      else begin
        (* Counted loop with a clamped carried accumulator. *)
        let trips = 1 + Rng.int rng 4 in
        let acc = var b S32 "acc" in
        let v0, _ = pick_int () in
        let v0', _ = clamp_to v0 (-1024) 1024 in
        assign b acc ~$v0';
        for_ b ~lo:(ci 0) ~hi:(ci trips) (fun i ->
            scoped (fun () ->
                ints :=
                  (i, I.of_ints 0 (trips - 1))
                  :: (acc, I.of_ints (-1024) 1024)
                  :: !ints;
                stmts (depth + 1) (1 + Rng.int rng 2);
                let w, _ = pick_int () in
                let w', _ = clamp_to w (-1024) 1024 in
                let t = iadd b ~$acc ~$w' in
                let t', _ = clamp_to t (-1024) 1024 in
                assign b acc ~$t'));
        push_int acc (I.of_ints (-1024) 1024)
      end
    | n when n < 89 ->
      if depth >= 2 then new_int ()
      else begin
        (* While-style loop on an explicit counter. *)
        let trips = 1 + Rng.int rng 3 in
        let cnt = var b S32 "cnt" in
        assign b cnt (ci 0);
        while_ b
          (fun () -> ilt b ~$cnt (ci trips))
          (fun () ->
             scoped (fun () ->
                 ints := (cnt, I.of_ints 0 trips) :: !ints;
                 stmts (depth + 1) 1);
             assign b cnt ~$(iadd b ~$cnt (ci 1)));
        push_int cnt (I.of_ints 0 trips)
      end
    | n when n < 93 -> if depth = 0 then shared_exchange () else new_load_i ()
    | n when n < 96 ->
      (* Divergent early exit — only when no barrier can follow. *)
      if depth = 0 && not use_shared && Rng.int rng 2 = 0 then begin
        let p = get_pred () in
        if_then b p (fun () -> ret b)
      end
      else ignore (new_pred ())
    | _ -> new_int ()
  in
  stmts 0 size;
  (* Make sure both output buffers are bound with at least one slot. *)
  if !slot_i = 0 then new_int ();
  if !slot_f = 0 then new_float ();
  let kernel = finish b in
  let slots_i = !slot_i and slots_f = !slot_f in
  let data () =
    let drng = Rng.create (seed lxor 0x5eed5eed) in
    let ai = Array.init in_n (fun _ -> Rng.int drng 256) in
    let af = Array.init in_n (fun _ -> Rng.range drng (-8.0) 8.0) in
    [
      ("in_i", E.I_data ai);
      ("in_f", E.F_data af);
      ("out_i", E.I_data (Array.make (slots_i * nthreads) 0));
      ("out_f", E.F_data (Array.make (slots_f * nthreads) 0.0));
    ]
  in
  {
    seed;
    kernel;
    launch;
    params = [| E.P_int k_value; E.P_float scale_value |];
    data;
    shared = (if use_shared then [ ("sh", block) ] else []);
    float_level =
      (fun (r : vreg) -> (((seed * 31) + (r.id * 2654435761)) land max_int) mod 7);
  }

(* ------------------------------------------------------------------ *)
(* Structure-only generators shared with the test suite. *)

let random_cfg_kernel rng n =
  let pred = { id = 0; ty = Pred; name = "p" } in
  let blocks =
    Array.init n (fun label ->
        let term =
          match Rng.int rng 4 with
          | 0 -> Ret
          | 1 -> Br (Rng.int rng n)
          | _ -> Cbr (pred, Rng.int rng n, Rng.int rng n)
        in
        { label; instrs = [||]; term })
  in
  (* Ensure at least one exit. *)
  blocks.(n - 1) <- { (blocks.(n - 1)) with term = Ret };
  {
    k_name = "random";
    k_blocks = blocks;
    k_params = [||];
    k_buffers = [||];
    k_num_vregs = 1;
    k_specials = [];
  }

let random_straightline rng ~n_nodes =
  let b = B.create ~name:"rsound" in
  let open B in
  let out = global_buffer b S32 "out" in
  let gid = global_thread_id_x b in
  let nodes = ref [ gid ] in
  let pick () = List.nth !nodes (Rng.int rng (List.length !nodes)) in
  let tracked = ref [] in
  for slot = 0 to n_nodes - 1 do
    let a = pick () and c = pick () in
    let k = 1 + Rng.int rng 9 in
    let v =
      match Rng.int rng 8 with
      | 0 -> iadd b ~$a ~$c
      | 1 -> isub b ~$a (ci k)
      | 2 -> iand b ~$a (ci 0xff)
      | 3 -> imin b ~$a ~$c
      | 4 -> imax b ~$a (ci k)
      | 5 -> ishr b ~$a (ci (k land 3))
      | 6 -> irem b ~$a (ci k)
      | _ ->
        let p = ilt b ~$a ~$c in
        selp b S32 ~$a ~$c p
    in
    nodes := v :: !nodes;
    tracked := (v, slot) :: !tracked
  done;
  (* Store every node so the executed values are observable. *)
  List.iter
    (fun ((v : vreg), slot) ->
       let idx = imad b ~$gid (ci n_nodes) (ci slot) in
       st b out ~$idx ~$v)
    !tracked;
  (finish b, !tracked)
