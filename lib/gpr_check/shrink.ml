open Gpr_isa.Types

let size kernel =
  Array.fold_left
    (fun acc blk ->
       acc + Array.length blk.instrs
       + (match blk.term with Cbr _ -> 1 | Br _ | Ret -> 0))
    0 kernel.k_blocks

let copy_kernel kernel =
  {
    kernel with
    k_blocks =
      Array.map
        (fun blk -> { blk with instrs = Array.copy blk.instrs })
        kernel.k_blocks;
  }

let remove_instr kernel bi ii =
  let k = copy_kernel kernel in
  let blk = k.k_blocks.(bi) in
  blk.instrs <-
    Array.append (Array.sub blk.instrs 0 ii)
      (Array.sub blk.instrs (ii + 1) (Array.length blk.instrs - ii - 1));
  k

let empty_block kernel bi =
  let k = copy_kernel kernel in
  k.k_blocks.(bi).instrs <- [||];
  k

let set_term kernel bi term =
  let k = copy_kernel kernel in
  k.k_blocks.(bi).term <- term;
  k

(* Coarse candidates first: emptying a block or collapsing a branch can
   discharge many single-instruction attempts at once. *)
let candidates kernel =
  let out = ref [] in
  Array.iteri
    (fun bi blk ->
       Array.iteri (fun ii _ -> out := remove_instr kernel bi ii :: !out)
         blk.instrs;
       (match blk.term with
        | Cbr (_, t, f) ->
          out := set_term kernel bi (Br f) :: set_term kernel bi (Br t) :: !out
        | Br _ | Ret -> ());
       if Array.length blk.instrs > 1 then
         out := empty_block kernel bi :: !out)
    kernel.k_blocks;
  List.rev !out

let shrink ?(max_attempts = 4000) ~still_fails kernel =
  let cur = ref kernel in
  let attempts = ref 0 in
  let improved = ref true in
  while !improved && !attempts < max_attempts do
    improved := false;
    (try
       List.iter
         (fun cand ->
            if !attempts >= max_attempts then raise Exit;
            if size cand < size !cur then begin
              incr attempts;
              if still_fails cand then begin
                cur := cand;
                improved := true;
                raise Exit
              end
            end)
         (candidates !cur)
     with Exit -> ())
  done;
  !cur
