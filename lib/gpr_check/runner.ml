type stage =
  | Stage_exact
  | Stage_narrow
  | Stage_width
  | Stage_sim
  | Stage_lint
  | Stage_obs
  | Stage_backend of string
  | Stage_coloc of string

type report = {
  seed : int;
  stage : stage;
  failure : Diff.failure;
  original : Gpr_isa.Types.kernel;
  shrunk : Gpr_isa.Types.kernel;
}

type summary = {
  checked : int;
  reports : report list;
}

let stage_name = function
  | Stage_exact -> "exact"
  | Stage_narrow -> "narrow"
  | Stage_width -> "width"
  | Stage_sim -> "sim"
  | Stage_lint -> "lint"
  | Stage_obs -> "obs"
  | Stage_backend name -> "backend:" ^ name
  | Stage_coloc name -> "coloc:" ^ name

(* The slice scheme is what the four classic stages already exercise
   end to end (exact + narrow differential, timing replay, lint
   parity), so requesting it expands to those; any other registered
   scheme gets the generic plain-vs-backend stage. *)
let stages_for backends =
  List.concat_map
    (fun name ->
      if String.lowercase_ascii name = "slice" then
        [ Stage_exact; Stage_narrow; Stage_width; Stage_sim; Stage_lint;
          Stage_obs; Stage_coloc name ]
      else [ Stage_backend name; Stage_coloc name ])
    backends

let default_backends = [ "slice" ]

let run_stage stage case =
  match stage with
  | Stage_exact -> Diff.check Diff.Exact case
  | Stage_narrow -> Diff.check Diff.Narrow case
  | Stage_width -> Diff.check_width case
  | Stage_sim -> Diff.check_sim case
  | Stage_lint -> Diff.check_lint case
  | Stage_obs -> Diff.check_obs case
  | Stage_backend name ->
    let b = Gpr_backend.Registry.find_exn name in
    Diff.check_backend b case;
    Diff.check_sim_backend b case
  | Stage_coloc name ->
    Diff.check_coloc (Gpr_backend.Registry.find_exn name) case

let first_failure stages case =
  let rec go = function
    | [] -> None
    | stage :: rest ->
      (match run_stage stage case with
       | () -> go rest
       | exception Diff.Check_failed f -> Some (stage, f))
  in
  go stages

let run_seed ?(shrink = true) ?(backends = default_backends) seed =
  let case = Gen.generate seed in
  match first_failure (stages_for backends) case with
  | None -> None
  | Some (stage, failure) ->
    let shrunk =
      if not shrink then case.kernel
      else begin
        let want = Diff.category failure in
        let still_fails kernel =
          let case' = { case with Gen.kernel = kernel } in
          match run_stage stage case' with
          | () -> false
          | exception Diff.Check_failed f -> Diff.category f = want
          | exception _ -> false
        in
        Shrink.shrink ~still_fails case.kernel
      end
    in
    (* Re-derive the failure from the shrunk kernel so the report shows
       the violation the minimised kernel actually produces. *)
    let failure =
      match run_stage stage { case with Gen.kernel = shrunk } with
      | () -> failure
      | exception Diff.Check_failed f -> f
      | exception _ -> failure
    in
    Some { seed; stage; failure; original = case.kernel; shrunk }

let run_serial ~shrink ~backends ~out_of_time ~progress ~seed ~count =
  let reports = ref [] in
  let checked = ref 0 in
  (try
     for s = seed to seed + count - 1 do
       if out_of_time () then raise Exit;
       progress s;
       (match run_seed ~shrink ~backends s with
        | Some r -> reports := r :: !reports
        | None -> ());
       incr checked
     done
   with Exit -> ());
  { checked = !checked; reports = List.rev !reports }

(* Parallel sharding: seeds are checked in chunks of [4 * jobs]; every
   seed is an independent job (generation, the oracles and shrinking
   are all deterministic functions of the seed — per-job xorshift, no
   shared RNG), and chunk results are collected in seed order, so the
   summary is identical to a serial run over the same seeds.  The time
   budget is re-checked between chunks, mirroring the serial runner's
   between-seeds check. *)
let run_sharded pool ~shrink ~backends ~out_of_time ~progress ~seed ~count =
  let chunk = 4 * Gpr_engine.Pool.jobs pool in
  let reports = ref [] in
  let checked = ref 0 in
  let s = ref seed in
  let remaining = ref count in
  while !remaining > 0 && not (out_of_time ()) do
    let n = min chunk !remaining in
    let seeds = List.init n (fun i -> !s + i) in
    List.iter progress seeds;
    let results =
      Gpr_engine.Pool.map_list pool
        (fun sd -> run_seed ~shrink ~backends sd)
        seeds
    in
    List.iter
      (function Some r -> reports := r :: !reports | None -> ())
      results;
    checked := !checked + n;
    s := !s + n;
    remaining := !remaining - n
  done;
  { checked = !checked; reports = List.rev !reports }

let run ?(shrink = true) ?(backends = default_backends) ?max_seconds
    ?(progress = fun _ -> ()) ?(jobs = 1) ~seed ~count () =
  (* Unknown scheme names fail before any seed runs, not mid-campaign
     inside a worker domain. *)
  List.iter (fun name -> ignore (Gpr_backend.Registry.find_exn name)) backends;
  let t0 = Unix.gettimeofday () in
  let out_of_time () =
    match max_seconds with
    | None -> false
    | Some s -> Unix.gettimeofday () -. t0 >= s
  in
  if jobs <= 1 then
    run_serial ~shrink ~backends ~out_of_time ~progress ~seed ~count
  else
    Gpr_engine.Pool.with_pool ~jobs (fun pool ->
        run_sharded pool ~shrink ~backends ~out_of_time ~progress ~seed ~count)

(* Lint annotations for a counterexample: static diagnostics often
   explain *why* a shrunk kernel misbehaves (a race the exact stage saw
   as an output mismatch, a divergent barrier behind a deadlock).  The
   launch geometry is recovered from the deterministic generator. *)
let lint_annotations r =
  match
    let case = Gen.generate r.seed in
    Gpr_lint.Lint.lint r.shrunk ~launch:case.Gen.launch
  with
  | [] -> "lint: clean\n"
  | diags ->
    let keep, dropped =
      let d = List.sort Gpr_lint.Diag.compare diags in
      if List.length d <= 8 then (d, 0)
      else (List.filteri (fun i _ -> i < 8) d, List.length d - 8)
    in
    String.concat ""
      (List.map
         (fun d ->
           Printf.sprintf "lint: %s\n" (Gpr_lint.Diag.to_string r.shrunk d))
         keep)
    ^ (if dropped > 0 then Printf.sprintf "lint: ... %d more\n" dropped else "")
  | exception _ -> ""

let report_to_string r =
  Printf.sprintf
    "seed %d failed in %s stage:\n  %s\n\nshrunk kernel (%d of %d \
     instructions):\n%s%s\nreproduce with: gpr check --seed %d --count 1\n"
    r.seed (stage_name r.stage)
    (Diff.to_string r.failure)
    (Shrink.size r.shrunk) (Shrink.size r.original)
    (Gpr_isa.Pp.kernel_to_string r.shrunk)
    (lint_annotations r)
    r.seed
