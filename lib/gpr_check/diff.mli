(** Cross-layer differential oracle.

    A generated case is executed twice and the runs must agree bit for
    bit:

    - the {e reference} run quantises every float definition with the
      Table 3 format of its allocated placement (identity modulo
      round-to-single + flush-to-zero when the placement is 32 bits
      wide);
    - the {e packed} run round-trips {e every} register write through
      the compressed register file: range analysis → slice-granular
      allocation → indirection table → TVT/TVE datapath
      ({!Gpr_regfile.Datapath.store_int}/[load_int] and the float
      equivalents).

    On the way, every written integer is validated against its static
    {!Gpr_analysis.Range} interval (the runtime soundness check) and
    against its allocated slice capacity, and the allocation itself is
    checked for structural invariants (pairwise-disjoint slices,
    Table 3 float widths, indirection-entry budget).

    [Exact] keeps floats at 32 bits, so the packed run must reproduce
    the plain outputs bit-identically.  [Narrow] forces each float
    register to the case's Table 3 level; the reference is then the
    quantised run, which the packed storage must still match exactly —
    quantised floats may legitimately change integer outputs (via
    [ftoi], comparisons), so both runs see the same rounding. *)

open Gpr_isa.Types

type mode = Exact | Narrow

type failure =
  | Range_violation of {
      pc : int;
      reg : vreg;
      value : int;
      range : Gpr_util.Interval.t;
    }  (** a written value escaped its static interval *)
  | Storage_violation of {
      pc : int;
      reg : vreg;
      value : int;
      roundtrip : int;
      bits : int;
    }  (** a written value did not survive its allocated slices *)
  | Alloc_violation of string
      (** structural invariant of the allocation / indirection table *)
  | Output_mismatch of {
      mode : mode;
      buffer : string;
      index : int;
      expected : string;
      got : string;
    }
  | Exec_failure of string  (** executor fault (bounds, step budget, …) *)
  | Sim_violation of string  (** timing-model invariant *)
  | Width_violation of string
      (** the {!Gpr_analysis.Width} reduced product broke one of its
          contracts: product wider than the intervals (dominance), or
          an executed value escaped its known-bits / congruence
          abstraction *)
  | Lint_unsound of { event : string; diags : int }
      (** the dynamic barrier/race monitor fired on a kernel the static
          verifier ({!Gpr_lint.Lint}) passed as monitor-clean — a false
          negative of the static analysis.  [diags] is the number of
          static diagnostics (of any pass) that were reported. *)

exception Check_failed of failure

val mode_name : mode -> string
val category : failure -> string
(** Coarse failure class used by the shrinker to reject candidates that
    fail differently from the original. *)

val to_string : failure -> string

val check :
  ?analyze:(kernel -> launch:launch -> Gpr_analysis.Width.t) ->
  ?max_steps:int ->
  mode ->
  Gen.case ->
  unit
(** Run the differential oracle; raises {!Check_failed} on any
    violation.  [analyze] (default {!Gpr_analysis.Width.analyze})
    exists so tests can inject a deliberately corrupted analysis and
    watch the oracle catch it.  [max_steps] (default 2M thread
    instructions) bounds runaway kernels, which greedy shrinking can
    create.  Interval membership is validated on the reference run;
    the packed run's storage round-trip is required to preserve the
    low demanded bits of every write (wider bits may legitimately be
    dropped by demanded-width storage). *)

val check_width : ?max_steps:int -> Gen.case -> unit
(** Width-analysis oracle over the {!Gpr_analysis.Width} reduced
    product: (a) dominance — product widths never exceed interval
    widths; (b) forward membership — on a reference run, every
    executed integer definition lies in its interval, known-bits and
    congruence abstractions; (c) a packed run at the product widths
    round-trips every write through the indirection/datapath storage
    with the low demanded bits intact; (d) the packed outputs are
    byte-identical to the reference. *)

val check_lint : ?max_steps:int -> Gen.case -> unit
(** Static/dynamic soundness parity: lint the kernel with
    {!Gpr_lint.Lint}, execute it once with the dynamic barrier/race
    monitor armed, and raise [Lint_unsound] if the monitor produces an
    event while the static ["barrier"] and ["shared-race"] passes
    reported nothing ({!Gpr_lint.Lint.monitor_clean}).  Kernels the
    static passes already flag are exempt: the monitor confirming a
    reported hazard is agreement, not a violation. *)

val check_sim : ?max_steps:int -> Gen.case -> unit
(** Replay the case's trace through {!Gpr_sim.Sim} in both register-
    file modes with the simulator's self-checks enabled, and assert
    that compressed occupancy is never below baseline.  Raises
    {!Check_failed} with [Sim_violation] / [Exec_failure]. *)

val check_obs : ?max_steps:int -> Gen.case -> unit
(** Stall-attribution oracle: replay the case's trace under all three
    register-file modes (baseline, proposed, spill-scheme) and verify,
    from the {e returned} stats record alone, that every scheduler
    slot was attributed exactly once —
    [Gpr_obs.Stall.total_slots (Sim.breakdown stats)
     = cycles x warp_schedulers] and
    [issued_slots = warp_instructions].  Complements the simulator's
    internal [~check:true] audit, which cannot see a stats record
    assembled from the wrong counters. *)

val check_backend : ?max_steps:int -> Gpr_backend.Backend.t -> Gen.case -> unit
(** Scheme-generic differential oracle: run the scheme's [analyze]
    (with [precision:None] — fuzz cases carry no tuner data, so floats
    stay 32-bit), check the allocation's structural invariants plus
    full coverage (every live range resident XOR spilled), then execute
    reference vs packed runs where every write round-trips through the
    scheme's storage — the TVT/TVE datapath for resident placements, a
    32-bit shared-memory word model for spilled registers — and demand
    bit-identical outputs. *)

val check_sim_backend :
  ?max_steps:int -> Gpr_backend.Backend.t -> Gen.case -> unit
(** Timing-model parity for an arbitrary scheme: replay the case's
    trace under [Sim.Baseline] and under the scheme's
    {!Gpr_backend.Backend.sim_mode} at the scheme's occupancy, with the
    simulator's self-checks enabled.  Register-only schemes must never
    fall below baseline occupancy; spilling schemes are exempt from
    that invariant (their slots consume shared memory). *)

val check_coloc : ?max_steps:int -> Gpr_backend.Backend.t -> Gen.case -> unit
(** Concurrent-kernel co-scheduling oracle under the given scheme.
    Pairs the case with a companion kernel generated from a seed
    derived from the case's (falling back to self-pairing when the
    companion does not execute) and asserts, for every dispatch
    policy:

    - singleton identity — {!Gpr_sim.Sim_multi.run} on each tenant
      alone is byte-identical to {!Gpr_sim.Sim.run};
    - per-kernel replay — each kernel's co-scheduled warp- and
      thread-instruction totals equal its isolated run (co-residency
      changes timing, never the work), and the aggregate is their sum;
    - the engine's internal per-kernel and aggregate slot-attribution
      and conservation identities ([~check:true]).

    Raises {!Check_failed} with [Sim_violation] / [Exec_failure]. *)
