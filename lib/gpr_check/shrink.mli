(** Greedy counterexample shrinking.

    Works on the kernel structure directly: candidate edits remove one
    instruction (the executor reads never-written registers as zero, so
    removal keeps the kernel executable), rewrite a conditional branch
    to either arm, or empty a whole block.  Each candidate is a fresh
    deep copy — kernels are memoised by physical identity elsewhere, so
    in-place mutation is never safe.

    The caller's [still_fails] predicate should accept only candidates
    that reproduce the {e same class} of failure (see
    {!Diff.category}); shrinking can manufacture unrelated failures —
    most notably infinite loops when a loop increment is removed, which
    the executor's step budget turns into a distinct [Exec_failure]. *)

open Gpr_isa.Types

val size : kernel -> int
(** Instructions plus conditional branches — the measure greedy
    shrinking decreases. *)

val copy_kernel : kernel -> kernel
(** Deep copy (fresh block records and instruction arrays). *)

val shrink :
  ?max_attempts:int -> still_fails:(kernel -> bool) -> kernel -> kernel
(** First-improvement greedy descent to a local minimum, restarting the
    candidate scan after every accepted edit; stops after
    [max_attempts] (default 4000) predicate calls. *)
