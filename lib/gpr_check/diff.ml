open Gpr_isa.Types
module E = Gpr_exec.Exec
module I = Gpr_util.Interval
module Range = Gpr_analysis.Range
module Width = Gpr_analysis.Width
module KB = Gpr_analysis.Knownbits
module CG = Gpr_analysis.Congruence
module Alloc = Gpr_alloc.Alloc
module Ind = Gpr_regfile.Indirection
module Dp = Gpr_regfile.Datapath
module F = Gpr_fp.Format_

type mode = Exact | Narrow

type failure =
  | Range_violation of {
      pc : int;
      reg : vreg;
      value : int;
      range : I.t;
    }
  | Storage_violation of {
      pc : int;
      reg : vreg;
      value : int;
      roundtrip : int;
      bits : int;
    }
  | Alloc_violation of string
  | Output_mismatch of {
      mode : mode;
      buffer : string;
      index : int;
      expected : string;
      got : string;
    }
  | Exec_failure of string
  | Sim_violation of string
  | Width_violation of string
  | Lint_unsound of { event : string; diags : int }

exception Check_failed of failure

let mode_name = function Exact -> "exact" | Narrow -> "narrow"

let category = function
  | Range_violation _ -> "range"
  | Storage_violation _ -> "storage"
  | Alloc_violation _ -> "alloc"
  | Output_mismatch { mode; _ } -> "output-" ^ mode_name mode
  | Exec_failure _ -> "exec"
  | Sim_violation _ -> "sim"
  | Width_violation _ -> "width"
  | Lint_unsound _ -> "lint"

let to_string = function
  | Range_violation { pc; reg; value; range } ->
    Printf.sprintf
      "range violation: pc %d wrote %%%s%d = %d outside static range %s" pc
      reg.name reg.id value (I.to_string range)
  | Storage_violation { pc; reg; value; roundtrip; bits } ->
    Printf.sprintf
      "storage violation: pc %d wrote %%%s%d = %d but its %d-bit slices read \
       back %d"
      pc reg.name reg.id value bits roundtrip
  | Alloc_violation s -> "allocation violation: " ^ s
  | Output_mismatch { mode; buffer; index; expected; got } ->
    Printf.sprintf "output mismatch (%s mode): %s[%d] = %s, reference %s"
      (mode_name mode) buffer index got expected
  | Exec_failure s -> "executor failure: " ^ s
  | Sim_violation s -> "simulator invariant: " ^ s
  | Width_violation s -> "width analysis violation: " ^ s
  | Lint_unsound { event; diags } ->
    Printf.sprintf
      "lint unsound: dynamic monitor fired (%s) on a kernel the static \
       verifier passed as monitor-clean (%d static diagnostics)"
      event diags

let fail f = raise (Check_failed f)

(* Executor faults (out-of-bounds, step budget, binding mismatches) and
   library invariant errors become a distinct failure class so the
   shrinker never confuses them with an oracle violation. *)
let guard f =
  try f () with
  | Check_failed _ as e -> raise e
  | Failure msg -> fail (Exec_failure msg)
  | Invalid_argument msg -> fail (Exec_failure ("invalid argument: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Static allocation invariants *)

let check_alloc_static (alloc : Alloc.t) =
  if not (Alloc.fits_arch_table alloc) then
    fail
      (Alloc_violation
         (Printf.sprintf "%d architectural registers exceed the 256-entry table"
            alloc.num_arch_regs));
  let storages = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ (p : Alloc.placement) ->
       Hashtbl.replace storages (p.reg0, p.mask0, p.reg1, p.mask1) p)
    alloc.placements;
  let distinct = Hashtbl.fold (fun _ p acc -> p :: acc) storages [] in
  let pieces (p : Alloc.placement) =
    (p.reg0, p.mask0) :: (if p.reg1 >= 0 then [ (p.reg1, p.mask1) ] else [])
  in
  List.iter
    (fun (p : Alloc.placement) ->
       let pop = Gpr_util.Bits.popcount in
       if pop p.mask0 + (if p.reg1 >= 0 then pop p.mask1 else 0) <> p.slices
       then
         fail
           (Alloc_violation
              (Printf.sprintf "mask popcount disagrees with %d slices" p.slices));
       if Gpr_util.Bits.slices_of_bits p.bits <> p.slices then
         fail
           (Alloc_violation
              (Printf.sprintf "%d bits need %d slices, placement has %d" p.bits
                 (Gpr_util.Bits.slices_of_bits p.bits) p.slices));
       if p.is_float && F.of_total_bits p.bits = None then
         fail
           (Alloc_violation
              (Printf.sprintf "float placement width %d is not a Table 3 format"
                 p.bits));
       if Ind.entry_bits p > 32 then
         fail (Alloc_violation "indirection entry exceeds 32 bits"))
    distinct;
  (* Slices are never reused over time (the table is static), so every
     pair of distinct storage placements must be slice-disjoint. *)
  let rec pairs = function
    | [] -> ()
    | p :: rest ->
      List.iter
        (fun q ->
           List.iter
             (fun (r, m) ->
                List.iter
                  (fun (r', m') ->
                     if r = r' && m land m' <> 0 then
                       fail
                         (Alloc_violation
                            (Printf.sprintf
                               "two placements overlap in register %d (masks \
                                %#x / %#x)"
                               r m m')))
                  (pieces q))
             (pieces p))
        rest;
      pairs rest
  in
  pairs distinct

(* ------------------------------------------------------------------ *)

let dst_of_pc kernel =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun bi blk ->
       Array.iteri
         (fun ii ins ->
            match defs ins with
            | Some d ->
              Hashtbl.replace tbl (E.static_pc kernel ~block:bi ~idx:ii) d
            | None -> ())
         blk.instrs)
    kernel.k_blocks;
  tbl

let float_bits_eq a b =
  Int32.bits_of_float a = Int32.bits_of_float b
  || (Float.is_nan a && Float.is_nan b)

let compare_outputs mode ref_data packed_data =
  List.iter2
    (fun (name, a) (name', b) ->
       assert (name = name');
       let mismatch index expected got =
         fail (Output_mismatch { mode; buffer = name; index; expected; got })
       in
       match (a, b) with
       | E.I_data x, E.I_data y ->
         Array.iteri
           (fun i v ->
              if v <> y.(i) then mismatch i (string_of_int v) (string_of_int y.(i)))
           x
       | E.F_data x, E.F_data y ->
         Array.iteri
           (fun i v ->
              if not (float_bits_eq v y.(i)) then
                mismatch i
                  (Printf.sprintf "%h" v)
                  (Printf.sprintf "%h" y.(i)))
           x
       | _ -> mismatch 0 "storage kind" "storage kind")
    ref_data packed_data

let default_analyze k ~launch = Width.analyze k ~launch

(* Forward soundness is checked on the *reference* run, where the
   executed values are the ones the static analysis abstracts.  The
   packed run may legitimately differ from them in bits no consumer
   demands (demanded-width storage truncates dead high parts), so
   validating intervals there would be checking the wrong semantics. *)
let interval_check rt pc (d : vreg) v =
  (match v with
   | E.P_int iv when d.ty = S32 || d.ty = U32 ->
     (match Range.var_range rt d.id with
      | I.Bot -> ()
      | range ->
        if not (I.contains range iv) then
          fail (Range_violation { pc; reg = d; value = iv; range }))
   | _ -> ());
  v

(* The storage contract under demanded-width packing: a write must
   survive its slices in the low [demanded] bits — the only bits any
   later read can observe. *)
let demanded_of (wt : Width.t) (d : vreg) =
  if d.id < Array.length wt.Width.demanded then max 1 wt.Width.demanded.(d.id)
  else 32

let check ?(analyze = default_analyze) ?(max_steps = 2_000_000) mode
    (case : Gen.case) =
  guard @@ fun () ->
  let kernel = case.kernel in
  let wt = analyze kernel ~launch:case.launch in
  let rt = wt.Width.range in
  let float_bits (r : vreg) =
    match mode with
    | Exact -> 32
    | Narrow -> (F.of_level (case.float_level r)).F.total_bits
  in
  let width_of (r : vreg) =
    match r.ty with
    | Pred -> 32
    | F32 -> float_bits r
    | S32 | U32 -> Width.var_bitwidth wt r.id
  in
  let alloc = Alloc.run kernel ~width_of in
  check_alloc_static alloc;
  let table = Ind.create alloc in
  let dsts = dst_of_pc kernel in
  (* Reference: quantise float definitions exactly as their allocated
     storage will (placements may be wider than requested when an
     architectural name is shared, so the format comes from the
     placement, not from the requested level). *)
  let ref_quantize pc v =
    match Hashtbl.find_opt dsts pc with
    | Some d ->
      (match Ind.lookup table d.id with
       | Some p when p.is_float -> F.quantize (Dp.format_of_placement p) v
       | _ -> F.quantize F.f32 v)
    | None -> F.quantize F.f32 v
  in
  (* Packed: round-trip every write through the indirection table and
     the TVT/TVE datapath; the low demanded bits must survive. *)
  let on_write pc (d : vreg) v =
    match v with
    | E.P_int iv ->
      (match Ind.lookup table d.id with
       | Some p when not p.is_float ->
         let r0, r1 = Dp.store_int p iv in
         let back = Dp.load_int p ~r0 ~r1 in
         if (back lxor iv) land Gpr_util.Bits.mask (demanded_of wt d) <> 0 then
           fail
             (Storage_violation
                { pc; reg = d; value = iv; roundtrip = back; bits = p.bits });
         E.P_int back
       | _ -> v)
    | E.P_float fv ->
      (match Ind.lookup table d.id with
       | Some p when p.is_float ->
         let r0, r1 = Dp.store_float p fv in
         E.P_float (Dp.load_float p ~r0 ~r1)
       | _ -> E.P_float (F.quantize F.f32 fv))
  in
  let run config data =
    let bindings = E.bindings_for kernel ~data ~shared:case.shared () in
    ignore
      (E.run kernel ~launch:case.launch ~params:case.params ~bindings config)
  in
  let ref_data = case.data () in
  run
    {
      E.default_config with
      quantize = Some ref_quantize;
      on_write = Some (interval_check rt);
      max_steps = Some max_steps;
    }
    ref_data;
  let packed_data = case.data () in
  run
    { E.default_config with on_write = Some on_write; max_steps = Some max_steps }
    packed_data;
  compare_outputs mode ref_data packed_data

(* ------------------------------------------------------------------ *)
(* Width-analysis oracle: validates all four ingredients of the
   [Gpr_analysis.Width] reduced product against one execution.

   (a) dominance — the product is never wider than the intervals;
   (b) forward membership — on the reference run every executed
       integer definition lies in its interval, its known-bits pattern
       set and its congruence class;
   (c) storage — a packed run at the product widths round-trips every
       write through the real indirection/datapath, and the low
       demanded bits always survive;
   (d) end-to-end — the packed outputs are byte-identical, i.e. the
       demanded-bits truncation is unobservable. *)

let check_width ?(max_steps = 2_000_000) (case : Gen.case) =
  guard @@ fun () ->
  let kernel = case.kernel in
  let wt = Width.analyze kernel ~launch:case.launch in
  let rt = wt.Width.range in
  Array.iteri
    (fun v wb ->
       let ib = rt.Range.var_bits.(v) in
       if wb > ib then
         fail
           (Width_violation
              (Printf.sprintf
                 "%%%d: product width %d exceeds interval width %d" v wb ib)))
    wt.Width.var_bits;
  let on_ref_write pc (d : vreg) v =
    (match v with
     | E.P_int iv when d.ty = S32 || d.ty = U32 ->
       (match Range.var_range rt d.id with
        | I.Bot -> ()
        | range ->
          if not (I.contains range iv) then
            fail (Range_violation { pc; reg = d; value = iv; range }));
       (match Width.known_bits wt d.id with
        | KB.Bot -> ()
        | kbv ->
          if not (KB.mem iv kbv) then
            fail
              (Width_violation
                 (Printf.sprintf
                    "pc %d wrote %%%s%d = %d outside known bits %s" pc d.name
                    d.id iv (KB.to_string kbv))));
       (match Width.congruence wt d.id with
        | CG.Bot -> ()
        | cgv ->
          if not (CG.mem iv cgv) then
            fail
              (Width_violation
                 (Printf.sprintf
                    "pc %d wrote %%%s%d = %d outside congruence %s" pc d.name
                    d.id iv (CG.to_string cgv))))
     | _ -> ());
    v
  in
  let width_of (r : vreg) =
    match r.ty with
    | Pred | F32 -> 32
    | S32 | U32 -> Width.var_bitwidth wt r.id
  in
  let alloc = Alloc.run kernel ~width_of in
  check_alloc_static alloc;
  let table = Ind.create alloc in
  let on_write pc (d : vreg) v =
    match v with
    | E.P_int iv ->
      (match Ind.lookup table d.id with
       | Some p when not p.is_float ->
         let r0, r1 = Dp.store_int p iv in
         let back = Dp.load_int p ~r0 ~r1 in
         if (back lxor iv) land Gpr_util.Bits.mask (demanded_of wt d) <> 0 then
           fail
             (Storage_violation
                { pc; reg = d; value = iv; roundtrip = back; bits = p.bits });
         E.P_int back
       | _ -> v)
    | E.P_float fv ->
      (* Floats stay at 32 bits here; the storage path is still the
         real one (f32 placements are identity modulo flush). *)
      (match Ind.lookup table d.id with
       | Some p when p.is_float ->
         let r0, r1 = Dp.store_float p fv in
         E.P_float (Dp.load_float p ~r0 ~r1)
       | _ -> E.P_float (F.quantize F.f32 fv))
  in
  let run config data =
    let bindings = E.bindings_for kernel ~data ~shared:case.shared () in
    ignore
      (E.run kernel ~launch:case.launch ~params:case.params ~bindings config)
  in
  let ref_data = case.data () in
  run
    {
      E.default_config with
      quantize = Some (fun _ v -> F.quantize F.f32 v);
      on_write = Some on_ref_write;
      max_steps = Some max_steps;
    }
    ref_data;
  let packed_data = case.data () in
  run
    { E.default_config with on_write = Some on_write; max_steps = Some max_steps }
    packed_data;
  compare_outputs Exact ref_data packed_data

(* ------------------------------------------------------------------ *)

(* Static/dynamic soundness parity (the lint stage of the fuzzer): the
   static verifier's barrier and shared-race passes over-approximate,
   so a kernel they pass as clean must execute without a single dynamic
   monitor event.  The converse direction is deliberately one-sided —
   the monitor confirming a statically-reported hazard is agreement. *)
let check_lint ?(max_steps = 2_000_000) (case : Gen.case) =
  guard @@ fun () ->
  let diags = Gpr_lint.Lint.lint case.kernel ~launch:case.launch in
  let clean = Gpr_lint.Lint.monitor_clean diags in
  let events = ref [] in
  let data = case.data () in
  let bindings = E.bindings_for case.kernel ~data ~shared:case.shared () in
  ignore
    (E.run ~check:true case.kernel ~launch:case.launch ~params:case.params
       ~bindings
       {
         E.default_config with
         max_steps = Some max_steps;
         on_monitor = Some (fun ev -> events := ev :: !events);
       });
  match (clean, List.rev !events) with
  | _, [] | false, _ -> ()
  | true, ev :: _ ->
    fail
      (Lint_unsound
         {
           event = Gpr_exec.Trace.monitor_event_to_string ev;
           diags = List.length diags;
         })

(* ------------------------------------------------------------------ *)
(* Scheme-generic oracles: plain-vs-backend for any registered
   register-file scheme, not just slice.  [analyze] runs with
   [precision:None] (the tuner needs workload data a fuzz case does not
   carry), so floats stay 32-bit everywhere; the reference run
   quantises float definitions to f32 accordingly. *)

module Backend = Gpr_backend.Backend

(* Every live range must be either resident (has a placement) or
   spilled — never both, never neither.  Execution alone would not
   catch a dropped register: an unplaced, unspilled write silently
   passes through [on_write] unchanged. *)
let check_backend_coverage kernel (res : Backend.resources) =
  let live = Gpr_analysis.Liveness.compute kernel in
  List.iter
    (fun (v, _, _) ->
       let placed = Alloc.lookup res.Backend.alloc v <> None in
       let spilled = Hashtbl.mem res.Backend.spilled v in
       if placed && spilled then
         fail
           (Alloc_violation
              (Printf.sprintf "%%%d is both resident and spilled" v));
       if (not placed) && not spilled then
         fail
           (Alloc_violation
              (Printf.sprintf "%%%d is neither resident nor spilled" v)))
    (Gpr_analysis.Liveness.intervals live)

(* A spill slot is one 32-bit shared-memory word: reloads recover the
   low 32 bits, extended per the destination's signedness. *)
let spill_roundtrip (d : vreg) iv =
  let low = iv land Gpr_util.Bits.mask 32 in
  match d.ty with
  | S32 -> Gpr_util.Bits.sign_extend ~width:32 low
  | U32 | F32 | Pred -> Gpr_util.Bits.zero_extend ~width:32 low

let check_backend ?(max_steps = 2_000_000) (b : Backend.t) (case : Gen.case) =
  guard @@ fun () ->
  let module S = (val b : Backend.Scheme) in
  let kernel = case.kernel in
  let wt = Width.analyze kernel ~launch:case.launch in
  let rt = wt.Width.range in
  let res = S.analyze ~kernel ~width:wt ~precision:None in
  let alloc = res.Backend.alloc in
  check_alloc_static alloc;
  check_backend_coverage kernel res;
  if Hashtbl.length res.Backend.spilled > 0 && res.Backend.spill_slots <= 0
  then
    fail
      (Alloc_violation
         (Printf.sprintf "%d spilled registers but %d spill slots"
            (Hashtbl.length res.Backend.spilled) res.Backend.spill_slots));
  let table = Ind.create alloc in
  let dsts = dst_of_pc kernel in
  let ref_quantize pc v =
    match Hashtbl.find_opt dsts pc with
    | Some d ->
      (match Ind.lookup table d.id with
       | Some p when p.is_float -> F.quantize (Dp.format_of_placement p) v
       | _ -> F.quantize F.f32 v)
    | None -> F.quantize F.f32 v
  in
  let on_write pc (d : vreg) v =
    match v with
    | E.P_int iv ->
      (match Ind.lookup table d.id with
       | Some p when not p.is_float ->
         let r0, r1 = Dp.store_int p iv in
         let back = Dp.load_int p ~r0 ~r1 in
         if (back lxor iv) land Gpr_util.Bits.mask (demanded_of wt d) <> 0 then
           fail
             (Storage_violation
                { pc; reg = d; value = iv; roundtrip = back; bits = p.bits });
         E.P_int back
       | Some _ -> v
       | None ->
         if Hashtbl.mem res.Backend.spilled d.id then begin
           let back = spill_roundtrip d iv in
           if back <> iv then
             fail
               (Storage_violation
                  { pc; reg = d; value = iv; roundtrip = back; bits = 32 });
           E.P_int back
         end
         else v)
    | E.P_float fv ->
      (match Ind.lookup table d.id with
       | Some p when p.is_float ->
         let r0, r1 = Dp.store_float p fv in
         E.P_float (Dp.load_float p ~r0 ~r1)
       | _ -> E.P_float (F.quantize F.f32 fv))
  in
  let run config data =
    let bindings = E.bindings_for kernel ~data ~shared:case.shared () in
    ignore
      (E.run kernel ~launch:case.launch ~params:case.params ~bindings config)
  in
  let ref_data = case.data () in
  run
    {
      E.default_config with
      quantize = Some ref_quantize;
      on_write = Some (interval_check rt);
      max_steps = Some max_steps;
    }
    ref_data;
  let packed_data = case.data () in
  run
    { E.default_config with on_write = Some on_write; max_steps = Some max_steps }
    packed_data;
  compare_outputs Exact ref_data packed_data

let check_sim_backend ?(max_steps = 2_000_000) (b : Backend.t)
    (case : Gen.case) =
  guard @@ fun () ->
  let module S = (val b : Backend.Scheme) in
  let kernel = case.kernel in
  let data = case.data () in
  let bindings = E.bindings_for kernel ~data ~shared:case.shared () in
  let trace =
    match
      E.run kernel ~launch:case.launch ~params:case.params ~bindings
        {
          E.default_config with
          collect_trace = true;
          max_steps = Some max_steps;
        }
    with
    | Some t -> t
    | None -> fail (Exec_failure "trace collection returned no trace")
  in
  let wt = Width.analyze kernel ~launch:case.launch in
  let res = S.analyze ~kernel ~width:wt ~precision:None in
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  let warps = trace.Gpr_exec.Trace.warps_per_block in
  let shared_bytes =
    4 * List.fold_left (fun acc (_, n) -> acc + n) 0 case.shared
  in
  let alloc_base = Alloc.baseline kernel in
  let occ_base =
    (Gpr_arch.Occupancy.compute cfg
       ~regs_per_thread:(max 1 alloc_base.Alloc.pressure)
       ~warps_per_block:warps
       ~shared_bytes_per_block:shared_bytes)
      .Gpr_arch.Occupancy.blocks_per_sm
  in
  let occ_s =
    (Backend.occupancy cfg res ~warps_per_block:warps
       ~shared_bytes_per_block:shared_bytes)
      .Gpr_arch.Occupancy.blocks_per_sm
  in
  (* A register-only scheme can never lose occupancy to the baseline;
     a spilling scheme may (its slots consume shared memory), so the
     invariant only binds when nothing is spilled. *)
  if res.Backend.spill_slots = 0 && occ_s < occ_base then
    fail
      (Sim_violation
         (Printf.sprintf "%s occupancy %d blocks/SM below baseline %d" S.id
            occ_s occ_base));
  let run alloc blocks_per_sm mode =
    try
      ignore
        (Gpr_sim.Sim.run ~check:true ~waves:2 cfg ~trace ~alloc ~blocks_per_sm
           ~mode)
    with Gpr_sim.Sim.Invariant_violation msg -> fail (Sim_violation msg)
  in
  run alloc_base occ_base Gpr_sim.Sim.Baseline;
  run res.Backend.alloc occ_s (Backend.sim_mode b res)

let check_sim ?(max_steps = 2_000_000) (case : Gen.case) =
  guard @@ fun () ->
  let kernel = case.kernel in
  let data = case.data () in
  let bindings = E.bindings_for kernel ~data ~shared:case.shared () in
  let trace =
    match
      E.run kernel ~launch:case.launch ~params:case.params ~bindings
        {
          E.default_config with
          collect_trace = true;
          max_steps = Some max_steps;
        }
    with
    | Some t -> t
    | None -> fail (Exec_failure "trace collection returned no trace")
  in
  let wt = Width.analyze kernel ~launch:case.launch in
  let width_of (r : vreg) =
    match r.ty with
    | Pred | F32 -> 32
    | S32 | U32 -> Width.var_bitwidth wt r.id
  in
  let alloc_base = Alloc.baseline kernel in
  let alloc_comp = Alloc.run kernel ~width_of in
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  let shared_bytes =
    4 * List.fold_left (fun acc (_, n) -> acc + n) 0 case.shared
  in
  let occ (a : Alloc.t) =
    (Gpr_arch.Occupancy.compute cfg ~regs_per_thread:(max 1 a.pressure)
       ~warps_per_block:trace.Gpr_exec.Trace.warps_per_block
       ~shared_bytes_per_block:shared_bytes)
      .Gpr_arch.Occupancy.blocks_per_sm
  in
  let occ_base = occ alloc_base and occ_comp = occ alloc_comp in
  if occ_comp < occ_base then
    fail
      (Sim_violation
         (Printf.sprintf
            "compressed occupancy %d blocks/SM below baseline %d" occ_comp
            occ_base));
  let run alloc blocks_per_sm mode =
    try
      ignore
        (Gpr_sim.Sim.run ~check:true ~waves:2 cfg ~trace ~alloc ~blocks_per_sm
           ~mode)
    with Gpr_sim.Sim.Invariant_violation msg -> fail (Sim_violation msg)
  in
  run alloc_base occ_base Gpr_sim.Sim.Baseline;
  run alloc_comp occ_comp (Gpr_sim.Sim.Proposed { writeback_delay = 3 })

(* Observability oracle: the simulator's internal slot accounting is
   audited by [~check:true], but the *reported* stats record could
   still lie (field assembled from the wrong ref, a cause dropped from
   [breakdown], ...).  Recompute the identity from the returned record
   alone, across all three register-file modes; then pin the flat
   engine byte-equal to the [Sim_ref] oracle on the same inputs, and
   fuzz the idle fast-forward replay specifically with a stretched
   machine (long latencies, slow spill port, one resident block) whose
   runs are dominated by frozen-cause idle stretches rather than the
   dense cycle-by-cycle path. *)
let check_obs ?(max_steps = 2_000_000) (case : Gen.case) =
  guard @@ fun () ->
  let kernel = case.kernel in
  let data = case.data () in
  let bindings = E.bindings_for kernel ~data ~shared:case.shared () in
  let trace =
    match
      E.run kernel ~launch:case.launch ~params:case.params ~bindings
        {
          E.default_config with
          collect_trace = true;
          max_steps = Some max_steps;
        }
    with
    | Some t -> t
    | None -> fail (Exec_failure "trace collection returned no trace")
  in
  let wt = Width.analyze kernel ~launch:case.launch in
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  let shared_bytes =
    4 * List.fold_left (fun acc (_, n) -> acc + n) 0 case.shared
  in
  let occ_of regs spill_bytes =
    (Gpr_arch.Occupancy.compute cfg ~regs_per_thread:(max 1 regs)
       ~warps_per_block:trace.Gpr_exec.Trace.warps_per_block
       ~shared_bytes_per_block:
         (shared_bytes
         + (spill_bytes * 32 * trace.Gpr_exec.Trace.warps_per_block)))
      .Gpr_arch.Occupancy.blocks_per_sm
  in
  let audit label (s : Gpr_sim.Sim.stats) =
    let bd = Gpr_sim.Sim.breakdown s in
    let slots = Gpr_obs.Stall.total_slots bd in
    let expected = s.cycles * cfg.warp_schedulers in
    if slots <> expected then
      fail
        (Sim_violation
           (Printf.sprintf
              "%s: stall attribution %d slots over %d cycles x %d schedulers \
               (= %d)"
              label slots s.cycles cfg.warp_schedulers expected));
    if s.issued_slots <> s.warp_instructions then
      fail
        (Sim_violation
           (Printf.sprintf "%s: %d issued slots but %d warp instructions"
              label s.issued_slots s.warp_instructions))
  in
  let run ?(cfg = cfg) ?(waves = 2) label alloc blocks_per_sm mode =
    let s =
      match
        Gpr_sim.Sim.run ~check:true ~waves cfg ~trace ~alloc ~blocks_per_sm
          ~mode
      with
      | s -> s
      | exception Gpr_sim.Sim.Invariant_violation msg ->
        fail (Sim_violation msg)
    in
    audit label s;
    let r =
      match
        Gpr_sim.Sim_ref.run ~check:true ~waves cfg ~trace ~alloc ~blocks_per_sm
          ~mode
      with
      | r -> r
      | exception Gpr_sim.Sim.Invariant_violation msg ->
        fail
          (Sim_violation
             (Printf.sprintf "%s: only Sim_ref violates: %s" label msg))
    in
    if Stdlib.compare s r <> 0 then
      fail
        (Sim_violation
           (Printf.sprintf
              "%s: fast engine diverges from Sim_ref (%d vs %d cycles)" label
              s.Gpr_sim.Sim.cycles r.Gpr_sim.Sim.cycles))
  in
  let width_of (r : vreg) =
    match r.ty with
    | Pred | F32 -> 32
    | S32 | U32 -> Width.var_bitwidth wt r.id
  in
  let alloc_base = Alloc.baseline kernel in
  let alloc_comp = Alloc.run kernel ~width_of in
  run "baseline" alloc_base (occ_of alloc_base.Alloc.pressure 0)
    Gpr_sim.Sim.Baseline;
  run "proposed" alloc_comp (occ_of alloc_comp.Alloc.pressure 0)
    (Gpr_sim.Sim.Proposed { writeback_delay = 3 });
  (* The spill scheme exercises the spill-port cause. *)
  let module Sp = Gpr_backend.Backend_spill in
  let res = Sp.analyze ~kernel ~width:wt ~precision:None in
  run "spill" res.Backend.alloc
    (occ_of res.Backend.alloc.Alloc.pressure
       (Backend.spill_bytes_per_thread res))
    (Backend.sim_mode (module Sp) res);
  (* Fast-forward-heavy schedule: one resident block, one wave, and a
     machine whose latencies dwarf the issue rate, so nearly every
     cycle is skipped by the idle fast-forward and its frozen stall
     cause replayed.  Run under the spill mode so the replayed causes
     include the spill port, the cause most entangled with retire
     timing. *)
  let stretched =
    {
      cfg with
      Gpr_arch.Config.spu_latency = 64;
      sfu_latency = 96;
      shared_latency = 180;
      l1_hit_latency = 200;
      l2_hit_latency = 600;
      dram_latency = 1200;
    }
  in
  run ~cfg:stretched ~waves:1 "ffwd-heavy" res.Backend.alloc 1
    (Backend.sim_mode (module Sp) res)

(* ------------------------------------------------------------------ *)
(* Concurrent-kernel co-scheduling oracle. *)

let check_coloc ?(max_steps = 2_000_000) (b : Backend.t) (case : Gen.case) =
  guard @@ fun () ->
  let module S = (val b : Backend.Scheme) in
  let module Multi = Gpr_sim.Sim_multi in
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  let trace_of (c : Gen.case) =
    let data = c.Gen.data () in
    let bindings = E.bindings_for c.Gen.kernel ~data ~shared:c.Gen.shared () in
    E.run c.Gen.kernel ~launch:c.Gen.launch ~params:c.Gen.params ~bindings
      {
        E.default_config with
        collect_trace = true;
        max_steps = Some max_steps;
      }
  in
  (* A tenant at the scheme's demand, budgeted for two waves of its
     isolated occupancy — the same workload its isolated reference run
     replays. *)
  let tenant_of label (c : Gen.case) trace =
    let wt = Width.analyze c.Gen.kernel ~launch:c.Gen.launch in
    let res = S.analyze ~kernel:c.Gen.kernel ~width:wt ~precision:None in
    let wpb = trace.Gpr_exec.Trace.warps_per_block in
    let shared_bytes =
      4 * List.fold_left (fun acc (_, n) -> acc + n) 0 c.Gen.shared
    in
    let demand =
      Backend.demand cfg res ~warps_per_block:wpb
        ~shared_bytes_per_block:shared_bytes
    in
    let occ = Gpr_arch.Occupancy.of_demand cfg demand ~warps_per_block:wpb in
    let bpsm = occ.Gpr_arch.Occupancy.blocks_per_sm in
    ( {
        Multi.t_label = label;
        t_trace = trace;
        t_alloc = res.Backend.alloc;
        t_mode = Backend.sim_mode b res;
        t_demand = demand;
        t_blocks = 2 * bpsm;
      },
      bpsm )
  in
  (* Isolated reference for one tenant; also pins the singleton
     identity: [run_multi] on the tenant alone must reproduce
     [Sim.run] byte for byte. *)
  let isolated label (t : Multi.tenant) bpsm =
    let s =
      match
        Gpr_sim.Sim.run ~check:true ~waves:2 cfg ~trace:t.Multi.t_trace
          ~alloc:t.Multi.t_alloc ~blocks_per_sm:bpsm ~mode:t.Multi.t_mode
      with
      | s -> s
      | exception Gpr_sim.Sim.Invariant_violation msg ->
        fail (Sim_violation (label ^ ": " ^ msg))
    in
    let m =
      match Multi.run ~check:true cfg [ t ] with
      | m -> m
      | exception Gpr_sim.Sim.Invariant_violation msg ->
        fail (Sim_violation (label ^ " (singleton run_multi): " ^ msg))
    in
    if Stdlib.compare s m.Multi.r_stats <> 0 then
      fail
        (Sim_violation
           (Printf.sprintf
              "%s: singleton run_multi diverges from Sim.run (%d vs %d \
               cycles)"
              label s.Gpr_sim.Sim.cycles
              m.Multi.r_stats.Gpr_sim.Sim.cycles));
    s
  in
  match trace_of case with
  | None -> fail (Exec_failure "trace collection returned no trace")
  | Some trace ->
    let t0, bpsm0 = tenant_of "k0" case trace in
    let s0 = isolated "k0" t0 bpsm0 in
    (* The co-tenant is generated from a seed derived from the case's,
       so shrinking the case never perturbs its companion; a companion
       that does not execute degrades to co-scheduling the case with
       itself, which still exercises the multi-tenant dispatcher. *)
    let companion = Gen.generate (case.Gen.seed lxor 0x2b992d) in
    let t1, bpsm1 =
      match trace_of companion with
      | Some tr when Array.length tr.Gpr_exec.Trace.items > 0 ->
        tenant_of "k1" companion tr
      | Some _ | None | (exception _) -> tenant_of "k1" case trace
    in
    let s1 = isolated "k1" t1 bpsm1 in
    List.iter
      (fun policy ->
        let module P = (val policy : Multi.POLICY) in
        let r =
          match Multi.run ~check:true ~policy cfg [ t0; t1 ] with
          | r -> r
          | exception Gpr_sim.Sim.Invariant_violation msg ->
            fail (Sim_violation (Printf.sprintf "coloc/%s: %s" P.id msg))
        in
        (* Per-kernel replay identity: co-residency may change the
           timing, never the retired instruction stream. *)
        let expect label (iso : Gpr_sim.Sim.stats) (ts : Multi.tenant_stats)
            =
          if ts.Multi.ts_warp_instructions <> iso.Gpr_sim.Sim.warp_instructions
          then
            fail
              (Sim_violation
                 (Printf.sprintf
                    "coloc/%s: %s issued %d warp instructions co-scheduled \
                     but %d isolated"
                    P.id label ts.Multi.ts_warp_instructions
                    iso.Gpr_sim.Sim.warp_instructions));
          if
            ts.Multi.ts_thread_instructions
            <> iso.Gpr_sim.Sim.thread_instructions
          then
            fail
              (Sim_violation
                 (Printf.sprintf
                    "coloc/%s: %s executed %d thread instructions \
                     co-scheduled but %d isolated"
                    P.id label ts.Multi.ts_thread_instructions
                    iso.Gpr_sim.Sim.thread_instructions))
        in
        expect "k0" s0 r.Multi.r_tenants.(0);
        expect "k1" s1 r.Multi.r_tenants.(1);
        (* Aggregate conservation over the kernel set. *)
        if
          r.Multi.r_stats.Gpr_sim.Sim.warp_instructions
          <> s0.Gpr_sim.Sim.warp_instructions
             + s1.Gpr_sim.Sim.warp_instructions
        then
          fail
            (Sim_violation
               (Printf.sprintf
                  "coloc/%s: aggregate warp instructions %d <> %d + %d"
                  P.id r.Multi.r_stats.Gpr_sim.Sim.warp_instructions
                  s0.Gpr_sim.Sim.warp_instructions
                  s1.Gpr_sim.Sim.warp_instructions)))
      Multi.policies
