(* Command-line driver for the reproduction: list kernels, run the
   static framework on one kernel, run the timing simulation, or print
   any table/figure of the paper. *)

open Cmdliner
module Q = Gpr_quality.Quality
module W = Gpr_workloads.Workload
module Registry = Gpr_workloads.Registry
module Compress = Gpr_core.Compress
module Simulate = Gpr_core.Simulate
module Experiments = Gpr_core.Experiments
module Tab = Gpr_util.Tab

let find_workload name =
  match Registry.by_name name with
  | Some w -> w
  | None ->
    Printf.eprintf "unknown kernel %s, try `gpr list` (available: %s)\n" name
      (String.concat ", " Registry.names);
    exit 1

let kernel_arg =
  let doc = "Kernel name (see $(b,gpr list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

(* ---------------- register-file scheme selection ---------------- *)

let backend_arg =
  let doc =
    "Comma-separated register-file scheme(s) from the backend registry \
     (available: "
    ^ String.concat ", " Gpr_backend.Registry.names
    ^ ")."
  in
  Arg.(value
       & opt (list string) [ "slice" ]
       & info [ "backend" ] ~docv:"NAME[,NAME...]" ~doc)

let resolve_backends names =
  List.map
    (fun n ->
      match Gpr_backend.Registry.find n with
      | Some b -> b
      | None ->
        Printf.eprintf "unknown backend %s (available: %s)\n" n
          (String.concat ", " Gpr_backend.Registry.names);
        exit 1)
    names

let resolve_policy name =
  match Gpr_sim.Sim_multi.find_policy name with
  | Some p -> p
  | None ->
    Printf.eprintf
      "unknown policy %s, try `--policy fifo|rr|binpack` (available: %s)\n"
      name
      (String.concat ", " Gpr_sim.Sim_multi.policy_names);
    exit 1

(* ---------------- execution engine plumbing ---------------- *)

let jobs_arg =
  let doc =
    "Parallel jobs for the execution engine.  0 (the default) means \
     auto: the $(b,GPR_JOBS) environment variable when set, otherwise \
     the recommended domain count.  Serial and parallel runs produce \
     identical output."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Content-addressed on-disk result cache (created if missing).  Warm \
     runs skip the precision tuner and the timing simulations; stale or \
     corrupt entries are recomputed silently."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let resolve_jobs n = if n <= 0 then Gpr_engine.Pool.default_jobs () else n

let setup_store = function
  | None -> None
  | Some d ->
    let s = Gpr_engine.Store.create ~dir:d () in
    Compress.set_store (Some s);
    Simulate.set_store (Some s);
    Some s

(* Stats go to stderr so stdout stays byte-comparable across cold and
   warm runs (the CI smoke relies on this). *)
let print_store_stats = function
  | None -> ()
  | Some s ->
    Printf.eprintf "[gpr cache: %d hits, %d misses, dir %s]\n%!"
      (Gpr_engine.Store.hits s) (Gpr_engine.Store.misses s)
      (Gpr_engine.Store.dir s)

let with_engine ~jobs ~cache_dir f =
  let store = setup_store cache_dir in
  let jobs = resolve_jobs jobs in
  Fun.protect
    ~finally:(fun () -> print_store_stats store)
    (fun () ->
       Gpr_engine.Pool.with_pool ~jobs (fun pool ->
           Experiments.use_pool (Some pool);
           Fun.protect
             ~finally:(fun () -> Experiments.use_pool None)
             (fun () -> f ())))

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (w : W.t) ->
         Printf.printf "%-12s group %d  %-11s  %3d regs (paper)  %2d warps/block\n"
           w.name w.group (Q.metric_name w.metric) w.paper_regs
           (W.warps_per_block w))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the evaluated kernels (Table 4)")
    Term.(const run $ const ())

(* ---------------- pressure ---------------- *)

let pressure_cmd =
  let run name cache_dir =
    let store = setup_store cache_dir in
    Fun.protect ~finally:(fun () -> print_store_stats store) @@ fun () ->
    let w = find_workload name in
    let c = Compress.analyze w in
    Tab.print
      ~header:[ "Configuration"; "Registers/thread"; "Quality" ]
      [
        [ "Original"; string_of_int c.baseline.pressure; "-" ];
        [ "Narrow integers"; string_of_int c.int_only.pressure; "-" ];
        [ "Narrow floats (perfect)";
          string_of_int c.perfect.alloc_float_only.pressure;
          Q.score_to_string c.perfect.achieved_score ];
        [ "Narrow floats (high)";
          string_of_int c.high.alloc_float_only.pressure;
          Q.score_to_string c.high.achieved_score ];
        [ "Ints + floats (perfect)";
          string_of_int c.perfect.alloc_both.pressure;
          Q.score_to_string c.perfect.achieved_score ];
        [ "Ints + floats (high)";
          string_of_int c.high.alloc_both.pressure;
          Q.score_to_string c.high.achieved_score ];
      ];
    let occ alloc = (Compress.occupancy c alloc).Gpr_arch.Occupancy.blocks_per_sm in
    Printf.printf "Blocks/SM: %d original -> %d (perfect) / %d (high)\n"
      (occ c.baseline) (occ c.perfect.alloc_both) (occ c.high.alloc_both)
  in
  Cmd.v
    (Cmd.info "pressure"
       ~doc:"Run the static framework on one kernel and report register \
             pressure under each configuration (a Fig. 9 column)")
    Term.(const run $ kernel_arg $ cache_dir_arg)

(* ---------------- sim ---------------- *)

let sim_cmd =
  let delay =
    Arg.(value & opt int 3
         & info [ "writeback-delay" ] ~docv:"CYCLES"
             ~doc:"Writeback delay of the proposed organisation (Sec. 6.3).")
  in
  let run name delay cache_dir =
    let store = setup_store cache_dir in
    Fun.protect ~finally:(fun () -> print_store_stats store) @@ fun () ->
    let w = find_workload name in
    let c = Compress.analyze w in
    let b = Simulate.baseline c in
    let p = Simulate.proposed ~writeback_delay:delay c Q.High in
    let row tag (s : Gpr_sim.Sim.stats) =
      [ tag; string_of_int s.cycles; Tab.fp s.gpu_ipc;
        Tab.pct (100.0 *. s.l1_hit_rate); Tab.pct (100.0 *. s.tex_hit_rate);
        string_of_int s.double_fetches; string_of_int s.conversions ]
    in
    Tab.print
      ~header:[ "Config"; "Cycles"; "IPC"; "L1 hit"; "Tex hit";
                "Double fetches"; "Conversions" ]
      [ row "baseline" b; row "proposed(high)" p ];
    Printf.printf "IPC change: %+.1f%%\n"
      (100.0 *. ((p.gpu_ipc /. b.gpu_ipc) -. 1.0))
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Simulate one kernel on the baseline and proposed register files")
    Term.(const run $ kernel_arg $ delay $ cache_dir_arg)

(* ---------------- fault campaign (check --faults / report --pareto) --- *)

(* With the default --backend the whole registry is swept: the campaign
   is a cross-scheme comparison, so one scheme alone is rarely what you
   want. *)
let fault_campaign ~seed ~cases ~max_faults backends =
  let names =
    if backends = [ "slice" ] then Gpr_backend.Registry.names else backends
  in
  ignore (resolve_backends names);
  let progress ~scheme ~injected ~corrupted =
    Printf.printf "  %-8s %2d injected: %s\n%!" scheme injected
      (if corrupted then "first corruption" else "clean")
  in
  Gpr_check.Faults.run ~seed ~cases ~max_faults ~progress ~backends:names ()

let print_fault_campaign (results : Gpr_check.Faults.scheme_result list) =
  Tab.section
    "Fault-injection campaign: permanent defects absorbed before the first \
     output corruption";
  Tab.print
    ~header:[ "Scheme"; "Mean absorbed"; "Min absorbed"; "First corruption";
              "Cases"; "Sweep max" ]
    (List.map
       (fun (r : Gpr_check.Faults.scheme_result) ->
          [ r.Gpr_check.Faults.fr_scheme;
            Tab.fp ~digits:1 r.Gpr_check.Faults.fr_absorbed_mean;
            string_of_int r.Gpr_check.Faults.fr_absorbed;
            (match r.Gpr_check.Faults.fr_first_corrupt with
             | Some k -> string_of_int k
             | None -> "none");
            string_of_int r.Gpr_check.Faults.fr_cases;
            string_of_int r.Gpr_check.Faults.fr_max_faults ])
       results);
  print_endline
    "(the defect stream is prefix-stable and shared across schemes, so\n\
    \ \"absorbed k\" means the same first k defects for every scheme;\n\
    \ mean absorbed averages each fuzz case's own first corruption, min\n\
    \ is the unluckiest case; corruption ground truth is the scheme's\n\
    \ fault-free outputs, which the differential oracle pins to the\n\
    \ plain reference)"

(* ---------------- report ---------------- *)

let report_cmd =
  let what =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"WHAT"
             ~doc:"One of: all, table1, table2, table3, table4, fig8, fig9, \
                   fig10, fig11, fig12, area, power, volta, volta-sim, \
                   ablations — or a kernel name from $(b,gpr list) for a \
                   per-scheme comparison (see $(b,--backend)).")
  in
  let pareto =
    Arg.(value & flag
         & info [ "pareto" ]
             ~doc:"Cross-scheme Pareto table: geomean IPC, area overhead, \
                   register-file energy, energy-delay product and \
                   fault-injection coverage per scheme, over the whole \
                   kernel registry.  With the default $(b,--backend) every \
                   registered scheme is compared.")
  in
  let run what pareto backends jobs cache_dir =
    let schemes =
      resolve_backends
        (if pareto && backends = [ "slice" ] then Gpr_backend.Registry.names
         else backends)
    in
    with_engine ~jobs ~cache_dir @@ fun () ->
    if pareto then begin
      (* The fault sweep is cheap next to the timing simulations, so the
         Pareto view always includes live coverage numbers. *)
      let results =
        fault_campaign ~seed:1 ~cases:20 ~max_faults:12
          (List.map Gpr_backend.Backend.id schemes)
      in
      let coverage =
        List.map
          (fun (r : Gpr_check.Faults.scheme_result) ->
             ( r.Gpr_check.Faults.fr_scheme,
               r.Gpr_check.Faults.fr_absorbed_mean ))
          results
      in
      Experiments.print_pareto ~fault_coverage:coverage schemes
    end
    else
    (* The classic tables and figures are slice-pipeline reproductions
       of the paper; [report all] keeps printing them unless a
       different scheme set is requested, in which case (and for any
       single kernel name) the per-scheme comparison runs instead. *)
    match what with
    | "all" when backends <> [ "slice" ] ->
      Experiments.print_backend_comparison schemes
    | "all" -> Experiments.print_all ()
    | "table1" -> Experiments.print_table1 ()
    | "table2" -> Experiments.print_table2 ()
    | "table3" -> Experiments.print_table3 ()
    | "table4" -> Experiments.print_table4 ()
    | "fig8" -> Experiments.print_fig8 ()
    | "widths" -> Experiments.print_width_report ()
    | "fig9" -> Experiments.print_fig9 ()
    | "fig10" -> Experiments.print_fig10 ()
    | "fig11" -> Experiments.print_fig11 ()
    | "fig12" -> Experiments.print_fig12 ()
    | "area" -> Experiments.print_area ()
    | "power" -> Experiments.print_power ()
    | "volta" -> Experiments.print_volta ()
    | "ablations" -> Experiments.print_ablations ()
    | "volta-sim" -> Experiments.print_volta_sim ()
    | other when Registry.by_name other <> None ->
      Experiments.print_backend_comparison ~names:[ other ] schemes
    | other ->
      Printf.eprintf "unknown report or kernel %s, try `gpr list`\n" other;
      exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Reproduce a table or figure of the paper, compare register-file \
             schemes on one kernel, or print the cross-scheme Pareto table \
             ($(b,--pareto))")
    Term.(const run $ what $ pareto $ backend_arg $ jobs_arg $ cache_dir_arg)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Kernel in textual mini-PTX form.")
  in
  let block =
    Arg.(value & opt int 256
         & info [ "block" ] ~docv:"THREADS" ~doc:"Threads per block.")
  in
  let grid =
    Arg.(value & opt int 16 & info [ "grid" ] ~docv:"BLOCKS" ~doc:"Grid size.")
  in
  let optimize =
    Arg.(value & flag
         & info [ "O" ] ~doc:"Run constant folding / simplification / DCE \
                              before the analysis.")
  in
  let run file block grid optimize =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Gpr_isa.Parser.parse text with
    | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      exit 1
    | Ok kernel ->
      let kernel = if optimize then Gpr_opt.Opt.run kernel else kernel in
      let launch = Gpr_isa.Types.launch_1d ~block ~grid in
      let width = Gpr_analysis.Width.analyze kernel ~launch in
      let baseline = Gpr_alloc.Alloc.baseline kernel in
      let packed =
        Gpr_alloc.Alloc.run kernel
          ~width_of:
            (Compress.width_fn ~narrow_ints:true ~narrow_floats:None ~width)
      in
      Printf.printf "kernel %s: %d static instructions, %d blocks\n"
        kernel.Gpr_isa.Types.k_name
        (Gpr_isa.Pp.instr_count kernel)
        (Array.length kernel.Gpr_isa.Types.k_blocks);
      Printf.printf
        "register pressure: %d original -> %d with narrow integers\n"
        baseline.Gpr_alloc.Alloc.pressure packed.Gpr_alloc.Alloc.pressure;
      Printf.printf "narrow integer variables: %d (intervals alone: %d)\n"
        (Gpr_analysis.Width.narrow_int_count width kernel)
        (Gpr_analysis.Width.interval_narrow_int_count width kernel);
      print_endline
        "(floats require the data-driven tuner; wrap the kernel as a \
         workload to use it)"
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Parse a textual kernel and run the static integer framework")
    Term.(const run $ file $ block $ grid $ optimize)

(* ---------------- check ---------------- *)

let check_cmd =
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"First seed to check.")
  in
  let count =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"K" ~doc:"Number of consecutive seeds.")
  in
  let max_seconds =
    Arg.(value & opt (some float) None
         & info [ "max-seconds" ] ~docv:"S"
             ~doc:"Stop after S seconds even if seeds remain (CI smoke runs).")
  in
  let no_shrink =
    Arg.(value & flag
         & info [ "no-shrink" ]
             ~doc:"Report counterexamples without minimising them.")
  in
  let faults_flag =
    Arg.(value & flag
         & info [ "faults" ]
             ~doc:"Run the fault-injection campaign instead of the \
                   differential fuzzer: inject a growing, prefix-stable \
                   population of permanent register-file defects \
                   (stuck-at bits, dead entries, dead banks) and report \
                   how many each scheme absorbs before its first output \
                   corruption.  With the default $(b,--backend) the \
                   whole scheme registry is swept.")
  in
  let fault_max =
    Arg.(value & opt int 12
         & info [ "fault-max" ] ~docv:"K"
             ~doc:"Fault-count ceiling of the $(b,--faults) sweep.")
  in
  let fault_cases =
    Arg.(value & opt int 20
         & info [ "fault-cases" ] ~docv:"N"
             ~doc:"Fuzz cases checked at every fault count of the \
                   $(b,--faults) sweep.")
  in
  let run seed count max_seconds no_shrink faults fault_max fault_cases
      backends jobs =
    if faults then
      print_fault_campaign
        (fault_campaign ~seed ~cases:fault_cases ~max_faults:fault_max
           backends)
    else begin
    let module R = Gpr_check.Runner in
    (* Resolve eagerly for the clean unknown-name message; the runner
       re-validates before the campaign starts. *)
    ignore (resolve_backends backends);
    let jobs = resolve_jobs jobs in
    let progress s =
      if (s - seed) mod 25 = 0 && s <> seed then
        Printf.printf "  ... %d/%d seeds clean\n%!" (s - seed) count
    in
    let summary =
      R.run ~shrink:(not no_shrink) ~backends ?max_seconds ~progress ~jobs
        ~seed ~count ()
    in
    List.iter (fun r -> print_string (R.report_to_string r)) summary.R.reports;
    Printf.printf "checked %d seed%s (%d..%d): %d failure%s\n"
      summary.R.checked
      (if summary.R.checked = 1 then "" else "s")
      seed
      (seed + summary.R.checked - 1)
      (List.length summary.R.reports)
      (if List.length summary.R.reports = 1 then "" else "s");
    if summary.R.reports <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential fuzzing: run random kernels plain and through the \
             compressed register file (width analysis, slice allocation, \
             indirection table, TVT/TVE datapath, timing-model invariants) \
             and fail on any divergence, with shrunk counterexamples; \
             seeds are sharded across the -j engine pool.  $(b,--backend) \
             selects which schemes' oracles run (slice expands to the six \
             classic stages, including the width-analysis soundness \
             oracle; other schemes run the generic plain-vs-backend \
             oracle).  $(b,--faults) switches to the fault-injection \
             campaign")
    Term.(const run $ seed $ count $ max_seconds $ no_shrink $ faults_flag
          $ fault_max $ fault_cases $ backend_arg $ jobs_arg)

(* ---------------- lint ---------------- *)

let workload_buffer_len (w : W.t) =
  let data = w.data () in
  fun name ->
    match List.assoc_opt name w.shared with
    | Some n -> Some n
    | None -> (
      match List.assoc_opt name data with
      | Some (Gpr_exec.Exec.I_data a) -> Some (Array.length a)
      | Some (Gpr_exec.Exec.F_data a) -> Some (Array.length a)
      | None -> None)

let lint_cmd =
  let module L = Gpr_lint.Lint in
  let module D = Gpr_lint.Diag in
  let target =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"TARGET"
          ~doc:
            "A kernel name from $(b,gpr list), $(b,all) for every registry \
             kernel, or a file in textual mini-PTX form.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON array of diagnostics.")
  in
  let block =
    Arg.(value & opt int 256
         & info [ "block" ] ~docv:"THREADS"
             ~doc:"Threads per block (file targets only).")
  in
  let grid =
    Arg.(value & opt int 16
         & info [ "grid" ] ~docv:"BLOCKS" ~doc:"Grid size (file targets only).")
  in
  let lint_workload (w : W.t) =
    L.lint ~buffer_len:(workload_buffer_len w) w.kernel ~launch:w.launch
  in
  let run target json block grid =
    let targets =
      if target = "all" then
        List.map (fun (w : W.t) -> (w.kernel, lint_workload w)) Registry.all
      else
        match Registry.by_name target with
        | Some w -> [ (w.kernel, lint_workload w) ]
        | None ->
          if not (Sys.file_exists target) then begin
            Printf.eprintf
              "unknown kernel or file %s, try `gpr list` (available \
               kernels: %s)\n"
              target
              (String.concat ", " Registry.names);
            exit 1
          end;
          let text = In_channel.with_open_text target In_channel.input_all in
          (match Gpr_isa.Parser.parse text with
          | Error e ->
            Printf.eprintf "%s: %s\n" target e;
            exit 1
          | Ok kernel ->
            let launch = Gpr_isa.Types.launch_1d ~block ~grid in
            [ (kernel, L.lint kernel ~launch) ])
    in
    if json then begin
      let chunks =
        List.map
          (fun ((k : Gpr_isa.Types.kernel), ds) ->
            List.map (D.to_json ~kernel_name:k.k_name) (List.sort D.compare ds))
          targets
        |> List.concat
      in
      print_endline ("[" ^ String.concat "," chunks ^ "]")
    end
    else
      List.iter
        (fun ((k : Gpr_isa.Types.kernel), ds) ->
          List.iter
            (fun d -> print_endline (D.to_string_quoted k d))
            (List.sort D.compare ds);
          Printf.printf "%s: %d error(s), %d warning(s), %d info\n" k.k_name
            (D.count D.Error ds) (D.count D.Warning ds) (D.count D.Info ds))
        targets;
    let has_error =
      List.exists (fun (_, ds) -> D.count D.Error ds > 0) targets
    in
    if has_error then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static kernel verification: divergence/barrier safety, \
          shared-memory race detection, compression-soundness audit, \
          bounds and definite-assignment lints.  Exits 1 on any \
          error-severity diagnostic.")
    Term.(const run $ target $ json $ block $ grid)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let backend_one =
    let doc =
      "Register-file scheme to profile (one name from the backend \
       registry; default slice)."
    in
    Arg.(value & opt string "slice" & info [ "backend" ] ~docv:"NAME" ~doc)
  in
  let trace_arg =
    let doc =
      "Write the Chrome trace-event JSON here (open in chrome://tracing \
       or https://ui.perfetto.dev)."
    in
    Arg.(value & opt string "gpr-trace.json"
         & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let max_events_arg =
    let doc =
      "Cap on recorded trace events; past it events are dropped (and \
       counted) instead of exhausting memory."
    in
    Arg.(value & opt int 200_000 & info [ "max-events" ] ~docv:"N" ~doc)
  in
  let run name bname trace_file max_events cache_dir =
    let store = setup_store cache_dir in
    Fun.protect ~finally:(fun () -> print_store_stats store) @@ fun () ->
    let w = find_workload name in
    let b =
      match resolve_backends [ bname ] with [ b ] -> b | _ -> assert false
    in
    Gpr_obs.Metrics.set_enabled true;
    let chrome = Gpr_obs.Chrome.create ~max_events () in
    Gpr_obs.Chrome.name_process chrome ~pid:2 "engine pool";
    Gpr_obs.Chrome.set_sink (Some chrome);
    let st =
      Fun.protect
        ~finally:(fun () -> Gpr_obs.Chrome.set_sink None)
        (fun () ->
          let c = Compress.analyze w in
          Simulate.profile_backend ~profile:chrome b c Q.High)
    in
    let bd = Gpr_sim.Sim.breakdown st in
    let total = Gpr_obs.Stall.total_slots bd in
    let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 total) in
    Tab.section
      (Printf.sprintf "Issue-slot attribution: %s under %s" name
         (Gpr_backend.Backend.id b));
    Tab.print
      ~header:[ "Outcome"; "Slots"; "Share" ]
      ([ [ "issued"; string_of_int st.Gpr_sim.Sim.issued_slots;
           Tab.pct (pct st.Gpr_sim.Sim.issued_slots) ] ]
      @ List.map
          (fun cause ->
            let n = Gpr_obs.Stall.get bd cause in
            [ "stall: " ^ Gpr_obs.Stall.name cause; string_of_int n;
              Tab.pct (pct n) ])
          Gpr_obs.Stall.all);
    Printf.printf
      "%d cycles, IPC %.1f, %d bank-conflict fetch retries, %d spill \
       loads, %d spill stores\n"
      st.Gpr_sim.Sim.cycles st.Gpr_sim.Sim.gpu_ipc
      st.Gpr_sim.Sim.bank_conflicts st.Gpr_sim.Sim.spill_loads
      st.Gpr_sim.Sim.spill_stores;
    Tab.section "Metrics";
    List.iter
      (fun (e : Gpr_obs.Metrics.entry) ->
        match e with
        | Gpr_obs.Metrics.Counter { name; count } ->
          Printf.printf "  %-28s %d\n" name count
        | Gpr_obs.Metrics.Histogram { name; sum; total; _ } ->
          Printf.printf "  %-28s count %d, sum %d\n" name total sum)
      (Gpr_obs.Metrics.snapshot ());
    Gpr_obs.Chrome.write_file chrome trace_file;
    Printf.printf "wrote %d trace events to %s (%d dropped)\n"
      (Gpr_obs.Chrome.num_events chrome)
      trace_file
      (Gpr_obs.Chrome.dropped chrome)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile one kernel under a register-file scheme: run the \
          timing model with self-checks and full stall attribution \
          enabled, print the issue-slot breakdown and metrics, and \
          export a Chrome trace-event JSON (per-warp issue spans, \
          bank-conflict marks) for chrome://tracing / Perfetto.")
    Term.(const run $ kernel_arg $ backend_one $ trace_arg $ max_events_arg
          $ cache_dir_arg)

(* ---------------- colocate ---------------- *)

let colocate_cmd =
  let module M = Gpr_sim.Sim_multi in
  let kernels =
    Arg.(required & pos 0 (some (list string)) None
         & info [] ~docv:"KERNEL[,KERNEL...]"
             ~doc:"Comma-separated kernel set to co-schedule on one SM \
                   (see $(b,gpr list)).")
  in
  let backend_one =
    let doc =
      "Register-file scheme the co-scheduled SM runs (one name from the \
       backend registry, default slice); the table compares it against \
       the baseline scheme."
    in
    Arg.(value & opt string "slice" & info [ "backend" ] ~docv:"NAME" ~doc)
  in
  let policy =
    Arg.(value & opt string "fifo"
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Block-dispatch policy: $(b,fifo) (global submission \
                   order), $(b,rr) (round-robin over kernels) or \
                   $(b,binpack) (pressure-aware best-fit).")
  in
  let waves =
    Arg.(value & opt int 6
         & info [ "waves" ] ~docv:"N"
             ~doc:"Blocks fed per kernel, as a multiple of its isolated \
                   blocks/SM.")
  in
  let run names bname pname waves jobs cache_dir =
    let ws = List.map find_workload names in
    let b =
      match resolve_backends [ bname ] with [ b ] -> b | _ -> assert false
    in
    let policy = resolve_policy pname in
    let module P = (val policy : M.POLICY) in
    with_engine ~jobs ~cache_dir @@ fun () ->
    let cs = List.map Compress.analyze ws in
    let base =
      match Gpr_backend.Registry.find "baseline" with
      | Some b -> b
      | None -> assert false
    in
    let sid = Gpr_backend.Backend.id b in
    let co b = Simulate.colocate ~waves ~policy b cs Q.High in
    let rb = co base in
    let rs = if sid = "baseline" then rb else co b in
    let ipc_change a c =
      if a > 0.0 then Printf.sprintf "%+.1f%%" (100.0 *. ((c /. a) -. 1.0))
      else "-"
    in
    Tab.section
      (Printf.sprintf "Co-scheduling %s: baseline vs %s (policy %s, %d waves)"
         (String.concat "+" names) sid P.id waves);
    Tab.print
      ~header:
        [ "Kernel"; "Peak blocks (base)"; "Peak blocks (" ^ sid ^ ")";
          "IPC (base)"; "IPC (" ^ sid ^ ")"; "IPC change"; "Issue share" ]
      (List.mapi
         (fun i (w : W.t) ->
           let tb = rb.M.r_tenants.(i) and ts = rs.M.r_tenants.(i) in
           [ w.name;
             string_of_int tb.M.ts_peak_resident;
             string_of_int ts.M.ts_peak_resident;
             Tab.fp tb.M.ts_ipc; Tab.fp ts.M.ts_ipc;
             ipc_change tb.M.ts_ipc ts.M.ts_ipc;
             Tab.pct (100.0 *. ts.M.ts_issue_share) ])
         ws
      @ [ [ "(aggregate)";
            string_of_int rb.M.r_peak_resident_blocks;
            string_of_int rs.M.r_peak_resident_blocks;
            Tab.fp rb.M.r_stats.Gpr_sim.Sim.sm_ipc;
            Tab.fp rs.M.r_stats.Gpr_sim.Sim.sm_ipc;
            ipc_change rb.M.r_stats.Gpr_sim.Sim.sm_ipc
              rs.M.r_stats.Gpr_sim.Sim.sm_ipc;
            "-" ] ]);
    let co_pct (r : M.result) =
      100.0 *. float_of_int r.M.r_co_resident_cycles
      /. float_of_int (max 1 r.M.r_stats.Gpr_sim.Sim.cycles)
    in
    Printf.printf "co-resident cycles: %s (baseline) -> %s (%s)\n"
      (Tab.pct (co_pct rb)) (Tab.pct (co_pct rs)) sid;
    let fair f =
      (* 0.0 is Fair.jain's out-of-band sentinel: nobody issued a
         single slot, so starvation-of-all must not print as a score. *)
      if Gpr_obs.Fair.degenerate f then "n/a (no slots issued)"
      else Printf.sprintf "%.3f" f
    in
    Printf.printf "fairness (Jain over issued slots): %s -> %s\n"
      (fair rb.M.r_fairness) (fair rs.M.r_fairness);
    Printf.printf "admissions: %d -> %d blocks (policy %s: %s)\n"
      rb.M.r_admissions rs.M.r_admissions P.id P.describe
  in
  Cmd.v
    (Cmd.info "colocate"
       ~doc:
         "Co-schedule a kernel set on one SM under a register-file \
          scheme and a block-dispatch policy, and compare the \
          per-kernel and aggregate co-residency (peak resident blocks, \
          IPC, issue shares, fairness) against the baseline register \
          file — the compression-bought multiprogramming gain.")
    Term.(const run $ kernels $ backend_one $ policy $ waves $ jobs_arg
          $ cache_dir_arg)

(* ---------------- serve ---------------- *)

let socket_info =
  Arg.info [ "socket" ] ~docv:"PATH"
    ~doc:"Unix-domain socket path the daemon listens on."

let socket_req_arg = Arg.(required & opt (some string) None & socket_info)
let socket_opt_arg = Arg.(value & opt (some string) None & socket_info)

let serve_cmd =
  let queue_depth =
    Arg.(value & opt int 64
         & info [ "queue-depth" ] ~docv:"D"
             ~doc:"Admission-control bound on queued distinct work items; \
                   past it requests are rejected with the typed \
                   $(b,overloaded) error.")
  in
  let deadline =
    Arg.(value & opt int 30_000
         & info [ "default-deadline-ms" ] ~docv:"T"
             ~doc:"Deadline for requests that do not carry their own \
                   $(b,deadline_ms) field.")
  in
  let max_frame =
    Arg.(value & opt int Gpr_serve.Protocol.max_frame_default
         & info [ "max-frame-bytes" ] ~docv:"N"
             ~doc:"Largest accepted request frame; bigger frames are \
                   rejected without buffering the payload.")
  in
  let debug_sleep =
    Arg.(value & flag
         & info [ "debug-sleep" ]
             ~doc:"Accept the $(b,sleep) verb (deterministic load tests \
                   only).")
  in
  let cache_max_entries =
    Arg.(value & opt (some int) None
         & info [ "cache-max-entries" ] ~docv:"N"
             ~doc:"Bound the on-disk cache to N entries (LRU eviction).")
  in
  let cache_max_bytes =
    Arg.(value & opt (some int) None
         & info [ "cache-max-bytes" ] ~docv:"N"
             ~doc:"Bound the on-disk cache to N payload bytes (LRU \
                   eviction).")
  in
  let run socket jobs queue_depth deadline max_frame debug_sleep cache_dir
      cache_max_entries cache_max_bytes =
    let store =
      match cache_dir with
      | None -> None
      | Some d ->
        let s =
          Gpr_engine.Store.create ?max_entries:cache_max_entries
            ?max_bytes:cache_max_bytes ~dir:d ()
        in
        Compress.set_store (Some s);
        Simulate.set_store (Some s);
        Some s
    in
    let workers = resolve_jobs jobs in
    let cfg =
      { Gpr_serve.Server.workers; queue_depth; default_deadline_ms = deadline;
        max_frame_bytes = max_frame; store; debug_sleep }
    in
    Gpr_obs.Metrics.set_enabled true;
    let t = Gpr_serve.Server.create cfg in
    Gpr_serve.Server.install_signal_handlers t;
    Printf.eprintf "[gpr serve: listening on %s, %d workers, queue %d]\n%!"
      socket workers queue_depth;
    Gpr_serve.Server.run ~socket t;
    Printf.eprintf
      "[gpr serve: %d received, %d completed, %d cache hits, %d coalesced, \
       %d overloaded, %d deadline-expired]\n%!"
      (Gpr_serve.Server.received t)
      (Gpr_serve.Server.completed t)
      (Gpr_serve.Server.cache_hits t)
      (Gpr_serve.Server.coalesced t)
      (Gpr_serve.Server.rejected_overloaded t)
      (Gpr_serve.Server.deadline_expired t);
    print_store_stats store
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis/simulation daemon on a Unix-domain \
          socket.  Speaks length-prefixed JSON (plan, lint, estimate, \
          profile, stats verbs) with a bounded request queue, duplicate \
          coalescing, per-request deadlines and graceful SIGTERM \
          shutdown; payloads are byte-identical to the one-shot CLI.")
    Term.(const run $ socket_req_arg $ jobs_arg $ queue_depth
          $ deadline $ max_frame $ debug_sleep $ cache_dir_arg
          $ cache_max_entries $ cache_max_bytes)

(* ---------------- bench ---------------- *)

let bench_cmd =
  let module Load = Gpr_serve.Load in
  let serve_flag =
    Arg.(value & flag
         & info [ "serve" ]
             ~doc:"Benchmark the serve daemon (the only mode; \
                   microbenchmarks live in bench/).")
  in
  let attach =
    Arg.(value & flag
         & info [ "attach" ]
             ~doc:"Use an already-running daemon at $(b,--socket) instead \
                   of spawning one (skips the shutdown assertions).")
  in
  let requests =
    Arg.(value & opt int Load.default_cfg.Load.requests
         & info [ "requests" ] ~docv:"N" ~doc:"Total requests to replay.")
  in
  let concurrency =
    Arg.(value & opt int Load.default_cfg.Load.concurrency
         & info [ "concurrency" ] ~docv:"C"
             ~doc:"Closed-loop client connections (one domain each).")
  in
  let duplicate_ratio =
    Arg.(value & opt float Load.default_cfg.Load.duplicate_ratio
         & info [ "duplicate-ratio" ] ~docv:"R"
             ~doc:"Fraction of requests drawn from the hot key pool (exact \
                   repeats); the rest are salted to force cache misses.")
  in
  let queue_depth =
    Arg.(value & opt int Load.default_cfg.Load.queue_depth
         & info [ "queue-depth" ] ~docv:"D"
             ~doc:"Forwarded to the spawned daemon.")
  in
  let deadline =
    Arg.(value & opt int Load.default_cfg.Load.deadline_ms
         & info [ "deadline-ms" ] ~docv:"T"
             ~doc:"Per-request deadline in the replayed stream.")
  in
  let kernels =
    Arg.(value & opt (list string) Load.default_cfg.Load.kernels
         & info [ "kernels" ] ~docv:"NAME[,NAME...]"
             ~doc:"Registry kernels in the mix.")
  in
  let verbs =
    Arg.(value & opt (list string) Load.default_cfg.Load.verbs
         & info [ "verbs" ] ~docv:"VERB[,VERB...]"
             ~doc:"Request verbs in the mix (plan, lint, estimate, \
                   profile).")
  in
  let seed =
    Arg.(value & opt int Load.default_cfg.Load.seed
         & info [ "seed" ] ~docv:"N" ~doc:"Stream seed (deterministic mix).")
  in
  let out =
    Arg.(value & opt string "BENCH_serve.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Summary JSON path.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Recompute every distinct payload in-process and require \
                   the served bytes to match exactly.")
  in
  let run serve_flag socket attach jobs requests concurrency duplicate_ratio
      queue_depth deadline kernels backends verbs seed cache_dir out verify =
    if not serve_flag then begin
      Printf.eprintf
        "gpr bench currently only benchmarks the daemon: pass --serve \
         (microbenchmarks live in bench/main.exe)\n";
      exit 2
    end;
    (* Resolve names eagerly for the clean unknown-name messages. *)
    List.iter (fun k -> ignore (find_workload k)) kernels;
    ignore (resolve_backends backends);
    let socket =
      match socket with
      | Some p -> p
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "gpr-serve-%d.sock" (Unix.getpid ()))
    in
    let cfg =
      { Load.socket; attach; daemon_jobs = resolve_jobs jobs; queue_depth;
        deadline_ms = deadline; cache_dir; requests; concurrency;
        duplicate_ratio; kernels; backends; verbs; seed;
        out = Some out; verify }
    in
    match Load.run cfg with
    | Error m ->
      Printf.eprintf "gpr bench --serve: %s\n" m;
      exit 1
    | Ok s ->
      Printf.printf
        "%d ok, %d overloaded, %d deadline-expired, %d errors over %.2fs \
         (%.0f req/s)\n"
        s.Load.ok s.Load.rejected s.Load.deadline_exceeded s.Load.errors
        s.Load.wall_seconds s.Load.throughput_rps;
      Printf.printf
        "latency ms: p50 %.2f  p90 %.2f  p99 %.2f  mean %.2f  max %.2f\n"
        s.Load.p50_ms s.Load.p90_ms s.Load.p99_ms s.Load.mean_ms
        s.Load.max_ms;
      Printf.printf "cache hit rate: %.1f%%\n"
        (100.0 *. s.Load.cache_hit_rate);
      (match s.Load.verified with
       | Some true -> print_endline "verify: served payloads byte-identical"
       | Some false -> print_endline "verify: FAILED"
       | None -> ());
      (match s.Load.shutdown_clean with
       | Some true -> print_endline "shutdown: clean (exit 0, socket removed)"
       | Some false -> print_endline "shutdown: NOT CLEAN"
       | None -> ());
      List.iter (Printf.printf "  error: %s\n") s.Load.error_samples;
      Printf.printf "wrote %s\n" out;
      let failed =
        s.Load.errors > 0
        || s.Load.verified = Some false
        || s.Load.shutdown_clean = Some false
      in
      if failed then exit 1
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Load-test the serve daemon: spawn it (or $(b,--attach) to one), \
          replay a deterministic mixed request stream from concurrent \
          clients, and report p50/p99 latency, throughput, reject and \
          cache-hit rates to stdout and $(b,--out) (BENCH_serve.json).  \
          Exits 1 on any transport error, payload mismatch under \
          $(b,--verify), or unclean daemon shutdown.")
    Term.(const run $ serve_flag $ socket_opt_arg $ attach
          $ jobs_arg $ requests $ concurrency $ duplicate_ratio
          $ queue_depth $ deadline $ kernels $ backend_arg $ verbs $ seed
          $ cache_dir_arg $ out $ verify)

(* ---------------- disasm ---------------- *)

let disasm_cmd =
  let run name =
    let w = find_workload name in
    print_string (Gpr_isa.Pp.kernel_to_string w.kernel)
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Print a kernel in the textual mini-PTX form (parseable back \
             with Gpr_isa.Parser)")
    Term.(const run $ kernel_arg)

let () =
  let info =
    Cmd.info "gpr" ~version:"1.0.0"
      ~doc:"GPU register file with static data compression (ICPP 2020 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; pressure_cmd; sim_cmd; report_cmd; profile_cmd;
            colocate_cmd; disasm_cmd; analyze_cmd; check_cmd; lint_cmd;
            serve_cmd; bench_cmd ]))
