(* Validate JSON artifacts: every file named on the command line must
   parse under Gpr_obs.Json's strict parser and be non-empty.  Used by
   the runtest rule for the committed BENCH_*.json files and by CI for
   freshly produced Chrome traces. *)

let () =
  let bad = ref false in
  Array.iteri
    (fun i file ->
      if i > 0 then
        match Gpr_obs.Json.parse_file file with
        | Ok (Gpr_obs.Json.Obj (_ :: _)) | Ok (Gpr_obs.Json.Arr (_ :: _)) ->
          Printf.printf "%s: ok\n" file
        | Ok _ ->
          bad := true;
          Printf.eprintf "%s: parses but is empty\n" file
        | Error msg ->
          bad := true;
          Printf.eprintf "%s: %s\n" file msg)
    Sys.argv;
  if !bad then exit 1
