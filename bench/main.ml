(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Tables 1-4, Figures 8-12, the Sec. 6.4 area model, the Sec. 6.5
   power argument and the Sec. 7 Volta scaling) through
   [Gpr_core.Experiments] — workload generation, the static framework,
   and the timing simulation all run from scratch (or from the
   content-addressed store with [--cache-dir]).

   Part 2 reports Bechamel micro-benchmarks of the core components so
   performance regressions in the library itself are visible.

   Tables and figures go to stdout; per-section timings and cache
   statistics go to stderr and to BENCH_engine.json, so stdout is
   byte-comparable across [-j 1] and [-j N] runs.  The static verifier
   is timed per pass over the registry and reported in BENCH_lint.json;
   each registered register-file backend is timed over the full
   registry and reported in BENCH_backend.json, with its registry-wide
   stall-attribution breakdown and the metrics-registry snapshot in
   BENCH_obs.json.  Every artifact is emitted through Gpr_obs.Json and
   re-parsed by the bench/json_check runtest rule.

   Run with:  dune exec bench/main.exe -- [-j N] [--cache-dir DIR]
                                          [--no-micro] *)

open Bechamel
open Toolkit

(* ---------------------------------------------------------------- *)
(* Micro-benchmarks *)

let fig8_kernel () =
  let open Gpr_isa in
  let open Gpr_isa.Types in
  let open Builder in
  let b = create ~name:"fig8" in
  let out = global_buffer b S32 "out" in
  let k = var b S32 "k" and i = var b S32 "i" and j = var b S32 "j" in
  assign b k (ci 0);
  while_ b
    (fun () -> ilt b ~$k (ci 50))
    (fun () ->
       assign b i (ci 0);
       assign b j ~$k;
       while_ b
         (fun () -> ilt b ~$i ~$j)
         (fun () ->
            st b out (ci 0) ~$k;
            assign b i ~$(iadd b ~$i (ci 1)));
       assign b k ~$(iadd b ~$k (ci 1)));
  st b out (ci 1) ~$k;
  finish b

let hotspot () = Option.get (Gpr_workloads.Registry.by_name "Hotspot")

let micro_tests () =
  let fig8 = fig8_kernel () in
  let launch = Gpr_isa.Types.launch_1d ~block:32 ~grid:1 in
  let w = hotspot () in
  let hk = w.kernel in
  let alloc_width = fun _ -> 16 in
  let fmt16 = Gpr_fp.Format_.of_level 4 in
  let placement =
    { Gpr_alloc.Alloc.reg0 = 0; mask0 = 0b1100_0011; reg1 = -1;
      mask1 = 0; slices = 4; bits = 16; signed = true; is_float = false }
  in
  let trace = lazy (Gpr_workloads.Workload.trace w ~quantize:None) in
  let halloc = lazy (Gpr_alloc.Alloc.baseline hk) in
  [
    Test.make ~name:"interval.mul"
      (Staged.stage (fun () ->
           ignore
             (Gpr_util.Interval.mul
                (Gpr_util.Interval.of_ints (-37) 122)
                (Gpr_util.Interval.of_ints 5 999))));
    Test.make ~name:"range-analysis.fig8"
      (Staged.stage (fun () ->
           ignore (Gpr_analysis.Range.analyze fig8 ~launch)));
    Test.make ~name:"ssa.convert.hotspot"
      (Staged.stage (fun () -> ignore (Gpr_analysis.Ssa.convert hk)));
    Test.make ~name:"liveness.hotspot"
      (Staged.stage (fun () -> ignore (Gpr_analysis.Liveness.compute hk)));
    Test.make ~name:"alloc.pack.hotspot"
      (Staged.stage (fun () ->
           ignore (Gpr_alloc.Alloc.run hk ~width_of:alloc_width)));
    Test.make ~name:"fp.quantize16"
      (Staged.stage (fun () ->
           ignore (Gpr_fp.Format_.quantize fmt16 3.14159265)));
    Test.make ~name:"datapath.roundtrip"
      (Staged.stage (fun () ->
           let r0, r1 = Gpr_regfile.Datapath.store_int placement (-1234) in
           ignore (Gpr_regfile.Datapath.load_int placement ~r0 ~r1)));
    Test.make ~name:"exec.hotspot-run"
      (Staged.stage (fun () -> ignore (Gpr_workloads.Workload.reference w)));
    Test.make ~name:"sim.hotspot-baseline"
      (Staged.stage (fun () ->
           ignore
             (Gpr_sim.Sim.run ~waves:1 Gpr_arch.Config.fermi_gtx480
                ~trace:(Lazy.force trace) ~alloc:(Lazy.force halloc)
                ~blocks_per_sm:4 ~mode:Gpr_sim.Sim.Baseline)));
  ]

let run_micro () =
  Gpr_util.Tab.section "Micro-benchmarks (Bechamel, monotonic clock)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
         let elt = List.hd (Test.elements test) in
         let name = Test.Elt.name elt in
         let results = Benchmark.all cfg instances test in
         let analysis = Analyze.all ols Instance.monotonic_clock results in
         let nanos =
           Hashtbl.fold
             (fun _ v acc ->
                match Analyze.OLS.estimates v with
                | Some [ est ] -> est
                | _ -> acc)
             analysis nan
         in
         [ name;
           (if nanos >= 1e6 then Printf.sprintf "%.2f ms/op" (nanos /. 1e6)
            else if nanos >= 1e3 then Printf.sprintf "%.2f us/op" (nanos /. 1e3)
            else Printf.sprintf "%.1f ns/op" nanos) ])
      (micro_tests ())
  in
  Gpr_util.Tab.print ~header:[ "component"; "time" ] rows

(* ---------------------------------------------------------------- *)
(* Engine flags and per-section timing *)

let jobs = ref 0
let cache_dir = ref ""
let no_micro = ref false
let sim_throughput = ref false
let sim_kernels = ref ""
let analysis = ref false
let coloc = ref false
let faults = ref false

let speclist =
  [
    ("-j", Arg.Set_int jobs,
     "N  Parallel jobs (0 = auto: GPR_JOBS or the recommended domain count)");
    ("--jobs", Arg.Set_int jobs, "N  Same as -j");
    ("--cache-dir", Arg.Set_string cache_dir,
     "DIR  Content-addressed on-disk result cache");
    ("--no-micro", Arg.Set no_micro,
     "  Skip the Bechamel micro-benchmarks (part 2)");
    ("--sim-throughput", Arg.Set sim_throughput,
     "  Only time the flat simulator against the Sim_ref oracle over the \
      registry and write BENCH_sim.json");
    ("--sim-kernels", Arg.Set_string sim_kernels,
     "A,B  Restrict --sim-throughput to the named registry kernels (the CI \
      smoke subset)");
    ("--analysis", Arg.Set analysis,
     "  Only time the static dataflow analyses (intervals vs the full \
      reduced product) over the registry and write BENCH_analysis.json");
    ("--coloc", Arg.Set coloc,
     "  Only run the co-scheduling benchmark (registry kernel pairs under \
      baseline vs slice per dispatch policy) and write BENCH_coloc.json");
    ("--faults", Arg.Set faults,
     "  Only run the fault-injection campaign (permanent register-file \
      defects swept under every scheme) and write BENCH_faults.json");
  ]

(* One timed section per table/figure of the evaluation, in
   [Experiments.print_all] order. *)
let sections : (string * (unit -> unit)) list =
  let module E = Gpr_core.Experiments in
  [
    ("table2", E.print_table2);
    ("table3", E.print_table3);
    ("fig8", E.print_fig8);
    ("widths", E.print_width_report);
    ("table4", E.print_table4);
    ("table1", E.print_table1);
    ("fig9", E.print_fig9);
    ("fig10", E.print_fig10);
    ("fig11", E.print_fig11);
    ("fig12", E.print_fig12);
    ("area", E.print_area);
    ("power", E.print_power);
    ("volta", E.print_volta);
    ("ablations", E.print_ablations);
  ]

(* All BENCH_*.json artifacts are rendered through one escaping-aware
   emitter ({!Gpr_obs.Json}); a runtest rule parses every committed
   artifact back with the same library's strict parser. *)
module J = Gpr_obs.Json

let seconds s = J.Float (Float.round (s *. 1000.0) /. 1000.0)

let write_engine_json ~jobs ~cache ~timed ~total =
  let hits, misses =
    match cache with
    | None -> (0, 0)
    | Some s -> (Gpr_engine.Store.hits s, Gpr_engine.Store.misses s)
  in
  J.write_file "BENCH_engine.json"
    (J.Obj
       [
         ("jobs", J.Int jobs);
         ( "cache_dir",
           J.Str (match cache with None -> "" | Some s -> Gpr_engine.Store.dir s)
         );
         ("cache_hits", J.Int hits);
         ("cache_misses", J.Int misses);
         ("total_seconds", seconds total);
         ( "sections",
           J.Arr
             (List.map
                (fun (name, secs) ->
                  J.Obj [ ("section", J.Str name); ("seconds", seconds secs) ])
                timed) );
       ])

(* ---------------------------------------------------------------- *)
(* Per-scheme timing: the full registry analysed and simulated under
   each registered register-file backend, written to
   BENCH_backend.json.  Schemes run in registry order, so later schemes
   reuse whatever shared state (plain traces, baseline stats) earlier
   ones memoised — the same composition `gpr report --backend` uses. *)

let run_backend_bench () =
  List.map
    (fun b ->
      let name = Gpr_backend.Backend.id b in
      let t0 = Unix.gettimeofday () in
      let rows = Gpr_core.Experiments.backend_comparison [ b ] in
      let secs = Unix.gettimeofday () -. t0 in
      let mean_delta =
        List.fold_left
          (fun acc (r : Gpr_core.Experiments.backend_row) ->
            acc +. r.b_ipc_vs_baseline_pct)
          0.0 rows
        /. float_of_int (max 1 (List.length rows))
      in
      let stalls =
        List.fold_left
          (fun acc (r : Gpr_core.Experiments.backend_row) ->
            Gpr_obs.Stall.add acc r.b_stalls)
          Gpr_obs.Stall.empty rows
      in
      (name, secs, List.length rows, mean_delta, stalls))
    Gpr_backend.Registry.all

let write_backend_json entries =
  J.write_file "BENCH_backend.json"
    (J.Obj
       [
         ( "backends",
           J.Arr
             (List.map
                (fun (name, secs, kernels, mean_delta, _) ->
                  J.Obj
                    [
                      ("backend", J.Str name);
                      ("seconds", seconds secs);
                      ("kernels", J.Int kernels);
                      ( "mean_ipc_vs_baseline_pct",
                        J.Float (Float.round (mean_delta *. 100.0) /. 100.0) );
                    ])
                entries) );
       ])

(* BENCH_obs.json: the registry-wide stall-attribution breakdown per
   scheme (summed over every kernel's simulation) plus the metrics
   registry's final snapshot — the observability counterpart of the
   timing artifacts above. *)
let write_obs_json entries =
  J.write_file "BENCH_obs.json"
    (J.Obj
       [
         ( "backends",
           J.Arr
             (List.map
                (fun (name, _, kernels, _, stalls) ->
                  match Gpr_obs.Stall.to_json stalls with
                  | J.Obj fields ->
                    J.Obj
                      (("backend", J.Str name) :: ("kernels", J.Int kernels)
                      :: fields)
                  | other -> other)
                entries) );
         ("metrics", Gpr_obs.Metrics.to_json ());
       ])

(* ---------------------------------------------------------------- *)
(* Simulator throughput: the full registry simulated under every
   registered backend by the flat engine and by the Sim_ref oracle,
   written to BENCH_sim.json as cycles/sec per scheme (the ISSUE's
   ≥5x acceptance artifact).  The oracle run doubles as an in-bench
   equivalence audit: any stats divergence aborts with exit 1.  The
   recorded host lets the tier-2 perf-regression test in
   test/test_sim.ml gate its absolute-throughput comparison to the
   machine the baseline was committed from. *)

let run_sim_bench () =
  let module W = Gpr_workloads.Workload in
  let module Backend = Gpr_backend.Backend in
  let module Width = Gpr_analysis.Width in
  let module Sim = Gpr_sim.Sim in
  let module Sim_ref = Gpr_sim.Sim_ref in
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  let waves = 6 in
  let kernels =
    if !sim_kernels = "" then Gpr_workloads.Registry.all
    else begin
      let wanted =
        List.filter_map
          (fun n ->
            let n = String.trim n in
            if n = "" then None else Some (String.lowercase_ascii n))
          (String.split_on_char ',' !sim_kernels)
      in
      List.filter
        (fun (w : W.t) ->
          List.mem (String.lowercase_ascii w.name) wanted)
        Gpr_workloads.Registry.all
    end
  in
  if kernels = [] then begin
    Printf.eprintf "--sim-throughput: no registry kernel matches %S\n"
      !sim_kernels;
    exit 2
  end;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let round1 x = Float.round (x *. 10.0) /. 10.0 in
  let round2 x = Float.round (x *. 100.0) /. 100.0 in
  let per_sec cycles secs =
    if secs <= 0.0 then 0.0 else float_of_int cycles /. secs
  in
  let schemes =
    List.map
      (fun scheme ->
        let module S = (val scheme : Backend.Scheme) in
        let t_cycles = ref 0 and t_fast = ref 0.0 and t_ref = ref 0.0 in
        let rows =
          List.map
            (fun (w : W.t) ->
              let trace = W.trace w ~quantize:None in
              let width = Width.analyze w.kernel ~launch:w.launch in
              let res = S.analyze ~kernel:w.kernel ~width ~precision:None in
              let occ =
                (Backend.occupancy cfg res
                   ~warps_per_block:(W.warps_per_block w)
                   ~shared_bytes_per_block:(W.shared_bytes_per_block w))
                  .Gpr_arch.Occupancy.blocks_per_sm
              in
              let mode = Backend.sim_mode scheme res in
              let alloc = res.Gpr_backend.Backend.alloc in
              let fast, fsec =
                time (fun () ->
                    Sim.run ~waves cfg ~trace ~alloc ~blocks_per_sm:occ ~mode)
              in
              let slow, rsec =
                time (fun () ->
                    Sim_ref.run ~waves cfg ~trace ~alloc ~blocks_per_sm:occ
                      ~mode)
              in
              if Stdlib.compare fast slow <> 0 then begin
                Printf.eprintf
                  "--sim-throughput: %s/%s: fast engine diverges from \
                   Sim_ref\n"
                  w.name S.id;
                exit 1
              end;
              t_cycles := !t_cycles + fast.Sim.cycles;
              t_fast := !t_fast +. fsec;
              t_ref := !t_ref +. rsec;
              J.Obj
                [
                  ("kernel", J.Str w.name);
                  ("cycles", J.Int fast.Sim.cycles);
                  ("seconds", seconds fsec);
                  ("cycles_per_sec", J.Float (round1 (per_sec fast.Sim.cycles fsec)));
                  ("ref_seconds", seconds rsec);
                  ( "speedup",
                    J.Float (round2 (if fsec > 0.0 then rsec /. fsec else 0.0)) );
                ])
            kernels
        in
        Printf.eprintf
          "[sim %-8s %7d kcycles  fast %6.2f s (%5.2f Mcyc/s)  ref %6.2f s  \
           %4.2fx]\n"
          S.id (!t_cycles / 1000) !t_fast
          (per_sec !t_cycles !t_fast /. 1e6)
          !t_ref
          (if !t_fast > 0.0 then !t_ref /. !t_fast else 0.0);
        ( S.id, !t_cycles, !t_fast, !t_ref,
          J.Obj
            [
              ("scheme", J.Str S.id);
              ("cycles", J.Int !t_cycles);
              ("seconds", seconds !t_fast);
              ("cycles_per_sec", J.Float (round1 (per_sec !t_cycles !t_fast)));
              ("ref_seconds", seconds !t_ref);
              ( "ref_cycles_per_sec",
                J.Float (round1 (per_sec !t_cycles !t_ref)) );
              ( "speedup",
                J.Float
                  (round2 (if !t_fast > 0.0 then !t_ref /. !t_fast else 0.0))
              );
              ("kernels", J.Arr rows);
            ] ))
      Gpr_backend.Registry.all
  in
  let cycles =
    List.fold_left (fun a (_, c, _, _, _) -> a + c) 0 schemes
  in
  let fast = List.fold_left (fun a (_, _, f, _, _) -> a +. f) 0.0 schemes in
  let slow = List.fold_left (fun a (_, _, _, r, _) -> a +. r) 0.0 schemes in
  Printf.eprintf
    "[sim total    %7d kcycles  fast %6.2f s (%5.2f Mcyc/s)  ref %6.2f s  \
     %4.2fx]\n%!"
    (cycles / 1000) fast
    (per_sec cycles fast /. 1e6)
    slow
    (if fast > 0.0 then slow /. fast else 0.0);
  J.write_file "BENCH_sim.json"
    (J.Obj
       [
         ("host", J.Str (Unix.gethostname ()));
         ("waves", J.Int waves);
         ("kernels", J.Int (List.length kernels));
         ("schemes", J.Arr (List.map (fun (_, _, _, _, j) -> j) schemes));
         ( "total",
           J.Obj
             [
               ("cycles", J.Int cycles);
               ("seconds", seconds fast);
               ("cycles_per_sec", J.Float (round1 (per_sec cycles fast)));
               ("ref_seconds", seconds slow);
               ( "speedup",
                 J.Float
                   (round2 (if fast > 0.0 then slow /. fast else 0.0)) );
             ] );
       ])

(* ---------------------------------------------------------------- *)
(* Dataflow-analysis benchmark: per-kernel solve time for the interval
   analysis alone vs the full reduced product (known-bits, congruence
   and demanded-bits ride on top of the same e-SSA form), plus the
   narrow-integer deltas the product buys, written to
   BENCH_analysis.json. *)

let run_analysis_bench () =
  let module Wd = Gpr_analysis.Width in
  let module R = Gpr_analysis.Range in
  let module E = Gpr_core.Experiments in
  let reps = 3 in
  let time_us f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps
  in
  let round1 x = Float.round (x *. 10.0) /. 10.0 in
  let meta = E.width_report_data () in
  let rows =
    List.map
      (fun (w : Gpr_workloads.Workload.t) ->
        let interval_us =
          time_us (fun () -> R.analyze w.kernel ~launch:w.launch)
        in
        let product_us =
          time_us (fun () -> Wd.analyze w.kernel ~launch:w.launch)
        in
        let m =
          List.find (fun (r : E.width_row) -> r.wr_name = w.name) meta
        in
        Printf.eprintf
          "[analysis %-10s intervals %8.1f us  product %8.1f us  narrow %4d \
           -> %4d  bits saved %5d]\n"
          w.name interval_us product_us m.wr_interval_narrow
          m.wr_product_narrow m.wr_bits_saved;
        (interval_us, product_us, m))
      Gpr_workloads.Registry.all
  in
  let sum f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let sumi f = List.fold_left (fun a r -> a + f r) 0 rows in
  let t_interval = sum (fun (i, _, _) -> i)
  and t_product = sum (fun (_, p, _) -> p) in
  Printf.eprintf
    "[analysis total     intervals %8.1f us  product %8.1f us  narrow %4d \
     -> %4d  bits saved %5d]\n%!"
    t_interval t_product
    (sumi (fun (_, _, m) -> m.E.wr_interval_narrow))
    (sumi (fun (_, _, m) -> m.E.wr_product_narrow))
    (sumi (fun (_, _, m) -> m.E.wr_bits_saved));
  J.write_file "BENCH_analysis.json"
    (J.Obj
       [
         ("kernels", J.Int (List.length rows));
         ( "per_kernel",
           J.Arr
             (List.map
                (fun (ius, pus, (m : E.width_row)) ->
                  J.Obj
                    [
                      ("kernel", J.Str m.E.wr_name);
                      ("int_vars", J.Int m.E.wr_int_vars);
                      ("interval_us", J.Float (round1 ius));
                      ("product_us", J.Float (round1 pus));
                      ("narrow_interval", J.Int m.E.wr_interval_narrow);
                      ("narrow_product", J.Int m.E.wr_product_narrow);
                      ( "delta",
                        J.Int (m.E.wr_product_narrow - m.E.wr_interval_narrow)
                      );
                      ("bits_saved", J.Int m.E.wr_bits_saved);
                    ])
                rows) );
         ( "total",
           J.Obj
             [
               ("interval_us", J.Float (round1 t_interval));
               ("product_us", J.Float (round1 t_product));
               ( "narrow_interval",
                 J.Int (sumi (fun (_, _, m) -> m.E.wr_interval_narrow)) );
               ( "narrow_product",
                 J.Int (sumi (fun (_, _, m) -> m.E.wr_product_narrow)) );
               ( "bits_saved",
                 J.Int (sumi (fun (_, _, m) -> m.E.wr_bits_saved)) );
             ] );
       ])

(* ---------------------------------------------------------------- *)
(* Co-scheduling benchmark: registry kernel pairs co-resident on one
   SM under baseline vs slice for each dispatch policy, written to
   BENCH_coloc.json.  The artifact is the ISSUE's acceptance record:
   at least one pair must co-schedule strictly more resident blocks
   under the compressed file AND improve aggregate per-SM IPC. *)

let run_coloc_bench () =
  let module W = Gpr_workloads.Workload in
  let module M = Gpr_sim.Sim_multi in
  let module Q = Gpr_quality.Quality in
  let pairs = [ ("Hotspot", "DWT2D"); ("CFD", "GICOV") ] in
  let policies = [ "fifo"; "binpack" ] in
  let find n =
    match
      List.find_opt
        (fun (w : W.t) -> String.lowercase_ascii w.name = String.lowercase_ascii n)
        Gpr_workloads.Registry.all
    with
    | Some w -> w
    | None ->
      Printf.eprintf "--coloc: kernel %s not in the registry\n" n;
      exit 2
  in
  let scheme id =
    match Gpr_backend.Registry.find id with
    | Some b -> b
    | None ->
      Printf.eprintf "--coloc: backend %s not registered\n" id;
      exit 2
  in
  let base = scheme "baseline" and slice = scheme "slice" in
  let round2 x = Float.round (x *. 100.0) /. 100.0 in
  let round3 x = Float.round (x *. 1000.0) /. 1000.0 in
  let demonstrated = ref false in
  let records =
    List.concat_map
      (fun (a, b) ->
        let ws = [ find a; find b ] in
        let cs = List.map Gpr_core.Compress.analyze ws in
        List.map
          (fun pname ->
            let policy =
              match M.find_policy pname with
              | Some p -> p
              | None -> assert false
            in
            let co s = Gpr_core.Simulate.colocate ~policy s cs Q.High in
            let rb = co base and rs = co slice in
            let agg (r : M.result) = r.M.r_stats.Gpr_sim.Sim.sm_ipc in
            let gain =
              if agg rb > 0.0 then (agg rs /. agg rb -. 1.0) *. 100.0 else 0.0
            in
            let wins =
              rs.M.r_peak_resident_blocks > rb.M.r_peak_resident_blocks
              && agg rs > agg rb
            in
            if wins then demonstrated := true;
            Printf.eprintf
              "[coloc %-10s+%-10s %-7s blocks %d -> %d  sm_ipc %6.2f -> \
               %6.2f (%+.1f%%)  fair %.3f -> %.3f]\n%!"
              a b pname rb.M.r_peak_resident_blocks
              rs.M.r_peak_resident_blocks (agg rb) (agg rs) gain
              rb.M.r_fairness rs.M.r_fairness;
            let side tag (r : M.result) =
              ( tag,
                J.Obj
                  [
                    ("peak_resident_blocks", J.Int r.M.r_peak_resident_blocks);
                    ("peak_resident_warps", J.Int r.M.r_peak_resident_warps);
                    ("sm_ipc", J.Float (round2 (agg r)));
                    ("co_resident_cycles", J.Int r.M.r_co_resident_cycles);
                    ("admissions", J.Int r.M.r_admissions);
                    ("fairness", J.Float (round3 r.M.r_fairness));
                    ( "tenants",
                      J.Arr
                        (Array.to_list
                           (Array.map
                              (fun (t : M.tenant_stats) ->
                                J.Obj
                                  [
                                    ("kernel", J.Str t.M.ts_label);
                                    ( "peak_resident",
                                      J.Int t.M.ts_peak_resident );
                                    ("ipc", J.Float (round2 t.M.ts_ipc));
                                    ( "issue_share",
                                      J.Float (round3 t.M.ts_issue_share) );
                                  ])
                              r.M.r_tenants)) );
                  ] )
            in
            J.Obj
              [
                ("kernels", J.Arr [ J.Str a; J.Str b ]);
                ("policy", J.Str pname);
                ("ipc_gain_pct", J.Float (round2 gain));
                ("demonstrates_coresidency", J.Bool wins);
                side "baseline" rb;
                side "slice" rs;
              ])
          policies)
      pairs
  in
  if not !demonstrated then begin
    Printf.eprintf
      "--coloc: no pair/policy co-schedules more blocks AND improves \
       aggregate IPC under slice\n";
    exit 1
  end;
  J.write_file "BENCH_coloc.json"
    (J.Obj
       [
         ("pairs", J.Int (List.length pairs));
         ("policies", J.Arr (List.map (fun p -> J.Str p) policies));
         ("demonstrated", J.Bool !demonstrated);
         ("records", J.Arr records);
       ])

(* ---------------------------------------------------------------- *)
(* Fault-injection campaign: the growing defect population swept under
   every registered scheme, written to BENCH_faults.json.  The artifact
   is the ISSUE's acceptance record: slice and rrcd must absorb
   strictly more faults (mean per fuzz case before its first output
   corruption) than the conventional baseline file. *)

let run_faults_bench () =
  let module F = Gpr_check.Faults in
  let backends = Gpr_backend.Registry.names in
  let t0 = Unix.gettimeofday () in
  let results =
    F.run
      ~progress:(fun ~scheme ~injected ~corrupted ->
        Printf.eprintf "[faults %-8s %2d injected: %s]\n%!" scheme injected
          (if corrupted then "corruption" else "clean"))
      ~backends ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let absorbed name =
    match List.find_opt (fun r -> r.F.fr_scheme = name) results with
    | Some r -> r.F.fr_absorbed_mean
    | None ->
      Printf.eprintf "--faults: scheme %s missing from the campaign\n" name;
      exit 2
  in
  let base = absorbed "baseline" in
  let demonstrated = absorbed "slice" > base && absorbed "rrcd" > base in
  List.iter
    (fun (r : F.scheme_result) ->
      Printf.eprintf "[faults %-8s mean %4.1f  min %2d  first %s]\n%!"
        r.F.fr_scheme r.F.fr_absorbed_mean r.F.fr_absorbed
        (match r.F.fr_first_corrupt with
        | Some k -> string_of_int k
        | None -> "none"))
    results;
  if not demonstrated then begin
    Printf.eprintf
      "--faults: slice/rrcd do not absorb strictly more faults than the \
       baseline file\n";
    exit 1
  end;
  let round2 x = Float.round (x *. 100.0) /. 100.0 in
  J.write_file "BENCH_faults.json"
    (J.Obj
       [
         ("schemes", J.Arr (List.map (fun b -> J.Str b) backends));
         ("demonstrated", J.Bool demonstrated);
         ("elapsed_seconds", seconds elapsed);
         ( "results",
           J.Arr
             (List.map
                (fun (r : F.scheme_result) ->
                  J.Obj
                    [
                      ("scheme", J.Str r.F.fr_scheme);
                      ("cases", J.Int r.F.fr_cases);
                      ("max_faults", J.Int r.F.fr_max_faults);
                      ( "first_corrupt",
                        match r.F.fr_first_corrupt with
                        | Some k -> J.Int k
                        | None -> J.Null );
                      ("absorbed_min", J.Int r.F.fr_absorbed);
                      ( "absorbed_mean",
                        J.Float (round2 r.F.fr_absorbed_mean) );
                    ])
                results) );
       ])

(* ---------------------------------------------------------------- *)
(* Static verifier benchmark: per-pass time over the Table 4 registry
   plus the diagnostic counts, written to BENCH_lint.json so lint
   throughput regressions are visible alongside the engine timings. *)

let lint_buffer_len (w : Gpr_workloads.Workload.t) =
  let data = w.data () in
  fun name ->
    match List.assoc_opt name w.shared with
    | Some n -> Some n
    | None -> (
      match List.assoc_opt name data with
      | Some (Gpr_exec.Exec.I_data a) -> Some (Array.length a)
      | Some (Gpr_exec.Exec.F_data a) -> Some (Array.length a)
      | None -> None)

let run_lint_bench () =
  let module L = Gpr_lint.Lint in
  let module D = Gpr_lint.Diag in
  let workloads = Gpr_workloads.Registry.all in
  let reps = 5 in
  let t0 = Unix.gettimeofday () in
  let ctxs =
    List.map
      (fun (w : Gpr_workloads.Workload.t) ->
        L.make_ctx ~buffer_len:(lint_buffer_len w) w.kernel ~launch:w.launch)
      workloads
  in
  let ctx_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let per_pass =
    List.map
      (fun (p : L.pass) ->
        let diags = List.concat_map p.p_run ctxs in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          List.iter (fun ctx -> ignore (p.p_run ctx)) ctxs
        done;
        let us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps in
        (p.p_name, us, List.length diags))
      L.passes
  in
  let all = List.concat_map L.run ctxs in
  let count sev = D.count sev all in
  (* Timings are nondeterministic, so like the engine timings they go to
     stderr — stdout stays byte-comparable across runs. *)
  List.iter
    (fun (name, us, n) ->
      Printf.eprintf "[lint %-12s %10.1f us  %4d diagnostic(s)]\n" name us n)
    per_pass;
  Printf.eprintf
    "[lint: %d kernels, %d error(s), %d warning(s), %d info]\n"
    (List.length workloads) (count D.Error) (count D.Warning) (count D.Info);
  J.write_file "BENCH_lint.json"
    (J.Obj
       [
         ("kernels", J.Int (List.length workloads));
         ("make_ctx_us", J.Float (Float.round (ctx_us *. 10.0) /. 10.0));
         ( "diagnostics",
           J.Obj
             [
               ("error", J.Int (count D.Error));
               ("warning", J.Int (count D.Warning));
               ("info", J.Int (count D.Info));
             ] );
         ( "passes",
           J.Arr
             (List.map
                (fun (name, us, n) ->
                  J.Obj
                    [
                      ("pass", J.Str name);
                      ("us", J.Float (Float.round (us *. 10.0) /. 10.0));
                      ("diags", J.Int n);
                    ])
                per_pass) );
       ])

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "dune exec bench/main.exe -- [-j N] [--cache-dir DIR] [--no-micro]\n\
    \                            [--sim-throughput [--sim-kernels A,B]]\n\
    \                            [--analysis] [--coloc] [--faults]";
  if !sim_throughput then begin
    run_sim_bench ();
    exit 0
  end;
  if !analysis then begin
    run_analysis_bench ();
    exit 0
  end;
  if !coloc then begin
    (if !cache_dir <> "" then begin
       let s = Gpr_engine.Store.create ~dir:!cache_dir () in
       Gpr_core.Compress.set_store (Some s);
       Gpr_core.Simulate.set_store (Some s)
     end);
    run_coloc_bench ();
    exit 0
  end;
  if !faults then begin
    run_faults_bench ();
    exit 0
  end;
  let jobs =
    if !jobs <= 0 then Gpr_engine.Pool.default_jobs () else !jobs
  in
  (* Metrics feed BENCH_obs.json; enabling them perturbs nothing the
     artifacts compare (stdout tables are metric-free). *)
  Gpr_obs.Metrics.set_enabled true;
  let cache =
    if !cache_dir = "" then None
    else begin
      let s = Gpr_engine.Store.create ~dir:!cache_dir () in
      Gpr_core.Compress.set_store (Some s);
      Gpr_core.Simulate.set_store (Some s);
      Some s
    end
  in
  print_endline
    "Reproduction of 'A GPU Register File using Static Data Compression'\n\
     (Angerd, Sintorn, Stenstrom - ICPP 2020).  One section per table and\n\
     figure of the paper; see EXPERIMENTS.md for the paper-vs-measured\n\
     comparison.";
  let t0 = Unix.gettimeofday () in
  let timed, backend_entries =
    Gpr_engine.Pool.with_pool ~jobs (fun pool ->
        Gpr_core.Experiments.use_pool (Some pool);
        Fun.protect
          ~finally:(fun () -> Gpr_core.Experiments.use_pool None)
          (fun () ->
             let timed =
               List.map
                 (fun (name, f) ->
                    let s0 = Unix.gettimeofday () in
                    f ();
                    (name, Unix.gettimeofday () -. s0))
                 sections
             in
             let b0 = Unix.gettimeofday () in
             let entries = run_backend_bench () in
             (timed @ [ ("backend", Unix.gettimeofday () -. b0) ], entries)))
  in
  let lint_timed =
    let s0 = Unix.gettimeofday () in
    run_lint_bench ();
    [ ("lint", Unix.gettimeofday () -. s0) ]
  in
  let micro_timed =
    if !no_micro then []
    else begin
      let s0 = Unix.gettimeofday () in
      run_micro ();
      [ ("micro", Unix.gettimeofday () -. s0) ]
    end
  in
  let total = Unix.gettimeofday () -. t0 in
  let timed = timed @ lint_timed @ micro_timed in
  Printf.eprintf "\n[engine: %d job%s%s]\n" jobs
    (if jobs = 1 then "" else "s")
    (match cache with
     | None -> ""
     | Some s ->
       Printf.sprintf "; cache %s: %d hits, %d misses"
         (Gpr_engine.Store.dir s) (Gpr_engine.Store.hits s)
         (Gpr_engine.Store.misses s));
  List.iter
    (fun (name, secs) -> Printf.eprintf "[section %-10s %8.2f s]\n" name secs)
    timed;
  List.iter
    (fun (name, secs, kernels, mean_delta, stalls) ->
      Printf.eprintf
        "[backend %-8s %8.2f s  %2d kernels  mean IPC vs baseline %+.1f%%  \
         stalls %s]\n"
        name secs kernels mean_delta
        (Gpr_obs.Stall.pct_string stalls))
    backend_entries;
  Printf.eprintf "[evaluation pipeline: %.1f s]\n%!" total;
  write_engine_json ~jobs ~cache ~timed ~total;
  write_backend_json backend_entries;
  write_obs_json backend_entries
