lib/gpr_alloc/alloc.ml: Array Gpr_analysis Gpr_arch Gpr_isa Gpr_util Hashtbl List
