lib/gpr_alloc/alloc.mli: Gpr_isa Hashtbl
