lib/gpr_exec/trace.ml: Array Gpr_isa List
