lib/gpr_exec/exec.mli: Gpr_isa Trace
