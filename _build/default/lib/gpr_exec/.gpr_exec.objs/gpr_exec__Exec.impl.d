lib/gpr_exec/exec.ml: Array Float Gpr_analysis Gpr_isa Gpr_util Int32 List Printf Trace
