(** Dynamic warp-instruction traces.

    The functional executor ({!Exec}) emits one record per executed warp
    instruction; the timing simulator ({!Gpr_sim}) replays them through
    the pipeline model.  Records reference *virtual* registers — the
    simulator maps them to physical registers through the allocation
    produced by {!Gpr_alloc}. *)

open Gpr_isa.Types

type mem_access = {
  m_space : space;
  m_addresses : int array;
      (** byte address per active lane, in lane order (length = number of
          active lanes) *)
}

type item = {
  t_warp : int;        (** warp id within its block *)
  t_block_id : int;    (** linear CTA index *)
  t_pc : int;          (** static instruction id (unique per site) *)
  t_unit : unit_class;
  t_srcs : int list;   (** virtual registers read (non-predicate) *)
  t_dst : int option;  (** virtual register written (non-predicate) *)
  t_dst_float : bool;  (** written register is F32 (may need conversion) *)
  t_active : int;      (** active-lane count *)
  t_mem : mem_access option;
}

type t = {
  items : item array;          (** program order per warp, interleaved *)
  warps_per_block : int;
  num_blocks : int;
  thread_instructions : int;   (** total dynamic thread instructions *)
}

let warp_items t ~block_id ~warp =
  Array.to_list t.items
  |> List.filter (fun i -> i.t_block_id = block_id && i.t_warp = warp)

let num_warp_instructions t = Array.length t.items
