(** Rodinia kernels (Table 4, group 2, %-deviation metric): Hotspot and
    Hotspot3D thermal stencils, the DWT2D Haar wavelet, and the CFD
    Euler-flux kernel.  Re-implemented in mini-PTX with the same
    algorithmic structure and operand mix as the originals — including
    the thread coarsening the real kernels use (Hotspot's pyramid
    expansion processes a tile per thread; CFD keeps the full
    conservative state and fluxes of four faces live), which is what
    gives them their high register pressure.  Problem sizes are scaled
    down so the full evaluation runs in minutes. *)

open Gpr_isa
open Gpr_isa.Types
open Builder
module Q = Gpr_quality.Quality
module E = Gpr_exec.Exec

let clamp_coord b v hi = imin b ~$(imax b v (ci 0)) (ci hi)

(* ------------------------------------------------------------------ *)
(* Hotspot: 2-D 5-point thermal stencil, one 2x2 cell tile per thread
   (as the original's pyramid expansion does).  The four cell
   temperatures, four power values and the shared halo reads are live
   together; loop indices and coordinates are the narrow integers that
   make the int framework matter here. *)

let hs_dim = 64
let hs_cells = hs_dim * hs_dim
let hs_threads = hs_cells / 4  (* 2x2 tile per thread *)

let hotspot_kernel () =
  let b = create ~name:"hotspot" in
  let temp = global_buffer b F32 "temp" in
  let power = global_buffer b F32 "power" in
  let out = global_buffer b F32 "temp_out" in
  let step = param_f32 b "step" in
  let rx = param_f32 b "rx" in
  let rz = param_f32 b "rz" in
  let amb = param_f32 b "amb" in
  let half = hs_dim / 2 in
  let gid, bx, by = Glib.pixel_xy b ~width:half in
  ignore gid;
  let x0 = ishl b ~$bx (ci 1) in
  let y0 = ishl b ~$by (ci 1) in
  let cell_at xs ys =
    let xc = clamp_coord b xs (hs_dim - 1) in
    let yc = clamp_coord b ys (hs_dim - 1) in
    imad b ~$yc (ci hs_dim) ~$xc
  in
  (* Load the 2x2 tile of temperatures and powers: all eight stay live
     across the whole stencil evaluation. *)
  let idx00 = cell_at ~$x0 ~$y0 in
  let idx10 = cell_at ~$(iadd b ~$x0 (ci 1)) ~$y0 in
  let idx01 = cell_at ~$x0 ~$(iadd b ~$y0 (ci 1)) in
  let idx11 = cell_at ~$(iadd b ~$x0 (ci 1)) ~$(iadd b ~$y0 (ci 1)) in
  let t00 = ld b temp ~$idx00 and t10 = ld b temp ~$idx10 in
  let t01 = ld b temp ~$idx01 and t11 = ld b temp ~$idx11 in
  let p00 = ld b power ~$idx00 and p10 = ld b power ~$idx10 in
  let p01 = ld b power ~$idx01 and p11 = ld b power ~$idx11 in
  (* Halo reads around the tile (8 values, all live with the tile). *)
  let halo dx dy =
    ld b temp ~$(cell_at ~$(iadd b ~$x0 (ci dx)) ~$(iadd b ~$y0 (ci dy)))
  in
  let hn0 = halo 0 (-1) and hn1 = halo 1 (-1) in
  let hs0 = halo 0 2 and hs1 = halo 1 2 in
  let hw0 = halo (-1) 0 and hw1 = halo (-1) 1 in
  let he0 = halo 2 0 and he1 = halo 2 1 in
  let update t0 p0 north south east west =
    let lap =
      let sum = fadd b ~$(fadd b north south) ~$(fadd b east west) in
      ffma b t0 (cf (-4.0)) ~$sum
    in
    let drive = ffma b p0 ~$rx ~$(fmul b ~$lap (cf 0.25)) in
    let cool = fmul b ~$(fsub b ~$amb t0) ~$rz in
    let delta = fmul b ~$(fadd b ~$drive ~$cool) ~$step in
    fadd b t0 ~$delta
  in
  let n00 = update ~$t00 ~$p00 ~$hn0 ~$t01 ~$t10 ~$hw0 in
  let n10 = update ~$t10 ~$p10 ~$hn1 ~$t11 ~$he0 ~$t00 in
  let n01 = update ~$t01 ~$p01 ~$t00 ~$hs0 ~$t11 ~$hw1 in
  let n11 = update ~$t11 ~$p11 ~$t10 ~$hs1 ~$he1 ~$t01 in
  st b out ~$idx00 ~$n00;
  st b out ~$idx10 ~$n10;
  st b out ~$idx01 ~$n01;
  st b out ~$idx11 ~$n11;
  finish b

let hotspot : Workload.t =
  {
    name = "Hotspot";
    group = 2;
    metric = Q.M_deviation;
    kernel = hotspot_kernel ();
    launch = launch_1d ~block:256 ~grid:(hs_threads / 256);
    params =
      [| E.P_float 0.25; E.P_float 0.125; E.P_float 0.0625; E.P_float 0.5 |];
    data =
      (fun () ->
         [ ("temp", E.F_data (Inputs.qfloats ~seed:301 ~n:hs_cells));
           ("power", E.F_data (Inputs.qfloats ~seed:302 ~n:hs_cells));
           ("temp_out", E.F_data (Inputs.zeros_f hs_cells)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_floats "temp_out";
    paper_regs = 31;
  }

(* ------------------------------------------------------------------ *)
(* Hotspot3D: 7-point stencil on a 32x32x16 volume, two z-levels per
   thread (the original's z-coarsening).  Both cells' neighbourhoods
   are live together. *)

let h3_dim = 32
let h3_depth = 16
let h3_cells = h3_dim * h3_dim * h3_depth
let h3_coarsen = 4  (* z-levels per thread *)
let h3_threads = h3_cells / h3_coarsen

let hotspot3d_kernel () =
  let b = create ~name:"hotspot3d" in
  let temp = global_buffer b F32 "t3d" in
  let power = global_buffer b F32 "p3d" in
  let out = global_buffer b F32 "t3d_out" in
  let sdc = param_f32 b "sdc" in
  let amb = param_f32 b "amb" in
  let gid = global_thread_id_x b in
  let plane = h3_dim * h3_dim in
  let zquad = idiv b ~$gid (ci plane) in
  let rest = irem b ~$gid (ci plane) in
  let y = idiv b ~$rest (ci h3_dim) in
  let x = irem b ~$rest (ci h3_dim) in
  let zbase = imul b ~$zquad (ci h3_coarsen) in
  let zs = Array.init h3_coarsen (fun k -> iadd b ~$zbase (ci k)) in
  let at xs ys zv =
    let xc = clamp_coord b xs (h3_dim - 1) in
    let yc = clamp_coord b ys (h3_dim - 1) in
    let zc = clamp_coord b zv (h3_depth - 1) in
    ld b temp ~$(imad b ~$zc (ci plane) ~$(imad b ~$yc (ci h3_dim) ~$xc))
  in
  let idx_of zv = imad b zv (ci plane) ~$(imad b ~$y (ci h3_dim) ~$x) in
  let idx = Array.map (fun z -> idx_of ~$z) zs in
  (* The whole z-column of temperatures and powers stays live, plus the
     lateral neighbours of every level. *)
  let t = Array.map (fun i -> ld b temp ~$i) idx in
  let p = Array.map (fun i -> ld b power ~$i) idx in
  let xe = iadd b ~$x (ci 1) and xw = iadd b ~$x (ci (-1)) in
  let yn = iadd b ~$y (ci 1) and ysb = iadd b ~$y (ci (-1)) in
  let east = Array.map (fun z -> at ~$xe ~$y ~$z) zs in
  let west = Array.map (fun z -> at ~$xw ~$y ~$z) zs in
  let north = Array.map (fun z -> at ~$x ~$yn ~$z) zs in
  let south = Array.map (fun z -> at ~$x ~$ysb ~$z) zs in
  let below = at ~$x ~$y ~$(iadd b ~$zbase (ci (-1))) in
  let above = at ~$x ~$y ~$(iadd b ~$zbase (ci h3_coarsen)) in
  let cxw = 0.13 and cyw = 0.09 and czw = 0.05 in
  let centre = -2.0 *. (cxw +. cyw +. czw) in
  let cell t0 p0 east west north south down up =
    let acc = fmul b ~$(fadd b east west) (cf cxw) in
    let acc = ffma b ~$(fadd b north south) (cf cyw) ~$acc in
    let acc = ffma b ~$(fadd b down up) (cf czw) ~$acc in
    let acc = ffma b t0 (cf centre) ~$acc in
    let acc = ffma b p0 ~$sdc ~$acc in
    let cool = fmul b ~$(fsub b ~$amb t0) (cf 0.02) in
    fadd b t0 ~$(fadd b ~$acc ~$cool)
  in
  for k = 0 to h3_coarsen - 1 do
    let down = if k = 0 then below else t.(k - 1) in
    let up = if k = h3_coarsen - 1 then above else t.(k + 1) in
    let r =
      cell ~$(t.(k)) ~$(p.(k)) ~$(east.(k)) ~$(west.(k)) ~$(north.(k))
        ~$(south.(k)) ~$down ~$up
    in
    st b out ~$(idx.(k)) ~$r
  done;
  finish b

let hotspot3d : Workload.t =
  {
    name = "Hotspot3D";
    group = 2;
    metric = Q.M_deviation;
    kernel = hotspot3d_kernel ();
    launch = launch_1d ~block:256 ~grid:(h3_threads / 256);
    params = [| E.P_float 0.0625; E.P_float 0.5 |];
    data =
      (fun () ->
         [ ("t3d", E.F_data (Inputs.qfloats ~seed:311 ~n:h3_cells));
           ("p3d", E.F_data (Inputs.qfloats ~seed:312 ~n:h3_cells));
           ("t3d_out", E.F_data (Inputs.zeros_f h3_cells)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_floats "t3d_out";
    paper_regs = 42;
  }

(* ------------------------------------------------------------------ *)
(* DWT2D: two levels of the 2-D Haar transform fused in one kernel.
   Each thread transforms a 4x4 input block: sixteen pixels are live
   through level 1, then the four level-1 LL coefficients go through a
   second 2x2 transform.  Output is scattered into the usual quadrant
   pyramid — almost pure narrow index arithmetic. *)

let dwt_dim = 96
let dwt_rows = 48
let dwt_threads = dwt_dim * dwt_rows / 32  (* two 4x4 blocks per thread *)

let haar4 b a c d e =
  (* Returns (ll, lh, hl, hh) of a 2x2 block [a c; d e]. *)
  let sum = fadd b ~$(fadd b a c) ~$(fadd b d e) in
  let ll = fmul b ~$sum (cf 0.25) in
  let lh = fmul b ~$(fsub b ~$(fadd b a c) ~$(fadd b d e)) (cf 0.25) in
  let hl = fmul b ~$(fsub b ~$(fadd b a d) ~$(fadd b c e)) (cf 0.25) in
  let hh = fmul b ~$(fsub b ~$(fadd b a e) ~$(fadd b c d)) (cf 0.25) in
  (ll, lh, hl, hh)

let dwt2d_kernel () =
  let b = create ~name:"dwt2d" in
  let src = global_buffer b F32 "dwt_in" in
  let dst = global_buffer b F32 "dwt_out" in
  let gid = global_thread_id_x b in
  if_then b (ige b ~$gid (ci dwt_threads)) (fun () -> ret b);
  let pair_cols = dwt_dim / 8 in  (* 4x4 block pairs per row *)
  let pxc = irem b ~$gid (ci pair_cols) in
  let by = idiv b ~$gid (ci pair_cols) in
  let store qx_scale qy_scale scale_div bxv byv v =
    (* Position within a quadrant whose origin is
       (qx_scale * width/div, qy_scale * height/div). *)
    let xs = iadd b bxv (ci (qx_scale * (dwt_dim / scale_div))) in
    let ys = iadd b byv (ci (qy_scale * (dwt_rows / scale_div))) in
    st b dst ~$(imad b ~$ys (ci dwt_dim) ~$xs) v
  in
  let transform_block bx =
    let x0 = ishl b ~$bx (ci 2) in
    let y0 = ishl b ~$by (ci 2) in
    let at dx dy =
      ld b src
        ~$(imad b ~$(iadd b ~$y0 (ci dy)) (ci dwt_dim) ~$(iadd b ~$x0 (ci dx)))
    in
    (* Load the 4x4 block; all sixteen pixels live through level 1. *)
    let px = Array.init 16 (fun i -> at (i mod 4) (i / 4)) in
    let get i j = ~$(px.((j * 4) + i)) in
    let l1 =
      Array.init 4 (fun q ->
          let qx = (q mod 2) * 2 and qy = q / 2 * 2 in
          haar4 b (get qx qy) (get (qx + 1) qy) (get qx (qy + 1))
            (get (qx + 1) (qy + 1)))
    in
    let ll q = let l, _, _, _ = l1.(q) in l in
    let ll2, lh2, hl2, hh2 = haar4 b ~$(ll 0) ~$(ll 1) ~$(ll 2) ~$(ll 3) in
    (bx, l1, ll2, lh2, hl2, hh2)
  in
  (* Both blocks fully transformed before any store: their coefficient
     sets are live together (as in the original's line-pair pipeline). *)
  let bx_a = ishl b ~$pxc (ci 1) in
  let bx_b = iadd b ~$bx_a (ci 1) in
  let results = [ transform_block bx_a; transform_block bx_b ] in
  List.iter
    (fun (bx, l1, ll2, lh2, hl2, hh2) ->
       Array.iteri
         (fun q (_, lh, hl, hh) ->
            let qx = q mod 2 and qy = q / 2 in
            let sx = iadd b ~$(ishl b ~$bx (ci 1)) (ci qx) in
            let sy = iadd b ~$(ishl b ~$by (ci 1)) (ci qy) in
            store 1 0 2 ~$sx ~$sy ~$lh;
            store 0 1 2 ~$sx ~$sy ~$hl;
            store 1 1 2 ~$sx ~$sy ~$hh)
         l1;
       store 0 0 4 ~$bx ~$by ~$ll2;
       store 1 0 4 ~$bx ~$by ~$lh2;
       store 0 1 4 ~$bx ~$by ~$hl2;
       store 1 1 4 ~$bx ~$by ~$hh2)
    results;
  finish b

let dwt2d : Workload.t =
  {
    name = "DWT2D";
    group = 2;
    metric = Q.M_deviation;
    kernel = dwt2d_kernel ();
    launch = launch_1d ~block:192 ~grid:((dwt_threads + 191) / 192);
    params = [||];
    data =
      (fun () ->
         [ ("dwt_in", E.F_data (Inputs.qfloats ~seed:321 ~n:(dwt_dim * dwt_rows)));
           ("dwt_out", E.F_data (Inputs.zeros_f (dwt_dim * dwt_rows))) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_floats "dwt_out";
    paper_regs = 38;
  }

(* ------------------------------------------------------------------ *)
(* CFD: the Euler-flux kernel (compute_flux).  Per element: the full
   conservative state (rho, mx, my, E) of the element and of four
   neighbours, pressures, sound speeds, and Rusanov flux contributions
   for all four equations are live together — the largest register
   footprint of the suite (60 in the paper). *)

let cfd_elems = 2048

let cfd_kernel () =
  let b = create ~name:"cfd" in
  let rho = global_buffer b F32 "rho" in
  let mx = global_buffer b F32 "mx" in
  let my = global_buffer b F32 "my" in
  let mz = global_buffer b F32 "mz" in
  let en = global_buffer b F32 "energy" in
  let nb = global_buffer b S32 ~range:(0, cfd_elems - 1) "neighbours" in
  let rho_out = global_buffer b F32 "rho_out" in
  let mx_out = global_buffer b F32 "mx_out" in
  let my_out = global_buffer b F32 "my_out" in
  let mz_out = global_buffer b F32 "mz_out" in
  let en_out = global_buffer b F32 "en_out" in
  let gid = global_thread_id_x b in
  (* Grid over-provisions threads; out-of-range threads exit early, as
     in the original kernel. *)
  if_then b (ige b ~$gid (ci cfd_elems)) (fun () -> ret b);
  let gamma_m1 = 0.4 in
  let load_state idx =
    (ld b rho idx, ld b mx idx, ld b my idx, ld b mz idx, ld b en idx)
  in
  let derived (r, u, v, w_, e) =
    let inv_r = frcp b ~$r in
    let m2 =
      fadd b ~$(fadd b ~$(fmul b ~$u ~$u) ~$(fmul b ~$v ~$v))
        ~$(fmul b ~$w_ ~$w_)
    in
    let ke = fmul b ~$m2 ~$(fmul b (cf 0.5) ~$inv_r) in
    let p = fmul b ~$(fsub b ~$e ~$ke) (cf gamma_m1) in
    let c = fsqrt b ~$(fmul b (cf 1.4) ~$(fmul b ~$p ~$inv_r)) in
    (inv_r, p, c)
  in
  let (r0, u0, v0, w0v, e0) = load_state ~$gid in
  let inv0, p0, c0 = derived (r0, u0, v0, w0v, e0) in
  (* Software-pipelined form, as in the original: all four neighbour
     states and their derived quantities are loaded before any flux is
     computed, so they are live simultaneously. *)
  let nstate =
    Array.init 4 (fun k ->
        let nidx = ld b nb ~$(imad b ~$gid (ci 4) (ci k)) in
        let (rn, un, vn, wn_, enn) = load_state ~$nidx in
        let invn, pn, cn = derived (rn, un, vn, wn_, enn) in
        (rn, un, vn, wn_, enn, invn, pn, cn))
  in
  let acc_r = Stdlib.ref (mov b F32 (cf 0.0)) in
  let acc_u = Stdlib.ref (mov b F32 (cf 0.0)) in
  let acc_v = Stdlib.ref (mov b F32 (cf 0.0)) in
  let acc_w = Stdlib.ref (mov b F32 (cf 0.0)) in
  let acc_e = Stdlib.ref (mov b F32 (cf 0.0)) in
  for k = 0 to 3 do
    let (rn, un, vn, wn_, enn, invn, pn, cn) = nstate.(k) in
    (* Face normals cycle through 3-D directions. *)
    let nx, ny, nz =
      match k with
      | 0 -> (0.8, 0.6, 0.0)
      | 1 -> (0.0, 0.8, 0.6)
      | 2 -> (0.6, 0.0, 0.8)
      | _ -> (0.57735, 0.57735, 0.57735)
    in
    let vel_n inv_r n_u n_v n_w =
      let s = fmul b ~$(fmul b n_u (cf nx)) inv_r in
      let s = ffma b ~$(fmul b n_v (cf ny)) inv_r ~$s in
      ffma b ~$(fmul b n_w (cf nz)) inv_r ~$s
    in
    let w0 = vel_n ~$inv0 ~$u0 ~$v0 ~$w0v in
    let wn = vel_n ~$invn ~$un ~$vn ~$wn_ in
    let smax =
      fmax b ~$(fadd b ~$(fabs b ~$w0) ~$c0) ~$(fadd b ~$(fabs b ~$wn) ~$cn)
    in
    (* Rusanov flux for each conserved quantity:
       0.5 (F0 + Fn) - 0.5 smax (Qn - Q0). *)
    let rusanov f0 fn q0 qn =
      let avg = fmul b ~$(fadd b f0 fn) (cf 0.5) in
      let diff = fmul b ~$(fsub b qn q0) ~$smax in
      ffma b ~$diff (cf (-0.5)) ~$avg
    in
    let f0_r = fmul b ~$r0 ~$w0 and fn_r = fmul b ~$rn ~$wn in
    let f0_u = ffma b ~$u0 ~$w0 ~$(fmul b ~$p0 (cf nx)) in
    let fn_u = ffma b ~$un ~$wn ~$(fmul b ~$pn (cf nx)) in
    let f0_v = ffma b ~$v0 ~$w0 ~$(fmul b ~$p0 (cf ny)) in
    let fn_v = ffma b ~$vn ~$wn ~$(fmul b ~$pn (cf ny)) in
    let f0_w = ffma b ~$w0v ~$w0 ~$(fmul b ~$p0 (cf nz)) in
    let fn_w = ffma b ~$wn_ ~$wn ~$(fmul b ~$pn (cf nz)) in
    let h0 = fmul b ~$(fadd b ~$e0 ~$p0) ~$w0 in
    let hn = fmul b ~$(fadd b ~$enn ~$pn) ~$wn in
    acc_r := fadd b ~$(!acc_r) ~$(rusanov ~$f0_r ~$fn_r ~$r0 ~$rn);
    acc_u := fadd b ~$(!acc_u) ~$(rusanov ~$f0_u ~$fn_u ~$u0 ~$un);
    acc_v := fadd b ~$(!acc_v) ~$(rusanov ~$f0_v ~$fn_v ~$v0 ~$vn);
    acc_w := fadd b ~$(!acc_w) ~$(rusanov ~$f0_w ~$fn_w ~$w0v ~$wn_);
    acc_e := fadd b ~$(!acc_e) ~$(rusanov ~$h0 ~$hn ~$e0 ~$enn)
  done;
  let dt = 0.0005 in
  let update q acc = ffma b acc (cf (-.dt)) q in
  st b rho_out ~$gid ~$(update ~$r0 ~$(!acc_r));
  st b mx_out ~$gid ~$(update ~$u0 ~$(!acc_u));
  st b my_out ~$gid ~$(update ~$v0 ~$(!acc_v));
  st b mz_out ~$gid ~$(update ~$w0v ~$(!acc_w));
  st b en_out ~$gid ~$(update ~$e0 ~$(!acc_e));
  finish b

let cfd : Workload.t =
  {
    name = "CFD";
    group = 2;
    metric = Q.M_deviation;
    kernel = cfd_kernel ();
    launch = launch_1d ~block:192 ~grid:((cfd_elems + 191) / 192);
    params = [||];
    data =
      (fun () ->
         let rng = Gpr_util.Rng.create 333 in
         (* Mesh connectivity with the locality of the original
            fan-shaped mesh: faces connect to nearby elements, with a
            sparse sprinkling of medium-range edges. *)
         let neighbours =
           Array.init (cfd_elems * 4) (fun i ->
               let e = i / 4 in
               let k = i mod 4 in
               let near = [| -2; -1; 1; 2 |] in
               let d =
                 if Gpr_util.Rng.int rng 16 = 0 then
                   Gpr_util.Rng.int rng 128 - 64
                 else near.(k)
               in
               (e + d + cfd_elems) mod cfd_elems)
         in
         [ ("rho", E.F_data (Inputs.qfloats_range ~seed:331 ~n:cfd_elems ~lo:0.5 ~hi:1.5));
           ("mx", E.F_data (Inputs.qfloats_range ~seed:332 ~n:cfd_elems ~lo:(-0.5) ~hi:0.5));
           ("my", E.F_data (Inputs.qfloats_range ~seed:334 ~n:cfd_elems ~lo:(-0.5) ~hi:0.5));
           ("mz", E.F_data (Inputs.qfloats_range ~seed:336 ~n:cfd_elems ~lo:(-0.5) ~hi:0.5));
           ("energy", E.F_data (Inputs.qfloats_range ~seed:335 ~n:cfd_elems ~lo:2.0 ~hi:3.0));
           ("neighbours", E.I_data neighbours);
           ("rho_out", E.F_data (Inputs.zeros_f cfd_elems));
           ("mx_out", E.F_data (Inputs.zeros_f cfd_elems));
           ("my_out", E.F_data (Inputs.zeros_f cfd_elems));
           ("mz_out", E.F_data (Inputs.zeros_f cfd_elems));
           ("en_out", E.F_data (Inputs.zeros_f cfd_elems)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_floats "rho_out";
    paper_regs = 60;
  }
