(** The eleven kernels of Table 4, in the paper's listing order. *)

val all : Workload.t list
val by_name : string -> Workload.t option
val names : string list
