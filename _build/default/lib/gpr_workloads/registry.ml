let all : Workload.t list =
  [ Graphics.deferred;
    Graphics.ssao;
    Graphics.elevated;
    Graphics.pathtracer;
    Rodinia.cfd;
    Rodinia.dwt2d;
    Rodinia.hotspot;
    Rodinia.hotspot3d;
    Leukocyte.imgvf;
    Leukocyte.gicov;
    Hybridsort.hybridsort ]

let by_name name =
  List.find_opt
    (fun (w : Workload.t) ->
       String.lowercase_ascii w.name = String.lowercase_ascii name)
    all

let names = List.map (fun (w : Workload.t) -> w.name) all
