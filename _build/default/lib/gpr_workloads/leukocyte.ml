(** The two Leukocyte-tracking kernels (Rodinia): IMGVF — the iterative
    motion-gradient-vector-flow solver that motivates the paper's
    Sec. 2 example (10 warps per block, heavy shared-memory tile) — and
    GICOV, the gradient-inverse-coefficient-of-variation score over a
    texture (whose texture-cache contention explains its Fig. 11
    slowdown). *)

open Gpr_isa
open Gpr_isa.Types
open Builder
module Q = Gpr_quality.Quality
module E = Gpr_exec.Exec

(* ------------------------------------------------------------------ *)
(* IMGVF.  Image 64 x 50; each block of 320 threads (10 warps) owns a
   64 x 5 strip staged in a shared halo tile of (64+2) x (5+2).  The
   original kernel's shared allocation is 14,560 bytes per block
   (Sec. 6.1); our modelled tile covers part of it and
   [extra_shared_bytes] accounts for the remainder so occupancy
   matches. *)

let iv_w = 64
let iv_h = 60
let iv_strip = 20
let iv_cells = iv_w * iv_h
let iv_tile_w = iv_w + 2
let iv_tile_h = iv_strip + 2
let iv_tile = iv_tile_w * iv_tile_h
let iv_iters = 4
let iv_threads = 320           (* 10 warps; each thread owns four cells *)
let iv_cells_per_thread = 4
let paper_imgvf_shared = 14560

let imgvf_kernel () =
  let b = create ~name:"imgvf" in
  let u_in = global_buffer b F32 "u" in
  let img = global_buffer b F32 "img" in
  let u_out = global_buffer b F32 "u_out" in
  let conv = global_buffer b F32 "conv" in
  let tile = shared_buffer b F32 "tile" in
  let t = tid_x b in
  let blk = ctaid_x b in
  let strip_y0 = imul b ~$blk (ci iv_strip) in
  (* Stage the halo tile: 1452 entries loaded by 320 threads in five
     rounds (the last partial). *)
  let load_entry idx =
    let tx = irem b idx (ci iv_tile_w) in
    let ty = idiv b idx (ci iv_tile_w) in
    let gx = imin b ~$(imax b ~$(iadd b ~$tx (ci (-1))) (ci 0)) (ci (iv_w - 1)) in
    let gy0 = iadd b ~$(iadd b ~$strip_y0 ~$ty) (ci (-1)) in
    let gy = imin b ~$(imax b ~$gy0 (ci 0)) (ci (iv_h - 1)) in
    let v = ld b u_in ~$(imad b ~$gy (ci iv_w) ~$gx) in
    st b tile idx ~$v
  in
  let rounds = (iv_tile + iv_threads - 1) / iv_threads in
  for r = 0 to rounds - 1 do
    let idx = iadd b ~$t (ci (r * iv_threads)) in
    if (r + 1) * iv_threads <= iv_tile then load_entry ~$idx
    else if_then b (ilt b ~$idx (ci iv_tile)) (fun () -> load_entry ~$idx)
  done;
  bar b;
  (* Each thread owns four vertically adjacent cells of the strip; the
     whole column of state is live across the iteration, as in the
     original's unrolled update. *)
  let lx = irem b ~$t (ci iv_w) in
  let ly0 = imul b ~$(idiv b ~$t (ci iv_w)) (ci iv_cells_per_thread) in
  let cell_of k =
    let ly = iadd b ~$ly0 (ci k) in
    let cx = iadd b ~$lx (ci 1) in
    let cy = iadd b ~$ly (ci 1) in
    let centre = imad b ~$cy (ci iv_tile_w) ~$cx in
    let gy = iadd b ~$strip_y0 ~$ly in
    let gidx = imad b ~$gy (ci iv_w) ~$lx in
    (centre, gidx, ld b img ~$gidx)
  in
  let cells = Array.init iv_cells_per_thread cell_of in
  (* Per-thread convergence accumulator (the original kernel tracks the
     total absolute change to decide when to stop iterating). *)
  let total_change = var b F32 "total_change" in
  assign b total_change (cf 0.0);
  let inv_ln2 = 1.4426950408889634 in
  let offsets =
    (* Dyadic weights keep the diffusion arithmetic exactly
       representable under modest mantissa reduction. *)
    [ (0, -1, 1.0); (0, 1, 1.0); (-1, 0, 1.0); (1, 0, 1.0);
      (-1, -1, 0.75); (1, -1, 0.75); (-1, 1, 0.75); (1, 1, 0.75) ]
  in
  for _ = 1 to iv_iters do
    (* Phase 1: every cell's eight neighbour differences. *)
    let us =
      Array.map (fun (c, _, _) -> ld b tile ~$c) cells
    in
    let dus =
      Array.mapi
        (fun k (c, _, _) ->
           List.map
             (fun (dx, dy, w) ->
                let nidx = iadd b ~$c (ci ((dy * iv_tile_w) + dx)) in
                let un = ld b tile ~$nidx in
                (fsub b ~$un ~$(us.(k)), w))
             offsets)
        cells
    in
    (* Phase 2: Heaviside weights H(du) = 1 / (1 + exp(-80 du)), all
       held live before the combines. *)
    let hws =
      Array.map
        (fun dul ->
           List.map
             (fun (du, w) ->
                let arg = fmul b ~$du (cf (-80.0 *. inv_ln2)) in
                let h = frcp b ~$(fadd b (cf 1.0) ~$(fex2 b ~$arg)) in
                (fmul b ~$h ~$du, w))
             dul)
        dus
    in
    (* Phase 3: combine with dyadic diffusion/source coefficients. *)
    let news =
      Array.mapi
        (fun k (_, _, i0) ->
           let acc =
             List.fold_left
               (fun acc (hw, w) -> ffma b ~$hw (cf w) ~$acc)
               (mov b F32 (cf 0.0)) hws.(k)
           in
           let diffused = ffma b ~$acc (cf 0.25) ~$(us.(k)) in
           ffma b ~$(fsub b ~$i0 ~$(us.(k))) (cf 0.125) ~$diffused)
        cells
    in
    Array.iteri
      (fun k _ ->
         let d = fabs b ~$(fsub b ~$(news.(k)) ~$(us.(k))) in
         assign b total_change ~$(fadd b ~$total_change ~$d))
      cells;
    bar b;
    Array.iteri (fun k (c, _, _) -> st b tile ~$c ~$(news.(k))) cells;
    bar b
  done;
  Array.iter
    (fun (c, gidx, _) -> st b u_out ~$gidx ~$(ld b tile ~$c))
    cells;
  st b conv ~$(imad b ~$blk (ci iv_threads) ~$t) ~$total_change;
  finish b

let imgvf : Workload.t =
  {
    name = "IMGVF";
    group = 2;
    metric = Q.M_deviation;
    kernel = imgvf_kernel ();
    launch = launch_1d ~block:iv_threads ~grid:(iv_cells / (iv_w * iv_strip));
    params = [||];
    data =
      (fun () ->
         [ ("u", E.F_data (Inputs.qfloats ~seed:401 ~n:iv_cells));
           ("img", E.F_data (Inputs.qfloats ~seed:402 ~n:iv_cells));
           ("u_out", E.F_data (Inputs.zeros_f iv_cells));
           ("conv", E.F_data (Inputs.zeros_f (iv_threads * 3))) ]);
    shared = [ ("tile", iv_tile) ];
    extra_shared_bytes = paper_imgvf_shared - (iv_tile * 4);
    output = Workload.Out_floats "u_out";
    paper_regs = 52;
  }

(* ------------------------------------------------------------------ *)
(* GICOV: per pixel, sample the gradient texture around circles of two
   radii and score mean^2 / variance; keep the best.  The scattered
   texture reads are what stress the texture cache at high occupancy
   (Sec. 6.2 explains GICOV's slowdown by the miss rate rising from
   76% to 86%). *)

let gc_dim = 96           (* output grid *)
let gc_src = 256          (* gradient texture resolution *)
let gc_cells = gc_dim * gc_dim
let gc_src_cells = gc_src * gc_src

(* 12 offsets around a circle of radius r (precomputed on the host, as
   the original precomputes its sample stencil). *)
let gc_samples = 12

let circle_offsets r =
  List.init gc_samples (fun k ->
      let a = float_of_int k *. 2.0 *. Float.pi /. float_of_int gc_samples in
      ( int_of_float (Float.round (r *. cos a)),
        int_of_float (Float.round (r *. sin a)) ))

let gicov_kernel () =
  let b = create ~name:"gicov" in
  let grad = texture_buffer b F32 "grad" in
  let out = global_buffer b F32 "gicov_out" in
  let gid, x, y = Glib.pixel_xy b ~width:gc_dim in
  (* Radii are processed in pairs whose sample sets are loaded before
     either is scored — the texture reads of both circles are in flight
     and live together, as in the original's unrolled sample loop. *)
  (* Sample positions live on the full-resolution gradient texture:
     output pixel (x, y) maps to (2x, 2y), as the original operates on
     a finer grid than it scores. *)
  let load_radius r =
    List.map
      (fun (dx, dy) ->
         let sx = iadd b ~$(ishl b ~$x (ci 1)) (ci dx) in
         let sy = iadd b ~$(ishl b ~$y (ci 1)) (ci dy) in
         let xs = imin b ~$(imax b ~$sx (ci 0)) (ci (gc_src - 1)) in
         let ys = imin b ~$(imax b ~$sy (ci 0)) (ci (gc_src - 1)) in
         ld b grad ~$(imad b ~$ys (ci gc_src) ~$xs))
      (circle_offsets r)
  in
  let stats samples =
    let sum =
      List.fold_left (fun acc s -> fadd b ~$acc ~$s)
        (mov b F32 (cf 0.0)) samples
    in
    let mean = fmul b ~$sum (cf (1.0 /. float_of_int gc_samples)) in
    let var =
      List.fold_left
        (fun acc s ->
           let d = fsub b ~$s ~$mean in
           ffma b ~$d ~$d ~$acc)
        (mov b F32 (cf 0.0)) samples
    in
    let var = ffma b ~$var (cf (1.0 /. float_of_int gc_samples)) (cf 1e-4) in
    fmul b ~$(fmul b ~$mean ~$mean) ~$(frcp b ~$var)
  in
  let score_pair r1 r2 =
    let s1 = load_radius r1 in
    let s2 = load_radius r2 in
    (stats s1, stats s2)
  in
  let a1, a2 = score_pair 5.0 9.0 in
  let b1, b2 = score_pair 13.0 17.0 in
  let best =
    List.fold_left
      (fun acc sc -> fmax b ~$acc ~$sc)
      (mov b F32 (cf 0.0)) [ a1; a2; b1; b2 ]
  in
  st b out ~$gid ~$best;
  finish b

let gicov : Workload.t =
  {
    name = "GICOV";
    group = 2;
    metric = Q.M_deviation;
    kernel = gicov_kernel ();
    launch = launch_1d ~block:192 ~grid:(gc_cells / 192);
    params = [||];
    data =
      (fun () ->
         [ ("grad", E.F_data (Inputs.qfloats ~seed:411 ~n:gc_src_cells));
           ("gicov_out", E.F_data (Inputs.zeros_f gc_cells)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Workload.Out_floats "gicov_out";
    paper_regs = 24;
  }
