open Gpr_isa
open Builder

let fract b v =
  let fl = ffloor b v in
  fsub b v ~$fl

let mix b a x t =
  let d = fsub b x a in
  ffma b ~$d t a

let clamp01 b v =
  let lo = fmax b v (cf 0.0) in
  fmin b ~$lo (cf 1.0)

let smoothstep01 b t =
  (* t * t * (3 - 2t) *)
  let t2 = fmul b t t in
  let m = ffma b (cf (-2.0)) t (cf 3.0) in
  fmul b ~$t2 ~$m

let hash11 b x =
  let s = fsin b x in
  let big = fmul b ~$s (cf 43758.5453) in
  fract b ~$big

let noise2 b ~x ~y =
  let ix = ffloor b x and iy = ffloor b y in
  let fx = fsub b x ~$ix and fy = fsub b y ~$iy in
  let ux = smoothstep01 b ~$fx and uy = smoothstep01 b ~$fy in
  let corner dx dy =
    let cx = fadd b ~$ix (cf dx) and cy = fadd b ~$iy (cf dy) in
    let n = ffma b ~$cy (cf 57.0) ~$cx in
    hash11 b ~$n
  in
  let n00 = corner 0.0 0.0 and n10 = corner 1.0 0.0 in
  let n01 = corner 0.0 1.0 and n11 = corner 1.0 1.0 in
  let nx0 = mix b ~$n00 ~$n10 ~$ux in
  let nx1 = mix b ~$n01 ~$n11 ~$ux in
  mix b ~$nx0 ~$nx1 ~$uy

let dot3 b (ax, ay, az) (bx, by, bz) =
  let xy = fmul b ax bx in
  let xyz = ffma b ay by ~$xy in
  ffma b az bz ~$xyz

let length3 b v = fsqrt b ~$(dot3 b v v)

let normalize3 b (x, y, z) =
  let inv = frsqrt b ~$(dot3 b (x, y, z) (x, y, z)) in
  (fmul b x ~$inv, fmul b y ~$inv, fmul b z ~$inv)

let pixel_xy b ~width =
  let gid = global_thread_id_x b in
  let x = irem b ~$gid (ci width) in
  let y = idiv b ~$gid (ci width) in
  (gid, x, y)
