(** Deterministic input generators.

    Float inputs are quantised to multiples of 1/256 (the granularity of
    8-bit image data, which most of the original benchmarks consume).
    Such values are exactly representable in the wider Table 3 formats,
    which is what lets the precision tuner find reductions even under
    the {e perfect} quality threshold — mirroring the behaviour the
    paper reports. *)

val qfloats : seed:int -> n:int -> float array
(** Values k/256, k uniform in [0, 255]. *)

val qfloats_range : seed:int -> n:int -> lo:float -> hi:float -> float array
(** [lo + (k/256)*(hi-lo)] — quantised within a range. *)

val ints : seed:int -> n:int -> bound:int -> int array
val zeros_f : int -> float array
val zeros_i : int -> int array
