(** Common shape of the eleven evaluated kernels (Table 4).

    Each workload bundles a mini-PTX kernel, its launch geometry,
    deterministic input data, the output buffer to score and the quality
    metric — everything {!Gpr_core} needs to run the paper's pipeline
    end to end. *)

open Gpr_isa.Types

type output_spec =
  | Out_floats of string            (** buffer scored with the workload metric *)
  | Out_image of string * int * int (** buffer rendered as [w]×[h], scored with SSIM *)
  | Out_ints of string              (** buffer compared exactly (binary metric) *)

type t = {
  name : string;
  group : int;  (** 1 = graphics, 2 = Rodinia, 3 = Hybridsort (Table 4) *)
  metric : Gpr_quality.Quality.metric;
  kernel : kernel;
  launch : launch;
  params : Gpr_exec.Exec.pvalue array;
  data : unit -> (string * Gpr_exec.Exec.storage) list;
      (** fresh, deterministic input and output arrays *)
  shared : (string * int) list;  (** shared buffer sizes, elements *)
  extra_shared_bytes : int;
      (** shared memory the real kernel allocates beyond the modelled
          buffers (affects occupancy only) *)
  output : output_spec;
  paper_regs : int;        (** Table 4 "Register usage per thread" *)
}

val warps_per_block : t -> int
val shared_bytes_per_block : t -> int

val reference : t -> float array
(** Run at full precision and return the output buffer as floats
    (ints are converted) — the "original output" of Sec. 5.3. *)

val run_quantized : t -> quantize:(int -> float -> float) -> float array
(** Re-run on the same inputs under a register-quantisation hook. *)

val score : t -> out:float array -> reference:float array -> Gpr_quality.Quality.score

val evaluate : t -> reference:float array -> quantize:(int -> float -> float) -> Gpr_quality.Quality.score

val trace :
  t -> quantize:(int -> float -> float) option -> Gpr_exec.Trace.t
(** Execute with trace collection for the timing simulator. *)

val float_sites : t -> (int * vreg) list
