lib/gpr_workloads/hybridsort.ml: Array Builder Gpr_exec Gpr_isa Gpr_quality Inputs List Workload
