lib/gpr_workloads/registry.ml: Graphics Hybridsort Leukocyte List Rodinia String Workload
