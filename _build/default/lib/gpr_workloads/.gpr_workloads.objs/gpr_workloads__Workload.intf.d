lib/gpr_workloads/workload.mli: Gpr_exec Gpr_isa Gpr_quality
