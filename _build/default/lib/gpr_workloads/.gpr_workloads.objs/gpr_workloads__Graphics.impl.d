lib/gpr_workloads/graphics.ml: Builder Glib Gpr_exec Gpr_isa Gpr_quality Inputs List Workload
