lib/gpr_workloads/registry.mli: Workload
