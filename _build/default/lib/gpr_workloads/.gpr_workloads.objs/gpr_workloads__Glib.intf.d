lib/gpr_workloads/glib.mli: Builder Gpr_isa
