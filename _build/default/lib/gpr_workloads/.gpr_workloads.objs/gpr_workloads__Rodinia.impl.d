lib/gpr_workloads/rodinia.ml: Array Builder Glib Gpr_exec Gpr_isa Gpr_quality Gpr_util Inputs List Stdlib Workload
