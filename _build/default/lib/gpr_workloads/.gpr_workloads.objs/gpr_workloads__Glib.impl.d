lib/gpr_workloads/glib.ml: Builder Gpr_isa
