lib/gpr_workloads/inputs.mli:
