lib/gpr_workloads/leukocyte.ml: Array Builder Float Glib Gpr_exec Gpr_isa Gpr_quality Inputs List Workload
