lib/gpr_workloads/workload.ml: Array Gpr_exec Gpr_isa Gpr_quality Gpr_util List
