lib/gpr_workloads/inputs.ml: Array Gpr_util
