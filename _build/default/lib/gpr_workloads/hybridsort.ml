(** Hybridsort (Table 4, group 3, binary metric): each block sorts a
    1024-key tile — a register-resident 4-key sorting network per
    thread followed by a shared-memory bitonic merge, the structure of
    the original bucket+merge hybrid's block-sort stage.  Keys are
    1/256-quantised floats, so the output is bit-reproducible under
    sufficiently wide reduced formats — which is exactly how the
    paper's binary-metric kernel still benefits from float
    compression. *)

open Gpr_isa
open Gpr_isa.Types
open Builder
module Q = Gpr_quality.Quality
module E = Gpr_exec.Exec

let tile_n = 2048
let threads = 256
let blocks = 2
let total = tile_n * blocks
let keys_per_thread = tile_n / threads

let kernel () =
  let b = create ~name:"hybridsort" in
  let keys_in = global_buffer b F32 "keys_in" in
  let keys_out = global_buffer b F32 "keys_out" in
  let tile = shared_buffer b F32 "sort_tile" in
  let t = tid_x b in
  let base = imul b ~$(ctaid_x b) (ci tile_n) in
  (* ---- Register-resident 8-key Batcher sorting network: all eight
     keys live through the nineteen compare-exchanges. ---- *)
  let k0 = imul b ~$t (ci keys_per_thread) in
  let key i = ld b keys_in ~$(iadd b ~$base ~$(iadd b ~$k0 (ci i))) in
  let keys = Array.init keys_per_thread key in
  let cmpx i j =
    let lo = fmin b ~$(keys.(i)) ~$(keys.(j)) in
    let hi = fmax b ~$(keys.(i)) ~$(keys.(j)) in
    keys.(i) <- lo;
    keys.(j) <- hi
  in
  (* Batcher odd-even merge network for 8 inputs. *)
  List.iter (fun (i, j) -> cmpx i j)
    [ (0,1); (2,3); (4,5); (6,7);
      (0,2); (1,3); (4,6); (5,7);
      (1,2); (5,6);
      (0,4); (1,5); (2,6); (3,7);
      (2,4); (3,5);
      (1,2); (3,4); (5,6) ];
  Array.iteri
    (fun i k -> st b tile ~$(iadd b ~$k0 (ci i)) ~$k)
    keys;
  bar b;
  (* ---- Bitonic merge over the 1024-key tile.  Each substage handles
     512 pairs with 256 threads: two pairs per thread, both exchanges
     live together.  The 4-key presort leaves ascending runs of 4, so
     the network starts at k = 8. ---- *)
  let exchange jj kk tv =
    let low = irem b tv (ci jj) in
    let high = imul b ~$(idiv b tv (ci jj)) (ci (2 * jj)) in
    let i = iadd b ~$high ~$low in
    let ixj = iadd b ~$i (ci jj) in
    let ascending = ieq b ~$(iand b ~$i (ci kk)) (ci 0) in
    let x = ld b tile ~$i in
    let y = ld b tile ~$ixj in
    let x_gt = fgt b ~$x ~$y in
    let x_lt = flt b ~$x ~$y in
    let gt_i = selp b S32 (ci 1) (ci 0) x_gt in
    let lt_i = selp b S32 (ci 1) (ci 0) x_lt in
    let want = selp b S32 ~$gt_i ~$lt_i ascending in
    let swap = ine b ~$want (ci 0) in
    st b tile ~$i ~$(selp b F32 ~$y ~$x swap);
    st b tile ~$ixj ~$(selp b F32 ~$x ~$y swap)
  in
  (* Sorting runs of 4 are ascending, but bitonic stage k requires the
     blocks below it to alternate direction, so we include k = 4 and 8
     stages to rebuild the bitonic structure, then continue upward. *)
  let k = ref 2 in
  while !k <= tile_n do
    let j = ref (!k / 2) in
    while !j >= 1 do
      (* Four pair exchanges per thread per substage. *)
      exchange !j !k ~$t;
      exchange !j !k ~$(iadd b ~$t (ci threads));
      exchange !j !k ~$(iadd b ~$t (ci (2 * threads)));
      exchange !j !k ~$(iadd b ~$t (ci (3 * threads)));
      bar b;
      j := !j / 2
    done;
    k := !k * 2
  done;
  bar b;
  for i = 0 to keys_per_thread - 1 do
    let idx = iadd b ~$k0 (ci i) in
    st b keys_out ~$(iadd b ~$base ~$idx) ~$(ld b tile ~$idx)
  done;
  finish b

let hybridsort : Workload.t =
  {
    name = "Hybridsort";
    group = 3;
    metric = Q.M_binary;
    kernel = kernel ();
    launch = launch_1d ~block:threads ~grid:blocks;
    params = [||];
    data =
      (fun () ->
         [ ("keys_in", E.F_data (Inputs.qfloats ~seed:501 ~n:total));
           ("keys_out", E.F_data (Inputs.zeros_f total)) ]);
    shared = [ ("sort_tile", tile_n) ];
    extra_shared_bytes = 0;
    output = Workload.Out_floats "keys_out";
    paper_regs = 36;
  }
