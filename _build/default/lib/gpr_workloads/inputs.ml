let qfloats ~seed ~n =
  let rng = Gpr_util.Rng.create seed in
  Array.init n (fun _ -> float_of_int (Gpr_util.Rng.int rng 256) /. 256.0)

let qfloats_range ~seed ~n ~lo ~hi =
  let rng = Gpr_util.Rng.create seed in
  Array.init n (fun _ ->
      lo +. (float_of_int (Gpr_util.Rng.int rng 256) /. 256.0 *. (hi -. lo)))

let ints ~seed ~n ~bound =
  let rng = Gpr_util.Rng.create seed in
  Array.init n (fun _ -> Gpr_util.Rng.int rng bound)

let zeros_f n = Array.make n 0.0
let zeros_i n = Array.make n 0
