(** Set-associative LRU cache model for the L1 data, texture and L2
    caches of the baseline GPU (Table 2). *)

type t

val create : capacity_bytes:int -> line_bytes:int -> assoc:int -> t

val access : t -> int -> bool
(** [access t byte_addr] — true on hit; a miss fills the line (allocate
    on read; we only model loads). *)

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
val line_bytes : t -> int
