type t = {
  line_bytes : int;
  num_sets : int;
  assoc : int;
  tags : int array;      (* set * assoc + way; -1 = invalid *)
  lru : int array;       (* last-use stamp per way *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity_bytes ~line_bytes ~assoc =
  let lines = max assoc (capacity_bytes / line_bytes) in
  let num_sets = max 1 (lines / assoc) in
  {
    line_bytes;
    num_sets;
    assoc;
    tags = Array.make (num_sets * assoc) (-1);
    lru = Array.make (num_sets * assoc) 0;
    stamp = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let line = addr / t.line_bytes in
  let set = line mod t.num_sets in
  let base = set * t.assoc in
  t.stamp <- t.stamp + 1;
  let rec find way =
    if way >= t.assoc then None
    else if t.tags.(base + way) = line then Some way
    else find (way + 1)
  in
  match find 0 with
  | Some way ->
    t.lru.(base + way) <- t.stamp;
    t.hits <- t.hits + 1;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* Evict LRU way. *)
    let victim = ref 0 in
    for way = 1 to t.assoc - 1 do
      if t.lru.(base + way) < t.lru.(base + !victim) then victim := way
    done;
    t.tags.(base + !victim) <- line;
    t.lru.(base + !victim) <- t.stamp;
    false

let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let line_bytes t = t.line_bytes
