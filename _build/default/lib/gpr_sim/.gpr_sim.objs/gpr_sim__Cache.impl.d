lib/gpr_sim/cache.ml: Array
