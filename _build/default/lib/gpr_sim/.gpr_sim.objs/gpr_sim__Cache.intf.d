lib/gpr_sim/cache.mli:
