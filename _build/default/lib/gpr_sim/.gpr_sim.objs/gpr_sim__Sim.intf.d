lib/gpr_sim/sim.mli: Gpr_alloc Gpr_arch Gpr_exec
