lib/gpr_sim/sim.ml: Array Cache Gpr_alloc Gpr_arch Gpr_exec Gpr_isa Hashtbl Int List Map Option
