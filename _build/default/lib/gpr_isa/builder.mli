(** Imperative builder DSL for mini-PTX kernels.

    Kernels are written as OCaml functions over a builder value; value-
    producing operations allocate a fresh virtual register, and
    structured control flow ([if_] / [while_] / [for_]) is lowered to
    basic blocks with conditional branches.  Loop-carried values use
    explicit mutable variables ({!var} / {!assign}).

    {[
      let k =
        let b = Builder.create ~name:"saxpy" in
        let n = Builder.param_i32 b ~range:(0, 4096) "n" in
        let a = Builder.param_f32 b "a" in
        let x = Builder.global_buffer b F32 "x" in
        let y = Builder.global_buffer b F32 "y" in
        let i = Builder.global_thread_id_x b in
        Builder.if_then b (Builder.ilt b ~$i ~$n) (fun () ->
          let xi = Builder.ld b x ~$i in
          let yi = Builder.ld b y ~$i in
          let r = Builder.ffma b ~$a ~$xi ~$yi in
          Builder.st b y ~$i ~$r);
        Builder.finish b
    ]} *)

open Types

type t

val create : name:string -> t

val finish : t -> kernel
(** Seals the current block with [Ret] if needed and validates the CFG.
    @raise Invalid_argument when {!Cfg.validate} fails. *)

val ( ~$ ) : vreg -> operand
val ci : int -> operand
val cf : float -> operand

(** {1 Parameters, buffers, special registers} *)

val param_i32 : t -> ?range:int * int -> string -> vreg
val param_u32 : t -> ?range:int * int -> string -> vreg
val param_f32 : t -> string -> vreg
val global_buffer : t -> dtype -> ?range:int * int -> string -> buffer
val shared_buffer : t -> dtype -> ?range:int * int -> string -> buffer
val texture_buffer : t -> dtype -> ?range:int * int -> string -> buffer

val special_name : special -> string
(** Display name of a special register ("tid.x", …). *)

val tid_x : t -> vreg
val tid_y : t -> vreg
val ntid_x : t -> vreg
val ntid_y : t -> vreg
val ctaid_x : t -> vreg
val ctaid_y : t -> vreg
val nctaid_x : t -> vreg
val nctaid_y : t -> vreg

val global_thread_id_x : t -> vreg
(** [ctaid.x * ntid.x + tid.x], the usual global index idiom. *)

(** {1 Integer arithmetic} — destination type defaults to [S32]. *)

val iadd : t -> ?ty:dtype -> operand -> operand -> vreg
val isub : t -> ?ty:dtype -> operand -> operand -> vreg
val imul : t -> ?ty:dtype -> operand -> operand -> vreg
val idiv : t -> ?ty:dtype -> operand -> operand -> vreg
val irem : t -> ?ty:dtype -> operand -> operand -> vreg
val imin : t -> ?ty:dtype -> operand -> operand -> vreg
val imax : t -> ?ty:dtype -> operand -> operand -> vreg
val iand : t -> ?ty:dtype -> operand -> operand -> vreg
val ior : t -> ?ty:dtype -> operand -> operand -> vreg
val ixor : t -> ?ty:dtype -> operand -> operand -> vreg
val ishl : t -> ?ty:dtype -> operand -> operand -> vreg
val ishr : t -> ?ty:dtype -> operand -> operand -> vreg
val imad : t -> ?ty:dtype -> operand -> operand -> operand -> vreg
val ineg : t -> ?ty:dtype -> operand -> vreg
val inot : t -> ?ty:dtype -> operand -> vreg
val iabs : t -> ?ty:dtype -> operand -> vreg

(** {1 Floating point} *)

val fadd : t -> operand -> operand -> vreg
val fsub : t -> operand -> operand -> vreg
val fmul : t -> operand -> operand -> vreg
val fdiv : t -> operand -> operand -> vreg
val fmin : t -> operand -> operand -> vreg
val fmax : t -> operand -> operand -> vreg
val ffma : t -> operand -> operand -> operand -> vreg
val fneg : t -> operand -> vreg
val fabs : t -> operand -> vreg
val ffloor : t -> operand -> vreg
val fsqrt : t -> operand -> vreg
val frsqrt : t -> operand -> vreg
val frcp : t -> operand -> vreg
val fsin : t -> operand -> vreg
val fcos : t -> operand -> vreg
val fex2 : t -> operand -> vreg
val flg2 : t -> operand -> vreg

(** {1 Comparison, selection, conversion, moves} *)

val setp : t -> cmpop -> dtype -> operand -> operand -> vreg
val ilt : t -> operand -> operand -> vreg
val ile : t -> operand -> operand -> vreg
val igt : t -> operand -> operand -> vreg
val ige : t -> operand -> operand -> vreg
val ieq : t -> operand -> operand -> vreg
val ine : t -> operand -> operand -> vreg
val flt : t -> operand -> operand -> vreg
val fle : t -> operand -> operand -> vreg
val fgt : t -> operand -> operand -> vreg
val fge : t -> operand -> operand -> vreg
val pand : t -> vreg -> vreg -> vreg
(** Conjunction of predicates (lowered to selp + setp). *)

val selp : t -> dtype -> operand -> operand -> vreg -> vreg
val itof : t -> operand -> vreg
val utof : t -> operand -> vreg
val ftoi : t -> operand -> vreg
val ftou : t -> operand -> vreg
val mov : t -> dtype -> operand -> vreg

(** {1 Memory} *)

val ld : t -> buffer -> operand -> vreg
val st : t -> buffer -> operand -> operand -> unit
val bar : t -> unit

(** {1 Variables and control flow} *)

val var : t -> dtype -> string -> vreg
(** A mutable variable (loop-carried value).  Assign before use. *)

val assign : t -> vreg -> operand -> unit

val if_ : t -> vreg -> (unit -> unit) -> (unit -> unit) -> unit
val if_then : t -> vreg -> (unit -> unit) -> unit
val while_ : t -> (unit -> vreg) -> (unit -> unit) -> unit
(** [while_ b cond body]: [cond] is rebuilt in the loop header and must
    return a predicate register. *)

val for_ : t -> ?var_name:string -> lo:operand -> hi:operand -> (vreg -> unit) -> unit
(** Counted loop [for i = lo; i < hi; i++].  The induction variable is a
    fresh [S32] variable passed to the body. *)

val ret : t -> unit
(** Early exit: terminates the current block with [Ret] and switches to a
    fresh unreachable... rather, a fresh continuation block for any code
    emitted afterwards (matching PTX [exit] inside a conditional). *)
