open Types

type t = {
  kernel : kernel;
  succs : int list array;
  preds : int list array;
}

let of_kernel kernel =
  let n = Array.length kernel.k_blocks in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iter
    (fun b ->
       let ss = successors b.term in
       succs.(b.label) <- ss;
       List.iter (fun s -> preds.(s) <- b.label :: preds.(s)) ss)
    kernel.k_blocks;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  { kernel; succs; preds }

let num_blocks t = Array.length t.kernel.k_blocks
let block t i = t.kernel.k_blocks.(i)
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)

let postorder t =
  let n = num_blocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs t.succs.(b);
      order := b :: !order
    end
  in
  dfs 0;
  (* [order] now holds reverse postorder; postorder is its reverse. *)
  Array.of_list (List.rev !order)

let reverse_postorder t =
  let po = postorder t in
  let n = Array.length po in
  Array.init n (fun i -> po.(n - 1 - i))

let exit_blocks t =
  Array.to_list t.kernel.k_blocks
  |> List.filter_map (fun b -> match b.term with Ret -> Some b.label | _ -> None)

let validate kernel =
  let n = Array.length kernel.k_blocks in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_target l = l >= 0 && l < n in
  let exception Bad of string in
  try
    if n = 0 then raise (Bad "kernel has no blocks");
    Array.iteri
      (fun i b ->
         if b.label <> i then
           raise (Bad (Printf.sprintf "block %d has label %d" i b.label));
         List.iter
           (fun s ->
              if not (check_target s) then
                raise (Bad (Printf.sprintf "block %d branches to missing %d" i s)))
           (successors b.term);
         let seen_non_phi = ref false in
         Array.iter
           (fun ins ->
              (match ins with
               | Phi _ ->
                 if !seen_non_phi then
                   raise (Bad (Printf.sprintf "phi after non-phi in block %d" i))
               | _ -> seen_non_phi := true);
              let regs =
                (match defs ins with Some d -> [ d ] | None -> []) @ uses ins
              in
              List.iter
                (fun r ->
                   if r.id < 0 || r.id >= kernel.k_num_vregs then
                     raise
                       (Bad
                          (Printf.sprintf "vreg %%%d out of range in block %d"
                             r.id i)))
                regs;
              match ins with
              | Setp (_, _, p, _, _) when p.ty <> Pred ->
                raise (Bad "setp destination is not a predicate")
              | Selp (_, _, _, p) when p.ty <> Pred ->
                raise (Bad "selp selector is not a predicate")
              | Fbin (_, d, _, _) | Fun (_, d, _) | Ffma (d, _, _, _)
                when d.ty <> F32 ->
                raise (Bad "float op with non-f32 destination")
              | Ibin (_, d, _, _) | Iun (_, d, _) | Imad (d, _, _, _)
                when d.ty = F32 || d.ty = Pred ->
                raise (Bad "integer op with non-integer destination")
              | _ -> ())
           b.instrs;
         match b.term with
         | Cbr (p, _, _) when p.ty <> Pred ->
           raise (Bad (Printf.sprintf "block %d: cbr on non-predicate" i))
         | _ -> ())
      kernel.k_blocks;
    Ok ()
  with Bad msg -> err "%s: %s" kernel.k_name msg
