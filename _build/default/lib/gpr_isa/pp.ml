open Types

let pp_vreg ppf r = Format.fprintf ppf "%%%s_%d" r.name r.id

let pp_operand ppf = function
  | Reg r -> pp_vreg ppf r
  | Imm_i i -> Format.pp_print_int ppf i
  | Imm_f f -> Format.fprintf ppf "%h" f

let ibinop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Min -> "min" | Max -> "max" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr"

let iunop_name = function Ineg -> "neg" | Inot -> "not" | Iabs -> "abs"

let fbinop_name = function
  | Fadd -> "add" | Fsub -> "sub" | Fmul -> "mul" | Fdiv -> "div"
  | Fmin -> "min" | Fmax -> "max"

let funop_name = function
  | Fneg -> "neg" | Fabs -> "abs" | Ffloor -> "floor"
  | Fsqrt -> "sqrt" | Frsqrt -> "rsqrt" | Frcp -> "rcp"
  | Fsin -> "sin" | Fcos -> "cos" | Fex2 -> "ex2" | Flg2 -> "lg2"

let cmpop_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let cvtop_name = function
  | F32_of_s32 -> "cvt.rn.f32.s32"
  | F32_of_u32 -> "cvt.rn.f32.u32"
  | S32_of_f32 -> "cvt.rzi.s32.f32"
  | U32_of_f32 -> "cvt.rzi.u32.f32"
  | S32_of_u32 -> "cvt.s32.u32"
  | U32_of_s32 -> "cvt.u32.s32"

let space_name = function
  | Global -> "global" | Shared -> "shared" | Texture -> "tex" | Param -> "param"

let pp_addr ppf { abuf; aindex } =
  Format.fprintf ppf "%s[%a]" abuf.buf_name pp_operand aindex

let pp_instr ppf = function
  | Ibin (op, d, a, b) ->
    Format.fprintf ppf "%s.%s %a, %a, %a" (ibinop_name op)
      (dtype_to_string d.ty) pp_vreg d pp_operand a pp_operand b
  | Iun (op, d, a) ->
    Format.fprintf ppf "%s.%s %a, %a" (iunop_name op) (dtype_to_string d.ty)
      pp_vreg d pp_operand a
  | Imad (d, a, b, c) ->
    Format.fprintf ppf "mad.lo.%s %a, %a, %a, %a" (dtype_to_string d.ty)
      pp_vreg d pp_operand a pp_operand b pp_operand c
  | Fbin (op, d, a, b) ->
    Format.fprintf ppf "%s.f32 %a, %a, %a" (fbinop_name op) pp_vreg d
      pp_operand a pp_operand b
  | Fun (op, d, a) ->
    Format.fprintf ppf "%s.f32 %a, %a" (funop_name op) pp_vreg d pp_operand a
  | Ffma (d, a, b, c) ->
    Format.fprintf ppf "fma.rn.f32 %a, %a, %a, %a" pp_vreg d pp_operand a
      pp_operand b pp_operand c
  | Setp (op, ty, p, a, b) ->
    Format.fprintf ppf "setp.%s.%s %a, %a, %a" (cmpop_name op)
      (dtype_to_string ty) pp_vreg p pp_operand a pp_operand b
  | Selp (d, a, b, p) ->
    Format.fprintf ppf "selp.%s %a, %a, %a, %a" (dtype_to_string d.ty)
      pp_vreg d pp_operand a pp_operand b pp_vreg p
  | Mov (d, a) ->
    Format.fprintf ppf "mov.%s %a, %a" (dtype_to_string d.ty) pp_vreg d
      pp_operand a
  | Cvt (op, d, a) ->
    Format.fprintf ppf "%s %a, %a" (cvtop_name op) pp_vreg d pp_operand a
  | Ld (d, a) ->
    Format.fprintf ppf "ld.%s.%s %a, %a" (space_name a.abuf.buf_space)
      (dtype_to_string d.ty) pp_vreg d pp_addr a
  | Ld_param (d, i) ->
    Format.fprintf ppf "ld.param.%s %a, [param%d]" (dtype_to_string d.ty)
      pp_vreg d i
  | St (a, v) ->
    Format.fprintf ppf "st.%s %a, %a" (space_name a.abuf.buf_space) pp_addr a
      pp_operand v
  | Bar -> Format.pp_print_string ppf "bar.sync 0"
  | Phi (d, ins) ->
    Format.fprintf ppf "phi.%s %a, %a" (dtype_to_string d.ty) pp_vreg d
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (l, op) -> Format.fprintf ppf "[bb%d: %a]" l pp_operand op))
      ins
  | Pi (d, s, f) ->
    let pp_bound ppf = function
      | Pb_none -> Format.pp_print_string ppf "_"
      | Pb_const c -> Format.pp_print_int ppf c
      | Pb_var (v, off) ->
        if off = 0 then Format.fprintf ppf "ft(%%%d)" v
        else Format.fprintf ppf "ft(%%%d)%+d" v off
    in
    Format.fprintf ppf "pi.%s %a, %a meet [%a, %a]" (dtype_to_string d.ty)
      pp_vreg d pp_vreg s pp_bound f.pf_lo pp_bound f.pf_hi

let pp_terminator ppf = function
  | Br l -> Format.fprintf ppf "bra bb%d" l
  | Cbr (p, tl, fl) ->
    Format.fprintf ppf "@%a bra bb%d; bra bb%d" pp_vreg p tl fl
  | Ret -> Format.pp_print_string ppf "ret"

let pp_kernel ppf k =
  Format.fprintf ppf ".entry %s (" k.k_name;
  Array.iteri
    (fun i p ->
       if i > 0 then Format.pp_print_string ppf ", ";
       Format.fprintf ppf ".param .%s %s" (dtype_to_string p.p_ty) p.p_name;
       match p.p_range with
       | Some (lo, hi) -> Format.fprintf ppf " /* [%d,%d] */" lo hi
       | None -> ())
    k.k_params;
  Format.fprintf ppf ")@.";
  Array.iter
    (fun buf ->
       Format.fprintf ppf ".%s .%s %s" (space_name buf.buf_space)
         (dtype_to_string buf.buf_elem) buf.buf_name;
       (match buf.buf_range with
        | Some (lo, hi) -> Format.fprintf ppf " /* [%d,%d] */" lo hi
        | None -> ());
       Format.fprintf ppf "@.")
    k.k_buffers;
  List.iter
    (fun (id, sp) ->
       let name =
         match sp with
         | Tid_x -> "tid.x" | Tid_y -> "tid.y"
         | Ntid_x -> "ntid.x" | Ntid_y -> "ntid.y"
         | Ctaid_x -> "ctaid.x" | Ctaid_y -> "ctaid.y"
         | Nctaid_x -> "nctaid.x" | Nctaid_y -> "nctaid.y"
       in
       Format.fprintf ppf ".sreg %d %s@." id name)
    (List.sort compare k.k_specials);
  Array.iter
    (fun b ->
       Format.fprintf ppf "bb%d:@." b.label;
       Array.iter (fun i -> Format.fprintf ppf "  %a@." pp_instr i) b.instrs;
       Format.fprintf ppf "  %a@." pp_terminator b.term)
    k.k_blocks

let kernel_to_string k = Format.asprintf "%a" pp_kernel k

let instr_count k =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 k.k_blocks
