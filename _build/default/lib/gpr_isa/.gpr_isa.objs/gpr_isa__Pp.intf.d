lib/gpr_isa/pp.mli: Format Types
