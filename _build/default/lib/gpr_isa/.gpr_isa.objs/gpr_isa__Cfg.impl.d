lib/gpr_isa/cfg.ml: Array Format List Printf Types
