lib/gpr_isa/cfg.mli: Types
