lib/gpr_isa/builder.ml: Array Cfg List Types
