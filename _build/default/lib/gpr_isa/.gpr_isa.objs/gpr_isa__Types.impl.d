lib/gpr_isa/types.ml: List
