lib/gpr_isa/parser.mli: Types
