lib/gpr_isa/builder.mli: Types
