lib/gpr_isa/pp.ml: Array Format List Types
