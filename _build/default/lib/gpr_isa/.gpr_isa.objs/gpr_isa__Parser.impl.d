lib/gpr_isa/parser.ml: Array Buffer Cfg Format Fun Hashtbl List Option Printf Scanf String Types
