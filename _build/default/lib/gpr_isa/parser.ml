open Types

exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun m -> raise (Parse_error (line, m))) fmt

(* ------------------------------------------------------------------ *)
(* Lexical helpers *)

(* Strip one /* ... */ comment, returning (text, comment_body option). *)
let split_comment s =
  match String.index_opt s '*' with
  | Some i when i > 0 && s.[i - 1] = '/' ->
    let start = i - 1 in
    (match
       let rec find j =
         if j + 1 >= String.length s then None
         else if s.[j] = '*' && s.[j + 1] = '/' then Some j
         else find (j + 1)
       in
       find (i + 1)
     with
     | Some stop ->
       let body = String.trim (String.sub s (i + 1) (stop - i - 1)) in
       let before = String.sub s 0 start in
       let after = String.sub s (stop + 2) (String.length s - stop - 2) in
       (before ^ after, Some body)
     | None -> (s, None))
  | _ -> (s, None)

let parse_range line body =
  (* "[lo,hi]" *)
  try Scanf.sscanf body "[%d,%d]" (fun lo hi -> (lo, hi))
  with _ -> fail line "malformed range annotation %S" body

(* Split on whitespace and commas. *)
let tokens s =
  String.map (function ',' -> ' ' | c -> c) s
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let dtype_of_string line = function
  | "s32" -> S32
  | "u32" -> U32
  | "f32" -> F32
  | "pred" -> Pred
  | other -> fail line "unknown type %S" other

let special_of_string line = function
  | "tid.x" -> Tid_x | "tid.y" -> Tid_y
  | "ntid.x" -> Ntid_x | "ntid.y" -> Ntid_y
  | "ctaid.x" -> Ctaid_x | "ctaid.y" -> Ctaid_y
  | "nctaid.x" -> Nctaid_x | "nctaid.y" -> Nctaid_y
  | other -> fail line "unknown special register %S" other

(* ------------------------------------------------------------------ *)
(* Parser state *)

type state = {
  mutable name : string;
  mutable params : param list;       (* reversed *)
  mutable buffers : buffer list;     (* reversed *)
  mutable specials : (int * special) list;
  types : (int, dtype) Hashtbl.t;    (* vreg id -> type *)
  names : (int, string) Hashtbl.t;   (* vreg id -> display name *)
  mutable blocks : (int * instr list ref * terminator option ref) list;
      (* reversed *)
  mutable cur : (instr list ref * terminator option ref) option;
  mutable max_id : int;
}

let reg_id st line tok =
  (* %name_id *)
  if String.length tok < 2 || tok.[0] <> '%' then
    fail line "expected register, got %S" tok;
  match String.rindex_opt tok '_' with
  | None -> fail line "malformed register %S" tok
  | Some u ->
    let name = String.sub tok 1 (u - 1) in
    let id =
      try int_of_string (String.sub tok (u + 1) (String.length tok - u - 1))
      with _ -> fail line "malformed register id in %S" tok
    in
    if not (Hashtbl.mem st.names id) then Hashtbl.replace st.names id name;
    st.max_id <- max st.max_id id;
    id

let def_reg st line tok ty =
  let id = reg_id st line tok in
  (match Hashtbl.find_opt st.types id with
   | Some old when old <> ty ->
     fail line "register %S redefined at type %s (was %s)" tok
       (dtype_to_string ty) (dtype_to_string old)
   | _ -> Hashtbl.replace st.types id ty);
  { id; ty; name = Hashtbl.find st.names id }

let use_reg st line tok =
  let id = reg_id st line tok in
  match Hashtbl.find_opt st.types id with
  | Some ty -> { id; ty; name = Hashtbl.find st.names id }
  | None -> fail line "register %S used before definition" tok

let operand st line tok =
  if tok.[0] = '%' then Reg (use_reg st line tok)
  else
    match int_of_string_opt tok with
    | Some i -> Imm_i i
    | None ->
      (match float_of_string_opt tok with
       | Some f -> Imm_f f
       | None -> fail line "malformed operand %S" tok)

let float_operand st line tok =
  (* Integer-looking literals in float positions are float immediates. *)
  if tok.[0] = '%' then Reg (use_reg st line tok)
  else
    match float_of_string_opt tok with
    | Some f -> Imm_f f
    | None -> fail line "malformed float operand %S" tok

let find_buffer st line name =
  match List.find_opt (fun b -> b.buf_name = name) st.buffers with
  | Some b -> b
  | None -> fail line "unknown buffer %S" name

(* "buf[operand]" *)
let parse_addr st line tok =
  match String.index_opt tok '[' with
  | Some i when String.length tok > 0 && tok.[String.length tok - 1] = ']' ->
    let bname = String.sub tok 0 i in
    let inner = String.sub tok (i + 1) (String.length tok - i - 2) in
    { abuf = find_buffer st line bname; aindex = operand st line inner }
  | _ -> fail line "malformed address %S" tok

let block_label line tok =
  (* "bbN" *)
  if String.length tok > 2 && String.sub tok 0 2 = "bb" then
    match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
    | Some n -> n
    | None -> fail line "malformed block label %S" tok
  else fail line "expected block label, got %S" tok

(* ------------------------------------------------------------------ *)
(* Instruction parsing *)

let ibinop_of = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "div" -> Some Div | "rem" -> Some Rem | "min" -> Some Min
  | "max" -> Some Max | "and" -> Some And | "or" -> Some Or
  | "xor" -> Some Xor | "shl" -> Some Shl | "shr" -> Some Shr
  | _ -> None

let fbinop_of = function
  | "add" -> Some Fadd | "sub" -> Some Fsub | "mul" -> Some Fmul
  | "div" -> Some Fdiv | "min" -> Some Fmin | "max" -> Some Fmax
  | _ -> None

let iunop_of = function
  | "neg" -> Some Ineg | "not" -> Some Inot | "abs" -> Some Iabs
  | _ -> None

let funop_of = function
  | "neg" -> Some Fneg | "abs" -> Some Fabs | "floor" -> Some Ffloor
  | "sqrt" -> Some Fsqrt | "rsqrt" -> Some Frsqrt | "rcp" -> Some Frcp
  | "sin" -> Some Fsin | "cos" -> Some Fcos | "ex2" -> Some Fex2
  | "lg2" -> Some Flg2
  | _ -> None

let cmpop_of line = function
  | "eq" -> Eq | "ne" -> Ne | "lt" -> Lt | "le" -> Le | "gt" -> Gt | "ge" -> Ge
  | other -> fail line "unknown comparison %S" other

let parse_instr st line toks =
  match toks with
  | [] -> None
  | op :: args ->
    let parts = String.split_on_char '.' op in
    (match parts, args with
     (* cvt.*: full opcode strings *)
     | ("cvt" :: _), [ d; a ] ->
       let cv, dty =
         match op with
         | "cvt.rn.f32.s32" -> (F32_of_s32, F32)
         | "cvt.rn.f32.u32" -> (F32_of_u32, F32)
         | "cvt.rzi.s32.f32" -> (S32_of_f32, S32)
         | "cvt.rzi.u32.f32" -> (U32_of_f32, U32)
         | "cvt.s32.u32" -> (S32_of_u32, S32)
         | "cvt.u32.s32" -> (U32_of_s32, U32)
         | other -> fail line "unknown conversion %S" other
       in
       let a = operand st line a in
       Some (Cvt (cv, def_reg st line d dty, a))
     | [ "mad"; "lo"; ty ], [ d; a; b; c ] ->
       let ty = dtype_of_string line ty in
       let a = operand st line a and b = operand st line b
       and c = operand st line c in
       Some (Imad (def_reg st line d ty, a, b, c))
     | [ "fma"; "rn"; "f32" ], [ d; a; b; c ] ->
       let a = float_operand st line a and b = float_operand st line b
       and c = float_operand st line c in
       Some (Ffma (def_reg st line d F32, a, b, c))
     | [ "setp"; cmp; ty ], [ p; a; b ] ->
       let cmp = cmpop_of line cmp in
       let ty = dtype_of_string line ty in
       let parse_op = if ty = F32 then float_operand else operand in
       let a = parse_op st line a and b = parse_op st line b in
       Some (Setp (cmp, ty, def_reg st line p Pred, a, b))
     | [ "selp"; ty ], [ d; a; b; p ] ->
       let ty = dtype_of_string line ty in
       let parse_op = if ty = F32 then float_operand else operand in
       let a = parse_op st line a and b = parse_op st line b in
       let p = use_reg st line p in
       Some (Selp (def_reg st line d ty, a, b, p))
     | [ "mov"; ty ], [ d; a ] ->
       let ty = dtype_of_string line ty in
       let parse_op = if ty = F32 then float_operand else operand in
       let a = parse_op st line a in
       Some (Mov (def_reg st line d ty, a))
     | [ "ld"; "param"; ty ], [ d; slot ] ->
       let ty = dtype_of_string line ty in
       let idx =
         try Scanf.sscanf slot "[param%d]" Fun.id
         with _ -> fail line "malformed param slot %S" slot
       in
       Some (Ld_param (def_reg st line d ty, idx))
     | [ "ld"; _space; ty ], [ d; addr ] ->
       let ty = dtype_of_string line ty in
       Some (Ld (def_reg st line d ty, parse_addr st line addr))
     | [ "st"; _space ], [ addr; v ] ->
       let a = parse_addr st line addr in
       let parse_op = if a.abuf.buf_elem = F32 then float_operand else operand in
       Some (St (a, parse_op st line v))
     | [ "bar"; "sync" ], [ _ ] -> Some Bar
     | [ opname; ty ], [ d; a; b ] ->
       let ty = dtype_of_string line ty in
       (match ty with
        | F32 ->
          (match fbinop_of opname with
           | Some o ->
             let a = float_operand st line a and b = float_operand st line b in
             Some (Fbin (o, def_reg st line d F32, a, b))
           | None -> fail line "unknown float op %S" opname)
        | S32 | U32 ->
          (match ibinop_of opname with
           | Some o ->
             let a = operand st line a and b = operand st line b in
             Some (Ibin (o, def_reg st line d ty, a, b))
           | None -> fail line "unknown integer op %S" opname)
        | Pred -> fail line "predicate-typed ALU op %S" op)
     | [ opname; ty ], [ d; a ] ->
       let ty = dtype_of_string line ty in
       (match ty with
        | F32 ->
          (match funop_of opname with
           | Some o ->
             let a = float_operand st line a in
             Some (Fun (o, def_reg st line d F32, a))
           | None -> fail line "unknown float unop %S" opname)
        | S32 | U32 ->
          (match iunop_of opname with
           | Some o ->
             let a = operand st line a in
             Some (Iun (o, def_reg st line d ty, a))
           | None -> fail line "unknown integer unop %S" opname)
        | Pred -> fail line "predicate-typed unop %S" op)
     | _ -> fail line "cannot parse instruction %S" (String.concat " " toks))

(* Terminators:
     "ret" | "bra bbN" | "@%p_1 bra bbN; bra bbM" *)
let parse_terminator st line raw =
  let raw = String.trim raw in
  if raw = "ret" then Some Ret
  else
    match tokens (String.map (function ';' -> ' ' | c -> c) raw) with
    | [ "bra"; l ] -> Some (Br (block_label line l))
    | [ guard; "bra"; t; "bra"; f ] when guard.[0] = '@' ->
      let p = use_reg st line (String.sub guard 1 (String.length guard - 1)) in
      Some (Cbr (p, block_label line t, block_label line f))
    | _ -> None

(* ------------------------------------------------------------------ *)

let parse_header st line text =
  (* ".entry NAME (decl, decl, ...)" *)
  let open_p =
    match String.index_opt text '(' with
    | Some i -> i
    | None -> fail line "missing '(' in .entry"
  in
  let close_p =
    match String.rindex_opt text ')' with
    | Some i -> i
    | None -> fail line "missing ')' in .entry"
  in
  (match tokens (String.sub text 0 open_p) with
   | [ ".entry"; name ] -> st.name <- name
   | _ -> fail line "malformed .entry line");
  let decls = String.sub text (open_p + 1) (close_p - open_p - 1) in
  (* Split on commas that are outside range comments. *)
  let split_decls s =
    let out = ref [] and buf = Buffer.create 16 in
    let in_comment = ref false in
    String.iteri
      (fun i c ->
         if !in_comment then begin
           Buffer.add_char buf c;
           if c = '/' && i > 0 && s.[i - 1] = '*' then in_comment := false
         end
         else if c = '*' && i > 0 && s.[i - 1] = '/' then begin
           Buffer.add_char buf c;
           in_comment := true
         end
         else if c = ',' then begin
           out := Buffer.contents buf :: !out;
           Buffer.clear buf
         end
         else Buffer.add_char buf c)
      s;
    out := Buffer.contents buf :: !out;
    List.rev !out
  in
  if String.trim decls <> "" then
    split_decls decls
    |> List.iter (fun d ->
        let d, comment = split_comment d in
        match tokens d with
        | [ ".param"; ty; pname ] ->
          let ty = dtype_of_string line (String.sub ty 1 (String.length ty - 1)) in
          let p_range = Option.map (parse_range line) comment in
          st.params <-
            { p_index = List.length st.params; p_name = pname; p_ty = ty;
              p_range }
            :: st.params
        | _ -> fail line "malformed parameter declaration %S" d)

let parse text =
  let st =
    {
      name = "";
      params = [];
      buffers = [];
      specials = [];
      types = Hashtbl.create 64;
      names = Hashtbl.create 64;
      blocks = [];
      cur = None;
      max_id = -1;
    }
  in
  try
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun lno raw ->
         let line = lno + 1 in
         let text, comment = split_comment raw in
         let text = String.trim text in
         if text = "" then ()
         else if String.length text > 6 && String.sub text 0 6 = ".entry" then
           parse_header st line raw
         else if text.[0] = '.' then begin
           match tokens text with
           | [ ".sreg"; id; sname ] ->
             let id =
               match int_of_string_opt id with
               | Some i -> i
               | None -> fail line "malformed .sreg id"
             in
             let sp = special_of_string line sname in
             Hashtbl.replace st.types id S32;
             Hashtbl.replace st.names id sname;
             st.max_id <- max st.max_id id;
             st.specials <- (id, sp) :: st.specials
           | [ space; ty; bname ] ->
             let buf_space =
               match space with
               | ".global" -> Global
               | ".shared" -> Shared
               | ".tex" -> Texture
               | other -> fail line "unknown buffer space %S" other
             in
             let buf_elem =
               dtype_of_string line (String.sub ty 1 (String.length ty - 1))
             in
             let buf_range = Option.map (parse_range line) comment in
             st.buffers <-
               { buf_id = List.length st.buffers; buf_name = bname;
                 buf_space; buf_elem; buf_range }
               :: st.buffers
           | _ -> fail line "cannot parse declaration %S" text
         end
         else if String.length text > 2 && String.sub text 0 2 = "bb"
                 && text.[String.length text - 1] = ':' then begin
           let label =
             block_label line (String.sub text 0 (String.length text - 1))
           in
           if label <> List.length st.blocks then
             fail line "block labels must be dense and in order (got bb%d)"
               label;
           let instrs = ref [] and term = ref None in
           st.blocks <- (label, instrs, term) :: st.blocks;
           st.cur <- Some (instrs, term)
         end
         else begin
           let instrs, term =
             match st.cur with
             | Some c -> c
             | None -> fail line "instruction outside a block"
           in
           if !term <> None then
             fail line "instruction after terminator";
           match parse_terminator st line text with
           | Some t -> term := Some t
           | None ->
             (match parse_instr st line (tokens text) with
              | Some ins -> instrs := ins :: !instrs
              | None -> ())
         end)
      lines;
    let blocks =
      List.rev st.blocks
      |> List.map (fun (label, instrs, term) ->
          match !term with
          | Some t ->
            { label; instrs = Array.of_list (List.rev !instrs); term = t }
          | None -> fail 0 "block bb%d has no terminator" label)
      |> Array.of_list
    in
    if Array.length blocks = 0 then fail 0 "no blocks";
    if st.name = "" then fail 0 "missing .entry declaration";
    let kernel =
      {
        k_name = st.name;
        k_blocks = blocks;
        k_params = Array.of_list (List.rev st.params);
        k_buffers = Array.of_list (List.rev st.buffers);
        k_num_vregs = st.max_id + 1;
        k_specials = st.specials;
      }
    in
    (match Cfg.validate kernel with
     | Ok () -> Ok kernel
     | Error e -> Error e)
  with Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn text =
  match parse text with
  | Ok k -> k
  | Error e -> invalid_arg ("Parser.parse: " ^ e)
