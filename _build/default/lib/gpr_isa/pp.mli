(** PTX-flavoured pretty-printing of kernels, used in error messages,
    example output and the documentation. *)

open Types

val pp_vreg : Format.formatter -> vreg -> unit
val pp_operand : Format.formatter -> operand -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_terminator : Format.formatter -> terminator -> unit
val pp_kernel : Format.formatter -> kernel -> unit
val kernel_to_string : kernel -> string

val instr_count : kernel -> int
(** Static instruction count (excluding terminators). *)
