(** Parser for the textual kernel form emitted by {!Pp.pp_kernel}.

    The printed form is self-contained (parameter/buffer/special-
    register declarations followed by labelled basic blocks), so
    kernels can be stored in and loaded from `.mptx` files:

    {[
      .entry saxpy (.param .s32 n /* [0,4096] */, .param .f32 a)
      .global .f32 x
      .global .f32 y
      .sreg 2 tid.x
      bb0:
        ld.param.s32 %n_0, [param0]
        ...
        ret
    ]}

    [parse] returns a validated kernel; round-tripping any executable
    kernel through {!Pp.kernel_to_string} and back is the identity up to
    register display names. *)

val parse : string -> (Types.kernel, string) result

val parse_exn : string -> Types.kernel
(** @raise Invalid_argument with a line-numbered message. *)
