(** Control-flow-graph queries over a {!Types.kernel}. *)

open Types

type t

val of_kernel : kernel -> t
val num_blocks : t -> int
val block : t -> int -> block
val succs : t -> int -> int list
val preds : t -> int -> int list

val reverse_postorder : t -> int array
(** Blocks reachable from entry, in reverse postorder (entry first). *)

val postorder : t -> int array

val exit_blocks : t -> int list
(** Blocks terminated by [Ret]. *)

val validate : kernel -> (unit, string) result
(** Structural checks: branch targets in range, entry exists, every
    reachable block terminated, no [Phi] outside block heads, vreg ids
    within [k_num_vregs], operand/instruction type consistency. *)
