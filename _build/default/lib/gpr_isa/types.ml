(** Core types of the mini-PTX virtual ISA.

    The ISA mirrors the level at which the paper's static framework
    operates (Sec. 5.1): NVIDIA PTX before [ptxas] register allocation —
    an unbounded set of *typed virtual registers*, structured control
    flow lowered to basic blocks with conditional branches, and distinct
    memory spaces (global / shared / texture / param).

    Design restrictions (documented deviations from full PTX):
    - no predicated guards on ordinary instructions; predicates feed only
      {!terminator.Cbr} and {!instr.Selp}.  The builder lowers small
      conditionals to [Selp] and larger ones to CFG diamonds.
    - memory operands are (buffer, element-index) pairs rather than raw
      byte pointers; the simulator derives byte addresses as
      [4 * index] within each buffer, which preserves coalescing
      behaviour while keeping the range analysis exact. *)

type dtype =
  | S32   (** signed 32-bit integer *)
  | U32   (** unsigned 32-bit integer *)
  | F32   (** IEEE-754 single precision *)
  | Pred  (** 1-bit predicate *)

let dtype_equal (a : dtype) b = a = b

let dtype_to_string = function
  | S32 -> "s32"
  | U32 -> "u32"
  | F32 -> "f32"
  | Pred -> "pred"

type vreg = { id : int; ty : dtype; name : string }

let vreg_equal (a : vreg) (b : vreg) = a.id = b.id

type operand =
  | Reg of vreg
  | Imm_i of int    (** integer immediate (also used for U32) *)
  | Imm_f of float

type space =
  | Global
  | Shared
  | Texture  (** read-only, cached in the per-SM texture cache *)
  | Param    (** kernel parameters, read-only *)

type ibinop =
  | Add | Sub | Mul | Div | Rem
  | Min | Max
  | And | Or | Xor
  | Shl | Shr  (** [Shr] is arithmetic for S32, logical for U32 *)

type iunop = Ineg | Inot | Iabs

type fbinop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

type funop =
  | Fneg | Fabs | Ffloor
  | Fsqrt | Frsqrt | Frcp    (** executed on the SFU *)
  | Fsin | Fcos | Fex2 | Flg2  (** transcendental, SFU *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type cvtop =
  | F32_of_s32  (** cvt.rn.f32.s32 *)
  | F32_of_u32
  | S32_of_f32  (** cvt.rzi.s32.f32 — truncate toward zero *)
  | U32_of_f32
  | S32_of_u32  (** reinterpret width-preserving move *)
  | U32_of_s32

(** A buffer is a linear array of 32-bit elements in some memory space.
    [buf_range] optionally declares a static value range for integer
    buffers (e.g. 8-bit image data loaded as [0, 255]); the range
    analysis seeds loads from it, mirroring the domain-knowledge
    annotations the paper's framework relies on. *)
type buffer = {
  buf_id : int;
  buf_name : string;
  buf_space : space;
  buf_elem : dtype;  (** S32/U32/F32 *)
  buf_range : (int * int) option;
}

(** Address of a 32-bit element: [buffer[index]]. *)
type addr = { abuf : buffer; aindex : operand }

(** Branch-implied bound used by e-SSA π-nodes (analysis-only).
    [Pb_var (v, off)] is a *future* in Pereira's terminology: the bound
    is [off] plus the (not yet known) bound of vreg [v]. *)
type pi_bound =
  | Pb_none
  | Pb_const of int
  | Pb_var of int * int

type pi_filter = { pf_lo : pi_bound; pf_hi : pi_bound }

type instr =
  | Ibin of ibinop * vreg * operand * operand
  | Iun of iunop * vreg * operand
  | Imad of vreg * operand * operand * operand  (** d = a*b + c *)
  | Fbin of fbinop * vreg * operand * operand
  | Fun of funop * vreg * operand
  | Ffma of vreg * operand * operand * operand  (** d = a*b + c *)
  | Setp of cmpop * dtype * vreg * operand * operand
      (** [Setp (op, cmp_ty, p, a, b)]: p := a `op` b at type [cmp_ty] *)
  | Selp of vreg * operand * operand * vreg
      (** d := if p then a else b *)
  | Mov of vreg * operand
  | Cvt of cvtop * vreg * operand
  | Ld of vreg * addr
  | Ld_param of vreg * int  (** parameter index *)
  | St of addr * operand
  | Bar  (** CTA-wide barrier *)
  | Phi of vreg * (int * operand) list
      (** SSA only: [(pred_block, value)] per predecessor.  Produced by
          {!Gpr_analysis.Ssa}; never present in executable kernels. *)
  | Pi of vreg * vreg * pi_filter
      (** e-SSA only: [Pi (d, s, f)] renames [s] to [d] on a branch edge,
          asserting the branch-implied range filter [f].  Produced by
          {!Gpr_analysis.Essa}; never present in executable kernels. *)

type terminator =
  | Br of int             (** unconditional branch to block label *)
  | Cbr of vreg * int * int  (** if pred then b_true else b_false *)
  | Ret

type block = {
  label : int;
  mutable instrs : instr array;
  mutable term : terminator;
}

(** Kernel parameter declaration.  [p_range] carries an optional static
    value range (e.g. an image dimension known at kernel-launch time);
    the range analysis seeds parameter loads from it, mirroring how the
    paper's framework knows launch bounds per kernel. *)
type param = {
  p_index : int;
  p_name : string;
  p_ty : dtype;
  p_range : (int * int) option;
}

type special = Tid_x | Tid_y | Ntid_x | Ntid_y | Ctaid_x | Ctaid_y | Nctaid_x | Nctaid_y

type kernel = {
  k_name : string;
  k_blocks : block array;     (** entry is [k_blocks.(0)] *)
  k_params : param array;
  k_buffers : buffer array;
  k_num_vregs : int;
  k_specials : (int * special) list;
      (** vreg id -> special register it was seeded from *)
}

(** Launch geometry of a kernel invocation (CTA and grid shape). *)
type launch = {
  ntid_x : int;
  ntid_y : int;
  nctaid_x : int;
  nctaid_y : int;
}

let launch_1d ~block ~grid = { ntid_x = block; ntid_y = 1; nctaid_x = grid; nctaid_y = 1 }
let threads_per_block l = l.ntid_x * l.ntid_y
let num_blocks l = l.nctaid_x * l.nctaid_y

(* ------------------------------------------------------------------ *)
(* Accessors *)

let defs = function
  | Ibin (_, d, _, _) | Iun (_, d, _) | Imad (d, _, _, _)
  | Fbin (_, d, _, _) | Fun (_, d, _) | Ffma (d, _, _, _)
  | Setp (_, _, d, _, _) | Selp (d, _, _, _)
  | Mov (d, _) | Cvt (_, d, _) | Ld (d, _) | Ld_param (d, _)
  | Phi (d, _) | Pi (d, _, _) -> Some d
  | St _ | Bar -> None

let operand_uses op acc = match op with Reg r -> r :: acc | Imm_i _ | Imm_f _ -> acc

let uses = function
  | Ibin (_, _, a, b) | Fbin (_, _, a, b) | Setp (_, _, _, a, b) ->
    operand_uses a (operand_uses b [])
  | Iun (_, _, a) | Fun (_, _, a) | Mov (_, a) | Cvt (_, _, a) -> operand_uses a []
  | Imad (_, a, b, c) | Ffma (_, a, b, c) ->
    operand_uses a (operand_uses b (operand_uses c []))
  | Selp (_, a, b, p) -> p :: operand_uses a (operand_uses b [])
  | Ld (_, { aindex; _ }) -> operand_uses aindex []
  | St ({ aindex; _ }, v) -> operand_uses aindex (operand_uses v [])
  | Ld_param _ | Bar -> []
  | Phi (_, ins) -> List.fold_left (fun acc (_, op) -> operand_uses op acc) [] ins
  | Pi (_, s, _) -> [ s ]

let term_uses = function
  | Br _ | Ret -> []
  | Cbr (p, _, _) -> [ p ]

let successors = function
  | Br l -> [ l ]
  | Cbr (_, t, f) -> [ t; f ]
  | Ret -> []

(** Execution-unit class of an instruction, used by the timing model.
    Matches the Fermi assignment in Sec. 3.1: SPUs execute everything
    except built-in trigonometric/logarithmic (and other multi-cycle
    special) operations, which go to the SFU; LD/ST handles memory. *)
type unit_class = Spu | Sfu | Ldst | Sync

let unit_class_of = function
  | Fun (f, _, _) ->
    (match f with
     | Fsqrt | Frsqrt | Frcp | Fsin | Fcos | Fex2 | Flg2 -> Sfu
     | Fneg | Fabs | Ffloor -> Spu)
  | Ibin ((Div | Rem), _, _, _) -> Sfu
  | Fbin (Fdiv, _, _, _) -> Sfu
  | Ld _ | St _ | Ld_param _ -> Ldst
  | Bar -> Sync
  | Ibin _ | Iun _ | Imad _ | Fbin _ | Ffma _ | Setp _ | Selp _ | Mov _
  | Cvt _ | Phi _ | Pi _ -> Spu
