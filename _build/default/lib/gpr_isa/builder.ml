open Types

type block_acc = {
  b_label : int;
  mutable b_instrs : instr list;  (* reversed *)
  mutable b_term : terminator option;
}

type t = {
  name : string;
  mutable blocks : block_acc list;  (* reversed; includes current *)
  mutable cur : block_acc;
  mutable next_label : int;
  mutable next_vreg : int;
  mutable params : param list;     (* reversed *)
  mutable buffers : buffer list;   (* reversed *)
  mutable specials : (int * special) list;
  mutable special_cache : (special * vreg) list;
  mutable gtid_cache : vreg option;
}

let create ~name =
  let entry = { b_label = 0; b_instrs = []; b_term = None } in
  {
    name;
    blocks = [ entry ];
    cur = entry;
    next_label = 1;
    next_vreg = 0;
    params = [];
    buffers = [];
    specials = [];
    special_cache = [];
    gtid_cache = None;
  }

let fresh t ty name =
  let id = t.next_vreg in
  t.next_vreg <- id + 1;
  { id; ty; name }

let emit t ins = t.cur.b_instrs <- ins :: t.cur.b_instrs

let new_block t =
  let b = { b_label = t.next_label; b_instrs = []; b_term = None } in
  t.next_label <- t.next_label + 1;
  t.blocks <- b :: t.blocks;
  b

let terminate t term =
  match t.cur.b_term with
  | Some _ -> ()  (* already sealed (e.g. by [ret] inside the body) *)
  | None -> t.cur.b_term <- Some term

let switch_to t b = t.cur <- b

let ( ~$ ) r = Reg r
let ci i = Imm_i i
let cf f = Imm_f f

(* ------------------------------------------------------------------ *)
(* Parameters, buffers, specials *)

let add_param t ty ?range name =
  let p_index = List.length t.params in
  t.params <- { p_index; p_name = name; p_ty = ty; p_range = range } :: t.params;
  let d = fresh t ty name in
  emit t (Ld_param (d, p_index));
  d

let param_i32 t ?range name = add_param t S32 ?range name
let param_u32 t ?range name = add_param t U32 ?range name
let param_f32 t name = add_param t F32 name

let add_buffer t space elem ?range name =
  let buf =
    { buf_id = List.length t.buffers; buf_name = name; buf_space = space;
      buf_elem = elem; buf_range = range }
  in
  t.buffers <- buf :: t.buffers;
  buf

let global_buffer t elem ?range name = add_buffer t Global elem ?range name
let shared_buffer t elem ?range name = add_buffer t Shared elem ?range name
let texture_buffer t elem ?range name = add_buffer t Texture elem ?range name

let special_name = function
  | Tid_x -> "tid.x" | Tid_y -> "tid.y"
  | Ntid_x -> "ntid.x" | Ntid_y -> "ntid.y"
  | Ctaid_x -> "ctaid.x" | Ctaid_y -> "ctaid.y"
  | Nctaid_x -> "nctaid.x" | Nctaid_y -> "nctaid.y"

let special t s =
  match List.assoc_opt s t.special_cache with
  | Some r -> r
  | None ->
    let r = fresh t S32 (special_name s) in
    t.specials <- (r.id, s) :: t.specials;
    t.special_cache <- (s, r) :: t.special_cache;
    r

let tid_x t = special t Tid_x
let tid_y t = special t Tid_y
let ntid_x t = special t Ntid_x
let ntid_y t = special t Ntid_y
let ctaid_x t = special t Ctaid_x
let ctaid_y t = special t Ctaid_y
let nctaid_x t = special t Nctaid_x
let nctaid_y t = special t Nctaid_y

(* ------------------------------------------------------------------ *)
(* Instructions *)

let ibin t op ?(ty = S32) a b name =
  let d = fresh t ty name in
  emit t (Ibin (op, d, a, b));
  d

let iadd t ?ty a b = ibin t Add ?ty a b "t"
let isub t ?ty a b = ibin t Sub ?ty a b "t"
let imul t ?ty a b = ibin t Mul ?ty a b "t"
let idiv t ?ty a b = ibin t Div ?ty a b "t"
let irem t ?ty a b = ibin t Rem ?ty a b "t"
let imin t ?ty a b = ibin t Min ?ty a b "t"
let imax t ?ty a b = ibin t Max ?ty a b "t"
let iand t ?ty a b = ibin t And ?ty a b "t"
let ior t ?ty a b = ibin t Or ?ty a b "t"
let ixor t ?ty a b = ibin t Xor ?ty a b "t"
let ishl t ?ty a b = ibin t Shl ?ty a b "t"
let ishr t ?ty a b = ibin t Shr ?ty a b "t"

let imad t ?(ty = S32) a b c =
  let d = fresh t ty "t" in
  emit t (Imad (d, a, b, c));
  d

let iun t op ?(ty = S32) a =
  let d = fresh t ty "t" in
  emit t (Iun (op, d, a));
  d

let ineg t ?ty a = iun t Ineg ?ty a
let inot t ?ty a = iun t Inot ?ty a
let iabs t ?ty a = iun t Iabs ?ty a

let fbin t op a b =
  let d = fresh t F32 "f" in
  emit t (Fbin (op, d, a, b));
  d

let fadd t a b = fbin t Fadd a b
let fsub t a b = fbin t Fsub a b
let fmul t a b = fbin t Fmul a b
let fdiv t a b = fbin t Fdiv a b
let fmin t a b = fbin t Fmin a b
let fmax t a b = fbin t Fmax a b

let ffma t a b c =
  let d = fresh t F32 "f" in
  emit t (Ffma (d, a, b, c));
  d

let funop t op a =
  let d = fresh t F32 "f" in
  emit t (Fun (op, d, a));
  d

let fneg t a = funop t Fneg a
let fabs t a = funop t Fabs a
let ffloor t a = funop t Ffloor a
let fsqrt t a = funop t Fsqrt a
let frsqrt t a = funop t Frsqrt a
let frcp t a = funop t Frcp a
let fsin t a = funop t Fsin a
let fcos t a = funop t Fcos a
let fex2 t a = funop t Fex2 a
let flg2 t a = funop t Flg2 a

let setp t op ty a b =
  let p = fresh t Pred "p" in
  emit t (Setp (op, ty, p, a, b));
  p

let ilt t a b = setp t Lt S32 a b
let ile t a b = setp t Le S32 a b
let igt t a b = setp t Gt S32 a b
let ige t a b = setp t Ge S32 a b
let ieq t a b = setp t Eq S32 a b
let ine t a b = setp t Ne S32 a b
let flt t a b = setp t Lt F32 a b
let fle t a b = setp t Le F32 a b
let fgt t a b = setp t Gt F32 a b
let fge t a b = setp t Ge F32 a b

let selp t ty a b p =
  let d = fresh t ty "sel" in
  emit t (Selp (d, a, b, p));
  d

let pand t p q =
  (* p && q as integers: selp gives 1/0, then setp against 0. *)
  let pi = selp t S32 (Imm_i 1) (Imm_i 0) p in
  let qi = selp t S32 (Imm_i 1) (Imm_i 0) q in
  let both = ibin t And (Reg pi) (Reg qi) "pq" in
  setp t Ne S32 (Reg both) (Imm_i 0)

let cvt t op a name =
  let ty = match op with
    | F32_of_s32 | F32_of_u32 -> F32
    | S32_of_f32 | S32_of_u32 -> S32
    | U32_of_f32 | U32_of_s32 -> U32
  in
  let d = fresh t ty name in
  emit t (Cvt (op, d, a));
  d

let itof t a = cvt t F32_of_s32 a "f"
let utof t a = cvt t F32_of_u32 a "f"
let ftoi t a = cvt t S32_of_f32 a "i"
let ftou t a = cvt t U32_of_f32 a "u"

let mov t ty a =
  let d = fresh t ty "m" in
  emit t (Mov (d, a));
  d

let ld t buf idx =
  let d = fresh t buf.buf_elem buf.buf_name in
  emit t (Ld (d, { abuf = buf; aindex = idx }));
  d

let st t buf idx v = emit t (St ({ abuf = buf; aindex = idx }, v))
let bar t = emit t Bar

let global_thread_id_x t =
  match t.gtid_cache with
  | Some r -> r
  | None ->
    let r =
      imad t (Reg (ctaid_x t)) (Reg (ntid_x t)) (Reg (tid_x t))
    in
    t.gtid_cache <- Some r;
    r

(* ------------------------------------------------------------------ *)
(* Variables and control flow *)

let var t ty name = fresh t ty name
let assign t r op = emit t (Mov (r, op))

let if_ t p then_ else_ =
  let bt = new_block t and bf = new_block t and bj = new_block t in
  terminate t (Cbr (p, bt.b_label, bf.b_label));
  switch_to t bt;
  then_ ();
  terminate t (Br bj.b_label);
  switch_to t bf;
  else_ ();
  terminate t (Br bj.b_label);
  switch_to t bj

let if_then t p then_ = if_ t p then_ (fun () -> ())

let while_ t cond body =
  let bh = new_block t in
  terminate t (Br bh.b_label);
  switch_to t bh;
  let p = cond () in
  let bb = new_block t and bx = new_block t in
  terminate t (Cbr (p, bb.b_label, bx.b_label));
  switch_to t bb;
  body ();
  terminate t (Br bh.b_label);
  switch_to t bx

let for_ t ?(var_name = "i") ~lo ~hi body =
  let i = var t S32 var_name in
  assign t i lo;
  while_ t
    (fun () -> ilt t (Reg i) hi)
    (fun () ->
       body i;
       assign t i (Reg (iadd t (Reg i) (Imm_i 1))))

let ret t =
  terminate t Ret;
  let cont = new_block t in
  switch_to t cont

(* ------------------------------------------------------------------ *)

let finish t =
  terminate t Ret;
  let accs = List.rev t.blocks in
  let blocks =
    List.map
      (fun acc ->
         let term = match acc.b_term with Some tm -> tm | None -> Ret in
         { label = acc.b_label;
           instrs = Array.of_list (List.rev acc.b_instrs);
           term })
      accs
    |> Array.of_list
  in
  let kernel =
    {
      k_name = t.name;
      k_blocks = blocks;
      k_params = Array.of_list (List.rev t.params);
      k_buffers = Array.of_list (List.rev t.buffers);
      k_num_vregs = t.next_vreg;
      k_specials = t.specials;
    }
  in
  match Cfg.validate kernel with
  | Ok () -> kernel
  | Error msg -> invalid_arg ("Builder.finish: " ^ msg)
