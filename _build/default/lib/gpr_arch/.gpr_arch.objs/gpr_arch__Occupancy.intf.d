lib/gpr_arch/occupancy.mli: Config
