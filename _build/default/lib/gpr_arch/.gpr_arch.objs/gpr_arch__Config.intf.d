lib/gpr_arch/config.mli:
