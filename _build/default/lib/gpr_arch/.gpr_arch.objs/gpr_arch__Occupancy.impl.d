lib/gpr_arch/occupancy.ml: Config List Printf
