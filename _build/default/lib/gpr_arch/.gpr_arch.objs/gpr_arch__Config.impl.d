lib/gpr_arch/config.ml:
