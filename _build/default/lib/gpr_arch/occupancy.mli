(** Occupancy calculation (Sec. 2 / Sec. 6.1).

    A kernel's resident blocks per SM are bounded by four resources:
    registers, shared memory, the maximum warp count and the maximum
    block count.  Occupancy is the ratio of active warps to
    [max_warps]. *)

type limiter = Registers | Shared_memory | Warp_slots | Block_slots

type result = {
  blocks_per_sm : int;
  warps_per_sm : int;
  occupancy : float;          (** active warps / max warps *)
  limiter : limiter;          (** the binding constraint *)
  registers_used : int;       (** per SM *)
}

val limiter_to_string : limiter -> string

val compute :
  Config.t ->
  regs_per_thread:int ->
  warps_per_block:int ->
  shared_bytes_per_block:int ->
  result
(** @raise Invalid_argument if a single block exceeds an SM resource. *)
