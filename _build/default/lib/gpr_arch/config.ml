type scheduler_policy = Gto | Lrr

type t = {
  name : string;
  clock_mhz : int;
  num_sms : int;
  warp_size : int;
  warp_schedulers : int;
  max_warps : int;
  max_blocks : int;
  registers_per_sm : int;
  register_banks : int;
  register_bank_width_bits : int;
  entries_per_bank : int;
  operand_collectors : int;
  shared_mem_bytes : int;
  l1_bytes : int;
  l1_line_bytes : int;
  tex_bytes : int;
  l2_bytes : int;
  scheduler : scheduler_policy;
  spu_latency : int;
  sfu_latency : int;
  shared_latency : int;
  l1_hit_latency : int;
  l2_hit_latency : int;
  dram_latency : int;
  writeback_width : int;
  dram_line_interval : int;
  l2_line_interval : int;
  total_transistors : float;
  register_files_per_sm : int;
}

(* Table 2 of the paper (Fermi GTX 480), completed with the standard
   GPGPU-Sim GTX 480 latencies for the parameters the table omits. *)
let fermi_gtx480 =
  {
    name = "Fermi GTX 480";
    clock_mhz = 1400;
    num_sms = 15;
    warp_size = 32;
    warp_schedulers = 2;
    max_warps = 48;
    max_blocks = 8;
    registers_per_sm = 32768;
    register_banks = 16;
    register_bank_width_bits = 1024;
    entries_per_bank = 64;
    operand_collectors = 16;
    shared_mem_bytes = 48 * 1024;
    l1_bytes = 16 * 1024;
    l1_line_bytes = 128;
    tex_bytes = 12 * 1024;
    l2_bytes = 786 * 1024;
    scheduler = Gto;
    spu_latency = 4;
    sfu_latency = 8;
    shared_latency = 24;
    l1_hit_latency = 28;
    l2_hit_latency = 120;
    dram_latency = 440;
    writeback_width = 3;
    (* 177 GB/s over 15 SMs at 1.4 GHz and 128-byte lines: one DRAM
       line every ~15 cycles per SM. *)
    dram_line_interval = 15;
    (* L2-to-SM bandwidth: ~32 B per core cycle per SM = one 128-byte
       line every 4 cycles. *)
    l2_line_interval = 4;
    total_transistors = 3.1e9;
    register_files_per_sm = 1;
  }

(* Sec. 7: Volta V100.  Each SM is partitioned into 4 processing blocks,
   each with a dedicated 64 KB register file and warp scheduler. *)
let volta_v100 =
  {
    name = "Volta V100";
    clock_mhz = 1455;
    num_sms = 84;
    warp_size = 32;
    warp_schedulers = 4;
    max_warps = 64;
    max_blocks = 32;
    registers_per_sm = 65536;
    register_banks = 8;
    register_bank_width_bits = 1024;
    entries_per_bank = 64;
    operand_collectors = 16;
    shared_mem_bytes = 96 * 1024;
    l1_bytes = 128 * 1024;
    l1_line_bytes = 128;
    tex_bytes = 32 * 1024;
    l2_bytes = 6 * 1024 * 1024;
    scheduler = Gto;
    spu_latency = 4;
    sfu_latency = 8;
    shared_latency = 19;
    l1_hit_latency = 28;
    l2_hit_latency = 190;
    dram_latency = 400;
    writeback_width = 3;
    (* 900 GB/s over 84 SMs at 1.455 GHz: ~17 cycles per line. *)
    dram_line_interval = 17;
    l2_line_interval = 6;
    total_transistors = 21.1e9;
    register_files_per_sm = 4;
  }

let registers_per_block t ~regs_per_thread ~warps_per_block =
  regs_per_thread * t.warp_size * warps_per_block

let architectural_registers = 256
let slice_bits = 4
let slices_per_register = 8
