(** GPU architecture parameters.

    {!fermi_gtx480} reproduces Table 2 of the paper; {!volta_v100}
    carries the Sec. 7 scaling discussion. *)

type scheduler_policy =
  | Gto  (** greedy-then-oldest (Table 2 default) *)
  | Lrr  (** loose round-robin, used as an ablation *)

type t = {
  name : string;
  clock_mhz : int;
  num_sms : int;
  (* per SM *)
  warp_size : int;
  warp_schedulers : int;
  max_warps : int;             (** maximum resident warps per SM *)
  max_blocks : int;            (** maximum resident thread blocks per SM *)
  registers_per_sm : int;      (** 32-bit thread registers *)
  register_banks : int;
  register_bank_width_bits : int;
  entries_per_bank : int;
  operand_collectors : int;
  shared_mem_bytes : int;
  l1_bytes : int;
  l1_line_bytes : int;
  tex_bytes : int;             (** dedicated texture cache *)
  l2_bytes : int;              (** shared across SMs *)
  scheduler : scheduler_policy;
  (* latencies, in core cycles *)
  spu_latency : int;
  sfu_latency : int;
  shared_latency : int;
  l1_hit_latency : int;
  l2_hit_latency : int;
  dram_latency : int;
  writeback_width : int;       (** operands per cycle on the writeback bus *)
  dram_line_interval : int;    (** cycles between DRAM line services, per SM
                                   (models the SM's share of memory bandwidth) *)
  l2_line_interval : int;      (** cycles between L2 line services, per SM *)
  (* chip-level figures used by the area model *)
  total_transistors : float;
  register_files_per_sm : int; (** 1 for Fermi; 4 processing blocks in Volta *)
}

val fermi_gtx480 : t
val volta_v100 : t

val registers_per_block : t -> regs_per_thread:int -> warps_per_block:int -> int
(** Register-file allocation granularity is the warp: a block consumes
    [regs_per_thread * warp_size * warps_per_block] physical registers. *)

val architectural_registers : int
(** Number of architectural (ISA-visible) registers assumed by the
    indirection table: 256 (Sec. 3.2.2). *)

val slice_bits : int
(** Register slice granularity: 4 bits (Sec. 3.2). *)

val slices_per_register : int
(** 32-bit thread register = 8 slices. *)
