open Gpr_alloc.Alloc

type t = {
  banks : int;
  table : (int, placement) Hashtbl.t;
}

let create ?(banks = 16) (alloc : Gpr_alloc.Alloc.t) =
  if alloc.num_arch_regs > Gpr_arch.Config.architectural_registers then
    invalid_arg
      (Printf.sprintf
         "Indirection.create: %d architectural registers exceed the %d-entry table"
         alloc.num_arch_regs Gpr_arch.Config.architectural_registers);
  { banks; table = Hashtbl.copy alloc.placements }

let banks t = t.banks
let bank_of t arch_reg = arch_reg mod t.banks
let lookup t arch_reg = Hashtbl.find_opt t.table arch_reg
let num_entries t = Hashtbl.length t.table

let entry_bits (_ : placement) =
  (* m0 + m1 masks (8 bits each), two physical register ids (6 bits
     each: a thread's allocation spans at most 64 registers), signed
     and convert flags — 30 bits, within the 32 the paper budgets. *)
  8 + 8 + 6 + 6 + 1 + 1

let grant t requests =
  let used = Array.make t.banks false in
  List.fold_left
    (fun (granted, deferred) r ->
       let b = bank_of t r in
       if used.(b) then (granted, r :: deferred)
       else begin
         used.(b) <- true;
         (r :: granted, deferred)
       end)
    ([], []) requests
  |> fun (g, d) -> (List.rev g, List.rev d)
