lib/gpr_regfile/indirection.mli: Gpr_alloc
