lib/gpr_regfile/indirection.ml: Array Gpr_alloc Gpr_arch Hashtbl List Printf
