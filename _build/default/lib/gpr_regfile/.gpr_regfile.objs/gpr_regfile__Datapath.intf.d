lib/gpr_regfile/datapath.mli: Gpr_alloc Gpr_fp
