lib/gpr_regfile/datapath.ml: Gpr_alloc Gpr_fp Gpr_util Int32 Printf
