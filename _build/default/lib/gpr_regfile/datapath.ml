open Gpr_alloc.Alloc
module Bits = Gpr_util.Bits
module F = Gpr_fp.Format_

let scatter ~mask v =
  let out = ref 0 in
  let src = ref 0 in
  for slice = 0 to 7 do
    if mask land (1 lsl slice) <> 0 then begin
      let nibble = (v lsr (!src * 4)) land 0xf in
      out := !out lor (nibble lsl (slice * 4));
      incr src
    end
  done;
  !out

let gather ~mask r =
  let out = ref 0 in
  let dst = ref 0 in
  for slice = 0 to 7 do
    if mask land (1 lsl slice) <> 0 then begin
      let nibble = (r lsr (slice * 4)) land 0xf in
      out := !out lor (nibble lsl (!dst * 4));
      incr dst
    end
  done;
  !out

let storage_width p = p.slices * 4

(* The operand's dense narrow value is distributed LSB-first: the first
   [popcount mask0] nibbles live in reg0, the rest in reg1. *)
let store_narrow p narrow =
  let n0 = Bits.popcount p.mask0 in
  let low = narrow land Bits.mask (n0 * 4) in
  let high = narrow lsr (n0 * 4) in
  (scatter ~mask:p.mask0 low, scatter ~mask:p.mask1 high)

let store_int p v =
  let narrow = v land Bits.mask (storage_width p) in
  store_narrow p narrow

let extract_part p ~part r =
  match part with
  | `First -> gather ~mask:p.mask0 r
  | `Second ->
    let n0 = Bits.popcount p.mask0 in
    gather ~mask:p.mask1 r lsl (n0 * 4)

let merge p ~r0 ~r1 =
  let a = extract_part p ~part:`First r0 in
  let b = if p.reg1 >= 0 then extract_part p ~part:`Second r1 else 0 in
  a lor b

let load_int p ~r0 ~r1 =
  let narrow = merge p ~r0 ~r1 in
  let w = storage_width p in
  if p.signed then Bits.sign_extend ~width:w narrow
  else Bits.zero_extend ~width:w narrow

let format_of_placement p =
  match F.of_total_bits (storage_width p) with
  | Some f -> f
  | None ->
    invalid_arg
      (Printf.sprintf "Datapath: %d bits is not a Table 3 float width"
         (storage_width p))

let store_float p v =
  if storage_width p >= 32 then
    store_narrow p (Int32.to_int (Int32.bits_of_float v) land 0xffff_ffff)
  else
    let f = format_of_placement p in
    store_narrow p (F.encode f v)

let load_float p ~r0 ~r1 =
  let narrow = merge p ~r0 ~r1 in
  if storage_width p >= 32 then
    Int32.float_of_bits (Int32.of_int (Bits.sign_extend ~width:32 narrow))
  else F.decode (format_of_placement p) narrow
