(** The configurable indirection table (Sec. 3.2.2).

    One entry per architectural register holds the r0/m0/r1/m1 placement
    plus the signed and convert flags — 32 bits per entry, 256 entries.
    The SRAM is divided into 16 banks like the register file, with a
    dedicated arbitrator; separate but identical tables serve the read
    (source) and write (destination) paths.

    This module models contents and bank arbitration; cycle accounting
    lives in {!Gpr_sim}. *)

open Gpr_alloc.Alloc

type t

val create : ?banks:int -> Gpr_alloc.Alloc.t -> t
(** Populate from an allocation (default 16 banks).
    @raise Invalid_argument if the allocation exceeds 256 entries. *)

val banks : t -> int
val bank_of : t -> int -> int
(** Bank holding an architectural register's entry. *)

val lookup : t -> int -> placement option
(** [lookup t arch_reg] — the hardware read, nil for never-allocated
    registers. *)

val entry_bits : placement -> int
(** Encoded entry: 8+8 bits of masks, 2×6 bits of physical register
    ids, signed + convert flags — must fit the 32 bits per entry the
    paper budgets. *)

val grant : t -> int list -> int list * int list
(** One-cycle arbitration: given requested architectural registers,
    grant at most one access per bank (first-come), returning
    [(granted, deferred)]. *)

val num_entries : t -> int
