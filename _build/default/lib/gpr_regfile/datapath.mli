(** Bit-exact models of the value truncator (TVT) and value extractor
    (TVE) datapaths (Sec. 3.2.3–3.2.6, Figs. 3–5).

    A thread register is 8 slices of 4 bits.  A placement (from
    {!Gpr_alloc.Alloc}) assigns an operand's data slices to arbitrary
    slice positions of up to two physical registers.  On a store the
    TVT converts a narrow float to its reduced format (or keeps the low
    bits of a narrow integer) and scatters the data slices to their
    assigned positions; on a load the TVE gathers the slices, aligns
    them, zero-fills the rest and sign-extends integers; narrow floats
    are then expanded to single precision by the value converter.

    Split operands are fetched as two partial registers whose extracted
    halves are OR-merged, exactly as in the extended collector unit
    (Sec. 3.2.4). *)

open Gpr_alloc.Alloc

val scatter : mask:int -> int -> int
(** [scatter ~mask v] places the [popcount mask] low nibbles of [v]
    into the slice positions set in [mask] (LSB-first), zeroes
    elsewhere — the physical-register image of a store. *)

val gather : mask:int -> int -> int
(** Inverse of {!scatter}: collects the masked slices of a register
    into a dense low-aligned value. *)

val storage_width : placement -> int
(** Slice-rounded operand width in bits ([slices * 4]). *)

(** {1 Integer path} *)

val store_int : placement -> int -> int * int
(** 32-bit register images [(r0, r1)] written on a store (only masked
    bit lanes are driven; the rest read as zero here). *)

val extract_part : placement -> part:[ `First | `Second ] -> int -> int
(** TVE output for one fetched physical register: the operand's slices
    aligned to their position in the dense narrow value, zeroes
    elsewhere.  The collector unit ORs the parts. *)

val load_int : placement -> r0:int -> r1:int -> int
(** Full load path: gather, OR-merge, then sign- or zero-extend
    according to the placement.  Result is a 32-bit value (signed
    values are negative OCaml ints). *)

(** {1 Float path} *)

val store_float : placement -> float -> int * int
(** TVT step 1 (convert to the reduced Table 3 format of width
    [placement.bits]) + step 2 (scatter).
    @raise Invalid_argument if [bits] is not a Table 3 width. *)

val load_float : placement -> r0:int -> r1:int -> float
(** TVE + value converter: gather, merge and expand to f32. *)

val format_of_placement : placement -> Gpr_fp.Format_.t
