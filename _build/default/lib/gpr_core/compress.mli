(** The end-to-end static framework of Fig. 7: range analysis for
    integers, precision tuning for floats, slice-granular register
    allocation, and the resulting occupancy — everything up to (but not
    including) timing simulation, for one kernel. *)

open Gpr_workloads

type per_threshold = {
  assignment : Gpr_precision.Precision.assignment;
  achieved_score : Gpr_quality.Quality.score;
      (** quality of the final tuned configuration on the sample input *)
  alloc_float_only : Gpr_alloc.Alloc.t;
  alloc_both : Gpr_alloc.Alloc.t;
}

type t = {
  w : Workload.t;
  reference : float array;
  range : Gpr_analysis.Range.t;
  baseline : Gpr_alloc.Alloc.t;   (** original (32-bit) allocation *)
  int_only : Gpr_alloc.Alloc.t;
  perfect : per_threshold;
  high : per_threshold;
}

val analyze : Workload.t -> t
(** Runs the full static framework.  Expensive (the tuner re-executes
    the kernel many times); results are memoised per workload name. *)

val clear_cache : unit -> unit

val threshold_data : t -> Gpr_quality.Quality.threshold -> per_threshold

val occupancy :
  t -> Gpr_alloc.Alloc.t -> Gpr_arch.Occupancy.result
(** Occupancy on the Fermi configuration at the allocation's register
    pressure and the workload's block geometry. *)

val width_fn :
  narrow_ints:bool ->
  narrow_floats:Gpr_precision.Precision.assignment option ->
  range:Gpr_analysis.Range.t ->
  Gpr_isa.Types.vreg -> int
(** The per-variable width function handed to the allocator. *)
