open Gpr_workloads
module Q = Gpr_quality.Quality
module P = Gpr_precision.Precision
module Sim = Gpr_sim.Sim

let trace_cache : (string, Gpr_exec.Trace.t) Hashtbl.t = Hashtbl.create 32
let stats_cache : (string, Sim.stats) Hashtbl.t = Hashtbl.create 32

let clear_cache () =
  Hashtbl.reset trace_cache;
  Hashtbl.reset stats_cache

let trace_for (c : Compress.t) quantize_key quantize =
  let key = c.w.name ^ "/" ^ quantize_key in
  match Hashtbl.find_opt trace_cache key with
  | Some t -> t
  | None ->
    let t = Workload.trace c.w ~quantize in
    Hashtbl.replace trace_cache key t;
    t

let cfg = Gpr_arch.Config.fermi_gtx480

let trace_plain (c : Compress.t) = trace_for c "plain" None

let trace_quantized (c : Compress.t) threshold =
  let data = Compress.threshold_data c threshold in
  trace_for c
    ("quant-" ^ Q.threshold_name threshold)
    (Some (P.quantizer data.assignment))

let baseline (c : Compress.t) =
  let key = c.w.name ^ "/baseline" in
  match Hashtbl.find_opt stats_cache key with
  | Some s -> s
  | None ->
    let trace = trace_for c "plain" None in
    let occ = Compress.occupancy c c.baseline in
    let s =
      Sim.run cfg ~trace ~alloc:c.baseline ~blocks_per_sm:occ.blocks_per_sm
        ~mode:Sim.Baseline
    in
    Hashtbl.replace stats_cache key s;
    s

let proposed ?(writeback_delay = 3) (c : Compress.t) threshold =
  let key =
    Printf.sprintf "%s/proposed/%s/wb%d" c.w.name
      (Q.threshold_name threshold) writeback_delay
  in
  match Hashtbl.find_opt stats_cache key with
  | Some s -> s
  | None ->
    let data = Compress.threshold_data c threshold in
    let trace =
      trace_for c
        ("quant-" ^ Q.threshold_name threshold)
        (Some (P.quantizer data.assignment))
    in
    let occ = Compress.occupancy c data.alloc_both in
    let s =
      Sim.run cfg ~trace ~alloc:data.alloc_both
        ~blocks_per_sm:occ.blocks_per_sm
        ~mode:(Sim.Proposed { writeback_delay })
    in
    Hashtbl.replace stats_cache key s;
    s

let artificial (c : Compress.t) threshold =
  let key =
    Printf.sprintf "%s/artificial/%s" c.w.name (Q.threshold_name threshold)
  in
  match Hashtbl.find_opt stats_cache key with
  | Some s -> s
  | None ->
    let data = Compress.threshold_data c threshold in
    let trace = trace_for c "plain" None in
    let occ = Compress.occupancy c data.alloc_both in
    let s =
      Sim.run cfg ~trace ~alloc:c.baseline ~blocks_per_sm:occ.blocks_per_sm
        ~mode:Sim.Baseline
    in
    Hashtbl.replace stats_cache key s;
    s
