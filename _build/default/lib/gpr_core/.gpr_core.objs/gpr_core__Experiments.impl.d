lib/gpr_core/experiments.ml: Builder Compress Gpr_alloc Gpr_analysis Gpr_arch Gpr_area Gpr_fp Gpr_isa Gpr_quality Gpr_sim Gpr_util Gpr_workloads List Option Printf Registry Simulate Workload
