lib/gpr_core/experiments.mli:
