lib/gpr_core/simulate.ml: Compress Gpr_arch Gpr_exec Gpr_precision Gpr_quality Gpr_sim Gpr_workloads Hashtbl Printf Workload
