lib/gpr_core/simulate.mli: Compress Gpr_exec Gpr_quality Gpr_sim
