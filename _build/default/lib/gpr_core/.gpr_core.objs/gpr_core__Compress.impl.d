lib/gpr_core/compress.ml: Array Gpr_alloc Gpr_analysis Gpr_arch Gpr_isa Gpr_precision Gpr_quality Gpr_workloads Hashtbl List Workload
