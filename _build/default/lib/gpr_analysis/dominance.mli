(** Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

    Dominance drives SSA construction and the e-SSA renaming;
    post-dominance provides the immediate-post-dominator (IPDOM)
    reconvergence points used by the SIMT executor. *)

type t

val compute : Gpr_isa.Cfg.t -> t
(** Dominator tree over blocks reachable from entry. *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry block and unreachable
    blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)

val strictly_dominates : t -> int -> int -> bool
val children : t -> int -> int list
(** Dominator-tree children, for tree walks. *)

val dominance_frontier : t -> int -> int list

type post

val compute_post : Gpr_isa.Cfg.t -> post
(** Post-dominator tree, computed on the reversed CFG with a virtual
    exit joining all [Ret] blocks. *)

val ipdom : post -> int -> int option
(** Immediate post-dominator; [None] when the only post-dominator is the
    virtual exit. *)
