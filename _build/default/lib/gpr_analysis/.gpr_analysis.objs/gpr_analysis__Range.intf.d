lib/gpr_analysis/range.mli: Gpr_isa Gpr_util Ssa
