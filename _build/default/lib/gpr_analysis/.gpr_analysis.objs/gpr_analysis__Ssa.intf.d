lib/gpr_analysis/ssa.mli: Gpr_isa Hashtbl
