lib/gpr_analysis/ssa.ml: Array Dominance Gpr_isa Hashtbl List Liveness Queue
