lib/gpr_analysis/range.ml: Array Essa Gpr_isa Gpr_util Hashtbl List Ssa
