lib/gpr_analysis/liveness.mli: Gpr_isa Set
