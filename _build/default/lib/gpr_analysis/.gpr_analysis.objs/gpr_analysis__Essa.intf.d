lib/gpr_analysis/essa.mli: Ssa
