lib/gpr_analysis/essa.ml: Array Dominance Gpr_isa Hashtbl List Option Ssa
