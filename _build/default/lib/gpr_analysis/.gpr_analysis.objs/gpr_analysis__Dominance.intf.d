lib/gpr_analysis/dominance.mli: Gpr_isa
