lib/gpr_analysis/liveness.ml: Array Gpr_isa Hashtbl Int List Set
