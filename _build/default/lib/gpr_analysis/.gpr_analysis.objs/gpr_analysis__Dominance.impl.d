lib/gpr_analysis/dominance.ml: Array Gpr_isa List
