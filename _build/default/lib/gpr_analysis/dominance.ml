(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm".
   The same engine computes post-dominators on the reversed CFG with a
   virtual exit node. *)

type tree = {
  n : int;
  entry : int;
  idom : int array;        (* -1 = undefined / unreachable; entry maps to itself *)
  rpo_num : int array;     (* -1 for unreachable *)
  children : int list array;
}

type t = { tree : tree; frontier : int list array }
type post = { ptree : tree; virtual_exit : int }

let compute_tree ~n ~entry ~succs ~preds =
  (* Reverse postorder from [entry] following [succs]. *)
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (succs b);
      order := b :: !order
    end
  in
  dfs entry;
  let rpo = Array.of_list !order in
  let rpo_num = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_num.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let rec intersect b1 b2 =
    if b1 = b2 then b1
    else if rpo_num.(b1) > rpo_num.(b2) then intersect idom.(b1) b2
    else intersect b1 idom.(b2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
         if b <> entry then begin
           let processed =
             List.filter (fun p -> idom.(p) <> -1) (preds b)
           in
           match processed with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if idom.(b) <> new_idom then begin
               idom.(b) <- new_idom;
               changed := true
             end
         end)
      rpo
  done;
  let children = Array.make n [] in
  Array.iter
    (fun b ->
       if b <> entry && idom.(b) <> -1 then
         children.(idom.(b)) <- b :: children.(idom.(b)))
    rpo;
  { n; entry; idom; rpo_num; children }

let tree_idom t b =
  if b = t.entry || b < 0 || b >= t.n || t.idom.(b) = -1 then None
  else Some t.idom.(b)

let rec tree_dominates t a b =
  if a = b then true
  else
    match tree_idom t b with
    | None -> false
    | Some p -> tree_dominates t a p

let compute cfg =
  let n = Gpr_isa.Cfg.num_blocks cfg in
  let tree =
    compute_tree ~n ~entry:0
      ~succs:(Gpr_isa.Cfg.succs cfg)
      ~preds:(Gpr_isa.Cfg.preds cfg)
  in
  let frontier = Array.make n [] in
  for b = 0 to n - 1 do
    let preds = Gpr_isa.Cfg.preds cfg b in
    if List.length preds >= 2 && tree.idom.(b) <> -1 then
      List.iter
        (fun p ->
           if tree.rpo_num.(p) <> -1 then begin
             let runner = ref p in
             while !runner <> tree.idom.(b) do
               if not (List.mem b frontier.(!runner)) then
                 frontier.(!runner) <- b :: frontier.(!runner);
               runner := tree.idom.(!runner)
             done
           end)
        preds
  done;
  { tree; frontier }

let idom t b = tree_idom t.tree b
let dominates t a b = tree_dominates t.tree a b
let strictly_dominates t a b = a <> b && dominates t a b
let children t b = t.tree.children.(b)
let dominance_frontier t b = t.frontier.(b)

let compute_post cfg =
  let nb = Gpr_isa.Cfg.num_blocks cfg in
  let vexit = nb in
  let n = nb + 1 in
  let exits = Gpr_isa.Cfg.exit_blocks cfg in
  (* Reversed graph: successors of b are its CFG predecessors; the
     virtual exit's successors are the [Ret] blocks. *)
  let succs b = if b = vexit then exits else Gpr_isa.Cfg.preds cfg b in
  let preds b =
    if b = vexit then []
    else
      let cfg_succs = Gpr_isa.Cfg.succs cfg b in
      if List.mem b exits then vexit :: cfg_succs else cfg_succs
  in
  let ptree = compute_tree ~n ~entry:vexit ~succs ~preds in
  { ptree; virtual_exit = vexit }

let ipdom p b =
  match tree_idom p.ptree b with
  | Some d when d <> p.virtual_exit -> Some d
  | _ -> None
