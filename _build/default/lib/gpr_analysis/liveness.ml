open Gpr_isa.Types
module Iset = Set.Make (Int)

type t = {
  kernel : kernel;
  cfg : Gpr_isa.Cfg.t;
  live_in : Iset.t array;
  live_out : Iset.t array;
  order : int array;  (* reverse postorder used for linearisation *)
}

let is_tracked (r : vreg) = r.ty <> Pred

let add_tracked r set = if is_tracked r then Iset.add r.id set else set
let remove_def ins set =
  match defs ins with Some d -> Iset.remove d.id set | None -> set

let add_uses ins set =
  List.fold_left (fun s r -> add_tracked r s) set (uses ins)

(* Phi uses are live-out of the corresponding predecessor, not live-in of
   the phi's own block. *)
let phi_uses_for_pred blk ~pred set =
  Array.fold_left
    (fun s ins ->
       match ins with
       | Phi (_, ins') ->
         List.fold_left
           (fun s (p, op) ->
              match op with
              | Reg r when p = pred -> add_tracked r s
              | _ -> s)
           s ins'
       | _ -> s)
    set blk.instrs

let block_transfer blk out =
  (* Backward walk; phis both define and are skipped for uses here. *)
  let live = ref (List.fold_left (fun s r -> add_tracked r s) out (term_uses blk.term)) in
  for i = Array.length blk.instrs - 1 downto 0 do
    let ins = blk.instrs.(i) in
    live := remove_def ins !live;
    (match ins with Phi _ -> () | _ -> live := add_uses ins !live)
  done;
  !live

let compute kernel =
  let cfg = Gpr_isa.Cfg.of_kernel kernel in
  let n = Array.length kernel.k_blocks in
  let live_in = Array.make n Iset.empty in
  let live_out = Array.make n Iset.empty in
  let order = Gpr_isa.Cfg.reverse_postorder cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = Array.length order - 1 downto 0 do
      let b = order.(i) in
      let blk = kernel.k_blocks.(b) in
      let out =
        List.fold_left
          (fun acc s ->
             let succ_in = live_in.(s) in
             let with_phis =
               phi_uses_for_pred kernel.k_blocks.(s) ~pred:b succ_in
             in
             Iset.union acc with_phis)
          Iset.empty (Gpr_isa.Cfg.succs cfg b)
      in
      let inn = block_transfer blk out in
      if not (Iset.equal out live_out.(b) && Iset.equal inn live_in.(b))
      then begin
        live_out.(b) <- out;
        live_in.(b) <- inn;
        changed := true
      end
    done
  done;
  { kernel; cfg; live_in; live_out; order }

let live_in t b = t.live_in.(b)
let live_out t b = t.live_out.(b)

(* Walk every block backward once more, recording per-point live sets.
   [f point live] is called with the set live *just after* the point's
   instruction (a def is alive at its own point, even if dead after). *)
let iter_points t f =
  let point_base = Array.make (Array.length t.kernel.k_blocks) 0 in
  let next = ref 0 in
  Array.iter
    (fun b ->
       point_base.(b) <- !next;
       next := !next + Array.length t.kernel.k_blocks.(b).instrs + 1)
    t.order;
  Array.iter
    (fun b ->
       let blk = t.kernel.k_blocks.(b) in
       let base = point_base.(b) in
       let ninstr = Array.length blk.instrs in
       (* terminator point *)
       let live = ref (List.fold_left (fun s r -> add_tracked r s)
                         t.live_out.(b) (term_uses blk.term)) in
       f (base + ninstr) !live;
       for i = ninstr - 1 downto 0 do
         let ins = blk.instrs.(i) in
         (* live at this point: def is alive here, plus everything needed
            below *)
         let at_point =
           match defs ins with
           | Some d -> add_tracked d !live
           | None -> !live
         in
         f (base + i) at_point;
         live := remove_def ins !live;
         (match ins with Phi _ -> () | _ -> live := add_uses ins !live)
       done;
       (* Block-entry point: covers values that are live-in but consumed
          by the very first instruction (e.g. special registers). *)
       f base !live)
    t.order;
  !next

let num_points t = iter_points t (fun _ _ -> ())

let max_live t =
  let m = ref 0 in
  let _ = iter_points t (fun _ live -> m := max !m (Iset.cardinal live)) in
  !m

let intervals t =
  let lo = Hashtbl.create 64 and hi = Hashtbl.create 64 in
  let _ =
    iter_points t (fun p live ->
        Iset.iter
          (fun v ->
             (match Hashtbl.find_opt lo v with
              | None -> Hashtbl.replace lo v p
              | Some l -> if p < l then Hashtbl.replace lo v p);
             match Hashtbl.find_opt hi v with
             | None -> Hashtbl.replace hi v (p + 1)
             | Some h -> if p + 1 > h then Hashtbl.replace hi v (p + 1))
          live)
  in
  Hashtbl.fold (fun v l acc -> (v, l, Hashtbl.find hi v) :: acc) lo []
  |> List.sort (fun (_, l1, _) (_, l2, _) -> compare l1 l2)
