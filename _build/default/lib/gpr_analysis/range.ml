open Gpr_isa.Types
module I = Gpr_util.Interval

type t = {
  essa : Ssa.t;
  ssa_ranges : I.t array;
  var_ranges : I.t array;
  var_bits : int array;
}

let is_int_ty = function S32 | U32 -> true | F32 | Pred -> false

let top_of_ty = function
  | S32 -> I.i32
  | U32 -> I.u32
  | F32 | Pred -> I.top

(* Following Pereira et al., ranges live in Z: the analysis does not
   model two's-complement wrap-around (the original use case *detects*
   overflow instead).  Bounds may transiently exceed the 32-bit range
   during widening; the final bitwidth is capped at 32, so an
   "overflowing" variable simply stays uncompressed. *)
let clamp_ty (_ : dtype) itv = itv

(* ------------------------------------------------------------------ *)
(* Per-node evaluation *)

let eval_operand state = function
  | Reg (r : vreg) -> if is_int_ty r.ty then state.(r.id) else I.top
  | Imm_i c -> I.of_const c
  | Imm_f _ -> I.top

let eval_ibin op a b =
  match op with
  | Add -> I.add a b
  | Sub -> I.sub a b
  | Mul -> I.mul a b
  | Div -> I.div a b
  | Rem -> I.rem a b
  | Min -> I.min_ a b
  | Max -> I.max_ a b
  | And -> I.band a b
  | Or -> I.bor a b
  | Xor -> I.bxor a b
  | Shl -> I.shl a b
  | Shr -> I.shr a b

let resolve_bound state ~is_lo = function
  | Pb_none -> if is_lo then I.Neg_inf else I.Pos_inf
  | Pb_const c -> I.Finite c
  | Pb_var (v, off) ->
    let itv = state.(v) in
    (* A future: the bound of another variable, plus an offset. *)
    let b = if is_lo then I.lo itv else I.hi itv in
    (match b with
     | I.Finite x -> I.Finite (x + off)
     | inf -> inf)

let eval_filter state f =
  let lo = resolve_bound state ~is_lo:true f.pf_lo in
  let hi = resolve_bound state ~is_lo:false f.pf_hi in
  I.range lo hi

let eval_instr state ins =
  match ins with
  | Ibin (op, d, a, b) ->
    clamp_ty d.ty (eval_ibin op (eval_operand state a) (eval_operand state b))
  | Iun (op, d, a) ->
    let va = eval_operand state a in
    (match op with
     | Ineg -> clamp_ty d.ty (I.neg va)
     | Iabs -> clamp_ty d.ty (I.abs va)
     | Inot -> top_of_ty d.ty)
  | Imad (d, a, b, c) ->
    clamp_ty d.ty
      (I.add
         (I.mul (eval_operand state a) (eval_operand state b))
         (eval_operand state c))
  | Selp (d, a, b, _) ->
    clamp_ty d.ty (I.join (eval_operand state a) (eval_operand state b))
  | Mov (d, a) -> clamp_ty d.ty (eval_operand state a)
  | Cvt (op, d, a) ->
    (match op with
     | S32_of_u32 | U32_of_s32 ->
       let va = eval_operand state a in
       if I.subset va (top_of_ty d.ty) then va else top_of_ty d.ty
     | S32_of_f32 | U32_of_f32 -> top_of_ty d.ty
     | F32_of_s32 | F32_of_u32 -> I.top)
  | Ld (d, { abuf; _ }) ->
    (match abuf.buf_range with
     | Some (lo, hi) when is_int_ty d.ty -> I.of_ints lo hi
     | _ -> top_of_ty d.ty)
  | Ld_param (d, i) -> (
      (* Param ranges are attached to the instruction's param entry; the
         caller passes them via the params array captured in the
         closure. This variant is handled in [analyze]. *)
      ignore i;
      top_of_ty d.ty)
  | Phi (_, ops) ->
    List.fold_left (fun acc (_, op) -> I.join acc (eval_operand state op)) I.bot ops
  | Pi (_, s, f) -> I.meet state.(s.id) (eval_filter state f)
  | Setp _ | Fbin _ | Fun _ | Ffma _ | St _ | Bar -> I.top

(* ------------------------------------------------------------------ *)
(* Tarjan SCC over the dependence graph *)

let sccs ~n ~deps =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) = -1 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (deps v);
    if lowlink.(v) = index.(v) then begin
      let rec popping acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else popping (w :: acc)
        | [] -> assert false
      in
      out := popping [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order of the
     condensation; with [deps] pointing from user to used, that is
     dependencies-first — exactly the evaluation order we need.  The
     accumulator prepends, so restore emission order. *)
  List.rev !out

(* ------------------------------------------------------------------ *)

let analyze kernel ~launch =
  let ssa = Essa.convert (Ssa.convert kernel) in
  let k = ssa.Ssa.kernel in
  let n = k.k_num_vregs in
  let state = Array.make n I.bot in

  (* Definition map. *)
  let def = Array.make n None in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            match defs ins with
            | Some d -> def.(d.id) <- Some ins
            | None -> ())
         blk.instrs)
    k.k_blocks;

  (* Seeds: specials from launch geometry; names with no definition are
     entry-level (undef or special) and default to top of their type. *)
  let special_seed = Hashtbl.create 16 in
  List.iter
    (fun (id, s) ->
       let itv =
         match s with
         | Tid_x -> I.of_ints 0 (launch.ntid_x - 1)
         | Tid_y -> I.of_ints 0 (launch.ntid_y - 1)
         | Ntid_x -> I.of_const launch.ntid_x
         | Ntid_y -> I.of_const launch.ntid_y
         | Ctaid_x -> I.of_ints 0 (launch.nctaid_x - 1)
         | Ctaid_y -> I.of_ints 0 (launch.nctaid_y - 1)
         | Nctaid_x -> I.of_const launch.nctaid_x
         | Nctaid_y -> I.of_const launch.nctaid_y
       in
       Hashtbl.replace special_seed id itv)
    k.k_specials;

  (* Collect the set of int-typed nodes and their types. *)
  let ty_of = Array.make n S32 in
  let tracked = Array.make n false in
  let note (r : vreg) =
    if r.id < n then begin
      ty_of.(r.id) <- r.ty;
      tracked.(r.id) <- is_int_ty r.ty
    end
  in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            (match defs ins with Some d -> note d | None -> ());
            List.iter note (uses ins))
         blk.instrs)
    k.k_blocks;
  Hashtbl.iter (fun id _ -> ty_of.(id) <- S32; tracked.(id) <- true) special_seed;

  let eval v =
    match Hashtbl.find_opt special_seed v with
    | Some itv -> itv
    | None ->
      (match def.(v) with
       | None -> top_of_ty ty_of.(v)  (* undef version *)
       | Some (Ld_param (d, i)) ->
         (match k.k_params.(i).p_range with
          | Some (lo, hi) when is_int_ty d.ty -> I.of_ints lo hi
          | _ -> top_of_ty d.ty)
       | Some ins -> eval_instr state ins)
  in

  (* Dependence edges: value -> values it reads (including futures). *)
  let deps v =
    match def.(v) with
    | None -> []
    | Some ins ->
      let reg_deps =
        uses ins
        |> List.filter_map (fun (r : vreg) ->
            if is_int_ty r.ty && r.id < n then Some r.id else None)
      in
      let future_deps =
        match ins with
        | Pi (_, _, f) ->
          let of_bound = function Pb_var (x, _) -> [ x ] | _ -> [] in
          of_bound f.pf_lo @ of_bound f.pf_hi
        | _ -> []
      in
      reg_deps @ future_deps
  in

  let components = sccs ~n ~deps in
  List.iter
    (fun comp ->
       match comp with
       | [ v ] when not (List.mem v (deps v)) ->
         if tracked.(v) then state.(v) <- eval v
       | _ ->
         let members = List.filter (fun v -> tracked.(v)) comp in
         (* Growth phase with widening. *)
         let changed = ref true in
         let rounds = ref 0 in
         while !changed && !rounds < 64 do
           changed := false;
           incr rounds;
           List.iter
             (fun v ->
                let nv = eval v in
                let wv =
                  if !rounds <= 2 then I.join state.(v) nv
                  else I.widen state.(v) nv
                in
                if not (I.equal wv state.(v)) then begin
                  state.(v) <- wv;
                  changed := true
                end)
             members
         done;
         (* Narrowing phase (bounded). *)
         for _ = 1 to 4 do
           List.iter
             (fun v ->
                let nv = eval v in
                let res = I.narrow state.(v) nv in
                state.(v) <- res)
             members
         done)
    components;

  (* Merge per original variable (Fig. 8d). *)
  let var_ranges = Array.make ssa.Ssa.num_orig I.bot in
  Array.iteri
    (fun ssa_id orig_id ->
       if tracked.(ssa_id) then
         var_ranges.(orig_id) <- I.join var_ranges.(orig_id) state.(ssa_id))
    ssa.Ssa.orig_of_ssa;

  let var_bits = Array.make ssa.Ssa.num_orig 32 in
  Array.iteri
    (fun ssa_id orig_id ->
       if tracked.(ssa_id) then
         let itv = var_ranges.(orig_id) in
         let bits =
           match itv with
           | I.Bot -> 1  (* never live *)
           | I.Range (I.Finite lo, I.Finite hi) ->
             if ty_of.(ssa_id) = U32 && lo >= 0 then
               Gpr_util.Bits.bits_for_unsigned_range lo hi
             else Gpr_util.Bits.bits_for_signed_range lo hi
           | I.Range _ -> 32
         in
         var_bits.(orig_id) <- min 32 bits)
    ssa.Ssa.orig_of_ssa;

  { essa = ssa; ssa_ranges = state; var_ranges; var_bits }

let var_range t v = t.var_ranges.(v)
let var_bitwidth t v = t.var_bits.(v)

let narrow_int_count t kernel =
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            match defs ins with
            | Some (d : vreg)
              when is_int_ty d.ty && not (Hashtbl.mem seen d.id) ->
              Hashtbl.replace seen d.id ();
              if d.id < Array.length t.var_bits && t.var_bits.(d.id) < 32 then
                incr count
            | _ -> ())
         blk.instrs)
    kernel.k_blocks;
  !count
