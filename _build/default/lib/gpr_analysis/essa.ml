open Gpr_isa.Types

(* Branch-implied filters for one side of [a cmp b].
   Returns [(refined_operand, filter)] pairs for register operands. *)
let filters_of_cmp cmp a b ~taken =
  let neg = function
    | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt | Eq -> Ne | Ne -> Eq
  in
  let cmp = if taken then cmp else neg cmp in
  let bound_of op off =
    match op with
    | Imm_i c -> Pb_const (c + off)
    | Reg r -> Pb_var (r.id, off)
    | Imm_f _ -> Pb_none
  in
  let none = { pf_lo = Pb_none; pf_hi = Pb_none } in
  let for_a =
    match a with
    | Reg ra ->
      let f =
        match cmp with
        | Lt -> { none with pf_hi = bound_of b (-1) }
        | Le -> { none with pf_hi = bound_of b 0 }
        | Gt -> { none with pf_lo = bound_of b 1 }
        | Ge -> { none with pf_lo = bound_of b 0 }
        | Eq -> { pf_lo = bound_of b 0; pf_hi = bound_of b 0 }
        | Ne -> none
      in
      if f = none then [] else [ (ra, f) ]
    | Imm_i _ | Imm_f _ -> []
  in
  let for_b =
    match b with
    | Reg rb ->
      let f =
        match cmp with
        | Lt -> { none with pf_lo = bound_of a 1 }   (* a < b: b >= a+1 *)
        | Le -> { none with pf_lo = bound_of a 0 }
        | Gt -> { none with pf_hi = bound_of a (-1) }
        | Ge -> { none with pf_hi = bound_of a 0 }
        | Eq -> { pf_lo = bound_of a 0; pf_hi = bound_of a 0 }
        | Ne -> none
      in
      if f = none then [] else [ (rb, f) ]
    | Imm_i _ | Imm_f _ -> []
  in
  for_a @ for_b

let convert (ssa : Ssa.t) =
  let kernel = ssa.kernel in
  let cfg = Gpr_isa.Cfg.of_kernel kernel in
  let dom = Dominance.compute cfg in
  let nblocks = Array.length kernel.k_blocks in

  (* Unique definition of each SSA predicate. *)
  let def_of = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            match defs ins with
            | Some d -> Hashtbl.replace def_of d.id ins
            | None -> ())
         blk.instrs)
    kernel.k_blocks;

  (* Fresh SSA names extend the orig_of_ssa mapping. *)
  let next_id = ref kernel.k_num_vregs in
  let extra_orig = ref [] in
  let fresh (base : vreg) =
    let orig = ssa.orig_of_ssa.(base.id) in
    let id = !next_id in
    incr next_id;
    extra_orig := orig :: !extra_orig;
    { id; ty = base.ty; name = base.name }
  in

  (* Pi nodes to insert: per block, [(base_ssa_id, dst, filter)]. *)
  let pis_at = Array.make nblocks [] in
  Array.iter
    (fun blk ->
       match blk.term with
       | Cbr (p, tb, fb) ->
         (match Hashtbl.find_opt def_of p.id with
          | Some (Setp (cmp, (S32 | U32), _, a, b)) ->
            let add_side target ~taken =
              (* Count only reachable predecessors: early-exit (`ret`)
                 guards leave unreachable continuation blocks as stale
                 CFG predecessors of the join. *)
              let reachable p = p = 0 || Dominance.idom dom p <> None in
              let preds =
                List.filter reachable (Gpr_isa.Cfg.preds cfg target)
              in
              if List.length preds = 1 then
                List.iter
                  (fun (base, filter) ->
                     if base.ty = S32 || base.ty = U32 then begin
                       let dst = fresh base in
                       pis_at.(target) <-
                         pis_at.(target) @ [ (base.id, dst, filter) ]
                     end)
                  (filters_of_cmp cmp a b ~taken)
            in
            add_side tb ~taken:true;
            add_side fb ~taken:false
          | _ -> ())
       | Br _ | Ret -> ())
    kernel.k_blocks;

  (* Rebuild blocks with pi headers; deep-copy instruction arrays so the
     renaming pass can mutate in place. *)
  let blocks =
    Array.map
      (fun blk ->
         let phis, rest =
           Array.to_list blk.instrs
           |> List.partition (function Phi _ -> true | _ -> false)
         in
         let pis =
           List.map
             (fun (base, dst, f) ->
                (* src is provisional; fixed during renaming *)
                Pi (dst, { id = base; ty = dst.ty; name = dst.name }, f))
             pis_at.(blk.label)
         in
         { blk with instrs = Array.of_list (phis @ pis @ rest) })
      kernel.k_blocks
  in

  (* Renaming: dominator-tree walk with a refinement stack per base SSA
     name.  Only names refined by some pi ever have a non-empty stack. *)
  let stacks = Hashtbl.create 64 in
  let top id =
    match Hashtbl.find_opt stacks id with
    | Some (r :: _) -> Some r
    | _ -> None
  in
  let push id r =
    let cur = Option.value ~default:[] (Hashtbl.find_opt stacks id) in
    Hashtbl.replace stacks id (r :: cur)
  in
  let pop id =
    match Hashtbl.find_opt stacks id with
    | Some (_ :: rest) -> Hashtbl.replace stacks id rest
    | _ -> assert false
  in
  let rename_reg (r : vreg) =
    match top r.id with Some r' -> r' | None -> r
  in
  let rename_op = function
    | Reg r -> Reg (rename_reg r)
    | (Imm_i _ | Imm_f _) as op -> op
  in
  let rename_uses ins =
    match ins with
    | Ibin (o, d, a, b) -> Ibin (o, d, rename_op a, rename_op b)
    | Iun (o, d, a) -> Iun (o, d, rename_op a)
    | Imad (d, a, b, c) -> Imad (d, rename_op a, rename_op b, rename_op c)
    | Fbin (o, d, a, b) -> Fbin (o, d, rename_op a, rename_op b)
    | Fun (o, d, a) -> Fun (o, d, rename_op a)
    | Ffma (d, a, b, c) -> Ffma (d, rename_op a, rename_op b, rename_op c)
    | Setp (o, ty, p, a, b) -> Setp (o, ty, p, rename_op a, rename_op b)
    | Selp (d, a, b, p) -> Selp (d, rename_op a, rename_op b, rename_reg p)
    | Mov (d, a) -> Mov (d, rename_op a)
    | Cvt (o, d, a) -> Cvt (o, d, rename_op a)
    | Ld (d, { abuf; aindex }) -> Ld (d, { abuf; aindex = rename_op aindex })
    | St ({ abuf; aindex }, v) ->
      St ({ abuf; aindex = rename_op aindex }, rename_op v)
    | Ld_param _ | Bar -> ins
    | Phi _ -> ins  (* operands renamed from the predecessor side *)
    | Pi _ -> ins   (* handled explicitly in the walk *)
  in
  let rec walk b =
    let pushed = ref [] in
    let blk = blocks.(b) in
    Array.iteri
      (fun i ins ->
         match ins with
         | Phi _ -> ()
         | Pi (dst, provisional_src, f) ->
           let base = provisional_src.id in
           let src =
             match top base with
             | Some r -> r
             | None ->
               (* The base name itself. Recover its vreg from orig data:
                  provisional_src already has the right id/ty/name. *)
               provisional_src
           in
           blk.instrs.(i) <- Pi (dst, src, f);
           push base dst;
           pushed := base :: !pushed
         | _ -> blk.instrs.(i) <- rename_uses ins)
      blk.instrs;
    blk.term <-
      (match blk.term with
       | Cbr (p, t, f) -> Cbr (rename_reg p, t, f)
       | (Br _ | Ret) as t -> t);
    (* Rewrite phi operands in successors for predecessor [b]. *)
    List.iter
      (fun s ->
         let sblk = blocks.(s) in
         Array.iteri
           (fun i ins ->
              match ins with
              | Phi (d, ops) ->
                let ops =
                  List.map
                    (fun (p, op) -> if p = b then (p, rename_op op) else (p, op))
                    ops
                in
                sblk.instrs.(i) <- Phi (d, ops)
              | _ -> ())
           sblk.instrs)
      (Gpr_isa.Cfg.succs cfg b);
    List.iter walk (Dominance.children dom b);
    List.iter pop !pushed
  in
  walk 0;

  let num = !next_id in
  let orig_of_ssa = Array.make num 0 in
  Array.blit ssa.orig_of_ssa 0 orig_of_ssa 0 kernel.k_num_vregs;
  List.iteri
    (fun i v -> orig_of_ssa.(num - 1 - i) <- v)
    !extra_orig;
  {
    Ssa.kernel = { kernel with k_blocks = blocks; k_num_vregs = num };
    orig_of_ssa;
    num_orig = ssa.num_orig;
  }
