(** Static range analysis of integer operands (Sec. 4.2).

    Pipeline: pruned SSA ({!Ssa}) → e-SSA with π-nodes ({!Essa}) →
    sparse constraint solving in strongly-connected-component order,
    with interval widening inside cyclic components, future resolution
    for symbolic π-bounds, and a bounded narrowing phase — following
    Pereira, Rodrigues & Campos (CGO'13), the algorithm the paper
    adopts.

    Finally the ranges of all e-SSA versions of each original variable
    are merged by union (Fig. 8d), and a required bitwidth is derived
    per variable. *)

open Gpr_isa.Types

type t = {
  essa : Ssa.t;                          (** analysed e-SSA form *)
  ssa_ranges : Gpr_util.Interval.t array; (** per e-SSA name *)
  var_ranges : Gpr_util.Interval.t array; (** per original variable; [Bot] for untracked (float/pred) variables *)
  var_bits : int array;
      (** per original variable: required bits (1–32); 32 for floats
          (refined separately by precision tuning), predicates and
          unbounded integers *)
}

val analyze : kernel -> launch:launch -> t
(** [launch] seeds the special registers: tid.x ∈ [0, ntid_x-1],
    ctaid.x ∈ [0, nctaid_x-1], and so on. *)

val var_range : t -> int -> Gpr_util.Interval.t
val var_bitwidth : t -> int -> int

val narrow_int_count : t -> kernel -> int
(** Number of integer variables whose required width is below 32 bits —
    a summary statistic used in reports. *)
