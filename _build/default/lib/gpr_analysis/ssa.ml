open Gpr_isa.Types

type t = {
  kernel : kernel;
  orig_of_ssa : int array;
  num_orig : int;
}

let def_sites kernel =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun blk ->
       Array.iteri
         (fun i ins ->
            match defs ins with
            | Some d -> Hashtbl.replace tbl d.id (blk.label, i)
            | None -> ())
         blk.instrs)
    kernel.k_blocks;
  tbl

let convert kernel =
  let cfg = Gpr_isa.Cfg.of_kernel kernel in
  let dom = Dominance.compute cfg in
  let live = Liveness.compute kernel in
  let nblocks = Array.length kernel.k_blocks in
  let nvars = kernel.k_num_vregs in
  let orig = Array.make nvars None in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            List.iter
              (fun (r : vreg) -> orig.(r.id) <- Some r)
              ((match defs ins with Some d -> [ d ] | None -> []) @ uses ins))
         blk.instrs)
    kernel.k_blocks;
  List.iter
    (fun (id, s) ->
       if orig.(id) = None then
         orig.(id) <- Some { id; ty = S32; name = Gpr_isa.Builder.special_name s })
    kernel.k_specials;

  (* 1. Definition sites per variable. *)
  let def_blocks = Array.make nvars [] in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            match defs ins with
            | Some d ->
              if not (List.mem blk.label def_blocks.(d.id)) then
                def_blocks.(d.id) <- blk.label :: def_blocks.(d.id)
            | None -> ())
         blk.instrs)
    kernel.k_blocks;

  (* 2. Pruned phi insertion: iterated dominance frontier, but only
     where the variable is live-in. *)
  let phis_at = Array.make nblocks [] in  (* orig var ids, reversed *)
  for v = 0 to nvars - 1 do
    if orig.(v) <> None then begin
      let work = Queue.create () in
      List.iter (fun b -> Queue.add b work) def_blocks.(v);
      let has_phi = Array.make nblocks false in
      let enqueued = Array.make nblocks false in
      List.iter (fun b -> enqueued.(b) <- true) def_blocks.(v);
      while not (Queue.is_empty work) do
        let b = Queue.pop work in
        List.iter
          (fun df ->
             if (not has_phi.(df))
             && Liveness.Iset.mem v (Liveness.live_in live df) then begin
               has_phi.(df) <- true;
               phis_at.(df) <- v :: phis_at.(df);
               if not enqueued.(df) then begin
                 enqueued.(df) <- true;
                 Queue.add df work
               end
             end)
          (Dominance.dominance_frontier dom b)
      done
    end
  done;

  (* 3. Renaming. *)
  let next_id = ref 0 in
  let orig_of_ssa = ref [] in
  let fresh v =
    let o = match orig.(v) with Some r -> r | None -> assert false in
    let id = !next_id in
    incr next_id;
    orig_of_ssa := v :: !orig_of_ssa;
    { id; ty = o.ty; name = o.name }
  in
  let stacks = Array.make nvars [] in
  let undef_cache = Array.make nvars None in
  let top v =
    match stacks.(v) with
    | r :: _ -> r
    | [] ->
      (* Variable used on a path where it was never assigned: bind it to
         a single entry-level undef version (range: top). *)
      (match undef_cache.(v) with
       | Some r -> r
       | None ->
         let r = fresh v in
         undef_cache.(v) <- Some r;
         r)
  in
  (* Specials get an entry-level version. *)
  let new_specials = ref [] in
  List.iter
    (fun (v, s) ->
       let r = fresh v in
       stacks.(v) <- r :: stacks.(v);
       new_specials := (r.id, s) :: !new_specials)
    kernel.k_specials;

  let rewrite_operand = function
    | Reg r -> Reg (top r.id)
    | (Imm_i _ | Imm_f _) as op -> op
  in
  (* New blocks under construction: instrs as reversed lists, with phi
     operand maps filled as predecessors are visited. *)
  let new_instrs = Array.make nblocks [] in
  let new_terms = Array.make nblocks Ret in

  (* Pre-create phi records (dst assigned during the rename walk). *)
  let phi_records = Array.make nblocks [||] in
  for b = 0 to nblocks - 1 do
    phi_records.(b) <-
      Array.of_list
        (List.rev_map (fun v -> (v, ref None, Hashtbl.create 4)) phis_at.(b))
  done;

  let rec walk b =
    let pushed = ref [] in
    let push v r =
      stacks.(v) <- r :: stacks.(v);
      pushed := v :: !pushed
    in
    (* Phi definitions first. *)
    Array.iter
      (fun (v, dst, _) ->
         let r = fresh v in
         dst := Some r;
         push v r)
      phi_records.(b);
    (* Ordinary instructions. *)
    let blk = kernel.k_blocks.(b) in
    let out = ref [] in
    Array.iter
      (fun ins ->
         let ins' =
           match ins with
           | Ibin (op, d, a, x) ->
             let a = rewrite_operand a and x = rewrite_operand x in
             let d' = fresh d.id in
             push d.id d';
             Ibin (op, d', a, x)
           | Iun (op, d, a) ->
             let a = rewrite_operand a in
             let d' = fresh d.id in
             push d.id d';
             Iun (op, d', a)
           | Imad (d, a, x, c) ->
             let a = rewrite_operand a
             and x = rewrite_operand x
             and c = rewrite_operand c in
             let d' = fresh d.id in
             push d.id d';
             Imad (d', a, x, c)
           | Fbin (op, d, a, x) ->
             let a = rewrite_operand a and x = rewrite_operand x in
             let d' = fresh d.id in
             push d.id d';
             Fbin (op, d', a, x)
           | Fun (op, d, a) ->
             let a = rewrite_operand a in
             let d' = fresh d.id in
             push d.id d';
             Fun (op, d', a)
           | Ffma (d, a, x, c) ->
             let a = rewrite_operand a
             and x = rewrite_operand x
             and c = rewrite_operand c in
             let d' = fresh d.id in
             push d.id d';
             Ffma (d', a, x, c)
           | Setp (op, ty, p, a, x) ->
             let a = rewrite_operand a and x = rewrite_operand x in
             let p' = fresh p.id in
             push p.id p';
             Setp (op, ty, p', a, x)
           | Selp (d, a, x, p) ->
             let a = rewrite_operand a and x = rewrite_operand x in
             let p = top p.id in
             let d' = fresh d.id in
             push d.id d';
             Selp (d', a, x, p)
           | Mov (d, a) ->
             let a = rewrite_operand a in
             let d' = fresh d.id in
             push d.id d';
             Mov (d', a)
           | Cvt (op, d, a) ->
             let a = rewrite_operand a in
             let d' = fresh d.id in
             push d.id d';
             Cvt (op, d', a)
           | Ld (d, { abuf; aindex }) ->
             let aindex = rewrite_operand aindex in
             let d' = fresh d.id in
             push d.id d';
             Ld (d', { abuf; aindex })
           | Ld_param (d, i) ->
             let d' = fresh d.id in
             push d.id d';
             Ld_param (d', i)
           | St ({ abuf; aindex }, v) ->
             St ({ abuf; aindex = rewrite_operand aindex }, rewrite_operand v)
           | Bar -> Bar
           | Phi _ | Pi _ ->
             invalid_arg "Ssa.convert: input already in SSA form"
         in
         out := ins' :: !out)
      blk.instrs;
    new_instrs.(b) <- List.rev !out;
    new_terms.(b) <-
      (match blk.term with
       | Br l -> Br l
       | Cbr (p, tl, fl) -> Cbr (top p.id, tl, fl)
       | Ret -> Ret);
    (* Fill phi operands in successors. *)
    List.iter
      (fun s ->
         Array.iter
           (fun (v, _, operands) ->
              Hashtbl.replace operands b (Reg (top v)))
           phi_records.(s))
      (Gpr_isa.Cfg.succs cfg b);
    (* Recurse over dominator-tree children. *)
    List.iter walk (Dominance.children dom b);
    (* Pop. *)
    List.iter
      (fun v ->
         match stacks.(v) with
         | _ :: rest -> stacks.(v) <- rest
         | [] -> assert false)
      !pushed
  in
  walk 0;

  let blocks =
    Array.init nblocks (fun b ->
        let phis =
          Array.to_list phi_records.(b)
          |> List.map (fun (_, dst, operands) ->
              let d = match !dst with Some d -> d | None -> assert false in
              let ins =
                Hashtbl.fold (fun p op acc -> (p, op) :: acc) operands []
                |> List.sort compare
              in
              Phi (d, ins))
        in
        { label = b;
          instrs = Array.of_list (phis @ new_instrs.(b));
          term = new_terms.(b) })
  in
  let num = !next_id in
  let orig_arr = Array.make num 0 in
  List.iteri
    (fun i v -> orig_arr.(num - 1 - i) <- v)
    !orig_of_ssa;
  {
    kernel =
      { kernel with
        k_blocks = blocks;
        k_num_vregs = num;
        k_specials = !new_specials };
    orig_of_ssa = orig_arr;
    num_orig = nvars;
  }
