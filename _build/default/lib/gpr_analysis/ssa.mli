(** Pruned SSA construction (phi insertion on iterated dominance
    frontiers, rename along the dominator tree).

    The resulting kernel contains {!Gpr_isa.Types.instr.Phi} nodes and is
    meant for analysis only.  [orig_of_ssa] maps every SSA name back to
    the virtual register of the input kernel it versions; the range
    analysis uses it to merge e-SSA ranges per original variable
    (Fig. 8d of the paper). *)

type t = {
  kernel : Gpr_isa.Types.kernel;
  orig_of_ssa : int array;  (** ssa vreg id -> original vreg id *)
  num_orig : int;
}

val convert : Gpr_isa.Types.kernel -> t

val def_sites : Gpr_isa.Types.kernel -> (int, int * int) Hashtbl.t
(** Map from SSA name to its unique [(block, instr_index)] definition.
    Names without an entry are entry-defined (specials, undefs). *)
