(** Extended-SSA conversion (Sec. 4.2, following Pereira et al. CGO'13).

    For every conditional branch whose predicate is an integer
    comparison, π-nodes are inserted at the head of the (single-
    predecessor) branch targets, creating fresh names that carry the
    branch-implied range constraint — e.g. after [if (k < 50)] the true
    side sees [kt = k ∩ [-oo, 49]].  Constraints against another
    variable become *futures* ([Pb_var]) resolved during range
    propagation.

    Targets with several predecessors (never produced by
    {!Gpr_isa.Builder}) are skipped; this only loses precision, never
    soundness. *)

val convert : Ssa.t -> Ssa.t
