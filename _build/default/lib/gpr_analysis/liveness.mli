(** Live-variable analysis over a kernel's virtual registers.

    Predicates are excluded throughout: like the hardware the paper
    models, predicates live in a separate predicate file and never
    occupy general-purpose register slices.

    Special registers (tid.x, …) are treated as defined at kernel entry,
    so they stay live from entry to their last use — matching how PTX
    materialises them into general registers. *)

module Iset : Set.S with type elt = int

type t

val compute : Gpr_isa.Types.kernel -> t

val live_in : t -> int -> Iset.t
(** Live variables at a block's entry. *)

val live_out : t -> int -> Iset.t

val max_live : t -> int
(** Maximum number of simultaneously live (non-predicate) variables over
    all program points — the baseline register pressure, where every
    variable occupies one full 32-bit register. *)

val intervals : t -> (int * int * int) list
(** [(vreg, start, stop)] live-interval hulls over a linearised program
    (blocks in reverse postorder), suitable for linear-scan allocation.
    Sorted by [start].  Intervals are half-open: the variable is live on
    points [start, stop). *)

val num_points : t -> int
