(** Plain-text column-aligned tables, used by the benchmark harness to
    print each reproduced table/figure in the paper's layout. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] pads every column to its widest cell.  [aligns]
    defaults to left for the first column and right for the rest. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit

val fp : ?digits:int -> float -> string
(** Fixed-point formatting helper ([digits] defaults to 2). *)

val pct : ?digits:int -> float -> string
(** [fp] with a trailing ["%"]. *)

val section : string -> unit
(** Print an underlined section heading. *)
