(** Grayscale float images.

    The graphics workloads (Deferred, SSAO, Elevated, Pathtracer) render
    into these, and {!Gpr_quality.Ssim} compares them. *)

type t = {
  width : int;
  height : int;
  data : float array;  (** row-major, length [width * height] *)
}

val create : width:int -> height:int -> t
val init : width:int -> height:int -> (x:int -> y:int -> float) -> t
val get : t -> x:int -> y:int -> float
val set : t -> x:int -> y:int -> float -> unit
val get_clamped : t -> x:int -> y:int -> float
(** Out-of-bounds coordinates are clamped to the border. *)

val of_array : width:int -> height:int -> float array -> t
val map : (float -> float) -> t -> t
val mean : t -> float
val equal_eps : eps:float -> t -> t -> bool
