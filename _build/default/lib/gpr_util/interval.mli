(** Intervals over the integers extended with [-oo] and [+oo].

    This is the abstract domain used by the static range analysis
    ({!Gpr_analysis.Range}).  Intervals are closed: [range lo hi] denotes
    all integers [x] with [lo <= x <= hi].  The empty interval [bot] is
    the bottom element of the lattice; [top] is [[-oo, +oo]]. *)

type bound =
  | Neg_inf
  | Finite of int
  | Pos_inf

type t =
  | Bot                        (** empty set *)
  | Range of bound * bound     (** invariant: lo <= hi *)

val bot : t
val top : t

val of_const : int -> t
(** Singleton interval. *)

val range : bound -> bound -> t
(** [range lo hi] is [Bot] when [lo > hi]. *)

val of_ints : int -> int -> t
(** [of_ints lo hi]; [Bot] when [lo > hi]. *)

val i32 : t
(** The full signed 32-bit range [[-2^31, 2^31-1]]. *)

val u32 : t
(** The full unsigned 32-bit range [[0, 2^32-1]]. *)

val is_bot : t -> bool
val equal : t -> t -> bool
val compare_bound : bound -> bound -> int

val lo : t -> bound
val hi : t -> bound

val contains : t -> int -> bool
val subset : t -> t -> bool
(** [subset a b] is true when [a] ⊆ [b]. *)

val join : t -> t -> t
(** Least upper bound (range union hull). *)

val meet : t -> t -> t
(** Greatest lower bound (intersection). *)

val widen : t -> t -> t
(** [widen old new_] jumps unstable bounds to the corresponding infinity
    (standard interval widening). *)

val narrow : t -> t -> t
(** [narrow old new_] refines infinite bounds of [old] with the finite
    bounds of [new_]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val neg : t -> t
val abs : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val shl : t -> t -> t
val shr : t -> t -> t
val band : t -> t -> t
(** Conservative bitwise-and: precise for non-negative operands where one
    side is a constant mask, otherwise falls back to a sound hull. *)

val bor : t -> t -> t
val bxor : t -> t -> t

val clamp_i32 : t -> t
(** Meet with {!i32}; models 32-bit signed wrap-around conservatively
    (an interval escaping the 32-bit range becomes {!i32}). *)

val clamp_u32 : t -> t

val size : t -> int option
(** Number of integers contained, when finite and representable. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
