(** Deterministic xorshift64* pseudo-random generator.

    Every workload input generator draws from this so that reference
    outputs, traces and benchmark numbers are reproducible run to run. *)

type t

val create : int -> t
(** Seed must be non-zero; zero is mapped to a fixed constant. *)

val copy : t -> t
val int64 : t -> int64
val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> float
(** Uniform in [0, 1). *)

val range : t -> float -> float -> float
val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
