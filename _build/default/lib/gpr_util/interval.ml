type bound =
  | Neg_inf
  | Finite of int
  | Pos_inf

type t =
  | Bot
  | Range of bound * bound

let bot = Bot
let top = Range (Neg_inf, Pos_inf)

let compare_bound a b =
  match a, b with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Finite x, Finite y -> compare x y

let min_bound a b = if compare_bound a b <= 0 then a else b
let max_bound a b = if compare_bound a b >= 0 then a else b

let range lo hi = if compare_bound lo hi > 0 then Bot else Range (lo, hi)
let of_ints lo hi = range (Finite lo) (Finite hi)
let of_const c = Range (Finite c, Finite c)

let min_i32 = -0x8000_0000
let max_i32 = 0x7fff_ffff
let max_u32 = 0xffff_ffff
let i32 = of_ints min_i32 max_i32
let u32 = of_ints 0 max_u32

let is_bot t = t = Bot

let equal a b =
  match a, b with
  | Bot, Bot -> true
  | Range (l1, h1), Range (l2, h2) ->
    compare_bound l1 l2 = 0 && compare_bound h1 h2 = 0
  | Bot, Range _ | Range _, Bot -> false

let lo = function Bot -> Pos_inf | Range (l, _) -> l
let hi = function Bot -> Neg_inf | Range (_, h) -> h

let contains t x =
  match t with
  | Bot -> false
  | Range (l, h) ->
    compare_bound l (Finite x) <= 0 && compare_bound (Finite x) h <= 0

let subset a b =
  match a, b with
  | Bot, _ -> true
  | Range _, Bot -> false
  | Range (l1, h1), Range (l2, h2) ->
    compare_bound l2 l1 <= 0 && compare_bound h1 h2 <= 0

let join a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Range (l1, h1), Range (l2, h2) ->
    Range (min_bound l1 l2, max_bound h1 h2)

let meet a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    range (max_bound l1 l2) (min_bound h1 h2)

let widen old new_ =
  match old, new_ with
  | Bot, x -> x
  | x, Bot -> x
  | Range (l1, h1), Range (l2, h2) ->
    let l = if compare_bound l2 l1 < 0 then Neg_inf else l1 in
    let h = if compare_bound h2 h1 > 0 then Pos_inf else h1 in
    Range (l, h)

let narrow old new_ =
  match old, new_ with
  | Bot, _ -> Bot
  | x, Bot -> x
  | Range (l1, h1), Range (l2, h2) ->
    let l = if l1 = Neg_inf then l2 else l1 in
    let h = if h1 = Pos_inf then h2 else h1 in
    range l h

(* Bound arithmetic.  [Neg_inf + Pos_inf] never occurs for the bound
   combinations produced below; we still give it a sound default. *)
let add_bound a b =
  match a, b with
  | Finite x, Finite y -> Finite (x + y)
  | Neg_inf, Pos_inf | Pos_inf, Neg_inf -> Finite 0
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, _ | _, Pos_inf -> Pos_inf

let neg_bound = function
  | Neg_inf -> Pos_inf
  | Pos_inf -> Neg_inf
  | Finite x -> Finite (-x)

let mul_bound a b =
  let sign_of = function
    | Neg_inf -> -1
    | Pos_inf -> 1
    | Finite x -> compare x 0
  in
  match a, b with
  | Finite x, Finite y -> Finite (x * y)
  | _ ->
    (match sign_of a * sign_of b with
     | 0 -> Finite 0
     | s when s > 0 -> Pos_inf
     | _ -> Neg_inf)

let add a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    Range (add_bound l1 l2, add_bound h1 h2)

let neg = function
  | Bot -> Bot
  | Range (l, h) -> Range (neg_bound h, neg_bound l)

let sub a b = add a (neg b)

let mul a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    let cands = [ mul_bound l1 l2; mul_bound l1 h2;
                  mul_bound h1 l2; mul_bound h1 h2 ] in
    let lo = List.fold_left min_bound Pos_inf cands in
    let hi = List.fold_left max_bound Neg_inf cands in
    Range (lo, hi)

let div a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    if contains b 0 && equal b (of_const 0) then Bot
    else
      (* Exclude 0 from the divisor range on the side it touches. *)
      let b' =
        match l2, h2 with
        | Finite 0, _ -> range (Finite 1) h2
        | _, Finite 0 -> range l2 (Finite (-1))
        | _ -> Range (l2, h2)
      in
      (match b' with
       | Bot -> Bot
       | Range (l2, h2) ->
         if contains b' 0 then
           (* Divisor straddles zero: magnitudes can only shrink. *)
           let mag = function
             | Neg_inf | Pos_inf -> Pos_inf
             | Finite x -> Finite (abs x)
           in
           let m = max_bound (mag l1) (mag h1) in
           Range (neg_bound m, m)
         else
           let div_bound x y =
             match x, y with
             | Finite a, Finite b -> Finite (a / b)
             | Neg_inf, Finite b -> if b > 0 then Neg_inf else Pos_inf
             | Pos_inf, Finite b -> if b > 0 then Pos_inf else Neg_inf
             | Finite _, (Neg_inf | Pos_inf) -> Finite 0
             | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> Pos_inf
             | Neg_inf, Pos_inf | Pos_inf, Neg_inf -> Neg_inf
           in
           let cands = [ div_bound l1 l2; div_bound l1 h2;
                         div_bound h1 l2; div_bound h1 h2 ] in
           let lo = List.fold_left min_bound Pos_inf cands in
           let hi = List.fold_left max_bound Neg_inf cands in
           Range (lo, hi))

let abs = function
  | Bot -> Bot
  | Range (l, h) as t ->
    if compare_bound l (Finite 0) >= 0 then t
    else if compare_bound h (Finite 0) <= 0 then neg t
    else Range (Finite 0, max_bound (neg_bound l) h)

let rem a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    (* OCaml/PTX rem: sign follows the dividend; |result| < |divisor|. *)
    let mag = function Neg_inf | Pos_inf -> Pos_inf | Finite x -> Finite (Stdlib.abs x) in
    let m =
      match add_bound (max_bound (mag l2) (mag h2)) (Finite (-1)) with
      | Neg_inf -> Finite 0
      | x -> x
    in
    let nonneg = compare_bound l1 (Finite 0) >= 0 in
    let nonpos = compare_bound h1 (Finite 0) <= 0 in
    let full = Range ((if nonneg then Finite 0 else neg_bound m),
                      (if nonpos then Finite 0 else m)) in
    (* Identity when |a| is below the *smallest* possible |divisor|. *)
    let min_abs_b =
      let straddles =
        compare_bound l2 (Finite 0) < 0 && compare_bound h2 (Finite 0) > 0
      in
      if straddles then Finite 1
      else
        let candidate =
          if compare_bound l2 (Finite 0) >= 0 then l2 else mag h2
        in
        (match candidate with Finite 0 -> Finite 1 | x -> x)
    in
    let abs_a_hi = max_bound (mag l1) (mag h1) in
    if compare_bound abs_a_hi min_abs_b < 0 then Range (l1, h1) else full

let min_ a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    Range (min_bound l1 l2, min_bound h1 h2)

let max_ a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    Range (max_bound l1 l2, max_bound h1 h2)

let shl a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | _, Range (Finite s1, Finite s2) when s1 >= 0 && s2 < 32 ->
    let pow s = of_const (1 lsl s) in
    join (mul a (pow s1)) (mul a (pow s2))
  | _ -> top

let shr a b =
  (* Arithmetic shift floors (x asr s = floor(x / 2^s)), so dividing
     with truncation would be unsound for negative values: -2 asr 3 is
     -1, not 0.  The shift is monotone in the value and, per value
     sign, monotone in the shift amount, so the corner evaluations
     bound the result. *)
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l, h), Range (Finite s1, Finite s2) when s1 >= 0 && s2 < 32 ->
    let sh bnd s =
      match bnd with
      | Neg_inf -> Neg_inf
      | Pos_inf -> Pos_inf
      | Finite x -> Finite (x asr s)
    in
    let cands = [ sh l s1; sh l s2; sh h s1; sh h s2 ] in
    Range
      ( List.fold_left min_bound Pos_inf cands,
        List.fold_left max_bound Neg_inf cands )
  | _ -> top

let band a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    let nonneg l = compare_bound l (Finite 0) >= 0 in
    if nonneg l1 && nonneg l2 then
      (* x land y <= min x y for non-negative operands. *)
      Range (Finite 0, min_bound h1 h2)
    else top

let bor a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    (match l1, l2, h1, h2 with
     | Finite l1', Finite l2', Finite h1', Finite h2'
       when l1' >= 0 && l2' >= 0 ->
       (* x lor y < 2^(bits(max x y) ) for non-negative operands. *)
       let m = max h1' h2' in
       let rec next_pow2 p = if p > m then p else next_pow2 (p * 2) in
       let cap = next_pow2 1 - 1 in
       Range (Finite (max l1' l2'), Finite cap)
     | _ -> top)

let bxor a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Range (l1, h1), Range (l2, h2) ->
    (match l1, l2, h1, h2 with
     | Finite l1', Finite l2', Finite h1', Finite h2'
       when l1' >= 0 && l2' >= 0 ->
       let m = max h1' h2' in
       let rec next_pow2 p = if p > m then p else next_pow2 (p * 2) in
       Range (Finite 0, Finite (next_pow2 1 - 1))
     | _ -> top)

let clamp_i32 t =
  match t with
  | Bot -> Bot
  | _ -> if subset t i32 then t else i32

let clamp_u32 t =
  match t with
  | Bot -> Bot
  | _ -> if subset t u32 then t else u32

let size = function
  | Bot -> Some 0
  | Range (Finite l, Finite h) -> Some (h - l + 1)
  | Range _ -> None

let pp_bound ppf = function
  | Neg_inf -> Format.pp_print_string ppf "-oo"
  | Pos_inf -> Format.pp_print_string ppf "+oo"
  | Finite x -> Format.pp_print_int ppf x

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "_|_"
  | Range (l, h) -> Format.fprintf ppf "[%a, %a]" pp_bound l pp_bound h

let to_string t = Format.asprintf "%a" pp t
