type t = { width : int; height : int; data : float array }

let create ~width ~height =
  assert (width > 0 && height > 0);
  { width; height; data = Array.make (width * height) 0.0 }

let init ~width ~height f =
  let img = create ~width ~height in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      img.data.((y * width) + x) <- f ~x ~y
    done
  done;
  img

let get t ~x ~y =
  assert (x >= 0 && x < t.width && y >= 0 && y < t.height);
  t.data.((y * t.width) + x)

let set t ~x ~y v =
  assert (x >= 0 && x < t.width && y >= 0 && y < t.height);
  t.data.((y * t.width) + x) <- v

let get_clamped t ~x ~y =
  let x = max 0 (min (t.width - 1) x) in
  let y = max 0 (min (t.height - 1) y) in
  t.data.((y * t.width) + x)

let of_array ~width ~height data =
  assert (Array.length data = width * height);
  { width; height; data }

let map f t = { t with data = Array.map f t.data }

let mean t =
  Array.fold_left ( +. ) 0.0 t.data /. float_of_int (Array.length t.data)

let equal_eps ~eps a b =
  a.width = b.width && a.height = b.height
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data
