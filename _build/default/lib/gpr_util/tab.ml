type align = Left | Right

let render ?aligns ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
       List.iteri
         (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
         row)
    all;
  let aligns =
    match aligns with
    | Some a -> Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let align_of i = if i < Array.length aligns then aligns.(i) else Right in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match align_of i with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line row = row |> List.mapi pad |> String.concat "  " in
  let rule =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ?aligns ~header rows =
  print_endline (render ?aligns ~header rows)

let fp ?(digits = 2) x = Printf.sprintf "%.*f" digits x
let pct ?(digits = 1) x = Printf.sprintf "%.*f%%" digits x

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')
