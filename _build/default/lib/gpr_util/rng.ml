type t = { mutable state : int64 }

let create seed =
  if seed = 0 then { state = 0x9E3779B97F4A7C15L }
  else { state = Int64.of_int seed }

let copy t = { state = t.state }

let int64 t =
  let open Int64 in
  let x = t.state in
  let x = logxor x (shift_right_logical x 12) in
  let x = logxor x (shift_left x 25) in
  let x = logxor x (shift_right_logical x 27) in
  t.state <- x;
  mul x 0x2545F4914F6CDD1DL

let int t bound =
  assert (bound > 0);
  let x = Int64.to_int (int64 t) land max_int in
  x mod bound

let uniform t =
  let x = Int64.to_int (int64 t) land max_int in
  float_of_int x /. float_of_int max_int

let float t bound = uniform t *. bound

let range t lo hi = lo +. uniform t *. (hi -. lo)

let gaussian t =
  let u1 = max 1e-12 (uniform t) in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
