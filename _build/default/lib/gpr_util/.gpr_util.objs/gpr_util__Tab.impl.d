lib/gpr_util/tab.ml: Array List Printf String
