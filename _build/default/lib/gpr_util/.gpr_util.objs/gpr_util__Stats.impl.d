lib/gpr_util/stats.ml: Array List
