lib/gpr_util/image.mli:
