lib/gpr_util/bits.mli:
