lib/gpr_util/tab.mli:
