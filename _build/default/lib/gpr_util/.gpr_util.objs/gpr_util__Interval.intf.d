lib/gpr_util/interval.mli: Format
