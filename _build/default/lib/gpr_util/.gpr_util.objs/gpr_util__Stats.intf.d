lib/gpr_util/stats.mli:
