lib/gpr_util/image.ml: Array Float
