lib/gpr_util/rng.mli:
