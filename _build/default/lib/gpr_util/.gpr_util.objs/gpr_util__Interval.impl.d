lib/gpr_util/interval.ml: Format List Stdlib
