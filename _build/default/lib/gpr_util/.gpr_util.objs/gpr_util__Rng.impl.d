lib/gpr_util/rng.ml: Array Float Int64
