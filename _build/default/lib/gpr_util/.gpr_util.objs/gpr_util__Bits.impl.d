lib/gpr_util/bits.ml:
