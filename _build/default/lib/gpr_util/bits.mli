(** Bit-level helpers shared by the bitwidth annotation, the slice-granular
    allocator and the register-file datapath models. *)

val bits_for_unsigned : int -> int
(** Smallest [n >= 1] such that [0 <= x <= 2^n - 1].  Requires [x >= 0]. *)

val bits_for_signed : int -> int
(** Smallest [n >= 1] such that [-2^(n-1) <= x <= 2^(n-1) - 1]
    (two's-complement width including the sign bit). *)

val bits_for_signed_range : int -> int -> int
(** Width covering both bounds of a signed range. *)

val bits_for_unsigned_range : int -> int -> int
(** Width covering an unsigned range; requires [0 <= lo <= hi]. *)

val mask : int -> int
(** [mask n] is the [n]-bit all-ones pattern; [mask 0 = 0], [n <= 62]. *)

val popcount : int -> int

val sign_extend : width:int -> int -> int
(** Interpret the low [width] bits of the argument as a two's-complement
    value of that width. *)

val zero_extend : width:int -> int -> int

val fits_signed : width:int -> int -> bool
val fits_unsigned : width:int -> int -> bool

val slices_of_bits : int -> int
(** Number of 4-bit register slices needed for a [bits]-wide operand,
    clamped to [1, 8] (a thread register is 32 bits = 8 slices). *)

val round_up : int -> multiple:int -> int
