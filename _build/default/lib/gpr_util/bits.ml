let bits_for_unsigned x =
  assert (x >= 0);
  let rec go n acc = if acc >= x then n else go (n + 1) (acc * 2 + 1) in
  go 1 1

let bits_for_signed x =
  if x = 0 then 1
  else if x > 0 then 1 + bits_for_unsigned x
  else
    let rec go n lo = if lo <= x then n else go (n + 1) (lo * 2) in
    go 1 (-1)

let bits_for_signed_range lo hi =
  assert (lo <= hi);
  max (bits_for_signed lo) (bits_for_signed hi)

let bits_for_unsigned_range lo hi =
  assert (0 <= lo && lo <= hi);
  bits_for_unsigned hi

let mask n =
  assert (n >= 0 && n <= 62);
  (1 lsl n) - 1

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let sign_extend ~width x =
  assert (width >= 1 && width <= 62);
  let x = x land mask width in
  if x land (1 lsl (width - 1)) <> 0 then x - (1 lsl width) else x

let zero_extend ~width x = x land mask width

let fits_signed ~width x =
  let half = 1 lsl (width - 1) in
  x >= -half && x < half

let fits_unsigned ~width x = x >= 0 && x <= mask width

let slices_of_bits bits =
  let s = (bits + 3) / 4 in
  max 1 (min 8 s)

let round_up x ~multiple =
  assert (multiple > 0);
  (x + multiple - 1) / multiple * multiple
