(** Transistor-count area model (Sec. 6.4) and its Volta scaling
    (Sec. 7), plus the Sec. 6.5 power argument.

    The paper's own counting rules, implemented directly:
    - TVE: eight 32-bit-wide 9:1 multiplexers at 8 six-transistor AOI
      cells per bit, plus one 4-bit 2:1 multiplexer;
    - value extractor: 32 TVEs per warp-level unit, one unit per
      register bank;
    - value converter: ≈1300 transistors per thread-level unit,
      6 warp-level units of 32;
    - indirection tables: 256 × 32-bit 6T SRAM entries, two tables;
    - value truncator: one converter-equivalent + two TVEs per thread,
      3 warp-level units of 32;
    - collector-unit extension: a 1024-bit 6T OR gate + 35×3 bits of
      SRAM per CU, 16 CUs. *)

type breakdown = {
  tve_transistors : int;              (** one thread-level extractor *)
  value_extractors : int;             (** all warp-level extractors *)
  value_converters : int;
  indirection_tables : int;
  value_truncators : int;
  cu_extensions : int;
  total_per_sm : int;
  total_chip : int;
  fraction_of_chip : float;
}

val fermi : breakdown
(** Sec. 6.4 numbers: ≈1.8 M transistors per SM, ≈27 M total, <1 % of
    the GTX 480's 3.1 B budget. *)

val volta : breakdown
(** Sec. 7: per processing block the extractors halve (one bank's worth
    per scheduler), ≈1.4 M per block, ≈5.6 M per SM, ≈470 M for 84 SMs
    — just over 2 % of 21 B. *)

val for_config : Gpr_arch.Config.t -> extractors_per_rf:int -> breakdown

(** {1 Power (Sec. 6.5)} *)

type power_summary = {
  static_overhead_fraction : float;
      (** static power scales with area: equals the area fraction *)
  double_fetch_read_energy_factor : float;
      (** worst-case dynamic factor on register reads (2× on split) *)
  doubled_regfile_read_energy_factor : float;
      (** the comparison point: doubling the register file doubles
          bitline length and hence read energy *)
}

val power : breakdown -> power_summary
