lib/gpr_area/area.ml: Gpr_arch
