lib/gpr_area/area.mli: Gpr_arch
