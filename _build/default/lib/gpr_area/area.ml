type breakdown = {
  tve_transistors : int;
  value_extractors : int;
  value_converters : int;
  indirection_tables : int;
  value_truncators : int;
  cu_extensions : int;
  total_per_sm : int;
  total_chip : int;
  fraction_of_chip : float;
}

(* Counting rules of Sec. 6.4.  The paper counts 1536 transistors for a
   TVE's eight 9:1 multiplexers (8 muxes x 32 bits x 6-transistor AOI
   cells) plus 24 for the 4-bit 2:1 padding multiplexer. *)

let tve_transistors = (8 * 32 * 6) + 24
let () = assert (tve_transistors = 1560)

let tve_mux_only = 1536

let warp_extractor = 32 * (tve_mux_only + 24)  (* ≈50 K, "about 50K" in the paper *)

let converter_per_thread = 1300
let truncator_per_thread = (1 * converter_per_thread) + (2 * 2048)
(* Sec. 6.4 uses 2048 per TVE inside the truncator (a conservative
   per-thread extractor figure) giving 5396 per thread-level unit. *)

let () = assert (truncator_per_thread = 5396)

let indirection_table_entries = 256
let indirection_table_bits = 32

let for_config (cfg : Gpr_arch.Config.t) ~extractors_per_rf =
  let value_extractors = extractors_per_rf * warp_extractor in
  let value_converters = 6 * 32 * converter_per_thread in
  let indirection_tables =
    2 * indirection_table_entries * indirection_table_bits * 6
  in
  let value_truncators = cfg.writeback_width * 32 * truncator_per_thread in
  let cu_extensions =
    cfg.operand_collectors * ((1024 * 6) + (35 * 3 * 6))
  in
  let per_rf =
    value_extractors + value_converters + indirection_tables
    + value_truncators + cu_extensions
  in
  let total_per_sm = per_rf * cfg.register_files_per_sm in
  let total_chip = total_per_sm * cfg.num_sms in
  {
    tve_transistors;
    value_extractors;
    value_converters;
    indirection_tables;
    value_truncators;
    cu_extensions;
    total_per_sm;
    total_chip;
    fraction_of_chip = float_of_int total_chip /. cfg.total_transistors;
  }

let fermi =
  for_config Gpr_arch.Config.fermi_gtx480
    ~extractors_per_rf:Gpr_arch.Config.fermi_gtx480.register_banks

let volta =
  (* Sec. 7: one extractor per bank, and Volta needs half the Fermi
     extractor count per register file (one scheduler per processing
     block vs two per Fermi SM). *)
  for_config Gpr_arch.Config.volta_v100
    ~extractors_per_rf:(Gpr_arch.Config.fermi_gtx480.register_banks / 2)

type power_summary = {
  static_overhead_fraction : float;
  double_fetch_read_energy_factor : float;
  doubled_regfile_read_energy_factor : float;
}

let power b =
  {
    static_overhead_fraction = b.fraction_of_chip;
    double_fetch_read_energy_factor = 2.0;
    doubled_regfile_read_energy_factor = 2.0;
  }
