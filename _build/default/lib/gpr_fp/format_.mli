(** Reduced-precision floating-point formats (Table 3).

    Each format mimics IEEE 754: one sign bit, [exp_bits] biased exponent
    bits (all-ones reserved for ±inf / NaN) and [man_bits] mantissa bits
    with an implicit leading one.  Denormals are flushed to zero during
    conversion, which Sec. 3.2.5 notes is safe because the precision
    selection step makes the same simplification.

    The module is named [Format_] to avoid clashing with [Stdlib.Format]. *)

type t = private {
  total_bits : int;   (** 1 + exp_bits + man_bits *)
  exp_bits : int;
  man_bits : int;
}

val f32 : t
val all : t list
(** The seven formats of Table 3, widest first:
    32/28/24/20/16/12/8 bits. *)

val of_total_bits : int -> t option
val level : t -> int
(** Index into {!all}: 0 = 32-bit, 6 = 8-bit. *)

val of_level : int -> t
(** @raise Invalid_argument outside [0, 6]. *)

val next_narrower : t -> t option
val next_wider : t -> t option
val bias : t -> int

val encode : t -> float -> int
(** Bit pattern of the nearest representable value (round-to-nearest,
    ties-to-even; overflow saturates to ±inf; underflow flushes to ±0;
    NaN maps to a canonical quiet NaN). The argument is first rounded to
    IEEE single precision. *)

val decode : t -> int -> float
(** Exact value of a bit pattern, as a single-precision float. *)

val quantize : t -> float -> float
(** [decode t (encode t x)] — the value the register file would return
    after a store/load round trip in this format. *)

val is_nan_pattern : t -> int -> bool
val is_inf_pattern : t -> int -> bool

val max_finite : t -> float
val min_positive_normal : t -> float

val relative_error_bound : t -> float
(** Half-ULP relative error bound for normal values: [2^-(man_bits+1)]. *)

val to_string : t -> string
