type t = { total_bits : int; exp_bits : int; man_bits : int }

let make total_bits exp_bits =
  let man_bits = total_bits - 1 - exp_bits in
  assert (man_bits >= 1 && exp_bits >= 2);
  { total_bits; exp_bits; man_bits }

(* Table 3: total/exponent/mantissa (plus one sign bit each). *)
let f32 = make 32 8
let all = [ f32; make 28 7; make 24 6; make 20 5; make 16 5; make 12 4; make 8 3 ]

let of_total_bits n = List.find_opt (fun t -> t.total_bits = n) all

let level t =
  let rec go i = function
    | [] -> invalid_arg "Format_.level: unknown format"
    | x :: rest -> if x = t then i else go (i + 1) rest
  in
  go 0 all

let of_level i =
  match List.nth_opt all i with
  | Some t -> t
  | None -> invalid_arg "Format_.of_level: out of range"

let next_narrower t =
  let l = level t in
  if l + 1 < List.length all then Some (of_level (l + 1)) else None

let next_wider t =
  let l = level t in
  if l > 0 then Some (of_level (l - 1)) else None

let bias t = (1 lsl (t.exp_bits - 1)) - 1

(* IEEE-754 single-precision field extraction. *)
let f32_bits x = Int32.to_int (Int32.bits_of_float x) land 0xffff_ffff
let f32_of_bits b = Int32.float_of_bits (Int32.of_int b)

let sign_of b = (b lsr 31) land 1
let exp_of b = (b lsr 23) land 0xff
let man_of b = b land 0x7f_ffff

let exp_all_ones t = (1 lsl t.exp_bits) - 1

let canonical_nan t =
  (* quiet NaN: exponent all ones, top mantissa bit set *)
  (exp_all_ones t lsl t.man_bits) lor (1 lsl (t.man_bits - 1))

let inf_pattern t ~sign =
  (sign lsl (t.total_bits - 1)) lor (exp_all_ones t lsl t.man_bits)

let zero_pattern ~sign t = sign lsl (t.total_bits - 1)

let encode t x =
  let b = f32_bits x in
  let s = sign_of b and e = exp_of b and m = man_of b in
  if e = 0xff then
    if m = 0 then inf_pattern t ~sign:s else canonical_nan t
  else if e = 0 then
    (* zero or f32 denormal: flushed to signed zero *)
    zero_pattern ~sign:s t
  else begin
    let unbiased = e - 127 in
    let shift = 23 - t.man_bits in
    let keep = m lsr shift in
    let rem = m land ((1 lsl shift) - 1) in
    let half = if shift = 0 then 0 else 1 lsl (shift - 1) in
    let keep, unbiased =
      if shift > 0 && (rem > half || (rem = half && keep land 1 = 1)) then
        let k = keep + 1 in
        if k = 1 lsl t.man_bits then (0, unbiased + 1) else (k, unbiased)
      else (keep, unbiased)
    in
    let e' = unbiased + bias t in
    if e' <= 0 then zero_pattern ~sign:s t
    else if e' >= exp_all_ones t then inf_pattern t ~sign:s
    else (s lsl (t.total_bits - 1)) lor (e' lsl t.man_bits) lor keep
  end

let decode t bits =
  let s = (bits lsr (t.total_bits - 1)) land 1 in
  let e = (bits lsr t.man_bits) land exp_all_ones t in
  let m = bits land ((1 lsl t.man_bits) - 1) in
  if e = exp_all_ones t then
    if m = 0 then (if s = 1 then neg_infinity else infinity) else nan
  else if e = 0 then (if s = 1 then -0.0 else 0.0)
  else begin
    let e32 = e - bias t + 127 in
    (* By construction |e - bias| <= 2^(exp_bits-1) <= 128, so e32 is a
       valid f32 exponent for every format narrower than f32. *)
    assert (e32 > 0 && e32 < 0xff);
    let m32 = m lsl (23 - t.man_bits) in
    f32_of_bits ((s lsl 31) lor (e32 lsl 23) lor m32)
  end

let quantize t x = if t.total_bits = 32 then f32_of_bits (f32_bits x) else decode t (encode t x)

let is_nan_pattern t bits =
  let e = (bits lsr t.man_bits) land exp_all_ones t in
  let m = bits land ((1 lsl t.man_bits) - 1) in
  e = exp_all_ones t && m <> 0

let is_inf_pattern t bits =
  let e = (bits lsr t.man_bits) land exp_all_ones t in
  let m = bits land ((1 lsl t.man_bits) - 1) in
  e = exp_all_ones t && m = 0

let max_finite t =
  let e = exp_all_ones t - 1 in
  let m = (1 lsl t.man_bits) - 1 in
  decode t ((e lsl t.man_bits) lor m)

let min_positive_normal t = decode t (1 lsl t.man_bits)

let relative_error_bound t = ldexp 1.0 (-(t.man_bits + 1))

let to_string t =
  Printf.sprintf "fp%d(e%dm%d)" t.total_bits t.exp_bits t.man_bits
