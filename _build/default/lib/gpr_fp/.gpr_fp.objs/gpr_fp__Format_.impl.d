lib/gpr_fp/format_.ml: Int32 List Printf
