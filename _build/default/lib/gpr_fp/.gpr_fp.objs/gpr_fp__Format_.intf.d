lib/gpr_fp/format_.mli:
