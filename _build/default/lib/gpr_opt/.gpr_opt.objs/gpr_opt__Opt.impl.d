lib/gpr_opt/opt.ml: Array Float Gpr_isa Hashtbl Int32 List Option
