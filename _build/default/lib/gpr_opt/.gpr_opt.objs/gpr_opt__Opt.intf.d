lib/gpr_opt/opt.mli: Gpr_isa
