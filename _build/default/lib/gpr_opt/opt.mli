(** Classic scalar optimisations over mini-PTX kernels.

    Real PTX arrives at the paper's framework after the front-end has
    cleaned it up; these passes provide the same service for kernels
    built with the DSL or loaded from text: fewer dead temporaries means
    tighter live ranges and a smaller architectural-register footprint
    before packing even starts.

    All passes preserve executable semantics exactly (they never touch
    memory operations, barriers or control flow, and fold floats only
    when the result is bit-identical under f32 rounding). *)

open Gpr_isa.Types

val constant_fold : kernel -> kernel
(** Fold instructions whose operands are immediates, and propagate the
    constants and copies of single-definition registers into their
    uses.  Runs to a fixpoint. *)

val dead_code_elim : kernel -> kernel
(** Remove instructions defining registers that are never used
    (transitively).  Stores, barriers and terminators are roots. *)

val simplify : kernel -> kernel
(** Strength-reduce algebraic identities: [x+0], [x*1], [x*0],
    [x land 0], [x lor 0], [selp a a p], float [x*1.0] and [x+0.0]
    (the latter only in value-preserving direction). *)

val run : kernel -> kernel
(** [constant_fold] → [simplify] → [dead_code_elim], iterated until the
    instruction count stops shrinking. *)

val instruction_count : kernel -> int
