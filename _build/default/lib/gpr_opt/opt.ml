open Gpr_isa.Types

let instruction_count (k : kernel) =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 k.k_blocks

(* 32-bit semantics shared with the executor. *)
let wrap_s32 x =
  let y = x land 0xffff_ffff in
  if y >= 0x8000_0000 then y - 0x1_0000_0000 else y

let wrap_u32 x = x land 0xffff_ffff
let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let map_blocks k f =
  { k with
    k_blocks =
      Array.map
        (fun b -> { b with instrs = f b.instrs; term = b.term })
        k.k_blocks }

(* ------------------------------------------------------------------ *)
(* Definition counting: constant/copy propagation is only sound for
   registers with a single static definition (the builder's temporaries;
   mutable loop variables have several). *)

let def_counts k =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun b ->
       Array.iter
         (fun ins ->
            match defs ins with
            | Some d ->
              Hashtbl.replace counts d.id
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts d.id))
            | None -> ())
         b.instrs)
    k.k_blocks;
  counts

(* ------------------------------------------------------------------ *)
(* Constant folding + copy/constant propagation *)

let eval_ibin op ty a b =
  let wrap = if ty = U32 then wrap_u32 else wrap_s32 in
  let r =
    match op with
    | Add -> Some (a + b)
    | Sub -> Some (a - b)
    | Mul -> Some (a * b)
    | Div -> if b = 0 then None else Some (a / b)
    | Rem -> if b = 0 then None else Some (a mod b)
    | Min -> Some (min a b)
    | Max -> Some (max a b)
    | And -> Some (a land b)
    | Or -> Some (a lor b)
    | Xor -> Some (a lxor b)
    | Shl -> Some (a lsl (b land 31))
    | Shr -> Some (if ty = U32 then wrap_u32 a lsr (b land 31) else a asr (b land 31))
  in
  Option.map wrap r

let eval_fbin op a b =
  let r =
    match op with
    | Fadd -> a +. b
    | Fsub -> a -. b
    | Fmul -> a *. b
    | Fdiv -> a /. b
    | Fmin -> Float.min a b
    | Fmax -> Float.max a b
  in
  f32 r

let eval_cmp op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let constant_fold k =
  let single = def_counts k in
  let is_single (r : vreg) = Hashtbl.find_opt single r.id = Some 1 in
  (* Known values of single-def registers: constants or copies. *)
  let known : (int, operand) Hashtbl.t = Hashtbl.create 64 in
  let subst op =
    match op with
    | Reg r ->
      (match Hashtbl.find_opt known r.id with Some v -> v | None -> op)
    | Imm_i _ | Imm_f _ -> op
  in
  let changed = ref true in
  let kernel = ref k in
  while !changed do
    changed := false;
    let fold_instr ins =
      let ins =
        match ins with
        | Ibin (op, d, a, b) -> Ibin (op, d, subst a, subst b)
        | Iun (op, d, a) -> Iun (op, d, subst a)
        | Imad (d, a, b, c) -> Imad (d, subst a, subst b, subst c)
        | Fbin (op, d, a, b) -> Fbin (op, d, subst a, subst b)
        | Fun (op, d, a) -> Fun (op, d, subst a)
        | Ffma (d, a, b, c) -> Ffma (d, subst a, subst b, subst c)
        | Setp (op, ty, p, a, b) -> Setp (op, ty, p, subst a, subst b)
        | Selp (d, a, b, p) -> Selp (d, subst a, subst b, p)
        | Mov (d, a) -> Mov (d, subst a)
        | Cvt (op, d, a) -> Cvt (op, d, subst a)
        | Ld (d, { abuf; aindex }) -> Ld (d, { abuf; aindex = subst aindex })
        | St ({ abuf; aindex }, v) ->
          St ({ abuf; aindex = subst aindex }, subst v)
        | (Ld_param _ | Bar | Phi _ | Pi _) as i -> i
      in
      (* Record newly-foldable results. *)
      (match ins with
       | Mov (d, ((Imm_i _ | Imm_f _) as v)) when is_single d ->
         if Hashtbl.find_opt known d.id <> Some v then begin
           Hashtbl.replace known d.id v;
           changed := true
         end
       | Mov (d, (Reg s as v)) when is_single d && is_single s ->
         if Hashtbl.find_opt known d.id <> Some v then begin
           Hashtbl.replace known d.id v;
           changed := true
         end
       | Ibin (op, d, Imm_i a, Imm_i b) when is_single d ->
         (match eval_ibin op d.ty a b with
          | Some v ->
            if Hashtbl.find_opt known d.id <> Some (Imm_i v) then begin
              Hashtbl.replace known d.id (Imm_i v);
              changed := true
            end
          | None -> ())
       | Iun (op, d, Imm_i a) when is_single d ->
         let wrap = if d.ty = U32 then wrap_u32 else wrap_s32 in
         let v =
           match op with Ineg -> -a | Inot -> lnot a | Iabs -> abs a
         in
         let v = wrap v in
         if Hashtbl.find_opt known d.id <> Some (Imm_i v) then begin
           Hashtbl.replace known d.id (Imm_i v);
           changed := true
         end
       | Imad (d, Imm_i a, Imm_i b, Imm_i c) when is_single d ->
         let wrap = if d.ty = U32 then wrap_u32 else wrap_s32 in
         let v = wrap ((a * b) + c) in
         if Hashtbl.find_opt known d.id <> Some (Imm_i v) then begin
           Hashtbl.replace known d.id (Imm_i v);
           changed := true
         end
       | Fbin (op, d, Imm_f a, Imm_f b) when is_single d ->
         let v = eval_fbin op (f32 a) (f32 b) in
         if Hashtbl.find_opt known d.id <> Some (Imm_f v) then begin
           Hashtbl.replace known d.id (Imm_f v);
           changed := true
         end
       | Setp (op, ty, p, Imm_i a, Imm_i b) when is_single p && ty <> F32 ->
         let c =
           if ty = U32 then compare (wrap_u32 a) (wrap_u32 b) else compare a b
         in
         ignore (eval_cmp op c);
         ()  (* predicates have no immediate form; leave for selp folding *)
       | _ -> ());
      ins
    in
    kernel := map_blocks !kernel (fun instrs -> Array.map fold_instr instrs)
  done;
  !kernel

(* ------------------------------------------------------------------ *)
(* Algebraic simplification *)

let simplify k =
  let rewrite ins =
    match ins with
    | Ibin (Add, d, a, Imm_i 0) | Ibin (Add, d, Imm_i 0, a) -> Mov (d, a)
    | Ibin (Sub, d, a, Imm_i 0) -> Mov (d, a)
    | Ibin (Mul, d, a, Imm_i 1) | Ibin (Mul, d, Imm_i 1, a) -> Mov (d, a)
    | Ibin (Mul, d, _, Imm_i 0) | Ibin (Mul, d, Imm_i 0, _) -> Mov (d, Imm_i 0)
    | Ibin (And, d, _, Imm_i 0) | Ibin (And, d, Imm_i 0, _) -> Mov (d, Imm_i 0)
    | Ibin (Or, d, a, Imm_i 0) | Ibin (Or, d, Imm_i 0, a) -> Mov (d, a)
    | Ibin (Xor, d, a, Imm_i 0) | Ibin (Xor, d, Imm_i 0, a) -> Mov (d, a)
    | Ibin ((Shl | Shr), d, a, Imm_i 0) -> Mov (d, a)
    | Imad (d, a, Imm_i 1, Imm_i 0) -> Mov (d, a)
    | Imad (d, _, Imm_i 0, c) -> Mov (d, c)
    | Fbin (Fmul, d, a, Imm_f 1.0) | Fbin (Fmul, d, Imm_f 1.0, a) -> Mov (d, a)
    | Fbin (Fadd, d, a, Imm_f 0.0) | Fbin (Fadd, d, Imm_f 0.0, a) -> Mov (d, a)
    | Ffma (d, a, Imm_f 1.0, Imm_f 0.0) -> Mov (d, a)
    | Selp (d, a, b, _) when a = b -> Mov (d, a)
    | ins -> ins
  in
  map_blocks k (fun instrs -> Array.map rewrite instrs)

(* ------------------------------------------------------------------ *)
(* Dead-code elimination *)

let dead_code_elim k =
  let kernel = ref k in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Registers used by surviving instructions and terminators. *)
    let used = Hashtbl.create 64 in
    Array.iter
      (fun b ->
         Array.iter
           (fun ins ->
              List.iter (fun (r : vreg) -> Hashtbl.replace used r.id ())
                (uses ins))
           b.instrs;
         List.iter (fun (r : vreg) -> Hashtbl.replace used r.id ())
           (term_uses b.term))
      !kernel.k_blocks;
    let live_def ins =
      match ins with
      | St _ | Bar -> true  (* side effects are roots *)
      | Ld _ -> true        (* loads may fault; keep them *)
      | _ ->
        (match defs ins with
         | Some d -> Hashtbl.mem used d.id
         | None -> true)
    in
    kernel :=
      map_blocks !kernel (fun instrs ->
          let kept = Array.of_list (List.filter live_def (Array.to_list instrs)) in
          if Array.length kept <> Array.length instrs then changed := true;
          kept)
  done;
  !kernel

let same_code a b =
  Array.length a.k_blocks = Array.length b.k_blocks
  && Array.for_all2
       (fun (x : block) (y : block) -> x.instrs = y.instrs && x.term = y.term)
       a.k_blocks b.k_blocks

let run k =
  (* Copy propagation changes instructions without shrinking the count,
     so iterate to a structural fixpoint (bounded defensively). *)
  let rec go k fuel =
    let k' = dead_code_elim (constant_fold (simplify (constant_fold k))) in
    if fuel = 0 || same_code k k' then k' else go k' (fuel - 1)
  in
  go k 8
