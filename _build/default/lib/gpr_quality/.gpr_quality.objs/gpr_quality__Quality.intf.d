lib/gpr_quality/quality.mli: Gpr_util
