lib/gpr_quality/quality.ml: Array Float Gpr_util Printf
