type metric = M_ssim | M_deviation | M_binary

let metric_name = function
  | M_ssim -> "SSIM"
  | M_deviation -> "% deviation"
  | M_binary -> "Binary"

type threshold = Perfect | High

let threshold_name = function Perfect -> "perfect" | High -> "high"

type score =
  | S_ssim of float
  | S_deviation_pct of float
  | S_binary of bool

let score_to_string = function
  | S_ssim s -> Printf.sprintf "SSIM=%.4f" s
  | S_deviation_pct d -> Printf.sprintf "dev=%.3f%%" d
  | S_binary b -> if b then "correct" else "WRONG"

(* "Perfect" means no deviation at the precision the metrics are
   reported with (SSIM to four decimals, deviation to two): iterative
   kernels are contractive, so sufficiently wide reduced formats land on
   outputs indistinguishable from the originals without being bit-equal
   — which is how the paper's perfect-quality IMGVF still compresses
   floats.  The binary metric remains exact. *)
let ssim_perfect = 0.99995
let deviation_perfect_pct = 0.05

let meets score threshold =
  match score, threshold with
  | S_ssim s, Perfect -> s >= ssim_perfect
  | S_ssim s, High -> s >= 0.9
  | S_deviation_pct d, Perfect -> d <= deviation_perfect_pct
  | S_deviation_pct d, High -> d <= 10.0
  | S_binary b, (Perfect | High) -> b

let ssim ?(window = 8) ?(dynamic_range = 1.0) img ~reference =
  let open Gpr_util.Image in
  if img.width <> reference.width || img.height <> reference.height then
    invalid_arg "Quality.ssim: dimension mismatch";
  let k1 = 0.01 and k2 = 0.03 in
  let c1 = (k1 *. dynamic_range) ** 2.0 in
  let c2 = (k2 *. dynamic_range) ** 2.0 in
  let w = min window (min img.width img.height) in
  let n = float_of_int (w * w) in
  let total = ref 0.0 and count = ref 0 in
  for y0 = 0 to img.height - w do
    for x0 = 0 to img.width - w do
      let sum_a = ref 0.0 and sum_b = ref 0.0 in
      let sum_aa = ref 0.0 and sum_bb = ref 0.0 and sum_ab = ref 0.0 in
      for dy = 0 to w - 1 do
        for dx = 0 to w - 1 do
          let a = get img ~x:(x0 + dx) ~y:(y0 + dy) in
          let b = get reference ~x:(x0 + dx) ~y:(y0 + dy) in
          sum_a := !sum_a +. a;
          sum_b := !sum_b +. b;
          sum_aa := !sum_aa +. (a *. a);
          sum_bb := !sum_bb +. (b *. b);
          sum_ab := !sum_ab +. (a *. b)
        done
      done;
      let mu_a = !sum_a /. n and mu_b = !sum_b /. n in
      let var_a = (!sum_aa /. n) -. (mu_a *. mu_a) in
      let var_b = (!sum_bb /. n) -. (mu_b *. mu_b) in
      let cov = (!sum_ab /. n) -. (mu_a *. mu_b) in
      let num = ((2.0 *. mu_a *. mu_b) +. c1) *. ((2.0 *. cov) +. c2) in
      let den =
        ((mu_a *. mu_a) +. (mu_b *. mu_b) +. c1) *. (var_a +. var_b +. c2)
      in
      total := !total +. (num /. den);
      incr count
    done
  done;
  if !count = 0 then 1.0 else !total /. float_of_int !count

let deviation_pct out ~reference =
  if Array.length out <> Array.length reference then
    invalid_arg "Quality.deviation_pct: length mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i r ->
       let o = out.(i) in
       let d = if Float.is_nan o || Float.is_nan r then Float.abs r else Float.abs (o -. r) in
       num := !num +. d;
       den := !den +. Float.abs r)
    reference;
  let den = Float.max !den 1e-30 in
  100.0 *. !num /. den

let max_abs_error out ~reference =
  if Array.length out <> Array.length reference then
    invalid_arg "Quality.max_abs_error: length mismatch";
  let m = ref 0.0 in
  Array.iteri
    (fun i r -> m := Float.max !m (Float.abs (out.(i) -. r)))
    reference;
  !m

let binary_equal_int a b = a = b

let is_sorted a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) > a.(i) then ok := false
  done;
  !ok

let score_floats metric out ~reference =
  match metric with
  | M_deviation -> S_deviation_pct (deviation_pct out ~reference)
  | M_binary ->
    S_binary (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) out reference)
  | M_ssim -> invalid_arg "Quality.score_floats: SSIM needs images"
