(** Output-quality metrics and thresholds (Sec. 5.3 / 6.1).

    - graphics kernels: SSIM (Wang et al. 2004);
    - numeric kernels: percentage deviation from the reference output;
    - Hybridsort: binary (correct or wrong).

    Thresholds: {e perfect} = SSIM 1.0 / 0 % deviation / correct;
    {e high} = SSIM 0.9 / 10 % deviation / correct. *)

type metric = M_ssim | M_deviation | M_binary

val metric_name : metric -> string

type threshold = Perfect | High

val threshold_name : threshold -> string

type score =
  | S_ssim of float
  | S_deviation_pct of float
  | S_binary of bool

val score_to_string : score -> string

val meets : score -> threshold -> bool
(** Sec. 6.1: perfect = SSIM 1.0 / 0 % / correct;
    high = SSIM ≥ 0.9 / ≤ 10 % / correct. *)

val ssim : ?window:int -> ?dynamic_range:float -> Gpr_util.Image.t -> reference:Gpr_util.Image.t -> float
(** Mean SSIM over sliding [window]×[window] patches (default 8) with
    the standard constants K1 = 0.01, K2 = 0.03.
    @raise Invalid_argument on dimension mismatch. *)

val deviation_pct : float array -> reference:float array -> float
(** Relative L1 deviation, in percent:
    [100 * Σ|a_i - r_i| / max(Σ|r_i|, ε)]. *)

val max_abs_error : float array -> reference:float array -> float

val binary_equal_int : int array -> int array -> bool
val is_sorted : int array -> bool

val score_floats : metric -> float array -> reference:float array -> score
(** Convenience dispatch for float outputs; [M_ssim] is invalid here. *)
