(** Floating-point precision tuning (Sec. 4.1).

    Implements the hierarchical-bisection heuristic of Angerd et al.
    (TACO'17), which the paper adopts: every static F32 definition site
    starts at full precision; the tuner repeatedly tries to move whole
    groups of sites one Table 3 format step down, re-running the kernel
    on sample inputs and checking the output-quality threshold, and
    recursively bisects groups that refuse to move together.

    The search is data-driven: quality is only guaranteed for the
    sample inputs provided (the paper makes the same caveat). *)

open Gpr_isa.Types

type assignment = {
  formats : (int, Gpr_fp.Format_.t) Hashtbl.t;  (** static pc -> format *)
  sites : (int * vreg) list;                     (** tuned sites *)
  evaluations : int;                             (** kernel runs spent *)
}

val no_reduction : sites:(int * vreg) list -> assignment
(** Everything at 32 bits (the float-compression-off configurations of
    Fig. 9). *)

val quantizer : assignment -> int -> float -> float
(** The {!Gpr_exec.Exec.config} hook corresponding to an assignment. *)

val tune :
  ?min_group:int ->
  ?budget:int ->
  sites:(int * vreg) list ->
  evaluate:(quantize:(int -> float -> float) -> Gpr_quality.Quality.score) ->
  threshold:Gpr_quality.Quality.threshold ->
  unit ->
  assignment
(** [evaluate] must run the kernel with the given quantisation hook and
    score the output against the full-precision reference.

    [min_group] (default 1) stops bisection below that group size —
    coarser tuning with far fewer kernel runs, the knob the original
    framework also exposes for large kernels.  [budget] (default
    unlimited) caps the number of evaluations; the search stops early
    but every committed state is quality-validated, so the result is
    always safe, merely less compressed. *)

val var_bits : assignment -> (int, int) Hashtbl.t
(** Required storage bits per virtual register: the widest format over
    the register's definition sites.  Registers absent from the table
    need the full 32 bits. *)

val mean_bits : assignment -> float
(** Average assigned width over sites — a compression summary. *)
