open Gpr_isa.Types
module F = Gpr_fp.Format_
module Q = Gpr_quality.Quality

type assignment = {
  formats : (int, F.t) Hashtbl.t;
  sites : (int * vreg) list;
  evaluations : int;
}

let no_reduction ~sites =
  let formats = Hashtbl.create 16 in
  List.iter (fun (pc, _) -> Hashtbl.replace formats pc F.f32) sites;
  { formats; sites; evaluations = 0 }

let quantizer t pc v =
  match Hashtbl.find_opt t.formats pc with
  | Some f when f.F.total_bits < 32 -> F.quantize f v
  | Some _ | None -> v

let tune ?(min_group = 1) ?(budget = max_int) ~sites ~evaluate ~threshold () =
  let formats = Hashtbl.create 16 in
  List.iter (fun (pc, _) -> Hashtbl.replace formats pc F.f32) sites;
  let evaluations = ref 0 in
  let out_of_budget () = !evaluations >= budget in
  let current_ok quantize =
    incr evaluations;
    Q.meets (evaluate ~quantize) threshold
  in
  let hook pc v =
    match Hashtbl.find_opt formats pc with
    | Some f when f.F.total_bits < 32 -> F.quantize f v
    | Some _ | None -> v
  in
  (* Tentatively narrow every site of [group] one step; keep on success. *)
  let try_step group =
    if out_of_budget () then false
    else begin
      let moved =
        List.filter_map
          (fun (pc, _) ->
             let cur = Hashtbl.find formats pc in
             match F.next_narrower cur with
             | Some nxt ->
               Hashtbl.replace formats pc nxt;
               Some (pc, cur)
             | None -> None)
          group
      in
      if moved = [] then false
      else if current_ok hook then true
      else begin
        List.iter (fun (pc, old) -> Hashtbl.replace formats pc old) moved;
        false
      end
    end
  in
  let rec refine group =
    match group with
    | [] -> ()
    | _ ->
      while try_step group do
        ()
      done;
      let n = List.length group in
      if n > max 1 min_group && not (out_of_budget ()) then begin
        let left = List.filteri (fun i _ -> i < n / 2) group in
        let right = List.filteri (fun i _ -> i >= n / 2) group in
        refine left;
        refine right
      end
  in
  refine sites;
  { formats; sites; evaluations = !evaluations }

let var_bits t =
  let out = Hashtbl.create 16 in
  List.iter
    (fun (pc, (r : vreg)) ->
       let f = try Hashtbl.find t.formats pc with Not_found -> F.f32 in
       let bits = f.F.total_bits in
       match Hashtbl.find_opt out r.id with
       | Some prev -> if bits > prev then Hashtbl.replace out r.id bits
       | None -> Hashtbl.replace out r.id bits)
    t.sites;
  out

let mean_bits t =
  match t.sites with
  | [] -> 32.0
  | sites ->
    let sum =
      List.fold_left
        (fun acc (pc, _) ->
           let f = try Hashtbl.find t.formats pc with Not_found -> F.f32 in
           acc + f.F.total_bits)
        0 sites
    in
    float_of_int sum /. float_of_int (List.length sites)
