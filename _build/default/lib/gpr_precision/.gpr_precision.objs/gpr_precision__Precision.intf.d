lib/gpr_precision/precision.mli: Gpr_fp Gpr_isa Gpr_quality Hashtbl
