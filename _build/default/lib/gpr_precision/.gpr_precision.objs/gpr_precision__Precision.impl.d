lib/gpr_precision/precision.ml: Gpr_fp Gpr_isa Gpr_quality Hashtbl List
