(* Optimisation-pass tests: semantic preservation (optimised kernels
   produce bit-identical outputs), folding and DCE effectiveness, and
   idempotence. *)

open Gpr_isa
open Gpr_isa.Types
module O = Gpr_opt.Opt
module E = Gpr_exec.Exec
module W = Gpr_workloads.Workload

let run_ints kernel ~launch ~n =
  let outd = Array.make n 0 in
  let bindings = E.bindings_for kernel ~data:[ ("out", E.I_data outd) ] () in
  ignore (E.run kernel ~launch ~params:[||] ~bindings E.default_config);
  outd

let test_constant_folding_chain () =
  let b = Builder.create ~name:"cf" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  (* A chain of foldable arithmetic: (3 + 4) * 2 - 6 = 8. *)
  let a = iadd b (ci 3) (ci 4) in
  let c = imul b ~$a (ci 2) in
  let d = isub b ~$c (ci 6) in
  st b out ~$i ~$d;
  let k = finish b in
  let k' = O.run k in
  Alcotest.(check bool) "fewer instructions" true
    (O.instruction_count k' < O.instruction_count k);
  let launch = launch_1d ~block:32 ~grid:1 in
  Alcotest.(check bool) "same outputs" true
    (run_ints k ~launch ~n:32 = run_ints k' ~launch ~n:32)

let test_simplify_identities () =
  let b = Builder.create ~name:"ids" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let v = iadd b ~$i (ci 0) in       (* x + 0 *)
  let v = imul b ~$v (ci 1) in       (* x * 1 *)
  let v = ior b ~$v (ci 0) in        (* x | 0 *)
  let v = ishl b ~$v (ci 0) in       (* x << 0 *)
  let dead = imul b ~$v (ci 0) in    (* x * 0 -> 0 *)
  let v = iadd b ~$v ~$dead in       (* x + 0 after folding *)
  st b out ~$i ~$v;
  let k = finish b in
  let k' = O.run k in
  (* Everything reduces to the gid computation plus the store. *)
  Alcotest.(check bool) "heavily reduced" true
    (O.instruction_count k' <= O.instruction_count k - 4);
  let launch = launch_1d ~block:32 ~grid:1 in
  Alcotest.(check bool) "same outputs" true
    (run_ints k ~launch ~n:32 = run_ints k' ~launch ~n:32)

let test_dce_removes_unused () =
  let b = Builder.create ~name:"dce" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let _unused1 = fmul b (cf 1.5) (cf 2.5) in
  let _unused2 = fsin b (cf 0.5) in
  let _unused3 = iadd b ~$i (ci 99) in
  st b out ~$i ~$i;
  let k = finish b in
  let k' = O.dead_code_elim k in
  Alcotest.(check int) "three dead removed"
    (O.instruction_count k - 3)
    (O.instruction_count k')

let test_dce_keeps_side_effects () =
  let b = Builder.create ~name:"keep" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let sh = shared_buffer b S32 "sh" in
  let i = global_thread_id_x b in
  st b sh ~$(iand b ~$i (ci 31)) ~$i;
  bar b;
  let v = ld b sh ~$(iand b ~$i (ci 31)) in
  st b out ~$i ~$v;
  let k = finish b in
  let k' = O.run k in
  Alcotest.(check int) "stores/bars/loads survive" (O.instruction_count k)
    (O.instruction_count k')

let test_idempotent () =
  List.iter
    (fun (w : W.t) ->
       let once = O.run w.kernel in
       let twice = O.run once in
       Alcotest.(check int) (w.name ^ " idempotent")
         (O.instruction_count once) (O.instruction_count twice))
    Gpr_workloads.Registry.all

let test_workloads_preserved () =
  (* The strongest check: optimised workload kernels produce the exact
     reference outputs. *)
  List.iter
    (fun (w : W.t) ->
       let w' = { w with kernel = O.run w.kernel } in
       let a = W.reference w in
       let b = W.reference w' in
       Alcotest.(check bool) (w.name ^ " outputs preserved") true (a = b))
    [ Option.get (Gpr_workloads.Registry.by_name "Hotspot");
      Option.get (Gpr_workloads.Registry.by_name "DWT2D");
      Option.get (Gpr_workloads.Registry.by_name "Hybridsort");
      Option.get (Gpr_workloads.Registry.by_name "SSAO") ]

let test_loop_variables_not_folded () =
  (* A loop counter has several definitions: constant propagation must
     not treat its initial value as its only value. *)
  let b = Builder.create ~name:"loopvar" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let acc = var b S32 "acc" in
  assign b acc (ci 0);
  for_ b ~lo:(ci 0) ~hi:(ci 5) (fun _ ->
      assign b acc ~$(iadd b ~$acc (ci 2)));
  st b out ~$i ~$acc;
  let k = finish b in
  let k' = O.run k in
  let launch = launch_1d ~block:32 ~grid:1 in
  let a = run_ints k ~launch ~n:32 in
  Alcotest.(check int) "loop result" 10 a.(0);
  Alcotest.(check bool) "same outputs" true (a = run_ints k' ~launch ~n:32)

let prop_random_arith_preserved =
  QCheck.Test.make ~name:"optimised arithmetic preserves outputs" ~count:40
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
       (* Random straight-line integer DAG over gid and constants. *)
       let rng = Gpr_util.Rng.create seed in
       let b = Builder.create ~name:"rand" in
       let open Builder in
       let out = global_buffer b S32 "out" in
       let i = global_thread_id_x b in
       let nodes = ref [ i ] in
       let pick () =
         List.nth !nodes (Gpr_util.Rng.int rng (List.length !nodes))
       in
       for _ = 1 to 12 do
         let a = pick () and c = pick () in
         let const = Gpr_util.Rng.int rng 19 - 9 in
         let v =
           match Gpr_util.Rng.int rng 6 with
           | 0 -> iadd b ~$a ~$c
           | 1 -> isub b ~$a (ci const)
           | 2 -> imul b ~$a (ci const)
           | 3 -> iand b ~$a (ci 0xff)
           | 4 -> imax b ~$a ~$c
           | _ -> iadd b ~$a (ci 0)
         in
         nodes := v :: !nodes
       done;
       let result = List.hd !nodes in
       st b out ~$i ~$result;
       let k = finish b in
       let k' = O.run k in
       let launch = launch_1d ~block:32 ~grid:1 in
       run_ints k ~launch ~n:32 = run_ints k' ~launch ~n:32)

let () =
  let q = QCheck_alcotest.to_alcotest ~verbose:false in
  Alcotest.run "opt"
    [
      ( "folding",
        [
          Alcotest.test_case "constant chain" `Quick test_constant_folding_chain;
          Alcotest.test_case "identities" `Quick test_simplify_identities;
          Alcotest.test_case "loop vars safe" `Quick
            test_loop_variables_not_folded;
        ] );
      ( "dce",
        [
          Alcotest.test_case "removes unused" `Quick test_dce_removes_unused;
          Alcotest.test_case "keeps side effects" `Quick
            test_dce_keeps_side_effects;
        ] );
      ( "global",
        [
          Alcotest.test_case "idempotent" `Quick test_idempotent;
          Alcotest.test_case "workload outputs preserved" `Slow
            test_workloads_preserved;
        ] );
      ("props", [ q prop_random_arith_preserved ]);
    ]
