(* Quality metrics: SSIM, percentage deviation, binary, and the
   perfect/high thresholds of Sec. 6.1. *)

module Q = Gpr_quality.Quality
module Img = Gpr_util.Image

let img_of f = Img.init ~width:16 ~height:16 f

let gradient = img_of (fun ~x ~y -> float_of_int (x + y) /. 30.0)

let test_ssim_identity () =
  Alcotest.(check (float 1e-9)) "self" 1.0 (Q.ssim gradient ~reference:gradient)

let test_ssim_symmetry () =
  let noisy =
    Img.init ~width:16 ~height:16 (fun ~x ~y ->
        Img.get gradient ~x ~y +. (0.05 *. sin (float_of_int ((x * 7) + y))))
  in
  let a = Q.ssim noisy ~reference:gradient in
  let b = Q.ssim gradient ~reference:noisy in
  Alcotest.(check (float 1e-9)) "symmetric" a b;
  Alcotest.(check bool) "below one" true (a < 1.0);
  Alcotest.(check bool) "still high" true (a > 0.5)

let test_ssim_orders_degradation () =
  let perturb eps =
    Img.init ~width:16 ~height:16 (fun ~x ~y ->
        Img.get gradient ~x ~y +. (eps *. cos (float_of_int ((3 * x) - y))))
  in
  let s1 = Q.ssim (perturb 0.01) ~reference:gradient in
  let s2 = Q.ssim (perturb 0.05) ~reference:gradient in
  let s3 = Q.ssim (perturb 0.2) ~reference:gradient in
  Alcotest.(check bool) "monotone degradation" true (s1 > s2 && s2 > s3)

let test_ssim_constant_images () =
  let white = img_of (fun ~x:_ ~y:_ -> 1.0) in
  let black = img_of (fun ~x:_ ~y:_ -> 0.0) in
  Alcotest.(check (float 1e-9)) "identical constants" 1.0
    (Q.ssim white ~reference:white);
  Alcotest.(check bool) "opposite constants low" true
    (Q.ssim white ~reference:black < 0.1)

let test_ssim_dim_mismatch () =
  let small = Img.create ~width:8 ~height:8 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Quality.ssim: dimension mismatch") (fun () ->
        ignore (Q.ssim small ~reference:gradient))

let test_deviation () =
  let r = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "zero" 0.0
    (Q.deviation_pct (Array.copy r) ~reference:r);
  Alcotest.(check (float 1e-6)) "ten percent" 10.0
    (Q.deviation_pct [| 1.1; 2.2; 3.3; 4.4 |] ~reference:r);
  Alcotest.(check (float 1e-6)) "abs works" 10.0
    (Q.deviation_pct [| 0.9; 1.8; 2.7; 3.6 |] ~reference:r)

let test_deviation_nan_penalised () =
  let r = [| 1.0; 1.0 |] in
  let d = Q.deviation_pct [| nan; 1.0 |] ~reference:r in
  Alcotest.(check bool) "nan counts as error" true (d > 0.0)

let test_max_abs_error () =
  Alcotest.(check (float 1e-9)) "max" 0.5
    (Q.max_abs_error [| 1.0; 2.5 |] ~reference:[| 1.0; 2.0 |])

let test_binary_and_sorted () =
  Alcotest.(check bool) "equal" true (Q.binary_equal_int [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "unequal" false (Q.binary_equal_int [| 1; 2 |] [| 2; 1 |]);
  Alcotest.(check bool) "sorted" true (Q.is_sorted [| 1; 1; 2; 9 |]);
  Alcotest.(check bool) "unsorted" false (Q.is_sorted [| 1; 3; 2 |]);
  Alcotest.(check bool) "empty sorted" true (Q.is_sorted [||])

let test_thresholds () =
  Alcotest.(check bool) "ssim perfect" true (Q.meets (Q.S_ssim 1.0) Q.Perfect);
  Alcotest.(check bool) "ssim 0.9999+ still perfect" true
    (Q.meets (Q.S_ssim 0.99996) Q.Perfect);
  Alcotest.(check bool) "ssim 0.95 not perfect" false
    (Q.meets (Q.S_ssim 0.95) Q.Perfect);
  Alcotest.(check bool) "ssim 0.95 high" true (Q.meets (Q.S_ssim 0.95) Q.High);
  Alcotest.(check bool) "ssim 0.85 not high" false
    (Q.meets (Q.S_ssim 0.85) Q.High);
  Alcotest.(check bool) "dev 0 perfect" true
    (Q.meets (Q.S_deviation_pct 0.0) Q.Perfect);
  Alcotest.(check bool) "dev 0.04 perfect (reported precision)" true
    (Q.meets (Q.S_deviation_pct 0.04) Q.Perfect);
  Alcotest.(check bool) "dev 1 not perfect" false
    (Q.meets (Q.S_deviation_pct 1.0) Q.Perfect);
  Alcotest.(check bool) "dev 9.9 high" true
    (Q.meets (Q.S_deviation_pct 9.9) Q.High);
  Alcotest.(check bool) "dev 10.1 not high" false
    (Q.meets (Q.S_deviation_pct 10.1) Q.High);
  Alcotest.(check bool) "binary wrong fails both" false
    (Q.meets (Q.S_binary false) Q.High)

let prop_ssim_bounded =
  QCheck.Test.make ~name:"ssim within [-1, 1]" ~count:100
    QCheck.(pair (int_range 1 1000000) (int_range 1 1000000))
    (fun (s1, s2) ->
       let r1 = Gpr_util.Rng.create s1 and r2 = Gpr_util.Rng.create s2 in
       let a = img_of (fun ~x:_ ~y:_ -> Gpr_util.Rng.uniform r1) in
       let b = img_of (fun ~x:_ ~y:_ -> Gpr_util.Rng.uniform r2) in
       let s = Q.ssim a ~reference:b in
       s >= -1.0 && s <= 1.0 +. 1e-9)

let prop_deviation_scale =
  QCheck.Test.make ~name:"deviation scales linearly" ~count:100
    (QCheck.float_range 0.01 0.2)
    (fun eps ->
       let r = Array.init 32 (fun i -> 1.0 +. float_of_int i) in
       let out = Array.map (fun v -> v *. (1.0 +. eps)) r in
       let d = Q.deviation_pct out ~reference:r in
       Float.abs (d -. (100.0 *. eps)) < 1e-6)

let () =
  let q = QCheck_alcotest.to_alcotest ~verbose:false in
  Alcotest.run "quality"
    [
      ( "ssim",
        [
          Alcotest.test_case "identity" `Quick test_ssim_identity;
          Alcotest.test_case "symmetry" `Quick test_ssim_symmetry;
          Alcotest.test_case "orders degradation" `Quick
            test_ssim_orders_degradation;
          Alcotest.test_case "constants" `Quick test_ssim_constant_images;
          Alcotest.test_case "dim mismatch" `Quick test_ssim_dim_mismatch;
        ] );
      ( "deviation",
        [
          Alcotest.test_case "basic" `Quick test_deviation;
          Alcotest.test_case "nan penalised" `Quick test_deviation_nan_penalised;
          Alcotest.test_case "max abs" `Quick test_max_abs_error;
        ] );
      ( "binary",
        [ Alcotest.test_case "binary + sorted" `Quick test_binary_and_sorted ] );
      ( "thresholds", [ Alcotest.test_case "sec 6.1" `Quick test_thresholds ] );
      ("props", [ q prop_ssim_bounded; q prop_deviation_scale ]);
    ]
