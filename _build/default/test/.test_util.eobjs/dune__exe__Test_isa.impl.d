test/test_isa.ml: Alcotest Array Builder Cfg Float Gpr_arch Gpr_exec Gpr_fp Gpr_isa Int32 List Option Pp QCheck QCheck_alcotest String
