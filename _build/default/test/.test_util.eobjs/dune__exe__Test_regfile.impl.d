test/test_regfile.ml: Alcotest Array Float Fun Gpr_alloc Gpr_fp Gpr_isa Gpr_regfile Gpr_util Hashtbl List Printf QCheck QCheck_alcotest
