test/test_exec.ml: Alcotest Array Builder Float Gpr_exec Gpr_fp Gpr_isa Int32 List Option Printf QCheck QCheck_alcotest
