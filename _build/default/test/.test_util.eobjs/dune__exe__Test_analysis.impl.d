test/test_analysis.ml: Alcotest Array Builder Cfg Gpr_analysis Gpr_exec Gpr_isa Gpr_util Hashtbl List Printf QCheck QCheck_alcotest
