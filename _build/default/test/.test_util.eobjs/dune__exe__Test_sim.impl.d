test/test_sim.ml: Alcotest Array Builder Fun Gpr_alloc Gpr_arch Gpr_exec Gpr_isa Gpr_sim Gpr_workloads Hashtbl List Option
