test/test_precision.ml: Alcotest Builder Gpr_exec Gpr_fp Gpr_isa Gpr_precision Gpr_quality Gpr_workloads Hashtbl List Printf
