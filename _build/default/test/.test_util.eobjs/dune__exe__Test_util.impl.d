test/test_util.ml: Alcotest Array Gpr_util List Printf QCheck QCheck_alcotest String
