test/test_exec.mli:
