test/test_alloc.ml: Alcotest Builder Cfg Gpr_alloc Gpr_analysis Gpr_isa Gpr_util Gpr_workloads Hashtbl List Printf QCheck QCheck_alcotest
