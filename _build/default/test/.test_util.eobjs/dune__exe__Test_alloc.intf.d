test/test_alloc.mli:
