test/test_parser.ml: Alcotest Array Builder Gpr_isa Gpr_workloads List Option Parser Pp Printf String
