test/test_core.ml: Alcotest Gpr_alloc Gpr_arch Gpr_area Gpr_core Gpr_isa Gpr_quality Gpr_workloads Option Unix
