test/test_quality.mli:
