test/test_precision.mli:
