test/test_workloads.ml: Alcotest Array Cfg Float Gpr_exec Gpr_fp Gpr_isa Gpr_quality Gpr_workloads Int32 List Option Printf
