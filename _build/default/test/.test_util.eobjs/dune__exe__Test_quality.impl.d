test/test_quality.ml: Alcotest Array Float Gpr_quality Gpr_util QCheck QCheck_alcotest
