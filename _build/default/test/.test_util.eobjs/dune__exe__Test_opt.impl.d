test/test_opt.ml: Alcotest Array Builder Gpr_exec Gpr_isa Gpr_opt Gpr_util Gpr_workloads List Option QCheck QCheck_alcotest
