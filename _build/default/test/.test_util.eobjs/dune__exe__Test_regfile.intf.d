test/test_regfile.mli:
