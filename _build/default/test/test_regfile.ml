(* Bit-exact datapath tests (value truncator / extractor / converter,
   Fig. 3's worked example) and indirection-table arbitration, plus the
   slice-granular allocator's invariants. *)

open Gpr_alloc.Alloc
module D = Gpr_regfile.Datapath
module Ind = Gpr_regfile.Indirection
module Bits = Gpr_util.Bits

let mk ?(reg1 = -1) ?(mask1 = 0) ?(signed = false) ?(is_float = false)
    ~reg0 ~mask0 ~bits () =
  let slices = Bits.popcount mask0 + Bits.popcount mask1 in
  { reg0; mask0; reg1; mask1; slices; bits; signed; is_float }

(* ---------------------------------------------------------------- *)
(* Scatter / gather *)

let test_scatter_gather_identity () =
  let mask = 0b0110_1001 in
  let v = 0xABCD in
  let image = D.scatter ~mask v in
  Alcotest.(check int) "gather inverts scatter" (v land 0xFFFF)
    (D.gather ~mask image)

let test_scatter_positions () =
  (* Value 0x21 into slices {1, 4}: nibble 1 -> slice 1, nibble 2 -> 4. *)
  let image = D.scatter ~mask:0b0001_0010 0x21 in
  Alcotest.(check int) "slice1" 0x1 ((image lsr 4) land 0xf);
  Alcotest.(check int) "slice4" 0x2 ((image lsr 16) land 0xf);
  Alcotest.(check int) "exact image" 0x2_0_01_0 image

(* Fig. 3: a 16-bit float split across two registers — data slice 0 in
   slice 7 of r0; data slices 1, 2, 3 in slices 2, 3 and 6 of r1. *)
let test_fig3_example () =
  let p =
    mk ~reg0:0 ~mask0:0b1000_0000 ~reg1:1 ~mask1:0b0100_1100 ~bits:16
      ~is_float:true ()
  in
  Alcotest.(check bool) "is split" true (is_split p);
  Alcotest.(check int) "storage width" 16 (D.storage_width p);
  let value = 1.5 in
  let r0, r1 = D.store_float p value in
  (* Only the masked slices may be driven. *)
  Alcotest.(check int) "r0 respects mask" 0 (r0 land lnot (D.scatter ~mask:0b1000_0000 0xf));
  let fmt = D.format_of_placement p in
  let narrow = Gpr_fp.Format_.encode fmt value in
  Alcotest.(check int) "r0 slice7 holds nibble0" (narrow land 0xf)
    ((r0 lsr 28) land 0xf);
  Alcotest.(check int) "r1 slice2 holds nibble1" ((narrow lsr 4) land 0xf)
    ((r1 lsr 8) land 0xf);
  Alcotest.(check int) "r1 slice3 holds nibble2" ((narrow lsr 8) land 0xf)
    ((r1 lsr 12) land 0xf);
  Alcotest.(check int) "r1 slice6 holds nibble3" ((narrow lsr 12) land 0xf)
    ((r1 lsr 24) land 0xf);
  (* The collector-unit OR of the two extracted parts restores the value. *)
  let part0 = D.extract_part p ~part:`First r0 in
  let part1 = D.extract_part p ~part:`Second r1 in
  Alcotest.(check int) "parts disjoint" 0 (part0 land part1);
  Alcotest.(check (float 0.0)) "roundtrip" 1.5 (D.load_float p ~r0 ~r1)

let test_int_sign_extension () =
  let p = mk ~reg0:3 ~mask0:0b0000_0011 ~bits:8 ~signed:true () in
  let r0, r1 = D.store_int p (-5) in
  Alcotest.(check int) "load sign-extends" (-5) (D.load_int p ~r0 ~r1);
  let pu = mk ~reg0:3 ~mask0:0b0000_0011 ~bits:8 ~signed:false () in
  let r0, r1 = D.store_int pu 0xAB in
  Alcotest.(check int) "unsigned zero-extends" 0xAB (D.load_int pu ~r0 ~r1)

let test_full_width_roundtrip () =
  let p = mk ~reg0:0 ~mask0:0xff ~bits:32 ~signed:true () in
  List.iter
    (fun v ->
       let r0, r1 = D.store_int p v in
       Alcotest.(check int) (Printf.sprintf "%d" v) v (D.load_int p ~r0 ~r1))
    [ 0; 1; -1; 0x7fffffff; -0x80000000; 123456789; -123456789 ]

(* Property: random placement + value fitting the width round-trips. *)
let gen_placement =
  QCheck.Gen.(
    let* total_slices = int_range 1 8 in
    let* split = bool in
    let* signed = bool in
    (* pick [total_slices] distinct slice positions, split or not *)
    let* perm =
      let a = Array.init 8 Fun.id in
      let* seed = int in
      let rng = Gpr_util.Rng.create (1 + abs seed) in
      Gpr_util.Rng.shuffle rng a;
      return a
    in
    let n0 = if split && total_slices > 1 then total_slices / 2 else total_slices in
    let mask_of lo n =
      Array.to_list (Array.sub perm lo n)
      |> List.fold_left (fun m s -> m lor (1 lsl s)) 0
    in
    let mask0 = mask_of 0 n0 in
    let mask1 = if n0 < total_slices then mask_of n0 (total_slices - n0) else 0 in
    let bits = total_slices * 4 in
    return
      {
        reg0 = 0;
        mask0;
        reg1 = (if mask1 = 0 then -1 else 1);
        mask1;
        slices = total_slices;
        bits;
        signed;
        is_float = false;
      })

let arb_placement =
  QCheck.make
    ~print:(fun p ->
        Printf.sprintf "{m0=%02x m1=%02x bits=%d signed=%b}" p.mask0 p.mask1
          p.bits p.signed)
    gen_placement

let prop_int_roundtrip =
  QCheck.Test.make ~name:"store/load int roundtrip" ~count:1000
    (QCheck.pair arb_placement (QCheck.int_range (-2000000) 2000000))
    (fun (p, v) ->
       let w = D.storage_width p in
       let v =
         if p.signed then
           if Bits.fits_signed ~width:w v then v
           else Bits.sign_extend ~width:w v
         else Bits.zero_extend ~width:w v
       in
       let r0, r1 = D.store_int p v in
       D.load_int p ~r0 ~r1 = v)

let prop_store_respects_masks =
  QCheck.Test.make ~name:"store drives only masked slices" ~count:500
    (QCheck.pair arb_placement QCheck.int)
    (fun (p, v) ->
       let full0 = D.scatter ~mask:p.mask0 0xffff_ffff in
       let full1 = D.scatter ~mask:p.mask1 0xffff_ffff in
       let r0, r1 = D.store_int p v in
       r0 land lnot full0 = 0 && r1 land lnot full1 = 0)

let prop_float_roundtrip_table3 =
  QCheck.Test.make ~name:"narrow float roundtrip = quantize" ~count:500
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.float_range (-1000.0) 1000.0))
    (fun (level, v) ->
       let fmt = Gpr_fp.Format_.of_level level in
       let slices = fmt.Gpr_fp.Format_.total_bits / 4 in
       let p =
         mk ~reg0:0 ~mask0:(Bits.mask slices) ~bits:fmt.Gpr_fp.Format_.total_bits
           ~is_float:true ()
       in
       let r0, r1 = D.store_float p v in
       let got = D.load_float p ~r0 ~r1 in
       let expect = Gpr_fp.Format_.quantize fmt v in
       got = expect || (Float.is_nan got && Float.is_nan expect))

(* ---------------------------------------------------------------- *)
(* Indirection table *)

let small_alloc () =
  (* Build a real allocation from a tiny kernel. *)
  let b = Gpr_isa.Builder.create ~name:"tiny" in
  let open Gpr_isa.Builder in
  let out = global_buffer b Gpr_isa.Types.S32 "out" in
  let i = global_thread_id_x b in
  let v = iadd b ~$i (ci 1) in
  st b out ~$i ~$v;
  Gpr_alloc.Alloc.baseline (finish b)

let test_indirection_lookup () =
  let alloc = small_alloc () in
  let t = Ind.create alloc in
  Alcotest.(check int) "banks" 16 (Ind.banks t);
  (* The table stores one placement per variable alias; distinct
     architectural names bound the placements from below. *)
  Alcotest.(check bool) "entries cover names" true
    (Ind.num_entries t >= alloc.num_arch_regs);
  Hashtbl.iter
    (fun arch pl ->
       match Ind.lookup t arch with
       | Some pl' -> Alcotest.(check int) "same reg0" pl.reg0 pl'.reg0
       | None -> Alcotest.fail "missing entry")
    alloc.placements

let test_indirection_grant () =
  let alloc = small_alloc () in
  let t = Ind.create alloc in
  (* Registers 0 and 16 share bank 0: only one is granted per cycle. *)
  let granted, deferred = Ind.grant t [ 0; 16; 1; 17 ] in
  Alcotest.(check (list int)) "granted" [ 0; 1 ] granted;
  Alcotest.(check (list int)) "deferred" [ 16; 17 ] deferred;
  let granted, deferred = Ind.grant t [ 5; 6; 7 ] in
  Alcotest.(check int) "all granted" 3 (List.length granted);
  Alcotest.(check int) "none deferred" 0 (List.length deferred)

let test_entry_bits_fit () =
  let p = mk ~reg0:63 ~mask0:0xff ~reg1:62 ~mask1:0xff ~bits:32 () in
  Alcotest.(check bool) "fits 32 bits" true (Ind.entry_bits p <= 32)

let () =
  let q = QCheck_alcotest.to_alcotest ~verbose:false in
  Alcotest.run "regfile"
    [
      ( "datapath",
        [
          Alcotest.test_case "scatter/gather" `Quick test_scatter_gather_identity;
          Alcotest.test_case "scatter positions" `Quick test_scatter_positions;
          Alcotest.test_case "fig3 example" `Quick test_fig3_example;
          Alcotest.test_case "sign extension" `Quick test_int_sign_extension;
          Alcotest.test_case "full width" `Quick test_full_width_roundtrip;
        ] );
      ( "datapath-props",
        [ q prop_int_roundtrip; q prop_store_respects_masks;
          q prop_float_roundtrip_table3 ] );
      ( "indirection",
        [
          Alcotest.test_case "lookup" `Quick test_indirection_lookup;
          Alcotest.test_case "bank grant" `Quick test_indirection_grant;
          Alcotest.test_case "entry bits" `Quick test_entry_bits_fit;
        ] );
    ]
