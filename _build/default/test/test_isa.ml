(* Tests for the mini-PTX ISA: builder lowering, CFG structure,
   validation, pretty-printing, plus arch/occupancy and the Table 3
   float formats. *)

open Gpr_isa
open Gpr_isa.Types
module F = Gpr_fp.Format_

(* ---------------------------------------------------------------- *)
(* Builder / CFG *)

let test_builder_straightline () =
  let b = Builder.create ~name:"s" in
  let open Builder in
  let out = global_buffer b F32 "out" in
  let x = fadd b (cf 1.0) (cf 2.0) in
  st b out (ci 0) ~$x;
  let k = finish b in
  Alcotest.(check int) "one block" 1 (Array.length k.k_blocks);
  Alcotest.(check int) "two instrs" 2 (Array.length k.k_blocks.(0).instrs);
  (match k.k_blocks.(0).term with
   | Ret -> ()
   | _ -> Alcotest.fail "expected ret")

let test_builder_if_shape () =
  let b = Builder.create ~name:"if" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let p = ilt b (ci 0) (ci 1) in
  if_ b p
    (fun () -> st b out (ci 0) (ci 1))
    (fun () -> st b out (ci 0) (ci 2));
  let k = finish b in
  Alcotest.(check int) "four blocks" 4 (Array.length k.k_blocks);
  (match k.k_blocks.(0).term with
   | Cbr (_, 1, 2) -> ()
   | _ -> Alcotest.fail "entry should cbr to 1/2");
  let cfg = Cfg.of_kernel k in
  Alcotest.(check (list int)) "join preds" [ 1; 2 ] (Cfg.preds cfg 3)

let test_builder_while_shape () =
  let b = Builder.create ~name:"w" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = var b S32 "i" in
  assign b i (ci 0);
  while_ b
    (fun () -> ilt b ~$i (ci 10))
    (fun () ->
       st b out ~$i ~$i;
       assign b i ~$(iadd b ~$i (ci 1)));
  let k = finish b in
  (* entry, header, body, exit *)
  Alcotest.(check int) "four blocks" 4 (Array.length k.k_blocks);
  let cfg = Cfg.of_kernel k in
  (* header has two predecessors: entry and body *)
  Alcotest.(check int) "header preds" 2 (List.length (Cfg.preds cfg 1))

let test_builder_for_counts () =
  let b = Builder.create ~name:"f" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  for_ b ~lo:(ci 0) ~hi:(ci 5) (fun i -> st b out ~$i ~$i);
  let k = finish b in
  Alcotest.(check bool) "kernel valid" true
    (match Cfg.validate k with Ok () -> true | Error _ -> false)

let test_builder_ret_early () =
  let b = Builder.create ~name:"r" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let p = ilt b (ci 1) (ci 0) in
  if_then b p (fun () -> ret b);
  st b out (ci 0) (ci 1);
  let k = finish b in
  let cfg = Cfg.of_kernel k in
  Alcotest.(check bool) "multiple exits" true
    (List.length (Cfg.exit_blocks cfg) >= 2)

let test_validate_catches_bad_branch () =
  let blk = { label = 0; instrs = [||]; term = Br 7 } in
  let k =
    { k_name = "bad"; k_blocks = [| blk |]; k_params = [||];
      k_buffers = [||]; k_num_vregs = 0; k_specials = [] }
  in
  (match Cfg.validate k with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "expected invalid")

let test_validate_catches_type_error () =
  let f = { id = 0; ty = F32; name = "f" } in
  let blk =
    { label = 0; instrs = [| Ibin (Add, f, Imm_i 1, Imm_i 2) |]; term = Ret }
  in
  let k =
    { k_name = "bad"; k_blocks = [| blk |]; k_params = [||];
      k_buffers = [||]; k_num_vregs = 1; k_specials = [] }
  in
  (match Cfg.validate k with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "expected type error")

let test_rpo_starts_at_entry () =
  let b = Builder.create ~name:"rpo" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  for_ b ~lo:(ci 0) ~hi:(ci 3) (fun i -> st b out ~$i ~$i);
  let k = finish b in
  let cfg = Cfg.of_kernel k in
  let rpo = Cfg.reverse_postorder cfg in
  Alcotest.(check int) "entry first" 0 rpo.(0)

let contains_substring s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_pp_roundtrip_mentions_ops () =
  let b = Builder.create ~name:"pp" in
  let open Builder in
  let out = global_buffer b F32 "out" in
  let x = ffma b (cf 1.0) (cf 2.0) (cf 3.0) in
  let y = fsqrt b ~$x in
  st b out (ci 0) ~$y;
  let k = finish b in
  let s = Pp.kernel_to_string k in
  List.iter
    (fun needle ->
       Alcotest.(check bool) (needle ^ " printed") true (contains_substring s needle))
    [ "fma.rn.f32"; "sqrt.f32"; "st.global"; ".entry pp"; "ret" ]

let test_instr_count () =
  let b = Builder.create ~name:"cnt" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let x = iadd b (ci 1) (ci 2) in
  let y = imul b ~$x (ci 3) in
  st b out (ci 0) ~$y;
  Alcotest.(check int) "three instrs" 3 (Pp.instr_count (finish b))

let test_unit_classes () =
  let f = { id = 0; ty = F32; name = "f" } in
  let s = { id = 1; ty = S32; name = "s" } in
  Alcotest.(check bool) "sin is sfu" true
    (unit_class_of (Fun (Fsin, f, Imm_f 1.0)) = Sfu);
  Alcotest.(check bool) "fadd is spu" true
    (unit_class_of (Fbin (Fadd, f, Imm_f 1.0, Imm_f 2.0)) = Spu);
  Alcotest.(check bool) "idiv is sfu" true
    (unit_class_of (Ibin (Div, s, Imm_i 1, Imm_i 2)) = Sfu);
  Alcotest.(check bool) "iadd is spu" true
    (unit_class_of (Ibin (Add, s, Imm_i 1, Imm_i 2)) = Spu);
  Alcotest.(check bool) "bar is sync" true (unit_class_of Bar = Sync)

let test_nested_control_flow () =
  (* if inside while inside if: the builder must produce a valid CFG
     with correct reconvergence structure. *)
  let b = Builder.create ~name:"nest" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let outer = ilt b ~$i (ci 16) in
  if_then b outer (fun () ->
      let acc = var b S32 "acc" in
      assign b acc (ci 0);
      while_ b
        (fun () -> ilt b ~$acc (ci 8))
        (fun () ->
           let odd = ieq b ~$(iand b ~$acc (ci 1)) (ci 1) in
           if_ b odd
             (fun () -> assign b acc ~$(iadd b ~$acc (ci 3)))
             (fun () -> assign b acc ~$(iadd b ~$acc (ci 1))));
      st b out ~$i ~$acc);
  let k = finish b in
  (match Cfg.validate k with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (* And it executes correctly: 0 ->1 ->4 ->5 ->8. *)
  let module E = Gpr_exec.Exec in
  let outd = Array.make 32 (-1) in
  let bindings = E.bindings_for k ~data:[ ("out", E.I_data outd) ] () in
  ignore (E.run k ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
            ~bindings E.default_config);
  for t = 0 to 31 do
    Alcotest.(check int) "nested result" (if t < 16 then 8 else -1) outd.(t)
  done

let test_pand () =
  let b = Builder.create ~name:"pand" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let p1 = ige b ~$i (ci 4) in
  let p2 = ilt b ~$i (ci 8) in
  let both = pand b p1 p2 in
  st b out ~$i ~$(selp b S32 (ci 1) (ci 0) both);
  let k = finish b in
  let module E = Gpr_exec.Exec in
  let outd = Array.make 32 (-1) in
  let bindings = E.bindings_for k ~data:[ ("out", E.I_data outd) ] () in
  ignore (E.run k ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
            ~bindings E.default_config);
  for t = 0 to 31 do
    Alcotest.(check int) "conjunction" (if t >= 4 && t < 8 then 1 else 0)
      outd.(t)
  done

let test_specials_cached () =
  (* Repeated tid_x calls reuse one register. *)
  let b = Builder.create ~name:"cache" in
  let open Builder in
  let t1 = tid_x b and t2 = tid_x b in
  let g1 = global_thread_id_x b and g2 = global_thread_id_x b in
  Alcotest.(check int) "tid cached" t1.id t2.id;
  Alcotest.(check int) "gtid cached" g1.id g2.id;
  let out = global_buffer b S32 "out" in
  st b out ~$g1 ~$t1;
  ignore (finish b)

(* ---------------------------------------------------------------- *)
(* Occupancy (Sec. 2 motivating numbers) *)

let test_occupancy_imgvf_paper_example () =
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  (* Original IMGVF: 52 regs, 10 warps/block -> 1 block, 21% occupancy. *)
  let r =
    Gpr_arch.Occupancy.compute cfg ~regs_per_thread:52 ~warps_per_block:10
      ~shared_bytes_per_block:14560
  in
  Alcotest.(check int) "blocks" 1 r.blocks_per_sm;
  Alcotest.(check bool) "occ ~21%" true (abs_float (r.occupancy -. 0.2083) < 0.01);
  (* Compressed: 29 regs -> 3 blocks, 62.5%. *)
  let r =
    Gpr_arch.Occupancy.compute cfg ~regs_per_thread:29 ~warps_per_block:10
      ~shared_bytes_per_block:14560
  in
  Alcotest.(check int) "blocks compressed" 3 r.blocks_per_sm;
  Alcotest.(check (float 1e-9)) "occ 62.5%" 0.625 r.occupancy

let test_occupancy_shared_limit () =
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  (* IMGVF at high quality: 24 regs would allow 4 blocks, but shared
     memory caps it at 3 (Sec. 6.1). *)
  let r =
    Gpr_arch.Occupancy.compute cfg ~regs_per_thread:24 ~warps_per_block:10
      ~shared_bytes_per_block:14560
  in
  Alcotest.(check int) "blocks" 3 r.blocks_per_sm;
  Alcotest.(check string) "limiter" "shared memory"
    (Gpr_arch.Occupancy.limiter_to_string r.limiter)

let test_occupancy_warp_limit () =
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  let r =
    Gpr_arch.Occupancy.compute cfg ~regs_per_thread:10 ~warps_per_block:8
      ~shared_bytes_per_block:0
  in
  Alcotest.(check int) "blocks" 6 r.blocks_per_sm;
  Alcotest.(check (float 1e-9)) "full occupancy" 1.0 r.occupancy

let test_occupancy_block_limit () =
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  let r =
    Gpr_arch.Occupancy.compute cfg ~regs_per_thread:4 ~warps_per_block:1
      ~shared_bytes_per_block:0
  in
  Alcotest.(check int) "max 8 blocks" 8 r.blocks_per_sm

let test_occupancy_too_big () =
  let cfg = Gpr_arch.Config.fermi_gtx480 in
  Alcotest.check_raises "block too large"
    (Invalid_argument
       "Occupancy.compute: one block exceeds SM resources (registers)")
    (fun () ->
       ignore
         (Gpr_arch.Occupancy.compute cfg ~regs_per_thread:70 ~warps_per_block:16
            ~shared_bytes_per_block:0))

(* ---------------------------------------------------------------- *)
(* Float formats (Table 3) *)

let test_formats_table3 () =
  let expect = [ (32, 8, 23); (28, 7, 20); (24, 6, 17); (20, 5, 14);
                 (16, 5, 10); (12, 4, 7); (8, 3, 4) ] in
  List.iter2
    (fun f (total, e, m) ->
       Alcotest.(check int) "total" total f.F.total_bits;
       Alcotest.(check int) "exp" e f.F.exp_bits;
       Alcotest.(check int) "man" m f.F.man_bits)
    F.all expect

let test_format_f32_identity () =
  List.iter
    (fun x ->
       (* Values must already be representable in single precision. *)
       let x = Int32.float_of_bits (Int32.bits_of_float x) in
       Alcotest.(check (float 0.0)) "f32 identity" x (F.quantize F.f32 x))
    [ 0.0; 1.0; -1.5; 3.14159265; 1e-20; 1e20; -0.125 ]

let test_format_fp16_values () =
  let fp16 = Option.get (F.of_total_bits 16) in
  (* 1.0 and powers of two are exact in every format. *)
  Alcotest.(check (float 0.0)) "1.0 exact" 1.0 (F.quantize fp16 1.0);
  Alcotest.(check (float 0.0)) "0.5 exact" 0.5 (F.quantize fp16 0.5);
  Alcotest.(check (float 0.0)) "-4.0 exact" (-4.0) (F.quantize fp16 (-4.0));
  (* fp16 (e5m10) max normal is 65504. *)
  Alcotest.(check (float 0.0)) "max finite" 65504.0 (F.max_finite fp16);
  Alcotest.(check bool) "overflow to inf" true
    (F.quantize fp16 1e6 = infinity);
  Alcotest.(check bool) "neg overflow" true
    (F.quantize fp16 (-1e6) = neg_infinity);
  (* Denormal flush. *)
  Alcotest.(check (float 0.0)) "underflow to zero" 0.0 (F.quantize fp16 1e-8)

let test_format_special_values () =
  List.iter
    (fun f ->
       Alcotest.(check bool) (F.to_string f ^ " inf") true
         (F.quantize f infinity = infinity);
       Alcotest.(check bool) (F.to_string f ^ " -inf") true
         (F.quantize f neg_infinity = neg_infinity);
       Alcotest.(check bool) (F.to_string f ^ " nan") true
         (Float.is_nan (F.quantize f nan));
       Alcotest.(check bool) (F.to_string f ^ " nan pattern") true
         (F.is_nan_pattern f (F.encode f nan));
       Alcotest.(check bool) (F.to_string f ^ " inf pattern") true
         (F.is_inf_pattern f (F.encode f infinity)))
    F.all

let test_format_levels () =
  Alcotest.(check int) "f32 level" 0 (F.level F.f32);
  Alcotest.(check int) "narrowest" 8 (F.of_level 6).F.total_bits;
  Alcotest.(check bool) "next narrower of 8 is none" true
    (F.next_narrower (F.of_level 6) = None);
  Alcotest.(check bool) "next wider of 32 is none" true
    (F.next_wider F.f32 = None)

let prop_quantize_error_bound =
  QCheck.Test.make ~name:"relative error within bound" ~count:1000
    (QCheck.float_range (-1e4) 1e4)
    (fun x ->
       let x = Int32.float_of_bits (Int32.bits_of_float x) in
       QCheck.assume (Float.is_finite x && Float.abs x > 1e-3);
       List.for_all
         (fun f ->
            let q = F.quantize f x in
            (* Skip if out of the format's range (overflow/underflow). *)
            if Float.abs x > F.max_finite f
            || Float.abs x < F.min_positive_normal f then true
            else
              Float.abs (q -. x) /. Float.abs x
              <= F.relative_error_bound f *. 1.0001)
         F.all)

let prop_encode_fits_width =
  QCheck.Test.make ~name:"encode fits declared width" ~count:1000
    (QCheck.float_range (-1e30) 1e30)
    (fun x ->
       List.for_all
         (fun f ->
            let bits = F.encode f x in
            bits >= 0 && bits < 1 lsl f.F.total_bits)
         F.all)

let prop_quantize_idempotent =
  QCheck.Test.make ~name:"quantize idempotent" ~count:1000
    (QCheck.float_range (-1e6) 1e6)
    (fun x ->
       List.for_all
         (fun f ->
            let q = F.quantize f x in
            (not (Float.is_finite q)) || F.quantize f q = q)
         F.all)

let prop_quantize_monotone_width =
  QCheck.Test.make ~name:"wider format never worse" ~count:500
    (QCheck.float_range (-1e3) 1e3)
    (fun x ->
       let x = Int32.float_of_bits (Int32.bits_of_float x) in
       QCheck.assume (Float.is_finite x);
       let err f =
         let q = F.quantize f x in
         if Float.is_finite q then Float.abs (q -. x) else infinity
       in
       let errors = List.map err F.all in
       let rec nondecreasing = function
         | a :: (b :: _ as rest) -> a <= b +. 1e-30 && nondecreasing rest
         | _ -> true
       in
       nondecreasing errors)

let () =
  let q = QCheck_alcotest.to_alcotest ~verbose:false in
  Alcotest.run "isa-arch-fp"
    [
      ( "builder",
        [
          Alcotest.test_case "straightline" `Quick test_builder_straightline;
          Alcotest.test_case "if shape" `Quick test_builder_if_shape;
          Alcotest.test_case "while shape" `Quick test_builder_while_shape;
          Alcotest.test_case "for valid" `Quick test_builder_for_counts;
          Alcotest.test_case "early ret" `Quick test_builder_ret_early;
          Alcotest.test_case "instr count" `Quick test_instr_count;
          Alcotest.test_case "pp mentions ops" `Quick test_pp_roundtrip_mentions_ops;
          Alcotest.test_case "nested control flow" `Quick test_nested_control_flow;
          Alcotest.test_case "pand" `Quick test_pand;
          Alcotest.test_case "specials cached" `Quick test_specials_cached;
        ] );
      ( "validate",
        [
          Alcotest.test_case "bad branch" `Quick test_validate_catches_bad_branch;
          Alcotest.test_case "type error" `Quick test_validate_catches_type_error;
          Alcotest.test_case "rpo entry" `Quick test_rpo_starts_at_entry;
          Alcotest.test_case "unit classes" `Quick test_unit_classes;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "imgvf example" `Quick
            test_occupancy_imgvf_paper_example;
          Alcotest.test_case "shared limit" `Quick test_occupancy_shared_limit;
          Alcotest.test_case "warp limit" `Quick test_occupancy_warp_limit;
          Alcotest.test_case "block limit" `Quick test_occupancy_block_limit;
          Alcotest.test_case "too big" `Quick test_occupancy_too_big;
        ] );
      ( "fp-formats",
        [
          Alcotest.test_case "table3" `Quick test_formats_table3;
          Alcotest.test_case "f32 identity" `Quick test_format_f32_identity;
          Alcotest.test_case "fp16 values" `Quick test_format_fp16_values;
          Alcotest.test_case "specials" `Quick test_format_special_values;
          Alcotest.test_case "levels" `Quick test_format_levels;
        ] );
      ( "fp-props",
        [
          q prop_quantize_error_bound;
          q prop_encode_fits_width;
          q prop_quantize_idempotent;
          q prop_quantize_monotone_width;
        ] );
    ]
