(* Workload tests: every Table 4 kernel validates, runs, and is
   deterministic; independent CPU reference implementations check
   Hotspot, DWT2D and Hybridsort; launch geometry matches Table 4. *)

open Gpr_isa
module W = Gpr_workloads.Workload
module Registry = Gpr_workloads.Registry
module E = Gpr_exec.Exec
module Q = Gpr_quality.Quality

let find name = Option.get (Registry.by_name name)

let test_registry_complete () =
  Alcotest.(check int) "eleven kernels" 11 (List.length Registry.all);
  List.iter
    (fun n ->
       Alcotest.(check bool) (n ^ " present") true (Registry.by_name n <> None))
    [ "Deferred"; "SSAO"; "Elevated"; "Pathtracer"; "CFD"; "DWT2D";
      "Hotspot"; "Hotspot3D"; "IMGVF"; "GICOV"; "Hybridsort" ]

let test_kernels_validate () =
  List.iter
    (fun (w : W.t) ->
       match Cfg.validate w.kernel with
       | Ok () -> ()
       | Error e -> Alcotest.fail (w.name ^ ": " ^ e))
    Registry.all

let test_table4_geometry () =
  (* Warps per block from Table 4. *)
  let expected =
    [ ("Deferred", 8); ("SSAO", 8); ("Elevated", 8); ("Pathtracer", 8);
      ("CFD", 6); ("DWT2D", 6); ("Hotspot", 8); ("Hotspot3D", 8);
      ("IMGVF", 10); ("GICOV", 6); ("Hybridsort", 8) ]
  in
  List.iter
    (fun (name, warps) ->
       Alcotest.(check int) (name ^ " warps/block") warps
         (W.warps_per_block (find name)))
    expected

let test_imgvf_shared_matches_paper () =
  Alcotest.(check int) "14560 bytes" 14560
    (W.shared_bytes_per_block (find "IMGVF"))

let test_references_deterministic () =
  List.iter
    (fun (w : W.t) ->
       let a = W.reference w in
       let b = W.reference w in
       Alcotest.(check bool) (w.name ^ " deterministic") true (a = b);
       Alcotest.(check bool) (w.name ^ " non-trivial output") true
         (Array.exists (fun v -> v <> 0.0) a);
       Alcotest.(check bool) (w.name ^ " finite") true
         (Array.for_all (fun v -> Float.is_finite v) a))
    Registry.all

let test_reference_scores_perfect () =
  List.iter
    (fun (w : W.t) ->
       let r = W.reference w in
       let score = W.score w ~out:(Array.copy r) ~reference:r in
       Alcotest.(check bool)
         (w.name ^ " self-score perfect")
         true
         (Q.meets score Q.Perfect))
    Registry.all

(* ---------------------------------------------------------------- *)
(* Independent CPU references *)

let test_hybridsort_actually_sorts () =
  let w = find "Hybridsort" in
  let out = W.reference w in
  (* Sorted per 2048-key tile, and a permutation of its input. *)
  let inp =
    match List.assoc "keys_in" (w.data ()) with
    | E.F_data a -> a
    | E.I_data _ -> Alcotest.fail "unexpected int keys"
  in
  let tile = 2048 in
  for blk = 0 to (Array.length out / tile) - 1 do
    let slice a = Array.sub a (blk * tile) tile in
    let o = slice out in
    for i = 1 to tile - 1 do
      if o.(i - 1) > o.(i) then
        Alcotest.fail (Printf.sprintf "tile %d unsorted at %d" blk i)
    done;
    let si = slice inp in
    Array.sort compare si;
    Alcotest.(check bool)
      (Printf.sprintf "tile %d permutation" blk)
      true (si = o)
  done

let test_hotspot_matches_cpu () =
  let w = find "Hotspot" in
  let data = w.data () in
  let temp = match List.assoc "temp" data with E.F_data a -> a | _ -> assert false in
  let power = match List.assoc "power" data with E.F_data a -> a | _ -> assert false in
  let out = W.reference w in
  let dim = 64 in
  let f32 x = Int32.float_of_bits (Int32.bits_of_float x) in
  let step = 0.25 and rx = 0.125 and rz = 0.0625 and amb = 0.5 in
  let at x y =
    let x = max 0 (min (dim - 1) x) and y = max 0 (min (dim - 1) y) in
    temp.((y * dim) + x)
  in
  (* Spot-check a sample of cells against a scalar implementation. *)
  List.iter
    (fun (x, y) ->
       let i = (y * dim) + x in
       let lap =
         f32 (f32 (f32 (at x (y - 1)) +. at x (y + 1))
              +. f32 (at (x - 1) y +. at (x + 1) y))
       in
       let lap = f32 ((temp.(i) *. -4.0) +. lap) in
       let drive = f32 ((power.(i) *. rx) +. f32 (lap *. 0.25)) in
       let cool = f32 (f32 (amb -. temp.(i)) *. rz) in
       let delta = f32 (f32 (drive +. cool) *. step) in
       let expect = f32 (temp.(i) +. delta) in
       Alcotest.(check (float 1e-5))
         (Printf.sprintf "cell (%d,%d)" x y)
         expect out.(i))
    [ (0, 0); (5, 9); (31, 31); (63, 63); (17, 40); (63, 0); (0, 63); (32, 1) ]

let test_dwt2d_level2_ll_matches_cpu () =
  let w = find "DWT2D" in
  let data = w.data () in
  let src = match List.assoc "dwt_in" data with E.F_data a -> a | _ -> assert false in
  let out = W.reference w in
  let width = 96 in
  (* LL2 of 4x4 block (bx, by) = mean of the 16 pixels (for the Haar
     filter bank, level-2 LL is the overall average). *)
  List.iter
    (fun (bx, by) ->
       let sum = ref 0.0 in
       for dy = 0 to 3 do
         for dx = 0 to 3 do
           sum := !sum +. src.((((by * 4) + dy) * width) + (bx * 4) + dx)
         done
       done;
       let expect = !sum /. 16.0 in
       let got = out.((by * width) + bx) in
       Alcotest.(check (float 1e-4))
         (Printf.sprintf "LL2 (%d,%d)" bx by)
         expect got)
    [ (0, 0); (3, 7); (11, 11); (8, 2) ]

let test_gicov_scores_nonnegative () =
  let out = W.reference (find "GICOV") in
  Alcotest.(check bool) "scores >= 0" true (Array.for_all (fun v -> v >= 0.0) out)

let test_graphics_outputs_in_unit_range () =
  List.iter
    (fun name ->
       let out = W.reference (find name) in
       Alcotest.(check bool) (name ^ " in [0,1]") true
         (Array.for_all (fun v -> v >= 0.0 && v <= 1.0) out))
    [ "Deferred"; "SSAO"; "Elevated"; "Pathtracer" ]

let test_quantized_run_degrades_gracefully () =
  (* Quantising everything to fp8 must not crash and must score worse
     than (or equal to) the reference. *)
  let w = find "Hotspot" in
  let r = W.reference w in
  let fp8 = Gpr_fp.Format_.of_level 6 in
  let out =
    W.run_quantized w ~quantize:(fun _ v -> Gpr_fp.Format_.quantize fp8 v)
  in
  match W.score w ~out ~reference:r with
  | Q.S_deviation_pct d ->
    Alcotest.(check bool) "fp8 visibly degrades" true (d > 0.1);
    Alcotest.(check bool) "but bounded" true (d < 100.0)
  | _ -> Alcotest.fail "expected deviation score"

let test_trace_barrier_counts () =
  (* IMGVF's trace must contain its barriers: 2 staging + 2 per
     iteration per warp. *)
  let w = find "IMGVF" in
  let trace = W.trace w ~quantize:None in
  let bars =
    Array.fold_left
      (fun acc (it : Gpr_exec.Trace.item) ->
         if it.t_unit = Gpr_isa.Types.Sync then acc + 1 else acc)
      0 trace.items
  in
  Alcotest.(check bool) "many barriers" true (bars > 0);
  let per_warp = bars / (trace.num_blocks * trace.warps_per_block) in
  Alcotest.(check int) "barriers per warp" (1 + (2 * 4)) per_warp

let () =
  Alcotest.run "workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "kernels validate" `Quick test_kernels_validate;
          Alcotest.test_case "table4 geometry" `Quick test_table4_geometry;
          Alcotest.test_case "imgvf shared" `Quick test_imgvf_shared_matches_paper;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "references stable" `Slow test_references_deterministic;
          Alcotest.test_case "self-score perfect" `Slow test_reference_scores_perfect;
        ] );
      ( "cpu-references",
        [
          Alcotest.test_case "hybridsort sorts" `Quick test_hybridsort_actually_sorts;
          Alcotest.test_case "hotspot stencil" `Quick test_hotspot_matches_cpu;
          Alcotest.test_case "dwt2d LL2" `Quick test_dwt2d_level2_ll_matches_cpu;
          Alcotest.test_case "gicov nonneg" `Quick test_gicov_scores_nonnegative;
          Alcotest.test_case "graphics range" `Quick
            test_graphics_outputs_in_unit_range;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "fp8 degrades" `Quick
            test_quantized_run_degrades_gracefully;
          Alcotest.test_case "imgvf barriers" `Quick test_trace_barrier_counts;
        ] );
    ]
