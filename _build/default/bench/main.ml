(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Tables 1-4, Figures 8-12, the Sec. 6.4 area model, the Sec. 6.5
   power argument and the Sec. 7 Volta scaling) through
   [Gpr_core.Experiments] — workload generation, the static framework,
   and the timing simulation all run from scratch.

   Part 2 reports Bechamel micro-benchmarks of the core components so
   performance regressions in the library itself are visible.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* ---------------------------------------------------------------- *)
(* Micro-benchmarks *)

let fig8_kernel () =
  let open Gpr_isa in
  let open Gpr_isa.Types in
  let open Builder in
  let b = create ~name:"fig8" in
  let out = global_buffer b S32 "out" in
  let k = var b S32 "k" and i = var b S32 "i" and j = var b S32 "j" in
  assign b k (ci 0);
  while_ b
    (fun () -> ilt b ~$k (ci 50))
    (fun () ->
       assign b i (ci 0);
       assign b j ~$k;
       while_ b
         (fun () -> ilt b ~$i ~$j)
         (fun () ->
            st b out (ci 0) ~$k;
            assign b i ~$(iadd b ~$i (ci 1)));
       assign b k ~$(iadd b ~$k (ci 1)));
  st b out (ci 1) ~$k;
  finish b

let hotspot () = Option.get (Gpr_workloads.Registry.by_name "Hotspot")

let micro_tests () =
  let fig8 = fig8_kernel () in
  let launch = Gpr_isa.Types.launch_1d ~block:32 ~grid:1 in
  let w = hotspot () in
  let hk = w.kernel in
  let alloc_width = fun _ -> 16 in
  let fmt16 = Gpr_fp.Format_.of_level 4 in
  let placement =
    { Gpr_alloc.Alloc.reg0 = 0; mask0 = 0b1100_0011; reg1 = -1;
      mask1 = 0; slices = 4; bits = 16; signed = true; is_float = false }
  in
  let trace = lazy (Gpr_workloads.Workload.trace w ~quantize:None) in
  let halloc = lazy (Gpr_alloc.Alloc.baseline hk) in
  [
    Test.make ~name:"interval.mul"
      (Staged.stage (fun () ->
           ignore
             (Gpr_util.Interval.mul
                (Gpr_util.Interval.of_ints (-37) 122)
                (Gpr_util.Interval.of_ints 5 999))));
    Test.make ~name:"range-analysis.fig8"
      (Staged.stage (fun () ->
           ignore (Gpr_analysis.Range.analyze fig8 ~launch)));
    Test.make ~name:"ssa.convert.hotspot"
      (Staged.stage (fun () -> ignore (Gpr_analysis.Ssa.convert hk)));
    Test.make ~name:"liveness.hotspot"
      (Staged.stage (fun () -> ignore (Gpr_analysis.Liveness.compute hk)));
    Test.make ~name:"alloc.pack.hotspot"
      (Staged.stage (fun () ->
           ignore (Gpr_alloc.Alloc.run hk ~width_of:alloc_width)));
    Test.make ~name:"fp.quantize16"
      (Staged.stage (fun () ->
           ignore (Gpr_fp.Format_.quantize fmt16 3.14159265)));
    Test.make ~name:"datapath.roundtrip"
      (Staged.stage (fun () ->
           let r0, r1 = Gpr_regfile.Datapath.store_int placement (-1234) in
           ignore (Gpr_regfile.Datapath.load_int placement ~r0 ~r1)));
    Test.make ~name:"exec.hotspot-run"
      (Staged.stage (fun () -> ignore (Gpr_workloads.Workload.reference w)));
    Test.make ~name:"sim.hotspot-baseline"
      (Staged.stage (fun () ->
           ignore
             (Gpr_sim.Sim.run ~waves:1 Gpr_arch.Config.fermi_gtx480
                ~trace:(Lazy.force trace) ~alloc:(Lazy.force halloc)
                ~blocks_per_sm:4 ~mode:Gpr_sim.Sim.Baseline)));
  ]

let run_micro () =
  Gpr_util.Tab.section "Micro-benchmarks (Bechamel, monotonic clock)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
         let elt = List.hd (Test.elements test) in
         let name = Test.Elt.name elt in
         let results = Benchmark.all cfg instances test in
         let analysis = Analyze.all ols Instance.monotonic_clock results in
         let nanos =
           Hashtbl.fold
             (fun _ v acc ->
                match Analyze.OLS.estimates v with
                | Some [ est ] -> est
                | _ -> acc)
             analysis nan
         in
         [ name;
           (if nanos >= 1e6 then Printf.sprintf "%.2f ms/op" (nanos /. 1e6)
            else if nanos >= 1e3 then Printf.sprintf "%.2f us/op" (nanos /. 1e3)
            else Printf.sprintf "%.1f ns/op" nanos) ])
      (micro_tests ())
  in
  Gpr_util.Tab.print ~header:[ "component"; "time" ] rows

(* ---------------------------------------------------------------- *)

let () =
  print_endline
    "Reproduction of 'A GPU Register File using Static Data Compression'\n\
     (Angerd, Sintorn, Stenstrom - ICPP 2020).  One section per table and\n\
     figure of the paper; see EXPERIMENTS.md for the paper-vs-measured\n\
     comparison.";
  let t0 = Unix.gettimeofday () in
  Gpr_core.Experiments.print_all ();
  Printf.printf "\n[evaluation pipeline: %.1f s]\n" (Unix.gettimeofday () -. t0);
  run_micro ()
