examples/custom_kernel.ml: Array Builder Float Gpr_arch Gpr_core Gpr_exec Gpr_isa Gpr_quality Gpr_workloads List Printf
