examples/precision_demo.mli:
