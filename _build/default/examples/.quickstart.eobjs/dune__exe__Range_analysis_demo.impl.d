examples/range_analysis_demo.ml: Builder Gpr_analysis Gpr_isa Gpr_util List Pp Printf
