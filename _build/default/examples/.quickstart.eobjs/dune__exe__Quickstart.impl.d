examples/quickstart.ml: Array Builder Gpr_core Gpr_exec Gpr_isa Gpr_quality Gpr_workloads Pp Printf Stdlib
