examples/quickstart.mli:
