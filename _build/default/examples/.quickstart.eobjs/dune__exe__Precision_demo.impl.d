examples/precision_demo.ml: Gpr_core Gpr_fp Gpr_precision Gpr_quality Gpr_workloads Hashtbl List Option Printf String
