examples/range_analysis_demo.mli:
