(* Precision tuning in isolation: tune the Hotspot stencil's floats at
   both quality thresholds and print the resulting Table 3 format
   histogram, the achieved quality, and the registers saved.

   Run with:  dune exec examples/precision_demo.exe *)

module W = Gpr_workloads.Workload
module P = Gpr_precision.Precision
module Q = Gpr_quality.Quality
module F = Gpr_fp.Format_

let () =
  let w = Option.get (Gpr_workloads.Registry.by_name "Hotspot") in
  let reference = W.reference w in
  let sites = W.float_sites w in
  Printf.printf "kernel %s: %d float definition sites\n" w.name
    (List.length sites);

  let tune threshold =
    let evaluate ~quantize = W.evaluate w ~reference ~quantize in
    let asg = P.tune ~sites ~evaluate ~threshold () in
    let score = W.evaluate w ~reference ~quantize:(P.quantizer asg) in
    (asg, score)
  in

  List.iter
    (fun threshold ->
       let asg, score = tune threshold in
       Printf.printf "\n=== threshold: %s ===\n" (Q.threshold_name threshold);
       Printf.printf "kernel evaluations spent: %d\n" asg.P.evaluations;
       Printf.printf "achieved quality: %s\n" (Q.score_to_string score);
       Printf.printf "mean assigned width: %.1f bits\n" (P.mean_bits asg);
       (* Histogram over Table 3 formats. *)
       let hist = Hashtbl.create 8 in
       List.iter
         (fun (pc, _) ->
            let f = Hashtbl.find asg.P.formats pc in
            let c = Option.value ~default:0 (Hashtbl.find_opt hist f.F.total_bits) in
            Hashtbl.replace hist f.F.total_bits (c + 1))
         sites;
       List.iter
         (fun f ->
            match Hashtbl.find_opt hist f.F.total_bits with
            | Some c ->
              Printf.printf "  %-12s %3d sites  %s\n" (F.to_string f) c
                (String.make c '#')
            | None -> ())
         F.all)
    [ Q.Perfect; Q.High ];

  (* What it buys in registers. *)
  let c = Gpr_core.Compress.analyze w in
  Printf.printf "\nregister pressure: %d original -> %d (perfect) -> %d (high)\n"
    c.baseline.pressure c.perfect.alloc_float_only.pressure
    c.high.alloc_float_only.pressure
