(* How to evaluate your own kernel under the proposed register file:
   a complete walk from DSL source to Figure-11-style numbers, using a
   block-tiled matrix-vector product with shared-memory staging.

   Run with:  dune exec examples/custom_kernel.exe *)

open Gpr_isa
open Gpr_isa.Types
open Builder
module E = Gpr_exec.Exec
module Q = Gpr_quality.Quality
module W = Gpr_workloads.Workload

let rows = 512
let cols = 128

(* y[r] = sum_c a[r][c] * x[c], with x staged in shared memory. *)
let kernel =
  let b = create ~name:"gemv" in
  let a = global_buffer b F32 "a" in
  let x = global_buffer b F32 "x" in
  let y = global_buffer b F32 "y" in
  let xs = shared_buffer b F32 "xs" in
  let t = tid_x b in
  let row = global_thread_id_x b in
  (* Stage x cooperatively: 128 threads load one element each. *)
  if_then b (ilt b ~$t (ci cols)) (fun () ->
      st b xs ~$t ~$(ld b x ~$t));
  bar b;
  let acc = var b F32 "acc" in
  assign b acc (cf 0.0);
  for_ b ~lo:(ci 0) ~hi:(ci cols) (fun c ->
      let av = ld b a ~$(imad b ~$row (ci cols) ~$c) in
      let xv = ld b xs ~$c in
      assign b acc ~$(ffma b ~$av ~$xv ~$acc));
  st b y ~$row ~$acc;
  finish b

let workload : W.t =
  {
    name = "gemv";
    group = 2;
    metric = Q.M_deviation;
    kernel;
    launch = launch_1d ~block:128 ~grid:(rows / 128);
    params = [||];
    data =
      (fun () ->
         [ ("a", E.F_data (Gpr_workloads.Inputs.qfloats_range ~seed:7
                             ~n:(rows * cols) ~lo:(-1.0) ~hi:1.0));
           ("x", E.F_data (Gpr_workloads.Inputs.qfloats ~seed:8 ~n:cols));
           ("y", E.F_data (Array.make rows 0.0)) ]);
    shared = [ ("xs", cols) ];
    extra_shared_bytes = 0;
    output = W.Out_floats "y";
    paper_regs = 0;
  }

let () =
  (* 1. Correctness: compare against a host-side reference. *)
  let out = W.reference workload in
  let data = workload.data () in
  let a = match List.assoc "a" data with E.F_data v -> v | _ -> assert false in
  let x = match List.assoc "x" data with E.F_data v -> v | _ -> assert false in
  let max_err = ref 0.0 in
  for r = 0 to rows - 1 do
    let expect = ref 0.0 in
    for c = 0 to cols - 1 do
      expect := !expect +. (a.((r * cols) + c) *. x.(c))
    done;
    max_err := Float.max !max_err (Float.abs (out.(r) -. !expect))
  done;
  Printf.printf "max |gpu - host| = %g\n" !max_err;
  assert (!max_err < 1e-3);

  (* 2. The full pipeline: analysis, tuning, packing, simulation. *)
  let c = Gpr_core.Compress.analyze workload in
  Printf.printf "\npressure: %d -> %d (perfect) / %d (high)\n"
    c.baseline.pressure c.perfect.alloc_both.pressure
    c.high.alloc_both.pressure;
  let occ alloc =
    (Gpr_core.Compress.occupancy c alloc).Gpr_arch.Occupancy.blocks_per_sm
  in
  Printf.printf "blocks/SM: %d -> %d\n" (occ c.baseline) (occ c.high.alloc_both);
  let base = Gpr_core.Simulate.baseline c in
  let prop = Gpr_core.Simulate.proposed c Q.High in
  Printf.printf "IPC: %.1f baseline -> %.1f proposed (%+.1f%%)\n" base.gpu_ipc
    prop.gpu_ipc
    (100.0 *. ((prop.gpu_ipc /. base.gpu_ipc) -. 1.0));
  Printf.printf "double fetches: %d, conversions: %d\n" prop.double_fetches
    prop.conversions;
  print_endline
    "\nNote: gemv is DRAM-bound and already occupancy-saturated, so\n\
     compression buys no blocks here and the proposed pipeline's\n\
     conversion/writeback overheads show as a slowdown — the honest\n\
     trade-off the paper reports for its memory-bound kernels.  Compare\n\
     `gpr sim IMGVF` or `gpr sim CFD` for the occupancy-limited case."

