(* The paper's Figure 8 worked example, step by step: the source
   program, its e-SSA form with π-nodes, the solved ranges per e-SSA
   name, and the merged per-variable ranges and bitwidths.

   Run with:  dune exec examples/range_analysis_demo.exe *)

open Gpr_isa
open Gpr_isa.Types
open Builder
module R = Gpr_analysis.Range
module I = Gpr_util.Interval

let () =
  (* Figure 8a:
       k = 0
       while k < 50 { i = 0; j = k; while i < j { print k; i++ }; k++ }
       print k *)
  let b = create ~name:"fig8" in
  let out = global_buffer b S32 "out" in
  let k = var b S32 "k" and i = var b S32 "i" and j = var b S32 "j" in
  assign b k (ci 0);
  while_ b
    (fun () -> ilt b ~$k (ci 50))
    (fun () ->
       assign b i (ci 0);
       assign b j ~$k;
       while_ b
         (fun () -> ilt b ~$i ~$j)
         (fun () ->
            st b out (ci 0) ~$k;
            assign b i ~$(iadd b ~$i (ci 1)));
       assign b k ~$(iadd b ~$k (ci 1)));
  st b out (ci 1) ~$k;
  let kernel = finish b in

  print_endline "=== source program (mini-PTX) ===";
  print_string (Pp.kernel_to_string kernel);

  print_endline "\n=== e-SSA form (phis and pi-nodes) ===";
  let essa = Gpr_analysis.Essa.convert (Gpr_analysis.Ssa.convert kernel) in
  print_string (Pp.kernel_to_string essa.kernel);

  let t = R.analyze kernel ~launch:(launch_1d ~block:32 ~grid:1) in
  print_endline "\n=== merged ranges per original variable (Fig. 8d) ===";
  List.iter
    (fun (name, (v : vreg)) ->
       Printf.printf "  I[%s] = %-12s -> %d bits (two's complement)\n" name
         (I.to_string (R.var_range t v.id))
         (R.var_bitwidth t v.id))
    [ ("k", k); ("i", i); ("j", j) ];
  print_endline
    "(paper reports k=[0,50], i=[0,50], j=[0,49] and 6 bits unsigned;\n\
    \ our e-SSA also refines i at the inner branch, and S32 variables\n\
    \ carry a sign bit)"
