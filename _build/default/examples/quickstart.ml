(* Quickstart: compress the register file of a small kernel end to end.

   Build a kernel with the mini-PTX DSL, run the static framework
   (range analysis for the integers, precision tuning for the floats),
   pack the registers at slice granularity, and compare occupancy and
   simulated IPC between the conventional and the proposed register
   file.

   Run with:  dune exec examples/quickstart.exe *)

open Gpr_isa
open Gpr_isa.Types
open Builder
module E = Gpr_exec.Exec
module Q = Gpr_quality.Quality

let n = 4096

(* A small "haze removal" kernel: per pixel, blend with a neighbourhood
   minimum — narrow loop indices, image-valued floats. *)
let kernel, out_name =
  let b = create ~name:"dehaze" in
  let img = global_buffer b F32 "img" in
  let out = global_buffer b F32 "out" in
  let width = 64 in
  let gid, x, y = Gpr_workloads.Glib.pixel_xy b ~width in
  let dark = Stdlib.ref (mov b F32 (cf 1.0)) in
  for dy = -1 to 1 do
    for dx = -1 to 1 do
      let xs = imin b ~$(imax b ~$(iadd b ~$x (ci dx)) (ci 0)) (ci (width - 1)) in
      let ys = imin b ~$(imax b ~$(iadd b ~$y (ci dy)) (ci 0)) (ci (width - 1)) in
      let v = ld b img ~$(imad b ~$ys (ci width) ~$xs) in
      dark := fmin b ~$(!dark) ~$v
    done
  done;
  let v0 = ld b img ~$gid in
  let t = fmax b ~$(fsub b (cf 1.0) ~$(!dark)) (cf 0.1) in
  let dehazed = fadd b ~$(fdiv b ~$(fsub b ~$v0 ~$(!dark)) ~$t) ~$(!dark) in
  st b out ~$gid ~$(Gpr_workloads.Glib.clamp01 b ~$dehazed);
  (finish b, "out")

let () =
  let launch = launch_1d ~block:256 ~grid:(n / 256) in
  print_endline "=== mini-PTX kernel ===";
  print_string (Pp.kernel_to_string kernel);

  (* Wrap it as a workload so the pipeline can evaluate output quality. *)
  let w : Gpr_workloads.Workload.t =
    {
      name = "dehaze";
      group = 1;
      metric = Q.M_deviation;
      kernel;
      launch;
      params = [||];
      data =
        (fun () ->
           [ ("img", E.F_data (Gpr_workloads.Inputs.qfloats ~seed:42 ~n));
             (out_name, E.F_data (Array.make n 0.0)) ]);
      shared = [];
      extra_shared_bytes = 0;
      output = Gpr_workloads.Workload.Out_floats out_name;
      paper_regs = 0;
    }
  in
  let c = Gpr_core.Compress.analyze w in
  Printf.printf "\n=== static framework ===\n";
  Printf.printf "original pressure:              %d registers/thread\n"
    c.baseline.pressure;
  Printf.printf "narrow integers:                %d\n" c.int_only.pressure;
  Printf.printf "narrow ints+floats (perfect):   %d   (quality: %s)\n"
    c.perfect.alloc_both.pressure
    (Q.score_to_string c.perfect.achieved_score);
  Printf.printf "narrow ints+floats (high):      %d   (quality: %s)\n"
    c.high.alloc_both.pressure
    (Q.score_to_string c.high.achieved_score);

  let occ alloc = Gpr_core.Compress.occupancy c alloc in
  Printf.printf "\n=== occupancy (Fermi GTX 480) ===\n";
  Printf.printf "blocks/SM: %d original -> %d compressed (high quality)\n"
    (occ c.baseline).blocks_per_sm
    (occ c.high.alloc_both).blocks_per_sm;

  let base = Gpr_core.Simulate.baseline c in
  let prop = Gpr_core.Simulate.proposed c Q.High in
  Printf.printf "\n=== timing simulation ===\n";
  Printf.printf "baseline register file:  IPC %.1f\n" base.gpu_ipc;
  Printf.printf "proposed register file:  IPC %.1f  (%+.1f%%)\n" prop.gpu_ipc
    (100.0 *. ((prop.gpu_ipc /. base.gpu_ipc) -. 1.0))
